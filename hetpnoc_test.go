package hetpnoc

import (
	"math"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	res, err := Run(Config{Cycles: 2500, WarmupCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Architecture != "d-hetpnoc" {
		t.Fatalf("default architecture %q", res.Architecture)
	}
	if res.BandwidthSet != "BW1" {
		t.Fatalf("default set %q", res.BandwidthSet)
	}
	if res.Traffic != "uniform" {
		t.Fatalf("default traffic %q", res.Traffic)
	}
	if res.PacketsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{Architecture: 99},
		{BandwidthSet: 7},
		{Traffic: Traffic{Kind: 99}},
		{Traffic: SkewedTraffic(4)},
		{Traffic: HotspotTraffic(1.5, 2)},
		{Traffic: HotspotTraffic(0.1, 9)},
	}
	for i, cfg := range bad {
		cfg.Cycles = 100
		cfg.WarmupCycles = 10
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTrafficConstructors(t *testing.T) {
	tests := []struct {
		traffic Traffic
		name    string
	}{
		{UniformTraffic(), "uniform"},
		{SkewedTraffic(2), "skewed2"},
		{HotspotTraffic(0.1, 3), "skewed-hotspot0"}, // index unset: naming only
		{RealAppTraffic(), "realapp"},
	}
	for _, tt := range tests {
		p, err := tt.traffic.toPattern()
		if err != nil {
			t.Fatalf("%+v: %v", tt.traffic, err)
		}
		if got := p.Name(); got != tt.name {
			t.Errorf("pattern name %q, want %q", got, tt.name)
		}
	}
}

func TestCustomTraffic(t *testing.T) {
	specs := make([]CoreSpec, 64)
	// Core 0 sends to cores 8 and 9 (cluster 2); everyone else idle.
	specs[0] = CoreSpec{RateGbps: 50, DemandGbps: 50, Dests: []int{8, 9}}

	res, err := Run(Config{
		Traffic: CustomTraffic(specs),
		Cycles:  3000, WarmupCycles: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsDelivered == 0 {
		t.Fatal("custom traffic delivered nothing")
	}
	// Only cluster 0's write channel should have been busy.
	for cl, busy := range res.ChannelBusyFraction {
		if cl == 0 && busy == 0 {
			t.Fatal("source cluster channel never busy")
		}
		if cl != 0 && busy != 0 {
			t.Fatalf("cluster %d channel busy %.3f with no traffic", cl, busy)
		}
	}
}

func TestCustomTrafficValidation(t *testing.T) {
	if _, err := Run(Config{Traffic: CustomTraffic(make([]CoreSpec, 3)), Cycles: 100, WarmupCycles: 10}); err == nil {
		t.Error("short spec list accepted")
	}
	specs := make([]CoreSpec, 64)
	specs[5] = CoreSpec{RateGbps: 10, Dests: []int{5}} // self
	if _, err := Run(Config{Traffic: CustomTraffic(specs), Cycles: 100, WarmupCycles: 10}); err == nil {
		t.Error("self-destination accepted")
	}
	specs[5] = CoreSpec{RateGbps: 10, Dests: []int{200}} // off chip
	if _, err := Run(Config{Traffic: CustomTraffic(specs), Cycles: 100, WarmupCycles: 10}); err == nil {
		t.Error("off-chip destination accepted")
	}
}

func TestRunWithTraceObservesRemap(t *testing.T) {
	var snapshots []Snapshot
	res, err := RunWithTrace(
		Config{
			Architecture: DHetPNoC,
			Traffic:      UniformTraffic(),
			Cycles:       5000, WarmupCycles: 500, Seed: 1,
		},
		[]TrafficRemap{{AtCycle: 2500, Traffic: SkewedTraffic(3)}},
		500,
		func(s Snapshot) { snapshots = append(snapshots, s) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(snapshots) != 10 {
		t.Fatalf("observed %d snapshots, want 10", len(snapshots))
	}
	// Before the remap the allocation is uniform; at the end it is not.
	early := snapshots[2]
	for _, n := range early.AllocatedWavelengths {
		if n != 4 {
			t.Fatalf("allocation %v not uniform before remap", early.AllocatedWavelengths)
		}
	}
	last := snapshots[len(snapshots)-1]
	uniform := true
	for _, n := range last.AllocatedWavelengths {
		if n != last.AllocatedWavelengths[0] {
			uniform = false
		}
	}
	if uniform {
		t.Fatalf("allocation %v still uniform after remap", last.AllocatedWavelengths)
	}
	if last.TokenRotations == 0 {
		t.Fatal("no token rotations observed")
	}
	if res.PacketsDelivered == 0 {
		t.Fatal("trace run delivered nothing")
	}
}

func TestRunWithTraceValidation(t *testing.T) {
	if _, err := RunWithTrace(Config{}, nil, 0, nil); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := RunWithTrace(Config{Cycles: 100, WarmupCycles: 10},
		[]TrafficRemap{{AtCycle: 50, Traffic: SkewedTraffic(9)}}, 10, nil); err == nil {
		t.Fatal("bad remap traffic accepted")
	}
}

// TestEstimateAreaHeadline checks the public area API against the §3.4.3
// headline numbers.
func TestEstimateAreaHeadline(t *testing.T) {
	est, err := EstimateArea(64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(est.DHetPNoCAreaMM2)-1.608) > 0.002 {
		t.Errorf("d-HetPNoC area %.4f, thesis says 1.608", est.DHetPNoCAreaMM2)
	}
	if math.Abs(float64(est.FireflyAreaMM2)-1.367) > 0.002 {
		t.Errorf("Firefly area %.4f, thesis says 1.367", est.FireflyAreaMM2)
	}
	if est.DHetPNoCModulators != 3072 || est.FireflyModulators != 1088 {
		t.Errorf("modulator counts %d/%d, want 3072/1088",
			est.DHetPNoCModulators, est.FireflyModulators)
	}
	if _, err := EstimateArea(0); err == nil {
		t.Error("zero wavelengths accepted")
	}
}

func TestGPUFlitSizeSpeedups(t *testing.T) {
	speedups, err := GPUFlitSizeSpeedups()
	if err != nil {
		t.Fatal(err)
	}
	var maxPct float64
	for _, s := range speedups {
		if s.SpeedupPct > maxPct {
			maxPct = s.SpeedupPct
		}
	}
	if math.Abs(maxPct-63) > 2 {
		t.Fatalf("max GPU speedup %.1f%%, thesis says up to 63%%", maxPct)
	}
}

func TestArchitectureStrings(t *testing.T) {
	if Firefly.String() != "firefly" || DHetPNoC.String() != "d-hetpnoc" {
		t.Fatal("architecture names wrong")
	}
	if Architecture(0).String() != "unknown" {
		t.Fatal("zero architecture should be unknown")
	}
}

// TestEventLogSurfacesProtocolActivity: with EventCapacity set, the result
// carries reservations, arrivals and allocation changes.
func TestEventLogSurfacesProtocolActivity(t *testing.T) {
	res, err := Run(Config{
		Architecture:  DHetPNoC,
		Traffic:       SkewedTraffic(2),
		Cycles:        2500,
		WarmupCycles:  500,
		EventCapacity: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events captured")
	}
	var sawReservation, sawArrival, sawAlloc, sawDelivered bool
	for _, e := range res.Events {
		switch {
		case strings.Contains(e, "reservation"):
			sawReservation = true
		case strings.Contains(e, "packet-arrived"):
			sawArrival = true
		case strings.Contains(e, "allocation-changed"):
			sawAlloc = true
		case strings.Contains(e, "packet-delivered"):
			sawDelivered = true
		}
	}
	if !sawReservation || !sawArrival || !sawDelivered {
		t.Fatalf("missing transfer events (reservation=%v arrival=%v delivered=%v)",
			sawReservation, sawArrival, sawDelivered)
	}
	if !sawAlloc {
		t.Fatal("no allocation-changed events from the DBA under skewed traffic")
	}
}

// TestPermutationTrafficThroughPublicAPI: the neighbor permutation — the
// torus's friendliest pattern — flows on all three architectures.
func TestPermutationTrafficThroughPublicAPI(t *testing.T) {
	for _, arch := range []Architecture{Firefly, DHetPNoC, TorusPNoC} {
		res, err := Run(Config{
			Architecture: arch,
			Traffic:      PermutationTraffic("neighbor"),
			Cycles:       2500,
			WarmupCycles: 500,
		})
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if res.PacketsDelivered == 0 {
			t.Fatalf("%v delivered nothing under neighbor traffic", arch)
		}
	}
	if _, err := Run(Config{Traffic: PermutationTraffic("bogus"), Cycles: 100, WarmupCycles: 10}); err == nil {
		t.Fatal("unknown permutation accepted")
	}
}

// TestProportionalDBAThroughPublicAPI: the future-work policy runs end to
// end and still beats Firefly under skew.
func TestProportionalDBAThroughPublicAPI(t *testing.T) {
	prop, err := Run(Config{
		Architecture:    DHetPNoC,
		Traffic:         SkewedTraffic(2),
		ProportionalDBA: true,
		Cycles:          2500, WarmupCycles: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Run(Config{
		Architecture: Firefly,
		Traffic:      SkewedTraffic(2),
		Cycles:       2500, WarmupCycles: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prop.DeliveredGbps <= ff.DeliveredGbps {
		t.Fatalf("proportional d-HetPNoC %.1f Gb/s not above Firefly %.1f",
			prop.DeliveredGbps, ff.DeliveredGbps)
	}
}

// TestLatencyPercentilesExposed: the public result carries the latency
// distribution summary.
func TestLatencyPercentilesExposed(t *testing.T) {
	res, err := Run(Config{Traffic: SkewedTraffic(2), Cycles: 2500, WarmupCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.P50LatencyCycles <= 0 || res.P99LatencyCycles < res.P50LatencyCycles ||
		res.MaxLatencyCycles < res.P99LatencyCycles {
		t.Fatalf("latency percentiles inconsistent: p50=%d p99=%d max=%d",
			res.P50LatencyCycles, res.P99LatencyCycles, res.MaxLatencyCycles)
	}
}

// TestLinkBudgets: the public budget API reflects the [23] crosstalk
// asymmetry between the crossbar and the torus.
func TestLinkBudgets(t *testing.T) {
	xbar, err := CrossbarLinkBudget()
	if err != nil {
		t.Fatal(err)
	}
	torus, err := TorusLinkBudget()
	if err != nil {
		t.Fatal(err)
	}
	if xbar.TotalDB <= 0 || torus.TotalDB <= 0 {
		t.Fatal("budgets empty")
	}
	if torus.CrosstalkDB <= xbar.CrosstalkDB {
		t.Fatal("torus crosstalk not above crossbar crosstalk")
	}
	if torus.LaserPowerMW <= xbar.LaserPowerMW {
		t.Fatal("torus laser power not above crossbar")
	}
}

// TestBurstyTrafficThroughPublicAPI: bursty skewed traffic runs end to end
// and raises latency over the smooth equivalent.
func TestBurstyTrafficThroughPublicAPI(t *testing.T) {
	smooth, err := Run(Config{Traffic: SkewedTraffic(2), Cycles: 2500, WarmupCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	bursty := SkewedTraffic(2)
	bursty.Burstiness = 16
	b, err := Run(Config{Traffic: bursty, Cycles: 2500, WarmupCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	if b.Traffic != "skewed2-bursty16" {
		t.Fatalf("bursty traffic named %q", b.Traffic)
	}
	if b.AvgLatencyCycles < smooth.AvgLatencyCycles {
		t.Fatalf("bursty latency %.1f below smooth %.1f", b.AvgLatencyCycles, smooth.AvgLatencyCycles)
	}
	if _, err := Run(Config{Traffic: Traffic{Kind: UniformRandom, Burstiness: -2}, Cycles: 100, WarmupCycles: 10}); err == nil {
		t.Fatal("negative burstiness accepted")
	}
}
