package hetpnoc

import (
	"testing"
)

// FuzzConfigValidate holds Config.Validate to its contract: on any
// input, however hostile — out-of-range enums, NaN/Inf floats, negative
// cycle counts, wrong-length custom workloads — it must either return
// an error or accept a runnable config. It must never panic, and an
// accepted config must survive normalization and canonical encoding
// (the path every serving request takes before touching the pool).
func FuzzConfigValidate(f *testing.F) {
	// The Table 3-3 default point and one seed per enum arm.
	f.Add(int(DHetPNoC), 1, int(UniformRandom), 0, 0.0, "", 0.0, 1.0, 10000, 1000, uint64(1), 0.0, 0.0, 0)
	f.Add(int(Firefly), 2, int(SkewedKind), 3, 0.0, "", 0.0, 2.0, 2500, 500, uint64(7), 0.0, 0.0, 0)
	f.Add(int(TorusPNoC), 3, int(SkewedHotspotKind), 2, 0.2, "", 4.0, 0.5, 1000, 100, uint64(9), 0.0, 0.0, 0)
	f.Add(int(DHetPNoC), 1, int(PermutationKind), 0, 0.0, "transpose", 0.0, 1.0, 2000, 200, uint64(3), 0.0, 0.0, 0)
	f.Add(int(DHetPNoC), 2, int(CustomKind), 0, 0.0, "", 0.0, 1.0, 2000, 200, uint64(5), 8.0, 12.0, 17)
	// Hostile seeds: enum off the end, negative cycles, absurd load.
	f.Add(99, -1, 42, -7, -0.5, "no-such-permutation", -3.0, 1e308, -1, -1, uint64(0), -1.0, 1e308, -5)

	f.Fuzz(func(t *testing.T, arch, set, kind, skew int,
		hotFrac float64, perm string, burst, load float64,
		cycles, warmup int, seed uint64,
		rate, demand float64, dest int) {
		cfg := Config{
			Architecture: Architecture(arch),
			BandwidthSet: set,
			Traffic: Traffic{
				Kind:            TrafficKind(kind),
				SkewLevel:       skew,
				HotspotFraction: hotFrac,
				Permutation:     perm,
				Burstiness:      burst,
			},
			LoadScale:    load,
			Cycles:       cycles,
			WarmupCycles: warmup,
			Seed:         seed,
		}
		if TrafficKind(kind) == CustomKind {
			// A 64-entry workload with the fuzzed spec in slot 0; the
			// remaining cores idle. Wrong lengths are separately covered
			// by the unit suite.
			cfg.Traffic.Custom = make([]CoreSpec, 64)
			cfg.Traffic.Custom[0] = CoreSpec{RateGbps: rate, DemandGbps: demand, Dests: []int{dest}}
		}
		if err := cfg.Validate(); err != nil {
			return // rejected is a fine outcome; panicking is not
		}
		// Accepted configs must normalize idempotently and encode.
		norm := cfg.Normalized()
		if err := norm.Validate(); err != nil {
			t.Fatalf("config validates but its normalized form does not: %v\n%+v", err, norm)
		}
		a, err := cfg.CanonicalJSON()
		if err != nil {
			t.Fatalf("valid config fails to encode: %v", err)
		}
		b, err := norm.CanonicalJSON()
		if err != nil {
			t.Fatalf("normalized config fails to encode: %v", err)
		}
		if string(a) != string(b) {
			t.Fatalf("canonical encoding is not normalization-stable:\n%s\n%s", a, b)
		}
	})
}
