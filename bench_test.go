package hetpnoc

// The benchmark harness regenerates every evaluation artifact of the
// thesis (see DESIGN.md §3 for the experiment index). Each benchmark runs
// its figure's full workload and reports the headline quantities as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the study end to end. Benchmarks use shortened runs (4,000
// cycles with an 800-cycle reset) to keep the suite fast; cmd/sweep runs
// the full Table 3-3 lengths and is the source of the numbers recorded in
// EXPERIMENTS.md.

import (
	"testing"

	"hetpnoc/internal/batch"
	"hetpnoc/internal/experiments"
	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
)

// benchOpts are the shortened run parameters used by every simulation
// benchmark.
func benchOpts() experiments.Options {
	return experiments.Options{Cycles: 4000, WarmupCycles: 800, Seed: 1}
}

// findRow locates a matrix row by its coordinates.
func findRow(b *testing.B, rows []experiments.Row, set, pattern, arch string) experiments.Row {
	b.Helper()
	for _, r := range rows {
		if r.Set == set && r.Pattern == pattern && r.Arch == arch {
			return r
		}
	}
	b.Fatalf("no row for %s/%s/%s", set, pattern, arch)
	return experiments.Row{}
}

// BenchmarkFig1_1_FlitSizeSpeedup regenerates Figure 1-1: per-benchmark
// GPU speedups of 1024 B flits over the 32 B baseline. Reported metrics:
// the maximum speedup (the thesis observes up to 63%) and the count of
// benchmarks below 1%.
func BenchmarkFig1_1_FlitSizeSpeedup(b *testing.B) {
	b.ReportAllocs()
	var maxPct float64
	var below1 int
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure1_1()
		if err != nil {
			b.Fatal(err)
		}
		maxPct, below1 = 0, 0
		for _, p := range points {
			if p.SpeedupPct > maxPct {
				maxPct = p.SpeedupPct
			}
			if p.SpeedupPct < 1 {
				below1++
			}
		}
	}
	b.ReportMetric(maxPct, "max-speedup-%")
	b.ReportMetric(float64(below1), "benchmarks-below-1%")
}

// benchmarkPeakSet runs the Figure 3-3/3-4 matrix for one bandwidth set
// and reports the skewed-3 d-HetPNoC gain over Firefly in bandwidth and
// energy per message.
func benchmarkPeakSet(b *testing.B, set traffic.BandwidthSet) {
	b.Helper()
	b.ReportAllocs()
	var bwGain, epmDelta float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PeakBandwidth(benchOpts(), []traffic.BandwidthSet{set})
		if err != nil {
			b.Fatal(err)
		}
		ff := findRow(b, rows, set.Name, "skewed3", "firefly")
		dh := findRow(b, rows, set.Name, "skewed3", "d-hetpnoc")
		bwGain = float64((dh.PeakBandwidthGbps/ff.PeakBandwidthGbps - 1) * 100)
		epmDelta = float64((dh.EnergyPerMessagePJ/ff.EnergyPerMessagePJ - 1) * 100)
	}
	b.ReportMetric(bwGain, "dhet-bw-gain-%")
	b.ReportMetric(epmDelta, "dhet-epm-delta-%")
}

// BenchmarkFig3_3_PeakBandwidth regenerates Figures 3-3 and 3-4 (peak
// bandwidth and packet energy for uniform and skewed traffic), one
// sub-benchmark per bandwidth set.
func BenchmarkFig3_3_PeakBandwidth(b *testing.B) {
	b.ReportAllocs()
	for _, set := range traffic.BandwidthSets() {
		b.Run(set.Name, func(b *testing.B) { benchmarkPeakSet(b, set) })
	}
}

// BenchmarkFig3_4_PacketEnergy regenerates the Figure 3-4 energy matrix
// explicitly: it reports the d-HetPNoC energy-per-message saving under
// skewed 2 traffic at bandwidth set 1 (the thesis reports savings up to
// ~5%; this model's congestion term yields larger ones, see
// EXPERIMENTS.md).
func BenchmarkFig3_4_PacketEnergy(b *testing.B) {
	b.ReportAllocs()
	var saving float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PeakBandwidth(benchOpts(), []traffic.BandwidthSet{traffic.BWSet1})
		if err != nil {
			b.Fatal(err)
		}
		ff := findRow(b, rows, "BW1", "skewed2", "firefly")
		dh := findRow(b, rows, "BW1", "skewed2", "d-hetpnoc")
		saving = float64((1 - dh.EnergyPerMessagePJ/ff.EnergyPerMessagePJ) * 100)
	}
	b.ReportMetric(saving, "dhet-epm-saving-%")
}

// BenchmarkFig3_5_CaseStudies regenerates Figure 3-5: the skewed-hotspot
// synthetic patterns and the real-application GPU/memory traffic.
func BenchmarkFig3_5_CaseStudies(b *testing.B) {
	b.ReportAllocs()
	var realGain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CaseStudies(benchOpts(), traffic.BWSet1)
		if err != nil {
			b.Fatal(err)
		}
		ff := findRow(b, rows, "BW1", "realapp", "firefly")
		dh := findRow(b, rows, "BW1", "realapp", "d-hetpnoc")
		realGain = float64((dh.PeakBandwidthGbps/ff.PeakBandwidthGbps - 1) * 100)
	}
	b.ReportMetric(realGain, "realapp-bw-gain-%")
}

// BenchmarkFig3_6_Area regenerates Figure 3-6, the analytic area model.
// Reported metrics are the thesis's two headline areas at 64 data
// wavelengths (1.608 and 1.367 mm^2).
func BenchmarkFig3_6_Area(b *testing.B) {
	b.ReportAllocs()
	var dhet, ff float64
	for i := 0; i < b.N; i++ {
		points := experiments.AreaSweep(nil)
		dhet, ff = float64(points[0].DynamicMM2), float64(points[0].FireflyMM2)
	}
	b.ReportMetric(dhet*1000, "dhet-area-um2x1e3")
	b.ReportMetric(ff*1000, "firefly-area-um2x1e3")
}

// BenchmarkFig3_7_DHetScaling regenerates Figure 3-7: d-HetPNoC peak core
// bandwidth and EPM across the three bandwidth sets.
func BenchmarkFig3_7_DHetScaling(b *testing.B) {
	b.ReportAllocs()
	var perCoreBW3 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ScalingSeries(benchOpts(), fabric.DHetPNoC)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Set == "BW3" && r.Pattern == "skewed3" {
				perCoreBW3 = float64(r.PerCoreGbps)
			}
		}
	}
	b.ReportMetric(perCoreBW3, "bw3-skewed3-percore-gbps")
}

// BenchmarkFig3_8_BWvsArea regenerates Figure 3-8: peak bandwidth and area
// as the wavelength budget grows from 64 to 512 under skewed 3 traffic
// (the thesis reports +751.31% bandwidth for +70% area).
func BenchmarkFig3_8_BWvsArea(b *testing.B) {
	b.ReportAllocs()
	var bwPct, areaPct float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.WavelengthScaling(benchOpts(), fabric.DHetPNoC)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		bwPct, areaPct = last.BandwidthChangePct, last.AreaChangePct
	}
	b.ReportMetric(bwPct, "bw-increase-%")
	b.ReportMetric(areaPct, "area-increase-%")
}

// BenchmarkFig3_9_EPMvsArea regenerates Figure 3-9: energy per message and
// area across the wavelength scaling (the thesis reports -10.89% EPM).
func BenchmarkFig3_9_EPMvsArea(b *testing.B) {
	b.ReportAllocs()
	var epmPct float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.WavelengthScaling(benchOpts(), fabric.DHetPNoC)
		if err != nil {
			b.Fatal(err)
		}
		epmPct = points[len(points)-1].EPMChangePct
	}
	b.ReportMetric(epmPct, "epm-change-%")
}

// BenchmarkFig3_10_FireflyScaling regenerates Figure 3-10: the same
// scaling series for the Firefly baseline (the thesis reports +764.52%
// bandwidth and -10.85% EPM from the smallest to the largest
// configuration, +41.17% area).
func BenchmarkFig3_10_FireflyScaling(b *testing.B) {
	b.ReportAllocs()
	var bwPct, epmPct float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.WavelengthScaling(benchOpts(), fabric.Firefly)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		bwPct, epmPct = last.BandwidthChangePct, last.EPMChangePct
	}
	b.ReportMetric(bwPct, "bw-increase-%")
	b.ReportMetric(epmPct, "epm-change-%")
}

// BenchmarkTables3_1to3_5_Inputs exercises the input tables: bandwidth-set
// validation (Tables 3-1/3-3) and the energy parameter defaults (Tables
// 3-4/3-5) — these are configuration, so the benchmark measures their
// construction and checks internal consistency.
func BenchmarkTables3_1to3_5_Inputs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, set := range traffic.BandwidthSets() {
			if err := set.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblation_WaveguideRestriction runs the thesis's Chapter 4
// proposal study: per-router waveguide restriction trades area for
// bandwidth. Reported metrics: the restricted variant's bandwidth cost and
// area saving relative to unrestricted d-HetPNoC.
func BenchmarkAblation_WaveguideRestriction(b *testing.B) {
	b.ReportAllocs()
	var bwCost, areaSaving float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WaveguideRestrictionAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		byVariant := make(map[string]experiments.AblationRow, len(rows))
		for _, r := range rows {
			byVariant[r.Variant] = r
		}
		full, restricted := byVariant["unrestricted"], byVariant["2-waveguides"]
		bwCost = float64((1 - restricted.PeakBandwidthGbps/full.PeakBandwidthGbps) * 100)
		areaSaving = float64((1 - restricted.AreaMM2/full.AreaMM2) * 100)
	}
	b.ReportMetric(bwCost, "bw-cost-%")
	b.ReportMetric(areaSaving, "area-saving-%")
}

// BenchmarkArchitectureComparison runs all three modeled architectures
// (Firefly, d-HetPNoC, and the related-work torus) on skewed 2 traffic.
func BenchmarkArchitectureComparison(b *testing.B) {
	b.ReportAllocs()
	var dhetGain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ArchitectureComparison(benchOpts(), traffic.BWSet1, traffic.Skewed{Level: 2})
		if err != nil {
			b.Fatal(err)
		}
		byVariant := make(map[string]experiments.AblationRow, len(rows))
		for _, r := range rows {
			byVariant[r.Variant] = r
		}
		dhetGain = float64((byVariant["d-hetpnoc"].PeakBandwidthGbps/byVariant["firefly"].PeakBandwidthGbps - 1) * 100)
	}
	b.ReportMetric(dhetGain, "dhet-over-firefly-%")
}

// sweep256Configs builds the batching benchmark corpus: a 256-point
// cross-product of 8 build prefixes (2 architectures × 2 bandwidth sets
// × 2 traffic patterns) fanned out over 8 seeds and 4 load scales. The
// batch engine must collapse it onto 8 fabric builds
// (TestBatchSweep256Builds pins the count).
func sweep256Configs() []Config {
	var cfgs []Config
	for _, arch := range []Architecture{DHetPNoC, Firefly} {
		for _, set := range []int{1, 2} {
			for _, tr := range []Traffic{{Kind: UniformRandom}, {Kind: SkewedKind, SkewLevel: 2}} {
				for seed := uint64(1); seed <= 8; seed++ {
					for _, load := range []float64{0.5, 1, 1.5, 2} {
						cfgs = append(cfgs, Config{
							Architecture: arch,
							BandwidthSet: set,
							Traffic:      tr,
							LoadScale:    load,
							Cycles:       600,
							WarmupCycles: 150,
							Seed:         seed,
						})
					}
				}
			}
		}
	}
	return cfgs
}

// BenchmarkBatchSweep256 runs the 256-point sweep through the batch
// engine: 8 fabric builds, every other point forked off a pristine
// checkpoint, groups spread over GOMAXPROCS workers. Compare against
// BenchmarkSequentialSweep256 — the same points run naively — for the
// batching speedup; results are byte-identical (TestBatchEquivalence).
func BenchmarkBatchSweep256(b *testing.B) {
	cfgs := sweep256Configs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunBatch(cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(cfgs) {
			b.Fatalf("got %d results for %d configs", len(res), len(cfgs))
		}
	}
	specs, err := lowerAll(cfgs)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := batch.NewPlan(specs, batch.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(plan.Stats().Groups), "fabric-builds")
	b.ReportMetric(float64(len(cfgs)), "points")
}

// BenchmarkSequentialSweep256 is the baseline the batch engine is
// measured against: the same 256 points, each paying its own fabric
// build and full run, one after another.
func BenchmarkSequentialSweep256(b *testing.B) {
	cfgs := sweep256Configs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var injected int64
		for _, cfg := range cfgs {
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			injected += res.PacketsInjected
		}
		if injected == 0 {
			b.Fatal("no packets injected across the whole sweep")
		}
	}
	b.ReportMetric(float64(len(cfgs)), "fabric-builds")
	b.ReportMetric(float64(len(cfgs)), "points")
}

// BenchmarkSimulationThroughput measures raw simulator speed: cycles per
// second for one d-HetPNoC run at bandwidth set 1 under skewed 2 traffic.
func BenchmarkSimulationThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Architecture: DHetPNoC,
			BandwidthSet: 1,
			Traffic:      SkewedTraffic(2),
			Cycles:       2000,
			WarmupCycles: 400,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.PacketsDelivered == 0 {
			b.Fatal("no packets delivered")
		}
	}
}
