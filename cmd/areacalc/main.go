// Command areacalc evaluates the §3.4.3 analytic electro-optic area model
// (Equations 5-24) and prints the Figure 3-6 comparison of d-HetPNoC and
// Firefly device area as the aggregate data bandwidth grows.
//
// Usage:
//
//	areacalc                  # the default 64..512 wavelength sweep
//	areacalc -wavelengths 64  # a single point with device counts
package main

import (
	"flag"
	"fmt"
	"os"

	"hetpnoc"
	"hetpnoc/internal/experiments"
	"hetpnoc/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "areacalc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("areacalc", flag.ContinueOnError)
	single := fs.Int("wavelengths", 0, "evaluate a single wavelength count with device counts (0 = full sweep)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The area unit label comes from the quantity type itself, so a
	// units-layer change (say, switching the model to µm²) re-labels
	// every consumer without a stale hard-coded suffix.
	mm2 := units.SquareMillimeter(0).Unit()

	if *single > 0 {
		est, err := hetpnoc.EstimateArea(*single)
		if err != nil {
			return err
		}
		fmt.Printf("data wavelengths     %d\n", est.DataWavelengths)
		fmt.Printf("d-HetPNoC            %.3f %s (%d modulators, %d detectors)\n",
			est.DHetPNoCAreaMM2, mm2, est.DHetPNoCModulators, est.DHetPNoCDetectors)
		fmt.Printf("Firefly              %.3f %s (%d modulators, %d detectors)\n",
			est.FireflyAreaMM2, mm2, est.FireflyModulators, est.FireflyDetectors)
		fmt.Printf("d-HetPNoC overhead   %.1f%%\n", est.OverheadPct)
		return nil
	}

	fmt.Println("Figure 3-6: total electro-optic device area vs aggregate data bandwidth")
	fmt.Printf("%12s %14s %14s %10s\n", "wavelengths", "d-HetPNoC "+mm2, "Firefly "+mm2, "overhead")
	for _, p := range experiments.AreaSweep(nil) {
		fmt.Printf("%12d %14.3f %14.3f %9.1f%%\n",
			p.DataWavelengths, p.DynamicMM2, p.FireflyMM2, p.OverheadPct)
	}
	return nil
}
