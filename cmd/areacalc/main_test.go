package main

import "testing"

func TestRunSweep(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSinglePoint(t *testing.T) {
	if err := run([]string{"-wavelengths", "64"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadWavelengths(t *testing.T) {
	if err := run([]string{"-wavelengths", "-5"}); err != nil {
		// -5 <= 0 falls through to the sweep; only parsing errors fail.
		t.Fatalf("unexpected error: %v", err)
	}
	if err := run([]string{"-wavelengths", "abc"}); err == nil {
		t.Fatal("non-numeric flag accepted")
	}
}
