package main

import (
	"testing"
	"time"

	"hetpnoc/internal/serve"
)

func TestServerConfigMapping(t *testing.T) {
	got := serverConfig(8, 16, 512, 5_000_000, time.Minute, 3*time.Second)
	want := serve.Config{
		Workers:       8,
		QueueDepth:    16,
		CacheCapacity: 512,
		JobTimeout:    time.Minute,
		MaxCycles:     5_000_000,
		RetryAfter:    3 * time.Second,
	}
	if got != want {
		t.Fatalf("serverConfig = %+v, want %+v", got, want)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("undefined flag accepted")
	}
	if err := run([]string{"-workers", "zebra"}); err == nil {
		t.Fatal("malformed flag value accepted")
	}
}
