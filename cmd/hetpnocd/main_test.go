package main

import (
	"net"
	"testing"
	"time"

	"hetpnoc/internal/serve"
	"hetpnoc/internal/testutil/leakcheck"
)

func TestServerConfigMapping(t *testing.T) {
	got := serverConfig(8, 16, 512, 5_000_000, time.Minute, 3*time.Second)
	want := serve.Config{
		Workers:       8,
		QueueDepth:    16,
		CacheCapacity: 512,
		JobTimeout:    time.Minute,
		MaxCycles:     5_000_000,
		RetryAfter:    3 * time.Second,
	}
	if got != want {
		t.Fatalf("serverConfig = %+v, want %+v", got, want)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	leakcheck.Check(t)
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("undefined flag accepted")
	}
	if err := run([]string{"-workers", "zebra"}); err == nil {
		t.Fatal("malformed flag value accepted")
	}
}

// TestRunDrainsPoolWhenListenFails pins the listener-failure path: when
// ListenAndServe dies before any signal arrives (here, the port is
// already taken), run must still drain the worker pool it started
// instead of leaking the workers into the process.
func TestRunDrainsPoolWhenListenFails(t *testing.T) {
	leakcheck.Check(t)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	if err := run([]string{"-addr", ln.Addr().String(), "-workers", "2", "-queue", "4"}); err == nil {
		t.Fatal("run returned nil while the address was occupied")
	}
}
