// Command hetpnocd serves photonic-NoC simulations over HTTP/JSON: a
// bounded worker pool executes hetpnoc runs, identical configs are
// deduplicated through a content-addressed result cache, duplicate
// in-flight requests coalesce onto one simulation, and a full queue
// answers 429 with a Retry-After hint. SIGINT/SIGTERM drain gracefully.
//
// Usage:
//
//	hetpnocd -addr :8347 -workers 8 -queue 16 -cache 1024
//
// Endpoints: POST /v1/run, POST /v1/sweep, GET /healthz, GET /metricsz.
// The API and its semantics are documented in docs/SERVING.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetpnoc/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hetpnocd:", err)
		os.Exit(1)
	}
}

// serverConfig maps the flag values onto the serve configuration.
func serverConfig(workers, queue, cacheCap, maxCycles int, jobTimeout, retryAfter time.Duration) serve.Config {
	return serve.Config{
		Workers:       workers,
		QueueDepth:    queue,
		CacheCapacity: cacheCap,
		JobTimeout:    jobTimeout,
		MaxCycles:     maxCycles,
		RetryAfter:    retryAfter,
	}
}

// run is the daemon body: flag parsing, server construction, signal
// handling and graceful drain.
//
//hetpnoc:ctxroot process entry point; signal and drain contexts are minted here
func run(args []string) error {
	fs := flag.NewFlagSet("hetpnocd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8347", "listen address")
		workers    = fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "admission queue depth (0 = 2x workers)")
		cacheCap   = fs.Int("cache", 1024, "result cache entries")
		jobTimeout = fs.Duration("job-timeout", 2*time.Minute, "per-simulation timeout (0 = none)")
		maxCycles  = fs.Int("max-cycles", 10_000_000, "largest accepted cycle count per request (0 = unlimited)")
		retryAfter = fs.Duration("retry-after", time.Second, "backoff hint sent with 429 responses")
		drainWait  = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := log.New(os.Stderr, "hetpnocd: ", log.LstdFlags)
	srv := serve.New(serverConfig(*workers, *queue, *cacheCap, *maxCycles, *jobTimeout, *retryAfter))
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("serving on %s (workers, queue, cache per /metricsz)", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	select {
	case err := <-errc:
		// The listener died before any signal (bad address, port in
		// use). The worker pool is already running; drain it so its
		// goroutines exit rather than leaking into the caller.
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if poolErr := srv.Close(drainCtx); poolErr != nil && err == nil {
			err = fmt.Errorf("pool drain: %w", poolErr)
		}
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then let queued and
	// in-flight simulations finish inside the grace period.
	logger.Printf("signal received, draining (up to %s)", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	httpErr := httpSrv.Shutdown(drainCtx)
	poolErr := srv.Close(drainCtx)
	if err := <-errc; err != nil {
		return err
	}
	if httpErr != nil {
		return fmt.Errorf("http shutdown: %w", httpErr)
	}
	if poolErr != nil {
		return fmt.Errorf("pool drain: %w", poolErr)
	}
	logger.Printf("drained cleanly")
	return nil
}
