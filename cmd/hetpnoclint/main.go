// Command hetpnoclint runs the repo's determinism, hot-path,
// concurrency-safety and API-stability analyzers (internal/analysis/...)
// over module packages and fails on any undirected violation.
// `make lint` wires it into the tier-1 gate.
//
// Usage:
//
//	hetpnoclint [-json] [-tests=false] [-fix [-dry]] [-update] [-timing] [-only a,b] [-gcobsout file] [packages ...]
//
// Packages default to ./... . Each diagnostic carries a -fix-style
// suggestion: either the directive that would silence it (with its
// required justification placeholder) or the mechanical rewrite that
// removes the violation. Diagnostics with machine-applicable rewrites
// are applied in place by -fix (atomically per fix, conflicting fixes
// dropped); -fix -dry reports what would change without writing.
// -update regenerates the API golden snapshots checked by apistable.
// -json emits machine-readable diagnostics for CI annotation. -timing
// prints load time and per-analyzer wall time to stderr (the CI lint
// job budgets the whole suite). -only runs a comma-separated subset of
// analyzers for fast local iteration; skipping allocproof also skips
// its compiler-evidence build.
//
// The suite loads and type-checks the module once; per-package
// analyzers then run over each package, and the whole-program analyzers
// (hotpathreach, allocproof, snapcover, dettaint, lockorder, unitsafe,
// seedflow, goleak, chanown, wgsync) run once over all packages,
// sharing a single memoized call graph, hot-path BFS, value-flow layer
// and concurrency-protocol layer (internal/analysis/conc). allocproof additionally shells out one evidence build
// (go build -gcflags='-m=2 -d=ssa/check_bce'); -gcobsout writes its
// parsed escape/bounds-check report as JSON for the CI artifact.
//
// Exit status: 0 clean (or, with -fix, every diagnostic fixed), 1
// diagnostics reported, 2 load or internal failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/allocproof"
	"hetpnoc/internal/analysis/apistable"
	"hetpnoc/internal/analysis/chanown"
	"hetpnoc/internal/analysis/ctxflow"
	"hetpnoc/internal/analysis/detrand"
	"hetpnoc/internal/analysis/dettaint"
	"hetpnoc/internal/analysis/errsink"
	"hetpnoc/internal/analysis/fix"
	"hetpnoc/internal/analysis/gcobs"
	"hetpnoc/internal/analysis/globalstate"
	"hetpnoc/internal/analysis/goleak"
	"hetpnoc/internal/analysis/hotpathalloc"
	"hetpnoc/internal/analysis/hotpathreach"
	"hetpnoc/internal/analysis/load"
	"hetpnoc/internal/analysis/lockguard"
	"hetpnoc/internal/analysis/lockorder"
	"hetpnoc/internal/analysis/maprange"
	"hetpnoc/internal/analysis/seedflow"
	"hetpnoc/internal/analysis/snapcover"
	"hetpnoc/internal/analysis/unitsafe"
	"hetpnoc/internal/analysis/wgsync"
)

// analyzers is the hetpnoclint suite, in reporting order: the
// per-package analyzers first, then the whole-program layer, with
// apistable last (it only gates exported API goldens).
var analyzers = []*analysis.Analyzer{
	detrand.Analyzer,
	maprange.Analyzer,
	hotpathalloc.Analyzer,
	globalstate.Analyzer,
	lockguard.Analyzer,
	ctxflow.Analyzer,
	errsink.Analyzer,
	hotpathreach.Analyzer,
	allocproof.Analyzer,
	snapcover.Analyzer,
	dettaint.Analyzer,
	lockorder.Analyzer,
	unitsafe.Analyzer,
	seedflow.Analyzer,
	goleak.Analyzer,
	chanown.Analyzer,
	wgsync.Analyzer,
	apistable.Analyzer,
}

// selectAnalyzers resolves the -only flag: a comma-separated list of
// analyzer names, order-insensitive, applied as a filter over the full
// suite (suite order is preserved — apistable still reports last). The
// empty string selects everything.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analyzers, nil
	}
	wanted := make(map[string]bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		known := false
		for _, a := range analyzers {
			if a.Name == name {
				known = true
				break
			}
		}
		if !known {
			names := make([]string, len(analyzers))
			for i, a := range analyzers {
				names[i] = a.Name
			}
			return nil, fmt.Errorf("-only: unknown analyzer %q (available: %s)", name, strings.Join(names, ", "))
		}
		wanted[name] = true
	}
	if len(wanted) == 0 {
		return nil, fmt.Errorf("-only: no analyzer names given")
	}
	var out []*analysis.Analyzer
	for _, a := range analyzers {
		if wanted[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// timings collects -timing instrumentation: one load, then wall time
// per analyzer (summed over packages for the per-package ones).
var timings = struct {
	load time.Duration
	per  map[string]time.Duration
}{per: make(map[string]time.Duration)}

// gcobsOut is the -gcobsout flag: where lint writes the compiler
// evidence report allocproof collected, for the CI artifact.
var gcobsOut string

// diagnostic is one resolved violation, shaped for both output modes.
type diagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
	Fixable    bool   `json:"fixable,omitempty"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON for CI annotation")
	tests := flag.Bool("tests", true, "also lint _test.go files and external test packages")
	applyFix := flag.Bool("fix", false, "apply machine-applicable suggested fixes in place")
	dry := flag.Bool("dry", false, "with -fix: report what would change without writing files")
	update := flag.Bool("update", false, "regenerate apistable API golden snapshots")
	timing := flag.Bool("timing", false, "print load time and per-analyzer wall time to stderr")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: the full suite)")
	flag.StringVar(&gcobsOut, "gcobsout", "", "write allocproof's parsed compiler-evidence report (JSON) to this file")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	active, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetpnoclint: %v\n", err)
		os.Exit(2)
	}

	apistable.Update = *update
	diags, fileFixes, err := lint("", *tests, patterns, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetpnoclint: %v\n", err)
		os.Exit(2)
	}

	if *timing {
		total := timings.load
		fmt.Fprintf(os.Stderr, "hetpnoclint: load %9.3fs\n", timings.load.Seconds())
		for _, a := range active {
			d := timings.per[a.Name]
			total += d
			fmt.Fprintf(os.Stderr, "hetpnoclint: %-13s %8.3fs\n", a.Name, d.Seconds())
		}
		fmt.Fprintf(os.Stderr, "hetpnoclint: total %8.3fs\n", total.Seconds())
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "hetpnoclint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
			if d.Suggestion != "" {
				fmt.Printf("\tsuggestion: %s\n", d.Suggestion)
			}
		}
	}

	if *applyFix {
		applied, dropped, files, err := applyFixes(fileFixes, *dry)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hetpnoclint: %v\n", err)
			os.Exit(2)
		}
		verb := "applied"
		if *dry {
			verb = "would apply"
		}
		fmt.Fprintf(os.Stderr, "hetpnoclint: %s %d fix(es) in %d file(s), %d dropped as conflicting\n",
			verb, applied, files, dropped)
		// With fixes written, only diagnostics a human must resolve keep
		// the non-zero exit; in -dry mode nothing was resolved.
		unfixed := 0
		for _, d := range diags {
			if !d.Fixable || *dry {
				unfixed++
			}
		}
		if unfixed > 0 {
			os.Exit(1)
		}
		return
	}

	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "hetpnoclint: %d violation(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// lint loads patterns from the module containing dir and applies the
// active analyzers, returning position-sorted diagnostics plus the
// machine-applicable fixes grouped by absolute file path. Skipping an
// analyzer skips everything only it needs — excluding allocproof drops
// the gcobs compiler-evidence build entirely.
func lint(dir string, tests bool, patterns []string, active []*analysis.Analyzer) ([]diagnostic, map[string][]fix.Fix, error) {
	loader := &load.Loader{Dir: dir, Tests: tests}
	loadStart := time.Now()
	fset, pkgs, err := loader.Load(patterns...)
	timings.load = time.Since(loadStart)
	if err != nil {
		return nil, nil, err
	}

	cwd, _ := os.Getwd()
	diags := []diagnostic{}
	fileFixes := map[string][]fix.Fix{}
	reporter := func(a *analysis.Analyzer) func(analysis.Diagnostic) {
		return func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			file := pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil && len(rel) < len(file) {
					file = rel
				}
			}
			fixable := false
			for _, sf := range d.Fixes {
				if f, target, ok := resolveFix(fset, sf); ok {
					fileFixes[target] = append(fileFixes[target], f)
					fixable = true
				}
			}
			diags = append(diags, diagnostic{
				Analyzer:   a.Name,
				File:       file,
				Line:       pos.Line,
				Col:        pos.Column,
				Message:    d.Message,
				Suggestion: d.Suggestion,
				Fixable:    fixable,
			})
		}
	}

	for _, p := range pkgs {
		for _, a := range active {
			if a.Run == nil {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
				Report:    reporter(a),
			}
			start := time.Now()
			err := a.Run(pass)
			timings.per[a.Name] += time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %w", a.Name, p.Path, err)
			}
		}
	}

	// Whole-program layer: one pass over every loaded package, sharing
	// one cache so the call graph is built once across analyzers.
	units := make([]*analysis.PackageUnit, len(pkgs))
	for i, p := range pkgs {
		units[i] = &analysis.PackageUnit{Path: p.Path, Files: p.Files, Pkg: p.Pkg, TypesInfo: p.Info}
	}
	cache := make(map[string]any)
	cache[allocproof.DirKey] = dir
	for _, a := range active {
		if a.RunModule == nil {
			continue
		}
		mp := &analysis.ModulePass{
			Analyzer: a,
			Fset:     fset,
			Pkgs:     units,
			Report:   reporter(a),
			Cache:    cache,
		}
		start := time.Now()
		err := a.RunModule(mp)
		timings.per[a.Name] += time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	if gcobsOut != "" {
		if report, ok := cache[allocproof.ReportKey].(*gcobs.Report); ok {
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return nil, nil, fmt.Errorf("gcobsout: %w", err)
			}
			if err := os.WriteFile(gcobsOut, append(data, '\n'), 0o644); err != nil {
				return nil, nil, fmt.Errorf("gcobsout: %w", err)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})
	return diags, fileFixes, nil
}

// resolveFix turns a SuggestedFix's token positions into byte offsets.
// A fix whose edits span multiple files is not applicable.
func resolveFix(fset *token.FileSet, sf analysis.SuggestedFix) (fix.Fix, string, bool) {
	out := fix.Fix{Message: sf.Message}
	target := ""
	for _, e := range sf.TextEdits {
		start := fset.Position(e.Pos)
		end := fset.Position(e.End)
		if start.Filename == "" || start.Filename != end.Filename {
			return fix.Fix{}, "", false
		}
		if target == "" {
			target = start.Filename
		} else if target != start.Filename {
			return fix.Fix{}, "", false
		}
		out.Edits = append(out.Edits, fix.Edit{Start: start.Offset, End: end.Offset, New: e.NewText})
	}
	if target == "" {
		return fix.Fix{}, "", false
	}
	return out, target, true
}

// applyFixes rewrites (or, in dry mode, only reports) each file with its
// accumulated fixes.
func applyFixes(fileFixes map[string][]fix.Fix, dry bool) (applied, dropped, files int, err error) {
	paths := make([]string, 0, len(fileFixes))
	for p := range fileFixes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return applied, dropped, files, err
		}
		res := fix.Apply(src, fileFixes[path])
		applied += res.Applied
		dropped += res.Dropped
		if res.Applied == 0 {
			continue
		}
		files++
		if dry {
			fmt.Fprintf(os.Stderr, "hetpnoclint: would rewrite %s (%d fixes)\n", path, res.Applied)
			continue
		}
		if err := os.WriteFile(path, res.Src, 0o644); err != nil {
			return applied, dropped, files, err
		}
	}
	return applied, dropped, files, nil
}
