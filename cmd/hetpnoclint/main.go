// Command hetpnoclint runs the repo's determinism and hot-path
// analyzers (internal/analysis/...) over module packages and fails on
// any undirected violation. `make lint` wires it into the tier-1 gate.
//
// Usage:
//
//	hetpnoclint [-json] [-tests=false] [packages ...]
//
// Packages default to ./... . Each diagnostic carries a -fix-style
// suggestion: either the directive that would silence it (with its
// required justification placeholder) or the mechanical rewrite that
// removes the violation. -json emits machine-readable diagnostics for
// CI annotation.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load or internal
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/detrand"
	"hetpnoc/internal/analysis/globalstate"
	"hetpnoc/internal/analysis/hotpathalloc"
	"hetpnoc/internal/analysis/load"
	"hetpnoc/internal/analysis/maprange"
)

// analyzers is the hetpnoclint suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	detrand.Analyzer,
	maprange.Analyzer,
	hotpathalloc.Analyzer,
	globalstate.Analyzer,
}

// diagnostic is one resolved violation, shaped for both output modes.
type diagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON for CI annotation")
	tests := flag.Bool("tests", true, "also lint _test.go files and external test packages")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint("", *tests, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hetpnoclint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "hetpnoclint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
			if d.Suggestion != "" {
				fmt.Printf("\tsuggestion: %s\n", d.Suggestion)
			}
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "hetpnoclint: %d violation(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// lint loads patterns from the module containing dir and applies every
// analyzer, returning position-sorted diagnostics.
func lint(dir string, tests bool, patterns []string) ([]diagnostic, error) {
	loader := &load.Loader{Dir: dir, Tests: tests}
	fset, pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}

	cwd, _ := os.Getwd()
	diags := []diagnostic{}
	for _, p := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     p.Files,
				Pkg:       p.Pkg,
				TypesInfo: p.Info,
				Report: func(d analysis.Diagnostic) {
					pos := fset.Position(d.Pos)
					file := pos.Filename
					if cwd != "" {
						if rel, err := filepath.Rel(cwd, file); err == nil && len(rel) < len(file) {
							file = rel
						}
					}
					diags = append(diags, diagnostic{
						Analyzer:   a.Name,
						File:       file,
						Line:       pos.Line,
						Col:        pos.Column,
						Message:    d.Message,
						Suggestion: d.Suggestion,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, p.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})
	return diags, nil
}
