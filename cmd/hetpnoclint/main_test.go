package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoLintsClean is the self-gate: the hetpnoclint suite must run
// clean over the repository that ships it, test files included. A
// failure here means a determinism or hot-path violation landed without
// a justified directive.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	diags, _, err := lint("", true, []string{"hetpnoc/..."}, analyzers)
	if err != nil {
		t.Fatalf("lint failed: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
	}
}

// TestLintFindsViolations drives the full pipeline — go list, parsing,
// type checking, every analyzer — over a scratch module with one
// violation per analyzer.
func TestLintFindsViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module badmod\n\ngo 1.22\n")
	write("internal/sim/bad.go", `package sim

import (
	"fmt"
	"math/rand"
	"time"
)

var hits int

func Draw(m map[string]int) int64 {
	s := 0
	for _, v := range m {
		s += v
	}
	hits += s
	return rand.Int63() + time.Now().UnixNano()
}

//hetpnoc:hotpath
func Hot(n int) string {
	return fmt.Sprintf("%d", n)
}
`)
	write("internal/sim/ctx.go", `package sim

import "context"

func StepContext(ctx context.Context) error { return ctx.Err() }

func Step() error { return nil }

func Use(ctx context.Context) {
	Step()
	_ = context.Background()
}

func Drop() {
	Step()
}
`)
	write("internal/sim/guard.go", `package sim

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int //hetpnoc:guardedby mu
}

func (c *Counter) Bump() {
	c.n++
}
`)
	// Whole-program layer bait. helper is a non-sim package whose
	// Jitter launders time.Now; fabric is a sim package (suffix match)
	// that calls it, and whose hotpath root reaches helper.Label's
	// fmt.Sprintf two frames down. Both nests two mutexes with no
	// declared order. Neither package has an API golden, so apistable
	// ignores the exported surface here. fabric also carries the
	// compiler-evidence bait (Esc's local moved to the heap on a hot
	// path) and the snapshot-coverage bait (Core's Snapshot/Restore
	// both miss the mutable drift field).
	write("internal/helper/helper.go", `package helper

import (
	"fmt"
	"sync"
	"time"
)

func Jitter() int64 { return time.Now().UnixNano() }

func Label(n int) string { return fmt.Sprintf("h%d", n) }

type Reg struct{ mu sync.Mutex }

type Log struct{ mu sync.Mutex }

func Both(r *Reg, l *Log) {
	r.mu.Lock()
	l.mu.Lock()
	l.mu.Unlock()
	r.mu.Unlock()
}
`)
	write("internal/fabric/fabric.go", `package fabric

import "badmod/internal/helper"

//hetpnoc:hotpath
func Step(n int) int {
	return len(helper.Label(n))
}

func Sync() int64 {
	return helper.Jitter()
}

//hetpnoc:hotpath
func Esc() *int {
	v := 0
	return &v
}

type Core struct {
	ticks int
	drift int
}

func (c *Core) Advance() {
	c.ticks++
	c.drift++
}

type CoreSnap struct{ ticks int }

func (c *Core) Snapshot() *CoreSnap { return &CoreSnap{ticks: c.ticks} }

func (c *Core) Restore(s *CoreSnap) { c.ticks = s.ticks }
`)
	// seedflow bait: a Fabric type in the fabric package whose consumer
	// reseeds on only one branch before running. The methods return
	// nothing so errsink stays out of the way, and Fabric has no capture
	// method so snapcover never adopts it as a subject.
	write("internal/fabric/fork.go", `package fabric

type Checkpoint struct{ state int }

type Fabric struct{ rng int }

func (f *Fabric) Restore(cp *Checkpoint) { f.rng = cp.state }

func (f *Fabric) Reseed(seed int) { f.rng = seed }

func (f *Fabric) Run(cycles int) { f.rng += cycles }

func Fork(f *Fabric, cp *Checkpoint, fresh bool) {
	f.Restore(cp)
	if fresh {
		f.Reseed(1)
	}
	f.Run(10)
}
`)
	// unitsafe bait: a mini units package defining two domains, and a
	// consumer that launders one into the other and adds them.
	write("internal/units/units.go", `package units

type DB float64

type MilliWatt float64
`)
	write("internal/power/power.go", `package power

import "badmod/internal/units"

func Mix(db units.DB, mw units.MilliWatt) float64 {
	return float64(db) + float64(mw)
}

func Launder(mw units.MilliWatt) units.DB {
	return units.DB(float64(mw))
}
`)
	// Concurrency-protocol bait: Spin leaks a forever-goroutine
	// (goleak), Give closes a channel it received and Twice closes one
	// twice (chanown), Race calls Add inside the goroutine it accounts
	// for (wgsync). tick() keeps every body side-effect-free without a
	// package-level var that would wake globalstate.
	write("internal/pool/pool.go", `package pool

import "sync"

func tick() {}

func Spin() {
	go func() {
		for {
			tick()
		}
	}()
}

func Give(ch chan int) {
	close(ch)
}

func Twice() {
	ch := make(chan int)
	close(ch)
	close(ch)
}

func Race() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Add(1)
		defer wg.Done()
		defer wg.Done()
		tick()
	}()
	wg.Wait()
}
`)
	// Stale API golden: lists one symbol that no longer exists, knows
	// the rest.
	write("internal/sim/testdata/api/sim.golden", "Counter\ttype struct\n"+
		"Counter.Bump\tmethod func()\n"+
		"Draw\tfunc func(m map[string]int) int64\n"+
		"Drop\tfunc func()\n"+
		"Gone\tfunc func()\n"+
		"Hot\tfunc func(n int) string\n"+
		"Step\tfunc func() error\n"+
		"StepContext\tfunc func(ctx context.Context) error\n"+
		"Use\tfunc func(ctx context.Context)\n")

	diags, _, err := lint(dir, true, []string{"./..."}, analyzers)
	if err != nil {
		t.Fatalf("lint failed: %v", err)
	}
	got := map[string]int{}
	for _, d := range diags {
		got[d.Analyzer]++
		if d.Suggestion == "" {
			t.Errorf("diagnostic without a suggestion: %s: %s", d.Analyzer, d.Message)
		}
	}
	want := map[string]int{
		"detrand":      2, // math/rand import + time.Now call
		"maprange":     1, // undirected range over m
		"globalstate":  1, // package-level var hits
		"hotpathalloc": 1, // fmt.Sprintf in a hotpath function
		"ctxflow":      2, // Step() with ctx in scope + context.Background mint
		"errsink":      2, // Step() dropped error in Use and in Drop
		"lockguard":    1, // Counter.n written without Counter.mu
		"hotpathreach": 1, // fabric.Step -> helper.Label reaches fmt.Sprintf
		"dettaint":     1, // fabric.Sync calls helper.Jitter (taints to time.Now)
		"lockorder":    1, // helper.Both nests Reg.mu and Log.mu undeclared
		"snapcover":    2, // Core.Snapshot misses drift, Core.Restore misses drift
		"unitsafe":     2, // laundered dB+mW add, mW-to-dB laundering cast
		"seedflow":     1, // Fork runs with Reseed missing on one branch
		"goleak":       1, // Spin's goroutine loops forever, unjoined
		"chanown":      2, // Give closes a parameter, Twice double-closes
		"wgsync":       1, // Race calls Add inside the spawned goroutine
		"apistable":    1, // Gone removed relative to the golden
	}
	for a, n := range want {
		if got[a] != n {
			t.Errorf("analyzer %s reported %d diagnostics, want %d", a, got[a], n)
		}
	}
	// allocproof counts come from the live compiler's -m=2 output, which
	// shifts with toolchain version (inlining attribution, moved/escape
	// pairing), so assert a floor: Esc's moved-to-heap local and Hot's
	// boxed Sprintf operand are unambiguous hot-path allocations.
	if got["allocproof"] < 2 {
		t.Errorf("analyzer allocproof reported %d diagnostics, want at least 2", got["allocproof"])
	}
	if len(diags) == 0 {
		t.Fatal("expected diagnostics from the scratch module, got none")
	}
}

// TestSelectAnalyzers covers the -only flag resolution: subset
// selection preserves suite order, names are trimmed and
// order-insensitive, unknown names fail, and the empty string selects
// the full suite.
func TestSelectAnalyzers(t *testing.T) {
	full, err := selectAnalyzers("")
	if err != nil {
		t.Fatalf("empty -only: %v", err)
	}
	if len(full) != len(analyzers) {
		t.Errorf("empty -only selected %d analyzers, want the full suite of %d", len(full), len(analyzers))
	}

	active, err := selectAnalyzers("seedflow, detrand ,unitsafe")
	if err != nil {
		t.Fatalf("subset -only: %v", err)
	}
	gotNames := make([]string, len(active))
	for i, a := range active {
		gotNames[i] = a.Name
	}
	// Suite order, not flag order: detrand runs first, apistable would
	// still run last if selected.
	wantNames := []string{"detrand", "unitsafe", "seedflow"}
	if len(gotNames) != len(wantNames) {
		t.Fatalf("selected %v, want %v", gotNames, wantNames)
	}
	for i := range wantNames {
		if gotNames[i] != wantNames[i] {
			t.Fatalf("selected %v, want %v (suite order must be preserved)", gotNames, wantNames)
		}
	}

	if _, err := selectAnalyzers("detrand,nosuch"); err == nil {
		t.Error("unknown analyzer name accepted, want error")
	}
}

// TestFixProducesGoldenTree drives the whole -fix pipeline: lint the
// deliberately broken fixture tree, apply every machine-applicable fix,
// and byte-compare each rewritten file against its want/ twin.
func TestFixProducesGoldenTree(t *testing.T) {
	broken := filepath.Join("testdata", "fixtree", "broken")
	wantDir := filepath.Join("testdata", "fixtree", "want")

	dir := t.TempDir()
	entries, err := os.ReadDir(broken)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(broken, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	_, fileFixes, err := lint(dir, true, []string{"./..."}, analyzers)
	if err != nil {
		t.Fatalf("lint failed: %v", err)
	}
	applied, dropped, files, err := applyFixes(fileFixes, false)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if applied != 4 || dropped != 0 || files != 2 {
		t.Errorf("applied=%d dropped=%d files=%d, want 4/0/2", applied, dropped, files)
	}

	for _, name := range []string{"fixme.go", "errs.go"} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(wantDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s after -fix differs from want:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
}
