package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoLintsClean is the self-gate: the hetpnoclint suite must run
// clean over the repository that ships it, test files included. A
// failure here means a determinism or hot-path violation landed without
// a justified directive.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	diags, err := lint("", true, []string{"hetpnoc/..."})
	if err != nil {
		t.Fatalf("lint failed: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
	}
}

// TestLintFindsViolations drives the full pipeline — go list, parsing,
// type checking, every analyzer — over a scratch module with one
// violation per analyzer.
func TestLintFindsViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module badmod\n\ngo 1.22\n")
	write("internal/sim/bad.go", `package sim

import (
	"fmt"
	"math/rand"
	"time"
)

var hits int

func Draw(m map[string]int) int64 {
	s := 0
	for _, v := range m {
		s += v
	}
	hits += s
	return rand.Int63() + time.Now().UnixNano()
}

//hetpnoc:hotpath
func Hot(n int) string {
	return fmt.Sprintf("%d", n)
}
`)

	diags, err := lint(dir, true, []string{"./..."})
	if err != nil {
		t.Fatalf("lint failed: %v", err)
	}
	got := map[string]int{}
	for _, d := range diags {
		got[d.Analyzer]++
		if d.Suggestion == "" {
			t.Errorf("diagnostic without a suggestion: %s: %s", d.Analyzer, d.Message)
		}
	}
	want := map[string]int{
		"detrand":      2, // math/rand import + time.Now call
		"maprange":     1, // undirected range over m
		"globalstate":  1, // package-level var hits
		"hotpathalloc": 1, // fmt.Sprintf in a hotpath function
	}
	for a, n := range want {
		if got[a] != n {
			t.Errorf("analyzer %s reported %d diagnostics, want %d", a, got[a], n)
		}
	}
	if len(diags) == 0 {
		t.Fatal("expected diagnostics from the scratch module, got none")
	}
}
