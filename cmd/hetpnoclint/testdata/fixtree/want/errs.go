package fixtree

import "errors"

func mayFail() error { return errors.New("boom") }

func cleanup() {
	_ = mayFail()
}
