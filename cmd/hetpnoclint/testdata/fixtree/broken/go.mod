module fixtree

go 1.22
