// Package fixtree is a deliberately broken tree: every violation below
// carries a machine-applicable fix, and the want/ twin of this tree is
// the byte-exact output `hetpnoclint -fix` must produce.
package fixtree

import "context"

// Fab has a Step / StepContext method pair.
type Fab struct{}

// StepContext is the cancellable variant.
func (f *Fab) StepContext(ctx context.Context, n int) error { return ctx.Err() }

// Step is the context-less variant.
func (f *Fab) Step(n int) error { return nil }

// Run drops an error, drops the in-scope context, and mints a fresh
// Background inside a non-root function.
func Run(ctx context.Context, f *Fab) error {
	f.Step(1)
	return f.StepContext(context.Background(), 2)
}
