// Command validate is a CI gate: it re-runs the reproduction's key claims
// as assertions and exits non-zero if any fails. Where the full sweep
// reports numbers, validate enforces their shape:
//
//  1. Analytic area model matches the thesis exactly (1.608 / 1.367 mm²
//     at 64 wavelengths; +70% / +41.2% growth to 512).
//  2. Reservation-flit timing matches §3.4.1.1 (1 cycle at set 1, 2 at
//     set 3's worst case).
//  3. Uniform traffic: the two architectures deliver identical bits.
//  4. Skewed traffic: d-HetPNoC delivers more at lower energy/message.
//  5. Figure 1-1 shape: most benchmarks <1%, max ≈63% (BFS).
//
// Usage: validate [-cycles N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"hetpnoc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "validate: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("validate: all reproduction claims hold")
}

func run(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	cycles := fs.Int("cycles", 4000, "simulated cycles per run")
	warmup := fs.Int("warmup", 800, "warm-up cycles per run")
	seed := fs.Uint64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := checkArea(); err != nil {
		return err
	}
	if err := checkGPUShape(); err != nil {
		return err
	}
	return checkSimulationClaims(*cycles, *warmup, *seed)
}

func checkArea() error {
	small, err := hetpnoc.EstimateArea(64)
	if err != nil {
		return err
	}
	if math.Abs(float64(small.DHetPNoCAreaMM2)-1.608) > 0.002 || math.Abs(float64(small.FireflyAreaMM2)-1.367) > 0.002 {
		return fmt.Errorf("area at 64 wavelengths = %.3f/%.3f mm^2, thesis says 1.608/1.367",
			small.DHetPNoCAreaMM2, small.FireflyAreaMM2)
	}
	large, err := hetpnoc.EstimateArea(512)
	if err != nil {
		return err
	}
	dGrowth := float64((large.DHetPNoCAreaMM2/small.DHetPNoCAreaMM2 - 1) * 100)
	fGrowth := float64((large.FireflyAreaMM2/small.FireflyAreaMM2 - 1) * 100)
	if math.Abs(dGrowth-70) > 1 || math.Abs(fGrowth-41.2) > 1 {
		return fmt.Errorf("area growth 64->512 = %.1f%%/%.1f%%, thesis says 70%%/41.2%%", dGrowth, fGrowth)
	}
	fmt.Println("  area model: exact")
	return nil
}

func checkGPUShape() error {
	speedups, err := hetpnoc.GPUFlitSizeSpeedups()
	if err != nil {
		return err
	}
	below1 := 0
	var maxPct float64
	var maxName string
	for _, s := range speedups {
		if s.SpeedupPct < 1 {
			below1++
		}
		if s.SpeedupPct > maxPct {
			maxPct, maxName = s.SpeedupPct, s.Benchmark
		}
	}
	if below1 < len(speedups)/2 {
		return fmt.Errorf("only %d of %d GPU benchmarks below 1%%", below1, len(speedups))
	}
	if maxName != "BFS" || math.Abs(maxPct-63) > 2 {
		return fmt.Errorf("max GPU speedup %s %.1f%%, thesis says BFS ~63%%", maxName, maxPct)
	}
	fmt.Println("  figure 1-1 shape: holds")
	return nil
}

func checkSimulationClaims(cycles, warmup int, seed uint64) error {
	sim := func(arch hetpnoc.Architecture, traffic hetpnoc.Traffic) (hetpnoc.Result, error) {
		return hetpnoc.Run(hetpnoc.Config{
			Architecture: arch,
			BandwidthSet: 1,
			Traffic:      traffic,
			Cycles:       cycles,
			WarmupCycles: warmup,
			Seed:         seed,
		})
	}

	ffU, err := sim(hetpnoc.Firefly, hetpnoc.UniformTraffic())
	if err != nil {
		return err
	}
	dhU, err := sim(hetpnoc.DHetPNoC, hetpnoc.UniformTraffic())
	if err != nil {
		return err
	}
	if ffU.DeliveredGbps != dhU.DeliveredGbps {
		return fmt.Errorf("uniform traffic not equivalent: %.2f vs %.2f Gb/s",
			ffU.DeliveredGbps, dhU.DeliveredGbps)
	}
	fmt.Printf("  uniform equality: both %.1f Gb/s\n", ffU.DeliveredGbps)

	for _, level := range []int{1, 2, 3} {
		ff, err := sim(hetpnoc.Firefly, hetpnoc.SkewedTraffic(level))
		if err != nil {
			return err
		}
		dh, err := sim(hetpnoc.DHetPNoC, hetpnoc.SkewedTraffic(level))
		if err != nil {
			return err
		}
		if dh.DeliveredGbps <= ff.DeliveredGbps {
			return fmt.Errorf("skewed%d: d-HetPNoC %.1f Gb/s not above Firefly %.1f",
				level, dh.DeliveredGbps, ff.DeliveredGbps)
		}
		if dh.EnergyPerMessagePJ >= ff.EnergyPerMessagePJ {
			return fmt.Errorf("skewed%d: d-HetPNoC EPM %.1f not below Firefly %.1f",
				level, dh.EnergyPerMessagePJ, ff.EnergyPerMessagePJ)
		}
		fmt.Printf("  skewed%d: bandwidth %+.1f%%, EPM %+.1f%%\n", level,
			(dh.DeliveredGbps/ff.DeliveredGbps-1)*100,
			(dh.EnergyPerMessagePJ/ff.EnergyPerMessagePJ-1)*100)
	}
	return nil
}
