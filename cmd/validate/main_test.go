package main

import "testing"

func TestValidatePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation in -short mode")
	}
	if err := run([]string{"-cycles", "3000", "-warmup", "600"}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-cycles", "abc"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestCheckAreaIsExact(t *testing.T) {
	if err := checkArea(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckGPUShape(t *testing.T) {
	if err := checkGPUShape(); err != nil {
		t.Fatal(err)
	}
}
