// Command hetpnocsim runs one photonic-NoC simulation and prints its
// measurements.
//
// Usage:
//
//	hetpnocsim -arch d-hetpnoc -set 1 -traffic skewed3 -cycles 10000
//
// Traffic names: uniform, skewed1..skewed3, hotspot1..hotspot4, realapp.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"hetpnoc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hetpnocsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hetpnocsim", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "load the full configuration from a JSON file (flags override)")
		archName   = fs.String("arch", "d-hetpnoc", "architecture: firefly, d-hetpnoc or torus-pnoc")
		set        = fs.Int("set", 1, "bandwidth set: 1 (64 wavelengths), 2 (256) or 3 (512)")
		trafName   = fs.String("traffic", "uniform", "traffic pattern: uniform, skewed1-3, hotspot1-4, realapp, transpose, bit-complement, bit-reverse, shuffle, neighbor")
		load       = fs.Float64("load", 1.0, "offered-load scale")
		cycles     = fs.Int("cycles", 10000, "simulated cycles")
		warmup     = fs.Int("warmup", 1000, "warm-up (reset) cycles excluded from measurement")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		conc       = fs.Bool("concentrated", false, "use Firefly-style concentrated intra-cluster switches")
		prop       = fs.Bool("proportional", false, "use the demand-proportional DBA policy (d-hetpnoc only)")
		jsonOut    = fs.Bool("json", false, "emit the result as JSON")
		breakdown  = fs.Bool("energy-breakdown", false, "print the per-component energy breakdown")
		events     = fs.Int("events", 0, "capture and print the last N protocol events")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg hetpnoc.Config
	if *configPath != "" {
		loaded, err := loadConfig(*configPath)
		if err != nil {
			return err
		}
		cfg = loaded
	}

	// Explicitly-set flags override the file; defaults fill the rest.
	setFlags := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	fromFile := *configPath != ""

	if !fromFile || setFlags["set"] {
		cfg.BandwidthSet = *set
	}
	if !fromFile || setFlags["load"] {
		cfg.LoadScale = *load
	}
	if !fromFile || setFlags["cycles"] {
		cfg.Cycles = *cycles
	}
	if !fromFile || setFlags["warmup"] {
		cfg.WarmupCycles = *warmup
	}
	if !fromFile || setFlags["seed"] {
		cfg.Seed = *seed
	}
	if !fromFile || setFlags["concentrated"] {
		cfg.Concentrated = *conc
	}
	if !fromFile || setFlags["proportional"] {
		cfg.ProportionalDBA = *prop
	}
	if *events > 0 {
		cfg.EventCapacity = *events
	}
	if !fromFile || setFlags["arch"] {
		switch *archName {
		case "firefly":
			cfg.Architecture = hetpnoc.Firefly
		case "d-hetpnoc", "dhetpnoc":
			cfg.Architecture = hetpnoc.DHetPNoC
		case "torus-pnoc", "torus":
			cfg.Architecture = hetpnoc.TorusPNoC
		default:
			return fmt.Errorf("unknown architecture %q", *archName)
		}
	}
	if !fromFile || setFlags["traffic"] {
		traffic, err := trafficByName(*trafName)
		if err != nil {
			return err
		}
		cfg.Traffic = traffic
	}

	res, err := hetpnoc.Run(cfg)
	if err != nil {
		return err
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Printf("architecture      %s\n", res.Architecture)
	fmt.Printf("traffic           %s (load x%.2f)\n", res.Traffic, res.LoadScale)
	fmt.Printf("bandwidth set     %s\n", res.BandwidthSet)
	fmt.Printf("offered           %.1f Gb/s\n", res.OfferedGbps)
	fmt.Printf("delivered         %.1f Gb/s (%.2f Gb/s per core)\n", res.DeliveredGbps, res.PerCoreGbps)
	fmt.Printf("energy/message    %.1f pJ\n", res.EnergyPerMessagePJ)
	fmt.Printf("packets           delivered %d, dropped %d, rejected %d, lost %d, retransmitted %d\n",
		res.PacketsDelivered, res.PacketsDroppedRX, res.PacketsRejected, res.PacketsLost, res.Retransmissions)
	fmt.Printf("latency           avg %.1f cycles, p50 %d, p99 %d, max %d\n",
		res.AvgLatencyCycles, res.P50LatencyCycles, res.P99LatencyCycles, res.MaxLatencyCycles)
	fmt.Printf("service fairness  %.3f (Jain, over source clusters)\n", res.FairnessJain)
	fmt.Printf("wavelengths       %v\n", res.AllocatedWavelengths)
	if res.TokenRotations > 0 {
		fmt.Printf("token rotations   %d\n", res.TokenRotations)
	}
	if res.TorusPathsSetUp > 0 {
		fmt.Printf("torus circuits    %d set up, %d setups blocked\n",
			res.TorusPathsSetUp, res.TorusSetupsBlocked)
	}
	if *breakdown {
		fmt.Println("energy breakdown:")
		names := make([]string, 0, len(res.EnergyBreakdownPJ))
		for name := range res.EnergyBreakdownPJ {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-18s %14.0f pJ\n", name, res.EnergyBreakdownPJ[name])
		}
	}
	if *events > 0 {
		fmt.Printf("last %d protocol events:\n", len(res.Events))
		for _, e := range res.Events {
			fmt.Println(" ", e)
		}
	}
	return nil
}

// loadConfig reads a hetpnoc.Config from a JSON file. Unknown fields are
// rejected so typos surface instead of silently using defaults.
func loadConfig(path string) (hetpnoc.Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return hetpnoc.Config{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg hetpnoc.Config
	if err := dec.Decode(&cfg); err != nil {
		return hetpnoc.Config{}, fmt.Errorf("parse %s: %w", path, err)
	}
	return cfg, nil
}

// trafficByName maps CLI names to workloads.
func trafficByName(name string) (hetpnoc.Traffic, error) {
	switch name {
	case "uniform":
		return hetpnoc.UniformTraffic(), nil
	case "skewed1":
		return hetpnoc.SkewedTraffic(1), nil
	case "skewed2":
		return hetpnoc.SkewedTraffic(2), nil
	case "skewed3":
		return hetpnoc.SkewedTraffic(3), nil
	case "hotspot1":
		return hetpnoc.HotspotTraffic(0.10, 2), nil
	case "hotspot2":
		return hetpnoc.HotspotTraffic(0.10, 3), nil
	case "hotspot3":
		return hetpnoc.HotspotTraffic(0.20, 2), nil
	case "hotspot4":
		return hetpnoc.HotspotTraffic(0.20, 3), nil
	case "realapp":
		return hetpnoc.RealAppTraffic(), nil
	case "transpose", "bit-complement", "bit-reverse", "shuffle", "neighbor":
		return hetpnoc.PermutationTraffic(name), nil
	default:
		return hetpnoc.Traffic{}, fmt.Errorf("unknown traffic pattern %q", name)
	}
}
