package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTrafficByName(t *testing.T) {
	names := []string{
		"uniform", "skewed1", "skewed2", "skewed3",
		"hotspot1", "hotspot2", "hotspot3", "hotspot4", "realapp",
	}
	for _, name := range names {
		if _, err := trafficByName(name); err != nil {
			t.Errorf("trafficByName(%q): %v", name, err)
		}
	}
	if _, err := trafficByName("bogus"); err == nil {
		t.Error("unknown traffic name accepted")
	}
}

func TestRunShortSimulation(t *testing.T) {
	err := run([]string{
		"-arch", "d-hetpnoc", "-set", "1", "-traffic", "skewed2",
		"-cycles", "1500", "-warmup", "300", "-energy-breakdown",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	err := run([]string{
		"-arch", "firefly", "-traffic", "uniform",
		"-cycles", "1200", "-warmup", "200", "-json",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-arch", "nonsense"}); err == nil {
		t.Error("bad architecture accepted")
	}
	if err := run([]string{"-traffic", "nonsense"}); err == nil {
		t.Error("bad traffic accepted")
	}
	if err := run([]string{"-set", "9", "-cycles", "100", "-warmup", "10"}); err == nil {
		t.Error("bad set accepted")
	}
}

func TestConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := `{
		"Architecture": 1,
		"BandwidthSet": 1,
		"Traffic": {"Kind": 2, "SkewLevel": 2},
		"Cycles": 1500,
		"WarmupCycles": 300,
		"Seed": 9
	}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
	// Flags override the file.
	if err := run([]string{"-config", path, "-arch", "d-hetpnoc", "-cycles", "1200", "-warmup", "200"}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigFileRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"Archtiecture": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err == nil {
		t.Fatal("unknown config field accepted")
	}
	if err := run([]string{"-config", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing config file accepted")
	}
}

func TestRunWithEvents(t *testing.T) {
	if err := run([]string{"-cycles", "1200", "-warmup", "200", "-events", "8"}); err != nil {
		t.Fatal(err)
	}
}
