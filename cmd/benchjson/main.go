// Command benchjson runs the repository's benchmarks and writes a
// machine-readable BENCH_<date>.json report: mean ns/op, B/op, allocs/op
// per benchmark across -count runs, plus derived simulated-cycles-per-
// second for the cycle-loop benchmarks. It is the perf-regression
// harness's capture step; compare two reports to spot regressions.
// A comparison fails on a >20% throughput loss, and on any zero-alloc
// benchmark that started allocating — the hot-path benchmarks hold 0
// allocs/op by construction, so 0 -> N is a gate, not a note.
//
//	go run ./cmd/benchjson                       # fast default selection
//	go run ./cmd/benchjson -bench . -pkg ./...   # everything (slow)
//	go run ./cmd/benchjson -out bench.json
//	go run ./cmd/benchjson -compare BENCH_old.json -out /tmp/b.json   # run, then diff
//	go run ./cmd/benchjson -compare BENCH_old.json -against new.json  # diff only
//
// A report that already exists at the output path is never clobbered by
// accident: re-running on the same day fails unless -force is given, so
// a committed daily snapshot survives a stray second run.
//
// The command shells out to `go test -bench -benchmem`, so it must run
// from the module root with the go toolchain on PATH.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"time"
)

// Report is the top-level JSON document.
type Report struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"goVersion"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Bench     string   `json:"bench"`
	Packages  string   `json:"packages"`
	Count     int      `json:"count"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		bench     = fs.String("bench", "BenchmarkFabricStep|BenchmarkFabricStepIdle|BenchmarkFabricBuild|BenchmarkRouterTick|BenchmarkTokenTick|BenchmarkSimulationThroughput|BenchmarkBatchSweep256|BenchmarkSequentialSweep256", "benchmark regex passed to go test -bench")
		pkg       = fs.String("pkg", "./...", "package pattern passed to go test")
		count     = fs.Int("count", 3, "runs per benchmark (go test -count)")
		benchtime = fs.String("benchtime", "", "go test -benchtime (e.g. 1x, 100ms); empty = go default")
		out       = fs.String("out", "", "output path (default BENCH_<date>.json)")
		force     = fs.Bool("force", false, "overwrite an existing report at the output path")
		verbose   = fs.Bool("v", false, "echo the raw go test output to stderr")
		compare   = fs.String("compare", "", "baseline report to diff against; exits nonzero on a >20% throughput regression")
		against   = fs.String("against", "", "with -compare: an existing report to diff instead of running the benchmarks")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *against != "" {
		if *compare == "" {
			return fmt.Errorf("-against requires -compare BASELINE.json")
		}
		return runCompare(*compare, *against)
	}

	now := time.Now()
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", now.Format("2006-01-02"))
	}
	if !*force {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("%s already exists; pass -force to overwrite it", path)
		}
	}

	cmdArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", fmt.Sprint(*count)}
	if *benchtime != "" {
		cmdArgs = append(cmdArgs, "-benchtime", *benchtime)
	}
	cmdArgs = append(cmdArgs, *pkg)

	var buf bytes.Buffer
	cmd := exec.Command("go", cmdArgs...)
	if *verbose {
		cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	} else {
		cmd.Stdout = &buf
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go %v: %w", cmdArgs, err)
	}

	results, err := parseBench(&buf)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched -bench %q in %s", *bench, *pkg)
	}

	report := Report{
		Date:      now.Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     *bench,
		Packages:  *pkg,
		Count:     *count,
		Benchtime: *benchtime,
		Results:   results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	for _, r := range results {
		line := fmt.Sprintf("  %-50s %12.0f ns/op %10.0f B/op %8.1f allocs/op", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.SimCyclesPerSecond > 0 {
			line += fmt.Sprintf("  %.0f cycles/s", r.SimCyclesPerSecond)
		}
		fmt.Println(line)
	}
	if *compare != "" {
		return runCompare(*compare, path)
	}
	return nil
}
