package main

import (
	"math"
	"testing"
)

func result(name string, nsPerOp, cyclesPerSec float64) Result {
	return Result{Name: name, Runs: 1, NsPerOp: nsPerOp, SimCyclesPerSecond: cyclesPerSec}
}

func TestCompareReports(t *testing.T) {
	baseline := Report{Results: []Result{
		result("BenchmarkFabricStep", 70000, 1e9/70000),
		result("BenchmarkSimulationThroughput", 20e6, 1e5),
		result("BenchmarkOnlyInBaseline", 100, 0),
	}}
	current := Report{Results: []Result{
		// Renamed into sub-benchmarks: the flat baseline name must match
		// the fastest of the group.
		result("BenchmarkFabricStep/BW1", 14000, 1e9/14000),
		result("BenchmarkFabricStep/BW3", 16000, 1e9/16000),
		// Regressed beyond 20%.
		result("BenchmarkSimulationThroughput", 30e6, 0.66e5),
	}}

	deltas := compareReports(baseline, current)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}

	step := deltas[0]
	if step.current.Name != "BenchmarkFabricStep/BW1" {
		t.Fatalf("flat name matched %q, want the fastest sub-benchmark", step.current.Name)
	}
	if want := 70000.0 / 14000.0; math.Abs(step.speedup-want) > 1e-9 {
		t.Fatalf("speedup = %g, want %g", step.speedup, want)
	}
	if step.regression {
		t.Fatal("5x speedup flagged as a regression")
	}

	thr := deltas[1]
	if !thr.regression {
		t.Fatalf("34%% throughput loss not flagged: %+v", thr)
	}
}

func TestCompareReportsBoundary(t *testing.T) {
	baseline := Report{Results: []Result{result("BenchmarkX", 1000, 1e6)}}

	// Exactly at the threshold is not a regression; just past it is.
	at := Report{Results: []Result{result("BenchmarkX", 1250, 0.8e6)}}
	if d := compareReports(baseline, at); len(d) != 1 || d[0].regression {
		t.Fatalf("20%% loss should pass: %+v", d)
	}
	past := Report{Results: []Result{result("BenchmarkX", 1300, 0.79e6)}}
	if d := compareReports(baseline, past); len(d) != 1 || !d[0].regression {
		t.Fatalf("21%% loss should fail: %+v", d)
	}
}

func TestCompareReportsNsFallback(t *testing.T) {
	// Benchmarks without a cycle mapping compare on inverted ns/op.
	baseline := Report{Results: []Result{result("BenchmarkBuild", 400000, 0)}}
	current := Report{Results: []Result{result("BenchmarkBuild", 900000, 0)}}
	d := compareReports(baseline, current)
	if len(d) != 1 || !d[0].regression {
		t.Fatalf("2.25x ns/op rise should be a regression: %+v", d)
	}
}
