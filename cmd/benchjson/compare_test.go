package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func result(name string, nsPerOp, cyclesPerSec float64) Result {
	return Result{Name: name, Runs: 1, NsPerOp: nsPerOp, SimCyclesPerSecond: cyclesPerSec}
}

func TestCompareReports(t *testing.T) {
	baseline := Report{Results: []Result{
		result("BenchmarkFabricStep", 70000, 1e9/70000),
		result("BenchmarkSimulationThroughput", 20e6, 1e5),
		result("BenchmarkOnlyInBaseline", 100, 0),
	}}
	current := Report{Results: []Result{
		// Renamed into sub-benchmarks: the flat baseline name must match
		// the fastest of the group.
		result("BenchmarkFabricStep/BW1", 14000, 1e9/14000),
		result("BenchmarkFabricStep/BW3", 16000, 1e9/16000),
		// Regressed beyond 20%.
		result("BenchmarkSimulationThroughput", 30e6, 0.66e5),
	}}

	deltas := compareReports(baseline, current)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}

	step := deltas[0]
	if step.current.Name != "BenchmarkFabricStep/BW1" {
		t.Fatalf("flat name matched %q, want the fastest sub-benchmark", step.current.Name)
	}
	if want := 70000.0 / 14000.0; math.Abs(step.speedup-want) > 1e-9 {
		t.Fatalf("speedup = %g, want %g", step.speedup, want)
	}
	if step.regression {
		t.Fatal("5x speedup flagged as a regression")
	}

	thr := deltas[1]
	if !thr.regression {
		t.Fatalf("34%% throughput loss not flagged: %+v", thr)
	}
}

func TestCompareReportsBoundary(t *testing.T) {
	baseline := Report{Results: []Result{result("BenchmarkX", 1000, 1e6)}}

	// Exactly at the threshold is not a regression; just past it is.
	at := Report{Results: []Result{result("BenchmarkX", 1250, 0.8e6)}}
	if d := compareReports(baseline, at); len(d) != 1 || d[0].regression {
		t.Fatalf("20%% loss should pass: %+v", d)
	}
	past := Report{Results: []Result{result("BenchmarkX", 1300, 0.79e6)}}
	if d := compareReports(baseline, past); len(d) != 1 || !d[0].regression {
		t.Fatalf("21%% loss should fail: %+v", d)
	}
}

// TestCompareReportsAllocGate: a benchmark whose baseline holds 0
// allocs/op fails the comparison as soon as it allocates at all, even
// with throughput unchanged; a benchmark that already allocated only
// notes the rise, and staying at zero stays clean.
func TestCompareReportsAllocGate(t *testing.T) {
	withAllocs := func(r Result, allocs float64) Result {
		r.AllocsPerOp = allocs
		return r
	}
	baseline := Report{Results: []Result{
		withAllocs(result("BenchmarkFabricStep", 70000, 1e9/70000), 0),
		withAllocs(result("BenchmarkBuild", 400000, 0), 12),
		withAllocs(result("BenchmarkRouterTick", 900, 1e9/900), 0),
	}}
	current := Report{Results: []Result{
		withAllocs(result("BenchmarkFabricStep", 70000, 1e9/70000), 3),
		withAllocs(result("BenchmarkBuild", 400000, 0), 20),
		withAllocs(result("BenchmarkRouterTick", 900, 1e9/900), 0),
	}}

	deltas := compareReports(baseline, current)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3: %+v", len(deltas), deltas)
	}
	if !deltas[0].allocRegression {
		t.Fatalf("0 -> 3 allocs/op not flagged: %+v", deltas[0])
	}
	if deltas[0].regression {
		t.Fatal("alloc regression misreported as a throughput regression")
	}
	if deltas[1].allocRegression {
		t.Fatalf("12 -> 20 allocs/op gated as a zero-alloc regression: %+v", deltas[1])
	}
	if deltas[2].allocRegression {
		t.Fatalf("steady zero allocs flagged: %+v", deltas[2])
	}
}

// TestRunCompareFailsOnAllocRegression drives runCompare end to end over
// report files: the 0 -> N allocs/op rise must fail the comparison even
// though throughput is identical.
func TestRunCompareFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	writeReport := func(name string, r Report) string {
		t.Helper()
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := writeReport("base.json", Report{Results: []Result{
		result("BenchmarkFabricStep", 70000, 1e9/70000),
	}})
	cur := Report{Results: []Result{result("BenchmarkFabricStep", 70000, 1e9/70000)}}
	cur.Results[0].AllocsPerOp = 2

	err := runCompare(base, writeReport("cur.json", cur))
	if err == nil {
		t.Fatal("0 -> 2 allocs/op passed the comparison")
	}
	if !strings.Contains(err.Error(), "BenchmarkFabricStep") {
		t.Fatalf("alloc-regression error does not name the benchmark: %v", err)
	}

	// Identical reports compare clean.
	if err := runCompare(base, base); err != nil {
		t.Fatalf("identical reports failed: %v", err)
	}
}

func TestCompareReportsNsFallback(t *testing.T) {
	// Benchmarks without a cycle mapping compare on inverted ns/op.
	baseline := Report{Results: []Result{result("BenchmarkBuild", 400000, 0)}}
	current := Report{Results: []Result{result("BenchmarkBuild", 900000, 0)}}
	d := compareReports(baseline, current)
	if len(d) != 1 || !d[0].regression {
		t.Fatalf("2.25x ns/op rise should be a regression: %+v", d)
	}
}
