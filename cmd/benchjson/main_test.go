package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRefusesSameDayOverwrite: an existing report at the output path is
// an error unless -force is given, so a committed daily snapshot is not
// clobbered by a stray second run. The check fires before any benchmark
// is run, which keeps this test fast.
func TestRefusesSameDayOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_2026-01-01.json")
	if err := os.WriteFile(path, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-out", path})
	if err == nil || !strings.Contains(err.Error(), "-force") {
		t.Fatalf("run over an existing report = %v, want refusal mentioning -force", err)
	}
}
