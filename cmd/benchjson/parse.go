package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is the aggregated outcome of one benchmark across -count runs.
// Means are arithmetic over the per-run values the testing package prints.
type Result struct {
	Name string `json:"name"`
	Runs int    `json:"runs"`

	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`

	// SimCyclesPerSecond is derived for benchmarks whose op simulates a
	// known number of fabric cycles (see cyclesPerOp); 0 elsewhere.
	SimCyclesPerSecond float64 `json:"simCyclesPerSecond,omitempty"`

	// Metrics holds any custom b.ReportMetric values (unit -> mean).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// cyclesPerOp maps benchmark base names to how many simulated fabric
// cycles one benchmark op advances, letting the report state simulator
// throughput in cycles/second rather than raw ns/op.
var cyclesPerOp = map[string]float64{
	"BenchmarkFabricStep":           1,
	"BenchmarkFabricStepIdle":       1,
	"BenchmarkSimulationThroughput": 2000,
}

// sample is one parsed benchmark output line.
type sample struct {
	name    string
	metrics map[string]float64 // unit -> value, e.g. "ns/op" -> 9136
}

// parseLine parses one `go test -bench` result line, returning ok=false
// for non-benchmark lines (goos/pkg headers, PASS, etc.). Lines look like:
//
//	BenchmarkFabricStep-8   200   9136 ns/op   102 B/op   0 allocs/op
//
// with optional custom metric pairs appended.
func parseLine(line string) (sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return sample{}, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return sample{}, false // not an iteration count
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix the testing package appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	s := sample{name: name, metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return sample{}, false
		}
		s.metrics[fields[i+1]] = v
	}
	return s, true
}

// baseName returns the benchmark name without sub-benchmark path (the
// part before the first '/'), used for the cycles-per-op lookup.
func baseName(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// parseBench reads `go test -bench` output and aggregates repeated runs
// of each benchmark into mean Results, ordered by first appearance.
func parseBench(r io.Reader) ([]Result, error) {
	type acc struct {
		runs int
		sums map[string]float64
	}
	order := []string{}
	byName := map[string]*acc{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		a := byName[s.name]
		if a == nil {
			a = &acc{sums: make(map[string]float64)}
			byName[s.name] = a
			order = append(order, s.name)
		}
		a.runs++
		for unit, v := range s.metrics {
			a.sums[unit] += v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: reading bench output: %w", err)
	}

	results := make([]Result, 0, len(order))
	for _, name := range order {
		a := byName[name]
		res := Result{Name: name, Runs: a.runs}
		custom := map[string]float64{}
		for unit, sum := range a.sums {
			mean := sum / float64(a.runs)
			switch unit {
			case "ns/op":
				res.NsPerOp = mean
			case "B/op":
				res.BytesPerOp = mean
			case "allocs/op":
				res.AllocsPerOp = mean
			case "MB/s":
				custom[unit] = mean
			default:
				custom[unit] = mean
			}
		}
		if cyc := cyclesPerOp[baseName(name)]; cyc > 0 && res.NsPerOp > 0 {
			res.SimCyclesPerSecond = cyc / res.NsPerOp * 1e9
		}
		if len(custom) > 0 {
			res.Metrics = custom
		}
		results = append(results, res)
	}
	return results, nil
}
