package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: hetpnoc/internal/fabric
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFabricStep     	     200	      9136 ns/op	     102 B/op	       0 allocs/op
BenchmarkFabricStep     	     200	      9336 ns/op	     104 B/op	       0 allocs/op
BenchmarkFabricStepIdle 	     200	        86.23 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig3_3_PeakBandwidth/BW1-8         	       1	344057672 ns/op	        12.30 dhet-bw-gain-%	  50041 allocs/op
PASS
ok  	hetpnoc/internal/fabric	0.041s
`

func TestParseLine(t *testing.T) {
	s, ok := parseLine("BenchmarkFabricStep-8   200   9136 ns/op   102 B/op   0 allocs/op")
	if !ok {
		t.Fatal("expected a benchmark line to parse")
	}
	if s.name != "BenchmarkFabricStep" {
		t.Fatalf("name = %q, want GOMAXPROCS suffix stripped", s.name)
	}
	if s.metrics["ns/op"] != 9136 || s.metrics["B/op"] != 102 || s.metrics["allocs/op"] != 0 {
		t.Fatalf("metrics = %v", s.metrics)
	}

	for _, line := range []string{
		"goos: linux",
		"pkg: hetpnoc/internal/fabric",
		"PASS",
		"ok  	hetpnoc/internal/fabric	0.041s",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("non-benchmark line parsed: %q", line)
		}
	}
}

func TestParseBenchAggregates(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(results), results)
	}

	step := results[0]
	if step.Name != "BenchmarkFabricStep" || step.Runs != 2 {
		t.Fatalf("first result = %+v, want 2 aggregated FabricStep runs", step)
	}
	if step.NsPerOp != 9236 || step.BytesPerOp != 103 {
		t.Fatalf("means = %g ns/op, %g B/op; want 9236, 103", step.NsPerOp, step.BytesPerOp)
	}
	// 1 simulated cycle per op -> cycles/s = 1e9 / nsPerOp.
	if want := 1e9 / 9236; math.Abs(step.SimCyclesPerSecond-want) > 1e-6 {
		t.Fatalf("cycles/s = %g, want %g", step.SimCyclesPerSecond, want)
	}

	idle := results[1]
	if idle.Name != "BenchmarkFabricStepIdle" || idle.SimCyclesPerSecond == 0 {
		t.Fatalf("idle result = %+v, want cycles/s derived", idle)
	}

	fig := results[2]
	if fig.Name != "BenchmarkFig3_3_PeakBandwidth/BW1" {
		t.Fatalf("sub-benchmark name = %q", fig.Name)
	}
	if fig.SimCyclesPerSecond != 0 {
		t.Fatalf("figure benchmark should have no cycles/s mapping, got %g", fig.SimCyclesPerSecond)
	}
	if fig.Metrics["dhet-bw-gain-%"] != 12.30 {
		t.Fatalf("custom metric lost: %+v", fig.Metrics)
	}
}
