package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// regressionThreshold is the fractional throughput loss that fails a
// comparison: a benchmark regressing by more than 20% in simulated
// cycles/second (or, for benchmarks without a cycle mapping, ns/op)
// is a perf regression.
const regressionThreshold = 0.20

// loadReport reads a benchjson report from disk.
func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// delta is one benchmark's baseline-to-current comparison.
type delta struct {
	name       string
	baseline   Result
	current    Result
	speedup    float64 // current throughput / baseline throughput
	regression bool
	// allocRegression marks a zero-alloc benchmark that started
	// allocating: the hot-path benchmarks hold 0 allocs/op by
	// construction, so any rise off zero is a correctness-grade
	// regression regardless of throughput.
	allocRegression bool
}

// throughput returns the comparable rate of a result: simulated
// cycles/second when derived, else inverted ns/op (ops/second).
func throughput(r Result) float64 {
	if r.SimCyclesPerSecond > 0 {
		return r.SimCyclesPerSecond
	}
	if r.NsPerOp > 0 {
		return 1e9 / r.NsPerOp
	}
	return 0
}

// matchResult finds the current result comparable to a baseline entry:
// an exact name match when one exists, otherwise the fastest current
// result sharing the benchmark's base name. The fallback bridges
// renames that split a benchmark into sub-benchmarks (the committed
// baseline keeps the old flat name until the next capture).
func matchResult(baseline Result, current []Result) (Result, bool) {
	for _, c := range current {
		if c.Name == baseline.Name {
			return c, true
		}
	}
	var best Result
	found := false
	for _, c := range current {
		if baseName(c.Name) != baseName(baseline.Name) {
			continue
		}
		if !found || throughput(c) > throughput(best) {
			best = c
			found = true
		}
	}
	return best, found
}

// compareReports pairs up the two reports' results and flags
// regressions beyond the threshold. Benchmarks present on only one side
// are skipped: a comparison gates existing perf, not coverage.
func compareReports(baseline, current Report) []delta {
	var out []delta
	for _, b := range baseline.Results {
		c, ok := matchResult(b, current.Results)
		if !ok {
			continue
		}
		bt, ct := throughput(b), throughput(c)
		if bt == 0 || ct == 0 {
			continue
		}
		d := delta{
			name:     b.Name,
			baseline: b,
			current:  c,
			speedup:  ct / bt,
		}
		d.regression = d.speedup < 1-regressionThreshold
		d.allocRegression = b.AllocsPerOp == 0 && c.AllocsPerOp > 0
		out = append(out, d)
	}
	return out
}

// runCompare prints the per-benchmark deltas and returns an error when
// any benchmark regressed beyond the threshold.
func runCompare(baselinePath, currentPath string) error {
	baseline, err := loadReport(baselinePath)
	if err != nil {
		return err
	}
	current, err := loadReport(currentPath)
	if err != nil {
		return err
	}
	deltas := compareReports(baseline, current)
	if len(deltas) == 0 {
		return fmt.Errorf("no comparable benchmarks between %s and %s", baselinePath, currentPath)
	}

	fmt.Printf("comparing %s (baseline) -> %s\n", baselinePath, currentPath)
	var regressed, allocRegressed []string
	for _, d := range deltas {
		label := d.name
		if d.current.Name != d.name {
			label = fmt.Sprintf("%s -> %s", d.name, d.current.Name)
		}
		status := "ok"
		if d.regression {
			status = "REGRESSION"
			regressed = append(regressed, label)
		}
		fmt.Printf("  %-55s %8.0f -> %8.0f ns/op  %+6.1f%%  %s\n",
			label, d.baseline.NsPerOp, d.current.NsPerOp, (d.speedup-1)*100, status)
		if d.allocRegression {
			allocRegressed = append(allocRegressed, label)
			fmt.Printf("  %-55s ALLOC REGRESSION: 0 -> %.1f allocs/op\n", "", d.current.AllocsPerOp)
		} else if d.current.AllocsPerOp > d.baseline.AllocsPerOp {
			fmt.Printf("  %-55s allocs/op rose %.1f -> %.1f\n", "", d.baseline.AllocsPerOp, d.current.AllocsPerOp)
		}
	}
	if len(allocRegressed) > 0 {
		return fmt.Errorf("zero-alloc benchmarks started allocating: %s",
			strings.Join(allocRegressed, ", "))
	}
	if len(regressed) > 0 {
		return fmt.Errorf("throughput regressed >%.0f%% on: %s",
			regressionThreshold*100, strings.Join(regressed, ", "))
	}
	fmt.Println("no throughput regression beyond", fmt.Sprintf("%.0f%%", regressionThreshold*100))
	return nil
}
