// Command report runs the evaluation and writes a self-contained HTML
// report with inline SVG charts: the Figures 3-3/3-4 matrices, the
// Figure 3-6 area model, the Figure 1-1 motivation, and the extension
// ablations.
//
// Usage:
//
//	report -o report.html            # full-length runs
//	report -o report.html -quick     # fast pass
//	report -o report.html -ablations # include the ablation studies
package main

import (
	"flag"
	"fmt"
	"os"

	"hetpnoc/internal/experiments"
	"hetpnoc/internal/report"
	"hetpnoc/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		out       = fs.String("o", "report.html", "output file")
		quick     = fs.Bool("quick", false, "short runs (4000 cycles)")
		ablations = fs.Bool("ablations", false, "include the ablation studies (slower)")
		seed      = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Open the output before spending minutes on simulations.
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()

	opts := experiments.Options{Seed: *seed}
	if *quick {
		opts.Cycles = 4000
		opts.WarmupCycles = 800
	}

	r := report.New(
		"d-HetPNoC reproduction report",
		"Heterogeneous Photonic Network-on-Chip with Dynamic Bandwidth Allocation (Shah, RIT/SOCC 2014) — simulated with the hetpnoc package")

	gpu, err := experiments.Figure1_1()
	if err != nil {
		return err
	}
	if err := r.AddGPUSpeedups(gpu); err != nil {
		return err
	}

	rows, err := experiments.PeakBandwidth(opts, traffic.BandwidthSets())
	if err != nil {
		return err
	}
	for _, set := range traffic.BandwidthSets() {
		if err := r.AddPeakBandwidth(set.Name, rows); err != nil {
			return err
		}
	}

	if err := r.AddAreaModel(experiments.AreaSweep(nil)); err != nil {
		return err
	}

	if *ablations {
		ab, err := experiments.AllAblations(opts)
		if err != nil {
			return err
		}
		r.AddAblations(ab)
	}

	if err := r.Render(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}
