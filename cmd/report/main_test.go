package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.html")
	// The full matrix is slow; shrink it by reusing the -quick path but
	// with very short runs via seed-stable defaults is not available, so
	// gate on -short.
	if testing.Short() {
		t.Skip("report generation in -short mode")
	}
	if err := run([]string{"-o", out, "-quick"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, want := range []string{"<!DOCTYPE html>", "Figure 3-3", "Figure 3-6", "BW3"} {
		if !strings.Contains(doc, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-seed", "notanumber"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRejectsUnwritableOutput(t *testing.T) {
	if err := run([]string{"-o", "/nonexistent-dir/x.html", "-quick"}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}
