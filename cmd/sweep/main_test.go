package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hetpnoc/internal/testutil/leakcheck"
)

func TestRunTables(t *testing.T) {
	leakcheck.Check(t)
	if err := run([]string{"-tables"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig1_1(t *testing.T) {
	if err := run([]string{"-fig", "1-1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig3_6(t *testing.T) {
	if err := run([]string{"-fig", "3-6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickSimulationFigure(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("simulation figure in -short mode")
	}
	if err := run([]string{"-fig", "3-8", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-cycles", "abc"}); err == nil {
		t.Fatal("non-numeric cycles accepted")
	}
}

func TestRunFig3_3WithCSV(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("simulation figure in -short mode")
	}
	dir := t.TempDir()
	if err := run([]string{"-fig", "3-3", "-quick", "-cycles", "2000", "-warmup", "400", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig3-3_peak_bandwidth.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "d-hetpnoc") {
		t.Fatal("CSV missing architecture rows")
	}
}

func TestRunFig3_3RejectsBadCSVDir(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figure in -short mode")
	}
	err := run([]string{"-fig", "3-3", "-quick", "-cycles", "1500", "-warmup", "300", "-csv", "/nonexistent-dir"})
	if err == nil {
		t.Fatal("unwritable CSV dir accepted")
	}
}

func TestRunCaseStudiesAndExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figures in -short mode")
	}
	if err := run([]string{"-fig", "3-5", "-cycles", "2000", "-warmup", "400"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "none", "-latency", "-cycles", "1500", "-warmup", "300"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "none", "-sensitivity", "-cycles", "1500", "-warmup", "300"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScalingFigures(t *testing.T) {
	leakcheck.Check(t)
	if testing.Short() {
		t.Skip("simulation figures in -short mode")
	}
	if err := run([]string{"-fig", "3-7", "-cycles", "1500", "-warmup", "300"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "3-10", "-cycles", "1500", "-warmup", "300"}); err != nil {
		t.Fatal(err)
	}
}
