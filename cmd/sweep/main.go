// Command sweep regenerates the thesis's evaluation: every figure of §3.4
// as a printed table. Run it without flags for everything, or select a
// figure:
//
//	sweep -fig 1-1      # GPU flit-size speedups
//	sweep -fig 3-3      # peak bandwidth matrix (also carries Fig 3-4 EPM)
//	sweep -fig 3-5      # case studies (hotspot + real application)
//	sweep -fig 3-6      # area model
//	sweep -fig 3-7      # d-HetPNoC scaling across bandwidth sets
//	sweep -fig 3-8      # wavelengths vs bandwidth/EPM/area (also Fig 3-9)
//	sweep -fig 3-10     # Firefly scaling across bandwidth sets
//	sweep -tables       # the input tables (3-1..3-5)
//
// Simulation figures honour -cycles/-warmup/-seed; -quick shrinks runs for
// a fast smoke pass. -parallel bounds concurrent simulations and, when
// several figures are selected, runs whole figures concurrently too (each
// buffers its output so tables still print in figure order).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"hetpnoc/internal/experiments"
	"hetpnoc/internal/fabric"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		fig         = fs.String("fig", "", "figure to regenerate (1-1, 3-3, 3-5, 3-6, 3-7, 3-8, 3-10); empty = all")
		tables      = fs.Bool("tables", false, "print the input tables (3-1..3-5) and exit")
		ablations   = fs.Bool("ablations", false, "run the ablation studies (extensions beyond the paper)")
		latency     = fs.Bool("latency", false, "print load-latency curves (extension)")
		sensitivity = fs.Bool("sensitivity", false, "print the energy-model sensitivity study (extension)")
		cycles      = fs.Int("cycles", 10000, "simulated cycles per run")
		warmup      = fs.Int("warmup", 1000, "warm-up cycles per run")
		seed        = fs.Uint64("seed", 1, "simulation seed")
		quick       = fs.Bool("quick", false, "short runs (4000 cycles) for a fast pass")
		parallel    = fs.Int("parallel", 0, "max concurrent simulations and figures (0 = GOMAXPROCS)")
		csvDir      = fs.String("csv", "", "also write machine-readable CSV files into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tables {
		var buf bytes.Buffer
		printTables(&buf)
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}

	opts := experiments.Options{Cycles: *cycles, WarmupCycles: *warmup, Seed: *seed, Parallelism: *parallel}
	if *quick {
		opts.Cycles = 4000
		opts.WarmupCycles = 800
	}

	var figures []func(*bytes.Buffer) error
	add := func(fn func(*bytes.Buffer) error) { figures = append(figures, fn) }

	all := *fig == ""
	if all || *fig == "1-1" {
		add(printFig1_1)
	}
	if all || *fig == "3-3" || *fig == "3-4" {
		add(func(w *bytes.Buffer) error { return printFig3_3(w, opts, *csvDir) })
	}
	if all || *fig == "3-5" {
		add(func(w *bytes.Buffer) error { return printFig3_5(w, opts, *csvDir) })
	}
	if all || *fig == "3-6" {
		add(func(w *bytes.Buffer) error { printFig3_6(w); return nil })
	}
	if all || *fig == "3-7" {
		add(func(w *bytes.Buffer) error { return printScaling(w, opts, fabric.DHetPNoC, "3-7") })
	}
	if all || *fig == "3-8" || *fig == "3-9" {
		add(func(w *bytes.Buffer) error { return printFig3_8(w, opts) })
	}
	if all || *fig == "3-10" {
		add(func(w *bytes.Buffer) error { return printScaling(w, opts, fabric.Firefly, "3-10") })
	}
	if *ablations {
		add(func(w *bytes.Buffer) error { return printAblations(w, opts) })
	}
	if *latency {
		add(func(w *bytes.Buffer) error { return printLatencyCurves(w, opts) })
	}
	if *sensitivity {
		add(func(w *bytes.Buffer) error { return printSensitivity(w, opts) })
	}

	return runFigures(figures, *parallel)
}

// runFigures executes every figure, concurrently up to parallel when more
// than one is selected. Every figure writes into its own buffer — an
// in-memory sink that cannot fail, so table rendering needs no
// per-line error handling — and the buffers are flushed to stdout in
// figure order so the report reads the same regardless of parallelism.
func runFigures(figures []func(*bytes.Buffer) error, parallel int) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if len(figures) <= 1 || parallel == 1 {
		for _, fn := range figures {
			var buf bytes.Buffer
			err := fn(&buf)
			if _, werr := os.Stdout.Write(buf.Bytes()); werr != nil {
				return werr
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	bufs := make([]bytes.Buffer, len(figures))
	errs := make([]error, len(figures))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, fn := range figures {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, fn func(*bytes.Buffer) error) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(&bufs[i])
		}(i, fn)
	}
	wg.Wait()
	for i := range figures {
		if _, err := os.Stdout.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func printSensitivity(w *bytes.Buffer, opts experiments.Options) error {
	rows, err := experiments.EnergySensitivity(opts, nil)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Energy-model sensitivity (extension): Figure 3-4 sign vs calibration ==")
	fmt.Fprintf(w, "%-18s %6s %14s %14s %10s\n", "parameter", "scale", "firefly EPM", "d-Het EPM", "saving")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %5.2fx %14.1f %14.1f %9.1f%%\n",
			r.Parameter, r.Scale, r.FireflyEPMPJ, r.DHetPNoCEPMPJ, r.DHetSavingPct)
	}
	fmt.Fprintln(w)
	return nil
}

func printLatencyCurves(w *bytes.Buffer, opts experiments.Options) error {
	fmt.Fprintln(w, "== Load-latency curves (extension), BW set 1, skewed 2 ==")
	fmt.Fprintf(w, "%-10s %6s %12s %14s %12s\n", "arch", "load", "offered", "delivered", "avg latency")
	for _, arch := range []fabric.Arch{fabric.Firefly, fabric.DHetPNoC} {
		points, err := experiments.LoadLatencyCurve(opts, arch, traffic.Skewed{Level: 2}, traffic.BWSet1, nil)
		if err != nil {
			return err
		}
		for _, p := range points {
			fmt.Fprintf(w, "%-10s %6.2f %10.1f G %12.1f G %10.1f c\n",
				arch, p.LoadScale, p.OfferedGbps, p.DeliveredGbps, p.AvgLatencyCycles)
		}
	}
	fmt.Fprintln(w)
	return nil
}

func printAblations(w *bytes.Buffer, opts experiments.Options) error {
	rows, err := experiments.AllAblations(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Ablation studies (extensions; see DESIGN.md §4 and EXPERIMENTS.md) ==")
	fmt.Fprintf(w, "%-24s %-24s %12s %14s %12s %9s %10s\n",
		"study", "variant", "BW Gb/s", "EPM pJ", "latency cyc", "fairness", "area mm^2")
	for _, r := range rows {
		areaCol := "-"
		if r.AreaMM2 > 0 {
			areaCol = fmt.Sprintf("%.3f", r.AreaMM2)
		}
		fmt.Fprintf(w, "%-24s %-24s %12.1f %14.1f %12.1f %9.3f %10s\n",
			r.Study, r.Variant, r.PeakBandwidthGbps, r.EnergyPerMessagePJ,
			r.AvgLatencyCycles, r.FairnessJain, areaCol)
	}
	fmt.Fprintln(w)
	return nil
}

func printFig1_1(w *bytes.Buffer) error {
	points, err := experiments.Figure1_1()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 1-1: speedup of 1024 B flits over 32 B baseline, 700 MHz GPU-memory link ==")
	fmt.Fprintf(w, "%-15s %-9s %8s %10s\n", "benchmark", "suite", "kernels", "speedup")
	for _, p := range points {
		fmt.Fprintf(w, "%-15s %-9s %8d %9.2f%%\n", p.Benchmark, p.Suite, p.KernelLaunches, p.SpeedupPct)
	}
	fmt.Fprintln(w)
	return nil
}

func printFig3_3(w *bytes.Buffer, opts experiments.Options, csvDir string) error {
	rows, err := experiments.PeakBandwidth(opts, traffic.BandwidthSets())
	if err != nil {
		return err
	}
	if err := writeRowsCSV(w, csvDir, "fig3-3_peak_bandwidth.csv", rows); err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figures 3-3 / 3-4: peak bandwidth and packet energy, Firefly vs d-HetPNoC ==")
	fmt.Fprintf(w, "%-5s %-10s %-10s %12s %14s %10s\n", "set", "traffic", "arch", "peak Gb/s", "EPM pJ", "drops")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %-10s %-10s %12.1f %14.1f %10d\n",
			r.Set, r.Pattern, r.Arch, r.PeakBandwidthGbps, r.EnergyPerMessagePJ, r.PacketsDropped)
	}
	printPairGains(w, rows)
	fmt.Fprintln(w)
	return nil
}

// writeRowsCSV writes rows into dir/name when dir is set.
func writeRowsCSV(w *bytes.Buffer, dir, name string, rows []experiments.Row) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteRowsCSV(f, rows); err != nil {
		_ = f.Close() // the write error is the one worth returning
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote", path)
	return nil
}

func printFig3_5(w *bytes.Buffer, opts experiments.Options, csvDir string) error {
	rows, err := experiments.CaseStudies(opts, traffic.BWSet1)
	if err != nil {
		return err
	}
	if err := writeRowsCSV(w, csvDir, "fig3-5_case_studies.csv", rows); err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figure 3-5: case studies (skewed hotspot + real application), BW set 1 ==")
	fmt.Fprintf(w, "%-17s %-10s %15s %14s %10s\n", "traffic", "arch", "per-core Gb/s", "EPM pJ", "drops")
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %-10s %15.2f %14.1f %10d\n",
			r.Pattern, r.Arch, r.PerCoreGbps, r.EnergyPerMessagePJ, r.PacketsDropped)
	}
	printPairGains(w, rows)
	fmt.Fprintln(w)
	return nil
}

func printFig3_6(w *bytes.Buffer) {
	fmt.Fprintln(w, "== Figure 3-6: total electro-optic device area vs aggregate bandwidth ==")
	fmt.Fprintf(w, "%12s %15s %13s %10s\n", "wavelengths", "d-HetPNoC mm^2", "Firefly mm^2", "overhead")
	for _, p := range experiments.AreaSweep(nil) {
		fmt.Fprintf(w, "%12d %15.3f %13.3f %9.1f%%\n", p.DataWavelengths, p.DynamicMM2, p.FireflyMM2, p.OverheadPct)
	}
	fmt.Fprintln(w)
}

func printScaling(w *bytes.Buffer, opts experiments.Options, arch fabric.Arch, figName string) error {
	rows, err := experiments.ScalingSeries(opts, arch)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Figure %s: %s peak core bandwidth and EPM across bandwidth sets ==\n", figName, arch)
	fmt.Fprintf(w, "%-5s %-10s %6s %15s %14s %12s\n", "set", "traffic", "total", "per-core Gb/s", "EPM pJ", "area mm^2")
	for _, r := range rows {
		fmt.Fprintf(w, "%-5s %-10s %6d %15.2f %14.1f %12.3f\n",
			r.Set, r.Pattern, r.TotalWavelengths, r.PerCoreGbps, r.EnergyPerMessagePJ, r.AreaMM2)
	}
	fmt.Fprintln(w)
	return nil
}

func printFig3_8(w *bytes.Buffer, opts experiments.Options) error {
	points, err := experiments.WavelengthScaling(opts, fabric.DHetPNoC)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Figures 3-8 / 3-9: d-HetPNoC, skewed 3 — wavelengths vs peak bandwidth, EPM, area ==")
	fmt.Fprintf(w, "%12s %12s %12s %11s %9s %9s %9s\n",
		"wavelengths", "peak Gb/s", "EPM pJ", "area mm^2", "dBW%", "dEPM%", "dArea%")
	for _, p := range points {
		fmt.Fprintf(w, "%12d %12.1f %12.1f %11.3f %+8.1f%% %+8.1f%% %+8.1f%%\n",
			p.TotalWavelengths, p.PeakBandwidthGbps, p.EnergyPerMessagePJ, p.AreaMM2,
			p.BandwidthChangePct, p.EPMChangePct, p.AreaChangePct)
	}
	fmt.Fprintln(w)
	return nil
}

// printPairGains prints the d-HetPNoC-over-Firefly deltas for rows that
// come in (Firefly, d-HetPNoC) pairs.
func printPairGains(w *bytes.Buffer, rows []experiments.Row) {
	for i := 0; i+1 < len(rows); i += 2 {
		ff, dh := rows[i], rows[i+1]
		if ff.Arch == dh.Arch || ff.Set != dh.Set || ff.Pattern != dh.Pattern {
			continue
		}
		if ff.Arch != "firefly" {
			ff, dh = dh, ff
		}
		fmt.Fprintf(w, "   %s/%s: d-HetPNoC bandwidth %+.1f%%, EPM %+.1f%%\n",
			ff.Set, ff.Pattern,
			(dh.PeakBandwidthGbps/ff.PeakBandwidthGbps-1)*100,
			(dh.EnergyPerMessagePJ/ff.EnergyPerMessagePJ-1)*100)
	}
}

func printTables(w *bytes.Buffer) {
	fmt.Fprintln(w, "== Table 3-1: bandwidth sets ==")
	for _, s := range traffic.BandwidthSets() {
		fmt.Fprintf(w, "%s: classes %v Gb/s, %d wavelengths, packets %dx%d b\n",
			s.Name, s.ClassGbps, s.TotalWavelengths, s.Format.Flits, s.Format.FlitBits)
	}
	fmt.Fprintln(w, "\n== Table 3-2: frequency of communication (share of traffic per class) ==")
	for level := 1; level <= 3; level++ {
		f, _ := traffic.SkewFrequencies(level)
		fmt.Fprintf(w, "skewed%d: %.1f%% / %.1f%% / %.2f%% / %.2f%%\n",
			level, f[0]*100, f[1]*100, f[2]*100, f[3]*100)
	}
	fmt.Fprintln(w, "\n== Table 3-3: simulation parameters ==")
	fmt.Fprintln(w, "64 cores, 16 clusters of 4; 2.5 GHz clock; 10,000 cycles with 1,000 reset;")
	fmt.Fprintln(w, "16 VCs/port, 64-flit buffers; wormhole switching; 64 wavelengths/waveguide")
	fmt.Fprintln(w, "\n== Tables 3-4 / 3-5: photonic energy parameters ==")
	p := photonic.DefaultEnergyParams()
	fmt.Fprintf(w, "modulation %.3g pJ/b, tuning %.3g pJ/b, launch %.3g pJ/b, buffer %.6g pJ/b, router %.3g pJ/b\n",
		p.ModulationPJPerBit, p.TuningPJPerBit, p.LaunchPJPerBit, p.BufferPJPerBit, p.RouterPJPerBit)
}
