package hetpnoc

import (
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/units"
)

// LinkBudget is the worst-case optical power budget of one architecture's
// longest path: its end-to-end insertion loss and the per-wavelength laser
// power required to reach the detector at its sensitivity floor. It makes
// quantitative the loss/crosstalk argument ([23], §2.1.3 of the thesis)
// behind choosing a crossbar over a multi-hop switched fabric.
type LinkBudget struct {
	// TotalDB is the worst-case end-to-end insertion loss.
	TotalDB units.DB
	// CrosstalkDB is the accumulated signal-to-crosstalk penalty.
	CrosstalkDB units.DB
	// LaserPowerMW is the per-wavelength launch power required.
	LaserPowerMW units.MilliWatt
}

// CrossbarLinkBudget returns the worst-case budget of the crossbar
// architectures (Firefly and d-HetPNoC) on the thesis's 64-core chip: a
// 4 cm serpentine data waveguide passing 15 foreign clusters' demodulator
// rows before the final drop.
func CrossbarLinkBudget() (LinkBudget, error) {
	params := photonic.DefaultLossParams()
	pl, err := params.CrossbarWorstCase(16, 4.0, 4)
	if err != nil {
		return LinkBudget{}, err
	}
	return LinkBudget{TotalDB: pl.TotalDB, CrosstalkDB: pl.CrosstalkDB, LaserPowerMW: pl.LaserPowerMW}, nil
}

// TorusLinkBudget returns the worst-case budget of the circuit-switched
// torus baseline: the 4x4 torus diameter (4 hops of 5 mm), one PSE turn,
// and the waveguide crossings inside each blocking router.
func TorusLinkBudget() (LinkBudget, error) {
	params := photonic.DefaultLossParams()
	pl, err := params.TorusWorstCase(4, 1, 8, 0.5)
	if err != nil {
		return LinkBudget{}, err
	}
	return LinkBudget{TotalDB: pl.TotalDB, CrosstalkDB: pl.CrosstalkDB, LaserPowerMW: pl.LaserPowerMW}, nil
}
