package hetpnoc

import (
	"encoding/json"
	"fmt"
	"math"
)

// This file defines the canonical encodings the serving layer is built
// on. Two Configs that select the same simulation normalize to the same
// bytes (so a result cache can deduplicate them), and a Result's
// canonical encoding is byte-identical across runs of the same
// config+seed — the determinism guarantee the differential tests
// enforce and docs/SERVING.md documents.

// Normalized returns the config with every zero-valued optional field
// replaced by the default it selects (the Table 3-3 settings, matching
// Run's behaviour exactly). Two configs that normalize identically
// simulate identically; the serving cache keys on the normalized form so
// an explicit `{"bandwidthSet": 1}` and an omitted one share a cache
// entry.
func (c Config) Normalized() Config {
	if c.Architecture == 0 {
		c.Architecture = DHetPNoC
	}
	if c.BandwidthSet == 0 {
		c.BandwidthSet = 1
	}
	if c.Traffic.Kind == 0 {
		c.Traffic.Kind = UniformRandom
	}
	// Burstiness at or below 1 leaves every source Markov-free, exactly
	// as 0 does; collapse the representations.
	if c.Traffic.Burstiness > 0 && c.Traffic.Burstiness <= 1 {
		c.Traffic.Burstiness = 0
	}
	// Zero the traffic fields the selected kind never reads, so stray
	// values cannot split cache entries for identical simulations.
	switch c.Traffic.Kind {
	case UniformRandom, RealApplication:
		c.Traffic.SkewLevel = 0
		c.Traffic.HotspotFraction = 0
		c.Traffic.Permutation = ""
		c.Traffic.Custom = nil
	case SkewedKind:
		c.Traffic.HotspotFraction = 0
		c.Traffic.Permutation = ""
		c.Traffic.Custom = nil
	case SkewedHotspotKind:
		c.Traffic.Permutation = ""
		c.Traffic.Custom = nil
	case PermutationKind:
		c.Traffic.SkewLevel = 0
		c.Traffic.HotspotFraction = 0
		c.Traffic.Custom = nil
	case CustomKind:
		c.Traffic.SkewLevel = 0
		c.Traffic.HotspotFraction = 0
		c.Traffic.Permutation = ""
	}
	if c.LoadScale == 0 {
		c.LoadScale = 1.0
	}
	if c.Cycles == 0 {
		c.Cycles = 10000
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NormalizedPrefix returns the normalized config with the batch-varying
// fields — Seed and LoadScale — cleared. Two configs with equal prefixes
// select the same fabric build (same topology, photonic model,
// architecture, traffic pattern, warm-up and cycle counts), so the batch
// engine runs them on one shared fabric, forking each member via
// checkpoint-restore and reseed instead of rebuilding; /v1/sweep groups
// its points by this key. The returned value is a grouping key, not a
// runnable config: its Seed and LoadScale are deliberately zero.
func (c Config) NormalizedPrefix() Config {
	c = c.Normalized()
	c.Seed = 0
	c.LoadScale = 0
	return c
}

// Validate reports the first configuration error without building the
// fabric, using the same lowering Run performs. A nil error means Run
// will accept the config (it may still fail on resource exhaustion for
// extreme cycle counts). The fuzz suite holds this to a stronger
// contract: Validate must return normally on any input, however hostile.
func (c Config) Validate() error {
	if err := checkFinite("load scale", c.LoadScale); err != nil {
		return err
	}
	if err := checkFinite("burstiness", c.Traffic.Burstiness); err != nil {
		return err
	}
	if err := checkFinite("hotspot fraction", c.Traffic.HotspotFraction); err != nil {
		return err
	}
	for i, spec := range c.Traffic.Custom {
		if err := checkFinite(fmt.Sprintf("core %d rate", i), spec.RateGbps); err != nil {
			return err
		}
		if err := checkFinite(fmt.Sprintf("core %d demand", i), spec.DemandGbps); err != nil {
			return err
		}
		if spec.RateGbps < 0 || spec.DemandGbps < 0 {
			return fmt.Errorf("hetpnoc: core %d: negative rate or demand", i)
		}
	}
	fc, err := c.toFabricConfig()
	if err != nil {
		return err
	}
	return fc.WithDefaults().Validate()
}

// checkFinite rejects the float values JSON cannot round-trip and the
// simulator cannot meaningfully consume.
func checkFinite(what string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("hetpnoc: %s must be finite, got %g", what, v)
	}
	return nil
}

// CanonicalJSON returns the deterministic byte encoding of the
// normalized config: struct fields in declaration order, map-free, with
// Go's shortest float representation. Equal simulations yield equal
// bytes; the serving cache derives its SHA-256 keys from them.
func (c Config) CanonicalJSON() ([]byte, error) {
	return json.Marshal(c.Normalized())
}

// CanonicalJSON returns the deterministic byte encoding of the result.
// encoding/json sorts map keys (the energy breakdown), so two Results
// with equal contents encode to equal bytes; the differential tests use
// this to enforce the simulator's bit-exact determinism end to end.
func (r Result) CanonicalJSON() ([]byte, error) {
	return json.Marshal(r)
}
