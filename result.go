package hetpnoc

import (
	"hetpnoc/internal/area"
	"hetpnoc/internal/fabric"
	"hetpnoc/internal/gpgpu"
	"hetpnoc/internal/units"
)

// Result carries the measurements of one simulation run, taken over the
// post-warm-up window.
type Result struct {
	Architecture string
	Traffic      string
	BandwidthSet string
	LoadScale    float64

	// DeliveredGbps is the aggregate rate of bits successfully arriving
	// at all cores — the thesis's bandwidth metric (§3.4.1.1).
	DeliveredGbps units.Gbps
	// PerCoreGbps is DeliveredGbps averaged over cores.
	PerCoreGbps units.Gbps
	// OfferedGbps is the aggregate scaled injection rate.
	OfferedGbps units.Gbps

	// EnergyPerMessagePJ is total dissipated energy per delivered packet
	// (§3.4.1.2).
	EnergyPerMessagePJ units.Picojoule
	EnergyTotalPJ      units.Picojoule
	EnergyPhotonicPJ   units.Picojoule
	EnergyElectricalPJ units.Picojoule
	// EnergyBreakdownPJ maps component names (launch, modulation,
	// tuning, buffer, buffer-residency, router, wire-link,
	// idle-detector) to their totals.
	EnergyBreakdownPJ map[string]units.Picojoule

	PacketsInjected  int64
	PacketsDelivered int64
	PacketsDroppedRX int64
	PacketsRejected  int64
	PacketsLost      int64
	Retransmissions  int64

	AvgLatencyCycles float64
	P50LatencyCycles int64
	P99LatencyCycles int64
	MaxLatencyCycles int64

	// FairnessJain is Jain's fairness index over the clusters' delivered
	// bits: 1.0 = perfectly even, 1/16 = one cluster got everything.
	FairnessJain float64

	// AllocatedWavelengths is the final per-cluster write-channel
	// allocation (uniform for Firefly; demand-shaped for d-HetPNoC).
	AllocatedWavelengths []int
	// TokenRotations counts completed DBA token rotations (0 for
	// Firefly).
	TokenRotations int64
	// ChannelBusyFraction is each write channel's busy share of the run.
	ChannelBusyFraction []float64

	// TorusPathsSetUp and TorusSetupsBlocked count circuit
	// establishments and blocked path setups (torus baseline only).
	TorusPathsSetUp    int64
	TorusSetupsBlocked int64

	// Events carries the most recent protocol events, formatted one per
	// line, when Config.EventCapacity was set.
	Events []string
}

// fromFabricResult flattens the internal result into the public one.
func fromFabricResult(r fabric.Result) Result {
	return Result{
		Architecture:         r.Arch,
		Traffic:              r.Pattern,
		BandwidthSet:         r.Set,
		LoadScale:            r.LoadScale,
		DeliveredGbps:        r.Stats.DeliveredGbps,
		PerCoreGbps:          r.PerCoreGbps,
		OfferedGbps:          r.OfferedGbps,
		EnergyPerMessagePJ:   r.EnergyPerMessagePJ,
		EnergyTotalPJ:        r.EnergyTotalPJ,
		EnergyPhotonicPJ:     r.EnergyPhotonicPJ,
		EnergyElectricalPJ:   r.EnergyElectricalPJ,
		EnergyBreakdownPJ:    r.EnergyBreakdownPJ,
		PacketsInjected:      r.Stats.PacketsInjected,
		PacketsDelivered:     r.Stats.PacketsDelivered,
		PacketsDroppedRX:     r.Stats.PacketsDroppedRX,
		PacketsRejected:      r.Stats.PacketsRejected,
		PacketsLost:          r.Stats.PacketsLost,
		Retransmissions:      r.Stats.Retransmissions,
		AvgLatencyCycles:     r.Stats.AvgLatencyCycles,
		P50LatencyCycles:     int64(r.Stats.P50LatencyCycles),
		P99LatencyCycles:     int64(r.Stats.P99LatencyCycles),
		MaxLatencyCycles:     int64(r.Stats.MaxLatencyCycles),
		FairnessJain:         r.Stats.FairnessJain,
		AllocatedWavelengths: r.AllocatedWavelengths,
		TokenRotations:       r.TokenRotations,
		ChannelBusyFraction:  r.ChannelBusyFraction,
		TorusPathsSetUp:      r.TorusPathsSetUp,
		TorusSetupsBlocked:   r.TorusSetupsBlocked,
	}
}

// AreaEstimate is the analytic electro-optic area model of §3.4.3 for one
// aggregate-bandwidth point.
type AreaEstimate struct {
	DataWavelengths    int
	DHetPNoCAreaMM2    units.SquareMillimeter
	FireflyAreaMM2     units.SquareMillimeter
	OverheadPct        float64
	DHetPNoCModulators int
	DHetPNoCDetectors  int
	FireflyModulators  int
	FireflyDetectors   int
}

// EstimateArea evaluates the §3.4.3 analytic area model (Equations 5-24)
// for a 64-core, 16-cluster chip with the given total data wavelengths.
func EstimateArea(dataWavelengths int) (AreaEstimate, error) {
	cfg := area.DefaultConfig(dataWavelengths)
	if err := cfg.Validate(); err != nil {
		return AreaEstimate{}, err
	}
	d := cfg.DynamicAreaMM2()
	f := cfg.FireflyAreaMM2()
	return AreaEstimate{
		DataWavelengths:    dataWavelengths,
		DHetPNoCAreaMM2:    d,
		FireflyAreaMM2:     f,
		OverheadPct:        float64((d - f) / f * 100),
		DHetPNoCModulators: cfg.DynamicModulators(),
		DHetPNoCDetectors:  cfg.DynamicDetectors(),
		FireflyModulators:  cfg.FireflyModulators(),
		FireflyDetectors:   cfg.FireflyDetectors(),
	}, nil
}

// GPUSpeedup is one benchmark's sensitivity to GPU-memory flit size
// (Figure 1-1).
type GPUSpeedup struct {
	Benchmark      string
	Suite          string
	KernelLaunches int
	SpeedupPct     float64
}

// GPUFlitSizeSpeedups evaluates the Figure 1-1 motivation study: per
// benchmark, the speedup of a 1024 B flit size over the 32 B baseline on a
// 700 MHz GPU-memory interconnect.
func GPUFlitSizeSpeedups() ([]GPUSpeedup, error) {
	points, err := gpgpu.Figure1_1()
	if err != nil {
		return nil, err
	}
	out := make([]GPUSpeedup, len(points))
	for i, p := range points {
		out[i] = GPUSpeedup{
			Benchmark:      p.Benchmark,
			Suite:          p.Suite.String(),
			KernelLaunches: p.KernelLaunches,
			SpeedupPct:     p.SpeedupPct,
		}
	}
	return out, nil
}
