package hetpnoc

import (
	"fmt"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// Snapshot is a point-in-time view of a running simulation, delivered to
// RunWithTrace observers.
type Snapshot struct {
	Cycle int64

	// AllocatedWavelengths is the current per-cluster write-channel
	// allocation.
	AllocatedWavelengths []int

	// TokenRotations counts completed DBA token rotations so far.
	TokenRotations int64

	// PacketsDelivered counts packets delivered since the warm-up ended.
	PacketsDelivered int64
}

// TrafficRemap changes the workload mid-run: at cycle AtCycle the task
// mapping switches to Traffic and every core re-reports its demand table,
// triggering DBA reconfiguration on the following token rotations (§3.2).
type TrafficRemap struct {
	AtCycle int64
	Traffic Traffic
}

// RunWithTrace simulates cfg like Run, optionally applying remaps, and
// invokes observe with a snapshot every interval cycles. Use it to watch
// the dynamic bandwidth allocation converge and react to task changes.
func RunWithTrace(cfg Config, remaps []TrafficRemap, interval int64, observe func(Snapshot)) (Result, error) {
	if interval <= 0 {
		return Result{}, fmt.Errorf("hetpnoc: trace interval must be positive, got %d", interval)
	}
	fc, err := cfg.toFabricConfig()
	if err != nil {
		return Result{}, err
	}
	for _, r := range remaps {
		pattern, err := r.Traffic.toPattern()
		if err != nil {
			return Result{}, err
		}
		fc.Remaps = append(fc.Remaps, fabric.Remap{At: sim.Cycle(r.AtCycle), Pattern: pattern})
	}

	f, err := fabric.New(fc)
	if err != nil {
		return Result{}, err
	}
	fc = fc.WithDefaults()
	for i := 0; i < fc.Cycles; i++ {
		if err := f.Step(); err != nil {
			return Result{}, err
		}
		if observe != nil && int64(f.Now())%interval == 0 {
			observe(snapshotOf(f, fc.Topology))
		}
	}
	res, err := f.Finish()
	if err != nil {
		return Result{}, err
	}
	return fromFabricResult(res), nil
}

// snapshotOf captures the observable state of a running fabric.
func snapshotOf(f *fabric.Fabric, topo topology.Topology) Snapshot {
	s := Snapshot{
		Cycle:                int64(f.Now()),
		AllocatedWavelengths: make([]int, topo.Clusters()),
		PacketsDelivered:     f.DeliveredPackets(),
	}
	if dba := f.DBA(); dba != nil {
		s.TokenRotations = dba.Rotations()
		for cl := range s.AllocatedWavelengths {
			s.AllocatedWavelengths[cl] = dba.AllocatedCount(topology.ClusterID(cl))
		}
	} else {
		for cl := range s.AllocatedWavelengths {
			s.AllocatedWavelengths[cl] = len(f.AllocatedOf(topology.ClusterID(cl)))
		}
	}
	return s
}
