// Skewcompare reproduces the core claim of the thesis in miniature
// (Figures 3-3a and 3-4a): as traffic skew grows, d-HetPNoC's dynamic
// bandwidth allocation delivers more bandwidth at lower energy per message
// than Firefly's uniform static allocation, while the two are equivalent
// under uniform-random traffic.
package main

import (
	"fmt"
	"log"

	"hetpnoc"
)

func main() {
	workloads := []struct {
		name    string
		traffic hetpnoc.Traffic
	}{
		{"uniform", hetpnoc.UniformTraffic()},
		{"skewed1", hetpnoc.SkewedTraffic(1)},
		{"skewed2", hetpnoc.SkewedTraffic(2)},
		{"skewed3", hetpnoc.SkewedTraffic(3)},
	}

	fmt.Println("Firefly vs d-HetPNoC, bandwidth set 1 (64 wavelengths)")
	fmt.Printf("%-9s %14s %14s %9s %12s %12s %9s\n",
		"traffic", "firefly Gb/s", "d-Het Gb/s", "gain", "firefly EPM", "d-Het EPM", "saving")

	for _, w := range workloads {
		var ff, dh hetpnoc.Result
		for _, arch := range []hetpnoc.Architecture{hetpnoc.Firefly, hetpnoc.DHetPNoC} {
			res, err := hetpnoc.Run(hetpnoc.Config{
				Architecture: arch,
				BandwidthSet: 1,
				Traffic:      w.traffic,
				Seed:         1,
			})
			if err != nil {
				log.Fatal(err)
			}
			if arch == hetpnoc.Firefly {
				ff = res
			} else {
				dh = res
			}
		}
		fmt.Printf("%-9s %14.1f %14.1f %+8.1f%% %12.1f %12.1f %+8.1f%%\n",
			w.name,
			ff.DeliveredGbps, dh.DeliveredGbps, (dh.DeliveredGbps/ff.DeliveredGbps-1)*100,
			ff.EnergyPerMessagePJ, dh.EnergyPerMessagePJ, (dh.EnergyPerMessagePJ/ff.EnergyPerMessagePJ-1)*100)
	}
}
