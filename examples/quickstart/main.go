// Quickstart: simulate the d-HetPNoC architecture under uniform-random
// traffic at the thesis's default operating point and print the headline
// metrics. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"hetpnoc"
)

func main() {
	res, err := hetpnoc.Run(hetpnoc.Config{
		Architecture: hetpnoc.DHetPNoC,
		BandwidthSet: 1,                        // 64 wavelengths, 64x32 b packets
		Traffic:      hetpnoc.UniformTraffic(), // all cores, equal rates
		Cycles:       10000,                    // Table 3-3
		WarmupCycles: 1000,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Simulated %s on bandwidth set %s under %s traffic\n",
		res.Architecture, res.BandwidthSet, res.Traffic)
	fmt.Printf("  offered:    %8.1f Gb/s aggregate\n", res.OfferedGbps)
	fmt.Printf("  delivered:  %8.1f Gb/s (%.2f Gb/s per core)\n", res.DeliveredGbps, res.PerCoreGbps)
	fmt.Printf("  energy:     %8.1f pJ per message\n", res.EnergyPerMessagePJ)
	fmt.Printf("  latency:    %8.1f cycles on average\n", res.AvgLatencyCycles)
	fmt.Printf("  wavelengths per cluster write channel: %v\n", res.AllocatedWavelengths)
}
