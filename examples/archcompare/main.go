// Archcompare runs all three modeled photonic NoC architectures — the
// Firefly crossbar baseline, the proposed d-HetPNoC, and the related-work
// circuit-switched torus of §2.1.3 — under the same skewed workload, and
// prints the optical link-budget context behind the thesis's crossbar
// choice.
//
// Note: the torus's per-link full-DWDM provisioning gives it much more
// photonic hardware than the budget-normalized crossbars, so it is a
// protocol comparison, not an equal-area one.
package main

import (
	"fmt"
	"log"

	"hetpnoc"
)

func main() {
	fmt.Println("Three architectures, bandwidth set 1, skewed 2 traffic:")
	fmt.Printf("%-12s %12s %14s %12s %s\n", "arch", "Gb/s", "EPM pJ", "p99 lat", "notes")

	for _, arch := range []hetpnoc.Architecture{hetpnoc.Firefly, hetpnoc.DHetPNoC, hetpnoc.TorusPNoC} {
		res, err := hetpnoc.Run(hetpnoc.Config{
			Architecture: arch,
			BandwidthSet: 1,
			Traffic:      hetpnoc.SkewedTraffic(2),
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		notes := ""
		if res.TokenRotations > 0 {
			notes = fmt.Sprintf("%d token rotations", res.TokenRotations)
		}
		if res.TorusPathsSetUp > 0 {
			notes = fmt.Sprintf("%d circuits, %d blocked setups",
				res.TorusPathsSetUp, res.TorusSetupsBlocked)
		}
		fmt.Printf("%-12s %12.1f %14.1f %10d c  %s\n",
			res.Architecture, res.DeliveredGbps, res.EnergyPerMessagePJ,
			res.P99LatencyCycles, notes)
	}

	fmt.Println("\nWhy the thesis picks a crossbar (the [23] loss argument, quantified):")
	xbar, err := hetpnoc.CrossbarLinkBudget()
	if err != nil {
		log.Fatal(err)
	}
	torus, err := hetpnoc.TorusLinkBudget()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  crossbar worst path: %5.2f dB loss, %5.2f dB crosstalk -> %6.4f mW/wavelength\n",
		xbar.TotalDB, xbar.CrosstalkDB, xbar.LaserPowerMW)
	fmt.Printf("  torus worst path:    %5.2f dB loss, %5.2f dB crosstalk -> %6.4f mW/wavelength\n",
		torus.TotalDB, torus.CrosstalkDB, torus.LaserPowerMW)
	fmt.Println("  (crossings and PSE hops accumulate crosstalk with every hop; the")
	fmt.Println("  crossbar's only crosstalk sources are off-resonance rings)")
}
