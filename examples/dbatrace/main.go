// Dbatrace watches the dynamic bandwidth allocation protocol at work: the
// run starts under uniform traffic (every cluster holds an equal share of
// the wavelength budget), then the task mapping changes to skewed 3 at
// cycle 4000 — and the token-passing allocator reshapes the allocation
// over the following rotations, exactly the reconfiguration path §3.2 of
// the thesis describes.
package main

import (
	"fmt"
	"log"

	"hetpnoc"
)

func main() {
	fmt.Println("cycle | token rotations | wavelengths per cluster write channel")
	fmt.Println("------+-----------------+--------------------------------------")

	var last string
	res, err := hetpnoc.RunWithTrace(
		hetpnoc.Config{
			Architecture: hetpnoc.DHetPNoC,
			BandwidthSet: 1,
			Traffic:      hetpnoc.UniformTraffic(),
			Cycles:       8000,
			WarmupCycles: 1000,
			Seed:         1,
		},
		[]hetpnoc.TrafficRemap{
			{AtCycle: 4000, Traffic: hetpnoc.SkewedTraffic(3)},
		},
		200, // observe every 200 cycles
		func(s hetpnoc.Snapshot) {
			line := fmt.Sprintf("%v", s.AllocatedWavelengths)
			if line == last {
				return // only print when the allocation changes
			}
			last = line
			fmt.Printf("%5d | %15d | %s\n", s.Cycle, s.TokenRotations, line)
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nFinal allocation: %v\n", res.AllocatedWavelengths)
	fmt.Printf("Delivered %.1f Gb/s across the remap; %d token rotations total.\n",
		res.DeliveredGbps, res.TokenRotations)
	fmt.Println("After the remap, the high-demand clusters (which want 8 wavelengths each)")
	fmt.Println("split the contended pool fairly over successive token rotations, while")
	fmt.Println("low-demand clusters fall back toward their reserved minimum of 1.")
}
