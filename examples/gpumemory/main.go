// Gpumemory runs the §3.4.2 real-application scenario: the GPU benchmarks
// MUM, BFS, CP, RAY and LPS mapped onto 12 clusters with 4 memory
// clusters, using core-to-memory bandwidth demands from the GPGPU profile
// model. It first prints the Figure 1-1 motivation (which benchmarks are
// bandwidth-hungry), then compares the two architectures on the resulting
// traffic.
package main

import (
	"fmt"
	"log"

	"hetpnoc"
)

func main() {
	speedups, err := hetpnoc.GPUFlitSizeSpeedups()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 1-1: GPU speedup with 1024 B flits over the 32 B baseline")
	for _, s := range speedups {
		marker := ""
		if s.SpeedupPct > 10 {
			marker = "  <- bandwidth-hungry"
		}
		fmt.Printf("  %-15s (%s, %d kernels): %6.2f%%%s\n",
			s.Benchmark, s.Suite, s.KernelLaunches, s.SpeedupPct, marker)
	}

	fmt.Println("\nReal-application traffic (MUM x20, BFS x4, CP x4, RAY x4, LPS x16 cores + 4 memory clusters):")
	for _, arch := range []hetpnoc.Architecture{hetpnoc.Firefly, hetpnoc.DHetPNoC} {
		res, err := hetpnoc.Run(hetpnoc.Config{
			Architecture: arch,
			BandwidthSet: 1,
			Traffic:      hetpnoc.RealAppTraffic(),
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s delivered %7.1f Gb/s (offered %.1f), EPM %8.1f pJ, wavelengths %v\n",
			res.Architecture, res.DeliveredGbps, res.OfferedGbps, res.EnergyPerMessagePJ,
			res.AllocatedWavelengths)
	}
	fmt.Println("\nThe memory clusters (last four) and the MUM/BFS clusters attract the")
	fmt.Println("dynamic wavelengths; Firefly gives every cluster the same four.")
}
