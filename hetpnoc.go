// Package hetpnoc is a cycle-accurate simulator and analytic model suite
// for heterogeneous photonic networks-on-chip with dynamic bandwidth
// allocation, reproducing "Heterogeneous Photonic Network-on-Chip with
// Dynamic Bandwidth Allocation" (Shah, RIT / IEEE SOCC 2014).
//
// Two architectures are modeled end to end on a 64-core, 16-cluster chip
// multiprocessor:
//
//   - Firefly: the baseline crossbar photonic NoC with reservation-assisted
//     single-write-multiple-read channels and uniform static wavelength
//     allocation.
//   - d-HetPNoC: the proposed architecture, which reallocates DWDM
//     wavelengths between cluster write channels through a token-passing
//     protocol driven by per-application demand tables.
//
// The package front door is Run:
//
//	res, err := hetpnoc.Run(hetpnoc.Config{
//	    Architecture: hetpnoc.DHetPNoC,
//	    BandwidthSet: 1,
//	    Traffic:      hetpnoc.SkewedTraffic(3),
//	})
//
// Lower-level building blocks (the router microarchitecture, the DBA
// token protocol, the photonic crossbar engines, the analytic area model)
// live under internal/ and are exercised through this API, the example
// programs and the benchmark harness.
package hetpnoc

import (
	"context"
	"fmt"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/traffic"
)

// Architecture selects which photonic NoC to simulate.
type Architecture int

// Supported architectures.
const (
	// Firefly is the crossbar baseline with static uniform wavelength
	// allocation.
	Firefly Architecture = iota + 1
	// DHetPNoC is the dynamic heterogeneous photonic NoC with
	// token-passing bandwidth allocation.
	DHetPNoC
	// TorusPNoC is the related-work circuit-switched photonic 2D folded
	// torus (§2.1.3 of the thesis, Shacham et al. [15]): PSE-based
	// blocking routers with an electronic path-setup network. Note that
	// its per-link full-DWDM provisioning gives it far more aggregate
	// photonic hardware than the budget-normalized crossbar
	// architectures — it is a protocol baseline, not an equal-area one.
	TorusPNoC
)

// String returns the architecture name.
func (a Architecture) String() string {
	switch a {
	case Firefly:
		return "firefly"
	case DHetPNoC:
		return "d-hetpnoc"
	case TorusPNoC:
		return "torus-pnoc"
	default:
		return "unknown"
	}
}

// TrafficKind enumerates the built-in workloads of the thesis evaluation.
type TrafficKind int

// Workload kinds.
const (
	// UniformRandom: every core offers the same rate to uniformly random
	// foreign destinations.
	UniformRandom TrafficKind = iota + 1
	// SkewedKind: the Table 3-1 skewed patterns (level 1-3).
	SkewedKind
	// SkewedHotspotKind: §3.4.2 synthetic case studies — a hotspot
	// cluster plus a skewed remainder.
	SkewedHotspotKind
	// RealApplication: the §3.4.2 GPU/memory scenario (MUM, BFS, CP,
	// RAY, LPS plus four memory clusters).
	RealApplication
	// PermutationKind: classic synthetic permutations (transpose,
	// bit-complement, bit-reverse, shuffle, neighbor).
	PermutationKind
	// CustomKind: a user-supplied per-core workload.
	CustomKind
)

// Traffic describes the workload offered to the network.
type Traffic struct {
	Kind TrafficKind

	// SkewLevel selects the Table 3-1 row (1-3) for SkewedKind and the
	// base pattern for SkewedHotspotKind.
	SkewLevel int

	// HotspotFraction is the share of traffic aimed at the hotspot
	// cluster for SkewedHotspotKind (e.g. 0.1 or 0.2).
	HotspotFraction float64

	// Permutation names the synthetic pattern for PermutationKind:
	// "transpose", "bit-complement", "bit-reverse", "shuffle" or
	// "neighbor".
	Permutation string

	// Burstiness, when above 1, turns every core into an on/off Markov
	// source: the peak rate is Burstiness x the nominal rate and the
	// long-run average is preserved. Applies to any built-in kind.
	Burstiness float64

	// Custom supplies per-core workloads for CustomKind; it must have
	// one entry per core.
	Custom []CoreSpec
}

// UniformTraffic returns the uniform-random workload.
func UniformTraffic() Traffic { return Traffic{Kind: UniformRandom} }

// SkewedTraffic returns the Table 3-1 skewed workload at level 1-3.
func SkewedTraffic(level int) Traffic { return Traffic{Kind: SkewedKind, SkewLevel: level} }

// HotspotTraffic returns a §3.4.2 skewed-hotspot workload.
func HotspotTraffic(fraction float64, baseLevel int) Traffic {
	return Traffic{Kind: SkewedHotspotKind, HotspotFraction: fraction, SkewLevel: baseLevel}
}

// RealAppTraffic returns the GPU/memory real-application workload.
func RealAppTraffic() Traffic { return Traffic{Kind: RealApplication} }

// PermutationTraffic returns a classic synthetic permutation workload:
// "transpose", "bit-complement", "bit-reverse", "shuffle" or "neighbor".
func PermutationTraffic(name string) Traffic {
	return Traffic{Kind: PermutationKind, Permutation: name}
}

// CustomTraffic returns a workload built from per-core specifications.
func CustomTraffic(cores []CoreSpec) Traffic { return Traffic{Kind: CustomKind, Custom: cores} }

// CoreSpec describes one core's workload for CustomTraffic.
type CoreSpec struct {
	// RateGbps is the core's offered injection rate.
	RateGbps float64
	// DemandGbps is the bandwidth class of the core's application,
	// driving the d-HetPNoC demand tables. Zero defaults to RateGbps
	// times the cluster size.
	DemandGbps float64
	// Dests lists the destination cores, sampled uniformly. Destinations
	// in the source's own cluster travel the intra-cluster electrical
	// network; the source core itself is not a valid destination. Empty
	// means every foreign core.
	Dests []int
}

// Config parameterizes one simulation. The zero value of every optional
// field selects the thesis's Table 3-3 setting.
type Config struct {
	// Architecture defaults to DHetPNoC.
	Architecture Architecture

	// BandwidthSet selects the photonic provisioning point: 1 (64
	// wavelengths), 2 (256) or 3 (512). Defaults to 1.
	BandwidthSet int

	// Traffic defaults to UniformTraffic().
	Traffic Traffic

	// LoadScale multiplies every offered rate (default 1.0).
	LoadScale float64

	// Cycles and WarmupCycles default to 10,000 and 1,000.
	Cycles       int
	WarmupCycles int

	// Seed makes runs reproducible (default 1).
	Seed uint64

	// Concentrated switches the intra-cluster electrical network from
	// the all-to-all wiring of §3.1 to Firefly-style concentration.
	Concentrated bool

	// ProportionalDBA switches d-HetPNoC's allocation policy from the
	// thesis's greedy §3.2.1 rule to the demand-proportional extension
	// (the thesis's stated future work): under contention every cluster
	// receives its demand-weighted share of the dynamic pool.
	ProportionalDBA bool

	// EventCapacity, when positive, enables the protocol event log;
	// Result.Events then carries the most recent events (reservations,
	// drops, allocation changes, remaps) formatted one per line.
	EventCapacity int
}

// Run simulates the configured network for the configured cycles and
// returns its measured results.
//
//hetpnoc:ctxroot synchronous public entry point, wraps RunContext
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run honoring cancellation: the cycle loop polls ctx
// every fabric.CancelCheckInterval cycles and aborts with ctx.Err() when
// it fires, so a canceled simulation releases its worker within tens of
// microseconds. The simulation itself is unaffected by the polling — a
// run that completes is bit-identical to Run's.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	fc, err := cfg.toFabricConfig()
	if err != nil {
		return Result{}, err
	}
	f, err := fabric.New(fc)
	if err != nil {
		return Result{}, err
	}
	res, err := f.RunContext(ctx)
	if err != nil {
		return Result{}, err
	}
	out := fromFabricResult(res)
	if log := f.Events(); log != nil {
		events := log.Events()
		out.Events = make([]string, len(events))
		for i, e := range events {
			out.Events[i] = e.String()
		}
	}
	return out, nil
}

// toFabricConfig lowers the public configuration onto the internal fabric.
func (cfg Config) toFabricConfig() (fabric.Config, error) {
	arch := fabric.DHetPNoC
	switch cfg.Architecture {
	case 0, DHetPNoC:
	case Firefly:
		arch = fabric.Firefly
	case TorusPNoC:
		arch = fabric.TorusPNoC
	default:
		return fabric.Config{}, fmt.Errorf("hetpnoc: unknown architecture %d", cfg.Architecture)
	}

	var set traffic.BandwidthSet
	switch cfg.BandwidthSet {
	case 0, 1:
		set = traffic.BWSet1
	case 2:
		set = traffic.BWSet2
	case 3:
		set = traffic.BWSet3
	default:
		return fabric.Config{}, fmt.Errorf("hetpnoc: bandwidth set must be 1-3, got %d", cfg.BandwidthSet)
	}

	pattern, err := cfg.Traffic.toPattern()
	if err != nil {
		return fabric.Config{}, err
	}

	intra := fabric.AllToAll
	if cfg.Concentrated {
		intra = fabric.Concentrated
	}
	return fabric.Config{
		Arch:            arch,
		Set:             set,
		Pattern:         pattern,
		LoadScale:       cfg.LoadScale,
		Cycles:          cfg.Cycles,
		WarmupCycles:    cfg.WarmupCycles,
		Seed:            cfg.Seed,
		IntraCluster:    intra,
		EventCapacity:   cfg.EventCapacity,
		ProportionalDBA: cfg.ProportionalDBA,
	}, nil
}

// toPattern lowers the public traffic description.
func (t Traffic) toPattern() (traffic.Pattern, error) {
	base, err := t.basePattern()
	if err != nil {
		return nil, err
	}
	if t.Burstiness > 1 {
		return traffic.Bursty{Base: base, Factor: t.Burstiness}, nil
	}
	if t.Burstiness < 0 {
		return nil, fmt.Errorf("hetpnoc: negative burstiness %g", t.Burstiness)
	}
	return base, nil
}

func (t Traffic) basePattern() (traffic.Pattern, error) {
	switch t.Kind {
	case 0, UniformRandom:
		return traffic.Uniform{}, nil
	case SkewedKind:
		if t.SkewLevel < 1 || t.SkewLevel > 3 {
			return nil, fmt.Errorf("hetpnoc: skew level must be 1-3, got %d", t.SkewLevel)
		}
		return traffic.Skewed{Level: t.SkewLevel}, nil
	case SkewedHotspotKind:
		if t.SkewLevel < 1 || t.SkewLevel > 3 {
			return nil, fmt.Errorf("hetpnoc: hotspot base skew level must be 1-3, got %d", t.SkewLevel)
		}
		if t.HotspotFraction <= 0 || t.HotspotFraction >= 1 {
			return nil, fmt.Errorf("hetpnoc: hotspot fraction must be in (0,1), got %g", t.HotspotFraction)
		}
		return traffic.SkewedHotspot{HotFraction: t.HotspotFraction, BaseLevel: t.SkewLevel}, nil
	case RealApplication:
		return traffic.RealApp{}, nil
	case PermutationKind:
		kinds := map[string]traffic.PermutationKind{
			"transpose":      traffic.Transpose,
			"bit-complement": traffic.BitComplement,
			"bit-reverse":    traffic.BitReverse,
			"shuffle":        traffic.Shuffle,
			"neighbor":       traffic.Neighbor,
		}
		kind, ok := kinds[t.Permutation]
		if !ok {
			return nil, fmt.Errorf("hetpnoc: unknown permutation %q", t.Permutation)
		}
		return traffic.Permutation{Kind: kind}, nil
	case CustomKind:
		return customPattern(t.Custom)
	default:
		return nil, fmt.Errorf("hetpnoc: unknown traffic kind %d", t.Kind)
	}
}

// customPattern converts CoreSpecs to a fixed internal assignment.
func customPattern(specs []CoreSpec) (traffic.Pattern, error) {
	topo := topology.Default()
	if len(specs) != topo.Cores() {
		return nil, fmt.Errorf("hetpnoc: custom traffic needs %d core specs, got %d", topo.Cores(), len(specs))
	}
	cores := make([]traffic.CoreProfile, len(specs))
	for c, spec := range specs {
		src := topo.ClusterOf(topology.CoreID(c))
		demand := spec.DemandGbps
		if demand == 0 {
			demand = spec.RateGbps * float64(topo.ClusterSize())
		}
		profile := traffic.CoreProfile{RateGbps: spec.RateGbps, DemandGbps: demand}
		if spec.RateGbps > 0 {
			dests := make([]topology.CoreID, 0, len(spec.Dests))
			demandClusters := make(map[topology.ClusterID]bool)
			for _, d := range spec.Dests {
				dst := topology.CoreID(d)
				if !topo.ValidCore(dst) {
					return nil, fmt.Errorf("hetpnoc: core %d: destination %d outside chip", c, d)
				}
				if dst == topology.CoreID(c) {
					return nil, fmt.Errorf("hetpnoc: core %d cannot send to itself", c)
				}
				dests = append(dests, dst)
				if topo.ClusterOf(dst) != src {
					demandClusters[topo.ClusterOf(dst)] = true
				}
			}
			if len(dests) > 0 {
				profile.PickDest = func(rng *sim.RNG) topology.CoreID {
					return dests[rng.Intn(len(dests))]
				}
				clusters := make([]topology.ClusterID, 0, len(demandClusters))
				for cl := 0; cl < topo.Clusters(); cl++ {
					if demandClusters[topology.ClusterID(cl)] {
						clusters = append(clusters, topology.ClusterID(cl))
					}
				}
				profile.DemandDests = clusters
			} else {
				profile.PickDest = func(rng *sim.RNG) topology.CoreID {
					for {
						dst := topology.CoreID(rng.Intn(topo.Cores()))
						if topo.ClusterOf(dst) != src {
							return dst
						}
					}
				}
			}
		}
		cores[c] = profile
	}
	return traffic.Fixed{Assignment: traffic.Assignment{Name: "custom", Cores: cores}}, nil
}
