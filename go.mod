module hetpnoc

go 1.22

toolchain go1.24.0
