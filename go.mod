module hetpnoc

go 1.22
