# Tier-1 verification and perf tooling for the hetpnoc simulator.
#
#   make check   — build, vet, lint (hetpnoclint), full test suite, and a
#                  race-enabled run of everything (the CI gate)
#   make lint    — run the analyzer suite (cmd/hetpnoclint, see
#                  docs/ANALYSIS.md)
#   make lint-fix — apply the suite's machine-applicable fixes in place
#                  (run `make lint-dry` first to preview)
#   make test    — fast test pass only
#   make fuzz-smoke — 10s-per-target native fuzz pass (CI smoke gate)
#   make bench   — perf snapshot: writes BENCH_<date>.json via cmd/benchjson
#   make bench-compare — fresh run diffed against the newest committed
#                  BENCH_*.json; exits nonzero on a >20% throughput loss
#   make sweep   — quick smoke sweep of every figure

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet lint lint-fix lint-dry lint-update test race race-quick fuzz-smoke bench bench-compare sweep

check: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# hetpnoclint enforces the simulator's determinism, hot-path,
# concurrency-safety and API-stability invariants: the per-package
# analyzers (detrand, maprange, hotpathalloc, globalstate, lockguard,
# ctxflow, errsink), the whole-program layer (hotpathreach, dettaint,
# lockorder), the compiler-evidence layer (allocproof, snapcover), the
# value-flow layer (unitsafe, seedflow), the concurrency-protocol
# layer (goleak, chanown, wgsync) and apistable; any undirected
# violation exits non-zero. See docs/ANALYSIS.md.
lint:
	$(GO) run ./cmd/hetpnoclint ./...

# Apply the suite's machine-applicable SuggestedFix rewrites in place.
# Conflicting fixes are dropped, not merged; re-run after reviewing.
lint-fix:
	$(GO) run ./cmd/hetpnoclint -fix ./...

# Preview what lint-fix would rewrite without touching files.
lint-dry:
	$(GO) run ./cmd/hetpnoclint -fix -dry ./...

# Regenerate the apistable API golden snapshots (testdata/api/*.golden)
# after an intentional exported-API change, then review the diff.
lint-update:
	$(GO) run ./cmd/hetpnoclint -update ./...

test:
	$(GO) test ./...

# The race gate covers the whole module: internal/experiments spawns the
# simulation goroutines, and cmd/sweep dispatches whole figures
# concurrently since the -parallel flag landed. A full -race pass takes
# a few minutes; race-quick keeps the old goroutine-bearing subset for
# tight loops.
race:
	$(GO) test -race ./...

race-quick:
	$(GO) test -race ./internal/batch/... ./internal/experiments/... ./cmd/sweep/... ./internal/serve/...

# Short native-fuzzing pass over every fuzz target; `go test -fuzz`
# accepts one package per invocation, hence one line per target. Seed
# corpora live under testdata/fuzz/; new crashers land there too.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzConfigValidate$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointRestore$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzServeRequestDecode$$' -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzSweepDecode$$' -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzBatchPlan$$' -fuzztime $(FUZZTIME) ./internal/batch

bench:
	./scripts/bench.sh

bench-compare:
	./scripts/bench.sh compare

sweep:
	$(GO) run ./cmd/sweep -quick
