# Tier-1 verification and perf tooling for the hetpnoc simulator.
#
#   make check   — build, vet, full test suite, race-enabled run of the
#                  goroutine-bearing packages (the CI gate)
#   make test    — fast test pass only
#   make bench   — perf snapshot: writes BENCH_<date>.json via cmd/benchjson
#   make sweep   — quick smoke sweep of every figure

GO ?= go

.PHONY: check build vet test race bench sweep

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Only internal/experiments spawns goroutines (RunMatrix, RunReplicated,
# and the figure runners built on them); everything else is single-
# threaded per simulation, so the race run targets just that package.
race:
	$(GO) test -race ./internal/experiments/...

bench:
	./scripts/bench.sh

sweep:
	$(GO) run ./cmd/sweep -quick
