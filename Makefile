# Tier-1 verification and perf tooling for the hetpnoc simulator.
#
#   make check   — build, vet, lint (hetpnoclint), full test suite, and a
#                  race-enabled run of everything (the CI gate)
#   make lint    — run the determinism/hot-path analyzer suite
#                  (cmd/hetpnoclint, see docs/ANALYSIS.md)
#   make test    — fast test pass only
#   make fuzz-smoke — 10s-per-target native fuzz pass (CI smoke gate)
#   make bench   — perf snapshot: writes BENCH_<date>.json via cmd/benchjson
#   make sweep   — quick smoke sweep of every figure

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet lint test race race-quick fuzz-smoke bench sweep

check: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# hetpnoclint enforces the simulator's determinism and hot-path
# invariants (detrand, maprange, hotpathalloc, globalstate); any
# undirected violation exits non-zero. See docs/ANALYSIS.md.
lint:
	$(GO) run ./cmd/hetpnoclint ./...

test:
	$(GO) test ./...

# The race gate covers the whole module: internal/experiments spawns the
# simulation goroutines, and cmd/sweep dispatches whole figures
# concurrently since the -parallel flag landed. A full -race pass takes
# a few minutes; race-quick keeps the old goroutine-bearing subset for
# tight loops.
race:
	$(GO) test -race ./...

race-quick:
	$(GO) test -race ./internal/experiments/... ./cmd/sweep/... ./internal/serve/...

# Short native-fuzzing pass over every fuzz target; `go test -fuzz`
# accepts one package per invocation, hence one line per target. Seed
# corpora live under testdata/fuzz/; new crashers land there too.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzConfigValidate$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzServeRequestDecode$$' -fuzztime $(FUZZTIME) ./internal/serve
	$(GO) test -run '^$$' -fuzz '^FuzzSweepDecode$$' -fuzztime $(FUZZTIME) ./internal/serve

bench:
	./scripts/bench.sh

sweep:
	$(GO) run ./cmd/sweep -quick
