package hetpnoc

import (
	"context"

	"hetpnoc/internal/batch"
	"hetpnoc/internal/fabric"
)

// RunBatch executes every config in one batched pass and returns the
// results in config order. Configs that share a batch prefix (they
// normalize identically except for Seed and LoadScale — see
// Config.NormalizedPrefix) share one fabric build: the fabric is
// checkpointed pristine and every member forks off it via
// restore-and-reseed instead of paying its own build. Each result is
// byte-identical (Result.CanonicalJSON and the event log) to what
// Run would return for that config alone — TestBatchEquivalence holds
// this across all three architectures and bandwidth sets — so batching
// is purely a performance choice: a 256-point sweep stops paying 256
// builds. docs/BATCHING.md documents the plan model and the
// determinism contract.
//
//hetpnoc:ctxroot synchronous public entry point, wraps RunBatchContext
func RunBatch(cfgs []Config) ([]Result, error) {
	return RunBatchContext(context.Background(), cfgs)
}

// RunBatchContext is RunBatch honoring cancellation: ctx is threaded
// through every member's cycle loop, so canceling aborts the in-flight
// members within one cancellation-check interval and drains the batch
// workers cleanly.
func RunBatchContext(ctx context.Context, cfgs []Config) ([]Result, error) {
	if len(cfgs) == 0 {
		return []Result{}, nil
	}
	specs, err := lowerAll(cfgs)
	if err != nil {
		return nil, err
	}
	plan, err := batch.NewPlan(specs, batch.Options{})
	if err != nil {
		return nil, err
	}
	out, err := plan.Run(ctx)
	if err != nil {
		return nil, err
	}
	return convertResults(out), nil
}

// lowerAll lowers every public config onto the internal fabric form.
func lowerAll(cfgs []Config) ([]fabric.Config, error) {
	specs := make([]fabric.Config, len(cfgs))
	for i, c := range cfgs {
		fc, err := c.toFabricConfig()
		if err != nil {
			return nil, err
		}
		specs[i] = fc
	}
	return specs, nil
}

// convertResults lifts the batch results back into the public form,
// mirroring RunContext: Events is non-nil exactly when the config
// enabled the event log.
func convertResults(out []batch.Result) []Result {
	results := make([]Result, len(out))
	for i, r := range out {
		res := fromFabricResult(r.Res)
		if r.Events != nil {
			res.Events = make([]string, len(r.Events))
			for j, e := range r.Events {
				res.Events[j] = e.String()
			}
		}
		results[i] = res
	}
	return results
}
