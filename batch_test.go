package hetpnoc

import (
	"bytes"
	"fmt"
	"testing"

	"hetpnoc/internal/batch"
)

// equivalenceConfigs builds the differential corpus for the batch
// oracle: every architecture crossed with every bandwidth set, each
// point fanned out over seeds and load scales so batching has prefixes
// to deduplicate, with the event log enabled so the comparison covers
// the protocol event stream and not just the aggregate counters.
func equivalenceConfigs() []Config {
	var cfgs []Config
	for _, arch := range []Architecture{DHetPNoC, Firefly, TorusPNoC} {
		for set := 1; set <= 3; set++ {
			for _, seed := range []uint64{1, 7} {
				for _, load := range []float64{1.0, 2.0} {
					cfgs = append(cfgs, Config{
						Architecture:  arch,
						BandwidthSet:  set,
						Traffic:       Traffic{Kind: UniformRandom},
						LoadScale:     load,
						Cycles:        600,
						WarmupCycles:  150,
						Seed:          seed,
						EventCapacity: 256,
					})
				}
			}
		}
	}
	return cfgs
}

// TestBatchEquivalence is the batch engine's differential oracle: for
// every config in the corpus, the batched result must be byte-identical
// — canonical Result encoding and the formatted event log — to running
// the config alone through Run. Batching must be purely a performance
// choice; any divergence means the checkpoint-fork fast path leaked
// state between members.
func TestBatchEquivalence(t *testing.T) {
	cfgs := equivalenceConfigs()
	batched, err := RunBatch(cfgs)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if len(batched) != len(cfgs) {
		t.Fatalf("RunBatch returned %d results for %d configs", len(batched), len(cfgs))
	}
	for i, cfg := range cfgs {
		name := fmt.Sprintf("config %d (%v/set%d/seed%d/load%g)",
			i, cfg.Architecture, cfg.BandwidthSet, cfg.Seed, cfg.LoadScale)
		solo, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: solo run: %v", name, err)
		}
		eb, err := batched[i].CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: encode batched: %v", name, err)
		}
		es, err := solo.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: encode solo: %v", name, err)
		}
		if !bytes.Equal(eb, es) {
			t.Errorf("%s: batched result diverges from solo run:\nbatched: %s\nsolo:    %s", name, eb, es)
		}
		if len(batched[i].Events) != len(solo.Events) {
			t.Errorf("%s: batched logged %d events, solo %d", name, len(batched[i].Events), len(solo.Events))
			continue
		}
		for j := range solo.Events {
			if batched[i].Events[j] != solo.Events[j] {
				t.Errorf("%s: event %d diverges:\nbatched: %s\nsolo:    %s", name, j, batched[i].Events[j], solo.Events[j])
				break
			}
		}
		if batched[i].PacketsDelivered == 0 {
			t.Errorf("%s: delivered nothing; the oracle is vacuous", name)
		}
	}
}

// TestBatchEquivalenceDedupes pins that the corpus above actually
// exercises the fast path: the 4 seed/load variants of each
// architecture × set point must collapse onto one fabric build.
func TestBatchEquivalenceDedupes(t *testing.T) {
	cfgs := equivalenceConfigs()
	specs, err := lowerAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := batch.NewPlan(specs, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	wantGroups := len(cfgs) / 4 // 2 seeds × 2 loads per prefix
	if st.Groups != wantGroups {
		t.Errorf("plan built %d groups for %d members, want %d", st.Groups, st.Members, wantGroups)
	}
	if st.LargestGroup != 4 {
		t.Errorf("largest group has %d members, want 4", st.LargestGroup)
	}
}

// TestBatchSweep256Builds pins the benchmark corpus's shape: the
// 256-point sweep of BenchmarkBatchSweep256 must collapse onto exactly
// 8 fabric builds (2 architectures × 2 bandwidth sets × 2 patterns),
// each carrying its 32 seed/load variants.
func TestBatchSweep256Builds(t *testing.T) {
	cfgs := sweep256Configs()
	if len(cfgs) != 256 {
		t.Fatalf("corpus has %d points, want 256", len(cfgs))
	}
	specs, err := lowerAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := batch.NewPlan(specs, batch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	if st.Groups != 8 || st.LargestGroup != 32 {
		t.Errorf("plan stats = %+v, want 8 groups of 32", st)
	}
}

// TestRunBatchEmpty: an empty batch is a no-op, not an error.
func TestRunBatchEmpty(t *testing.T) {
	res, err := RunBatch(nil)
	if err != nil {
		t.Fatalf("RunBatch(nil): %v", err)
	}
	if len(res) != 0 {
		t.Fatalf("RunBatch(nil) returned %d results", len(res))
	}
}
