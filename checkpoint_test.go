package hetpnoc

import (
	"bytes"
	"testing"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/sim"
)

// checkpointCase drives one configuration three ways — uninterrupted,
// checkpointed-but-uninterrupted, and restored-and-re-stepped — and
// requires all three to produce byte-identical canonical results.
type checkpointCase struct {
	name   string
	cfg    Config
	snapAt int
	// remapAt, when positive, schedules a mid-run task remap AFTER the
	// checkpoint, so the restore must replay the remap (new sources from
	// the restored RNG) identically.
	remapAt int64
}

func TestCheckpointRoundTrip(t *testing.T) {
	cases := []checkpointCase{
		{
			// The proposed architecture under its stressed workload:
			// token DBA, selected-wavelength gating, RX drops and
			// retransmission timers all live across the checkpoint.
			name: "dhetpnoc-skewed",
			cfg: Config{
				Architecture:  DHetPNoC,
				BandwidthSet:  1,
				Traffic:       SkewedTraffic(3),
				LoadScale:     2.0,
				Cycles:        3000,
				WarmupCycles:  500,
				Seed:          7,
				EventCapacity: 128,
			},
			snapAt:  1200,
			remapAt: 2000,
		},
		{
			// Checkpoint inside the warm-up window: the measurement
			// transition must replay after the restore.
			name: "firefly-uniform-prewarmup",
			cfg: Config{
				Architecture: Firefly,
				BandwidthSet: 2,
				Traffic:      UniformTraffic(),
				LoadScale:    1.0,
				Cycles:       2500,
				WarmupCycles: 800,
				Seed:         3,
			},
			snapAt: 400,
		},
		{
			// Circuit-switched baseline: link ownership and in-flight
			// path state cross the checkpoint.
			name: "torus-uniform",
			cfg: Config{
				Architecture: TorusPNoC,
				Traffic:      UniformTraffic(),
				LoadScale:    1.5,
				Cycles:       2500,
				WarmupCycles: 500,
				Seed:         11,
			},
			snapAt: 1300,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			checkpointRoundTrip(t, tc)
		})
	}
}

func checkpointRoundTrip(t *testing.T, tc checkpointCase) {
	t.Helper()
	fc, err := tc.cfg.toFabricConfig()
	if err != nil {
		t.Fatal(err)
	}
	if tc.remapAt > 0 {
		pattern, err := UniformTraffic().toPattern()
		if err != nil {
			t.Fatal(err)
		}
		fc.Remaps = append(fc.Remaps, fabric.Remap{At: sim.Cycle(tc.remapAt), Pattern: pattern})
	}
	fc = fc.WithDefaults()
	if tc.snapAt <= 0 || tc.snapAt >= fc.Cycles {
		t.Fatalf("snapshot cycle %d outside run of %d cycles", tc.snapAt, fc.Cycles)
	}

	// Reference: an uninterrupted run.
	ref := buildFabric(t, fc)
	stepN(t, ref, fc.Cycles)
	refJSON, refEvents := finishCanonical(t, ref)

	// Same run with a checkpoint taken mid-way: taking it must not
	// perturb anything.
	f := buildFabric(t, fc)
	stepN(t, f, tc.snapAt)
	cp := f.Checkpoint()
	stepN(t, f, fc.Cycles-tc.snapAt)
	gotJSON, gotEvents := finishCanonical(t, f)
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatalf("taking a checkpoint perturbed the run:\nref: %s\ngot: %s", refJSON, gotJSON)
	}
	if refEvents != gotEvents {
		t.Fatal("taking a checkpoint perturbed the event log")
	}

	// Rewind the finished fabric and re-step the remainder: byte-identical
	// to the uninterrupted run.
	if err := f.Restore(cp); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Now(), sim.Cycle(tc.snapAt); got != want {
		t.Fatalf("restored fabric at cycle %d, checkpoint was at %d", got, want)
	}
	stepN(t, f, fc.Cycles-tc.snapAt)
	redoJSON, redoEvents := finishCanonical(t, f)
	if !bytes.Equal(refJSON, redoJSON) {
		t.Fatalf("restored run diverged from uninterrupted run:\nref: %s\ngot: %s", refJSON, redoJSON)
	}
	if refEvents != redoEvents {
		t.Fatalf("restored run's event log diverged:\nref:\n%s\ngot:\n%s", refEvents, redoEvents)
	}

	// The checkpoint survives its first use: restore a second time and
	// replay again.
	if err := f.Restore(cp); err != nil {
		t.Fatal(err)
	}
	stepN(t, f, fc.Cycles-tc.snapAt)
	againJSON, _ := finishCanonical(t, f)
	if !bytes.Equal(refJSON, againJSON) {
		t.Fatal("second restore from the same checkpoint diverged")
	}
}

func buildFabric(t *testing.T, fc fabric.Config) *fabric.Fabric {
	t.Helper()
	f, err := fabric.New(fc)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func stepN(t *testing.T, f *fabric.Fabric, cycles int) {
	t.Helper()
	for i := 0; i < cycles; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// finishCanonical closes the run and returns the canonical result bytes
// plus the formatted event log (empty when logging is disabled).
func finishCanonical(t *testing.T, f *fabric.Fabric) ([]byte, string) {
	t.Helper()
	res, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := fromFabricResult(res).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var events string
	if log := f.Events(); log != nil {
		for _, e := range log.Events() {
			events += e.String() + "\n"
		}
	}
	return enc, events
}
