package batch

import (
	"fmt"
	"reflect"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
)

// Plan is a deduplicated job list: the member configs in submission
// order, partitioned into groups that share one fabric build. Build one
// with NewPlan and execute it with Run; a Plan is immutable afterwards
// and may be Run any number of times (each Run builds fresh fabrics, so
// re-submitting a canceled plan is safe and reproduces results
// byte-identically).
type Plan struct {
	specs  []fabric.Config
	groups []group
	opts   Options
}

// group is one shared-prefix partition. members holds spec indices in
// submission order; members[0] is the base: its full config builds the
// group's fabric, and under ForkWarmup its seed drives the shared warm
// prefix.
type group struct {
	members []int
}

// NewPlan validates the member configs, applies the fabric defaults to
// each, and partitions them into shared-prefix groups. Member order is
// preserved: Run's results align index-for-index with specs.
func NewPlan(specs []fabric.Config, opts Options) (*Plan, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("batch: empty plan")
	}
	opts = opts.withDefaults()
	p := &Plan{specs: make([]fabric.Config, len(specs)), opts: opts}
	for i, spec := range specs {
		spec = spec.WithDefaults()
		if err := spec.Validate(); err != nil {
			return nil, memberError(i, spec, err)
		}
		p.specs[i] = spec
	}
	for i := range p.specs {
		placed := false
		for gi := range p.groups {
			base := p.specs[p.groups[gi].members[0]]
			if sharablePrefix(base, p.specs[i], opts.Fork) {
				p.groups[gi].members = append(p.groups[gi].members, i)
				placed = true
				break
			}
		}
		if !placed {
			p.groups = append(p.groups, group{members: []int{i}})
		}
	}
	return p, nil
}

// sharablePrefix reports whether two defaulted configs may share one
// fabric build. Everything that shapes the build — topology, bandwidth
// set, architecture, traffic pattern, router provisioning, energy
// model, DBA parameters, scheduled remaps — must match; only the fields
// the fork sequence re-applies may differ: the seed always, the load
// scale only when forking pristine (warm-up traffic depends on it).
func sharablePrefix(a, b fabric.Config, fork ForkPoint) bool {
	if !patternsEqual(a.Pattern, b.Pattern) {
		return false
	}
	if !remapsEqual(a.Remaps, b.Remaps) {
		return false
	}
	// Mask the fields compared above and the legitimately-varying ones,
	// then let deep structural equality cover every remaining build
	// parameter — a field added to fabric.Config is conservatively
	// prefix-splitting by default.
	a.Pattern, b.Pattern = nil, nil
	a.Remaps, b.Remaps = nil, nil
	a.Seed, b.Seed = 0, 0
	if fork == ForkPristine {
		a.LoadScale, b.LoadScale = 0, 0
	}
	return reflect.DeepEqual(a, b)
}

// patternsEqual compares traffic patterns structurally. Patterns
// carrying closures (custom fixed assignments) compare unequal unless
// they are the same nil-free value, so configs whose equality cannot be
// proven never share a fabric — a missed dedup is a lost optimization,
// a false merge would be a wrong result.
func patternsEqual(a, b traffic.Pattern) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if reflect.TypeOf(a) != reflect.TypeOf(b) {
		return false
	}
	return reflect.DeepEqual(a, b)
}

// remapsEqual compares scheduled remap lists element-wise.
func remapsEqual(a, b []fabric.Remap) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].At != b[i].At || !patternsEqual(a[i].Pattern, b[i].Pattern) {
			return false
		}
	}
	return true
}
