// Package batch executes many near-identical simulations in one pass.
//
// Every real consumer of the simulator — parameter sweeps, replicated
// runs, the differential oracles — runs N simulations that differ only
// in seed or offered load, and naively pays N fabric builds (~430 µs +
// ~1 MB each) plus N warm-ups. A Plan deduplicates its job list by
// configuration prefix (topology, photonic model, architecture, traffic
// pattern and every other build-time parameter are shared; seed and load
// scale vary), builds ONE fabric per unique prefix, checkpoints it at
// the fork point, and runs every member by Restore + SetLoadScale +
// Reseed on that shared fabric — cache-hot stepping, no rebuilds.
//
// Two fork points are offered, with different equivalence contracts:
//
//   - ForkPristine (the default) checkpoints the fabric at cycle 0,
//     before any stepping. Each member then replays its entire run —
//     warm-up included — under its own seed and load. The result is
//     byte-identical to building a fresh fabric per member
//     (TestBatchEquivalence): only the build is amortized.
//
//   - ForkWarmup steps the shared fabric through the warm-up under the
//     group's base seed (its first member's), checkpoints at the warm-up
//     boundary, and forks each member there. Members pay only the
//     measurement window, so build AND warm-up are amortized — but the
//     contract is the replicated-run semantic: every replica shares the
//     base seed's warm prefix and diverges where measurement starts,
//     bit-identical to warming a fresh fabric at the base seed and
//     reseeding it at the same boundary (TestWarmForkEquivalence,
//     experiments.TestReplicatedForkBitIdentical). Because warm-up
//     traffic depends on the offered load, load scale is part of the
//     prefix in this mode: members of one group differ only in seed.
//
// A checkpoint only restores onto the fabric it was taken from, so the
// members of one group run sequentially on their shared fabric; the
// work-stealing scheduler in Run spreads the groups across
// Options.Workers goroutines. Results land by member index, so the
// output is independent of worker count and of how groups are stolen —
// the partition-independence property test holds this at worker counts
// 1, 2 and GOMAXPROCS.
//
// The remaining cycle count of a fork is always derived from the
// checkpoint's own cycle (Checkpoint.Cycle), never re-derived from the
// warm-up configuration: when a caller's options and the fabric's
// applied defaults disagree (the caller left WarmupCycles zero and the
// fabric defaulted it), deriving from configuration would re-step the
// warm-up inside every member — the latent double-warm-up this package
// fixes for experiments.RunReplicated.
package batch

import (
	"fmt"
	"runtime"

	"hetpnoc/internal/event"
	"hetpnoc/internal/fabric"
	"hetpnoc/internal/sim"
)

// ForkPoint selects where members fork off their group's shared fabric.
type ForkPoint int

// Fork points.
const (
	// ForkPristine forks at cycle 0: members replay warm-up themselves
	// and are byte-identical to independent per-config runs. Seed and
	// load scale may vary within a group.
	ForkPristine ForkPoint = iota + 1
	// ForkWarmup forks at the warm-up boundary: members share the base
	// seed's warm prefix and pay only the measurement window. Only the
	// seed may vary within a group.
	ForkWarmup
)

// String returns the fork-point name.
func (fp ForkPoint) String() string {
	switch fp {
	case ForkPristine:
		return "pristine"
	case ForkWarmup:
		return "warmup"
	default:
		return "unknown"
	}
}

// Options parameterizes a Plan. The zero value forks pristine with
// GOMAXPROCS workers.
type Options struct {
	// Workers bounds the goroutines executing groups (default
	// GOMAXPROCS, capped at the group count — extra workers would only
	// idle).
	Workers int

	// Fork selects the fork point (default ForkPristine).
	Fork ForkPoint
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Fork == 0 {
		o.Fork = ForkPristine
	}
	return o
}

// Result is one member's outcome.
type Result struct {
	// Res is the member's simulation result, identical to what a
	// standalone fabric run under the member's config would report (see
	// the package contract for the two fork points).
	Res fabric.Result

	// Events holds the member's retained protocol events when the
	// config enabled the event log (EventCapacity > 0); nil otherwise.
	// Present-but-empty logs yield a non-nil empty slice, mirroring the
	// standalone run.
	Events []event.Event

	// ForkCycle is the cycle boundary this member forked at: 0 for
	// ForkPristine, the warm-up boundary for ForkWarmup. Regression
	// tests pin it to prove members never re-step the shared prefix.
	ForkCycle sim.Cycle
}

// Stats describes a plan's shape after prefix deduplication.
type Stats struct {
	// Members is the total job count.
	Members int
	// Groups is the number of unique prefixes — exactly the number of
	// fabric builds Run performs.
	Groups int
	// LargestGroup is the biggest member count sharing one fabric.
	LargestGroup int
}

// Stats reports the plan's shape.
func (p *Plan) Stats() Stats {
	s := Stats{Members: len(p.specs), Groups: len(p.groups)}
	for _, g := range p.groups {
		if len(g.members) > s.LargestGroup {
			s.LargestGroup = len(g.members)
		}
	}
	return s
}

// memberError wraps a failure with the member it belongs to, so a
// 256-point sweep failure names the offending point.
func memberError(i int, cfg fabric.Config, err error) error {
	return fmt.Errorf("batch: member %d (%s/%s/%s): %w", i, cfg.Set.Name, cfg.Pattern.Name(), cfg.Arch, err)
}
