package batch

import (
	"context"
	"sync"

	"hetpnoc/internal/fabric"
)

// Run executes every member and returns results aligned with the plan's
// spec order. Groups are spread over Options.Workers goroutines by a
// work-stealing scheduler; within a group the members run sequentially
// on the shared fabric (a checkpoint only restores onto the fabric it
// was taken from). The caller's ctx is threaded through every
// fabric.StepContext, so cancellation aborts the in-flight members
// within one fabric.CancelCheckInterval and the workers drain cleanly;
// the first error (ctx's, if it fired) is returned. A Plan may be Run
// again after a cancellation — each Run builds fresh fabrics — and
// reproduces its results byte-identically.
func (p *Plan) Run(ctx context.Context) ([]Result, error) {
	workers := p.opts.Workers
	if workers > len(p.groups) {
		workers = len(p.groups)
	}
	results := make([]Result, len(p.specs))

	sched := newScheduler(len(p.groups), workers)
	// runCtx lets the first failing worker pull the others off their
	// fabrics at the next cancellation check instead of letting them
	// finish doomed work.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		firstIdx int //hetpnoc:guardedby errMu
	)
	fail := func(gi int, err error) {
		errMu.Lock()
		if firstErr == nil || gi < firstIdx {
			firstErr, firstIdx = err, gi
		}
		errMu.Unlock()
		cancelRun()
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				gi, ok := sched.next(w)
				if !ok || runCtx.Err() != nil {
					return
				}
				if err := p.runGroup(runCtx, p.groups[gi], results); err != nil {
					fail(gi, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Report the caller's cancellation as such even when a worker
	// dressed it in member context: the batch was aborted, not wrong.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runGroup builds the group's shared fabric, checkpoints it at the fork
// point, and forks every member off the checkpoint.
func (p *Plan) runGroup(ctx context.Context, g group, results []Result) error {
	base := p.specs[g.members[0]]
	f, err := fabric.New(base)
	if err != nil {
		return memberError(g.members[0], base, err)
	}
	if p.opts.Fork == ForkWarmup {
		if err := f.StepContext(ctx, base.WarmupCycles); err != nil {
			return memberError(g.members[0], base, err)
		}
	}
	cp := f.Checkpoint()
	forkCycle := cp.Cycle()

	for _, mi := range g.members {
		if err := ctx.Err(); err != nil {
			return memberError(mi, p.specs[mi], err)
		}
		spec := p.specs[mi]
		if err := f.Restore(cp); err != nil {
			return memberError(mi, spec, err)
		}
		if err := f.SetLoadScale(spec.LoadScale); err != nil {
			return memberError(mi, spec, err)
		}
		if err := f.Reseed(spec.Seed); err != nil {
			return memberError(mi, spec, err)
		}
		// The remaining cycles come from the checkpoint's own cycle, not
		// from the warm-up configuration: re-deriving them would re-step
		// the shared prefix whenever the two disagree (the double-warm-up
		// regression pinned by TestWarmForkNeverRestepsWarmup).
		if err := f.StepContext(ctx, spec.Cycles-int(forkCycle)); err != nil {
			return memberError(mi, spec, err)
		}
		res, err := f.Finish()
		if err != nil {
			return memberError(mi, spec, err)
		}
		out := Result{Res: res, ForkCycle: forkCycle}
		if log := f.Events(); log != nil {
			out.Events = log.Events()
		}
		results[mi] = out
	}
	return nil
}

// scheduler deals the group indices round-robin into per-worker queues;
// a worker drains its own queue back-to-front and steals from the
// front of the longest victim when empty. Stealing only changes which
// worker runs a group, never a member's result slot, so the output is
// schedule-independent.
type scheduler struct {
	mu     sync.Mutex
	queues [][]int //hetpnoc:guardedby mu
}

func newScheduler(groups, workers int) *scheduler {
	queues := make([][]int, workers)
	for gi := 0; gi < groups; gi++ {
		queues[gi%workers] = append(queues[gi%workers], gi)
	}
	return &scheduler{queues: queues}
}

// next returns the next group index for worker w, stealing if w's own
// queue is empty; ok is false when every queue is drained.
func (s *scheduler) next(w int) (gi int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.queues[w]; len(q) > 0 {
		gi = q[len(q)-1]
		s.queues[w] = q[:len(q)-1]
		return gi, true
	}
	victim, best := -1, 0
	for v := range s.queues {
		if n := len(s.queues[v]); n > best {
			victim, best = v, n
		}
	}
	if victim < 0 {
		return 0, false
	}
	q := s.queues[victim]
	gi = q[0]
	s.queues[victim] = q[1:]
	return gi, true
}
