package batch

import (
	"strings"
	"testing"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
)

// spec builds a minimal valid member config; the fabric defaults fill
// the rest identically for every call, so two specs share a pristine
// prefix exactly when their explicit fields (beyond seed and load) do.
func spec(seed uint64, load float64) fabric.Config {
	return fabric.Config{
		Pattern:      traffic.Uniform{},
		LoadScale:    load,
		Cycles:       600,
		WarmupCycles: 150,
		Seed:         seed,
	}
}

func mustPlan(t *testing.T, specs []fabric.Config, opts Options) *Plan {
	t.Helper()
	p, err := NewPlan(specs, opts)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	return p
}

func TestPlanGroupsBySharedPrefix(t *testing.T) {
	bursty := spec(1, 1)
	bursty.Pattern = traffic.Skewed{Level: 2}
	firefly := spec(1, 1)
	firefly.Arch = fabric.Firefly
	longer := spec(1, 1)
	longer.Cycles = 900

	specs := []fabric.Config{
		spec(1, 1), spec(2, 1), spec(1, 2), spec(9, 0.5), // one pristine prefix
		bursty,  // pattern splits
		firefly, // architecture splits
		longer,  // cycle count splits
	}
	p := mustPlan(t, specs, Options{Fork: ForkPristine})
	st := p.Stats()
	if st.Members != len(specs) || st.Groups != 4 || st.LargestGroup != 4 {
		t.Errorf("pristine stats = %+v, want 7 members in 4 groups, largest 4", st)
	}
}

func TestWarmForkLoadSplitsPrefix(t *testing.T) {
	// Warm-up traffic depends on the offered load, so under ForkWarmup
	// two loads may not share a warm prefix — only seeds may vary.
	specs := []fabric.Config{spec(1, 1), spec(2, 1), spec(1, 2), spec(2, 2)}
	p := mustPlan(t, specs, Options{Fork: ForkWarmup})
	if st := p.Stats(); st.Groups != 2 || st.LargestGroup != 2 {
		t.Errorf("warm-fork stats = %+v, want 2 groups of 2", st)
	}
	// The same specs share one fabric when forking pristine.
	p = mustPlan(t, specs, Options{Fork: ForkPristine})
	if st := p.Stats(); st.Groups != 1 || st.LargestGroup != 4 {
		t.Errorf("pristine stats = %+v, want 1 group of 4", st)
	}
}

func TestPlanRemapGrouping(t *testing.T) {
	remapA := spec(1, 1)
	remapA.Remaps = []fabric.Remap{{At: 300, Pattern: traffic.Skewed{Level: 2}}}
	remapB := spec(2, 1)
	remapB.Remaps = []fabric.Remap{{At: 300, Pattern: traffic.Skewed{Level: 2}}}
	remapC := spec(3, 1)
	remapC.Remaps = []fabric.Remap{{At: 400, Pattern: traffic.Skewed{Level: 2}}}

	p := mustPlan(t, []fabric.Config{remapA, remapB, remapC, spec(4, 1)}, Options{})
	if st := p.Stats(); st.Groups != 3 || st.LargestGroup != 2 {
		t.Errorf("remap stats = %+v, want 3 groups, largest 2 (equal remap schedules share)", st)
	}
}

func TestPlanMemberOrderPreserved(t *testing.T) {
	specs := []fabric.Config{spec(3, 1), spec(1, 2), spec(2, 1)}
	p := mustPlan(t, specs, Options{})
	for i, want := range []uint64{3, 1, 2} {
		if got := p.specs[i].Seed; got != want {
			t.Errorf("spec %d has seed %d, want %d", i, got, want)
		}
	}
}

func TestPlanRejectsEmptyAndInvalid(t *testing.T) {
	if _, err := NewPlan(nil, Options{}); err == nil {
		t.Error("NewPlan(nil) succeeded, want error")
	}
	bad := spec(1, 1)
	bad.LoadScale = -1
	_, err := NewPlan([]fabric.Config{spec(1, 1), bad}, Options{})
	if err == nil {
		t.Fatal("NewPlan with invalid member succeeded, want error")
	}
	if !strings.Contains(err.Error(), "member 1") {
		t.Errorf("error %q does not name the offending member", err)
	}
}

// FuzzBatchPlan holds NewPlan's partition invariants on arbitrary job
// lists: every member lands in exactly one group, every member shares a
// prefix with its group's base, and grouping is deterministic. The
// inputs drive the config fields the prefix comparison masks or splits
// on.
func FuzzBatchPlan(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, true)
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 0x41}, false)
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1}, true)
	f.Fuzz(func(t *testing.T, raw []byte, warm bool) {
		if len(raw) == 0 || len(raw) > 32 {
			t.Skip()
		}
		fork := ForkPristine
		if warm {
			fork = ForkWarmup
		}
		specs := make([]fabric.Config, len(raw))
		for i, b := range raw {
			s := spec(uint64(b&0x03)+1, float64(b>>2&0x03)+1)
			if b&0x10 != 0 {
				s.Arch = fabric.Firefly
			}
			if b&0x20 != 0 {
				s.Cycles = 800
			}
			if b&0x40 != 0 {
				s.Pattern = traffic.Skewed{Level: 2}
			}
			if b&0x80 != 0 {
				s.Remaps = []fabric.Remap{{At: 200, Pattern: traffic.Uniform{}}}
			}
			specs[i] = s
		}
		p, err := NewPlan(specs, Options{Fork: fork})
		if err != nil {
			t.Fatalf("NewPlan: %v", err)
		}
		seen := make(map[int]bool)
		for _, g := range p.groups {
			if len(g.members) == 0 {
				t.Fatal("empty group")
			}
			base := p.specs[g.members[0]]
			for _, mi := range g.members {
				if seen[mi] {
					t.Fatalf("member %d appears in two groups", mi)
				}
				seen[mi] = true
				if !sharablePrefix(base, p.specs[mi], fork) {
					t.Fatalf("member %d grouped with a base it may not share a fabric with", mi)
				}
			}
		}
		if len(seen) != len(specs) {
			t.Fatalf("partition covers %d of %d members", len(seen), len(specs))
		}
		// Grouping is pure: replanning the same inputs yields the same
		// partition (no map iteration or shared mutable state involved).
		q, err := NewPlan(specs, Options{Fork: fork})
		if err != nil {
			t.Fatalf("NewPlan (replay): %v", err)
		}
		if len(q.groups) != len(p.groups) {
			t.Fatalf("replay built %d groups, first plan %d", len(q.groups), len(p.groups))
		}
		for gi := range p.groups {
			if len(q.groups[gi].members) != len(p.groups[gi].members) {
				t.Fatalf("group %d size differs between identical plans", gi)
			}
			for mi := range p.groups[gi].members {
				if q.groups[gi].members[mi] != p.groups[gi].members[mi] {
					t.Fatalf("group %d member %d differs between identical plans", gi, mi)
				}
			}
		}
	})
}
