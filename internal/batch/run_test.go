package batch

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"hetpnoc/internal/event"
	"hetpnoc/internal/fabric"
	"hetpnoc/internal/testutil/leakcheck"
	"hetpnoc/internal/traffic"
)

// soloRun executes one member config on its own fresh fabric — the
// reference the pristine fork must match byte-for-byte.
func soloRun(t *testing.T, cfg fabric.Config) (fabric.Result, []event.Event) {
	t.Helper()
	f, err := fabric.New(cfg.WithDefaults())
	if err != nil {
		t.Fatalf("solo fabric.New: %v", err)
	}
	res, err := f.RunContext(context.Background())
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	return res, f.Events().Events()
}

func resultJSON(t *testing.T, res fabric.Result) []byte {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

func eventsEqual(a, b []event.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// TestPristineForkMatchesSolo drives the engine at the fabric layer —
// including a remap scheduled AFTER the fork point, so the remap timer
// re-arms correctly on every restore and draws the member's own RNG
// stream — and requires byte-identical results and event logs against
// per-config solo runs.
func TestPristineForkMatchesSolo(t *testing.T) {
	remapped := func(seed uint64, load float64) fabric.Config {
		s := spec(seed, load)
		s.EventCapacity = 256
		s.Remaps = []fabric.Remap{{At: 300, Pattern: traffic.Skewed{Level: 2}}}
		return s
	}
	specs := []fabric.Config{
		remapped(1, 1), remapped(5, 1), remapped(1, 2), remapped(5, 0.75),
	}
	p := mustPlan(t, specs, Options{Fork: ForkPristine})
	if st := p.Stats(); st.Groups != 1 {
		t.Fatalf("plan built %d groups, want 1 (seeds and loads vary freely, remap schedules match)", st.Groups)
	}
	out, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, s := range specs {
		wantRes, wantEvents := soloRun(t, s)
		if out[i].ForkCycle != 0 {
			t.Errorf("member %d forked at cycle %d, want 0 (pristine)", i, out[i].ForkCycle)
		}
		if got, want := resultJSON(t, out[i].Res), resultJSON(t, wantRes); !bytes.Equal(got, want) {
			t.Errorf("member %d diverges from solo run:\nbatch: %s\nsolo:  %s", i, got, want)
		}
		if !eventsEqual(out[i].Events, wantEvents) {
			t.Errorf("member %d event log diverges (batch %d events, solo %d)", i, len(out[i].Events), len(wantEvents))
		}
	}
}

// warmReference reproduces the documented replicated-run contract for
// one member: build at the base config, warm under the base seed,
// reseed at the boundary, pay only the measurement window.
func warmReference(t *testing.T, base fabric.Config, seed uint64) (fabric.Result, []event.Event) {
	t.Helper()
	base = base.WithDefaults()
	f, err := fabric.New(base)
	if err != nil {
		t.Fatalf("reference fabric.New: %v", err)
	}
	if err := f.StepContext(context.Background(), base.WarmupCycles); err != nil {
		t.Fatalf("reference warm-up: %v", err)
	}
	if err := f.Reseed(seed); err != nil {
		t.Fatalf("reference reseed: %v", err)
	}
	if err := f.StepContext(context.Background(), base.Cycles-base.WarmupCycles); err != nil {
		t.Fatalf("reference measurement: %v", err)
	}
	res, err := f.Finish()
	if err != nil {
		t.Fatalf("reference finish: %v", err)
	}
	return res, f.Events().Events()
}

// TestWarmForkEquivalence: forking at the warm-up boundary is
// bit-identical to warming a fresh fabric under the base seed and
// reseeding it at the same boundary. A remap scheduled inside the
// measurement window checks the post-fork reconfiguration path too.
func TestWarmForkEquivalence(t *testing.T) {
	mk := func(seed uint64) fabric.Config {
		s := spec(seed, 1)
		s.EventCapacity = 256
		s.Remaps = []fabric.Remap{{At: 400, Pattern: traffic.Skewed{Level: 2}}}
		return s
	}
	specs := []fabric.Config{mk(1), mk(2), mk(3)}
	p := mustPlan(t, specs, Options{Fork: ForkWarmup})
	if st := p.Stats(); st.Groups != 1 {
		t.Fatalf("plan built %d groups, want 1", st.Groups)
	}
	out, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, s := range specs {
		wantRes, wantEvents := warmReference(t, specs[0], s.Seed)
		if got, want := resultJSON(t, out[i].Res), resultJSON(t, wantRes); !bytes.Equal(got, want) {
			t.Errorf("member %d diverges from the warm-fork reference:\nbatch: %s\nref:   %s", i, got, want)
		}
		if !eventsEqual(out[i].Events, wantEvents) {
			t.Errorf("member %d event log diverges", i)
		}
	}
}

// TestWarmForkNeverRestepsWarmup pins the double-warm-up regression: a
// caller that leaves WarmupCycles zero gets the fabric's default (1000)
// applied at build time, and the fork must happen exactly there — the
// members' remaining cycle count comes from the checkpoint's own cycle,
// never re-derived from the caller's (un-defaulted) options. Before the
// batch engine, experiments.replicateRows computed the measurement
// window from caller options and re-stepped the whole warm-up inside
// every replica.
func TestWarmForkNeverRestepsWarmup(t *testing.T) {
	mk := func(seed uint64) fabric.Config {
		return fabric.Config{
			Pattern: traffic.Uniform{},
			Cycles:  2000,
			// WarmupCycles deliberately zero: the fabric defaults it.
			Seed: seed,
		}
	}
	specs := []fabric.Config{mk(1), mk(2)}
	p := mustPlan(t, specs, Options{Fork: ForkWarmup})
	out, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantFork := fabric.Config{}.WithDefaults().WarmupCycles
	for i := range out {
		if int(out[i].ForkCycle) != wantFork {
			t.Errorf("member %d forked at cycle %d, want the defaulted warm-up boundary %d", i, out[i].ForkCycle, wantFork)
		}
		wantRes, _ := warmReference(t, specs[0], specs[i].Seed)
		if got, want := resultJSON(t, out[i].Res), resultJSON(t, wantRes); !bytes.Equal(got, want) {
			t.Errorf("member %d diverges from the single-warm-up reference", i)
		}
	}
}

// TestPartitionIndependence is the scheduling-invariance property: for
// random sub-batches of a mixed corpus, the results are byte-identical
// at worker counts 1, 2 and GOMAXPROCS — partitioning work over more
// workers (and the stealing it causes) may never change any member's
// bytes.
func TestPartitionIndependence(t *testing.T) {
	corpus := []fabric.Config{
		spec(1, 1), spec(2, 1), spec(1, 2), spec(3, 0.5),
		spec(1, 1), // duplicate of corpus[0]: identical members must yield identical bytes
	}
	firefly := spec(2, 1)
	firefly.Arch = fabric.Firefly
	skewed := spec(4, 1)
	skewed.Pattern = traffic.Skewed{Level: 2}
	corpus = append(corpus, firefly, skewed)

	property := func(mask uint8, warm bool) bool {
		var specs []fabric.Config
		for i, s := range corpus {
			if mask&(1<<i) != 0 {
				specs = append(specs, s)
			}
		}
		if len(specs) == 0 {
			return true
		}
		fork := ForkPristine
		if warm {
			fork = ForkWarmup
		}
		var ref [][]byte
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			p, err := NewPlan(specs, Options{Workers: workers, Fork: fork})
			if err != nil {
				t.Logf("NewPlan: %v", err)
				return false
			}
			out, err := p.Run(context.Background())
			if err != nil {
				t.Logf("Run: %v", err)
				return false
			}
			enc := make([][]byte, len(out))
			for i := range out {
				enc[i] = resultJSON(t, out[i].Res)
			}
			if ref == nil {
				ref = enc
				continue
			}
			for i := range enc {
				if !bytes.Equal(enc[i], ref[i]) {
					t.Logf("member %d differs between worker counts", i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestRunCancellationDrains is the -race soak: canceling mid-batch
// aborts the in-flight members promptly, drains every worker without
// leaking goroutines (leakcheck snapshots the live goroutines and
// names any survivor), and a resubmitted plan reproduces the
// uncanceled results byte-identically.
func TestRunCancellationDrains(t *testing.T) {
	leakcheck.Check(t)
	long := func(seed uint64) fabric.Config {
		s := spec(seed, 1)
		s.Cycles = 50_000_000
		s.WarmupCycles = 1000
		return s
	}
	specs := []fabric.Config{long(1), long(2), long(3), long(4)}

	p := mustPlan(t, specs, Options{Workers: 2, Fork: ForkPristine})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := p.Run(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	canceledAt := time.Now()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Run did not drain within 10s of cancellation (running since %v)", time.Since(start))
	}
	// The cycle loop polls ctx every fabric.CancelCheckInterval cycles;
	// even generously, the workers must be gone well under a second.
	if drain := time.Since(canceledAt); drain > 2*time.Second {
		t.Errorf("drain took %v after cancel", drain)
	}
	// Resubmit: the same Plan runs again from fresh fabrics and must
	// reproduce an uncanceled reference byte-for-byte.
	short := []fabric.Config{spec(1, 1), spec(2, 1), spec(3, 2)}
	rp := mustPlan(t, short, Options{Workers: 2})
	rctx, rcancel := context.WithCancel(context.Background())
	time.AfterFunc(time.Millisecond, rcancel)
	if _, err := rp.Run(rctx); err != nil && err != context.Canceled {
		t.Fatalf("canceled run: %v", err)
	}
	got, err := rp.Run(context.Background())
	if err != nil {
		t.Fatalf("resubmitted run: %v", err)
	}
	want, err := mustPlan(t, short, Options{Workers: 1}).Run(context.Background())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	for i := range got {
		if !bytes.Equal(resultJSON(t, got[i].Res), resultJSON(t, want[i].Res)) {
			t.Errorf("member %d of the resubmitted plan diverges from the reference", i)
		}
	}
}
