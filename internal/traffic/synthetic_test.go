package traffic

import (
	"testing"
	"testing/quick"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

func assignPermutation(t *testing.T, kind PermutationKind) Assignment {
	t.Helper()
	a, err := Permutation{Kind: kind}.Assign(topology.Default(), BWSet1, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// destOf samples the fixed destination of core c (nil PickDest = silent).
func destOf(a Assignment, c int) (topology.CoreID, bool) {
	if a.Cores[c].PickDest == nil {
		return 0, false
	}
	return a.Cores[c].PickDest(sim.NewRNG(1)), true
}

func TestTransposePartners(t *testing.T) {
	a := assignPermutation(t, Transpose)
	// Core (x,y) of the 8x8 grid -> (y,x): core 1 = (1,0) -> (0,1) = 8.
	if dst, ok := destOf(a, 1); !ok || dst != 8 {
		t.Fatalf("transpose(1) = %v, want 8", dst)
	}
	// Diagonal cores are fixed points and stay silent.
	if _, ok := destOf(a, 9); ok { // (1,1)
		t.Fatal("diagonal core 9 should be silent")
	}
	if a.Cores[9].RateGbps != 0 {
		t.Fatal("diagonal core has a rate")
	}
}

func TestBitComplementPartners(t *testing.T) {
	a := assignPermutation(t, BitComplement)
	tests := map[int]topology.CoreID{0: 63, 63: 0, 21: 42, 1: 62}
	//hetpnoc:orderfree each partner pair is asserted independently
	for c, want := range tests {
		if dst, ok := destOf(a, c); !ok || dst != want {
			t.Fatalf("complement(%d) = %v, want %d", c, dst, want)
		}
	}
}

func TestBitReversePartners(t *testing.T) {
	a := assignPermutation(t, BitReverse)
	// 6-bit reversal: 000001 -> 100000 (32); 011000 (24) -> 000110 (6).
	tests := map[int]topology.CoreID{1: 32, 24: 6, 0: 0}
	//hetpnoc:orderfree each partner pair is asserted independently
	for c, want := range tests {
		dst, ok := destOf(a, c)
		if c == int(want) {
			if ok {
				t.Fatalf("fixed point %d should be silent", c)
			}
			continue
		}
		if !ok || dst != want {
			t.Fatalf("reverse(%d) = %v, want %d", c, dst, want)
		}
	}
}

func TestShufflePartners(t *testing.T) {
	a := assignPermutation(t, Shuffle)
	// rotate-left-by-1 in 6 bits: 100000 (32) -> 000001 (1); 3 -> 6.
	tests := map[int]topology.CoreID{32: 1, 3: 6, 17: 34}
	//hetpnoc:orderfree each partner pair is asserted independently
	for c, want := range tests {
		if dst, ok := destOf(a, c); !ok || dst != want {
			t.Fatalf("shuffle(%d) = %v, want %d", c, dst, want)
		}
	}
}

func TestNeighborPartners(t *testing.T) {
	a := assignPermutation(t, Neighbor)
	topo := topology.Default()
	for c := 0; c < topo.Cores(); c++ {
		dst, ok := destOf(a, c)
		if !ok {
			t.Fatalf("core %d silent under neighbor", c)
		}
		wantCl := (int(topo.ClusterOf(topology.CoreID(c))) + 1) % 16
		if int(topo.ClusterOf(dst)) != wantCl {
			t.Fatalf("neighbor(%d) lands in cluster %d, want %d", c, topo.ClusterOf(dst), wantCl)
		}
	}
}

// TestPermutationsAreInjective: every classic permutation maps distinct
// sources to distinct destinations (fixed points excluded).
func TestPermutationsAreInjective(t *testing.T) {
	for _, kind := range []PermutationKind{Transpose, BitComplement, BitReverse, Shuffle, Neighbor} {
		a := assignPermutation(t, kind)
		seen := make(map[topology.CoreID]int)
		for c := range a.Cores {
			dst, ok := destOf(a, c)
			if !ok {
				continue
			}
			if prev, dup := seen[dst]; dup {
				t.Fatalf("%v: cores %d and %d both target %d", kind, prev, c, dst)
			}
			seen[dst] = c
		}
	}
}

// TestPermutationDestinationsStable: the destination is deterministic
// regardless of the RNG stream.
//
//hetpnoc:detsafe property test samples random RNG streams on purpose, to prove the destination ignores them; quick prints any counterexample
func TestPermutationDestinationsStable(t *testing.T) {
	a := assignPermutation(t, BitComplement)
	f := func(seed uint64, rawCore uint8) bool {
		c := int(rawCore) % 64
		pick := a.Cores[c].PickDest
		if pick == nil {
			return true
		}
		return pick(sim.NewRNG(seed)) == pick(sim.NewRNG(seed+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermutationDefaultRateIsFairShare(t *testing.T) {
	a := assignPermutation(t, Neighbor)
	// 64 wavelengths x 12.5 / 64 cores = 12.5 Gb/s per core.
	for c, p := range a.Cores {
		if p.RateGbps != 12.5 {
			t.Fatalf("core %d rate %g, want 12.5", c, p.RateGbps)
		}
	}
}

func TestPermutationNames(t *testing.T) {
	if (Permutation{Kind: Transpose}).Name() != "transpose" {
		t.Fatal("bad name")
	}
	if PermutationKind(0).String() != "unknown" {
		t.Fatal("zero kind should be unknown")
	}
}

func TestPermutationValidation(t *testing.T) {
	topo := topology.Default()
	if _, err := (Permutation{Kind: PermutationKind(99)}).Assign(topo, BWSet1, sim.NewRNG(1)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := (Permutation{Kind: Neighbor, RateGbps: -1}).Assign(topo, BWSet1, sim.NewRNG(1)); err == nil {
		t.Error("negative rate accepted")
	}
	// Non-power-of-two core counts reject the bit patterns.
	smallTopo, err := topology.New(36, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Permutation{Kind: BitComplement}).Assign(smallTopo, BWSet1, sim.NewRNG(1)); err == nil {
		t.Error("bit-complement on 36 cores accepted")
	}
	// 36 is a perfect square though: transpose works.
	if _, err := (Permutation{Kind: Transpose}).Assign(smallTopo, BWSet1, sim.NewRNG(1)); err != nil {
		t.Errorf("transpose on 36 cores rejected: %v", err)
	}
}
