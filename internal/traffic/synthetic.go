package traffic

import (
	"fmt"
	"math/bits"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// PermutationKind selects one of the classic NoC synthetic permutation
// patterns (Dally & Towles). The thesis evaluates uniform and skewed
// workloads; these patterns are standard simulator equipment, exercising
// adversarial spatial structure — particularly interesting for the torus
// baseline, whose blocking behaviour is path-dependent.
type PermutationKind int

// Permutation kinds.
const (
	// Transpose sends core (x,y) to core (y,x) of the logical core grid.
	Transpose PermutationKind = iota + 1
	// BitComplement sends core i to core ^i (within the core-index
	// width).
	BitComplement
	// BitReverse sends core i to the bit-reversal of i.
	BitReverse
	// Shuffle sends core i to rotate-left(i, 1).
	Shuffle
	// Neighbor sends cluster c's cores to cluster (c+1)'s cores — the
	// friendliest pattern for a torus, adversarial for a shared-channel
	// crossbar writer.
	Neighbor
)

// String returns the pattern name.
func (k PermutationKind) String() string {
	switch k {
	case Transpose:
		return "transpose"
	case BitComplement:
		return "bit-complement"
	case BitReverse:
		return "bit-reverse"
	case Shuffle:
		return "shuffle"
	case Neighbor:
		return "neighbor"
	default:
		return "unknown"
	}
}

// Permutation is a deterministic-destination synthetic pattern: every core
// offers the same rate to one fixed partner.
type Permutation struct {
	Kind PermutationKind
	// RateGbps is the per-core offered rate; zero selects the fair share
	// of the bandwidth set's aggregate capacity.
	RateGbps float64
}

// Name implements Pattern.
func (p Permutation) Name() string { return p.Kind.String() }

// Assign implements Pattern.
func (p Permutation) Assign(topo topology.Topology, set BandwidthSet, _ *sim.RNG) (Assignment, error) {
	if err := set.Validate(); err != nil {
		return Assignment{}, err
	}
	perCore := p.RateGbps
	if perCore == 0 {
		perCore = float64(set.TotalWavelengths) * 12.5 / float64(topo.Cores())
	}
	if perCore < 0 {
		return Assignment{}, fmt.Errorf("traffic: negative permutation rate %g", perCore)
	}

	cores := make([]CoreProfile, topo.Cores())
	for c := range cores {
		dst, err := p.partner(topo, topology.CoreID(c))
		if err != nil {
			return Assignment{}, err
		}
		if dst == topology.CoreID(c) {
			// Fixed points (e.g. the transpose diagonal) stay silent, as
			// in standard NoC methodology.
			cores[c] = CoreProfile{}
			continue
		}
		target := dst
		self := topo.ClusterOf(topology.CoreID(c))
		profile := CoreProfile{
			RateGbps:   perCore,
			DemandGbps: perCore * float64(topo.ClusterSize()),
			PickDest:   func(*sim.RNG) topology.CoreID { return target },
		}
		if dstCl := topo.ClusterOf(target); dstCl != self {
			profile.DemandDests = []topology.ClusterID{dstCl}
		}
		cores[c] = profile
	}
	return Assignment{Name: p.Name(), Cores: cores}, nil
}

// partner returns the fixed destination of core c.
func (p Permutation) partner(topo topology.Topology, c topology.CoreID) (topology.CoreID, error) {
	n := topo.Cores()
	switch p.Kind {
	case Transpose:
		side := intSqrt(n)
		if side == 0 {
			return 0, fmt.Errorf("traffic: transpose needs a square core count, got %d", n)
		}
		x, y := int(c)%side, int(c)/side
		return topology.CoreID(x*side + y), nil
	case BitComplement:
		if n&(n-1) != 0 {
			return 0, fmt.Errorf("traffic: bit-complement needs a power-of-two core count, got %d", n)
		}
		return topology.CoreID(int(c) ^ (n - 1)), nil
	case BitReverse:
		if n&(n-1) != 0 {
			return 0, fmt.Errorf("traffic: bit-reverse needs a power-of-two core count, got %d", n)
		}
		width := bits.Len(uint(n)) - 1
		return topology.CoreID(int(bits.Reverse(uint(c)) >> (bits.UintSize - width))), nil
	case Shuffle:
		if n&(n-1) != 0 {
			return 0, fmt.Errorf("traffic: shuffle needs a power-of-two core count, got %d", n)
		}
		width := bits.Len(uint(n)) - 1
		v := int(c) << 1
		return topology.CoreID((v | (v >> width)) & (n - 1)), nil
	case Neighbor:
		next := (int(topo.ClusterOf(c)) + 1) % topo.Clusters()
		return topo.CoreAt(topology.ClusterID(next), topo.LocalIndex(c)), nil
	default:
		return 0, fmt.Errorf("traffic: unknown permutation kind %d", p.Kind)
	}
}

func intSqrt(n int) int {
	for s := 0; s*s <= n; s++ {
		if s*s == n {
			return s
		}
	}
	return 0
}
