package traffic

import (
	"fmt"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// Source turns a CoreProfile into a cycle-by-cycle packet generator. It
// accumulates bandwidth credit every cycle (rate x load scale, in bits)
// and emits a packet whenever a full packet's worth has accrued, sampling
// the destination from the profile. Generation is deterministic given the
// RNG stream.
type Source struct {
	core    topology.CoreID
	profile CoreProfile
	format  packet.Format
	clock   sim.Clock
	rng     *sim.RNG

	bitsPerCycle float64
	credit       float64

	// On/off burst state (Burstiness > 1): during ON the source earns
	// burstiness x bitsPerCycle; pOnToOff/pOffToOn are the per-cycle
	// Markov transition probabilities sized for the configured mean
	// burst length and the long-run duty cycle 1/burstiness.
	bursty    bool
	burstRate float64
	on        bool
	pOnToOff  float64
	pOffToOn  float64

	nextMessage *packet.MessageID //hetpnoc:nosnap run-wide ID counter owned and checkpointed by the fabric
	nextPacket  *packet.ID        //hetpnoc:nosnap run-wide ID counter owned and checkpointed by the fabric

	// pool, when set, recycles packet structs (nil allocates fresh).
	pool *packet.Pool //hetpnoc:nosnap owned and checkpointed by the fabric; SetPool re-wires it
}

// NewSource builds a source for core with the given profile and framing.
// messageIDs and packetIDs are shared run-wide counters so every packet in
// a run gets a unique identity.
func NewSource(core topology.CoreID, profile CoreProfile, format packet.Format, clock sim.Clock,
	loadScale float64, rng *sim.RNG, messageIDs *packet.MessageID, packetIDs *packet.ID) (*Source, error) {
	if err := format.Validate(); err != nil {
		return nil, err
	}
	if loadScale < 0 {
		return nil, fmt.Errorf("traffic: load scale must be non-negative, got %g", loadScale)
	}
	if profile.RateGbps > 0 && profile.PickDest == nil {
		return nil, fmt.Errorf("traffic: core %d has a rate but no destination sampler", core)
	}
	if profile.Burstiness < 0 || profile.BurstCycles < 0 {
		return nil, fmt.Errorf("traffic: core %d has negative burst parameters", core)
	}
	s := &Source{
		core:         core,
		profile:      profile,
		format:       format,
		clock:        clock,
		rng:          rng,
		bitsPerCycle: clock.GbpsToBitsPerCycle(profile.RateGbps * loadScale),
		nextMessage:  messageIDs,
		nextPacket:   packetIDs,
	}
	if profile.Burstiness > 1 && s.bitsPerCycle > 0 {
		burstCycles := profile.BurstCycles
		if burstCycles == 0 {
			burstCycles = 256
		}
		// Duty cycle d = 1/burstiness keeps the long-run average at the
		// nominal rate; mean OFF length = burstCycles*(1-d)/d.
		duty := 1 / profile.Burstiness
		s.bursty = true
		s.burstRate = s.bitsPerCycle * profile.Burstiness
		s.pOnToOff = 1 / float64(burstCycles)
		s.pOffToOn = duty / ((1 - duty) * float64(burstCycles))
		s.on = rng.Bernoulli(duty)
	}
	return s, nil
}

// OfferedBitsPerCycle returns the source's scaled injection rate.
func (s *Source) OfferedBitsPerCycle() float64 { return s.bitsPerCycle }

// Idle reports whether the source can never emit a packet. Its Tick is
// then a pure no-op (zero credit accrues and the RNG is untouched —
// bursty state only exists for positive rates), so the fabric may skip
// it without perturbing determinism.
func (s *Source) Idle() bool { return s.bitsPerCycle == 0 }

// SetPool installs a packet free-list; generated packets are drawn from
// it instead of the heap. The owner must only recycle packets it has
// fully retired.
func (s *Source) SetPool(pool *packet.Pool) { s.pool = pool }

// Tick advances one cycle and returns a newly generated packet, or nil.
// At most one packet is generated per cycle; surplus credit carries over,
// so the long-run rate matches the profile even if it briefly exceeds one
// packet per cycle.
func (s *Source) Tick(now sim.Cycle, topo topology.Topology) *packet.Packet {
	if s.bursty {
		if s.on {
			s.credit += s.burstRate
			if s.rng.Bernoulli(s.pOnToOff) {
				s.on = false
			}
		} else if s.rng.Bernoulli(s.pOffToOn) {
			s.on = true
		}
	} else {
		s.credit += s.bitsPerCycle
	}
	bits := float64(s.format.Bits())
	if s.credit < bits {
		return nil
	}
	s.credit -= bits

	dst := s.profile.PickDest(s.rng)
	*s.nextMessage++
	*s.nextPacket++
	p := s.pool.Get()
	*p = packet.Packet{
		ID:         *s.nextPacket,
		Message:    *s.nextMessage,
		Src:        s.core,
		Dst:        dst,
		SrcCluster: topo.ClusterOf(s.core),
		DstCluster: topo.ClusterOf(dst),
		Flits:      s.format.Flits,
		FlitBits:   s.format.FlitBits,
		Created:    now,
		Born:       now,
		Attempt:    1,
	}
	return p
}

// SourceState is the source's full mutable state: everything else is
// fixed at construction, so checkpointing a source is these three values.
type SourceState struct {
	Credit float64
	On     bool
	RNG    uint64
}

// State captures the source's mutable state for checkpointing.
func (s *Source) State() SourceState {
	return SourceState{Credit: s.credit, On: s.on, RNG: s.rng.State()}
}

// SetState rewinds the source to a state captured by State.
func (s *Source) SetState(st SourceState) {
	s.credit = st.Credit
	s.on = st.On
	s.rng.SetState(st.RNG)
}

// Retransmit builds a fresh attempt of a dropped packet, preserving its
// logical message identity and birth cycle (§1.4: "the source will have to
// retransmit").
func Retransmit(p *packet.Packet, now sim.Cycle, packetIDs *packet.ID) *packet.Packet {
	return RetransmitFrom(nil, p, now, packetIDs)
}

// RetransmitFrom is Retransmit drawing the new attempt from pool (which
// may be nil). The original p is still intact afterwards; the caller
// decides when to recycle it.
func RetransmitFrom(pool *packet.Pool, p *packet.Packet, now sim.Cycle, packetIDs *packet.ID) *packet.Packet {
	*packetIDs++
	retry := pool.Get()
	*retry = packet.Packet{
		ID:         *packetIDs,
		Message:    p.Message,
		Src:        p.Src,
		Dst:        p.Dst,
		SrcCluster: p.SrcCluster,
		DstCluster: p.DstCluster,
		Flits:      p.Flits,
		FlitBits:   p.FlitBits,
		Created:    now,
		Born:       p.Born,
		Attempt:    p.Attempt + 1,
	}
	return retry
}
