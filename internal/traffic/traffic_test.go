package traffic

import (
	"math"
	"testing"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

func TestWavelengthsFor(t *testing.T) {
	tests := []struct {
		gbps float64
		want int
	}{
		{0, 0}, {-5, 0},
		{12.5, 1}, {12.6, 2}, {25, 2}, {50, 4},
		{100, 8}, {200, 16}, {400, 32}, {800, 64},
		{1, 1}, {13, 2},
	}
	for _, tt := range tests {
		if got := WavelengthsFor(tt.gbps); got != tt.want {
			t.Errorf("WavelengthsFor(%g) = %d, want %d", tt.gbps, got, tt.want)
		}
	}
}

// TestBandwidthSetsMatchTable3_3 checks the three provisioning points
// against Table 3-3's photonic configuration rows.
func TestBandwidthSetsMatchTable3_3(t *testing.T) {
	tests := []struct {
		set            BandwidthSet
		fireflyPerChan int
		dhetMax        int
		flits, bits    int
	}{
		{BWSet1, 4, 8, 64, 32},
		{BWSet2, 16, 32, 16, 128},
		{BWSet3, 32, 64, 8, 256},
	}
	for _, tt := range tests {
		if err := tt.set.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", tt.set.Name, err)
		}
		if got := tt.set.FireflyChannelWavelengths(16); got != tt.fireflyPerChan {
			t.Errorf("%s Firefly channel = %d wavelengths, Table 3-3 says %d", tt.set.Name, got, tt.fireflyPerChan)
		}
		if got := tt.set.MaxChannelWavelengths(); got != tt.dhetMax {
			t.Errorf("%s d-Het max channel = %d wavelengths, Table 3-3 says %d", tt.set.Name, got, tt.dhetMax)
		}
		if tt.set.Format.Flits != tt.flits || tt.set.Format.FlitBits != tt.bits {
			t.Errorf("%s packet format %dx%d, Table 3-3 says %dx%d",
				tt.set.Name, tt.set.Format.Flits, tt.set.Format.FlitBits, tt.flits, tt.bits)
		}
	}
}

func TestBandwidthSetValidation(t *testing.T) {
	bad := BWSet1
	bad.Name = "bad"
	bad.ClassGbps = [4]float64{100, 200, 25, 12.5} // not decreasing
	if err := bad.Validate(); err == nil {
		t.Error("non-decreasing classes passed validation")
	}
	bad = BWSet1
	bad.TotalWavelengths = 4 // top class needs 8
	if err := bad.Validate(); err == nil {
		t.Error("insufficient budget passed validation")
	}
}

func TestUniformAssignment(t *testing.T) {
	topo := topology.Default()
	a, err := Uniform{}.Assign(topo, BWSet1, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cores) != 64 {
		t.Fatalf("assignment covers %d cores", len(a.Cores))
	}
	// 64 wavelengths x 12.5 Gb/s / 64 cores = 12.5 Gb/s per core.
	for c, p := range a.Cores {
		if p.RateGbps != 12.5 {
			t.Fatalf("core %d rate = %g, want 12.5", c, p.RateGbps)
		}
		if p.DemandGbps != 50 {
			t.Fatalf("core %d demand = %g, want 50 (cluster share)", c, p.DemandGbps)
		}
	}
	if got := a.TotalOfferedGbps(); got != 800 {
		t.Fatalf("total offered = %g, want 800", got)
	}
}

func TestUniformDestinationsAreForeign(t *testing.T) {
	topo := topology.Default()
	a, err := Uniform{}.Assign(topo, BWSet1, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	for c := range a.Cores {
		src := topo.ClusterOf(topology.CoreID(c))
		for i := 0; i < 50; i++ {
			dst := a.Cores[c].PickDest(rng)
			if topo.ClusterOf(dst) == src {
				t.Fatalf("core %d picked destination %d in its own cluster", c, dst)
			}
		}
	}
}

func TestApportionmentMatchesFrequencies(t *testing.T) {
	topo := topology.Default()
	for level := 1; level <= 3; level++ {
		a, err := Skewed{Level: level}.Assign(topo, BWSet1, sim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		freq, _ := SkewFrequencies(level)

		// Group offered traffic by bandwidth class and compare the
		// shares with Table 3-1's frequencies. Apportionment over 16
		// clusters quantizes, so allow a generous tolerance.
		total := a.TotalOfferedGbps()
		for class, classRate := range BWSet1.ClassGbps {
			var offered float64
			for _, p := range a.Cores {
				if p.DemandGbps == classRate {
					offered += p.RateGbps
				}
			}
			share := offered / total
			if math.Abs(share-freq[class]) > 0.12 {
				t.Errorf("skewed%d class %g Gb/s: traffic share %.3f, Table 3-1 says %.3f",
					level, classRate, share, freq[class])
			}
		}
	}
}

func TestApportionmentCoversAllClusters(t *testing.T) {
	topo := topology.Default()
	for level := 1; level <= 3; level++ {
		a, err := Skewed{Level: level}.Assign(topo, BWSet1, sim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		// Every cluster runs exactly one application class, all four
		// cores sharing it.
		for cl := 0; cl < topo.Clusters(); cl++ {
			cores := topo.CoresOf(topology.ClusterID(cl))
			demand := a.Cores[cores[0]].DemandGbps
			if demand <= 0 {
				t.Fatalf("skewed%d cluster %d has no application", level, cl)
			}
			for _, c := range cores[1:] {
				if a.Cores[c].DemandGbps != demand {
					t.Fatalf("skewed%d cluster %d mixes classes", level, cl)
				}
			}
		}
	}
}

func TestApportionExact(t *testing.T) {
	freq3, _ := SkewFrequencies(3)
	counts, err := apportionClusters(16, freq3, BWSet1.ClassGbps)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != 16 {
		t.Fatalf("apportioned %d clusters, want 16", sum)
	}
	// With weights f/r = {.009, .001, .001, .002} the largest-remainder
	// split over 16 clusters is 11/1/1/3.
	want := [4]int{11, 1, 1, 3}
	if counts != want {
		t.Fatalf("skewed3 apportionment = %v, want %v", counts, want)
	}
}

func TestSkewedUnknownLevel(t *testing.T) {
	if _, err := (Skewed{Level: 4}).Assign(topology.Default(), BWSet1, sim.NewRNG(1)); err == nil {
		t.Fatal("unknown skew level accepted")
	}
}

func TestClusterDemandUsesMax(t *testing.T) {
	topo := topology.Default()
	cores := make([]CoreProfile, topo.Cores())
	for i := range cores {
		cores[i] = CoreProfile{RateGbps: 1, DemandGbps: 10}
	}
	cores[2].DemandGbps = 95 // one hot core in cluster 0
	a := Assignment{Name: "t", Cores: cores}
	if got := a.ClusterDemandGbps(topo, 0); got != 95 {
		t.Fatalf("cluster demand = %g, want max 95 (§3.2.1)", got)
	}
	if got := a.ClusterDemandGbps(topo, 1); got != 10 {
		t.Fatalf("cluster 1 demand = %g, want 10", got)
	}
}

func TestDemandTable(t *testing.T) {
	topo := topology.Default()
	p := CoreProfile{RateGbps: 25, DemandGbps: 100}
	table := p.DemandTable(topo, 3)
	if len(table) != 16 {
		t.Fatalf("table has %d entries", len(table))
	}
	for d, n := range table {
		if d == 3 {
			if n != 0 {
				t.Fatal("demand toward own cluster must be 0")
			}
			continue
		}
		if n != 8 { // 100 Gb/s -> 8 wavelengths
			t.Fatalf("demand toward cluster %d = %d, want 8", d, n)
		}
	}

	// Restricted destinations (real-application style).
	p.DemandDests = []topology.ClusterID{5, 7}
	table = p.DemandTable(topo, 3)
	for d, n := range table {
		want := 0
		if d == 5 || d == 7 {
			want = 8
		}
		if n != want {
			t.Fatalf("restricted demand toward %d = %d, want %d", d, n, want)
		}
	}
}

func TestFixedPatternValidation(t *testing.T) {
	topo := topology.Default()
	_, err := Fixed{Assignment: Assignment{Cores: make([]CoreProfile, 3)}}.Assign(topo, BWSet1, sim.NewRNG(1))
	if err == nil {
		t.Fatal("short fixed assignment accepted")
	}
}
