package traffic

import (
	"fmt"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// SkewedHotspot is the synthetic case-study pattern of §3.4.2: one cluster
// is the hotspot (a scheduler or controller), every core sends a fixed
// fraction of its traffic there, and the remainder follows a skewed
// pattern.
//
// The four case studies of the thesis are:
//
//	skewed-hotspot1: 10% hotspot + skewed 2 remainder
//	skewed-hotspot2: 10% hotspot + skewed 3 remainder
//	skewed-hotspot3: 20% hotspot + skewed 2 remainder
//	skewed-hotspot4: 20% hotspot + skewed 3 remainder
type SkewedHotspot struct {
	// Index is the case-study number, 1-4, used only for naming.
	Index int
	// HotFraction is the share of each core's traffic sent to the
	// hotspot cluster (0.10 or 0.20).
	HotFraction float64
	// BaseLevel is the skew level of the remaining traffic (2 or 3).
	BaseLevel int
	// Hotspot is the hotspot cluster (cluster 0 in our runs).
	Hotspot topology.ClusterID
}

// CaseStudies returns the four skewed-hotspot configurations of §3.4.2
// with cluster 0 as the hotspot.
func CaseStudies() []SkewedHotspot {
	return []SkewedHotspot{
		{Index: 1, HotFraction: 0.10, BaseLevel: 2},
		{Index: 2, HotFraction: 0.10, BaseLevel: 3},
		{Index: 3, HotFraction: 0.20, BaseLevel: 2},
		{Index: 4, HotFraction: 0.20, BaseLevel: 3},
	}
}

// Name implements Pattern.
func (h SkewedHotspot) Name() string { return fmt.Sprintf("skewed-hotspot%d", h.Index) }

// Assign implements Pattern.
func (h SkewedHotspot) Assign(topo topology.Topology, set BandwidthSet, rng *sim.RNG) (Assignment, error) {
	if h.HotFraction < 0 || h.HotFraction >= 1 {
		return Assignment{}, fmt.Errorf("traffic: hotspot fraction %g outside [0,1)", h.HotFraction)
	}
	if !topo.ValidCluster(h.Hotspot) {
		return Assignment{}, fmt.Errorf("traffic: hotspot cluster %d outside topology", h.Hotspot)
	}

	base, err := Skewed{Level: h.BaseLevel}.Assign(topo, set, rng)
	if err != nil {
		return Assignment{}, err
	}

	cores := make([]CoreProfile, len(base.Cores))
	copy(cores, base.Cores)
	for c := range cores {
		src := topo.ClusterOf(topology.CoreID(c))
		baseDest := cores[c].PickDest
		hotspot := h.Hotspot
		hotFraction := h.HotFraction
		if src == hotspot {
			// The hotspot cluster itself only generates base traffic.
			continue
		}
		clusterSize := topo.ClusterSize()
		cores[c].PickDest = func(rng *sim.RNG) topology.CoreID {
			if rng.Bernoulli(hotFraction) {
				return topo.CoreAt(hotspot, rng.Intn(clusterSize))
			}
			return baseDest(rng)
		}
	}
	return Assignment{Name: h.Name(), Cores: cores}, nil
}
