// Package traffic implements every workload of the thesis's evaluation:
// uniform-random traffic, the skewed patterns of Tables 3-1/3-2, the
// skewed-hotspot case studies of §3.4.2, and the real-application
// GPU/memory traffic derived from the internal/gpgpu profiles. It also
// provides the per-core injection sources used by the fabric.
package traffic

import (
	"fmt"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
)

// BandwidthSet is one of the three photonic provisioning points of the
// evaluation (Tables 3-1 and 3-3): four application bandwidth classes, a
// total data-wavelength budget, and the packet framing used at that
// operating point.
type BandwidthSet struct {
	// Name identifies the set ("BW1", "BW2", "BW3").
	Name string

	// ClassGbps are the four application bandwidth classes, highest
	// first, matching the frequency tables' column order.
	ClassGbps [4]float64

	// TotalWavelengths is the aggregate data-wavelength budget shared by
	// both architectures (64, 256 or 512).
	TotalWavelengths int

	// Format is the packet framing of Table 3-3 for this set.
	Format packet.Format
}

// The three bandwidth sets of the evaluation.
//
//hetpnoc:immutable Table 3-1/3-3 provisioning points; written only here, every consumer copies the struct
var (
	// BWSet1: classes 12.5-100 Gb/s, 64 wavelengths, 64x32 b packets.
	BWSet1 = BandwidthSet{
		Name:             "BW1",
		ClassGbps:        [4]float64{100, 50, 25, 12.5},
		TotalWavelengths: 64,
		Format:           packet.Format{Flits: 64, FlitBits: 32},
	}

	// BWSet2: classes 50-400 Gb/s, 256 wavelengths, 16x128 b packets.
	BWSet2 = BandwidthSet{
		Name:             "BW2",
		ClassGbps:        [4]float64{400, 200, 100, 50},
		TotalWavelengths: 256,
		Format:           packet.Format{Flits: 16, FlitBits: 128},
	}

	// BWSet3: classes 100-800 Gb/s, 512 wavelengths, 8x256 b packets.
	BWSet3 = BandwidthSet{
		Name:             "BW3",
		ClassGbps:        [4]float64{800, 400, 200, 100},
		TotalWavelengths: 512,
		Format:           packet.Format{Flits: 8, FlitBits: 256},
	}
)

// BandwidthSets lists the three evaluation points in order.
func BandwidthSets() []BandwidthSet {
	return []BandwidthSet{BWSet1, BWSet2, BWSet3}
}

// WavelengthsFor returns the number of wavelengths an application of the
// given bandwidth needs: required bandwidth divided by the minimum channel
// bandwidth of one 12.5 Gb/s wavelength, rounded up (§3.4.1).
func WavelengthsFor(gbps float64) int {
	if gbps <= 0 {
		return 0
	}
	n := int(gbps / photonic.WavelengthGbps)
	if float64(n)*photonic.WavelengthGbps < gbps {
		n++
	}
	return n
}

// Validate reports an error if the set is internally inconsistent.
func (s BandwidthSet) Validate() error {
	if err := s.Format.Validate(); err != nil {
		return err
	}
	if s.TotalWavelengths <= 0 {
		return fmt.Errorf("traffic: %s: total wavelengths must be positive", s.Name)
	}
	for i, g := range s.ClassGbps {
		if g <= 0 {
			return fmt.Errorf("traffic: %s: class %d bandwidth must be positive", s.Name, i)
		}
		if i > 0 && g >= s.ClassGbps[i-1] {
			return fmt.Errorf("traffic: %s: classes must be strictly decreasing", s.Name)
		}
	}
	if max := WavelengthsFor(s.ClassGbps[0]); max > s.TotalWavelengths {
		return fmt.Errorf("traffic: %s: top class needs %d wavelengths, budget is %d", s.Name, max, s.TotalWavelengths)
	}
	return nil
}

// FireflyChannelWavelengths returns the uniform per-cluster write-channel
// wavelength count of the Firefly baseline for this set (Table 3-3: 4, 16
// or 32 wavelengths per channel for 16 channels).
func (s BandwidthSet) FireflyChannelWavelengths(clusters int) int {
	return s.TotalWavelengths / clusters
}

// MaxChannelWavelengths returns the d-HetPNoC per-channel ceiling for this
// set (Table 3-3: 8, 32 or 64), which equals the wavelength need of the
// highest bandwidth class.
func (s BandwidthSet) MaxChannelWavelengths() int {
	return WavelengthsFor(s.ClassGbps[0])
}
