package traffic

import (
	"math"
	"testing"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

func TestCaseStudiesConfiguration(t *testing.T) {
	cases := CaseStudies()
	if len(cases) != 4 {
		t.Fatalf("CaseStudies() returned %d patterns, §3.4.2 defines 4", len(cases))
	}
	// §3.4.2: hotspot1/2 send 10% to the hotspot with skewed 2/3
	// remainders; hotspot3/4 send 20%.
	wants := []struct {
		frac float64
		base int
	}{
		{0.10, 2}, {0.10, 3}, {0.20, 2}, {0.20, 3},
	}
	for i, c := range cases {
		if c.HotFraction != wants[i].frac || c.BaseLevel != wants[i].base {
			t.Errorf("case %d = {%.2f, skewed%d}, want {%.2f, skewed%d}",
				i+1, c.HotFraction, c.BaseLevel, wants[i].frac, wants[i].base)
		}
	}
}

func TestHotspotFraction(t *testing.T) {
	topo := topology.Default()
	h := SkewedHotspot{Index: 3, HotFraction: 0.20, BaseLevel: 2}
	a, err := h.Assign(topo, BWSet1, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(4)
	const draws = 20000
	hot := 0
	// Sample destinations from a non-hotspot core and measure the share
	// landing in the hotspot cluster (cluster 0).
	src := topology.CoreID(20)
	for i := 0; i < draws; i++ {
		dst := a.Cores[src].PickDest(rng)
		if topo.ClusterOf(dst) == 0 {
			hot++
		}
	}
	share := float64(hot) / draws
	// 20% explicit hotspot traffic plus the base pattern's ~1/15 uniform
	// share of the remainder.
	want := 0.20 + 0.80/15
	if math.Abs(share-want) > 0.02 {
		t.Fatalf("hotspot share = %.3f, want ~%.3f", share, want)
	}
}

func TestHotspotClusterKeepsBaseTraffic(t *testing.T) {
	topo := topology.Default()
	h := SkewedHotspot{Index: 1, HotFraction: 0.10, BaseLevel: 2, Hotspot: 0}
	a, err := h.Assign(topo, BWSet1, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	// Cores inside the hotspot cluster must never send to themselves.
	for i := 0; i < 1000; i++ {
		dst := a.Cores[0].PickDest(rng)
		if topo.ClusterOf(dst) == 0 {
			t.Fatalf("hotspot-cluster core sent to its own cluster (dst %d)", dst)
		}
	}
}

func TestHotspotValidation(t *testing.T) {
	topo := topology.Default()
	if _, err := (SkewedHotspot{HotFraction: 1.2, BaseLevel: 2}).Assign(topo, BWSet1, sim.NewRNG(1)); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := (SkewedHotspot{HotFraction: 0.1, BaseLevel: 9}).Assign(topo, BWSet1, sim.NewRNG(1)); err == nil {
		t.Error("bad base level accepted")
	}
	if _, err := (SkewedHotspot{HotFraction: 0.1, BaseLevel: 2, Hotspot: 99}).Assign(topo, BWSet1, sim.NewRNG(1)); err == nil {
		t.Error("out-of-range hotspot cluster accepted")
	}
}

func TestRealAppPlacement(t *testing.T) {
	topo := topology.Default()
	a, err := RealApp{}.Assign(topo, BWSet1, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// §3.4.2: 48 GPU cores in 12 clusters, 4 memory clusters.
	const firstMem = 12
	rng := sim.NewRNG(2)

	for c, p := range a.Cores {
		cl := int(topo.ClusterOf(topology.CoreID(c)))
		if p.RateGbps <= 0 || p.DemandGbps <= 0 {
			t.Fatalf("core %d has no workload", c)
		}
		for i := 0; i < 20; i++ {
			dst := a.Cores[c].PickDest(rng)
			dstCl := int(topo.ClusterOf(dst))
			if cl < firstMem && dstCl < firstMem {
				t.Fatalf("GPU core %d sent to GPU cluster %d", c, dstCl)
			}
			if cl >= firstMem && dstCl >= firstMem {
				t.Fatalf("memory core %d sent to memory cluster %d", c, dstCl)
			}
		}
	}
}

func TestRealAppDemandRestriction(t *testing.T) {
	topo := topology.Default()
	a, err := RealApp{}.Assign(topo, BWSet1, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// GPU cores only demand bandwidth toward the memory clusters.
	table := a.Cores[0].DemandTable(topo, topo.ClusterOf(0))
	for d := 0; d < 12; d++ {
		if table[d] != 0 {
			t.Fatalf("GPU core demands %d wavelengths toward GPU cluster %d", table[d], d)
		}
	}
	nonZero := 0
	for d := 12; d < 16; d++ {
		if table[d] > 0 {
			nonZero++
		}
	}
	if nonZero != 4 {
		t.Fatalf("GPU core demands toward %d memory clusters, want 4", nonZero)
	}
}

func TestRealAppResponseTrafficBalancesRequests(t *testing.T) {
	topo := topology.Default()
	a, err := RealApp{}.Assign(topo, BWSet1, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	var gpu, mem float64
	for c, p := range a.Cores {
		if int(topo.ClusterOf(topology.CoreID(c))) < 12 {
			gpu += p.RateGbps
		} else {
			mem += p.RateGbps
		}
	}
	// Response traffic mirrors the aggregate request load, but each
	// memory cluster is capped at the set's top bandwidth class — the
	// photonic provisioning cannot express more (§3.4.1).
	want := math.Min(gpu, 4*BWSet1.ClassGbps[0])
	if math.Abs(mem-want) > 1e-6 {
		t.Fatalf("response traffic %.2f, want %.2f (requests %.2f capped at 4x%.0f)",
			mem, want, gpu, BWSet1.ClassGbps[0])
	}
}

func TestRealAppMemoryResponsesWeightedByDemand(t *testing.T) {
	topo := topology.Default()
	a, err := RealApp{}.Assign(topo, BWSet1, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(9)
	memCore := topo.CoreAt(13, 0)
	counts := make(map[topology.ClusterID]int)
	const draws = 30000
	for i := 0; i < draws; i++ {
		counts[topo.ClusterOf(a.Cores[memCore].PickDest(rng))]++
	}
	// MUM clusters (high demand) must receive more responses than CP/RAY
	// clusters (low demand). Cluster 0 runs MUM, cluster 6 runs CP.
	if counts[0] <= counts[6] {
		t.Fatalf("responses not demand-weighted: MUM cluster got %d, CP cluster got %d",
			counts[0], counts[6])
	}
}

func TestPatternNames(t *testing.T) {
	tests := []struct {
		p    Pattern
		want string
	}{
		{Uniform{}, "uniform"},
		{Skewed{Level: 2}, "skewed2"},
		{SkewedHotspot{Index: 4}, "skewed-hotspot4"},
		{RealApp{}, "realapp"},
	}
	for _, tt := range tests {
		if got := tt.p.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}
