package traffic

import (
	"fmt"

	"hetpnoc/internal/gpgpu"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// RealApp is the real-application traffic scenario of §3.4.2: the GPU
// benchmarks MUM, BFS, CP, RAY and LPS are mapped to 20, 4, 4, 4 and 16
// cores (12 clusters), and the remaining 4 clusters hold the memory that
// backs them. GPU clusters issue requests to the memory clusters at the
// bandwidth their gpgpu profile demands; memory clusters return response
// traffic to the requesters, weighted by demand.
type RealApp struct{}

// Name implements Pattern.
func (RealApp) Name() string { return "realapp" }

// Assign implements Pattern.
func (RealApp) Assign(topo topology.Topology, set BandwidthSet, _ *sim.RNG) (Assignment, error) {
	if err := set.Validate(); err != nil {
		return Assignment{}, err
	}
	placements, err := gpgpu.RealAppPlacements()
	if err != nil {
		return Assignment{}, err
	}

	gpuCores := 0
	for _, p := range placements {
		if p.Cores%topo.ClusterSize() != 0 {
			return Assignment{}, fmt.Errorf("traffic: %s spans %d cores, not a whole number of clusters",
				p.Profile.Name, p.Cores)
		}
		gpuCores += p.Cores
	}
	memCores := topo.Cores() - gpuCores
	if memCores < topo.ClusterSize() {
		return Assignment{}, fmt.Errorf("traffic: placements use %d of %d cores, leaving no memory cluster",
			gpuCores, topo.Cores())
	}
	memClusters := memCores / topo.ClusterSize()
	firstMemCluster := topo.Clusters() - memClusters

	// Cap per-cluster demand at the top bandwidth class of the set: the
	// photonic provisioning cannot express more (§3.4.1, Table 3-3).
	capGbps := set.ClassGbps[0]

	// clusterDemand[cl] is the per-cluster request bandwidth of the app
	// on cluster cl (zero for memory clusters, filled below).
	clusterDemand := make([]float64, topo.Clusters())
	cluster := 0
	for _, p := range placements {
		demand := p.Profile.MemoryDemandGbps
		if demand > capGbps {
			demand = capGbps
		}
		for i := 0; i < p.Cores/topo.ClusterSize(); i++ {
			clusterDemand[cluster] = demand
			cluster++
		}
	}

	// Memory clusters return response traffic equal to the aggregate
	// request load, split evenly among them (interleaved addressing).
	var totalRequest float64
	for _, d := range clusterDemand[:firstMemCluster] {
		totalRequest += d
	}
	memDemand := totalRequest / float64(memClusters)
	if memDemand > capGbps {
		memDemand = capGbps
	}
	for cl := firstMemCluster; cl < topo.Clusters(); cl++ {
		clusterDemand[cl] = memDemand
	}

	// Weighted sampler for memory responses: pick a GPU core with
	// probability proportional to its cluster's request demand.
	gpuWeights := make([]float64, 0, gpuCores)
	gpuTargets := make([]topology.CoreID, 0, gpuCores)
	for cl := 0; cl < firstMemCluster; cl++ {
		for _, core := range topo.CoresOf(topology.ClusterID(cl)) {
			gpuWeights = append(gpuWeights, clusterDemand[cl])
			gpuTargets = append(gpuTargets, core)
		}
	}
	var weightSum float64
	for _, w := range gpuWeights {
		weightSum += w
	}

	pickGPUCore := func(rng *sim.RNG) topology.CoreID {
		x := rng.Float64() * weightSum
		for i, w := range gpuWeights {
			x -= w
			if x < 0 {
				return gpuTargets[i]
			}
		}
		return gpuTargets[len(gpuTargets)-1]
	}
	pickMemCore := func(rng *sim.RNG) topology.CoreID {
		cl := topology.ClusterID(firstMemCluster + rng.Intn(memClusters))
		return topo.CoreAt(cl, rng.Intn(topo.ClusterSize()))
	}

	memClusterIDs := make([]topology.ClusterID, 0, memClusters)
	for cl := firstMemCluster; cl < topo.Clusters(); cl++ {
		memClusterIDs = append(memClusterIDs, topology.ClusterID(cl))
	}
	gpuClusterIDs := make([]topology.ClusterID, 0, firstMemCluster)
	for cl := 0; cl < firstMemCluster; cl++ {
		gpuClusterIDs = append(gpuClusterIDs, topology.ClusterID(cl))
	}

	cores := make([]CoreProfile, topo.Cores())
	for c := range cores {
		cl := topo.ClusterOf(topology.CoreID(c))
		demand := clusterDemand[cl]
		profile := CoreProfile{
			RateGbps:   demand / float64(topo.ClusterSize()),
			DemandGbps: demand,
		}
		if int(cl) < firstMemCluster {
			profile.PickDest = pickMemCore
			profile.DemandDests = memClusterIDs
		} else {
			profile.PickDest = pickGPUCore
			profile.DemandDests = gpuClusterIDs
		}
		cores[c] = profile
	}
	return Assignment{Name: "realapp", Cores: cores}, nil
}
