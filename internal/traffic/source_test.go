package traffic

import (
	"math"
	"testing"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

func newTestSource(t *testing.T, rateGbps, loadScale float64) (*Source, *packet.MessageID, *packet.ID) {
	t.Helper()
	topo := topology.Default()
	var msgs packet.MessageID
	var pkts packet.ID
	profile := CoreProfile{
		RateGbps:   rateGbps,
		DemandGbps: rateGbps * 4,
		PickDest: func(rng *sim.RNG) topology.CoreID {
			return topo.CoreAt(5, rng.Intn(4))
		},
	}
	src, err := NewSource(0, profile, BWSet1.Format, sim.DefaultClock(), loadScale, sim.NewRNG(1), &msgs, &pkts)
	if err != nil {
		t.Fatal(err)
	}
	return src, &msgs, &pkts
}

// TestSourceRateAccuracy: over a long window the generated bit rate
// matches the profile's offered rate.
func TestSourceRateAccuracy(t *testing.T) {
	topo := topology.Default()
	for _, rate := range []float64{12.5, 25, 100} {
		src, _, _ := newTestSource(t, rate, 1.0)
		const cycles = 100000
		bits := 0
		for i := 0; i < cycles; i++ {
			if p := src.Tick(sim.Cycle(i), topo); p != nil {
				bits += p.Bits()
			}
		}
		gotGbps := float64(bits) / (float64(cycles) * 400e-12) / 1e9
		if math.Abs(gotGbps-rate)/rate > 0.01 {
			t.Errorf("rate %g Gb/s: generated %g Gb/s", rate, gotGbps)
		}
	}
}

func TestSourceLoadScale(t *testing.T) {
	topo := topology.Default()
	src, _, _ := newTestSource(t, 100, 0.5)
	const cycles = 50000
	bits := 0
	for i := 0; i < cycles; i++ {
		if p := src.Tick(sim.Cycle(i), topo); p != nil {
			bits += p.Bits()
		}
	}
	gotGbps := float64(bits) / (float64(cycles) * 400e-12) / 1e9
	if math.Abs(gotGbps-50)/50 > 0.01 {
		t.Errorf("scaled source generated %g Gb/s, want 50", gotGbps)
	}
}

func TestSourceZeroRateGeneratesNothing(t *testing.T) {
	topo := topology.Default()
	var msgs packet.MessageID
	var pkts packet.ID
	src, err := NewSource(0, CoreProfile{}, BWSet1.Format, sim.DefaultClock(), 1.0, sim.NewRNG(1), &msgs, &pkts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if p := src.Tick(sim.Cycle(i), topo); p != nil {
			t.Fatal("zero-rate source generated a packet")
		}
	}
}

func TestSourcePacketIdentity(t *testing.T) {
	topo := topology.Default()
	src, _, _ := newTestSource(t, 100, 1.0)
	seenIDs := make(map[packet.ID]bool)
	seenMsgs := make(map[packet.MessageID]bool)
	for i := 0; i < 5000; i++ {
		p := src.Tick(sim.Cycle(i), topo)
		if p == nil {
			continue
		}
		if seenIDs[p.ID] || seenMsgs[p.Message] {
			t.Fatalf("duplicate identity on %s", p)
		}
		seenIDs[p.ID] = true
		seenMsgs[p.Message] = true
		if p.Attempt != 1 {
			t.Fatalf("fresh packet attempt = %d, want 1", p.Attempt)
		}
		if p.SrcCluster != topo.ClusterOf(p.Src) || p.DstCluster != topo.ClusterOf(p.Dst) {
			t.Fatalf("cluster fields inconsistent on %s", p)
		}
	}
	if len(seenIDs) == 0 {
		t.Fatal("no packets generated")
	}
}

func TestRetransmitPreservesMessage(t *testing.T) {
	topo := topology.Default()
	src, _, pkts := newTestSource(t, 100, 1.0)
	var orig *packet.Packet
	for i := 0; orig == nil; i++ {
		orig = src.Tick(sim.Cycle(i), topo)
	}
	retry := Retransmit(orig, 500, pkts)
	if retry.Message != orig.Message {
		t.Fatal("retransmission changed the message identity")
	}
	if retry.ID == orig.ID {
		t.Fatal("retransmission reused the packet ID")
	}
	if retry.Attempt != orig.Attempt+1 {
		t.Fatalf("attempt = %d, want %d", retry.Attempt, orig.Attempt+1)
	}
	if retry.Born != orig.Born {
		t.Fatal("retransmission changed the birth cycle")
	}
	if retry.Created != 500 {
		t.Fatalf("retransmission created = %d, want 500", retry.Created)
	}
}

func TestNewSourceValidation(t *testing.T) {
	var msgs packet.MessageID
	var pkts packet.ID
	clock := sim.DefaultClock()
	// A rate without a destination sampler is a configuration bug.
	_, err := NewSource(0, CoreProfile{RateGbps: 10}, BWSet1.Format, clock, 1.0, sim.NewRNG(1), &msgs, &pkts)
	if err == nil {
		t.Error("source with rate but no sampler accepted")
	}
	// Negative load scale.
	_, err = NewSource(0, CoreProfile{}, BWSet1.Format, clock, -1, sim.NewRNG(1), &msgs, &pkts)
	if err == nil {
		t.Error("negative load scale accepted")
	}
	// Bad format.
	_, err = NewSource(0, CoreProfile{}, packet.Format{}, clock, 1, sim.NewRNG(1), &msgs, &pkts)
	if err == nil {
		t.Error("zero format accepted")
	}
}

// TestBurstySourcePreservesAverageRate: the on/off Markov source keeps the
// long-run average at the nominal rate while concentrating it in bursts.
func TestBurstySourcePreservesAverageRate(t *testing.T) {
	topo := topology.Default()
	var msgs packet.MessageID
	var pkts packet.ID
	profile := CoreProfile{
		RateGbps:   25,
		DemandGbps: 100,
		Burstiness: 4,
		PickDest: func(rng *sim.RNG) topology.CoreID {
			return topo.CoreAt(5, rng.Intn(4))
		},
	}
	src, err := NewSource(0, profile, BWSet1.Format, sim.DefaultClock(), 1.0, sim.NewRNG(3), &msgs, &pkts)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 400000
	bits := 0
	for i := 0; i < cycles; i++ {
		if p := src.Tick(sim.Cycle(i), topo); p != nil {
			bits += p.Bits()
		}
	}
	gotGbps := float64(bits) / (float64(cycles) * 400e-12) / 1e9
	if math.Abs(gotGbps-25)/25 > 0.05 {
		t.Fatalf("bursty source averaged %g Gb/s, want ~25", gotGbps)
	}
}

// TestBurstySourceIsActuallyBursty: inter-packet gaps must be far more
// variable than the constant-rate source's.
func TestBurstySourceIsActuallyBursty(t *testing.T) {
	topo := topology.Default()
	gapStats := func(burstiness float64) (mean, variance float64) {
		var msgs packet.MessageID
		var pkts packet.ID
		profile := CoreProfile{
			RateGbps:   25,
			DemandGbps: 100,
			Burstiness: burstiness,
			PickDest: func(rng *sim.RNG) topology.CoreID {
				return topo.CoreAt(5, rng.Intn(4))
			},
		}
		src, err := NewSource(0, profile, BWSet1.Format, sim.DefaultClock(), 1.0, sim.NewRNG(7), &msgs, &pkts)
		if err != nil {
			t.Fatal(err)
		}
		var gaps []float64
		last := -1
		for i := 0; i < 200000; i++ {
			if p := src.Tick(sim.Cycle(i), topo); p != nil {
				if last >= 0 {
					gaps = append(gaps, float64(i-last))
				}
				last = i
			}
		}
		if len(gaps) < 100 {
			t.Fatalf("only %d gaps observed", len(gaps))
		}
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			variance += (g - mean) * (g - mean)
		}
		variance /= float64(len(gaps))
		return mean, variance
	}

	_, smoothVar := gapStats(1)
	_, burstyVar := gapStats(8)
	if burstyVar < 10*smoothVar {
		t.Fatalf("bursty gap variance %.1f not far above smooth %.1f", burstyVar, smoothVar)
	}
}

func TestBurstyValidation(t *testing.T) {
	var msgs packet.MessageID
	var pkts packet.ID
	profile := CoreProfile{RateGbps: 10, Burstiness: -1,
		PickDest: func(*sim.RNG) topology.CoreID { return 10 }}
	if _, err := NewSource(0, profile, BWSet1.Format, sim.DefaultClock(), 1, sim.NewRNG(1), &msgs, &pkts); err == nil {
		t.Fatal("negative burstiness accepted")
	}
}
