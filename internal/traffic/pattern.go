package traffic

import (
	"fmt"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// CoreProfile describes the workload mapped onto one core: the rate at
// which it offers traffic, the bandwidth class of its application (which
// drives the DBA demand tables), and how it picks destinations.
type CoreProfile struct {
	// RateGbps is the offered injection rate of this core before the
	// experiment's load scaling is applied.
	RateGbps float64

	// DemandGbps is the bandwidth class of the application running on
	// the core. The photonic router's demand table entry toward each
	// destination cluster is WavelengthsFor(DemandGbps). The thesis maps
	// one application per cluster, so the four cores of a cluster share
	// one class and each injects a quarter of its bandwidth.
	DemandGbps float64

	// PickDest samples a destination core. The thesis's evaluation
	// patterns only generate inter-cluster traffic (core-to-memory style
	// flows); custom assignments may also target cores in the source's
	// own cluster, which travel the intra-cluster electrical network
	// without touching the photonic crossbar (§3.3). The destination
	// must never be the source core itself.
	PickDest func(rng *sim.RNG) topology.CoreID

	// DemandDests, when non-nil, restricts the clusters this core's
	// demand-table entries cover (e.g. GPU cores only demand bandwidth
	// toward memory clusters in the real-application scenario). Nil
	// means every foreign cluster.
	DemandDests []topology.ClusterID

	// Burstiness makes the source an on/off Markov process instead of a
	// constant-rate one: during ON periods it injects at
	// Burstiness x RateGbps; OFF periods are sized so the long-run
	// average stays RateGbps. 0 or 1 means constant-rate injection.
	// Mean burst length is BurstCycles (default 256) when bursty.
	Burstiness float64

	// BurstCycles is the mean ON-period length in cycles for bursty
	// sources (0 selects the default).
	BurstCycles int
}

// DemandTable expands the profile into the per-destination wavelength
// demand table the core reports to its photonic router (§3.2.1).
func (p CoreProfile) DemandTable(topo topology.Topology, self topology.ClusterID) []int {
	table := make([]int, topo.Clusters())
	need := WavelengthsFor(p.DemandGbps)
	if p.DemandDests != nil {
		for _, d := range p.DemandDests {
			if d != self {
				table[d] = need
			}
		}
		return table
	}
	for d := range table {
		if topology.ClusterID(d) != self {
			table[d] = need
		}
	}
	return table
}

// Assignment is a full workload mapping: one profile per core.
type Assignment struct {
	Name  string
	Cores []CoreProfile
}

// TotalOfferedGbps returns the aggregate offered load of the assignment.
func (a Assignment) TotalOfferedGbps() float64 {
	var sum float64
	for _, c := range a.Cores {
		sum += c.RateGbps
	}
	return sum
}

// ClusterDemandGbps returns the application bandwidth class of cluster cl
// (the maximum demand among its cores, matching the request-table "max"
// rule of §3.2.1).
func (a Assignment) ClusterDemandGbps(topo topology.Topology, cl topology.ClusterID) float64 {
	var maxDemand float64
	for _, core := range topo.CoresOf(cl) {
		if d := a.Cores[core].DemandGbps; d > maxDemand {
			maxDemand = d
		}
	}
	return maxDemand
}

// Pattern generates an Assignment for a topology. Patterns are pure
// descriptions; all randomness comes from the provided RNG so assignments
// are reproducible.
type Pattern interface {
	// Name identifies the pattern in results ("uniform", "skewed3", ...).
	Name() string

	// Assign maps the workload onto the topology.
	Assign(topo topology.Topology, set BandwidthSet, rng *sim.RNG) (Assignment, error)
}

// uniformDest returns a destination sampler drawing uniformly from all
// cores outside the source cluster.
func uniformDest(topo topology.Topology, src topology.ClusterID) func(*sim.RNG) topology.CoreID {
	return func(rng *sim.RNG) topology.CoreID {
		for {
			dst := topology.CoreID(rng.Intn(topo.Cores()))
			if topo.ClusterOf(dst) != src {
				return dst
			}
		}
	}
}

// Uniform is the uniform-random pattern: "all communication requires the
// same uniform bandwidth and all cores communicate with all other cores
// with equal data rate" (§3.4.1). Every core offers an equal share of the
// aggregate photonic bandwidth, so both architectures configure
// identically: Firefly's static allocation is exactly what DBA converges
// to.
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Assign implements Pattern.
func (Uniform) Assign(topo topology.Topology, set BandwidthSet, _ *sim.RNG) (Assignment, error) {
	if err := set.Validate(); err != nil {
		return Assignment{}, err
	}
	aggregateGbps := float64(set.TotalWavelengths) * 12.5
	perCore := aggregateGbps / float64(topo.Cores())
	perCluster := perCore * float64(topo.ClusterSize())

	cores := make([]CoreProfile, topo.Cores())
	for c := range cores {
		src := topo.ClusterOf(topology.CoreID(c))
		cores[c] = CoreProfile{
			RateGbps:   perCore,
			DemandGbps: perCluster,
			PickDest:   uniformDest(topo, src),
		}
	}
	return Assignment{Name: "uniform", Cores: cores}, nil
}

// Bursty wraps a pattern so every core injects through an on/off Markov
// process with the given burstiness factor (peak rate = burstiness x
// nominal; duty cycle = 1/burstiness), preserving each core's average
// rate. Burstiness <= 1 leaves the pattern unchanged.
type Bursty struct {
	Base Pattern
	// Factor is the peak-to-average ratio during bursts.
	Factor float64
	// MeanBurstCycles sizes the ON periods (0 = the source default).
	MeanBurstCycles int
}

// Name implements Pattern.
func (b Bursty) Name() string {
	return fmt.Sprintf("%s-bursty%g", b.Base.Name(), b.Factor)
}

// Assign implements Pattern.
func (b Bursty) Assign(topo topology.Topology, set BandwidthSet, rng *sim.RNG) (Assignment, error) {
	if b.Base == nil {
		return Assignment{}, fmt.Errorf("traffic: bursty wrapper needs a base pattern")
	}
	if b.Factor < 0 {
		return Assignment{}, fmt.Errorf("traffic: negative burstiness %g", b.Factor)
	}
	a, err := b.Base.Assign(topo, set, rng)
	if err != nil {
		return Assignment{}, err
	}
	a.Name = b.Name()
	for i := range a.Cores {
		a.Cores[i].Burstiness = b.Factor
		a.Cores[i].BurstCycles = b.MeanBurstCycles
	}
	return a, nil
}

// Fixed wraps a pre-built assignment as a Pattern, for tests and custom
// scenarios built through the public API.
type Fixed struct {
	Assignment Assignment
}

// Name implements Pattern.
func (f Fixed) Name() string { return f.Assignment.Name }

// Assign implements Pattern.
func (f Fixed) Assign(topo topology.Topology, _ BandwidthSet, _ *sim.RNG) (Assignment, error) {
	if len(f.Assignment.Cores) != topo.Cores() {
		return Assignment{}, fmt.Errorf("traffic: fixed assignment has %d cores, topology has %d",
			len(f.Assignment.Cores), topo.Cores())
	}
	return f.Assignment, nil
}
