package gpgpu

import (
	"math"
	"testing"
	"testing/quick"
)

// TestFigure1_1Shape checks the Figure 1-1 claims: "most of the benchmarks
// show very modest performance improvement of less than below 1%. On the
// other hand a few of the benchmarks show considerable speedup of up to
// 63%."
func TestFigure1_1Shape(t *testing.T) {
	points, err := Figure1_1()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 10 {
		t.Fatalf("only %d benchmarks profiled", len(points))
	}

	var maxPct float64
	var maxName string
	below1 := 0
	for _, p := range points {
		if p.SpeedupPct < 0 {
			t.Errorf("%s has negative speedup %.2f%%", p.Benchmark, p.SpeedupPct)
		}
		if p.SpeedupPct > maxPct {
			maxPct, maxName = p.SpeedupPct, p.Benchmark
		}
		if p.SpeedupPct < 1 {
			below1++
		}
	}
	if maxName != "BFS" {
		t.Errorf("max speedup on %s, thesis says BFS", maxName)
	}
	if math.Abs(maxPct-63) > 2 {
		t.Errorf("max speedup = %.1f%%, thesis says up to 63%%", maxPct)
	}
	if below1 < len(points)/2 {
		t.Errorf("only %d of %d benchmarks below 1%%; thesis says most", below1, len(points))
	}
}

// TestBandwidthHungryOrdering: §3.4.2 picks BFS and MUM because they "show
// significant speedup with increase in GPU-memory bandwidth, while the
// others do not".
func TestBandwidthHungryOrdering(t *testing.T) {
	points, err := Figure1_1()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]float64, len(points))
	for _, p := range points {
		byName[p.Benchmark] = p.SpeedupPct
	}
	for _, hungry := range []string{"BFS", "MUM"} {
		for _, modest := range []string{"CP", "RAY", "LPS"} {
			if byName[hungry] <= byName[modest] {
				t.Errorf("%s (%.2f%%) not above %s (%.2f%%)",
					hungry, byName[hungry], modest, byName[modest])
			}
		}
	}
}

func TestEffectiveBandwidthMonotone(t *testing.T) {
	link := DefaultLink()
	prev := 0.0
	for _, flit := range []float64{32, 64, 128, 256, 512, 1024} {
		bw, err := link.EffectiveBandwidth(flit)
		if err != nil {
			t.Fatal(err)
		}
		if bw <= prev {
			t.Fatalf("bandwidth not monotone in flit size at %g B", flit)
		}
		prev = bw
	}
	if _, err := link.EffectiveBandwidth(0); err == nil {
		t.Fatal("zero flit size accepted")
	}
}

// TestSpeedupRooflineProperties: speedup is 1 for compute-bound kernels,
// bounded by the bandwidth ratio, and monotone in memory-boundedness.
func TestSpeedupRooflineProperties(t *testing.T) {
	link := DefaultLink()
	base, err := link.EffectiveBandwidth(32)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := link.EffectiveBandwidth(1024)
	if err != nil {
		t.Fatal(err)
	}
	ratio := wide / base

	f := func(rawM uint16) bool {
		m := float64(rawM%1001) / 1000
		p := Profile{Name: "x", MemoryFraction: m}
		s, err := Speedup(p, link, 32, 1024)
		if err != nil {
			return false
		}
		if s < 1-1e-9 || s > ratio+1e-9 {
			return false
		}
		// Fully compute-bound: no speedup. Fully memory-bound: the full
		// bandwidth ratio.
		if m == 0 && math.Abs(s-1) > 1e-9 {
			return false
		}
		if m == 1 && math.Abs(s-ratio) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupValidation(t *testing.T) {
	link := DefaultLink()
	if _, err := Speedup(Profile{MemoryFraction: 1.5}, link, 32, 1024); err == nil {
		t.Error("memory fraction > 1 accepted")
	}
	if _, err := Speedup(Profile{MemoryFraction: -0.1}, link, 32, 1024); err == nil {
		t.Error("negative memory fraction accepted")
	}
}

// TestRealAppPlacementsMatchSection3_4_2 checks the exact §3.4.2 mapping:
// "MUM, BFS, CP, RAY and LPS are mapped to 20, 4, 4, 4 and 16 cores
// respectively. These cores are ... occupying 12 clusters."
func TestRealAppPlacementsMatchSection3_4_2(t *testing.T) {
	placements, err := RealAppPlacements()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"MUM": 20, "BFS": 4, "CP": 4, "RAY": 4, "LPS": 16}
	total := 0
	for _, p := range placements {
		if want[p.Profile.Name] != p.Cores {
			t.Errorf("%s mapped to %d cores, §3.4.2 says %d", p.Profile.Name, p.Cores, want[p.Profile.Name])
		}
		total += p.Cores
	}
	if total != 48 {
		t.Fatalf("placements cover %d cores, want 48 (12 clusters)", total)
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("BFS"); !ok {
		t.Fatal("BFS profile missing")
	}
	if _, ok := ProfileByName("NONEXISTENT"); ok {
		t.Fatal("unknown profile found")
	}
}

func TestSuiteNames(t *testing.T) {
	if CUDASDK.String() != "CUDA SDK" || Rodinia.String() != "Rodinia" {
		t.Fatal("suite names wrong")
	}
	if Suite(0).String() != "unknown" {
		t.Fatal("zero suite should be unknown")
	}
}

func TestProfileCasingConvention(t *testing.T) {
	// Figure 1-1's convention: CUDA SDK upper case, Rodinia lower case.
	for _, p := range Profiles() {
		switch p.Suite {
		case CUDASDK:
			for _, r := range p.Name {
				if r >= 'a' && r <= 'z' {
					t.Errorf("CUDA SDK benchmark %q not upper case", p.Name)
					break
				}
			}
		case Rodinia:
			for _, r := range p.Name {
				if r >= 'A' && r <= 'Z' {
					t.Errorf("Rodinia benchmark %q not lower case", p.Name)
					break
				}
			}
		}
	}
}

// TestSpeedupCurveShape: the curve is monotone in flit size with
// diminishing returns (concave in the bandwidth ratio), starting at 0%.
func TestSpeedupCurveShape(t *testing.T) {
	p, ok := ProfileByName("BFS")
	if !ok {
		t.Fatal("no BFS profile")
	}
	points, err := SpeedupCurve(p, DefaultLink(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	if points[0].SpeedupPct != 0 {
		t.Fatalf("baseline point = %.2f%%, want 0", points[0].SpeedupPct)
	}
	for i := 1; i < len(points); i++ {
		gain := points[i].SpeedupPct - points[i-1].SpeedupPct
		if gain <= 0 {
			t.Fatalf("curve not monotone at %g B", points[i].FlitBytes)
		}
		if i > 1 {
			prevGain := points[i-1].SpeedupPct - points[i-2].SpeedupPct
			if gain > prevGain {
				t.Fatalf("no diminishing returns at %g B (%.2f > %.2f)",
					points[i].FlitBytes, gain, prevGain)
			}
		}
	}
	// The endpoint matches Figure1_1's 1024 B value.
	fig, err := Figure1_1()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fig {
		if f.Benchmark == "BFS" && math.Abs(f.SpeedupPct-points[len(points)-1].SpeedupPct) > 1e-9 {
			t.Fatalf("curve endpoint %.2f%% != figure value %.2f%%",
				points[len(points)-1].SpeedupPct, f.SpeedupPct)
		}
	}
}
