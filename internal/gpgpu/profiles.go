// Package gpgpu is the repository's substitute for GPGPU-Sim [27]. The
// thesis uses GPGPU-Sim in two places: Figure 1-1 (speedup of CUDA SDK and
// Rodinia benchmarks when the GPU-memory flit size grows from 32 B to
// 1024 B at 700 MHz) and the real-application traffic scenario of §3.4.2
// (per-benchmark core-to-memory bandwidth demands for MUM, BFS, CP, RAY
// and LPS).
//
// GPGPU-Sim and the authors' traces are not available offline, so this
// package implements a roofline-style kernel model: a benchmark's runtime
// is split between compute-bound time and memory-bound time; memory-bound
// time scales with the effective link bandwidth, which improves with flit
// size as per-flit header overhead is amortized. Profiles carry the
// memory-boundedness measured qualitatively in the literature: BFS and MUM
// are strongly memory-bound (the thesis: "BFS and MUM show significant
// speedup with increase in GPU-memory bandwidth, while the others do
// not"), the remaining kernels are compute-bound with sub-1% sensitivity.
package gpgpu

// Suite identifies the benchmark's origin, matching Figure 1-1's casing
// convention (CUDA SDK benchmarks upper case, Rodinia lower case).
type Suite int

// Benchmark suites.
const (
	CUDASDK Suite = iota + 1
	Rodinia
)

// String returns the suite name.
func (s Suite) String() string {
	switch s {
	case CUDASDK:
		return "CUDA SDK"
	case Rodinia:
		return "Rodinia"
	default:
		return "unknown"
	}
}

// Profile describes one benchmark's interconnect behaviour.
type Profile struct {
	// Name is the benchmark name, cased per its suite.
	Name  string
	Suite Suite

	// KernelLaunches is the launch count shown in parentheses in
	// Figure 1-1.
	KernelLaunches int

	// MemoryFraction is the fraction of baseline (32 B flit) runtime
	// spent memory-bound. 0 means fully compute-bound.
	MemoryFraction float64

	// MemoryDemandGbps is the sustained per-core GPU-to-memory bandwidth
	// demand observed at a 128 B flit size and 700 MHz, used by the
	// real-application traffic scenario.
	MemoryDemandGbps float64
}

// Profiles returns the benchmark set of Figure 1-1 and §3.4.2. The
// memory-boundedness values are synthetic calibrations chosen so the
// flit-size speedups reproduce the published ordering and range (most
// benchmarks below 1%, a few up to 63%).
func Profiles() []Profile {
	return []Profile{
		// GPGPU-Sim / CUDA SDK benchmarks (upper case in Fig. 1-1).
		{Name: "BFS", Suite: CUDASDK, KernelLaunches: 13, MemoryFraction: 0.797, MemoryDemandGbps: 100},
		{Name: "MUM", Suite: CUDASDK, KernelLaunches: 2, MemoryFraction: 0.62, MemoryDemandGbps: 87.5},
		{Name: "CP", Suite: CUDASDK, KernelLaunches: 8, MemoryFraction: 0.010, MemoryDemandGbps: 12.5},
		{Name: "RAY", Suite: CUDASDK, KernelLaunches: 1, MemoryFraction: 0.016, MemoryDemandGbps: 12.5},
		{Name: "LPS", Suite: CUDASDK, KernelLaunches: 100, MemoryFraction: 0.012, MemoryDemandGbps: 25},
		{Name: "LIB", Suite: CUDASDK, KernelLaunches: 2, MemoryFraction: 0.008, MemoryDemandGbps: 12.5},
		{Name: "STO", Suite: CUDASDK, KernelLaunches: 1, MemoryFraction: 0.005, MemoryDemandGbps: 12.5},
		{Name: "NN", Suite: CUDASDK, KernelLaunches: 4, MemoryFraction: 0.014, MemoryDemandGbps: 12.5},
		// Rodinia benchmarks (lower case in Fig. 1-1).
		{Name: "backprop", Suite: Rodinia, KernelLaunches: 2, MemoryFraction: 0.017, MemoryDemandGbps: 25},
		{Name: "hotspot", Suite: Rodinia, KernelLaunches: 1, MemoryFraction: 0.009, MemoryDemandGbps: 12.5},
		{Name: "srad", Suite: Rodinia, KernelLaunches: 4, MemoryFraction: 0.011, MemoryDemandGbps: 12.5},
		{Name: "streamcluster", Suite: Rodinia, KernelLaunches: 650, MemoryFraction: 0.13, MemoryDemandGbps: 50},
	}
}

// ProfileByName returns the profile with the given name and whether it
// exists.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
