package gpgpu

import (
	"fmt"
	"math"
)

// LinkModel describes the GPU-memory interconnect used by the Figure 1-1
// study: a 700 MHz link whose flit size is varied from 32 B to 1024 B.
// Each flit carries a fixed header (routing, sequencing, ECC), so the
// usable fraction of the raw bandwidth grows with flit size.
type LinkModel struct {
	// ClockMHz is the interconnect clock (700 MHz in Fig. 1-1).
	ClockMHz float64

	// HeaderBytes is the per-flit protocol overhead amortized by larger
	// flits.
	HeaderBytes float64

	// RawBytesPerCycle is the physical channel width.
	RawBytesPerCycle float64
}

// DefaultLink returns the Figure 1-1 link configuration.
func DefaultLink() LinkModel {
	return LinkModel{ClockMHz: 700, HeaderBytes: 32, RawBytesPerCycle: 32}
}

// EffectiveBandwidth returns the usable bandwidth in GB/s for a given flit
// size in bytes.
func (l LinkModel) EffectiveBandwidth(flitBytes float64) (float64, error) {
	if flitBytes <= 0 {
		return 0, fmt.Errorf("gpgpu: flit size must be positive, got %g", flitBytes)
	}
	raw := l.RawBytesPerCycle * l.ClockMHz * 1e6 / 1e9
	useful := flitBytes / (flitBytes + l.HeaderBytes)
	return raw * useful, nil
}

// Speedup returns a benchmark's speedup when the flit size grows from
// baselineBytes to flitBytes, using the roofline split of the profile:
//
//	T(flit) = (1 - m) + m * BW(baseline)/BW(flit)
//	speedup = T(baseline) / T(flit) = 1 / ((1-m) + m/r)
//
// where m is the memory-bound runtime fraction and r the bandwidth ratio.
func Speedup(p Profile, link LinkModel, baselineBytes, flitBytes float64) (float64, error) {
	if p.MemoryFraction < 0 || p.MemoryFraction > 1 {
		return 0, fmt.Errorf("gpgpu: %s: memory fraction %g outside [0,1]", p.Name, p.MemoryFraction)
	}
	base, err := link.EffectiveBandwidth(baselineBytes)
	if err != nil {
		return 0, err
	}
	wide, err := link.EffectiveBandwidth(flitBytes)
	if err != nil {
		return 0, err
	}
	ratio := wide / base
	t := (1 - p.MemoryFraction) + p.MemoryFraction/ratio
	if t <= 0 || math.IsNaN(t) {
		return 0, fmt.Errorf("gpgpu: %s: degenerate runtime model", p.Name)
	}
	return 1 / t, nil
}

// SpeedupPoint is one bar of Figure 1-1.
type SpeedupPoint struct {
	Benchmark      string
	Suite          Suite
	KernelLaunches int
	// SpeedupPct is the percentage improvement of the 1024 B flit over
	// the 32 B baseline.
	SpeedupPct float64
}

// Figure1_1 evaluates the speedup of a 1024 B flit size over the 32 B
// baseline for every profiled benchmark, reproducing Figure 1-1.
func Figure1_1() ([]SpeedupPoint, error) {
	link := DefaultLink()
	profiles := Profiles()
	points := make([]SpeedupPoint, 0, len(profiles))
	for _, p := range profiles {
		s, err := Speedup(p, link, 32, 1024)
		if err != nil {
			return nil, err
		}
		points = append(points, SpeedupPoint{
			Benchmark:      p.Name,
			Suite:          p.Suite,
			KernelLaunches: p.KernelLaunches,
			SpeedupPct:     (s - 1) * 100,
		})
	}
	return points, nil
}

// CurvePoint is one flit size of a benchmark's speedup curve.
type CurvePoint struct {
	FlitBytes  float64
	SpeedupPct float64
}

// SpeedupCurve evaluates a benchmark's speedup over the 32 B baseline at
// each flit size — the full curve behind Figure 1-1's 1024 B endpoint.
// Sizes default to the powers of two from 32 B to 1024 B.
func SpeedupCurve(p Profile, link LinkModel, sizes []float64) ([]CurvePoint, error) {
	if len(sizes) == 0 {
		sizes = []float64{32, 64, 128, 256, 512, 1024}
	}
	points := make([]CurvePoint, 0, len(sizes))
	for _, size := range sizes {
		s, err := Speedup(p, link, 32, size)
		if err != nil {
			return nil, err
		}
		points = append(points, CurvePoint{FlitBytes: size, SpeedupPct: (s - 1) * 100})
	}
	return points, nil
}

// Placement maps an application onto GPU clusters for the real-application
// traffic scenario of §3.4.2.
type Placement struct {
	Profile Profile
	// Cores is the number of GPU cores running the application.
	Cores int
}

// RealAppPlacements returns the §3.4.2 mapping: "parallel GPU applications
// like MUM, BFS, CP, RAY and LPS are mapped to 20, 4, 4, 4 and 16 cores
// respectively", occupying 12 clusters, with the remaining 4 clusters
// holding memory.
func RealAppPlacements() ([]Placement, error) {
	spec := []struct {
		name  string
		cores int
	}{
		{"MUM", 20}, {"BFS", 4}, {"CP", 4}, {"RAY", 4}, {"LPS", 16},
	}
	placements := make([]Placement, 0, len(spec))
	for _, s := range spec {
		p, ok := ProfileByName(s.name)
		if !ok {
			return nil, fmt.Errorf("gpgpu: no profile for %s", s.name)
		}
		placements = append(placements, Placement{Profile: p, Cores: s.cores})
	}
	return placements, nil
}
