// Package packet defines the units of data movement in the NoC: packets,
// wormhole flits, and the reservation flits of the reservation-assisted
// SWMR photonic crossbar (§2.2.1, §3.3.1 of the thesis).
//
// A packet is divided into fixed-size flits (Table 3-3: 64x32 b, 16x128 b
// or 8x256 b depending on the bandwidth set). The header flit carries the
// routing information and reserves a path; body flits follow it; the tail
// flit releases the path.
package packet

import (
	"fmt"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// ID uniquely identifies a packet within one simulation run. Retransmitted
// copies of a dropped packet share the logical MessageID but get fresh
// packet IDs.
type ID int64

// MessageID identifies the logical message a packet carries, stable across
// retransmissions.
type MessageID int64

// FlitType distinguishes the wormhole flit roles.
type FlitType int

// Flit roles. A single-flit packet is a HeaderTail.
const (
	Header FlitType = iota + 1
	Body
	Tail
	HeaderTail
)

// String returns the flit role name.
func (t FlitType) String() string {
	switch t {
	case Header:
		return "header"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeaderTail:
		return "header+tail"
	default:
		return "unknown"
	}
}

// IsHeader reports whether the flit opens a packet.
func (t FlitType) IsHeader() bool { return t == Header || t == HeaderTail }

// IsTail reports whether the flit closes a packet.
func (t FlitType) IsTail() bool { return t == Tail || t == HeaderTail }

// Packet is a logical unit of transfer between two cores.
type Packet struct {
	ID      ID
	Message MessageID

	Src topology.CoreID
	Dst topology.CoreID

	SrcCluster topology.ClusterID
	DstCluster topology.ClusterID

	// Flits is the packet length in flits; FlitBits is the flit width.
	Flits    int
	FlitBits int

	// Created is the cycle the packet (this attempt) was injected at the
	// source core. Born is the cycle the logical message was first
	// generated, surviving retransmission.
	Created sim.Cycle
	Born    sim.Cycle

	// Attempt counts transmissions of the message: 1 for the first send.
	Attempt int
}

// Bits returns the packet payload size in bits.
func (p *Packet) Bits() int { return p.Flits * p.FlitBits }

// String summarises the packet for logs and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt %d (msg %d try %d) core %d->%d, %d x %d b",
		p.ID, p.Message, p.Attempt, p.Src, p.Dst, p.Flits, p.FlitBits)
}

// Flit is one flow-control unit of a packet.
type Flit struct {
	Packet *Packet
	Type   FlitType
	// Seq is the flit index within the packet, 0-based.
	Seq int
}

// Bits returns the flit size in bits.
func (f Flit) Bits() int { return f.Packet.FlitBits }

// String summarises the flit.
func (f Flit) String() string {
	return fmt.Sprintf("flit %d/%d (%s) of pkt %d", f.Seq, f.Packet.Flits, f.Type, f.Packet.ID)
}

// FlitsOf explodes a packet into its flit sequence.
func FlitsOf(p *Packet) []Flit {
	flits := make([]Flit, p.Flits)
	for i := range flits {
		flits[i] = Flit{Packet: p, Type: flitTypeAt(i, p.Flits), Seq: i}
	}
	return flits
}

// FlitAt returns the i-th flit of p without materializing the whole
// sequence.
func FlitAt(p *Packet, i int) Flit {
	return Flit{Packet: p, Type: flitTypeAt(i, p.Flits), Seq: i}
}

func flitTypeAt(i, n int) FlitType {
	switch {
	case n == 1:
		return HeaderTail
	case i == 0:
		return Header
	case i == n-1:
		return Tail
	default:
		return Body
	}
}

// Format describes the packet framing of one bandwidth set (Table 3-3).
type Format struct {
	Flits    int
	FlitBits int
}

// Bits returns the packet size in bits for this format.
func (f Format) Bits() int { return f.Flits * f.FlitBits }

// Validate reports an error for non-positive dimensions.
func (f Format) Validate() error {
	if f.Flits <= 0 || f.FlitBits <= 0 {
		return fmt.Errorf("packet: format %dx%d must have positive dimensions", f.Flits, f.FlitBits)
	}
	return nil
}
