package packet

import "testing"

func TestPoolRecycles(t *testing.T) {
	var pl Pool
	p := pl.Get()
	p.ID = 7
	p.Flits = 8
	pl.Put(p)
	q := pl.Get()
	if q != p {
		t.Fatal("pool did not reuse the recycled packet")
	}
	if q.ID != 0 || q.Flits != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
}

func TestPoolNilSafe(t *testing.T) {
	var pl *Pool
	if p := pl.Get(); p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pl.Put(&Packet{}) // must not panic
}

func TestQueueFIFO(t *testing.T) {
	var q Queue
	if q.Len() != 0 || q.Head() != nil || q.Pop() != nil {
		t.Fatal("empty queue misbehaves")
	}
	pkts := make([]*Packet, 20)
	for i := range pkts {
		pkts[i] = &Packet{ID: ID(i + 1)}
		q.Push(pkts[i])
	}
	if q.Len() != 20 {
		t.Fatalf("Len = %d, want 20", q.Len())
	}
	for i := range pkts {
		if q.Head() != pkts[i] {
			t.Fatalf("Head mismatch at %d", i)
		}
		if q.Pop() != pkts[i] {
			t.Fatalf("Pop mismatch at %d", i)
		}
	}
	// Interleave pushes and pops across the wrap point.
	for round := 0; round < 50; round++ {
		q.Push(pkts[round%20])
		q.Push(pkts[(round+1)%20])
		if got := q.Pop(); got != pkts[round%20] {
			t.Fatalf("round %d: wrong packet", round)
		}
		if got := q.Pop(); got != pkts[(round+1)%20] {
			t.Fatalf("round %d: wrong second packet", round)
		}
	}
}
