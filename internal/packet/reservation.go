package packet

import (
	"fmt"
	"math/bits"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/topology"
)

// Reservation is the control message a source photonic router broadcasts
// on its dedicated reservation waveguide before streaming a packet
// (§3.3.1). In the baseline Firefly it carries the destination ID and the
// packet size; d-HetPNoC piggybacks the identifiers of the wavelengths the
// packet will use, so the destination can gate exactly those demodulators.
type Reservation struct {
	Src topology.ClusterID
	Dst topology.ClusterID

	// PacketFlits is the duration field: how many flits will follow.
	PacketFlits int

	// Wavelengths are the data wavelengths the transfer will use. Empty
	// for the Firefly baseline (the channel assignment is static, so the
	// destination already knows which demodulators to gate).
	Wavelengths []photonic.WavelengthID
}

// bitsFor returns the minimum field width that can represent values in
// [0, n). bitsFor(1) is 0: a field with a single possible value needs no
// bits on the wire.
func bitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// DestinationIDBits returns the width of the reservation flit's
// destination-ID field — the only part every listening cluster must
// demodulate before deciding whether the rest of the flit is for it.
func DestinationIDBits(clusters int) int {
	return bitsFor(clusters)
}

// ReservationBits returns the encoded size of the reservation flit in
// bits, following the sizing argument of §3.4.1.1:
//
//   - destination ID: log2(clusters) bits
//   - packet size: log2(maxFlits+1) bits
//   - per wavelength identifier: 6 bits for the wavelength number (64 per
//     waveguide) plus log2(waveguides) bits for the waveguide number
//     (0 bits when a single waveguide holds all data wavelengths, the
//     "best case" of bandwidth set 1).
func ReservationBits(clusters, maxFlits int, bundle photonic.WaveguideBundle, nWavelengthIDs int) int {
	idBits := bitsFor(clusters)
	sizeBits := bitsFor(maxFlits + 1)
	perID := bitsFor(bundle.WavelengthsPerWaveguide) + bitsFor(bundle.Waveguides)
	return idBits + sizeBits + nWavelengthIDs*perID
}

// ReservationCycles returns how many clock cycles the reservation flit
// occupies on the reservation waveguide. The reservation waveguide uses
// maximum DWDM (64 wavelengths at 12.5 Gb/s = 800 Gb/s, i.e. 320 bits per
// 400 ps cycle at 2.5 GHz), so per §3.4.1.1 bandwidth set 1 needs a single
// cycle (<= 8 identifiers, 48 bits + header fields) while bandwidth set 3
// needs two cycles (64 identifiers x 9 bits = 576 bits).
func ReservationCycles(clusters, maxFlits int, bundle photonic.WaveguideBundle, nWavelengthIDs int, clockHz float64) int {
	total := ReservationBits(clusters, maxFlits, bundle, nWavelengthIDs)
	perCycle := photonic.BitsPerCycle(clockHz) * photonic.MaxWavelengthsPerWaveguide
	cycles := int(float64(total)/perCycle) + 1
	if float64(total) == perCycle*float64(cycles-1) && total > 0 {
		cycles--
	}
	if cycles < 1 {
		cycles = 1
	}
	return cycles
}

// EncodeWavelengths packs wavelength identifiers into the on-wire integer
// form used by the reservation flit: waveguide number concatenated with
// wavelength number. DecodeWavelengths inverts it. The codec exists so the
// protocol's field widths are exercised by tests, exactly as a hardware
// implementation would serialize them.
func EncodeWavelengths(bundle photonic.WaveguideBundle, ids []photonic.WavelengthID) ([]uint32, error) {
	lambdaBits := bitsFor(bundle.WavelengthsPerWaveguide)
	out := make([]uint32, len(ids))
	for i, id := range ids {
		if id.Waveguide < 0 || id.Waveguide >= bundle.Waveguides {
			return nil, fmt.Errorf("packet: waveguide %d out of range [0,%d)", id.Waveguide, bundle.Waveguides)
		}
		if id.Wavelength < 0 || id.Wavelength >= bundle.WavelengthsPerWaveguide {
			return nil, fmt.Errorf("packet: wavelength %d out of range [0,%d)", id.Wavelength, bundle.WavelengthsPerWaveguide)
		}
		out[i] = uint32(id.Waveguide)<<lambdaBits | uint32(id.Wavelength)
	}
	return out, nil
}

// DecodeWavelengths unpacks identifiers encoded by EncodeWavelengths.
func DecodeWavelengths(bundle photonic.WaveguideBundle, words []uint32) []photonic.WavelengthID {
	lambdaBits := bitsFor(bundle.WavelengthsPerWaveguide)
	mask := uint32(1)<<lambdaBits - 1
	if lambdaBits == 0 {
		mask = 0
	}
	ids := make([]photonic.WavelengthID, len(words))
	for i, w := range words {
		ids[i] = photonic.WavelengthID{
			Waveguide:  int(w >> lambdaBits),
			Wavelength: int(w & mask),
		}
	}
	return ids
}
