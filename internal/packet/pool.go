package packet

// Pool is a free-list of Packet structs. The simulator generates one
// packet per transfer and drops the reference as soon as the tail flit is
// consumed (or the packet is lost), so recycling the structs removes the
// dominant steady-state allocation of the cycle loop. A nil *Pool is
// valid and always allocates.
//
// The pool is not safe for concurrent use; each fabric owns its own.
type Pool struct {
	free []*Packet

	// gets and puts count every packet handed out and returned; their
	// difference is the number of live packets drawn from this pool,
	// the in-flight term of the conservation invariant the property
	// tests check (injected = delivered + lost + live).
	gets int64
	puts int64
}

// Get returns a zeroed packet, reusing a recycled one when available.
//
//hetpnoc:hotpath
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return newPacket()
	}
	pl.gets++
	if len(pl.free) == 0 {
		return newPacket()
	}
	n := len(pl.free) - 1
	p := pl.free[n]
	pl.free[n] = nil
	pl.free = pl.free[:n]
	*p = Packet{}
	return p
}

// newPacket is Get's allocation fallback for a nil pool or a drained
// free list. Splitting it out keeps the heap allocation off Get's fast
// path: once the pool warms up, every Get recycles.
//
//hetpnoc:coldcall pool-miss fallback; steady state recycles and never reaches it
//go:noinline
func newPacket() *Packet { return &Packet{} }

// Put recycles p. The caller must hold the only remaining reference:
// after the next Get the struct is rewritten in place.
//
//hetpnoc:hotpath
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.puts++
	pl.free = append(pl.free, p)
}

// Live returns the number of packets drawn from the pool and not yet
// returned — exactly the packets somewhere in the fabric: source queues,
// router buffers, photonic channels, or retry timers.
func (pl *Pool) Live() int64 {
	if pl == nil {
		return 0
	}
	return pl.gets - pl.puts
}

// PoolSnapshot is a checkpoint of the free list and the conservation
// counters. The free packets' contents are irrelevant (Get rewrites
// them), so only the pointers are saved.
type PoolSnapshot struct {
	free []*Packet
	gets int64
	puts int64
}

// Snapshot copies the pool's state.
func (pl *Pool) Snapshot() *PoolSnapshot {
	if pl == nil {
		return nil
	}
	return &PoolSnapshot{
		free: append([]*Packet(nil), pl.free...),
		gets: pl.gets,
		puts: pl.puts,
	}
}

// Restore rewinds the pool to a snapshot. Packets handed out after the
// snapshot was taken return to being free; packets freed since return to
// being live (their contents are the fabric checkpoint's concern).
func (pl *Pool) Restore(s *PoolSnapshot) {
	if pl == nil || s == nil {
		return
	}
	for i := len(s.free); i < len(pl.free); i++ {
		pl.free[i] = nil
	}
	pl.free = append(pl.free[:0], s.free...)
	pl.gets = s.gets
	pl.puts = s.puts
}

// Queue is a FIFO of packets backed by a reusable ring, replacing the
// append/re-slice idiom that leaks the front capacity of the backing
// array on every dequeue.
type Queue struct {
	buf   []*Packet
	head  int
	count int
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.count }

// Head returns the oldest queued packet without removing it, or nil when
// the queue is empty.
func (q *Queue) Head() *Packet {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}

// Push appends p, growing the ring as needed.
//
//hetpnoc:hotpath
func (q *Queue) Push(p *Packet) {
	if q.count == len(q.buf) {
		//hetpnoc:coldcall amortized ring growth, O(log capacity) times per queue, never steady-state
		q.grow()
	}
	slot := q.head + q.count
	if slot >= len(q.buf) {
		slot -= len(q.buf)
	}
	q.buf[slot] = p
	q.count++
}

// Pop removes and returns the oldest packet, or nil when empty.
//
//hetpnoc:hotpath
func (q *Queue) Pop() *Packet {
	if q.count == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.count--
	return p
}

// Snapshot appends the queued packets to dst in FIFO order and returns
// the extended slice, for checkpointing.
func (q *Queue) Snapshot(dst []*Packet) []*Packet {
	for i := 0; i < q.count; i++ {
		slot := q.head + i
		if slot >= len(q.buf) {
			slot -= len(q.buf)
		}
		dst = append(dst, q.buf[slot])
	}
	return dst
}

// Restore replaces the queue's contents with ps (oldest first), reusing
// the ring storage when it is large enough.
func (q *Queue) Restore(ps []*Packet) {
	if len(ps) > len(q.buf) {
		q.buf = make([]*Packet, len(ps))
	}
	for i := range q.buf {
		q.buf[i] = nil
	}
	copy(q.buf, ps)
	q.head = 0
	q.count = len(ps)
}

// grow doubles the ring capacity, linearizing the contents at the front.
func (q *Queue) grow() {
	newCap := 2 * len(q.buf)
	if newCap < 8 {
		newCap = 8
	}
	buf := make([]*Packet, newCap)
	for i := 0; i < q.count; i++ {
		slot := q.head + i
		if slot >= len(q.buf) {
			slot -= len(q.buf)
		}
		buf[i] = q.buf[slot]
	}
	q.buf = buf
	q.head = 0
}
