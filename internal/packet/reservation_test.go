package packet

import (
	"testing"
	"testing/quick"

	"hetpnoc/internal/photonic"
)

const clockHz = 2.5e9

func bundleFor(total int) photonic.WaveguideBundle {
	b, err := photonic.NewBundle(total)
	if err != nil {
		panic(err)
	}
	return b
}

// TestReservationTimingSection3_4_1_1 checks the exact timing argument of
// §3.4.1.1: for bandwidth set 1 (single waveguide, up to 8 wavelength
// identifiers) the reservation flit fits in one clock cycle; for bandwidth
// set 3 (8 waveguides, up to 64 identifiers) it needs two.
func TestReservationTimingSection3_4_1_1(t *testing.T) {
	const clusters, maxFlits1, maxFlits3 = 16, 64, 8

	set1 := bundleFor(64)
	if got := ReservationCycles(clusters, maxFlits1, set1, 8, clockHz); got != 1 {
		t.Fatalf("BW set 1 reservation takes %d cycles, want 1 (§3.4.1.1)", got)
	}

	set3 := bundleFor(512)
	if set3.Waveguides != 8 {
		t.Fatalf("512 wavelengths need %d waveguides, want 8", set3.Waveguides)
	}
	if got := ReservationCycles(clusters, maxFlits3, set3, 64, clockHz); got != 2 {
		t.Fatalf("BW set 3 reservation takes %d cycles, want 2 (§3.4.1.1)", got)
	}
}

func TestReservationBitsComposition(t *testing.T) {
	set1 := bundleFor(64)
	// 16 clusters -> 4 bits; 64 flits -> 7 bits (65 values); 8 IDs x 6
	// bits (single waveguide: no waveguide field).
	want := 4 + 7 + 8*6
	if got := ReservationBits(16, 64, set1, 8); got != want {
		t.Fatalf("ReservationBits = %d, want %d", got, want)
	}

	set3 := bundleFor(512)
	// Waveguide field adds log2(8)=3 bits per identifier (§3.4.1.1).
	want = 4 + 4 + 64*(6+3) // 8 flits -> 4 bits (9 values)
	if got := ReservationBits(16, 8, set3, 64); got != want {
		t.Fatalf("ReservationBits = %d, want %d", got, want)
	}
}

func TestReservationCyclesBoundaries(t *testing.T) {
	b := bundleFor(64)
	// 320 bits per cycle on the 64-wavelength reservation waveguide.
	perCycle := int(photonic.BitsPerCycle(clockHz)) * 64
	if perCycle != 320 {
		t.Fatalf("reservation waveguide carries %d bits/cycle, want 320", perCycle)
	}
	// Zero identifiers (Firefly) always fits one cycle.
	if got := ReservationCycles(16, 64, b, 0, clockHz); got != 1 {
		t.Fatalf("Firefly reservation takes %d cycles, want 1", got)
	}
	// 51 IDs x 6 bits + 11 header bits = 317 bits -> still one cycle;
	// 52 IDs = 323 bits -> two.
	if got := ReservationCycles(16, 64, b, 51, clockHz); got != 1 {
		t.Fatalf("317-bit reservation takes %d cycles, want 1", got)
	}
	if got := ReservationCycles(16, 64, b, 52, clockHz); got != 2 {
		t.Fatalf("323-bit reservation takes %d cycles, want 2", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := bundleFor(512)
	ids := []photonic.WavelengthID{
		{Waveguide: 0, Wavelength: 0},
		{Waveguide: 7, Wavelength: 63},
		{Waveguide: 3, Wavelength: 17},
	}
	words, err := EncodeWavelengths(b, ids)
	if err != nil {
		t.Fatal(err)
	}
	got := DecodeWavelengths(b, words)
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("round trip: got %v, want %v", got[i], ids[i])
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	b := bundleFor(64)
	bad := [][]photonic.WavelengthID{
		{{Waveguide: 1, Wavelength: 0}},  // only one waveguide
		{{Waveguide: 0, Wavelength: 64}}, // wavelength out of range
		{{Waveguide: -1, Wavelength: 0}},
		{{Waveguide: 0, Wavelength: -1}},
	}
	for _, ids := range bad {
		if _, err := EncodeWavelengths(b, ids); err == nil {
			t.Errorf("EncodeWavelengths accepted %v", ids)
		}
	}
}

// TestEncodeDecodeProperty: any valid identifier survives the on-wire
// round trip for any bundle size.
//
//hetpnoc:detsafe property test samples random identifiers on purpose; the round trip is pure and quick prints any counterexample
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(rawTotal uint16, rawWG, rawLambda uint8) bool {
		total := int(rawTotal)%1024 + 1
		b := bundleFor(total)
		id := photonic.WavelengthID{
			Waveguide:  int(rawWG) % b.Waveguides,
			Wavelength: int(rawLambda) % b.WavelengthsPerWaveguide,
		}
		words, err := EncodeWavelengths(b, []photonic.WavelengthID{id})
		if err != nil {
			return false
		}
		return DecodeWavelengths(b, words)[0] == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationIDBits(t *testing.T) {
	tests := []struct{ clusters, want int }{
		{1, 0}, {2, 1}, {16, 4}, {17, 5}, {64, 6},
	}
	for _, tt := range tests {
		if got := DestinationIDBits(tt.clusters); got != tt.want {
			t.Errorf("DestinationIDBits(%d) = %d, want %d", tt.clusters, got, tt.want)
		}
	}
}
