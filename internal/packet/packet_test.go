package packet

import (
	"testing"
)

func TestFlitTypesOfPacket(t *testing.T) {
	p := &Packet{ID: 1, Flits: 4, FlitBits: 32}
	flits := FlitsOf(p)
	if len(flits) != 4 {
		t.Fatalf("FlitsOf produced %d flits, want 4", len(flits))
	}
	wantTypes := []FlitType{Header, Body, Body, Tail}
	for i, f := range flits {
		if f.Type != wantTypes[i] {
			t.Errorf("flit %d type = %v, want %v", i, f.Type, wantTypes[i])
		}
		if f.Seq != i {
			t.Errorf("flit %d seq = %d", i, f.Seq)
		}
		if f.Bits() != 32 {
			t.Errorf("flit %d bits = %d, want 32", i, f.Bits())
		}
	}
}

func TestSingleFlitPacketIsHeaderTail(t *testing.T) {
	p := &Packet{ID: 2, Flits: 1, FlitBits: 256}
	f := FlitAt(p, 0)
	if f.Type != HeaderTail {
		t.Fatalf("single-flit packet type = %v, want HeaderTail", f.Type)
	}
	if !f.Type.IsHeader() || !f.Type.IsTail() {
		t.Fatal("HeaderTail must be both header and tail")
	}
}

func TestTwoFlitPacket(t *testing.T) {
	p := &Packet{ID: 3, Flits: 2, FlitBits: 128}
	if got := FlitAt(p, 0).Type; got != Header {
		t.Fatalf("first flit = %v, want Header", got)
	}
	if got := FlitAt(p, 1).Type; got != Tail {
		t.Fatalf("second flit = %v, want Tail", got)
	}
}

func TestFlitAtMatchesFlitsOf(t *testing.T) {
	p := &Packet{ID: 4, Flits: 64, FlitBits: 32}
	all := FlitsOf(p)
	for i := range all {
		got := FlitAt(p, i)
		if got != all[i] {
			t.Fatalf("FlitAt(%d) = %+v, FlitsOf[%d] = %+v", i, got, i, all[i])
		}
	}
}

func TestPacketBits(t *testing.T) {
	// The three Table 3-3 packet formats all carry 2048 bits.
	formats := []Format{
		{Flits: 64, FlitBits: 32},
		{Flits: 16, FlitBits: 128},
		{Flits: 8, FlitBits: 256},
	}
	for _, f := range formats {
		if f.Bits() != 2048 {
			t.Errorf("format %dx%d bits = %d, want 2048", f.Flits, f.FlitBits, f.Bits())
		}
		if err := f.Validate(); err != nil {
			t.Errorf("format %dx%d failed validation: %v", f.Flits, f.FlitBits, err)
		}
	}
}

func TestFormatValidation(t *testing.T) {
	for _, f := range []Format{{0, 32}, {64, 0}, {-1, 32}, {64, -1}} {
		if err := f.Validate(); err == nil {
			t.Errorf("format %+v passed validation", f)
		}
	}
}

func TestFlitTypeStrings(t *testing.T) {
	tests := map[FlitType]string{
		Header:      "header",
		Body:        "body",
		Tail:        "tail",
		HeaderTail:  "header+tail",
		FlitType(0): "unknown",
	}
	//hetpnoc:orderfree each entry is asserted independently
	for ft, want := range tests {
		if got := ft.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ft, got, want)
		}
	}
}
