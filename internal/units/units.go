// Package units defines the typed physical quantities of the thesis's
// evaluation model. Each quantity is a defined type over float64 (or
// reuses sim.Cycle for clock ticks), so arithmetic inside one unit
// domain is value-preserving — JSON encoding, comparisons and float
// operations are bit-identical to the bare float64 they replace — while
// the compiler and the unitsafe analyzer reject arithmetic that mixes
// domains (a dB figure added to a milliwatt figure, a cycle count mixed
// with wall-clock time).
//
// Conversions between domains are deliberate: they happen only through
// the blessed helpers below, which encode the paper's actual formulas
// (dBm-to-milliwatt launch power, cycles-to-seconds at the modeled
// clock). Anywhere else, converting one unit type into another is a
// unitsafe finding unless annotated //hetpnoc:unitcast with a reason.
package units

import (
	"fmt"
	"math"

	"hetpnoc/internal/sim"
)

// DB is a logarithmic power quantity in decibels. It covers both
// relative figures (insertion loss, crosstalk penalty) and absolute
// dBm-referenced levels (detector sensitivity, launch power): the two
// add freely along a link budget, which is exactly how §3's budget
// equations use them.
type DB float64

// DBPerCm is a per-length loss rate — the waveguide propagation loss of
// Table 3-4.
type DBPerCm float64

// MilliWatt is linear optical or heater power in milliwatts.
type MilliWatt float64

// Picojoule is dissipated energy in picojoules, the unit of the
// Table 3-4/3-5 energy model and the energy-per-message metric.
type Picojoule float64

// Gbps is a bit rate in gigabits per second, the thesis's bandwidth
// axis (§3.4.1.1).
type Gbps float64

// Centimeter is an on-die optical path length in centimeters, the unit
// the propagation-loss rate multiplies.
type Centimeter float64

// GHz is a clock frequency in gigahertz (the modeled 2.5 GHz core
// clock).
type GHz float64

// SquareMillimeter is silicon area in mm², the unit of the §3.4.3 area
// model (Figure 3-6).
type SquareMillimeter float64

// Unit returns the bare unit label, for callers composing their own
// formatting around a printed value.
func (DB) Unit() string               { return "dB" }
func (DBPerCm) Unit() string          { return "dB/cm" }
func (MilliWatt) Unit() string        { return "mW" }
func (Picojoule) Unit() string        { return "pJ" }
func (Gbps) Unit() string             { return "Gb/s" }
func (Centimeter) Unit() string       { return "cm" }
func (GHz) Unit() string              { return "GHz" }
func (SquareMillimeter) Unit() string { return "mm^2" }

// String renders the value with its unit label.
func (v DB) String() string               { return fmt.Sprintf("%g %s", float64(v), v.Unit()) }
func (v DBPerCm) String() string          { return fmt.Sprintf("%g %s", float64(v), v.Unit()) }
func (v MilliWatt) String() string        { return fmt.Sprintf("%g %s", float64(v), v.Unit()) }
func (v Picojoule) String() string        { return fmt.Sprintf("%g %s", float64(v), v.Unit()) }
func (v Gbps) String() string             { return fmt.Sprintf("%g %s", float64(v), v.Unit()) }
func (v Centimeter) String() string       { return fmt.Sprintf("%g %s", float64(v), v.Unit()) }
func (v GHz) String() string              { return fmt.Sprintf("%g %s", float64(v), v.Unit()) }
func (v SquareMillimeter) String() string { return fmt.Sprintf("%g %s", float64(v), v.Unit()) }

// Times scales a loss by a dimensionless element count (rings passed,
// crossings traversed).
func (v DB) Times(n float64) DB { return v * DB(n) }

// Over converts the loss rate into a loss over a path of the given
// length.
func (r DBPerCm) Over(length Centimeter) DB { return DB(float64(r) * float64(length)) }

// Times scales a power by a dimensionless count (wavelengths, rings).
func (v MilliWatt) Times(n float64) MilliWatt { return v * MilliWatt(n) }

// Times scales an energy by a dimensionless count (bits, bit-cycles).
func (v Picojoule) Times(n float64) Picojoule { return v * Picojoule(n) }

// Div divides an energy by a dimensionless count (packets delivered),
// yielding a per-item energy in the same unit.
func (v Picojoule) Div(n float64) Picojoule { return v / Picojoule(n) }

// Div divides a rate by a dimensionless count (cores), yielding a
// per-item rate in the same unit.
func (v Gbps) Div(n float64) Gbps { return v / Gbps(n) }

// DBToLinear converts a relative dB figure into a linear power ratio,
// 10^(dB/10).
func DBToLinear(db DB) float64 { return math.Pow(10, float64(db)/10) }

// DBmToMilliWatt converts an absolute dBm-referenced level into linear
// milliwatts — the launch-power step of the §3 link budget.
func DBmToMilliWatt(dbm DB) MilliWatt { return MilliWatt(math.Pow(10, float64(dbm)/10)) }

// ClockGHz extracts a clock's frequency as a typed GHz quantity.
func ClockGHz(c sim.Clock) GHz { return GHz(c.FrequencyHz / 1e9) }

// CyclesToSeconds converts a cycle count at the given clock into
// wall-clock seconds. For the modeled 2.5 GHz clock this is exactly
// sim.Clock.Seconds: the GHz round trip through 1e9 is lossless.
func CyclesToSeconds(n sim.Cycle, clock GHz) float64 {
	return float64(n) / (float64(clock) * 1e9)
}

// RateGbps derives a bit rate from bits delivered over a measurement
// window in seconds — the §3.4.1.1 delivered-bandwidth metric.
func RateGbps(bits, seconds float64) Gbps { return Gbps(bits / seconds / 1e9) }
