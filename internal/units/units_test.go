package units

import (
	"encoding/json"
	"math"
	"testing"

	"hetpnoc/internal/sim"
)

// TestConversionsMatchRawFormulas pins the blessed helpers to the bare
// float64 formulas they replace: the refactor onto typed quantities must
// be bit-identical.
func TestConversionsMatchRawFormulas(t *testing.T) {
	if got, want := DBToLinear(10), 10.0; got != want {
		t.Errorf("DBToLinear(10) = %g, want %g", got, want)
	}
	if got, want := float64(DBmToMilliWatt(0)), 1.0; got != want {
		t.Errorf("DBmToMilliWatt(0) = %g, want %g", got, want)
	}
	launchDBm := -20.0 + 3.25 + 0.64
	if got, want := float64(DBmToMilliWatt(DB(launchDBm))), math.Pow(10, launchDBm/10); got != want {
		t.Errorf("DBmToMilliWatt(%g) = %g, want %g", launchDBm, got, want)
	}

	clock := sim.DefaultClock()
	for _, n := range []sim.Cycle{1, 999, 2500, 1_000_000} {
		got := CyclesToSeconds(n, ClockGHz(clock))
		want := clock.Seconds(n)
		if got != want {
			t.Errorf("CyclesToSeconds(%d) = %g, want clock.Seconds = %g", n, got, want)
		}
	}

	bits, seconds := 123456789.0, 4.0e-7
	if got, want := float64(RateGbps(bits, seconds)), bits/seconds/1e9; got != want {
		t.Errorf("RateGbps = %g, want %g", got, want)
	}
}

// TestScalingHelpersMatchRawOps: Times/Div/Over are plain float
// multiplication and division in the same rounding order as the code
// they replaced.
func TestScalingHelpersMatchRawOps(t *testing.T) {
	if got, want := float64(DB(0.01).Times(960)), 0.01*960.0; got != want {
		t.Errorf("DB.Times = %g, want %g", got, want)
	}
	if got, want := float64(DBPerCm(1.5).Over(4)), 1.5*4.0; got != want {
		t.Errorf("DBPerCm.Over = %g, want %g", got, want)
	}
	if got, want := float64(MilliWatt(1.5).Times(64)), 1.5*64.0; got != want {
		t.Errorf("MilliWatt.Times = %g, want %g", got, want)
	}
	if got, want := float64(Picojoule(0.078125).Times(544)), 0.078125*544.0; got != want {
		t.Errorf("Picojoule.Times = %g, want %g", got, want)
	}
	// Computed through variables: a constant expression would be folded
	// at full precision and round differently from the runtime division.
	num, den := 977.3, 7.0
	if got, want := float64(Picojoule(num).Div(den)), num/den; got != want {
		t.Errorf("Picojoule.Div = %g, want %g", got, want)
	}
	if got, want := float64(Gbps(512.25).Div(64)), 512.25/64.0; got != want {
		t.Errorf("Gbps.Div = %g, want %g", got, want)
	}
}

// TestJSONIsBitIdenticalToFloat64: defined types must encode exactly as
// the underlying float64 — the golden and differential oracles depend
// on it.
func TestJSONIsBitIdenticalToFloat64(t *testing.T) {
	typed, err := json.Marshal(struct {
		A Gbps
		B Picojoule
		C SquareMillimeter
	}{Gbps(409.6), Picojoule(0.0015625), SquareMillimeter(1.6084954386379741)})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(struct {
		A, B, C float64
	}{409.6, 0.0015625, 1.6084954386379741})
	if err != nil {
		t.Fatal(err)
	}
	if string(typed) != string(raw) {
		t.Errorf("typed JSON %s differs from raw float64 JSON %s", typed, raw)
	}
}

// TestLabels: the String/Unit methods are the single source of unit
// labels for cmd/report and cmd/areacalc.
func TestLabels(t *testing.T) {
	cases := []struct {
		str, unit string
	}{
		{DB(3.25).String(), DB(0).Unit()},
		{DBPerCm(1.5).String(), DBPerCm(0).Unit()},
		{MilliWatt(1.5).String(), MilliWatt(0).Unit()},
		{Picojoule(0.04).String(), Picojoule(0).Unit()},
		{Gbps(409.6).String(), Gbps(0).Unit()},
		{Centimeter(4).String(), Centimeter(0).Unit()},
		{GHz(2.5).String(), GHz(0).Unit()},
		{SquareMillimeter(1.608).String(), SquareMillimeter(0).Unit()},
	}
	wantUnits := []string{"dB", "dB/cm", "mW", "pJ", "Gb/s", "cm", "GHz", "mm^2"}
	for i, c := range cases {
		if c.unit != wantUnits[i] {
			t.Errorf("Unit() = %q, want %q", c.unit, wantUnits[i])
		}
		if len(c.str) == 0 || c.str[len(c.str)-len(c.unit):] != c.unit {
			t.Errorf("String() = %q does not end in unit %q", c.str, c.unit)
		}
	}
}
