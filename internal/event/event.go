// Package event provides a bounded protocol event log for the simulator.
// When enabled, the crossbar engines, the DBA allocator and the fabric
// append events (reservations, transfers, drops, token allocation changes,
// task remaps) that tests, examples and debugging sessions can inspect
// without parsing printed output.
package event

import (
	"fmt"

	"hetpnoc/internal/sim"
)

// Kind classifies a protocol event.
type Kind int

// Event kinds.
const (
	// ReservationSent: a source broadcast a reservation flit.
	ReservationSent Kind = iota + 1
	// StreamStarted: a packet began streaming on a write channel.
	StreamStarted
	// PacketArrived: a packet fully crossed the photonic channel.
	PacketArrived
	// PacketDropped: the receiver had no free VC; the packet was
	// discarded (§1.4).
	PacketDropped
	// Retransmit: a dropped packet was scheduled for retransmission.
	Retransmit
	// AllocationChanged: a token visit changed a cluster's wavelength
	// allocation (§3.2.1).
	AllocationChanged
	// TaskRemap: the workload mapping changed (§3.2).
	TaskRemap
	// PacketDelivered: a packet's tail was consumed by its destination
	// core.
	PacketDelivered
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case ReservationSent:
		return "reservation"
	case StreamStarted:
		return "stream-start"
	case PacketArrived:
		return "packet-arrived"
	case PacketDropped:
		return "packet-dropped"
	case Retransmit:
		return "retransmit"
	case AllocationChanged:
		return "allocation-changed"
	case TaskRemap:
		return "task-remap"
	case PacketDelivered:
		return "packet-delivered"
	default:
		return "unknown"
	}
}

// Event is one protocol occurrence.
type Event struct {
	Cycle sim.Cycle
	Kind  Kind
	// Cluster is the acting cluster (source for transmit events,
	// destination for receive events), -1 when not applicable.
	Cluster int
	// Packet is the acting packet's ID, 0 when not applicable.
	Packet int64
	// Detail carries kind-specific context ("4 wavelengths", "alloc
	// 1->8").
	Detail string

	// Deferred detail: AppendInts stores the verb string and integer
	// arguments instead of formatting eagerly, so events that are evicted
	// before anyone reads the log never pay the fmt cost. format is empty
	// once Detail has been materialized.
	format string
	iargs  [4]int64
	nargs  int
}

// materialize renders a deferred detail string in place.
func (e *Event) materialize() {
	if e.format == "" {
		return
	}
	switch e.nargs {
	case 0:
		e.Detail = e.format
	case 1:
		e.Detail = fmt.Sprintf(e.format, e.iargs[0])
	case 2:
		e.Detail = fmt.Sprintf(e.format, e.iargs[0], e.iargs[1])
	case 3:
		e.Detail = fmt.Sprintf(e.format, e.iargs[0], e.iargs[1], e.iargs[2])
	default:
		e.Detail = fmt.Sprintf(e.format, e.iargs[0], e.iargs[1], e.iargs[2], e.iargs[3])
	}
	e.format = ""
}

// String formats the event for logs.
func (e Event) String() string {
	e.materialize()
	return fmt.Sprintf("[%6d] %-18s cluster=%d pkt=%d %s",
		e.Cycle, e.Kind, e.Cluster, e.Packet, e.Detail)
}

// Log is a bounded event ring. A nil *Log is valid and discards
// everything, so instrumented components need no enablement checks.
type Log struct {
	ring    []Event
	next    int
	total   int64
	dropped int64
}

// NewLog returns a log retaining the most recent capacity events.
func NewLog(capacity int) (*Log, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("event: capacity must be positive, got %d", capacity)
	}
	return &Log{ring: make([]Event, 0, capacity)}, nil
}

// Append records an event; the oldest event is evicted when full.
func (l *Log) Append(e Event) {
	if l == nil {
		return
	}
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
		return
	}
	next := l.next
	if uint(next) >= uint(len(l.ring)) {
		return // unreachable: next always wraps below cap; the guard anchors BCE
	}
	l.ring[next] = e
	l.next = (next + 1) % cap(l.ring)
	l.dropped++
}

// Appendf records an event with a formatted detail string. The formatting
// cost is only paid when the log is enabled.
func (l *Log) Appendf(cycle sim.Cycle, kind Kind, cluster int, pkt int64, format string, args ...any) {
	if l == nil {
		return
	}
	l.Append(Event{
		Cycle:   cycle,
		Kind:    kind,
		Cluster: cluster,
		Packet:  pkt,
		Detail:  fmt.Sprintf(format, args...),
	})
}

// AppendInts records an event whose detail formats only integers (%d
// verbs, at most four). Unlike Appendf it defers the fmt work to read
// time: a disabled log or an event evicted before Events is called costs
// no formatting and no allocation.
func (l *Log) AppendInts(cycle sim.Cycle, kind Kind, cluster int, pkt int64, format string, args ...int64) {
	if l == nil {
		return
	}
	e := Event{
		Cycle:   cycle,
		Kind:    kind,
		Cluster: cluster,
		Packet:  pkt,
		format:  format,
		nargs:   len(args),
	}
	copy(e.iargs[:], args)
	l.Append(e)
}

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	for i := range out {
		out[i].materialize()
	}
	return out
}

// Total returns how many events were ever appended.
func (l *Log) Total() int64 {
	if l == nil {
		return 0
	}
	return l.total
}

// Evicted returns how many events were evicted by the ring bound.
func (l *Log) Evicted() int64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// LogSnapshot is a checkpoint of the log's retained events.
type LogSnapshot struct {
	ring    []Event
	next    int
	total   int64
	dropped int64
}

// Snapshot copies the log's state; a nil log snapshots to nil.
func (l *Log) Snapshot() *LogSnapshot {
	if l == nil {
		return nil
	}
	return &LogSnapshot{
		ring:    append([]Event(nil), l.ring...),
		next:    l.next,
		total:   l.total,
		dropped: l.dropped,
	}
}

// Restore rewinds the log to a snapshot, preserving the ring capacity.
func (l *Log) Restore(s *LogSnapshot) {
	if l == nil || s == nil {
		return
	}
	l.ring = append(l.ring[:0], s.ring...)
	l.next = s.next
	l.total = s.total
	l.dropped = s.dropped
}

// OfKind filters the retained events.
func (l *Log) OfKind(k Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}
