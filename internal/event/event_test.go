package event

import (
	"strings"
	"testing"

	"hetpnoc/internal/sim"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Append(Event{Kind: ReservationSent})
	l.Appendf(1, PacketDropped, 0, 1, "x %d", 5)
	if l.Events() != nil {
		t.Fatal("nil log returned events")
	}
	if l.Total() != 0 || l.Evicted() != 0 {
		t.Fatal("nil log has counts")
	}
}

func TestLogOrdering(t *testing.T) {
	l, err := NewLog(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Appendf(sim.Cycle(i), ReservationSent, i, int64(i), "e%d", i)
	}
	events := l.Events()
	if len(events) != 5 {
		t.Fatalf("got %d events", len(events))
	}
	for i, e := range events {
		if int(e.Cycle) != i {
			t.Fatalf("events out of order: %v", events)
		}
	}
}

func TestLogEviction(t *testing.T) {
	l, err := NewLog(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		l.Appendf(0, PacketArrived, i, 0, "")
	}
	events := l.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	// The most recent three survive, in order.
	for i, e := range events {
		if e.Cluster != 4+i {
			t.Fatalf("wrong retained window: %v", events)
		}
	}
	if l.Total() != 7 {
		t.Fatalf("Total = %d, want 7", l.Total())
	}
	if l.Evicted() != 4 {
		t.Fatalf("Evicted = %d, want 4", l.Evicted())
	}
}

func TestOfKind(t *testing.T) {
	l, err := NewLog(10)
	if err != nil {
		t.Fatal(err)
	}
	l.Appendf(1, ReservationSent, 0, 1, "")
	l.Appendf(2, PacketDropped, 1, 2, "")
	l.Appendf(3, ReservationSent, 2, 3, "")
	if got := len(l.OfKind(ReservationSent)); got != 2 {
		t.Fatalf("OfKind found %d reservations, want 2", got)
	}
	if got := len(l.OfKind(TaskRemap)); got != 0 {
		t.Fatalf("OfKind found %d remaps, want 0", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Cycle: 42, Kind: PacketDropped, Cluster: 3, Packet: 99, Detail: "attempt 2"}
	s := e.String()
	for _, want := range []string{"42", "packet-dropped", "cluster=3", "pkt=99", "attempt 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestKindNames(t *testing.T) {
	kinds := []Kind{ReservationSent, StreamStarted, PacketArrived, PacketDropped,
		Retransmit, AllocationChanged, TaskRemap, PacketDelivered}
	seen := make(map[string]bool)
	for _, k := range kinds {
		name := k.String()
		if name == "unknown" || seen[name] {
			t.Fatalf("bad kind name %q", name)
		}
		seen[name] = true
	}
	if Kind(0).String() != "unknown" {
		t.Fatal("zero kind should be unknown")
	}
}

func TestNewLogValidation(t *testing.T) {
	if _, err := NewLog(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}
