// Package xbar implements the reservation-assisted single-write
// multiple-read (R-SWMR) photonic crossbar shared by both architectures
// (§2.2.1, §3.3): per-cluster write data channels, the dedicated
// reservation waveguides, the transmit engine that serializes packets onto
// DWDM wavelengths, and the receive engine that gates demodulators for the
// duration of a packet.
//
// The difference between the Firefly baseline and d-HetPNoC is the
// wavelength allocation policy, abstracted as the Allocator interface; the
// dynamic token-based allocator lives in internal/core.
package xbar

import (
	"fmt"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// Allocator decides which data wavelengths each cluster's write channel
// owns, and which subset a given packet uses.
type Allocator interface {
	// Name identifies the policy ("firefly-static", "token-dba").
	Name() string

	// Tick advances protocol state by one cycle (token circulation for
	// the dynamic allocator; a no-op for the static one).
	Tick(now sim.Cycle)

	// Allocated returns the wavelengths currently owned by cluster c's
	// write channel. Callers must not mutate the returned slice.
	Allocated(c topology.ClusterID) []photonic.WavelengthID

	// SelectForPacket returns the wavelengths a packet from src to dst
	// will use, chosen among the allocated ones based on the demand
	// toward dst (§3.3.1). The result is never empty.
	SelectForPacket(src, dst topology.ClusterID) []photonic.WavelengthID

	// SetDemand records that the application on core reports a
	// wavelength demand toward each destination cluster (the demand
	// table a core sends its photonic router on a task change, §3.2.1).
	SetDemand(core topology.CoreID, demand []int)
}

// Static is the Firefly baseline allocation: the aggregate wavelength
// budget divided uniformly, each cluster permanently owning an equal slice
// of its dedicated write waveguide. Every packet uses the channel's full
// wavelength set, regardless of the flow's bandwidth requirement — the
// inefficiency §2.2.1 calls out.
type Static struct {
	perCluster [][]photonic.WavelengthID
}

var _ Allocator = (*Static)(nil)

// NewStatic divides totalWavelengths evenly over the topology's clusters.
func NewStatic(topo topology.Topology, bundle photonic.WaveguideBundle, totalWavelengths int) (*Static, error) {
	clusters := topo.Clusters()
	if totalWavelengths < clusters {
		return nil, fmt.Errorf("xbar: %d wavelengths cannot cover %d clusters", totalWavelengths, clusters)
	}
	if totalWavelengths%clusters != 0 {
		return nil, fmt.Errorf("xbar: %d wavelengths do not divide evenly over %d clusters", totalWavelengths, clusters)
	}
	per := totalWavelengths / clusters
	alloc := make([][]photonic.WavelengthID, clusters)
	slot := 0
	for c := range alloc {
		ids := make([]photonic.WavelengthID, per)
		for i := range ids {
			ids[i] = bundle.IDForSlot(slot)
			slot++
		}
		alloc[c] = ids
	}
	return &Static{perCluster: alloc}, nil
}

// Name implements Allocator.
func (s *Static) Name() string { return "firefly-static" }

// Tick implements Allocator.
func (s *Static) Tick(sim.Cycle) {}

// Allocated implements Allocator.
func (s *Static) Allocated(c topology.ClusterID) []photonic.WavelengthID {
	return s.perCluster[c]
}

// SelectForPacket implements Allocator: Firefly always transmits on the
// channel's full wavelength set.
func (s *Static) SelectForPacket(src, _ topology.ClusterID) []photonic.WavelengthID {
	return s.perCluster[src]
}

// SetDemand implements Allocator; the static allocation ignores demand.
func (s *Static) SetDemand(topology.CoreID, []int) {}
