package xbar

import (
	"testing"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

func mustBundle(t *testing.T, total int) photonic.WaveguideBundle {
	t.Helper()
	b, err := photonic.NewBundle(total)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestStaticAllocatorPartition(t *testing.T) {
	topo := topology.Default()
	bundle := mustBundle(t, 64)
	s, err := NewStatic(topo, bundle, 64)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[photonic.WavelengthID]int)
	for cl := 0; cl < topo.Clusters(); cl++ {
		ids := s.Allocated(topology.ClusterID(cl))
		if len(ids) != 4 {
			t.Fatalf("cluster %d got %d wavelengths, want 4 (Table 3-3)", cl, len(ids))
		}
		for _, id := range ids {
			if prev, dup := seen[id]; dup {
				t.Fatalf("wavelength %v assigned to clusters %d and %d", id, prev, cl)
			}
			seen[id] = cl
		}
	}
	if len(seen) != 64 {
		t.Fatalf("partition covers %d wavelengths, want 64", len(seen))
	}
	// Firefly always transmits on the full channel.
	use := s.SelectForPacket(3, 9)
	if len(use) != 4 {
		t.Fatalf("SelectForPacket returned %d wavelengths, want the full channel (4)", len(use))
	}
}

func TestStaticAllocatorValidation(t *testing.T) {
	topo := topology.Default()
	bundle := mustBundle(t, 64)
	if _, err := NewStatic(topo, bundle, 8); err == nil {
		t.Error("budget below cluster count accepted")
	}
	if _, err := NewStatic(topo, bundle, 63); err == nil {
		t.Error("non-divisible budget accepted")
	}
}

// txRig assembles a transmit engine for cluster 0 and a receive engine for
// cluster 1, with direct access to the ports.
type txRig struct {
	tx      *TX
	txPort  *router.Port
	rxPort  *router.Port
	rx      *RX
	ledger  *photonic.Ledger
	occ     int64
	dropped []*packet.Packet
}

func newTXRig(t *testing.T, gating GatingMode, rxVCs int) *txRig {
	t.Helper()
	topo := topology.Default()
	bundle := mustBundle(t, 64)
	rig := &txRig{ledger: photonic.NewLedger(photonic.DefaultEnergyParams())}
	rig.ledger.StartMeasurement()

	var err error
	rig.txPort, err = router.NewPort(16, 64, rig.ledger, &rig.occ)
	if err != nil {
		t.Fatal(err)
	}
	rig.rxPort, err = router.NewPort(rxVCs, 64, rig.ledger, &rig.occ)
	if err != nil {
		t.Fatal(err)
	}

	alloc, err := NewStatic(topo, bundle, 64)
	if err != nil {
		t.Fatal(err)
	}
	rxs := make([]*RX, topo.Clusters())
	for cl := range rxs {
		if cl == 1 {
			rxs[cl] = NewRX(1, rig.rxPort, bundle, rig.ledger)
			continue
		}
		port, err := router.NewPort(2, 64, rig.ledger, &rig.occ)
		if err != nil {
			t.Fatal(err)
		}
		rxs[cl] = NewRX(topology.ClusterID(cl), port, bundle, rig.ledger)
	}
	rig.rx = rxs[1]

	rig.tx, err = NewTX(TXConfig{
		Cluster:           0,
		Clusters:          topo.Clusters(),
		MaxFlits:          64,
		Bundle:            bundle,
		Gating:            gating,
		ClockHz:           2.5e9,
		PropagationCycles: 1,
	}, rig.txPort, alloc, rxs, rig.ledger, func(p *packet.Packet, _ sim.Cycle) {
		rig.dropped = append(rig.dropped, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func (rig *txRig) enqueuePacket(t *testing.T, id packet.ID, flits int, now sim.Cycle) {
	t.Helper()
	pkt := &packet.Packet{ID: id, Flits: flits, FlitBits: 32, SrcCluster: 0, DstCluster: 1}
	vc, ok := rig.txPort.AllocVC(pkt.ID)
	if !ok {
		t.Fatal("no free TX VC")
	}
	for i := 0; i < flits; i++ {
		if err := rig.txPort.Enqueue(vc, packet.FlitAt(pkt, i), now); err != nil {
			t.Fatal(err)
		}
	}
}

func (rig *txRig) run(t *testing.T, from, to sim.Cycle) {
	t.Helper()
	for now := from; now < to; now++ {
		if err := rig.tx.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTXDeliversPacket: a packet streams across the channel and lands in
// the destination's photonic input port, in order.
func TestTXDeliversPacket(t *testing.T) {
	rig := newTXRig(t, GateChannel, 16)
	rig.enqueuePacket(t, 1, 8, 0)
	rig.run(t, 0, 60)

	if got := rig.rxPort.BufferedFlits(); got != 8 {
		t.Fatalf("destination holds %d flits, want 8", got)
	}
	if rig.tx.PacketsSent() != 1 {
		t.Fatalf("PacketsSent = %d, want 1", rig.tx.PacketsSent())
	}
	for i := 0; i < 8; i++ {
		fl, err := rig.rxPort.Pop(0)
		if err != nil {
			t.Fatal(err)
		}
		if fl.Seq != i {
			t.Fatalf("flit %d arrived with seq %d", i, fl.Seq)
		}
	}
}

// TestTXStreamingRate: a 4-wavelength channel carries 20 bits per cycle,
// so a 64x32 b packet takes ~103 cycles of streaming. Check the total
// transfer time is consistent with the §3.4.1.1 serialization model.
func TestTXStreamingRate(t *testing.T) {
	rig := newTXRig(t, GateChannel, 16)
	rig.enqueuePacket(t, 1, 64, 0)

	done := sim.Cycle(-1)
	for now := sim.Cycle(0); now < 400; now++ {
		if err := rig.tx.Tick(now); err != nil {
			t.Fatal(err)
		}
		if rig.rxPort.BufferedFlits() == 64 && done < 0 {
			done = now
		}
	}
	if done < 0 {
		t.Fatal("packet never completed")
	}
	// 2048 bits / 20 bits-per-cycle = 102.4 cycles of streaming, plus
	// pipeline delay, reservation (1 cycle) and propagation (1 cycle).
	if done < 102 || done > 115 {
		t.Fatalf("64-flit packet completed at cycle %d, want ~105 (20 b/cycle channel)", done)
	}
}

// TestTXPipelinedReservation: with two packets queued, the second's
// reservation overlaps the first's streaming, so the channel switches
// nearly back-to-back instead of paying the reservation latency between
// packets.
func TestTXPipelinedReservation(t *testing.T) {
	rig := newTXRig(t, GateChannel, 16)
	rig.enqueuePacket(t, 1, 8, 0)
	rig.enqueuePacket(t, 2, 8, 0)

	firstDone, secondDone := sim.Cycle(-1), sim.Cycle(-1)
	for now := sim.Cycle(0); now < 200; now++ {
		if err := rig.tx.Tick(now); err != nil {
			t.Fatal(err)
		}
		if rig.rxPort.BufferedFlits() >= 8 && firstDone < 0 {
			firstDone = now
		}
		if rig.rxPort.BufferedFlits() == 16 && secondDone < 0 {
			secondDone = now
		}
	}
	if firstDone < 0 || secondDone < 0 {
		t.Fatal("packets did not complete")
	}
	// 8 flits x 32 b = 256 bits at 20 b/cycle = 12.8 cycles of streaming.
	// With the reservation pipelined, the gap between completions must be
	// close to the pure streaming time, not streaming + reservation +
	// propagation + rescan.
	gap := secondDone - firstDone
	if gap > 15 {
		t.Fatalf("second packet finished %d cycles after the first; reservation not pipelined", gap)
	}
	if rig.tx.Reservations() != 2 {
		t.Fatalf("Reservations = %d, want 2", rig.tx.Reservations())
	}
}

// TestTXSerializedReservation: with pipelining disabled (the ablation
// mode), the second packet's reservation starts only after the first
// packet finishes, so the completion gap includes the reservation and
// propagation latency.
func TestTXSerializedReservation(t *testing.T) {
	measureGap := func(disable bool) sim.Cycle {
		topo := topology.Default()
		bundle := mustBundle(t, 64)
		rig := &txRig{ledger: photonic.NewLedger(photonic.DefaultEnergyParams())}
		var err error
		rig.txPort, err = router.NewPort(16, 64, rig.ledger, &rig.occ)
		if err != nil {
			t.Fatal(err)
		}
		rig.rxPort, err = router.NewPort(16, 64, rig.ledger, &rig.occ)
		if err != nil {
			t.Fatal(err)
		}
		alloc, err := NewStatic(topo, bundle, 64)
		if err != nil {
			t.Fatal(err)
		}
		rxs := make([]*RX, topo.Clusters())
		for cl := range rxs {
			rxs[cl] = NewRX(topology.ClusterID(cl), rig.rxPort, bundle, rig.ledger)
		}
		rig.tx, err = NewTX(TXConfig{
			Cluster: 0, Clusters: topo.Clusters(), MaxFlits: 64, Bundle: bundle,
			Gating: GateChannel, ClockHz: 2.5e9, PropagationCycles: 1,
			DisablePipelining: disable,
		}, rig.txPort, alloc, rxs, rig.ledger, nil)
		if err != nil {
			t.Fatal(err)
		}
		rig.enqueuePacket(t, 1, 8, 0)
		rig.enqueuePacket(t, 2, 8, 0)

		firstDone, secondDone := sim.Cycle(-1), sim.Cycle(-1)
		for now := sim.Cycle(0); now < 300; now++ {
			if err := rig.tx.Tick(now); err != nil {
				t.Fatal(err)
			}
			if rig.rxPort.BufferedFlits() >= 8 && firstDone < 0 {
				firstDone = now
			}
			if rig.rxPort.BufferedFlits() == 16 && secondDone < 0 {
				secondDone = now
			}
		}
		if firstDone < 0 || secondDone < 0 {
			t.Fatal("packets did not complete")
		}
		return secondDone - firstDone
	}

	pipelined := measureGap(false)
	serialized := measureGap(true)
	if serialized <= pipelined {
		t.Fatalf("serialized gap (%d) not above pipelined gap (%d)", serialized, pipelined)
	}
}

// TestRXDropWhenNoVC: with a single receive VC held by an undrained
// packet, a second transfer is dropped and the drop handler fires (§1.4).
func TestRXDropWhenNoVC(t *testing.T) {
	rig := newTXRig(t, GateChannel, 1)
	rig.enqueuePacket(t, 1, 8, 0)
	rig.run(t, 0, 60) // first packet occupies the only RX VC (not drained)

	rig.enqueuePacket(t, 2, 8, 60)
	rig.run(t, 60, 140)

	if len(rig.dropped) != 1 {
		t.Fatalf("%d packets dropped, want 1", len(rig.dropped))
	}
	if rig.dropped[0].ID != 2 {
		t.Fatalf("dropped packet %d, want 2", rig.dropped[0].ID)
	}
	if rig.rx.PacketsDropped() != 1 {
		t.Fatalf("RX counted %d drops", rig.rx.PacketsDropped())
	}
	if rig.rx.FlitsDiscarded() != 8 {
		t.Fatalf("RX discarded %d flits, want 8", rig.rx.FlitsDiscarded())
	}
	// The channel time was still spent.
	if rig.tx.PacketsSent() != 2 {
		t.Fatalf("PacketsSent = %d, want 2 (drops still occupy the channel)", rig.tx.PacketsSent())
	}
}

// TestDetectorGating: demodulators are powered only within the receive
// window, and the gating mode controls how many.
func TestDetectorGating(t *testing.T) {
	for _, tt := range []struct {
		gating GatingMode
		want   int
	}{
		{GateChannel, 4},  // Firefly: the channel's full wavelength set
		{GateSelected, 4}, // static allocator selects all 4 anyway
	} {
		rig := newTXRig(t, tt.gating, 16)
		rig.enqueuePacket(t, 1, 64, 0)

		maxPowered := 0
		for now := sim.Cycle(0); now < 200; now++ {
			if err := rig.tx.Tick(now); err != nil {
				t.Fatal(err)
			}
			if n := rig.rx.Detectors().PoweredCount(); n > maxPowered {
				maxPowered = n
			}
		}
		if maxPowered != tt.want {
			t.Fatalf("gating %v: max powered detectors = %d, want %d", tt.gating, maxPowered, tt.want)
		}
		if got := rig.rx.Detectors().PoweredCount(); got != 0 {
			t.Fatalf("gating %v: %d detectors left powered after the window", tt.gating, got)
		}
	}
}

func TestTXConfigValidation(t *testing.T) {
	bundle := mustBundle(t, 64)
	ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
	var occ int64
	port, err := router.NewPort(1, 1, ledger, &occ)
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Default()
	alloc, err := NewStatic(topo, bundle, 64)
	if err != nil {
		t.Fatal(err)
	}
	rxs := make([]*RX, 16)
	for i := range rxs {
		rxs[i] = NewRX(topology.ClusterID(i), port, bundle, ledger)
	}

	bad := []TXConfig{
		{Cluster: 0, Clusters: 0, MaxFlits: 64, Bundle: bundle, Gating: GateChannel, ClockHz: 2.5e9},
		{Cluster: 0, Clusters: 16, MaxFlits: 0, Bundle: bundle, Gating: GateChannel, ClockHz: 2.5e9},
		{Cluster: 0, Clusters: 16, MaxFlits: 64, Bundle: bundle, Gating: 0, ClockHz: 2.5e9},
		{Cluster: 0, Clusters: 16, MaxFlits: 64, Bundle: bundle, Gating: GateChannel, ClockHz: 0},
		{Cluster: 0, Clusters: 16, MaxFlits: 64, Bundle: bundle, Gating: GateChannel, ClockHz: 2.5e9, PropagationCycles: -1},
	}
	for i, cfg := range bad {
		if _, err := NewTX(cfg, port, alloc, rxs, ledger, nil); err == nil {
			t.Errorf("bad TX config %d accepted", i)
		}
	}
	if _, err := NewTX(TXConfig{Cluster: 0, Clusters: 16, MaxFlits: 64, Bundle: bundle,
		Gating: GateChannel, ClockHz: 2.5e9}, port, alloc, rxs[:3], ledger, nil); err == nil {
		t.Error("short RX slice accepted")
	}
}
