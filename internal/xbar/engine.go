package xbar

import (
	"fmt"
	"math/bits"

	"hetpnoc/internal/event"
	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// GatingMode selects which demodulators the destination powers for the
// duration of a packet.
type GatingMode int

// Gating modes.
const (
	// GateChannel powers the source channel's full wavelength set, as in
	// Firefly: "all the wavelengths are turned on for all transmissions
	// irrespective of the required data rate" (§3.3.1).
	GateChannel GatingMode = iota + 1

	// GateSelected powers only the wavelengths named in the reservation
	// flit, the d-HetPNoC behaviour.
	GateSelected
)

// DropHandler is notified when a packet is dropped at the receive side
// because no virtual channel was free; the fabric schedules the source's
// retransmission (§1.4).
type DropHandler func(p *packet.Packet, now sim.Cycle)

// RX is the receive side of one cluster's photonic router: the detector
// bank and the photonic input port feeding the router's ejection paths.
type RX struct {
	cluster   topology.ClusterID
	port      *router.Port
	detectors *photonic.DetectorBank
	ledger    *photonic.Ledger

	// counters
	packetsDropped int64
	flitsDiscarded int64

	// free recycles closed Window structs so steady-state streaming
	// allocates nothing per packet.
	free []*Window //hetpnoc:nosnap allocation free-list; its windows are closed, dead state
}

// NewRX builds the receive engine for cluster, delivering into port (the
// photonic input port of the cluster's photonic router).
func NewRX(cluster topology.ClusterID, port *router.Port, bundle photonic.WaveguideBundle, ledger *photonic.Ledger) *RX {
	return &RX{
		cluster:   cluster,
		port:      port,
		detectors: photonic.NewDetectorBank(bundle),
		ledger:    ledger,
	}
}

// PacketsDropped returns the number of packets dropped for lack of a free
// VC at this receiver.
func (rx *RX) PacketsDropped() int64 { return rx.packetsDropped }

// FlitsDiscarded returns the flits thrown away for dropped packets.
func (rx *RX) FlitsDiscarded() int64 { return rx.flitsDiscarded }

// Detectors exposes the detector bank (tests and energy accounting).
func (rx *RX) Detectors() *photonic.DetectorBank { return rx.detectors }

// Window is an open receive reservation: the destination has gated its
// demodulators and, unless dropped, holds a VC for the incoming packet.
type Window struct {
	rx      *RX
	pkt     *packet.Packet
	vc      int
	power   []photonic.WavelengthID
	dropped bool
}

// Dropped reports whether the packet was refused for lack of a free VC.
func (w *Window) Dropped() bool { return w.dropped }

// Begin opens a receive window: the destination gates the demodulators for
// power and, when a VC is free, holds it for the incoming packet. When
// every VC of the photonic input port is busy, the window is marked
// dropped: the transfer still occupies the channel (the source cannot
// know), but the flits are discarded and the source must retransmit.
// Exported so other inter-cluster transports (the torus baseline) can
// reuse the receive engine.
func (rx *RX) Begin(p *packet.Packet, power []photonic.WavelengthID) *Window {
	var w *Window
	if n := len(rx.free); n > 0 {
		w, rx.free[n-1] = rx.free[n-1], nil
		rx.free = rx.free[:n-1]
		*w = Window{rx: rx, pkt: p, power: power}
	} else {
		//hetpnoc:coldcall free-list miss; windows recycle via Release, so warm streaming never allocates
		w = newWindow(rx, p, power)
	}
	vc, ok := rx.port.AllocVC(p.ID)
	if !ok {
		w.dropped = true
		rx.packetsDropped++
	} else {
		w.vc = vc
	}
	rx.detectors.Power(power, true)
	return w
}

// newWindow is Begin's allocation fallback for a drained free list; once
// the first few windows cycle through Release, Begin always recycles.
//
//hetpnoc:coldcall free-list-miss fallback, cold after warm-up
//go:noinline
func newWindow(rx *RX, p *packet.Packet, power []photonic.WavelengthID) *Window {
	return &Window{rx: rx, pkt: p, power: power}
}

// Deliver accepts one flit off the channel into the window.
func (w *Window) Deliver(f packet.Flit, now sim.Cycle) error {
	w.rx.ledger.AddDemodulation(float64(f.Bits()))
	if w.dropped {
		w.rx.flitsDiscarded++
		return nil
	}
	return w.rx.port.Enqueue(w.vc, f, now)
}

// End closes the window, un-gating the demodulators. If the packet was
// dropped the VC was never held; otherwise the VC drains through the
// router and frees itself when the tail departs.
func (w *Window) End() {
	w.rx.detectors.Power(w.power, false)
}

// HoldCost charges one cycle of powered demodulator rows.
func (w *Window) HoldCost() {
	w.rx.ledger.AddIdleDetector(float64(len(w.power)))
}

// Release returns an ended window to its receiver's free list. The
// caller must drop every reference first: the receiver's next Begin may
// hand the same struct out again.
func (w *Window) Release() {
	rx := w.rx
	*w = Window{}
	rx.free = append(rx.free, w)
}

// pending is a reservation in flight for the next packet: broadcast on the
// reservation waveguide while the current packet is still streaming, so the
// channel can switch packets back-to-back (the reservation channel and the
// data channel are separate waveguides).
type pending struct {
	pkt     *packet.Packet
	vc      int
	use     []photonic.WavelengthID
	resLeft int
	window  *Window
}

// TXConfig carries the static parameters of a transmit engine.
type TXConfig struct {
	Cluster  topology.ClusterID
	Clusters int
	// MaxFlits sizes the packet-length field of the reservation flit.
	MaxFlits int
	Bundle   photonic.WaveguideBundle
	Gating   GatingMode
	ClockHz  float64
	// PropagationCycles is the light-propagation latency added to every
	// reservation (1 cycle across the 20 mm die).
	PropagationCycles int

	// DisablePipelining serializes reservations behind data transfers
	// (the next packet's reservation starts only after the current
	// packet finishes). Only used by the ablation study; real R-SWMR
	// overlaps them since the waveguides are separate.
	DisablePipelining bool

	// Events, when non-nil, receives protocol events.
	Events *event.Log
}

// TX is the transmit side of one cluster's write channel: it drains the
// photonic router's transmit port, broadcasts reservations on the
// cluster's dedicated reservation waveguide, and serializes flits onto the
// allocated data wavelengths.
type TX struct {
	cfg    TXConfig
	port   *router.Port
	alloc  Allocator
	rxs    []*RX
	ledger *photonic.Ledger
	onDrop DropHandler

	// current transfer being streamed, if any.
	vcIdx   int
	current *packet.Packet
	use     []photonic.WavelengthID
	window  *Window
	credit  float64

	// next reservation in flight, if any; spare recycles the struct so
	// admitting a packet allocates nothing in steady state.
	next  *pending
	spare *pending //hetpnoc:nosnap allocation recycling slot; holds only a dead reservation struct

	rr int

	packetsSent  int64
	reservations int64
	busyCycles   int64
}

// NewTX builds the transmit engine draining port. rxs must be indexed by
// cluster; onDrop may be nil.
func NewTX(cfg TXConfig, port *router.Port, alloc Allocator, rxs []*RX, ledger *photonic.Ledger, onDrop DropHandler) (*TX, error) {
	if cfg.Clusters <= 0 || cfg.MaxFlits <= 0 || cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("xbar: TX config for cluster %d has non-positive parameters", cfg.Cluster)
	}
	if cfg.Gating != GateChannel && cfg.Gating != GateSelected {
		return nil, fmt.Errorf("xbar: TX config for cluster %d has invalid gating mode", cfg.Cluster)
	}
	if len(rxs) != cfg.Clusters {
		return nil, fmt.Errorf("xbar: TX for cluster %d given %d receivers for %d clusters", cfg.Cluster, len(rxs), cfg.Clusters)
	}
	if cfg.PropagationCycles < 0 {
		return nil, fmt.Errorf("xbar: negative propagation latency")
	}
	return &TX{cfg: cfg, port: port, alloc: alloc, rxs: rxs, ledger: ledger, onDrop: onDrop}, nil
}

// PacketsSent returns completed channel transfers (including ones dropped
// at the receiver — the channel time was spent either way).
func (tx *TX) PacketsSent() int64 { return tx.packetsSent }

// Reservations returns the number of reservation flits broadcast.
func (tx *TX) Reservations() int64 { return tx.reservations }

// BusyCycles returns cycles the channel spent reserving or streaming.
func (tx *TX) BusyCycles() int64 { return tx.busyCycles }

// Busy reports whether the engine has any work: a packet streaming, a
// reservation in flight, or flits waiting in the transmit port. When it
// is false, Tick is a no-op and the fabric may skip the engine entirely.
func (tx *TX) Busy() bool {
	return tx.current != nil || tx.next != nil || tx.port.BufferedFlits() > 0
}

// Tick advances the engine one cycle. Reservation and data transfer use
// separate waveguides, so the next packet's reservation broadcasts while
// the current packet streams — the channel switches packets back-to-back
// once the pipeline is warm.
//
//hetpnoc:hotpath
func (tx *TX) Tick(now sim.Cycle) error {
	// Advance the in-flight reservation.
	if tx.next != nil && tx.next.window == nil {
		tx.next.resLeft--
		if tx.next.resLeft <= 0 {
			power := tx.next.use
			if tx.cfg.Gating == GateChannel {
				power = tx.alloc.Allocated(tx.cfg.Cluster)
			}
			tx.next.window = tx.rxs[tx.next.pkt.DstCluster].Begin(tx.next.pkt, power)
		}
	}

	// Promote a completed reservation onto the idle data channel.
	if tx.current == nil && tx.next != nil && tx.next.window != nil {
		tx.current = tx.next.pkt
		tx.vcIdx = tx.next.vc
		tx.use = tx.next.use
		tx.window = tx.next.window
		tx.credit = 0
		tx.next, tx.spare = nil, tx.next
		*tx.spare = pending{}
		tx.cfg.Events.AppendInts(now, event.StreamStarted, int(tx.cfg.Cluster), int64(tx.current.ID),
			"to cluster %d on %d wavelengths", int64(tx.current.DstCluster), int64(len(tx.use)))
	}

	// Stream the current packet.
	if tx.current != nil {
		tx.busyCycles++
		if err := tx.stream(now); err != nil {
			return err
		}
	} else if tx.next != nil {
		tx.busyCycles++
	}

	// A pending window that has not been promoted yet still holds its
	// destination demodulators powered.
	if tx.next != nil && tx.next.window != nil {
		tx.next.window.HoldCost()
	}

	// Admit the next reservation (only once the channel is idle when the
	// ablation study disables reservation pipelining).
	if tx.next == nil && (!tx.cfg.DisablePipelining || tx.current == nil) {
		tx.admitNext(now)
	}
	return nil
}

// admitNext scans the transmit VCs round-robin for a ready packet header
// (other than the one currently streaming), selects its wavelengths and
// begins its reservation broadcast.
//
//hetpnoc:hotpath
func (tx *TX) admitNext(now sim.Cycle) {
	// Visit occupied VCs in the reference round-robin order — positions
	// tx.rr..n-1, then 0..tx.rr-1 — jumping over empty ones with the
	// occupancy bitmask (reference visits of empty VCs have no effect).
	m := tx.port.OccupiedMask()
	if tx.current != nil {
		m &^= 1 << uint(tx.vcIdx)
	}
	hi := m & (^uint64(0) << uint(tx.rr))
	for _, part := range [2]uint64{hi, m &^ hi} {
		for w := part; w != 0; w &= w - 1 {
			vc := bits.TrailingZeros64(w)
			enq, isHdr, ok := tx.port.HeadMeta(vc)
			if !ok || !isHdr || now-enq < router.PipelineDelay {
				continue
			}
			flit, _, _ := tx.port.Head(vc)
			tx.rr = (vc + 1) % tx.port.VCCount()
			use := tx.alloc.SelectForPacket(tx.cfg.Cluster, flit.Packet.DstCluster)

			// Size and charge the reservation flit. d-HetPNoC piggybacks
			// the wavelength identifiers (§3.4.1.1); Firefly's static
			// channels need none.
			ids := 0
			if tx.cfg.Gating == GateSelected {
				ids = len(use)
			}
			cycles := packet.ReservationCycles(tx.cfg.Clusters, tx.cfg.MaxFlits, tx.cfg.Bundle, ids, tx.cfg.ClockHz)
			resBits := float64(packet.ReservationBits(tx.cfg.Clusters, tx.cfg.MaxFlits, tx.cfg.Bundle, ids))
			tx.ledger.AddControlTransmit(resBits)
			// Every listening cluster decodes the destination-ID field of
			// the broadcast; only the addressed destination demodulates
			// the rest (R-SWMR reservation broadcast, §2.2.1).
			idBits := float64(packet.DestinationIDBits(tx.cfg.Clusters))
			tx.ledger.AddDemodulation(idBits*float64(tx.cfg.Clusters-1) + resBits)

			np := tx.spare
			if np == nil {
				//hetpnoc:coldcall spare-miss fallback: one pending struct per TX recycles forever after
				np = newPending()
			} else {
				tx.spare = nil
			}
			*np = pending{
				pkt:     flit.Packet,
				vc:      vc,
				use:     use,
				resLeft: cycles + tx.cfg.PropagationCycles,
			}
			tx.next = np
			tx.reservations++
			tx.cfg.Events.AppendInts(now, event.ReservationSent, int(tx.cfg.Cluster), int64(flit.Packet.ID),
				"to cluster %d, %d ids, %d cycles", int64(flit.Packet.DstCluster), int64(ids), int64(cycles))
			return
		}
	}
}

// newPending is admitNext's allocation fallback when the recycling slot
// is empty — at most once per TX in steady state.
//
//hetpnoc:coldcall spare-miss fallback, at most one live reservation per TX
//go:noinline
func newPending() *pending { return new(pending) }

// stream moves flits of the current packet onto the channel as bandwidth
// credit accrues: k allocated wavelengths earn k x (rate/clock) bits per
// cycle (5 bits per wavelength at the thesis's operating point).
func (tx *TX) stream(now sim.Cycle) error {
	perCycle := photonic.BitsPerCycle(tx.cfg.ClockHz) * float64(len(tx.use))
	flitBits := float64(tx.current.FlitBits)
	tx.credit += perCycle
	// Idle light slots are lost: credit cannot bank more than one cycle
	// of bandwidth beyond a flit boundary.
	if maxCredit := flitBits + perCycle; tx.credit > maxCredit {
		tx.credit = maxCredit
	}
	tx.window.HoldCost()

	for tx.credit >= flitBits {
		enq, _, ok := tx.port.HeadMeta(tx.vcIdx)
		if !ok || now-enq < router.PipelineDelay {
			return nil // channel stalls waiting for flits from the electrical side
		}
		if id := tx.port.Owner(tx.vcIdx); id != tx.current.ID {
			return fmt.Errorf("xbar: cluster %d TX VC %d interleaved packet %d into packet %d",
				tx.cfg.Cluster, tx.vcIdx, id, tx.current.ID)
		}
		popped, err := tx.port.Pop(tx.vcIdx)
		if err != nil {
			return err
		}
		tx.credit -= flitBits
		tx.ledger.AddPhotonicTransmit(flitBits)
		if err := tx.window.Deliver(popped, now); err != nil {
			return err
		}
		if popped.Type.IsTail() {
			tx.finish(now)
			return nil
		}
	}
	return nil
}

// finish closes the transfer: detectors off, drop notification if the
// receiver had refused the packet, channel back to idle.
func (tx *TX) finish(now sim.Cycle) {
	tx.window.End()
	tx.packetsSent++
	if tx.window.dropped {
		tx.cfg.Events.AppendInts(now, event.PacketDropped, int(tx.current.DstCluster), int64(tx.current.ID),
			"from cluster %d, attempt %d", int64(tx.cfg.Cluster), int64(tx.current.Attempt))
		if tx.onDrop != nil {
			tx.onDrop(tx.current, now)
		}
	} else {
		tx.cfg.Events.AppendInts(now, event.PacketArrived, int(tx.current.DstCluster), int64(tx.current.ID),
			"from cluster %d", int64(tx.cfg.Cluster))
	}
	tx.window.Release()
	tx.window = nil
	tx.current = nil
	tx.use = nil
}
