package xbar

import (
	"testing"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// narrowAllocator owns 8 wavelengths per cluster but selects only 2 for
// every packet — the d-HetPNoC situation where the demand toward a
// destination is below the channel's allocation.
type narrowAllocator struct {
	inner  *Static
	narrow int
}

var _ Allocator = (*narrowAllocator)(nil)

func (n *narrowAllocator) Name() string                     { return "narrow" }
func (n *narrowAllocator) Tick(sim.Cycle)                   {}
func (n *narrowAllocator) SetDemand(topology.CoreID, []int) {}
func (n *narrowAllocator) Allocated(c topology.ClusterID) []photonic.WavelengthID {
	return n.inner.Allocated(c)
}
func (n *narrowAllocator) SelectForPacket(src, dst topology.ClusterID) []photonic.WavelengthID {
	return n.inner.Allocated(src)[:n.narrow]
}

// TestSelectiveGatingPowersFewerDetectors: with GateSelected (d-HetPNoC)
// the destination powers only the selected wavelengths; with GateChannel
// (Firefly) it powers the source channel's full set — the §3.3.1 energy
// asymmetry.
func TestSelectiveGatingPowersFewerDetectors(t *testing.T) {
	measure := func(gating GatingMode) int {
		topo := topology.Default()
		bundle := mustBundle(t, 128) // 8 wavelengths per cluster
		ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
		var occ int64
		txPort, err := router.NewPort(16, 64, ledger, &occ)
		if err != nil {
			t.Fatal(err)
		}
		rxPort, err := router.NewPort(16, 64, ledger, &occ)
		if err != nil {
			t.Fatal(err)
		}
		static, err := NewStatic(topo, bundle, 128)
		if err != nil {
			t.Fatal(err)
		}
		alloc := &narrowAllocator{inner: static, narrow: 2}
		rxs := make([]*RX, topo.Clusters())
		for cl := range rxs {
			rxs[cl] = NewRX(topology.ClusterID(cl), rxPort, bundle, ledger)
		}
		tx, err := NewTX(TXConfig{
			Cluster: 0, Clusters: topo.Clusters(), MaxFlits: 64, Bundle: bundle,
			Gating: gating, ClockHz: 2.5e9, PropagationCycles: 1,
		}, txPort, alloc, rxs, ledger, nil)
		if err != nil {
			t.Fatal(err)
		}

		pkt := &packet.Packet{ID: 1, Flits: 32, FlitBits: 32, SrcCluster: 0, DstCluster: 1}
		vc, ok := txPort.AllocVC(pkt.ID)
		if !ok {
			t.Fatal("no VC")
		}
		for i := 0; i < pkt.Flits; i++ {
			if err := txPort.Enqueue(vc, packet.FlitAt(pkt, i), 0); err != nil {
				t.Fatal(err)
			}
		}
		maxPowered := 0
		for now := sim.Cycle(0); now < 300; now++ {
			if err := tx.Tick(now); err != nil {
				t.Fatal(err)
			}
			if n := rxs[1].Detectors().PoweredCount(); n > maxPowered {
				maxPowered = n
			}
		}
		return maxPowered
	}

	selected := measure(GateSelected)
	channel := measure(GateChannel)
	if selected != 2 {
		t.Fatalf("selective gating powered %d detectors, want the 2 selected", selected)
	}
	if channel != 8 {
		t.Fatalf("channel gating powered %d detectors, want the full 8-wavelength channel", channel)
	}
}
