package xbar

import (
	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
)

// WindowSnapshot is a checkpoint of one open receive window. The
// wavelength list is shared with the live window: allocation ID caches
// are replaced, never mutated in place, so the captured view stays
// valid. The packet pointer is restored by content elsewhere (the fabric
// checkpoint's packet capture).
type WindowSnapshot struct {
	cluster int
	pkt     *packet.Packet
	vc      int
	power   []photonic.WavelengthID
	dropped bool
}

// Snapshot captures the window's state; a nil window snapshots to nil.
func (w *Window) Snapshot() *WindowSnapshot {
	if w == nil {
		return nil
	}
	return &WindowSnapshot{
		cluster: int(w.rx.cluster),
		pkt:     w.pkt,
		vc:      w.vc,
		power:   w.power,
		dropped: w.dropped,
	}
}

// RestoreWindow materializes a window from a snapshot against the given
// per-cluster receive engines (nil for a nil snapshot). The detector
// gating the window implies is restored separately via the RX snapshot.
func RestoreWindow(s *WindowSnapshot, rxs []*RX) *Window {
	if s == nil {
		return nil
	}
	return &Window{
		rx:      rxs[s.cluster],
		pkt:     s.pkt,
		vc:      s.vc,
		power:   s.power,
		dropped: s.dropped,
	}
}

// RXSnapshot is a checkpoint of a receive engine: its drop counters and
// the detector bank's gating state.
type RXSnapshot struct {
	packetsDropped int64
	flitsDiscarded int64
	detectors      *photonic.DetectorBankSnapshot
}

// Snapshot copies the receiver's mutable state.
func (rx *RX) Snapshot() *RXSnapshot {
	return &RXSnapshot{
		packetsDropped: rx.packetsDropped,
		flitsDiscarded: rx.flitsDiscarded,
		detectors:      rx.detectors.Snapshot(),
	}
}

// Restore rewinds the receiver to a snapshot.
func (rx *RX) Restore(s *RXSnapshot) {
	rx.packetsDropped = s.packetsDropped
	rx.flitsDiscarded = s.flitsDiscarded
	rx.detectors.Restore(s.detectors)
}

// pendingSnapshot is a checkpoint of an in-flight reservation.
type pendingSnapshot struct {
	pkt     *packet.Packet
	vc      int
	use     []photonic.WavelengthID
	resLeft int
	window  *WindowSnapshot
}

// TXSnapshot is a checkpoint of a transmit engine: the streaming
// transfer, the in-flight reservation, and the counters.
type TXSnapshot struct {
	vcIdx   int
	current *packet.Packet
	use     []photonic.WavelengthID
	window  *WindowSnapshot
	credit  float64
	next    *pendingSnapshot
	rr      int

	packetsSent  int64
	reservations int64
	busyCycles   int64
}

// Snapshot copies the engine's mutable state.
func (tx *TX) Snapshot() *TXSnapshot {
	s := &TXSnapshot{
		vcIdx:        tx.vcIdx,
		current:      tx.current,
		use:          tx.use,
		window:       tx.window.Snapshot(),
		credit:       tx.credit,
		rr:           tx.rr,
		packetsSent:  tx.packetsSent,
		reservations: tx.reservations,
		busyCycles:   tx.busyCycles,
	}
	if tx.next != nil {
		s.next = &pendingSnapshot{
			pkt:     tx.next.pkt,
			vc:      tx.next.vc,
			use:     tx.next.use,
			resLeft: tx.next.resLeft,
			window:  tx.next.window.Snapshot(),
		}
	}
	return s
}

// Restore rewinds the engine to a snapshot, leaving the snapshot intact
// for repeated restores.
func (tx *TX) Restore(s *TXSnapshot) {
	tx.vcIdx = s.vcIdx
	tx.current = s.current
	tx.use = s.use
	tx.window = RestoreWindow(s.window, tx.rxs)
	tx.credit = s.credit
	tx.next = nil
	if s.next != nil {
		tx.next = &pending{
			pkt:     s.next.pkt,
			vc:      s.next.vc,
			use:     s.next.use,
			resLeft: s.next.resLeft,
			window:  RestoreWindow(s.next.window, tx.rxs),
		}
	}
	tx.rr = s.rr
	tx.packetsSent = s.packetsSent
	tx.reservations = s.reservations
	tx.busyCycles = s.busyCycles
}

// Packets appends the packets the engine holds references to (the
// streaming transfer and the reserved next packet) to dst, for the
// fabric checkpoint's packet capture.
func (tx *TX) Packets(dst []*packet.Packet) []*packet.Packet {
	if tx.current != nil {
		dst = append(dst, tx.current)
	}
	if tx.next != nil {
		dst = append(dst, tx.next.pkt)
	}
	return dst
}
