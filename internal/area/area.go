// Package area implements the analytic electro-optic device area model of
// §3.4.3 of the thesis (Equations 1 and 5-24): the modulator and detector
// counts of the dynamic (d-HetPNoC) and Firefly architectures and the
// resulting silicon area, assuming 5 um-radius micro-ring resonators [28].
//
// The model reproduces the thesis's headline numbers: with 64 data
// wavelengths and 16 photonic routers the total modulator/demodulator area
// is 1.608 mm^2 for d-HetPNoC versus 1.367 mm^2 for Firefly.
package area

import (
	"fmt"
	"math"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/units"
)

// Config holds the parameters of the area model.
type Config struct {
	// PhotonicRouters is N_PR, one per cluster (16 in the thesis).
	PhotonicRouters int

	// DataWavelengths is N_lambda, the total wavelengths provisioned for
	// data communication (64, 256 or 512 in the evaluation).
	DataWavelengths int

	// WavelengthsPerWaveguide is lambda_W, the DWDM density (64).
	WavelengthsPerWaveguide int

	// MRRRadiusMicron is the micro-ring radius (5 um).
	MRRRadiusMicron float64
}

// DefaultConfig returns the 64-core / 16-cluster configuration of the
// thesis with the given total data wavelengths.
func DefaultConfig(dataWavelengths int) Config {
	return Config{
		PhotonicRouters:         16,
		DataWavelengths:         dataWavelengths,
		WavelengthsPerWaveguide: photonic.MaxWavelengthsPerWaveguide,
		MRRRadiusMicron:         photonic.MRRRadiusMicron,
	}
}

// Validate reports an error for non-positive parameters.
func (c Config) Validate() error {
	if c.PhotonicRouters <= 0 {
		return fmt.Errorf("area: photonic routers must be positive, got %d", c.PhotonicRouters)
	}
	if c.DataWavelengths <= 0 {
		return fmt.Errorf("area: data wavelengths must be positive, got %d", c.DataWavelengths)
	}
	if c.WavelengthsPerWaveguide <= 0 {
		return fmt.Errorf("area: wavelengths per waveguide must be positive, got %d", c.WavelengthsPerWaveguide)
	}
	if c.MRRRadiusMicron <= 0 {
		return fmt.Errorf("area: MRR radius must be positive, got %g", c.MRRRadiusMicron)
	}
	return nil
}

// DataWaveguides returns N_WD = ceil(N_lambda / lambda_W), the number of
// data waveguides of the dynamic architecture.
func (c Config) DataWaveguides() int {
	return (c.DataWavelengths + c.WavelengthsPerWaveguide - 1) / c.WavelengthsPerWaveguide
}

// FireflyWavelengthsPerChannel returns N_Flambda = ceil(N_lambda / N_WF):
// in Firefly each photonic router writes a dedicated waveguide, so the
// per-channel wavelength count divides the same aggregate bandwidth
// uniformly (Eq. preceding Eq. 10).
func (c Config) FireflyWavelengthsPerChannel() int {
	return (c.DataWavelengths + c.PhotonicRouters - 1) / c.PhotonicRouters
}

// DynamicModulators returns T_MD (Eq. 9): data modulators (every router
// can modulate any wavelength of any data waveguide, Eq. 6) plus the
// reservation (Eq. 7) and token control (Eq. 8) waveguide modulators.
func (c Config) DynamicModulators() int {
	nPR := c.PhotonicRouters
	lambdaW := c.WavelengthsPerWaveguide
	data := nPR * lambdaW * c.DataWaveguides() // Eq. 6
	reservation := nPR * lambdaW               // Eq. 7
	control := nPR * lambdaW                   // Eq. 8
	return data + reservation + control
}

// FireflyModulators returns T_MF (Eq. 13): each router writes N_Flambda
// data channels on its dedicated waveguide (Eq. 11) plus a full-DWDM
// reservation waveguide (Eq. 12).
func (c Config) FireflyModulators() int {
	nPR := c.PhotonicRouters
	data := nPR * c.FireflyWavelengthsPerChannel() // Eq. 11
	reservation := nPR * c.WavelengthsPerWaveguide // Eq. 12
	return data + reservation
}

// DynamicDetectors returns T_DMD (Eq. 18): data detectors on every
// wavelength of every waveguide (Eq. 15), reservation detectors on every
// other router's reservation waveguide (Eq. 16), and the 64-wavelength
// token control waveguide (Eq. 17).
func (c Config) DynamicDetectors() int {
	nPR := c.PhotonicRouters
	lambdaW := c.WavelengthsPerWaveguide
	data := nPR * lambdaW * c.DataWaveguides()           // Eq. 15
	reservation := nPR * lambdaW * (nPR - 1)             // Eq. 16
	control := nPR * photonic.MaxWavelengthsPerWaveguide // Eq. 17
	return data + reservation + control
}

// FireflyDetectors returns T_DMF (Eq. 22): N_Flambda data detectors per
// foreign write channel (Eq. 20) plus reservation detectors (Eq. 21).
func (c Config) FireflyDetectors() int {
	nPR := c.PhotonicRouters
	data := nPR * c.FireflyWavelengthsPerChannel() * (nPR - 1) // Eq. 20
	reservation := nPR * c.WavelengthsPerWaveguide * (nPR - 1) // Eq. 21
	return data + reservation
}

// RestrictedDynamicModulators returns the modulator count of the
// waveguide-restricted d-HetPNoC variant the thesis proposes in its
// conclusion (Chapter 4): each photonic router only drives the
// wavelengths of `waveguides` waveguides (e.g. Waveguide(x) and
// Waveguide(x+1)), so the per-router data modulators shrink from
// lambda_W * N_WD to lambda_W * waveguides.
func (c Config) RestrictedDynamicModulators(waveguides int) int {
	if waveguides <= 0 || waveguides > c.DataWaveguides() {
		waveguides = c.DataWaveguides()
	}
	nPR := c.PhotonicRouters
	lambdaW := c.WavelengthsPerWaveguide
	data := nPR * lambdaW * waveguides
	reservation := nPR * lambdaW
	control := nPR * lambdaW
	return data + reservation + control
}

// RestrictedDynamicDetectors returns the detector count of the restricted
// variant. Read-side restriction is weaker: a destination must still be
// able to receive on any wavelength a source might use, so only the
// per-router write flexibility shrinks; detectors keep full coverage of
// the data waveguides (conservative — the thesis sketch does not resolve
// the read side).
func (c Config) RestrictedDynamicDetectors(int) int {
	return c.DynamicDetectors()
}

// RestrictedDynamicAreaMM2 returns the electro-optic area of the
// restricted variant.
func (c Config) RestrictedDynamicAreaMM2(waveguides int) units.SquareMillimeter {
	devices := float64(c.RestrictedDynamicModulators(waveguides) + c.RestrictedDynamicDetectors(waveguides))
	return units.SquareMillimeter(devices * c.mrrAreaSquareMicron() / 1e6)
}

// mrrAreaSquareMicron returns the footprint of one MRR device, pi*r^2.
func (c Config) mrrAreaSquareMicron() float64 {
	return math.Pi * c.MRRRadiusMicron * c.MRRRadiusMicron
}

// DynamicAreaMM2 returns A_D (Eq. 23), the total d-HetPNoC electro-optic
// device area in mm^2.
func (c Config) DynamicAreaMM2() units.SquareMillimeter {
	devices := float64(c.DynamicModulators() + c.DynamicDetectors())
	return units.SquareMillimeter(devices * c.mrrAreaSquareMicron() / 1e6)
}

// FireflyAreaMM2 returns A_F (Eq. 24), the total Firefly electro-optic
// device area in mm^2.
func (c Config) FireflyAreaMM2() units.SquareMillimeter {
	devices := float64(c.FireflyModulators() + c.FireflyDetectors())
	return units.SquareMillimeter(devices * c.mrrAreaSquareMicron() / 1e6)
}

// Point is one row of the Figure 3-6 comparison.
type Point struct {
	DataWavelengths int
	DynamicMM2      units.SquareMillimeter
	FireflyMM2      units.SquareMillimeter
	// OverheadPct is the d-HetPNoC area overhead over Firefly, percent.
	OverheadPct float64
}

// Sweep evaluates the model at each wavelength count, reproducing the
// Figure 3-6 series.
func Sweep(wavelengths []int) []Point {
	points := make([]Point, 0, len(wavelengths))
	for _, n := range wavelengths {
		cfg := DefaultConfig(n)
		d := cfg.DynamicAreaMM2()
		f := cfg.FireflyAreaMM2()
		points = append(points, Point{
			DataWavelengths: n,
			DynamicMM2:      d,
			FireflyMM2:      f,
			OverheadPct:     float64((d - f) / f * 100),
		})
	}
	return points
}
