package area

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperHeadlineAreas checks the thesis's §3.4.3 numbers exactly: with
// 64 data wavelengths and 16 photonic routers, "the total
// modulator/demodulator area for d-HetPNoC and Firefly are 1.608 mm2 and
// 1.367 mm2 respectively".
func TestPaperHeadlineAreas(t *testing.T) {
	cfg := DefaultConfig(64)
	if got := cfg.DynamicAreaMM2(); math.Abs(float64(got)-1.608) > 0.002 {
		t.Errorf("d-HetPNoC area = %.4f mm^2, thesis says 1.608", got)
	}
	if got := cfg.FireflyAreaMM2(); math.Abs(float64(got)-1.367) > 0.002 {
		t.Errorf("Firefly area = %.4f mm^2, thesis says 1.367", got)
	}
}

// TestDeviceCountEquations verifies the closed forms of Equations 5-22 at
// the 64-wavelength design point.
func TestDeviceCountEquations(t *testing.T) {
	cfg := DefaultConfig(64)
	// Eq. 9: 16*64*1 + 16*64 + 16*64 = 3072 dynamic modulators.
	if got := cfg.DynamicModulators(); got != 3072 {
		t.Errorf("T_MD = %d, want 3072", got)
	}
	// Eq. 18: 16*64*1 + 16*64*15 + 16*64 = 17408 dynamic detectors.
	if got := cfg.DynamicDetectors(); got != 17408 {
		t.Errorf("T_DMD = %d, want 17408", got)
	}
	// Eq. 13: 16*4 + 16*64 = 1088 Firefly modulators.
	if got := cfg.FireflyModulators(); got != 1088 {
		t.Errorf("T_MF = %d, want 1088", got)
	}
	// Eq. 22: 16*4*15 + 16*64*15 = 16320 Firefly detectors.
	if got := cfg.FireflyDetectors(); got != 16320 {
		t.Errorf("T_DMF = %d, want 16320", got)
	}
}

// TestScalingPercentages reproduces the thesis's scaling statements: from
// 64 to 512 wavelengths the d-HetPNoC area grows by 70% (Figures 3-8/3-9)
// and the Firefly area by 41.17% (Figure 3-10 discussion).
func TestScalingPercentages(t *testing.T) {
	small := DefaultConfig(64)
	large := DefaultConfig(512)

	dGrowth := float64((large.DynamicAreaMM2()/small.DynamicAreaMM2() - 1) * 100)
	if math.Abs(dGrowth-70.0) > 0.5 {
		t.Errorf("d-HetPNoC area growth 64->512 = %.2f%%, thesis says 70%%", dGrowth)
	}
	fGrowth := float64((large.FireflyAreaMM2()/small.FireflyAreaMM2() - 1) * 100)
	if math.Abs(fGrowth-41.17) > 0.5 {
		t.Errorf("Firefly area growth 64->512 = %.2f%%, thesis says 41.17%%", fGrowth)
	}
}

func TestDataWaveguides(t *testing.T) {
	tests := []struct{ wavelengths, want int }{
		{64, 1}, {65, 2}, {128, 2}, {256, 4}, {512, 8},
	}
	for _, tt := range tests {
		cfg := DefaultConfig(tt.wavelengths)
		if got := cfg.DataWaveguides(); got != tt.want {
			t.Errorf("DataWaveguides(%d) = %d, want %d", tt.wavelengths, got, tt.want)
		}
	}
}

func TestFireflyWavelengthsPerChannel(t *testing.T) {
	// Table 3-3: 4, 16 and 32 wavelengths per channel for the three sets.
	tests := []struct{ wavelengths, want int }{
		{64, 4}, {256, 16}, {512, 32},
	}
	for _, tt := range tests {
		cfg := DefaultConfig(tt.wavelengths)
		if got := cfg.FireflyWavelengthsPerChannel(); got != tt.want {
			t.Errorf("FireflyWavelengthsPerChannel(%d) = %d, want %d", tt.wavelengths, got, tt.want)
		}
	}
}

// TestDynamicAlwaysCostsMore: the flexibility of writing any wavelength in
// any waveguide can never be cheaper than Firefly's dedicated channels.
func TestDynamicAlwaysCostsMore(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)%2048 + 16
		cfg := DefaultConfig(n)
		return cfg.DynamicAreaMM2() >= cfg.FireflyAreaMM2()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAreaMonotoneInBandwidth: more provisioned bandwidth never shrinks
// either architecture's device area.
func TestAreaMonotoneInBandwidth(t *testing.T) {
	prev := DefaultConfig(64)
	for n := 128; n <= 1024; n += 64 {
		cur := DefaultConfig(n)
		if cur.DynamicAreaMM2() < prev.DynamicAreaMM2() {
			t.Fatalf("d-HetPNoC area shrank from %d to %d wavelengths", n-64, n)
		}
		if cur.FireflyAreaMM2() < prev.FireflyAreaMM2() {
			t.Fatalf("Firefly area shrank from %d to %d wavelengths", n-64, n)
		}
		prev = cur
	}
}

func TestSweepOverheadGrows(t *testing.T) {
	points := Sweep([]int{64, 256, 512})
	if len(points) != 3 {
		t.Fatalf("Sweep returned %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].OverheadPct <= points[i-1].OverheadPct {
			t.Fatalf("overhead not growing: %v", points)
		}
	}
}

func TestValidate(t *testing.T) {
	good := DefaultConfig(64)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []Config{
		{PhotonicRouters: 0, DataWavelengths: 64, WavelengthsPerWaveguide: 64, MRRRadiusMicron: 5},
		{PhotonicRouters: 16, DataWavelengths: 0, WavelengthsPerWaveguide: 64, MRRRadiusMicron: 5},
		{PhotonicRouters: 16, DataWavelengths: 64, WavelengthsPerWaveguide: 0, MRRRadiusMicron: 5},
		{PhotonicRouters: 16, DataWavelengths: 64, WavelengthsPerWaveguide: 64, MRRRadiusMicron: 0},
	}
	for i, cfg := range bads {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d passed validation", i)
		}
	}
}
