package area

import "testing"

// TestRestrictedModulatorCounts checks the Chapter 4 mitigation model: a
// router restricted to W waveguides needs lambda_W x W data modulators
// instead of lambda_W x N_WD.
func TestRestrictedModulatorCounts(t *testing.T) {
	cfg := DefaultConfig(512) // 8 waveguides
	// Unrestricted: 16*64*8 + 2*16*64 = 10240.
	if got := cfg.DynamicModulators(); got != 10240 {
		t.Fatalf("unrestricted modulators = %d, want 10240", got)
	}
	// Restricted to 2: 16*64*2 + 2*16*64 = 4096.
	if got := cfg.RestrictedDynamicModulators(2); got != 4096 {
		t.Fatalf("restricted modulators = %d, want 4096", got)
	}
	// Detector count is conservative: unchanged.
	if got, want := cfg.RestrictedDynamicDetectors(2), cfg.DynamicDetectors(); got != want {
		t.Fatalf("restricted detectors = %d, want %d", got, want)
	}
}

func TestRestrictedAreaBetweenFireflyAndDynamic(t *testing.T) {
	cfg := DefaultConfig(512)
	full := cfg.DynamicAreaMM2()
	restricted := cfg.RestrictedDynamicAreaMM2(2)
	firefly := cfg.FireflyAreaMM2()
	if restricted >= full {
		t.Fatalf("restriction did not save area: %.3f vs %.3f", restricted, full)
	}
	if restricted <= firefly {
		t.Fatalf("restricted d-HetPNoC (%.3f) cheaper than Firefly (%.3f): detectors alone exceed it", restricted, firefly)
	}
}

func TestRestrictedDegenerateArguments(t *testing.T) {
	cfg := DefaultConfig(512)
	// Zero or over-wide restrictions degrade to the unrestricted model.
	if got, want := cfg.RestrictedDynamicModulators(0), cfg.DynamicModulators(); got != want {
		t.Fatalf("restriction 0 gave %d modulators, want unrestricted %d", got, want)
	}
	if got, want := cfg.RestrictedDynamicModulators(99), cfg.DynamicModulators(); got != want {
		t.Fatalf("restriction 99 gave %d modulators, want unrestricted %d", got, want)
	}
}

// TestRestrictedMonotoneInWaveguides: more allowed waveguides means more
// modulators.
func TestRestrictedMonotoneInWaveguides(t *testing.T) {
	cfg := DefaultConfig(512)
	prev := 0
	for w := 1; w <= cfg.DataWaveguides(); w++ {
		got := cfg.RestrictedDynamicModulators(w)
		if got <= prev {
			t.Fatalf("modulators not monotone at %d waveguides", w)
		}
		prev = got
	}
	if prev != cfg.DynamicModulators() {
		t.Fatalf("full restriction (%d) != unrestricted (%d)", prev, cfg.DynamicModulators())
	}
}
