package serve

import (
	"strings"
	"testing"

	"hetpnoc"
)

func TestDecodeRunRequestDefaults(t *testing.T) {
	cfg, err := DecodeRunRequest([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	norm := cfg.Normalized()
	if norm.Architecture != hetpnoc.DHetPNoC || norm.BandwidthSet != 1 ||
		norm.Traffic.Kind != hetpnoc.UniformRandom || norm.Cycles != 10000 {
		t.Fatalf("empty request did not normalize to the Table 3-3 defaults: %+v", norm)
	}
}

func TestDecodeRunRequestEnumMapping(t *testing.T) {
	cases := []struct {
		body string
		arch hetpnoc.Architecture
		kind hetpnoc.TrafficKind
	}{
		{`{"architecture":"firefly"}`, hetpnoc.Firefly, 0},
		{`{"architecture":"d-hetpnoc"}`, hetpnoc.DHetPNoC, 0},
		{`{"architecture":"dhetpnoc"}`, hetpnoc.DHetPNoC, 0},
		{`{"architecture":"torus-pnoc"}`, hetpnoc.TorusPNoC, 0},
		{`{"architecture":"torus"}`, hetpnoc.TorusPNoC, 0},
		{`{"traffic":{"kind":"uniform"}}`, 0, hetpnoc.UniformRandom},
		{`{"traffic":{"kind":"skewed","skewLevel":2}}`, 0, hetpnoc.SkewedKind},
		{`{"traffic":{"kind":"hotspot","hotspotFraction":0.1,"skewLevel":1}}`, 0, hetpnoc.SkewedHotspotKind},
		{`{"traffic":{"kind":"realapp"}}`, 0, hetpnoc.RealApplication},
		{`{"traffic":{"kind":"permutation","permutation":"transpose"}}`, 0, hetpnoc.PermutationKind},
	}
	for _, tc := range cases {
		cfg, err := DecodeRunRequest([]byte(tc.body))
		if err != nil {
			t.Errorf("%s: %v", tc.body, err)
			continue
		}
		if cfg.Architecture != tc.arch {
			t.Errorf("%s: architecture = %v, want %v", tc.body, cfg.Architecture, tc.arch)
		}
		if cfg.Traffic.Kind != tc.kind {
			t.Errorf("%s: traffic kind = %v, want %v", tc.body, cfg.Traffic.Kind, tc.kind)
		}
	}
}

func TestDecodeRunRequestRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown field", `{"cyclez":100}`, "unknown field"},
		{"trailing data", `{"cycles":100}{"cycles":200}`, "trailing data"},
		{"wrong shape", `[1,2,3]`, "bad request"},
		{"empty body", ``, "bad request"},
		{"unknown architecture", `{"architecture":"hypercube"}`, "unknown architecture"},
		{"unknown kind", `{"traffic":{"kind":"adversarial"}}`, "unknown traffic kind"},
		{"unknown permutation", `{"traffic":{"kind":"permutation","permutation":"frobnicate"}}`, "permutation"},
		{"bad skew level", `{"traffic":{"kind":"skewed","skewLevel":9}}`, "skew"},
	}
	for _, tc := range cases {
		_, err := DecodeRunRequest([]byte(tc.body))
		if err == nil {
			t.Errorf("%s: decoder accepted %q", tc.name, tc.body)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestSweepExpandCrossProduct(t *testing.T) {
	configs, err := DecodeSweepRequest([]byte(`{
		"base": {"cycles": 2000, "seed": 3},
		"loadScales": [0.5, 1],
		"bandwidthSets": [1, 2],
		"architectures": ["firefly", "d-hetpnoc"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 8 {
		t.Fatalf("expanded to %d points, want 8", len(configs))
	}
	// Deterministic order: load outermost, then set, then architecture.
	first, last := configs[0], configs[7]
	if first.LoadScale != 0.5 || first.BandwidthSet != 1 || first.Architecture != hetpnoc.Firefly {
		t.Fatalf("first point = %+v", first)
	}
	if last.LoadScale != 1 || last.BandwidthSet != 2 || last.Architecture != hetpnoc.DHetPNoC {
		t.Fatalf("last point = %+v", last)
	}
	for i, cfg := range configs {
		if cfg.Cycles != 2000 || cfg.Seed != 3 {
			t.Fatalf("point %d lost base fields: %+v", i, cfg)
		}
	}
}

func TestSweepExpandCaps(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"base":{},"seeds":[`)
	for i := 0; i <= MaxSweepPoints; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("1")
	}
	b.WriteString(`]}`)
	if _, err := DecodeSweepRequest([]byte(b.String())); err == nil {
		t.Fatal("oversized axis accepted")
	}
	// Axes individually under the cap but whose product exceeds it.
	if _, err := DecodeSweepRequest([]byte(`{
		"base": {},
		"loadScales": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17],
		"bandwidthSets": [1,2,3],
		"architectures": ["firefly","d-hetpnoc","torus-pnoc"],
		"seeds": [1,2]
	}`)); err == nil {
		t.Fatal("oversized cross product accepted")
	}
}

func TestSweepExpandInvalidPoint(t *testing.T) {
	if _, err := DecodeSweepRequest([]byte(`{"base":{},"bandwidthSets":[1,9]}`)); err == nil {
		t.Fatal("sweep with an invalid bandwidth set accepted")
	}
}
