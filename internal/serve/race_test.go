package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hetpnoc/internal/testutil/leakcheck"
)

// TestSoakConcurrentClients is the service's concurrency proof (run it
// under -race via `make race`): 32 clients hammer /v1/run with a mix of
// duplicate and distinct configs. Every request must come back 200 (or
// 429, in which case the client honors Retry-After and retries), no
// response may be lost, duplicates must be byte-identical and produce
// cache hits, and the server must drain cleanly afterwards.
func TestSoakConcurrentClients(t *testing.T) {
	leakcheck.Check(t)
	const (
		clients     = 32
		perClient   = 4
		distinctCfg = 8 // seeds 0..7 → every config requested ~16 times
	)
	s := New(Config{Workers: 4, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())

	type reply struct {
		seed int
		body string
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		replies []reply
	)
	client := ts.Client()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				seed := (c*perClient + r) % distinctCfg
				body := fmt.Sprintf(`{"cycles":1200,"warmupCycles":1000,"seed":%d}`, seed+1)
				for attempt := 0; ; attempt++ {
					resp, err := client.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("client %d: %v", c, err)
						return
					}
					data, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						t.Errorf("client %d: read: %v", c, err)
						return
					}
					switch resp.StatusCode {
					case http.StatusOK:
						mu.Lock()
						replies = append(replies, reply{seed: seed, body: string(data)})
						mu.Unlock()
					case http.StatusTooManyRequests:
						if resp.Header.Get("Retry-After") == "" {
							t.Errorf("429 without Retry-After")
							return
						}
						if attempt > 50 {
							t.Errorf("client %d: still busy after %d retries", c, attempt)
							return
						}
						time.Sleep(10 * time.Millisecond)
						continue
					default:
						t.Errorf("client %d: status %d: %s", c, resp.StatusCode, data)
						return
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()

	if len(replies) != clients*perClient {
		t.Fatalf("lost responses: got %d, want %d", len(replies), clients*perClient)
	}
	// Duplicates are byte-identical end to end — same key, same result
	// bytes — which is the canonical-encoding determinism guarantee
	// observed through the whole HTTP/cache/pool stack.
	bySeed := map[int]map[string]bool{}
	for _, r := range replies {
		var rr RunResponse
		if err := json.Unmarshal([]byte(r.body), &rr); err != nil {
			t.Fatalf("bad body: %v", err)
		}
		res, err := json.Marshal(rr.Result)
		if err != nil {
			t.Fatal(err)
		}
		if bySeed[r.seed] == nil {
			bySeed[r.seed] = map[string]bool{}
		}
		bySeed[r.seed][rr.Key+"|"+string(res)] = true
	}
	for seed, variants := range bySeed {
		if len(variants) != 1 {
			t.Errorf("seed %d produced %d distinct responses, want 1", seed, len(variants))
		}
	}

	// The soak itself cannot guarantee a cache hit: under -race the
	// simulations run slowly enough that every duplicate may coalesce
	// onto a still-in-flight flight. One more request after every
	// response is in IS deterministic — finish() retires a flight
	// before waking its subscribers, so with no flight pending the
	// repeat must be served from the cache.
	resp, err := client.Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"cycles":1200,"warmupCycles":1000,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-soak probe: status %d", resp.StatusCode)
	}

	m := s.Metrics()
	if m.CacheHits < 1 {
		t.Errorf("post-soak repeat request did not hit the cache: %+v", m)
	}
	// Every distinct config simulates at most once per flight; duplicates
	// resolve via the cache or coalescing, never by redundant runs beyond
	// the races inherent in concurrent first arrivals.
	if m.Completed < distinctCfg {
		t.Errorf("completed %d runs, want at least %d", m.Completed, distinctCfg)
	}
	if m.Completed+m.CacheHits+m.Coalesced < clients*perClient+1 {
		t.Errorf("accounting hole: completed=%d hits=%d coalesced=%d for %d requests",
			m.Completed, m.CacheHits, m.Coalesced, clients*perClient+1)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	if got := s.Metrics().InFlight; got != 0 {
		t.Fatalf("in-flight after drain: %d", got)
	}
}

// TestSoakClientCancellation: a client that disconnects mid-run aborts
// its simulation within the fabric's cancellation check interval and
// hands the worker back.
func TestSoakClientCancellation(t *testing.T) {
	leakcheck.Check(t)
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run",
		strings.NewReader(`{"cycles":2000000,"warmupCycles":1000,"seed":42}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(30 * time.Second)
	for s.Metrics().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("big run never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request returned %v", err)
	}

	// The worker must be reclaimed promptly: a small follow-up run
	// completes instead of queueing behind a zombie simulation.
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"cycles":1200,"warmupCycles":1000,"seed":43}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel run status %d", resp.StatusCode)
	}
	if m := s.Metrics(); m.Canceled < 1 {
		t.Fatalf("no cancellation recorded: %+v", m)
	}
}

// TestSoakSaturation429: with one worker and a one-slot queue, a third
// concurrent distinct request must be answered 429 with a Retry-After
// hint while the first two are still running/queued.
func TestSoakSaturation429(t *testing.T) {
	leakcheck.Check(t)
	s := New(Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	slow := func(seed int) (context.CancelFunc, chan struct{}) {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		body := fmt.Sprintf(`{"cycles":2000000,"warmupCycles":1000,"seed":%d}`, seed)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer close(done)
			resp, err := ts.Client().Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		return cancel, done
	}

	stop1, done1 := slow(1)
	deadline := time.Now().Add(30 * time.Second)
	for s.Metrics().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first slow run never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop2, done2 := slow(2)
	for s.Metrics().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second slow run never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
		strings.NewReader(`{"cycles":2000000,"warmupCycles":1000,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}
	if m := s.Metrics(); m.Rejected < 1 {
		t.Fatalf("no rejection recorded: %+v", m)
	}

	stop1()
	stop2()
	<-done1
	<-done2
}
