// Package serve turns the simulator into a concurrent service: a
// bounded worker pool executes hetpnoc runs, a content-addressed LRU
// cache (internal/serve/cache) deduplicates identical configs, and
// identical in-flight requests coalesce onto a single simulation. The
// robustness semantics are explicit — per-request context cancellation
// threaded into the cycle loop, per-job timeouts, bounded-queue
// backpressure surfaced as ErrBusy (HTTP 429), and graceful drain on
// shutdown. See docs/SERVING.md.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hetpnoc"
	"hetpnoc/internal/serve/cache"
)

// ErrBusy reports that both the worker pool and the admission queue are
// full; the caller should retry after backing off (HTTP maps it to 429
// with a Retry-After hint).
var ErrBusy = errors.New("serve: worker pool and queue are full")

// ErrDraining reports that the server is shutting down and no longer
// admits work.
var ErrDraining = errors.New("serve: server is draining")

// ErrSimulation wraps a simulator-side failure of an admitted run — the
// config validated but the run still errored (HTTP maps it to 500).
var ErrSimulation = errors.New("serve: simulation failed")

// Config parameterizes a Server. The zero value serves with
// GOMAXPROCS workers, a queue twice that deep, a 1024-entry cache and a
// 2-minute per-job timeout.
type Config struct {
	// Workers is the number of concurrent simulations (default
	// GOMAXPROCS).
	Workers int

	// QueueDepth bounds the jobs admitted but not yet running; beyond
	// it Submit fails fast with ErrBusy (default 2×Workers).
	QueueDepth int

	// CacheCapacity bounds the result cache entries (default 1024).
	CacheCapacity int

	// JobTimeout caps one simulation's lifetime from admission to
	// completion; 0 means no limit (default 2 minutes).
	JobTimeout time.Duration

	// MaxCycles rejects configs asking for more simulated cycles than
	// the service is willing to spend on one request; 0 means no limit
	// (default 10,000,000).
	MaxCycles int

	// RetryAfter is the backoff hint returned with ErrBusy responses
	// (default 1s).
	RetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 1024
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 10_000_000
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// flight is one admitted simulation and the set of requests subscribed
// to its outcome. The job context is refcounted: it is canceled only
// when every subscriber has gone away (or the job timeout fires), so one
// impatient client cannot abort a simulation another still wants.
type flight struct {
	cfg    hetpnoc.Config
	key    cache.Key
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	res    hetpnoc.Result
	err    error

	subs int //hetpnoc:guardedby Server.mu
}

// Server executes simulation requests on a bounded worker pool with
// result caching and request coalescing.
//
// Lock-order policy: Submit's call tree touches both the server mutex
// (admission, coalescing) and the cache's internal mutex (Get/Put).
// Today the two critical sections never nest — cache calls happen
// before admit and after the worker finishes — but the declared order
// below is the contract any future nesting must follow: the server
// lock is the outer one, so cache methods must never call back into
// the server.
//
//hetpnoc:lockorder Server.mu Cache.mu cache Get/Put may run under the server lock, never the reverse
//hetpnoc:lockorder Server.mu scheduler.mu the batch scheduler locks only inside plan.Run, entered with no server lock held
//hetpnoc:lockorder Cache.mu scheduler.mu cache calls complete before a sweep batch runs; the scheduler never calls back into serve
type Server struct {
	cfg   Config
	cache *cache.Cache
	queue chan *flight

	baseCtx    context.Context
	baseCancel context.CancelFunc
	started    time.Time
	wg         sync.WaitGroup

	mu       sync.Mutex
	pending  map[cache.Key]*flight //hetpnoc:guardedby mu
	draining bool                  //hetpnoc:guardedby mu

	inFlight        atomic.Int64
	queued          atomic.Int64
	completed       atomic.Int64
	canceled        atomic.Int64
	failed          atomic.Int64
	rejected        atomic.Int64
	coalesced       atomic.Int64
	batched         atomic.Int64
	cyclesSimulated atomic.Int64
}

// New starts a server: cfg.Workers goroutines consuming the admission
// queue. Stop it with Close.
//
//hetpnoc:ctxroot baseCtx is the server's lifetime root; per-request contexts derive from it
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      cache.New(cfg.CacheCapacity),
		queue:      make(chan *flight, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		started:    time.Now(),
		pending:    make(map[cache.Key]*flight),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Outcome is one Submit's result and how it was obtained.
type Outcome struct {
	Result hetpnoc.Result
	// Key is the content address the result is cached under.
	Key cache.Key
	// Cached reports a completed-cache hit: no simulation ran.
	Cached bool
	// Coalesced reports the request joined an identical in-flight
	// simulation instead of starting its own.
	Coalesced bool
	// Batched reports the simulation ran inside a shared-prefix batch
	// (SubmitBatch): it forked off a fabric built once for the whole
	// group instead of paying its own build.
	Batched bool
}

// Submit validates, normalizes and executes cfg, deduplicating against
// the cache and identical in-flight runs. It blocks until the result is
// available, ctx is done, or admission fails with ErrBusy/ErrDraining.
func (s *Server) Submit(ctx context.Context, cfg hetpnoc.Config) (Outcome, error) {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		return Outcome{}, err
	}
	if s.cfg.MaxCycles > 0 && cfg.Cycles > s.cfg.MaxCycles {
		return Outcome{}, fmt.Errorf("serve: %d cycles exceeds the per-request limit of %d", cfg.Cycles, s.cfg.MaxCycles)
	}
	canonical, err := cfg.CanonicalJSON()
	if err != nil {
		return Outcome{}, err
	}
	key := cache.KeyOf(canonical)
	if res, ok := s.cache.Get(key); ok {
		return Outcome{Result: res, Key: key, Cached: true}, nil
	}

	fl, joined, err := s.admit(cfg, key)
	if err != nil {
		return Outcome{}, err
	}
	select {
	case <-fl.done:
		if fl.err != nil {
			return Outcome{}, fl.err
		}
		return Outcome{Result: fl.res, Key: key, Coalesced: joined}, nil
	case <-ctx.Done():
		s.unsubscribe(fl)
		return Outcome{}, ctx.Err()
	}
}

// SubmitBatch executes a set of configs sharing a batch prefix (equal
// Config.NormalizedPrefix — the sweep handler groups by it) in one
// batched pass: cache hits are served directly, duplicates within the
// batch coalesce onto one run, and the remaining misses go through
// hetpnoc.RunBatchContext, which builds the shared fabric once and
// forks every member off a pristine checkpoint. Each result is
// byte-identical to Submit's for the same config and is published to
// the cache. The batch runs on the calling goroutine — the sweep
// handler provides the pool bounding — under the server's job timeout
// and lifetime, canceled when either ctx or the server gives up.
func (s *Server) SubmitBatch(ctx context.Context, cfgs []hetpnoc.Config) ([]Outcome, error) {
	if s.Draining() {
		return nil, ErrDraining
	}
	outs := make([]Outcome, len(cfgs))
	// first maps a content key to the index of the first miss carrying
	// it: later duplicates coalesce onto that run instead of re-entering
	// the batch.
	first := make(map[cache.Key]int)
	var misses []int
	for i, cfg := range cfgs {
		cfg = cfg.Normalized()
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if s.cfg.MaxCycles > 0 && cfg.Cycles > s.cfg.MaxCycles {
			return nil, fmt.Errorf("serve: %d cycles exceeds the per-request limit of %d", cfg.Cycles, s.cfg.MaxCycles)
		}
		canonical, err := cfg.CanonicalJSON()
		if err != nil {
			return nil, err
		}
		key := cache.KeyOf(canonical)
		outs[i] = Outcome{Key: key}
		cfgs[i] = cfg
		if res, ok := s.cache.Get(key); ok {
			outs[i].Result, outs[i].Cached = res, true
			continue
		}
		if _, dup := first[key]; dup {
			outs[i].Coalesced, outs[i].Batched = true, true
			continue
		}
		first[key] = i
		misses = append(misses, i)
	}
	if len(misses) == 0 {
		return outs, nil
	}

	jobCtx, cancel := s.jobContext()
	defer cancel()
	stop := context.AfterFunc(ctx, cancel)
	defer stop()

	run := make([]hetpnoc.Config, len(misses))
	for mi, i := range misses {
		run[mi] = cfgs[i]
	}
	s.inFlight.Add(1)
	results, err := hetpnoc.RunBatchContext(jobCtx, run)
	s.inFlight.Add(-1)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			s.canceled.Add(1)
			return nil, ctxErr
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.canceled.Add(1)
			return nil, err
		}
		s.failed.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrSimulation, err)
	}
	for mi, i := range misses {
		s.cache.Put(outs[i].Key, results[mi])
		s.completed.Add(1)
		s.batched.Add(1)
		s.cyclesSimulated.Add(int64(cfgs[i].Cycles))
		outs[i].Result, outs[i].Batched = results[mi], true
	}
	// Duplicates read their result through the first carrier of the key.
	for i := range outs {
		if outs[i].Coalesced {
			outs[i].Result = outs[first[outs[i].Key]].Result
		}
	}
	return outs, nil
}

// admit registers the caller on an existing identical flight or creates
// and enqueues a new one. joined reports the former.
func (s *Server) admit(cfg hetpnoc.Config, key cache.Key) (fl *flight, joined bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	if fl, ok := s.pending[key]; ok {
		fl.subs++
		s.coalesced.Add(1)
		return fl, true, nil
	}
	jobCtx, cancel := s.jobContext()
	fl = &flight{cfg: cfg, key: key, ctx: jobCtx, cancel: cancel, done: make(chan struct{}), subs: 1}
	select {
	case s.queue <- fl:
		s.queued.Add(1)
		s.pending[key] = fl
		return fl, false, nil
	default:
		cancel()
		s.rejected.Add(1)
		return nil, false, ErrBusy
	}
}

// jobContext derives one flight's context from the server's base
// context, applying the job timeout.
func (s *Server) jobContext() (context.Context, context.CancelFunc) {
	if s.cfg.JobTimeout > 0 {
		return context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	}
	return context.WithCancel(s.baseCtx)
}

// unsubscribe removes one waiter from fl; the last one out cancels the
// job so its worker (or queue slot) is reclaimed promptly.
func (s *Server) unsubscribe(fl *flight) {
	s.mu.Lock()
	fl.subs--
	last := fl.subs == 0
	s.mu.Unlock()
	if last {
		fl.cancel()
	}
}

// worker executes flights until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for fl := range s.queue {
		s.queued.Add(-1)
		s.runFlight(fl)
	}
}

// runFlight executes one admitted simulation and publishes its outcome.
func (s *Server) runFlight(fl *flight) {
	if err := fl.ctx.Err(); err != nil {
		// Every subscriber left (or the timeout fired) while the job
		// was still queued; skip the run entirely.
		fl.err = err
		s.canceled.Add(1)
		s.finish(fl)
		return
	}
	s.inFlight.Add(1)
	res, err := hetpnoc.RunContext(fl.ctx, fl.cfg)
	s.inFlight.Add(-1)
	fl.res, fl.err = res, err
	switch {
	case err == nil:
		s.cache.Put(fl.key, res)
		s.completed.Add(1)
		s.cyclesSimulated.Add(int64(fl.cfg.Cycles))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.canceled.Add(1)
	default:
		fl.err = fmt.Errorf("%w: %v", ErrSimulation, err)
		s.failed.Add(1)
	}
	s.finish(fl)
}

// finish retires fl from the pending set and wakes its subscribers. The
// delete happens before the done broadcast so a duplicate arriving
// afterwards starts fresh instead of adopting a dead flight.
func (s *Server) finish(fl *flight) {
	s.mu.Lock()
	delete(s.pending, fl.key)
	s.mu.Unlock()
	fl.cancel()
	close(fl.done)
}

// Close drains the server: no new admissions, queued and in-flight jobs
// run to completion until ctx expires, at which point they are canceled.
// It returns ctx.Err() if the drain was cut short.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel() // hard-cancel stragglers, then wait for them
		<-done
		return ctx.Err()
	}
}

// Draining reports whether Close has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// RetryAfter returns the configured backoff hint for ErrBusy.
func (s *Server) RetryAfter() time.Duration { return s.cfg.RetryAfter }

// MaxCycles returns the per-request cycle limit (0 = unlimited).
func (s *Server) MaxCycles() int { return s.cfg.MaxCycles }

// Metrics is the /metricsz read-out.
type Metrics struct {
	Workers       int `json:"workers"`
	QueueCapacity int `json:"queueCapacity"`

	QueueDepth int64 `json:"queueDepth"`
	InFlight   int64 `json:"inFlight"`

	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Coalesced int64 `json:"coalesced"`
	// BatchedRuns counts simulations executed through the shared-prefix
	// batch path instead of as standalone pool jobs.
	BatchedRuns int64 `json:"batchedRuns"`

	CacheEntries  int     `json:"cacheEntries"`
	CacheCapacity int     `json:"cacheCapacity"`
	CacheHits     int64   `json:"cacheHits"`
	CacheMisses   int64   `json:"cacheMisses"`
	CacheHitRate  float64 `json:"cacheHitRate"`

	CyclesSimulated int64   `json:"cyclesSimulated"`
	CyclesPerSecond float64 `json:"cyclesPerSecond"`
	UptimeSeconds   float64 `json:"uptimeSeconds"`
}

// Metrics snapshots the server counters.
func (s *Server) Metrics() Metrics {
	cs := s.cache.Stats()
	uptime := time.Since(s.started).Seconds()
	m := Metrics{
		Workers:         s.cfg.Workers,
		QueueCapacity:   s.cfg.QueueDepth,
		QueueDepth:      s.queued.Load(),
		InFlight:        s.inFlight.Load(),
		Completed:       s.completed.Load(),
		Canceled:        s.canceled.Load(),
		Failed:          s.failed.Load(),
		Rejected:        s.rejected.Load(),
		Coalesced:       s.coalesced.Load(),
		BatchedRuns:     s.batched.Load(),
		CacheEntries:    cs.Entries,
		CacheCapacity:   cs.Capacity,
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheHitRate:    cs.HitRate(),
		CyclesSimulated: s.cyclesSimulated.Load(),
		UptimeSeconds:   uptime,
	}
	if uptime > 0 {
		m.CyclesPerSecond = float64(m.CyclesSimulated) / uptime
	}
	return m
}
