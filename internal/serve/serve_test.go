package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hetpnoc"
)

// smallCfg is a ~10ms simulation (1200 cycles, 1000 warm-up); seed
// variations make distinct cache keys.
func smallCfg(seed uint64) hetpnoc.Config {
	return hetpnoc.Config{Cycles: 1200, WarmupCycles: 1000, Seed: seed}
}

// bigCfg is a multi-second simulation used as a worker blocker; tests
// cancel it rather than wait it out.
func bigCfg(seed uint64) hetpnoc.Config {
	return hetpnoc.Config{Cycles: 2_000_000, WarmupCycles: 1000, Seed: seed}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func closeServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestSubmitCacheHitOnDuplicate(t *testing.T) {
	s := New(Config{Workers: 2})
	defer closeServer(t, s)
	ctx := context.Background()

	first, err := s.Submit(ctx, smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Coalesced {
		t.Fatalf("first submit reported cached=%v coalesced=%v", first.Cached, first.Coalesced)
	}
	second, err := s.Submit(ctx, smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("duplicate submit missed the cache")
	}
	if second.Key != first.Key {
		t.Fatal("duplicate submit produced a different key")
	}
	ea, _ := first.Result.CanonicalJSON()
	eb, _ := second.Result.CanonicalJSON()
	if string(ea) != string(eb) {
		t.Fatal("cached result differs from the computed one")
	}

	// A differently-spelled config selecting the same simulation shares
	// the entry: explicit Table 3-3 defaults vs zero values.
	explicit := smallCfg(1)
	explicit.Architecture = hetpnoc.DHetPNoC
	explicit.BandwidthSet = 1
	explicit.Traffic = hetpnoc.Traffic{Kind: hetpnoc.UniformRandom}
	explicit.LoadScale = 1.0
	third, err := s.Submit(ctx, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || third.Key != first.Key {
		t.Fatal("explicitly-spelled default config did not hit the same cache entry")
	}

	if m := s.Metrics(); m.CacheHits < 2 || m.Completed != 1 {
		t.Fatalf("metrics = %+v, want >=2 cache hits from 1 completed run", m)
	}
}

func TestSubmitCoalescesIdenticalInFlight(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer closeServer(t, s)

	// Occupy the single worker with a cancelable blocker.
	blockCtx, stopBlocker := context.WithCancel(context.Background())
	blockDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(blockCtx, bigCfg(99))
		blockDone <- err
	}()
	waitFor(t, "blocker in flight", func() bool { return s.Metrics().InFlight == 1 })

	// Two clients ask for the same queued simulation: the second joins
	// the first's flight instead of enqueueing its own.
	var wg sync.WaitGroup
	outs := make([]Outcome, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = s.Submit(context.Background(), smallCfg(2))
		}(i)
		// Admit strictly in order so exactly one request creates the
		// flight and the other coalesces.
		if i == 0 {
			waitFor(t, "first duplicate queued", func() bool { return s.Metrics().QueueDepth == 1 })
		}
	}
	waitFor(t, "duplicate coalesced", func() bool { return s.Metrics().Coalesced == 1 })

	stopBlocker()
	if err := <-blockDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("blocker returned %v, want context.Canceled", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("duplicate %d: %v", i, err)
		}
	}
	if outs[0].Key != outs[1].Key {
		t.Fatal("coalesced submits returned different keys")
	}
	if !outs[1].Coalesced && !outs[0].Coalesced {
		t.Fatal("neither duplicate reported coalescing")
	}
	if m := s.Metrics(); m.Completed != 1 {
		t.Fatalf("coalesced pair ran %d simulations, want 1", m.Completed)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer closeServer(t, s)

	blockCtx, stopBlocker := context.WithCancel(context.Background())
	defer stopBlocker()
	blockDone := make(chan struct{})
	go func() {
		defer close(blockDone)
		s.Submit(blockCtx, bigCfg(50))
	}()
	waitFor(t, "blocker in flight", func() bool { return s.Metrics().InFlight == 1 })

	queuedCtx, dropQueued := context.WithCancel(context.Background())
	defer dropQueued()
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		s.Submit(queuedCtx, bigCfg(51))
	}()
	waitFor(t, "queue full", func() bool { return s.Metrics().QueueDepth == 1 })

	// Pool busy, queue full: a third distinct config must fail fast.
	_, err := s.Submit(context.Background(), smallCfg(52))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("saturated submit returned %v, want ErrBusy", err)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected)
	}
	// But a duplicate of the queued config still coalesces — backpressure
	// never applies to work already admitted.
	dupCtx, dropDup := context.WithCancel(context.Background())
	dupDone := make(chan struct{})
	go func() {
		defer close(dupDone)
		s.Submit(dupCtx, bigCfg(51))
	}()
	waitFor(t, "duplicate coalesced under saturation", func() bool { return s.Metrics().Coalesced == 1 })

	dropDup()
	dropQueued()
	stopBlocker()
	<-blockDone
	<-queuedDone
	<-dupDone
}

func TestSubmitCancelReclaimsWorker(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeServer(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, bigCfg(60))
		done <- err
	}()
	waitFor(t, "job in flight", func() bool { return s.Metrics().InFlight == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled submit returned %v, want context.Canceled", err)
	}

	// The worker must come back within a cancellation check interval, so
	// a fresh small job completes rather than queueing behind a zombie.
	out, err := s.Submit(context.Background(), smallCfg(61))
	if err != nil {
		t.Fatalf("post-cancel submit: %v", err)
	}
	if out.Cached {
		t.Fatal("fresh config reported a cache hit")
	}
	if m := s.Metrics(); m.Canceled < 1 || m.InFlight != 0 {
		t.Fatalf("metrics after cancel = %+v", m)
	}
}

func TestSubmitJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1, JobTimeout: 50 * time.Millisecond})
	defer closeServer(t, s)
	_, err := s.Submit(context.Background(), bigCfg(70))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out submit returned %v, want context.DeadlineExceeded", err)
	}
}

func TestSubmitMaxCycles(t *testing.T) {
	s := New(Config{Workers: 1, MaxCycles: 1000})
	defer closeServer(t, s)
	_, err := s.Submit(context.Background(), smallCfg(80))
	if err == nil || !strings.Contains(err.Error(), "per-request limit") {
		t.Fatalf("oversized request returned %v, want the cycle-limit rejection", err)
	}
}

func TestSubmitInvalidConfig(t *testing.T) {
	s := New(Config{Workers: 1})
	defer closeServer(t, s)
	cfg := smallCfg(90)
	cfg.BandwidthSet = 9
	if _, err := s.Submit(context.Background(), cfg); err == nil {
		t.Fatal("invalid bandwidth set accepted")
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	s := New(Config{Workers: 2})
	ctx := context.Background()
	if _, err := s.Submit(ctx, smallCfg(100)); err != nil {
		t.Fatal(err)
	}
	closeServer(t, s)
	if !s.Draining() {
		t.Fatal("server not draining after Close")
	}
	if _, err := s.Submit(ctx, smallCfg(101)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-Close submit returned %v, want ErrDraining", err)
	}
	// Close is idempotent.
	closeServer(t, s)
}
