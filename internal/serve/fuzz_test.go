package serve

import (
	"testing"
)

// FuzzServeRequestDecode holds the /v1/run decoder to its contract on
// arbitrary bytes: it must never panic, and whenever it accepts a body
// the returned config must be fully validated (Submit relies on this —
// a decoded config goes straight to normalization and the pool).
func FuzzServeRequestDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"architecture":"firefly","bandwidthSet":2,"cycles":2500,"seed":7}`))
	f.Add([]byte(`{"traffic":{"kind":"skewed","skewLevel":3},"loadScale":2}`))
	f.Add([]byte(`{"traffic":{"kind":"hotspot","hotspotFraction":0.2,"skewLevel":2,"burstiness":4}}`))
	f.Add([]byte(`{"traffic":{"kind":"permutation","permutation":"transpose"}}`))
	f.Add([]byte(`{"architecture":"torus-pnoc","warmupCycles":100,"concentrated":true,"proportionalDBA":true}`))
	f.Add([]byte(`{"no_such_field":1}`))
	f.Add([]byte(`{"loadScale":1e308}`))
	f.Add([]byte(`{} trailing`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Add([]byte("\xff\xfe{"))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := DecodeRunRequest(data)
		if err != nil {
			return // rejection is fine; the no-panic guarantee is the point
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("decoder accepted a config Validate rejects: %v\nbody: %q", verr, data)
		}
		if _, cerr := cfg.CanonicalJSON(); cerr != nil {
			t.Fatalf("accepted config fails canonical encoding: %v\nbody: %q", cerr, data)
		}
	})
}

// FuzzSweepDecode extends the same guarantee to /v1/sweep bodies, whose
// decoder additionally expands a cross product with hostile axis sizes.
func FuzzSweepDecode(f *testing.F) {
	f.Add([]byte(`{"base":{"cycles":2000},"loadScales":[0.5,1,2],"bandwidthSets":[1,2,3]}`))
	f.Add([]byte(`{"base":{},"architectures":["firefly","d-hetpnoc"],"seeds":[1,2]}`))
	f.Add([]byte(`{"base":{"traffic":{"kind":"realapp"}}}`))
	f.Add([]byte(`{"loadScales":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		configs, err := DecodeSweepRequest(data)
		if err != nil {
			return
		}
		if len(configs) > MaxSweepPoints {
			t.Fatalf("sweep expanded to %d points past the %d cap", len(configs), MaxSweepPoints)
		}
		for i, cfg := range configs {
			if verr := cfg.Validate(); verr != nil {
				t.Fatalf("sweep point %d fails Validate: %v\nbody: %q", i, verr, data)
			}
		}
	})
}
