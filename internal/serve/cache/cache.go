// Package cache is the serving layer's content-addressed result store:
// the SHA-256 of a config's canonical encoding names its Result, so any
// two requests for the same simulation — however differently spelled —
// resolve to one entry. The store is LRU-bounded and counts hits and
// misses for the /metricsz endpoint.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"hetpnoc"
)

// Key is the content address of one simulation: the SHA-256 digest of
// the config's canonical JSON encoding.
type Key [sha256.Size]byte

// KeyOf digests a canonical config encoding.
func KeyOf(canonical []byte) Key { return sha256.Sum256(canonical) }

// String returns the key's hex form (used in responses and logs).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Cache is a thread-safe LRU map from Key to hetpnoc.Result.
type Cache struct {
	mu       sync.Mutex
	capacity int // immutable after New

	//hetpnoc:guardedby mu
	ll *list.List // front = most recently used
	//hetpnoc:guardedby mu
	entries map[Key]*list.Element

	hits   int64 //hetpnoc:guardedby mu
	misses int64 //hetpnoc:guardedby mu
}

type entry struct {
	key Key
	res hetpnoc.Result
}

// New returns a cache holding at most capacity results; capacity below 1
// is raised to 1 so the cache is always usable.
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[Key]*list.Element, capacity),
	}
}

// Get returns the cached result for k, marking it most recently used.
func (c *Cache) Get(k Key) (hetpnoc.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return hetpnoc.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// Put stores res under k, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache) Put(k Key, res hetpnoc.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*entry).res = res
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.entries, oldest.Value.(*entry).key)
		}
	}
	c.entries[k] = c.ll.PushFront(&entry{key: k, res: res})
}

// Stats is a point-in-time read-out of the cache counters.
type Stats struct {
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Entries: c.ll.Len(), Capacity: c.capacity, Hits: c.hits, Misses: c.misses}
}
