package cache

import (
	"fmt"
	"sync"
	"testing"

	"hetpnoc"
)

func keyFor(i int) Key { return KeyOf([]byte(fmt.Sprintf("config-%d", i))) }

func resFor(i int) hetpnoc.Result { return hetpnoc.Result{PacketsDelivered: int64(i)} }

func TestKeyOfStableAndDistinct(t *testing.T) {
	a := KeyOf([]byte("alpha"))
	if b := KeyOf([]byte("alpha")); a != b {
		t.Fatal("equal inputs produced different keys")
	}
	if c := KeyOf([]byte("beta")); a == c {
		t.Fatal("distinct inputs collided")
	}
	if got := len(a.String()); got != 64 {
		t.Fatalf("hex key length = %d, want 64", got)
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := New(4)
	if _, ok := c.Get(keyFor(0)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(keyFor(0), resFor(0))
	res, ok := c.Get(keyFor(0))
	if !ok || res.PacketsDelivered != 0 {
		t.Fatalf("Get after Put = (%+v, %v)", res, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry, capacity 4", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(keyFor(1), resFor(1))
	c.Put(keyFor(2), resFor(2))
	// Touch 1 so 2 becomes the eviction candidate.
	if _, ok := c.Get(keyFor(1)); !ok {
		t.Fatal("lost entry 1 before eviction")
	}
	c.Put(keyFor(3), resFor(3))
	if _, ok := c.Get(keyFor(2)); ok {
		t.Fatal("least recently used entry 2 survived eviction")
	}
	if _, ok := c.Get(keyFor(1)); !ok {
		t.Fatal("recently used entry 1 was evicted")
	}
	if _, ok := c.Get(keyFor(3)); !ok {
		t.Fatal("newest entry 3 missing")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := New(2)
	c.Put(keyFor(1), resFor(1))
	c.Put(keyFor(2), resFor(2))
	// Re-Put 1 with a new value: refresh, not insert — and 1 becomes MRU.
	c.Put(keyFor(1), resFor(100))
	c.Put(keyFor(3), resFor(3)) // should evict 2
	res, ok := c.Get(keyFor(1))
	if !ok || res.PacketsDelivered != 100 {
		t.Fatalf("refreshed entry = (%+v, %v), want delivered=100", res, ok)
	}
	if _, ok := c.Get(keyFor(2)); ok {
		t.Fatal("entry 2 should have been evicted after 1 was refreshed")
	}
}

func TestCacheCapacityFloor(t *testing.T) {
	c := New(0)
	c.Put(keyFor(1), resFor(1))
	if _, ok := c.Get(keyFor(1)); !ok {
		t.Fatal("capacity-0 cache should be raised to 1 entry")
	}
	if st := c.Stats(); st.Capacity != 1 {
		t.Fatalf("capacity = %d, want 1", st.Capacity)
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run under
// -race this is the store's thread-safety proof.
func TestCacheConcurrent(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyFor((g + i) % 24)
				if i%3 == 0 {
					c.Put(k, resFor(i))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries > 8 {
		t.Fatalf("cache grew past capacity: %d entries", st.Entries)
	}
	if st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded")
	}
}
