package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"hetpnoc"
)

// RunRequest is the wire form of one simulation request (POST /v1/run).
// Field names mirror hetpnoc.Config; enums travel as strings. Every
// field is optional — the zero value selects the thesis's Table 3-3
// default, exactly as in the Go API.
type RunRequest struct {
	Architecture    string          `json:"architecture,omitempty"` // "firefly", "d-hetpnoc", "torus-pnoc"
	BandwidthSet    int             `json:"bandwidthSet,omitempty"` // 1-3
	Traffic         *TrafficRequest `json:"traffic,omitempty"`
	LoadScale       float64         `json:"loadScale,omitempty"`
	Cycles          int             `json:"cycles,omitempty"`
	WarmupCycles    int             `json:"warmupCycles,omitempty"`
	Seed            uint64          `json:"seed,omitempty"`
	Concentrated    bool            `json:"concentrated,omitempty"`
	ProportionalDBA bool            `json:"proportionalDBA,omitempty"`
}

// TrafficRequest is the wire form of hetpnoc.Traffic.
type TrafficRequest struct {
	Kind            string            `json:"kind,omitempty"` // "uniform", "skewed", "hotspot", "realapp", "permutation", "custom"
	SkewLevel       int               `json:"skewLevel,omitempty"`
	HotspotFraction float64           `json:"hotspotFraction,omitempty"`
	Permutation     string            `json:"permutation,omitempty"`
	Burstiness      float64           `json:"burstiness,omitempty"`
	Custom          []CoreSpecRequest `json:"custom,omitempty"`
}

// CoreSpecRequest is the wire form of hetpnoc.CoreSpec.
type CoreSpecRequest struct {
	RateGbps   float64 `json:"rateGbps,omitempty"`
	DemandGbps float64 `json:"demandGbps,omitempty"`
	Dests      []int   `json:"dests,omitempty"`
}

// SweepRequest (POST /v1/sweep) expands into the cross product of the
// base request and every listed axis value; empty axes keep the base
// value. Each point runs through the same pool and cache as /v1/run.
type SweepRequest struct {
	Base          RunRequest `json:"base"`
	LoadScales    []float64  `json:"loadScales,omitempty"`
	BandwidthSets []int      `json:"bandwidthSets,omitempty"`
	Architectures []string   `json:"architectures,omitempty"`
	Seeds         []uint64   `json:"seeds,omitempty"`
}

// architectures maps the wire names onto the config enum. The empty
// string keeps the Config zero value (d-HetPNoC, per Normalized).
func architectureOf(name string) (hetpnoc.Architecture, error) {
	switch name {
	case "":
		return 0, nil
	case "firefly":
		return hetpnoc.Firefly, nil
	case "d-hetpnoc", "dhetpnoc":
		return hetpnoc.DHetPNoC, nil
	case "torus-pnoc", "torus":
		return hetpnoc.TorusPNoC, nil
	default:
		return 0, fmt.Errorf("serve: unknown architecture %q", name)
	}
}

func trafficOf(t *TrafficRequest) (hetpnoc.Traffic, error) {
	if t == nil {
		return hetpnoc.Traffic{}, nil
	}
	out := hetpnoc.Traffic{
		SkewLevel:       t.SkewLevel,
		HotspotFraction: t.HotspotFraction,
		Permutation:     t.Permutation,
		Burstiness:      t.Burstiness,
	}
	switch t.Kind {
	case "":
		// Leave the kind zero: Normalized resolves it to uniform.
	case "uniform":
		out.Kind = hetpnoc.UniformRandom
	case "skewed":
		out.Kind = hetpnoc.SkewedKind
	case "hotspot":
		out.Kind = hetpnoc.SkewedHotspotKind
	case "realapp":
		out.Kind = hetpnoc.RealApplication
	case "permutation":
		out.Kind = hetpnoc.PermutationKind
	case "custom":
		out.Kind = hetpnoc.CustomKind
	default:
		return hetpnoc.Traffic{}, fmt.Errorf("serve: unknown traffic kind %q", t.Kind)
	}
	if len(t.Custom) > 0 {
		out.Custom = make([]hetpnoc.CoreSpec, len(t.Custom))
		for i, c := range t.Custom {
			out.Custom[i] = hetpnoc.CoreSpec{RateGbps: c.RateGbps, DemandGbps: c.DemandGbps, Dests: c.Dests}
		}
	}
	return out, nil
}

// ToConfig lowers the wire request onto the public Config.
func (r RunRequest) ToConfig() (hetpnoc.Config, error) {
	arch, err := architectureOf(r.Architecture)
	if err != nil {
		return hetpnoc.Config{}, err
	}
	tr, err := trafficOf(r.Traffic)
	if err != nil {
		return hetpnoc.Config{}, err
	}
	return hetpnoc.Config{
		Architecture:    arch,
		BandwidthSet:    r.BandwidthSet,
		Traffic:         tr,
		LoadScale:       r.LoadScale,
		Cycles:          r.Cycles,
		WarmupCycles:    r.WarmupCycles,
		Seed:            r.Seed,
		Concentrated:    r.Concentrated,
		ProportionalDBA: r.ProportionalDBA,
	}, nil
}

// strictDecode unmarshals data into v, rejecting unknown fields and
// trailing garbage — a mistyped field name must fail loudly, not
// silently select a default simulation.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil || len(extra) > 0 {
		return fmt.Errorf("serve: bad request: trailing data after JSON body")
	}
	return nil
}

// DecodeRunRequest parses and fully validates one /v1/run body. On a nil
// error the returned config is runnable: it has passed
// hetpnoc.Config.Validate. The fuzz suite holds the decoder to a
// no-panic guarantee on arbitrary bytes.
func DecodeRunRequest(data []byte) (hetpnoc.Config, error) {
	var req RunRequest
	if err := strictDecode(data, &req); err != nil {
		return hetpnoc.Config{}, err
	}
	cfg, err := req.ToConfig()
	if err != nil {
		return hetpnoc.Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return hetpnoc.Config{}, err
	}
	return cfg, nil
}

// MaxSweepPoints bounds one sweep's cross-product size.
const MaxSweepPoints = 256

// DecodeSweepRequest parses one /v1/sweep body and expands it into the
// per-point configs, each fully validated.
func DecodeSweepRequest(data []byte) ([]hetpnoc.Config, error) {
	var req SweepRequest
	if err := strictDecode(data, &req); err != nil {
		return nil, err
	}
	return req.Expand()
}

// Expand materializes the sweep's cross product in deterministic order
// (load scale outermost, seed innermost).
func (r SweepRequest) Expand() ([]hetpnoc.Config, error) {
	base, err := r.Base.ToConfig()
	if err != nil {
		return nil, err
	}
	loads := r.LoadScales
	if len(loads) == 0 {
		loads = []float64{base.LoadScale}
	}
	sets := r.BandwidthSets
	if len(sets) == 0 {
		sets = []int{base.BandwidthSet}
	}
	archNames := r.Architectures
	if len(archNames) == 0 {
		archNames = []string{r.Base.Architecture}
	}
	seeds := r.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{base.Seed}
	}
	for _, k := range [...]int{len(loads), len(sets), len(archNames), len(seeds)} {
		if k > MaxSweepPoints {
			return nil, fmt.Errorf("serve: sweep axis has %d values, limit is %d", k, MaxSweepPoints)
		}
	}
	// Each axis is capped at MaxSweepPoints, so the product fits in an
	// int64-sized int without overflow.
	n := len(loads) * len(sets) * len(archNames) * len(seeds)
	if n > MaxSweepPoints {
		return nil, fmt.Errorf("serve: sweep expands to %d points, limit is %d", n, MaxSweepPoints)
	}
	archs := make([]hetpnoc.Architecture, len(archNames))
	for i, name := range archNames {
		if archs[i], err = architectureOf(name); err != nil {
			return nil, err
		}
	}
	configs := make([]hetpnoc.Config, 0, n)
	for _, load := range loads {
		for _, set := range sets {
			for _, arch := range archs {
				for _, seed := range seeds {
					cfg := base
					cfg.LoadScale = load
					cfg.BandwidthSet = set
					cfg.Architecture = arch
					cfg.Seed = seed
					if err := cfg.Validate(); err != nil {
						return nil, err
					}
					configs = append(configs, cfg)
				}
			}
		}
	}
	return configs, nil
}
