package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/run", `{"cycles":1200,"warmupCycles":1000,"seed":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, body)
	}
	if len(rr.Key) != 64 || rr.Cached || rr.Result.PacketsDelivered == 0 {
		t.Fatalf("unexpected response: key=%q cached=%v delivered=%d", rr.Key, rr.Cached, rr.Result.PacketsDelivered)
	}

	// The duplicate comes back cached with the same key.
	resp2, body2 := postJSON(t, ts.URL+"/v1/run", `{"cycles":1200,"warmupCycles":1000,"seed":5}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate status %d: %s", resp2.StatusCode, body2)
	}
	var rr2 RunResponse
	if err := json.Unmarshal(body2, &rr2); err != nil {
		t.Fatal(err)
	}
	if !rr2.Cached || rr2.Key != rr.Key {
		t.Fatalf("duplicate not served from cache: %+v", rr2)
	}
}

func TestHTTPRunRejectsBadBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`{"cyclez":100}`,
		`{"architecture":"hypercube"}`,
		`not json`,
		`{"cycles":100}{"cycles":200}`,
	}
	for _, body := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/run", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHTTPSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", `{
		"base": {"cycles": 1200, "warmupCycles": 1000, "seed": 6},
		"architectures": ["firefly", "d-hetpnoc"],
		"loadScales": [0.5, 1]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 4 {
		t.Fatalf("sweep returned %d points, want 4", len(sr.Points))
	}
	keys := map[string]bool{}
	for i, p := range sr.Points {
		if p.Result.PacketsDelivered == 0 {
			t.Errorf("point %d delivered an empty result", i)
		}
		keys[p.Key] = true
	}
	if len(keys) != 4 {
		t.Fatalf("sweep points share keys: %d distinct of 4", len(keys))
	}
}

// TestHTTPSweepBatched exercises the shared-prefix fast path: a sweep
// whose points differ only in seed and load scale forms one batch
// partition, so every executed point reports batched=true and must
// still be byte-identical to the standalone /v1/run result for the
// same config. A point already in the result cache is served from it
// instead of re-entering the batch.
func TestHTTPSweepBatched(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	// Prime the cache with one of the sweep's points.
	resp, body := postJSON(t, ts.URL+"/v1/run", `{"cycles":1200,"warmupCycles":1000,"seed":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime status %d: %s", resp.StatusCode, body)
	}
	var primed RunResponse
	if err := json.Unmarshal(body, &primed); err != nil {
		t.Fatal(err)
	}

	resp, body = postJSON(t, ts.URL+"/v1/sweep", `{
		"base": {"cycles": 1200, "warmupCycles": 1000},
		"seeds": [1, 2, 3],
		"loadScales": [1, 2]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 6 {
		t.Fatalf("sweep returned %d points, want 6", len(sr.Points))
	}
	var batched, cached int
	for i, p := range sr.Points {
		switch {
		case p.Cached:
			cached++
			if p.Key != primed.Key {
				t.Errorf("point %d cached under key %s, primed key was %s", i, p.Key, primed.Key)
			}
		case p.Batched:
			batched++
		default:
			t.Errorf("point %d neither batched nor cached: %+v", i, p)
		}
		if p.Result.PacketsDelivered == 0 {
			t.Errorf("point %d delivered an empty result", i)
		}
	}
	if cached != 1 || batched != 5 {
		t.Fatalf("got %d cached and %d batched points, want 1 and 5", cached, batched)
	}

	// A batched point's result matches the standalone run byte for byte.
	resp, body = postJSON(t, ts.URL+"/v1/run", `{"cycles":1200,"warmupCycles":1000,"seed":3,"loadScale":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solo status %d: %s", resp.StatusCode, body)
	}
	var solo RunResponse
	if err := json.Unmarshal(body, &solo); err != nil {
		t.Fatal(err)
	}
	if !solo.Cached {
		t.Error("batched sweep did not publish its results to the cache")
	}
	for _, p := range sr.Points {
		if p.Key != solo.Key {
			continue
		}
		a, err := p.Result.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b, err := solo.Result.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("batched point diverges from the standalone run:\nbatched: %s\nsolo:    %s", a, b)
		}
	}

	if m := s.Metrics(); m.BatchedRuns != 5 {
		t.Errorf("metrics report %d batched runs, want 5", m.BatchedRuns)
	}
}

func TestHTTPHealthzAndMetricsz(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != 1 || m.QueueCapacity != 2 {
		t.Fatalf("metrics = %+v, want 1 worker, queue capacity 2", m)
	}

	// Draining flips healthz to 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPMethodRouting(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /v1/run should not succeed")
	}
}
