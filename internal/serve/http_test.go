package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHTTPRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/run", `{"cycles":1200,"warmupCycles":1000,"seed":5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, body)
	}
	if len(rr.Key) != 64 || rr.Cached || rr.Result.PacketsDelivered == 0 {
		t.Fatalf("unexpected response: key=%q cached=%v delivered=%d", rr.Key, rr.Cached, rr.Result.PacketsDelivered)
	}

	// The duplicate comes back cached with the same key.
	resp2, body2 := postJSON(t, ts.URL+"/v1/run", `{"cycles":1200,"warmupCycles":1000,"seed":5}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate status %d: %s", resp2.StatusCode, body2)
	}
	var rr2 RunResponse
	if err := json.Unmarshal(body2, &rr2); err != nil {
		t.Fatal(err)
	}
	if !rr2.Cached || rr2.Key != rr.Key {
		t.Fatalf("duplicate not served from cache: %+v", rr2)
	}
}

func TestHTTPRunRejectsBadBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`{"cyclez":100}`,
		`{"architecture":"hypercube"}`,
		`not json`,
		`{"cycles":100}{"cycles":200}`,
	}
	for _, body := range cases {
		resp, _ := postJSON(t, ts.URL+"/v1/run", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHTTPSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", `{
		"base": {"cycles": 1200, "warmupCycles": 1000, "seed": 6},
		"architectures": ["firefly", "d-hetpnoc"],
		"loadScales": [0.5, 1]
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 4 {
		t.Fatalf("sweep returned %d points, want 4", len(sr.Points))
	}
	keys := map[string]bool{}
	for i, p := range sr.Points {
		if p.Result.PacketsDelivered == 0 {
			t.Errorf("point %d delivered an empty result", i)
		}
		keys[p.Key] = true
	}
	if len(keys) != 4 {
		t.Fatalf("sweep points share keys: %d distinct of 4", len(keys))
	}
}

func TestHTTPHealthzAndMetricsz(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != 1 || m.QueueCapacity != 2 {
		t.Fatalf("metrics = %+v, want 1 worker, queue capacity 2", m)
	}

	// Draining flips healthz to 503.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
}

func TestHTTPMethodRouting(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /v1/run should not succeed")
	}
}
