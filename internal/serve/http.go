package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hetpnoc"
)

// maxBodyBytes bounds request bodies; a full 64-core custom workload
// fits in a few kilobytes, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// RunResponse is the /v1/run reply.
type RunResponse struct {
	// Key is the hex content address of the simulation.
	Key string `json:"key"`
	// Cached reports the result came from the completed-run cache.
	Cached bool `json:"cached"`
	// Coalesced reports the request shared an identical in-flight run.
	Coalesced bool `json:"coalesced"`
	// Batched reports the run executed inside a shared-prefix batch:
	// the sweep grouped it with other points selecting the same fabric
	// build (Config.NormalizedPrefix) and it forked off the shared
	// fabric instead of paying its own build.
	Batched bool           `json:"batched,omitempty"`
	Result  hetpnoc.Result `json:"result"`
}

// SweepResponse is the /v1/sweep reply; points preserve request order.
type SweepResponse struct {
	Points []RunResponse `json:"points"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/run      — execute (or fetch) one simulation
//	POST /v1/sweep    — execute a parameter sweep through the same pool
//	GET  /healthz     — liveness; 503 while draining
//	GET  /metricsz    — JSON counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cfg, err := DecodeRunRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out, err := s.Submit(r.Context(), cfg)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{
		Key:       out.Key.String(),
		Cached:    out.Cached,
		Coalesced: out.Coalesced,
		Result:    out.Result,
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	configs, err := DecodeSweepRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	points, err := s.runSweep(r.Context(), configs)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SweepResponse{Points: points})
}

// runSweep partitions the points by batch prefix (Config.NormalizedPrefix)
// and executes each partition as one unit of work, with at most Workers
// concurrent units. Partitions of two or more points go through
// SubmitBatch — one fabric build per partition, every point forked off
// it — while singletons take the ordinary Submit path and keep its
// coalescing with concurrent /v1/run traffic. Singletons hitting pool
// backpressure back off and retry until the request context expires —
// a sweep is one logical request, so a transiently full queue should
// stretch it, not shred it.
func (s *Server) runSweep(ctx context.Context, configs []hetpnoc.Config) ([]RunResponse, error) {
	groups, err := groupByPrefix(configs)
	if err != nil {
		return nil, err
	}
	points := make([]RunResponse, len(configs))
	errs := make([]error, len(groups))
	sem := make(chan struct{}, s.cfg.Workers)
	var wg sync.WaitGroup
	for gi, members := range groups {
		sem <- struct{}{}
		wg.Add(1)
		go func(gi int, members []int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[gi] = s.runSweepGroup(ctx, configs, members, points)
		}(gi, members)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// runSweepGroup executes one prefix partition and writes each member's
// response into its original slot.
func (s *Server) runSweepGroup(ctx context.Context, configs []hetpnoc.Config, members []int, points []RunResponse) error {
	if len(members) == 1 {
		i := members[0]
		out, err := s.submitWithRetry(ctx, configs[i])
		if err != nil {
			return err
		}
		points[i] = sweepPoint(out)
		return nil
	}
	cfgs := make([]hetpnoc.Config, len(members))
	for mi, i := range members {
		cfgs[mi] = configs[i]
	}
	outs, err := s.SubmitBatch(ctx, cfgs)
	if err != nil {
		return err
	}
	for mi, i := range members {
		points[i] = sweepPoint(outs[mi])
	}
	return nil
}

func sweepPoint(out Outcome) RunResponse {
	return RunResponse{
		Key:       out.Key.String(),
		Cached:    out.Cached,
		Coalesced: out.Coalesced,
		Batched:   out.Batched,
		Result:    out.Result,
	}
}

// groupByPrefix partitions the request indices by the canonical bytes of
// each config's NormalizedPrefix, preserving request order within and
// across groups (first-appearance order).
func groupByPrefix(configs []hetpnoc.Config) ([][]int, error) {
	var groups [][]int
	byKey := make(map[string]int)
	for i, cfg := range configs {
		prefix, err := json.Marshal(cfg.NormalizedPrefix())
		if err != nil {
			return nil, err
		}
		if gi, ok := byKey[string(prefix)]; ok {
			groups[gi] = append(groups[gi], i)
			continue
		}
		byKey[string(prefix)] = len(groups)
		groups = append(groups, []int{i})
	}
	return groups, nil
}

// submitWithRetry retries ErrBusy with the server's backoff hint until
// ctx gives up.
func (s *Server) submitWithRetry(ctx context.Context, cfg hetpnoc.Config) (Outcome, error) {
	for {
		out, err := s.Submit(ctx, cfg)
		if !errors.Is(err, ErrBusy) {
			return out, err
		}
		t := time.NewTimer(s.cfg.RetryAfter)
		select {
		case <-ctx.Done():
			t.Stop()
			return Outcome{}, ctx.Err()
		case <-t.C:
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// writeSubmitError maps Submit failures onto HTTP semantics: full queue
// → 429 + Retry-After, draining → 503, job timeout → 504, client gone →
// 499 (nginx's convention), config rejection → 400.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for logs only.
		writeError(w, 499, err)
	case errors.Is(err, ErrSimulation):
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// retryAfterSeconds renders the hint in whole seconds, at least 1 (a
// Retry-After of 0 invites an immediate stampede).
func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
