package experiments

import (
	"fmt"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
	"hetpnoc/internal/units"
)

// LatencyPoint is one point of a load-latency curve.
type LatencyPoint struct {
	LoadScale        float64    `json:"loadScale"`
	OfferedGbps      units.Gbps `json:"offeredGbps"`
	DeliveredGbps    units.Gbps `json:"deliveredGbps"`
	AvgLatencyCycles float64    `json:"avgLatencyCycles"`
	MaxLatencyCycles int64      `json:"maxLatencyCycles"`
}

// LoadLatencyCurve sweeps the offered load for one architecture/pattern
// pair and returns the classic NoC latency-throughput curve: latency
// rises gently until the network saturates, then climbs steeply while
// delivered bandwidth flattens. The thesis reports only the saturation
// point ("peak bandwidth"); the full curve is an extension used by the
// ablation analysis and the examples.
func LoadLatencyCurve(opts Options, arch fabric.Arch, pattern traffic.Pattern,
	set traffic.BandwidthSet, loads []float64) ([]LatencyPoint, error) {
	opts = opts.withDefaults()
	if len(loads) == 0 {
		loads = []float64{0.2, 0.4, 0.6, 0.8, 1.0, 1.2}
	}
	points := make([]LatencyPoint, 0, len(loads))
	for _, load := range loads {
		f, err := fabric.New(fabric.Config{
			Topology:     opts.Topology,
			Set:          set,
			Arch:         arch,
			Pattern:      pattern,
			LoadScale:    load,
			Cycles:       opts.Cycles,
			WarmupCycles: opts.WarmupCycles,
			Seed:         opts.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: latency curve at load %g: %w", load, err)
		}
		res, err := f.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: latency curve at load %g: %w", load, err)
		}
		points = append(points, LatencyPoint{
			LoadScale:        load,
			OfferedGbps:      res.OfferedGbps,
			DeliveredGbps:    res.Stats.DeliveredGbps,
			AvgLatencyCycles: res.Stats.AvgLatencyCycles,
			MaxLatencyCycles: int64(res.Stats.MaxLatencyCycles),
		})
	}
	return points, nil
}
