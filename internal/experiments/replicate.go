package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"
)

// Replicated aggregates one matrix point over several seeds: mean, sample
// standard deviation and a normal-approximation 95% confidence half-width
// for the two headline metrics. The thesis reports single runs; replicated
// runs let EXPERIMENTS.md distinguish real effects from seed noise.
type Replicated struct {
	Set     string `json:"set"`
	Pattern string `json:"pattern"`
	Arch    string `json:"arch"`
	Seeds   int    `json:"seeds"`

	BandwidthMeanGbps float64 `json:"bandwidthMeanGbps"`
	BandwidthStdGbps  float64 `json:"bandwidthStdGbps"`
	BandwidthCI95Gbps float64 `json:"bandwidthCi95Gbps"`

	EPMMeanPJ float64 `json:"epmMeanPJ"`
	EPMStdPJ  float64 `json:"epmStdPJ"`
	EPMCI95PJ float64 `json:"epmCi95PJ"`
}

// RunReplicated executes the point once per seed (opts.Seed, opts.Seed+1,
// ...) and aggregates the results.
//
//hetpnoc:ctxroot synchronous public wrapper over RunReplicatedContext, mirrors RunMatrix
func RunReplicated(opts Options, p Point, seeds int) (Replicated, error) {
	return RunReplicatedContext(context.Background(), opts, p, seeds)
}

// RunReplicatedContext is RunReplicated with cancellation: ctx reaches
// every replicate's fabric via runPoint, so canceling aborts the whole
// replication at the next cancellation check instead of leaking seeds.
func RunReplicatedContext(ctx context.Context, opts Options, p Point, seeds int) (Replicated, error) {
	if seeds < 2 {
		return Replicated{}, fmt.Errorf("experiments: replication needs >= 2 seeds, got %d", seeds)
	}
	opts = opts.withDefaults()

	points := make([]Point, seeds)
	for i := range points {
		points[i] = p
	}
	// Run each replicate with its own seed by staggering opts per run.
	bandwidths := make([]float64, seeds)
	epms := make([]float64, seeds)
	rows := make([]Row, seeds)
	errs := make([]error, seeds)

	// Acquire the semaphore before spawning so at most Parallelism
	// replicate goroutines exist at once.
	sem := make(chan struct{}, opts.Parallelism)
	var wg sync.WaitGroup
	for i := 0; i < seeds; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			o := opts
			o.Seed = opts.Seed + uint64(i)
			rows[i], errs[i] = runPoint(ctx, o, p)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Replicated{}, err
		}
		bandwidths[i] = rows[i].PeakBandwidthGbps
		epms[i] = rows[i].EnergyPerMessagePJ
	}

	bwMean, bwStd := meanStd(bandwidths)
	epmMean, epmStd := meanStd(epms)
	z := 1.96 / math.Sqrt(float64(seeds))
	return Replicated{
		Set:               p.Set.Name,
		Pattern:           p.Pattern.Name(),
		Arch:              p.Arch.String(),
		Seeds:             seeds,
		BandwidthMeanGbps: bwMean,
		BandwidthStdGbps:  bwStd,
		BandwidthCI95Gbps: z * bwStd,
		EPMMeanPJ:         epmMean,
		EPMStdPJ:          epmStd,
		EPMCI95PJ:         z * epmStd,
	}, nil
}

// meanStd returns the sample mean and (n-1) standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// SignificantGain reports whether architecture b's bandwidth mean exceeds
// a's beyond the sum of their confidence half-widths — a conservative
// "the gain is not seed noise" check used by the statistical tests.
func SignificantGain(a, b Replicated) bool {
	return b.BandwidthMeanGbps-a.BandwidthMeanGbps > a.BandwidthCI95Gbps+b.BandwidthCI95Gbps
}
