package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleRows() []Row {
	return []Row{
		{
			Set: "BW1", Pattern: "skewed2", Arch: "firefly", AtLoad: 1,
			PeakBandwidthGbps: 558.5, PerCoreGbps: 8.73, EnergyPerMessagePJ: 21009.6,
			OfferedGbps: 912.5, PacketsDelivered: 2726, PacketsDropped: 0,
			Retransmissions: 0, AvgLatencyCycles: 2215.4,
		},
		{
			Set: "BW1", Pattern: "skewed2", Arch: "d-hetpnoc", AtLoad: 1,
			PeakBandwidthGbps: 789.5, PerCoreGbps: 12.34, EnergyPerMessagePJ: 12200.7,
			OfferedGbps: 912.5, PacketsDelivered: 3854, PacketsDropped: 3,
			Retransmissions: 3, AvgLatencyCycles: 891.7,
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rows := sampleRows()
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ParseRowsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("round trip lost rows: %d != %d", len(got), len(rows))
	}
	for i := range rows {
		want := rows[i]
		want.AllocatedWavelengths = nil // not serialized in CSV
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("row %d round trip:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRowsJSON(&buf, sampleRows()); err != nil {
		t.Fatal(err)
	}
	var decoded []Row
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[1].Arch != "d-hetpnoc" {
		t.Fatalf("JSON round trip broken: %+v", decoded)
	}
}

func TestAblationsCSV(t *testing.T) {
	var buf bytes.Buffer
	rows := []AblationRow{
		{Study: "s", Variant: "v", PeakBandwidthGbps: 1, EnergyPerMessagePJ: 2, AvgLatencyCycles: 3, AreaMM2: 4},
	}
	if err := WriteAblationsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1", len(lines))
	}
	if !strings.HasPrefix(lines[1], "s,v,1,2,3,4") {
		t.Fatalf("unexpected record %q", lines[1])
	}
}

func TestLatencyCSV(t *testing.T) {
	var buf bytes.Buffer
	points := []LatencyPoint{{LoadScale: 0.5, OfferedGbps: 400, DeliveredGbps: 399, AvgLatencyCycles: 120, MaxLatencyCycles: 300}}
	if err := WriteLatencyCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.5,400,399,120,300") {
		t.Fatalf("unexpected CSV %q", buf.String())
	}
}

func TestParseRowsCSVErrors(t *testing.T) {
	if _, err := ParseRowsCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	bad := "set,pattern,arch,atLoad,peakBandwidthGbps,perCoreGbps,energyPerMessagePJ,offeredGbps,packetsDelivered,packetsDropped,retransmissions,avgLatencyCycles\nBW1,u,f,notanumber,1,1,1,1,1,1,1,1\n"
	if _, err := ParseRowsCSV(strings.NewReader(bad)); err == nil {
		t.Error("malformed float accepted")
	}
}
