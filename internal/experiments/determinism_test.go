package experiments

import (
	"reflect"
	"testing"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
)

// TestRunMatrixParallelDeterminism: the matrix runner parallelizes across
// goroutines, but each run's state is isolated and seeded, so two
// executions produce identical rows regardless of scheduling.
func TestRunMatrixParallelDeterminism(t *testing.T) {
	points := []Point{
		{Set: traffic.BWSet1, Pattern: traffic.Uniform{}, Arch: fabric.Firefly},
		{Set: traffic.BWSet1, Pattern: traffic.Skewed{Level: 2}, Arch: fabric.DHetPNoC},
		{Set: traffic.BWSet1, Pattern: traffic.Skewed{Level: 3}, Arch: fabric.Firefly},
		{Set: traffic.BWSet1, Pattern: traffic.RealApp{}, Arch: fabric.DHetPNoC},
	}
	opts := quickOpts()
	opts.Parallelism = 4

	a, err := RunMatrix(opts, points)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 1
	b, err := RunMatrix(opts, points)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel and serial matrices differ:\n%+v\n%+v", a, b)
	}
}
