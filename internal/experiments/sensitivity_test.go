package experiments

import "testing"

// TestEPMConclusionRobustToCalibration: the Figure 3-4 sign — d-HetPNoC
// dissipates less per message under skewed traffic — must hold across a
// 16x range of the calibrated congestion-energy constant.
func TestEPMConclusionRobustToCalibration(t *testing.T) {
	rows, err := EnergySensitivity(quickOpts(), []float64{0.25, 1.0, 4.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 parameters x 3 scales
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.DHetSavingPct <= 0 {
			t.Errorf("%s x%.2f: d-HetPNoC saving %.2f%% — conclusion flipped",
				r.Parameter, r.Scale, r.DHetSavingPct)
		}
	}
}

// TestSensitivitySavingGrowsWithCongestionWeight: scaling up the
// congestion term amplifies the saving (Firefly's queues are deeper), so
// the saving must be monotone in the buffer-residency scale.
func TestSensitivitySavingGrowsWithCongestionWeight(t *testing.T) {
	rows, err := EnergySensitivity(quickOpts(), []float64{0.5, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	var low, high float64
	for _, r := range rows {
		if r.Parameter != "buffer-residency" {
			continue
		}
		if r.Scale == 0.5 {
			low = r.DHetSavingPct
		}
		if r.Scale == 2.0 {
			high = r.DHetSavingPct
		}
	}
	if high <= low {
		t.Fatalf("saving not monotone in congestion weight: %.2f%% at 0.5x, %.2f%% at 2x", low, high)
	}
}

func TestSensitivityValidation(t *testing.T) {
	if _, err := EnergySensitivity(quickOpts(), []float64{-1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}
