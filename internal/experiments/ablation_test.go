package experiments

import (
	"testing"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
)

func TestReservationPipeliningAblationDirection(t *testing.T) {
	rows, err := ReservationPipeliningAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	pipelined, serialized := rows[0], rows[1]
	if pipelined.Variant != "pipelined" || serialized.Variant != "serialized" {
		t.Fatalf("unexpected variants %q, %q", pipelined.Variant, serialized.Variant)
	}
	if pipelined.PeakBandwidthGbps <= serialized.PeakBandwidthGbps {
		t.Fatalf("pipelined reservations (%.1f Gb/s) not faster than serialized (%.1f)",
			pipelined.PeakBandwidthGbps, serialized.PeakBandwidthGbps)
	}
	if pipelined.AvgLatencyCycles >= serialized.AvgLatencyCycles {
		t.Fatalf("pipelined latency (%.1f) not below serialized (%.1f)",
			pipelined.AvgLatencyCycles, serialized.AvgLatencyCycles)
	}
}

func TestAcquisitionChunkAblationAvoidsStarvation(t *testing.T) {
	rows, err := AcquisitionChunkAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byVariant := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	// The default chunk (8) must beat unlimited acquisition (64), which
	// lets the first token holders starve the rest.
	if byVariant["chunk-8"].PeakBandwidthGbps <= byVariant["chunk-64"].PeakBandwidthGbps {
		t.Fatalf("chunked acquisition (%.1f) not above greedy (%.1f)",
			byVariant["chunk-8"].PeakBandwidthGbps, byVariant["chunk-64"].PeakBandwidthGbps)
	}
}

func TestReservedMinimumAblationTradeoff(t *testing.T) {
	rows, err := ReservedMinimumAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// A larger reserve shrinks the dynamically shareable pool, so peak
	// bandwidth under skew must not increase.
	for i := 1; i < len(rows); i++ {
		if rows[i].PeakBandwidthGbps > rows[i-1].PeakBandwidthGbps+1 {
			t.Fatalf("reserve %s (%.1f Gb/s) above %s (%.1f)",
				rows[i].Variant, rows[i].PeakBandwidthGbps,
				rows[i-1].Variant, rows[i-1].PeakBandwidthGbps)
		}
	}
}

func TestWaveguideRestrictionAblationTradesAreaForBandwidth(t *testing.T) {
	rows, err := WaveguideRestrictionAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byVariant := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	unrestricted := byVariant["unrestricted"]
	restricted := byVariant["2-waveguides"]
	if restricted.AreaMM2 >= unrestricted.AreaMM2 {
		t.Fatalf("restriction did not shrink area: %.3f vs %.3f",
			restricted.AreaMM2, unrestricted.AreaMM2)
	}
	if restricted.PeakBandwidthGbps > unrestricted.PeakBandwidthGbps {
		t.Fatalf("restriction increased bandwidth: %.1f vs %.1f",
			restricted.PeakBandwidthGbps, unrestricted.PeakBandwidthGbps)
	}
	// The thesis's pitch: a modest bandwidth cost for the area saving.
	if restricted.PeakBandwidthGbps < 0.85*unrestricted.PeakBandwidthGbps {
		t.Fatalf("restriction cost %.1f%% bandwidth, should be modest",
			(1-restricted.PeakBandwidthGbps/unrestricted.PeakBandwidthGbps)*100)
	}
}

func TestIntraClusterAblationRuns(t *testing.T) {
	rows, err := IntraClusterAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PeakBandwidthGbps <= 0 {
			t.Fatalf("%s delivered nothing", r.Variant)
		}
	}
}

func TestArchitectureComparisonRuns(t *testing.T) {
	rows, err := ArchitectureComparison(quickOpts(), traffic.BWSet1, traffic.Skewed{Level: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 architectures", len(rows))
	}
	byVariant := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		if r.PeakBandwidthGbps <= 0 {
			t.Fatalf("%s delivered nothing", r.Variant)
		}
		byVariant[r.Variant] = r
	}
	// The headline claim must survive the three-way comparison too.
	if byVariant["d-hetpnoc"].PeakBandwidthGbps <= byVariant["firefly"].PeakBandwidthGbps {
		t.Fatal("d-HetPNoC not above Firefly in the comparison")
	}
}

func TestLoadLatencyCurveShape(t *testing.T) {
	points, err := LoadLatencyCurve(quickOpts(), fabric.DHetPNoC, traffic.Uniform{},
		traffic.BWSet1, []float64{0.4, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	light, saturated := points[0], points[1]
	// Latency must rise toward saturation; delivered bandwidth must grow
	// with offered load below saturation.
	if saturated.AvgLatencyCycles <= light.AvgLatencyCycles {
		t.Fatalf("latency did not rise with load: %.1f -> %.1f",
			light.AvgLatencyCycles, saturated.AvgLatencyCycles)
	}
	if saturated.DeliveredGbps <= light.DeliveredGbps {
		t.Fatalf("throughput did not rise with load: %.1f -> %.1f",
			light.DeliveredGbps, saturated.DeliveredGbps)
	}
}

func TestAllocationPolicyAblation(t *testing.T) {
	rows, err := AllocationPolicyAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byVariant := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		if r.PeakBandwidthGbps <= 0 {
			t.Fatalf("%s delivered nothing", r.Variant)
		}
		byVariant[r.Variant] = r
	}
	// With the default chunking the proportional policy must be at least
	// competitive (it removes first-come starvation at a small
	// quantization cost).
	greedy := byVariant["greedy-chunked"].PeakBandwidthGbps
	prop := byVariant["proportional-chunked"].PeakBandwidthGbps
	if prop < 0.9*greedy {
		t.Fatalf("proportional policy lost badly: %.1f vs %.1f Gb/s", prop, greedy)
	}
	t.Logf("chunked: greedy %.1f Gb/s, proportional %.1f Gb/s", greedy, prop)
}

func TestBurstinessAblationDegradesLatency(t *testing.T) {
	rows, err := BurstinessAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	byVariant := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		byVariant[r.Variant] = r
	}
	// Burstier traffic at the same average rate must not improve latency.
	smooth := byVariant["d-hetpnoc-x1"].AvgLatencyCycles
	bursty := byVariant["d-hetpnoc-x16"].AvgLatencyCycles
	if bursty < smooth {
		t.Fatalf("x16 bursty latency %.1f below smooth %.1f", bursty, smooth)
	}
	t.Logf("d-hetpnoc latency: smooth %.1f, x16 bursty %.1f cycles", smooth, bursty)
}

// TestProportionalFixesUnboundedGreedyStarvation: without the per-visit
// acquisition chunk, the greedy policy lets the first token holders drain
// the pool and starve later clusters; the proportional policy's share
// bound prevents that, winning both service fairness and bandwidth in the
// unbounded configuration.
func TestProportionalFixesUnboundedGreedyStarvation(t *testing.T) {
	rows, err := AllocationPolicyAblation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byVariant := make(map[string]AblationRow, len(rows))
	for _, r := range rows {
		if r.FairnessJain <= 0 || r.FairnessJain > 1 {
			t.Fatalf("%s fairness %g outside (0,1]", r.Variant, r.FairnessJain)
		}
		byVariant[r.Variant] = r
	}
	greedy := byVariant["greedy-unbounded"]
	prop := byVariant["proportional-unbounded"]
	t.Logf("unbounded: greedy %.1f Gb/s (fairness %.3f), proportional %.1f Gb/s (fairness %.3f)",
		greedy.PeakBandwidthGbps, greedy.FairnessJain, prop.PeakBandwidthGbps, prop.FairnessJain)
	if prop.FairnessJain <= greedy.FairnessJain {
		t.Fatalf("proportional fairness %.3f not above unbounded greedy %.3f",
			prop.FairnessJain, greedy.FairnessJain)
	}
	if prop.PeakBandwidthGbps <= greedy.PeakBandwidthGbps {
		t.Fatalf("proportional bandwidth %.1f not above unbounded greedy %.1f",
			prop.PeakBandwidthGbps, greedy.PeakBandwidthGbps)
	}
}
