package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"hetpnoc/internal/units"
)

// WriteRowsJSON serializes matrix rows as indented JSON.
func WriteRowsJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WriteRowsCSV serializes matrix rows as CSV with a header, for plotting
// the figures with external tools.
func WriteRowsCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"set", "pattern", "arch", "atLoad",
		"peakBandwidthGbps", "perCoreGbps", "energyPerMessagePJ", "offeredGbps",
		"packetsDelivered", "packetsDropped", "retransmissions", "avgLatencyCycles",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		record := []string{
			r.Set, r.Pattern, r.Arch,
			formatFloat(r.AtLoad),
			formatFloat(float64(r.PeakBandwidthGbps)),
			formatFloat(float64(r.PerCoreGbps)),
			formatFloat(float64(r.EnergyPerMessagePJ)),
			formatFloat(float64(r.OfferedGbps)),
			strconv.FormatInt(r.PacketsDelivered, 10),
			strconv.FormatInt(r.PacketsDropped, 10),
			strconv.FormatInt(r.Retransmissions, 10),
			formatFloat(r.AvgLatencyCycles),
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAblationsCSV serializes ablation rows as CSV with a header.
func WriteAblationsCSV(w io.Writer, rows []AblationRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"study", "variant", "peakBandwidthGbps", "energyPerMessagePJ", "avgLatencyCycles", "areaMM2"}); err != nil {
		return err
	}
	for _, r := range rows {
		record := []string{
			r.Study, r.Variant,
			formatFloat(float64(r.PeakBandwidthGbps)),
			formatFloat(float64(r.EnergyPerMessagePJ)),
			formatFloat(r.AvgLatencyCycles),
			formatFloat(float64(r.AreaMM2)),
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLatencyCSV serializes a load-latency curve as CSV with a header.
func WriteLatencyCSV(w io.Writer, points []LatencyPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"loadScale", "offeredGbps", "deliveredGbps", "avgLatencyCycles", "maxLatencyCycles"}); err != nil {
		return err
	}
	for _, p := range points {
		record := []string{
			formatFloat(p.LoadScale),
			formatFloat(float64(p.OfferedGbps)),
			formatFloat(float64(p.DeliveredGbps)),
			formatFloat(p.AvgLatencyCycles),
			strconv.FormatInt(p.MaxLatencyCycles, 10),
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseRowsCSV reads back rows written by WriteRowsCSV — round-trip
// support for archiving experiment outputs.
func ParseRowsCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("experiments: empty CSV")
	}
	rows := make([]Row, 0, len(records)-1)
	for i, rec := range records[1:] {
		if len(rec) != 12 {
			return nil, fmt.Errorf("experiments: record %d has %d fields, want 12", i+1, len(rec))
		}
		var row Row
		row.Set, row.Pattern, row.Arch = rec[0], rec[1], rec[2]
		floats := []struct {
			idx int
			set func(float64)
		}{
			{3, func(v float64) { row.AtLoad = v }},
			{4, func(v float64) { row.PeakBandwidthGbps = units.Gbps(v) }},
			{5, func(v float64) { row.PerCoreGbps = units.Gbps(v) }},
			{6, func(v float64) { row.EnergyPerMessagePJ = units.Picojoule(v) }},
			{7, func(v float64) { row.OfferedGbps = units.Gbps(v) }},
			{11, func(v float64) { row.AvgLatencyCycles = v }},
		}
		for _, f := range floats {
			v, err := strconv.ParseFloat(rec[f.idx], 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: record %d field %d: %w", i+1, f.idx, err)
			}
			f.set(v)
		}
		ints := []struct {
			idx int
			dst *int64
		}{
			{8, &row.PacketsDelivered}, {9, &row.PacketsDropped}, {10, &row.Retransmissions},
		}
		for _, f := range ints {
			v, err := strconv.ParseInt(rec[f.idx], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("experiments: record %d field %d: %w", i+1, f.idx, err)
			}
			*f.dst = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}
