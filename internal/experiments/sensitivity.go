package experiments

import (
	"fmt"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/traffic"
	"hetpnoc/internal/units"
)

// SensitivityRow records the architectures' energy-per-message comparison
// under one scaling of a calibrated energy constant.
type SensitivityRow struct {
	Parameter string  `json:"parameter"`
	Scale     float64 `json:"scale"`

	FireflyEPMPJ  units.Picojoule `json:"fireflyEpmPJ"`
	DHetPNoCEPMPJ units.Picojoule `json:"dhetpnocEpmPJ"`
	// DHetSavingPct is positive when d-HetPNoC dissipates less per
	// message.
	DHetSavingPct float64 `json:"dhetSavingPct"`
}

// EnergySensitivity sweeps the two calibrated (non-Table-3-4) energy
// constants — the congestion-sensitive buffer-retention term and the
// idle-detector term — and re-measures the Figure 3-4 comparison at each
// scaling. The paper's qualitative claim (d-HetPNoC dissipates less per
// message under skewed traffic) should not depend on our calibration;
// this experiment demonstrates that, quantifying EXPERIMENTS.md's
// deviation discussion.
func EnergySensitivity(opts Options, scales []float64) ([]SensitivityRow, error) {
	opts = opts.withDefaults()
	if len(scales) == 0 {
		scales = []float64{0.25, 0.5, 1.0, 2.0, 4.0}
	}

	run := func(arch fabric.Arch, energy photonic.EnergyParams) (units.Picojoule, error) {
		f, err := fabric.New(fabric.Config{
			Topology:     opts.Topology,
			Set:          traffic.BWSet1,
			Arch:         arch,
			Pattern:      traffic.Skewed{Level: 2},
			Cycles:       opts.Cycles,
			WarmupCycles: opts.WarmupCycles,
			Seed:         opts.Seed,
			Energy:       energy,
		})
		if err != nil {
			return 0, err
		}
		res, err := f.Run()
		if err != nil {
			return 0, err
		}
		return res.EnergyPerMessagePJ, nil
	}

	var rows []SensitivityRow
	for _, param := range []string{"buffer-residency", "idle-detector"} {
		for _, scale := range scales {
			if scale <= 0 {
				return nil, fmt.Errorf("experiments: sensitivity scale must be positive, got %g", scale)
			}
			energy := photonic.DefaultEnergyParams()
			switch param {
			case "buffer-residency":
				energy.BufferResidencyPJPerBitCycle = energy.BufferResidencyPJPerBitCycle.Times(scale)
			case "idle-detector":
				energy.IdleDetectorPJPerWavelengthCycle = energy.IdleDetectorPJPerWavelengthCycle.Times(scale)
			}
			ff, err := run(fabric.Firefly, energy)
			if err != nil {
				return nil, err
			}
			dh, err := run(fabric.DHetPNoC, energy)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SensitivityRow{
				Parameter:     param,
				Scale:         scale,
				FireflyEPMPJ:  ff,
				DHetPNoCEPMPJ: dh,
				DHetSavingPct: float64((1 - dh/ff) * 100),
			})
		}
	}
	return rows, nil
}
