package experiments

import (
	"fmt"

	"hetpnoc/internal/area"
	"hetpnoc/internal/fabric"
	"hetpnoc/internal/gpgpu"
	"hetpnoc/internal/traffic"
	"hetpnoc/internal/units"
)

// standardPatterns are the traffic patterns of Figures 3-3/3-4/3-7/3-10:
// uniform-random plus the three skewed levels of Table 3-1.
func standardPatterns() []traffic.Pattern {
	return []traffic.Pattern{
		traffic.Uniform{},
		traffic.Skewed{Level: 1},
		traffic.Skewed{Level: 2},
		traffic.Skewed{Level: 3},
	}
}

// PeakBandwidth reproduces Figures 3-3 (peak bandwidth) and 3-4 (packet
// energy): both architectures under uniform and skewed traffic, for each
// requested bandwidth set. The returned rows carry both metrics.
func PeakBandwidth(opts Options, sets []traffic.BandwidthSet) ([]Row, error) {
	var points []Point
	for _, set := range sets {
		for _, p := range standardPatterns() {
			for _, arch := range []fabric.Arch{fabric.Firefly, fabric.DHetPNoC} {
				points = append(points, Point{Set: set, Pattern: p, Arch: arch})
			}
		}
	}
	return RunMatrix(opts, points)
}

// CaseStudies reproduces Figure 3-5: the four skewed-hotspot synthetic
// patterns of §3.4.2 plus the real-application GPU/memory traffic, for
// both architectures at the given bandwidth set.
func CaseStudies(opts Options, set traffic.BandwidthSet) ([]Row, error) {
	var patterns []traffic.Pattern
	for _, h := range traffic.CaseStudies() {
		patterns = append(patterns, h)
	}
	patterns = append(patterns, traffic.RealApp{})

	var points []Point
	for _, p := range patterns {
		for _, arch := range []fabric.Arch{fabric.Firefly, fabric.DHetPNoC} {
			points = append(points, Point{Set: set, Pattern: p, Arch: arch})
		}
	}
	return RunMatrix(opts, points)
}

// AreaSweep reproduces Figure 3-6: total electro-optic device area of both
// architectures as the aggregate data bandwidth grows.
func AreaSweep(wavelengths []int) []area.Point {
	if len(wavelengths) == 0 {
		wavelengths = []int{64, 128, 192, 256, 320, 384, 448, 512}
	}
	return area.Sweep(wavelengths)
}

// Figure1_1 reproduces the Figure 1-1 motivation study via the GPGPU-Sim
// substitute model.
func Figure1_1() ([]gpgpu.SpeedupPoint, error) {
	return gpgpu.Figure1_1()
}

// ScalingRow is one point of the Figures 3-7/3-10 series: one
// architecture, pattern and bandwidth set, annotated with the area model.
type ScalingRow struct {
	Row
	TotalWavelengths int                    `json:"totalWavelengths"`
	AreaMM2          units.SquareMillimeter `json:"areaMM2"`
}

// ScalingSeries reproduces Figure 3-7 (arch = DHetPNoC) and Figure 3-10
// (arch = Firefly): peak core bandwidth and energy per message across the
// three bandwidth sets for uniform and skewed traffic, with the analytic
// area attached.
func ScalingSeries(opts Options, arch fabric.Arch) ([]ScalingRow, error) {
	var points []Point
	for _, set := range traffic.BandwidthSets() {
		for _, p := range standardPatterns() {
			points = append(points, Point{Set: set, Pattern: p, Arch: arch})
		}
	}
	rows, err := RunMatrix(opts, points)
	if err != nil {
		return nil, err
	}
	out := make([]ScalingRow, len(rows))
	for i, r := range rows {
		set, err := setByName(r.Set)
		if err != nil {
			return nil, err
		}
		cfg := area.DefaultConfig(set.TotalWavelengths)
		a := cfg.DynamicAreaMM2()
		if arch == fabric.Firefly {
			a = cfg.FireflyAreaMM2()
		}
		out[i] = ScalingRow{Row: r, TotalWavelengths: set.TotalWavelengths, AreaMM2: a}
	}
	return out, nil
}

// WavelengthPoint is one point of the Figures 3-8/3-9 series.
type WavelengthPoint struct {
	TotalWavelengths   int                    `json:"totalWavelengths"`
	PeakBandwidthGbps  units.Gbps             `json:"peakBandwidthGbps"`
	EnergyPerMessagePJ units.Picojoule        `json:"energyPerMessagePJ"`
	AreaMM2            units.SquareMillimeter `json:"areaMM2"`

	// Percentage changes relative to the first point, matching the
	// thesis's headline summary (+751.31% bandwidth, +70% area, -10.89%
	// energy per message for d-HetPNoC from 64 to 512 wavelengths).
	BandwidthChangePct float64 `json:"bandwidthChangePct"`
	EPMChangePct       float64 `json:"epmChangePct"`
	AreaChangePct      float64 `json:"areaChangePct"`
}

// WavelengthScaling reproduces Figures 3-8 and 3-9: the effect of growing
// the total wavelength count (64 -> 256 -> 512) on peak bandwidth, energy
// per message and area for the given architecture under Skewed 3 traffic.
func WavelengthScaling(opts Options, arch fabric.Arch) ([]WavelengthPoint, error) {
	var points []Point
	for _, set := range traffic.BandwidthSets() {
		points = append(points, Point{Set: set, Pattern: traffic.Skewed{Level: 3}, Arch: arch})
	}
	rows, err := RunMatrix(opts, points)
	if err != nil {
		return nil, err
	}
	out := make([]WavelengthPoint, len(rows))
	for i, r := range rows {
		set, err := setByName(r.Set)
		if err != nil {
			return nil, err
		}
		cfg := area.DefaultConfig(set.TotalWavelengths)
		a := cfg.DynamicAreaMM2()
		if arch == fabric.Firefly {
			a = cfg.FireflyAreaMM2()
		}
		out[i] = WavelengthPoint{
			TotalWavelengths:   set.TotalWavelengths,
			PeakBandwidthGbps:  r.PeakBandwidthGbps,
			EnergyPerMessagePJ: r.EnergyPerMessagePJ,
			AreaMM2:            a,
		}
	}
	base := out[0]
	for i := range out {
		out[i].BandwidthChangePct = float64((out[i].PeakBandwidthGbps/base.PeakBandwidthGbps - 1) * 100)
		out[i].EPMChangePct = float64((out[i].EnergyPerMessagePJ/base.EnergyPerMessagePJ - 1) * 100)
		out[i].AreaChangePct = float64((out[i].AreaMM2/base.AreaMM2 - 1) * 100)
	}
	return out, nil
}

// setByName resolves a bandwidth set from its name.
func setByName(name string) (traffic.BandwidthSet, error) {
	for _, s := range traffic.BandwidthSets() {
		if s.Name == name {
			return s, nil
		}
	}
	return traffic.BandwidthSet{}, fmt.Errorf("experiments: unknown bandwidth set %q", name)
}
