package experiments

import (
	"testing"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
)

// quickOpts shrinks the runs so the whole package tests in seconds.
func quickOpts() Options {
	return Options{Cycles: 2500, WarmupCycles: 500, Seed: 1}
}

func TestRunMatrixOrderAndFields(t *testing.T) {
	points := []Point{
		{Set: traffic.BWSet1, Pattern: traffic.Uniform{}, Arch: fabric.Firefly},
		{Set: traffic.BWSet1, Pattern: traffic.Skewed{Level: 2}, Arch: fabric.DHetPNoC},
	}
	rows, err := RunMatrix(quickOpts(), points)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Arch != "firefly" || rows[0].Pattern != "uniform" || rows[0].Set != "BW1" {
		t.Fatalf("row 0 out of order: %+v", rows[0])
	}
	if rows[1].Arch != "d-hetpnoc" || rows[1].Pattern != "skewed2" {
		t.Fatalf("row 1 out of order: %+v", rows[1])
	}
	for _, r := range rows {
		if r.PeakBandwidthGbps <= 0 || r.EnergyPerMessagePJ <= 0 || r.PacketsDelivered <= 0 {
			t.Fatalf("row has empty metrics: %+v", r)
		}
		if r.AtLoad != 1.0 {
			t.Fatalf("default sweep should settle at load 1.0, got %g", r.AtLoad)
		}
	}
}

func TestRunMatrixLoadSweepKeepsBest(t *testing.T) {
	opts := quickOpts()
	opts.LoadScales = []float64{0.5, 1.0}
	rows, err := RunMatrix(opts, []Point{
		{Set: traffic.BWSet1, Pattern: traffic.Uniform{}, Arch: fabric.Firefly},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform delivered bandwidth grows with load, so the peak is at 1.0.
	if rows[0].AtLoad != 1.0 {
		t.Fatalf("peak found at load %g, want 1.0", rows[0].AtLoad)
	}
}

func TestPeakBandwidthMatrixShape(t *testing.T) {
	rows, err := PeakBandwidth(quickOpts(), []traffic.BandwidthSet{traffic.BWSet1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 patterns x 2 architectures.
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
}

func TestCaseStudiesShape(t *testing.T) {
	rows, err := CaseStudies(quickOpts(), traffic.BWSet1)
	if err != nil {
		t.Fatal(err)
	}
	// 4 hotspot cases + realapp, x 2 architectures.
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Pattern] = true
	}
	for _, want := range []string{"skewed-hotspot1", "skewed-hotspot4", "realapp"} {
		if !names[want] {
			t.Fatalf("case studies missing %q", want)
		}
	}
}

func TestAreaSweepDefaults(t *testing.T) {
	points := AreaSweep(nil)
	if len(points) != 8 {
		t.Fatalf("default sweep has %d points, want 8 (64..512)", len(points))
	}
	if points[0].DataWavelengths != 64 || points[len(points)-1].DataWavelengths != 512 {
		t.Fatalf("sweep range %d..%d, want 64..512",
			points[0].DataWavelengths, points[len(points)-1].DataWavelengths)
	}
}

func TestWavelengthScalingSeries(t *testing.T) {
	points, err := WavelengthScaling(quickOpts(), fabric.DHetPNoC)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3 (the three bandwidth sets)", len(points))
	}
	if points[0].BandwidthChangePct != 0 || points[0].AreaChangePct != 0 {
		t.Fatalf("base point deltas not zero: %+v", points[0])
	}
	// Bandwidth must grow dramatically with the wavelength budget; area
	// grows ~70% (the analytic model).
	last := points[len(points)-1]
	if last.BandwidthChangePct < 300 {
		t.Fatalf("64->512 bandwidth change %.1f%%, want a multi-x increase", last.BandwidthChangePct)
	}
	if last.AreaChangePct < 69 || last.AreaChangePct > 71 {
		t.Fatalf("64->512 area change %.1f%%, thesis says 70%%", last.AreaChangePct)
	}
}

func TestSetByName(t *testing.T) {
	if _, err := setByName("BW2"); err != nil {
		t.Fatal(err)
	}
	if _, err := setByName("nope"); err == nil {
		t.Fatal("unknown set accepted")
	}
}
