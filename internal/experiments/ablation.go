package experiments

import (
	"fmt"

	"hetpnoc/internal/area"
	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
	"hetpnoc/internal/units"
)

// AblationRow is one variant of an ablation study.
type AblationRow struct {
	Study   string `json:"study"`
	Variant string `json:"variant"`

	PeakBandwidthGbps  units.Gbps      `json:"peakBandwidthGbps"`
	EnergyPerMessagePJ units.Picojoule `json:"energyPerMessagePJ"`
	AvgLatencyCycles   float64         `json:"avgLatencyCycles"`
	// FairnessJain is Jain's index over the clusters' delivered bits.
	FairnessJain float64                `json:"fairnessJain"`
	AreaMM2      units.SquareMillimeter `json:"areaMM2,omitempty"`
}

// ablationCase is one simulated variant.
type ablationCase struct {
	study, variant string
	cfg            fabric.Config
	areaMM2        units.SquareMillimeter
}

// runAblation executes the cases sequentially (they are few) and collects
// rows.
func runAblation(opts Options, cases []ablationCase) ([]AblationRow, error) {
	opts = opts.withDefaults()
	rows := make([]AblationRow, 0, len(cases))
	for _, c := range cases {
		cfg := c.cfg
		cfg.Topology = opts.Topology
		cfg.Cycles = opts.Cycles
		cfg.WarmupCycles = opts.WarmupCycles
		cfg.Seed = opts.Seed
		f, err := fabric.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s/%s: %w", c.study, c.variant, err)
		}
		res, err := f.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s/%s: %w", c.study, c.variant, err)
		}
		rows = append(rows, AblationRow{
			Study:              c.study,
			Variant:            c.variant,
			PeakBandwidthGbps:  res.Stats.DeliveredGbps,
			EnergyPerMessagePJ: res.EnergyPerMessagePJ,
			AvgLatencyCycles:   res.Stats.AvgLatencyCycles,
			FairnessJain:       res.Stats.FairnessJain,
			AreaMM2:            c.areaMM2,
		})
	}
	return rows, nil
}

// ReservationPipeliningAblation quantifies the design decision to overlap
// the next packet's reservation with the current packet's streaming
// (DESIGN.md §4): without it, short packets on wide channels pay the
// reservation round-trip between every transfer.
func ReservationPipeliningAblation(opts Options) ([]AblationRow, error) {
	base := fabric.Config{
		Arch:    fabric.DHetPNoC,
		Set:     traffic.BWSet3, // 8-flit packets: the worst case
		Pattern: traffic.Skewed{Level: 2},
	}
	off := base
	off.DisableReservationPipelining = true
	return runAblation(opts, []ablationCase{
		{study: "reservation-pipelining", variant: "pipelined", cfg: base},
		{study: "reservation-pipelining", variant: "serialized", cfg: off},
	})
}

// AcquisitionChunkAblation sweeps the per-token-visit acquisition bound:
// 1 converges slowest but most fairly; unlimited lets the first visitor
// drain the pool (the starvation mode DESIGN.md §4 calls out).
func AcquisitionChunkAblation(opts Options) ([]AblationRow, error) {
	var cases []ablationCase
	for _, chunk := range []int{1, 2, 4, 8, 64} {
		cfg := fabric.Config{
			Arch:               fabric.DHetPNoC,
			Set:                traffic.BWSet3,
			Pattern:            traffic.Skewed{Level: 3},
			MaxAcquirePerVisit: chunk,
		}
		cases = append(cases, ablationCase{
			study:   "acquisition-chunk",
			variant: fmt.Sprintf("chunk-%d", chunk),
			cfg:     cfg,
		})
	}
	return runAblation(opts, cases)
}

// ReservedMinimumAblation sweeps the per-cluster reserved wavelength count
// (§3.2.1 guarantees at least 1): larger reserves improve worst-case
// fairness but shrink the dynamically shareable pool.
func ReservedMinimumAblation(opts Options) ([]AblationRow, error) {
	var cases []ablationCase
	for _, reserve := range []int{1, 2, 4} {
		cfg := fabric.Config{
			Arch:               fabric.DHetPNoC,
			Set:                traffic.BWSet1,
			Pattern:            traffic.Skewed{Level: 3},
			ReservedPerCluster: reserve,
		}
		cases = append(cases, ablationCase{
			study:   "reserved-minimum",
			variant: fmt.Sprintf("reserve-%d", reserve),
			cfg:     cfg,
		})
	}
	return runAblation(opts, cases)
}

// IntraClusterAblation compares the §3.1 all-to-all intra-cluster wiring
// with Firefly's concentrated switch [20].
func IntraClusterAblation(opts Options) ([]AblationRow, error) {
	var cases []ablationCase
	for _, intra := range []fabric.IntraCluster{fabric.AllToAll, fabric.Concentrated} {
		cfg := fabric.Config{
			Arch:         fabric.DHetPNoC,
			Set:          traffic.BWSet1,
			Pattern:      traffic.Skewed{Level: 2},
			IntraCluster: intra,
		}
		cases = append(cases, ablationCase{
			study:   "intra-cluster",
			variant: intra.String(),
			cfg:     cfg,
		})
	}
	return runAblation(opts, cases)
}

// WaveguideRestrictionAblation evaluates the thesis's Chapter 4 proposal:
// restricting each photonic router to a few waveguides "would ... reduce
// the number of modulators and de-modulators" at some bandwidth cost. Run
// at bandwidth set 3 (8 waveguides), where the restriction actually
// binds, and annotate each variant with its modulator area.
func WaveguideRestrictionAblation(opts Options) ([]AblationRow, error) {
	areaCfg := area.DefaultConfig(traffic.BWSet3.TotalWavelengths)
	var cases []ablationCase
	for _, wgs := range []int{0, 2, 4} {
		cfg := fabric.Config{
			Arch:                 fabric.DHetPNoC,
			Set:                  traffic.BWSet3,
			Pattern:              traffic.Skewed{Level: 3},
			WaveguidesPerCluster: wgs,
		}
		variant := "unrestricted"
		mm2 := areaCfg.DynamicAreaMM2()
		if wgs > 0 {
			variant = fmt.Sprintf("%d-waveguides", wgs)
			mm2 = areaCfg.RestrictedDynamicAreaMM2(wgs)
		}
		cases = append(cases, ablationCase{
			study:   "waveguide-restriction",
			variant: variant,
			cfg:     cfg,
			areaMM2: mm2,
		})
	}
	return runAblation(opts, cases)
}

// AllocationPolicyAblation compares the thesis's greedy §3.2.1 allocation
// rule with the demand-proportional policy (the repository's take on the
// thesis's stated future work) under heavy contention: skewed 3 at
// bandwidth set 3, where eleven clusters each want 64 of 496 dynamic
// wavelengths. Each policy runs both with the default per-visit
// acquisition chunk and with unbounded acquisition: chunking is the
// greedy policy's crutch against first-come capture, while the
// proportional policy's share bound makes it chunk-independent.
func AllocationPolicyAblation(opts Options) ([]AblationRow, error) {
	var cases []ablationCase
	for _, variant := range []struct {
		name         string
		proportional bool
		chunk        int
	}{
		{"greedy-chunked", false, 0},
		{"greedy-unbounded", false, 512},
		{"proportional-chunked", true, 0},
		{"proportional-unbounded", true, 512},
	} {
		cases = append(cases, ablationCase{
			study:   "allocation-policy",
			variant: variant.name,
			cfg: fabric.Config{
				Arch:               fabric.DHetPNoC,
				Set:                traffic.BWSet3,
				Pattern:            traffic.Skewed{Level: 3},
				ProportionalDBA:    variant.proportional,
				MaxAcquirePerVisit: variant.chunk,
			},
		})
	}
	return runAblation(opts, cases)
}

// ArchitectureComparison runs all three modeled photonic NoCs — the
// Firefly baseline, d-HetPNoC and the related-work circuit-switched torus
// (§2.1.3) — under the same traffic. Note that the torus's per-link
// full-DWDM provisioning gives it far more photonic hardware than the
// budget-normalized crossbars; it is a protocol comparison, not an
// equal-area one.
func ArchitectureComparison(opts Options, set traffic.BandwidthSet, pattern traffic.Pattern) ([]AblationRow, error) {
	var cases []ablationCase
	for _, arch := range []fabric.Arch{fabric.Firefly, fabric.DHetPNoC, fabric.TorusPNoC} {
		cases = append(cases, ablationCase{
			study:   "architecture",
			variant: arch.String(),
			cfg:     fabric.Config{Arch: arch, Set: set, Pattern: pattern},
		})
	}
	return runAblation(opts, cases)
}

// BurstinessAblation measures how traffic burstiness (on/off sources at
// the same average rate) degrades both architectures: bursts deepen
// queues, so drops, latency and the congestion-energy term all grow.
func BurstinessAblation(opts Options) ([]AblationRow, error) {
	var cases []ablationCase
	for _, factor := range []float64{1, 4, 16} {
		var pattern traffic.Pattern = traffic.Skewed{Level: 2}
		if factor > 1 {
			pattern = traffic.Bursty{Base: pattern, Factor: factor}
		}
		for _, arch := range []fabric.Arch{fabric.Firefly, fabric.DHetPNoC} {
			cases = append(cases, ablationCase{
				study:   "burstiness",
				variant: fmt.Sprintf("%s-x%g", arch, factor),
				cfg:     fabric.Config{Arch: arch, Set: traffic.BWSet1, Pattern: pattern},
			})
		}
	}
	return runAblation(opts, cases)
}

// AllAblations runs every ablation study.
func AllAblations(opts Options) ([]AblationRow, error) {
	var all []AblationRow
	for _, run := range []func(Options) ([]AblationRow, error){
		ReservationPipeliningAblation,
		AcquisitionChunkAblation,
		ReservedMinimumAblation,
		IntraClusterAblation,
		WaveguideRestrictionAblation,
		AllocationPolicyAblation,
		BurstinessAblation,
		func(o Options) ([]AblationRow, error) {
			return ArchitectureComparison(o, traffic.BWSet1, traffic.Skewed{Level: 2})
		},
	} {
		rows, err := run(opts)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	return all, nil
}
