package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
)

func tinyMatrix() (Options, []Point) {
	opts := Options{
		Cycles:       1500,
		WarmupCycles: 500,
		LoadScales:   []float64{1.0},
		Parallelism:  2,
	}
	points := []Point{
		{Set: traffic.BWSet1, Pattern: traffic.Uniform{}, Arch: fabric.Firefly},
		{Set: traffic.BWSet1, Pattern: traffic.Uniform{}, Arch: fabric.DHetPNoC},
	}
	return opts, points
}

// TestRunMatrixContextMatchesRunMatrix: a background context must not
// perturb the matrix — same rows, same order.
func TestRunMatrixContextMatchesRunMatrix(t *testing.T) {
	opts, points := tinyMatrix()
	a, err := RunMatrix(opts, points)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMatrixContext(context.Background(), opts, points)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RunMatrixContext diverges from RunMatrix:\n%+v\n%+v", a, b)
	}
}

// TestRunMatrixContextCanceled: a dead context aborts the matrix with
// its error instead of running the points.
func TestRunMatrixContextCanceled(t *testing.T) {
	opts, points := tinyMatrix()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMatrixContext(ctx, opts, points); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
