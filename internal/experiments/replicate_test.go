package experiments

import (
	"context"
	"math"
	"reflect"
	"testing"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
)

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %g, want 5", mean)
	}
	if math.Abs(std-2.138) > 0.001 {
		t.Fatalf("sample std = %g, want ~2.138", std)
	}
	mean, std = meanStd([]float64{7})
	if mean != 7 || std != 0 {
		t.Fatalf("single-sample = %g +- %g", mean, std)
	}
}

func TestRunReplicatedValidation(t *testing.T) {
	p := Point{Set: traffic.BWSet1, Pattern: traffic.Uniform{}, Arch: fabric.Firefly}
	if _, err := RunReplicated(quickOpts(), p, 1); err == nil {
		t.Fatal("single-seed replication accepted")
	}
}

// TestReplicatedForkBitIdentical is the golden check for checkpoint-
// forked replication: each replica forked from the shared warmed-up
// checkpoint must match, field for field, a reference run that builds a
// fresh fabric, warms it from scratch at the base seed, reseeds at the
// same boundary and runs the measurement window — and re-running the
// forked path must reproduce itself exactly.
func TestReplicatedForkBitIdentical(t *testing.T) {
	opts := quickOpts().withDefaults()
	p := Point{Set: traffic.BWSet1, Pattern: traffic.Skewed{Level: 2}, Arch: fabric.DHetPNoC}
	const seeds = 3
	ctx := context.Background()

	forked, err := replicateRows(ctx, opts, p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(forked) != seeds {
		t.Fatalf("got %d rows, want %d", len(forked), seeds)
	}

	scale := opts.LoadScales[0]
	for i := 0; i < seeds; i++ {
		f, err := fabric.New(pointConfig(opts, p, scale))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.StepContext(ctx, opts.WarmupCycles); err != nil {
			t.Fatal(err)
		}
		if err := f.Reseed(opts.Seed + uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := f.StepContext(ctx, opts.Cycles-opts.WarmupCycles); err != nil {
			t.Fatal(err)
		}
		res, err := f.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if res.Seed != opts.Seed+uint64(i) {
			t.Fatalf("replica %d result reports seed %d, want %d", i, res.Seed, opts.Seed+uint64(i))
		}
		want := rowAtPeak(p, scale, res)
		if !reflect.DeepEqual(forked[i], want) {
			t.Fatalf("forked replica %d diverged from the fresh-fabric reference:\nforked: %+v\nfresh:  %+v", i, forked[i], want)
		}
	}

	again, err := replicateRows(ctx, opts, p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forked, again) {
		t.Fatal("re-running the forked replication did not reproduce itself")
	}
}

// TestReplicateNoDoubleWarmup pins the double-warm-up regression at the
// experiments layer: options relying on the defaults (WarmupCycles left
// zero) and options spelling the same values explicitly must replicate
// identically. Before the batch engine, the measurement window was
// derived from the caller's options while the warm-up came from the
// fabric's defaults — whenever the two defaulting layers disagreed, the
// replicas silently re-stepped the warm-up after the fork. The fork
// point is now the checkpoint's own cycle, so the two spellings cannot
// diverge.
func TestReplicateNoDoubleWarmup(t *testing.T) {
	p := Point{Set: traffic.BWSet1, Pattern: traffic.Uniform{}, Arch: fabric.DHetPNoC}
	const seeds = 2
	ctx := context.Background()

	implicit, err := replicateRows(ctx, Options{Cycles: 2500}, p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := replicateRows(ctx, Options{
		Cycles:       2500,
		WarmupCycles: 1000,
		Seed:         1,
		LoadScales:   []float64{1.0},
	}, p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(implicit, explicit) {
		t.Fatalf("implicit and explicit default options replicate differently:\nimplicit: %+v\nexplicit: %+v", implicit, explicit)
	}
}

// TestSkewedGainIsStatisticallySignificant replicates the headline result
// over several seeds: d-HetPNoC's bandwidth gain under skewed traffic must
// exceed the combined 95% confidence half-widths — it is an architectural
// effect, not seed noise.
func TestSkewedGainIsStatisticallySignificant(t *testing.T) {
	opts := quickOpts()
	const seeds = 5

	ff, err := RunReplicated(opts, Point{Set: traffic.BWSet1, Pattern: traffic.Skewed{Level: 2}, Arch: fabric.Firefly}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := RunReplicated(opts, Point{Set: traffic.BWSet1, Pattern: traffic.Skewed{Level: 2}, Arch: fabric.DHetPNoC}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("firefly  %.1f +- %.1f Gb/s; d-hetpnoc %.1f +- %.1f Gb/s",
		ff.BandwidthMeanGbps, ff.BandwidthCI95Gbps, dh.BandwidthMeanGbps, dh.BandwidthCI95Gbps)
	if !SignificantGain(ff, dh) {
		t.Fatalf("gain not significant: firefly %.1f+-%.1f vs d-het %.1f+-%.1f",
			ff.BandwidthMeanGbps, ff.BandwidthCI95Gbps, dh.BandwidthMeanGbps, dh.BandwidthCI95Gbps)
	}
	if ff.Seeds != seeds || dh.Seeds != seeds {
		t.Fatal("seed counts wrong")
	}
}

// TestUniformEqualityHoldsAcrossSeeds: at uniform traffic the two
// crossbar architectures tie for every seed, so their means coincide.
func TestUniformEqualityHoldsAcrossSeeds(t *testing.T) {
	opts := quickOpts()
	ff, err := RunReplicated(opts, Point{Set: traffic.BWSet1, Pattern: traffic.Uniform{}, Arch: fabric.Firefly}, 3)
	if err != nil {
		t.Fatal(err)
	}
	dh, err := RunReplicated(opts, Point{Set: traffic.BWSet1, Pattern: traffic.Uniform{}, Arch: fabric.DHetPNoC}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ff.BandwidthMeanGbps-dh.BandwidthMeanGbps) > 1e-9 {
		t.Fatalf("uniform means differ: %.3f vs %.3f", ff.BandwidthMeanGbps, dh.BandwidthMeanGbps)
	}
	if SignificantGain(ff, dh) || SignificantGain(dh, ff) {
		t.Fatal("uniform traffic reported a significant gain")
	}
}
