// Package experiments reproduces every table and figure of the thesis's
// evaluation (§3.4). Each experiment is a typed runner that returns the
// same rows or series the paper plots; cmd/sweep prints them and
// bench_test.go wraps each in a benchmark.
//
// Experiment index (see DESIGN.md §3 for the full mapping):
//
//	Figure 1-1   — GPU flit-size speedups            (Figure1_1)
//	Figure 3-3   — peak bandwidth matrix             (PeakBandwidth)
//	Figure 3-4   — packet energy matrix              (PeakBandwidth, EPM column)
//	Figure 3-5   — hotspot + real-application cases  (CaseStudies)
//	Figure 3-6   — area vs aggregate bandwidth       (AreaSweep)
//	Figure 3-7   — d-HetPNoC scaling across BW sets  (ScalingSeries)
//	Figure 3-8/9 — wavelengths vs BW / EPM / area    (WavelengthScaling)
//	Figure 3-10  — Firefly scaling across BW sets    (ScalingSeries)
package experiments

import (
	"context"
	"fmt"
	"runtime"

	"hetpnoc/internal/batch"
	"hetpnoc/internal/fabric"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/traffic"
	"hetpnoc/internal/units"
)

// Options are shared run parameters. The zero value uses the thesis's
// Table 3-3 settings.
type Options struct {
	// Cycles and WarmupCycles default to 10,000 and 1,000 (Table 3-3).
	Cycles       int
	WarmupCycles int

	// Seed seeds every run; runs differing in configuration get distinct
	// derived streams inside the fabric.
	Seed uint64

	// LoadScales are the offered-load multipliers swept to locate the
	// peak; the default {1.0} saturates the network at the pattern's
	// nominal rates.
	LoadScales []float64

	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	Parallelism int

	// Topology defaults to the 64-core, 16-cluster chip.
	Topology topology.Topology
}

func (o Options) withDefaults() Options {
	if o.Cycles == 0 {
		o.Cycles = 10000
	}
	if o.WarmupCycles == 0 {
		o.WarmupCycles = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.LoadScales) == 0 {
		o.LoadScales = []float64{1.0}
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Topology.Cores() == 0 {
		o.Topology = topology.Default()
	}
	return o
}

// Point identifies one simulation in a matrix.
type Point struct {
	Set     traffic.BandwidthSet
	Pattern traffic.Pattern
	Arch    fabric.Arch
}

// Row is the outcome of one matrix point after the load sweep: the peak
// delivered bandwidth and the energy per message at the peak.
type Row struct {
	Set     string  `json:"set"`
	Pattern string  `json:"pattern"`
	Arch    string  `json:"arch"`
	AtLoad  float64 `json:"atLoad"`

	PeakBandwidthGbps  units.Gbps      `json:"peakBandwidthGbps"`
	PerCoreGbps        units.Gbps      `json:"perCoreGbps"`
	EnergyPerMessagePJ units.Picojoule `json:"energyPerMessagePJ"`
	OfferedGbps        units.Gbps      `json:"offeredGbps"`

	PacketsDelivered int64   `json:"packetsDelivered"`
	PacketsDropped   int64   `json:"packetsDropped"`
	Retransmissions  int64   `json:"retransmissions"`
	AvgLatencyCycles float64 `json:"avgLatencyCycles"`

	AllocatedWavelengths []int `json:"allocatedWavelengths"`
}

// pointConfig assembles the fabric configuration for one point at one
// load scale.
func pointConfig(opts Options, p Point, scale float64) fabric.Config {
	return fabric.Config{
		Topology:     opts.Topology,
		Set:          p.Set,
		Arch:         p.Arch,
		Pattern:      p.Pattern,
		LoadScale:    scale,
		Cycles:       opts.Cycles,
		WarmupCycles: opts.WarmupCycles,
		Seed:         opts.Seed,
	}
}

// rowAtPeak shapes one run's result into the Row reported for its point.
func rowAtPeak(p Point, scale float64, res fabric.Result) Row {
	return Row{
		Set:                  p.Set.Name,
		Pattern:              p.Pattern.Name(),
		Arch:                 p.Arch.String(),
		AtLoad:               scale,
		PeakBandwidthGbps:    res.Stats.DeliveredGbps,
		PerCoreGbps:          res.PerCoreGbps,
		EnergyPerMessagePJ:   res.EnergyPerMessagePJ,
		OfferedGbps:          res.OfferedGbps,
		PacketsDelivered:     res.Stats.PacketsDelivered,
		PacketsDropped:       res.Stats.PacketsDroppedRX,
		Retransmissions:      res.Stats.Retransmissions,
		AvgLatencyCycles:     res.Stats.AvgLatencyCycles,
		AllocatedWavelengths: res.AllocatedWavelengths,
	}
}

// RunMatrix executes every point, in parallel up to opts.Parallelism, and
// returns rows in point order.
//
//hetpnoc:ctxroot synchronous public wrapper over RunMatrixContext
func RunMatrix(opts Options, points []Point) ([]Row, error) {
	return RunMatrixContext(context.Background(), opts, points)
}

// RunMatrixContext is RunMatrix with cancellation: when ctx is done, the
// in-flight points abort at the fabric's next cancellation check and the
// first error returned is ctx's. The serving layer and long sweeps use
// this to make whole matrices abortable.
//
// The matrix executes through the batch engine: every (point, load
// scale) pair is one plan member, points sharing a build prefix share
// one fabric (a load sweep builds one fabric per point instead of one
// per scale), and internal/batch's work-stealing scheduler replaces the
// per-point goroutine semaphore. Rows are bit-identical to running each
// pair on its own fabric — the batch fork contract (docs/BATCHING.md).
func RunMatrixContext(ctx context.Context, opts Options, points []Point) ([]Row, error) {
	opts = opts.withDefaults()
	rows := make([]Row, len(points))
	if len(points) == 0 {
		return rows, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	scales := opts.LoadScales
	specs := make([]fabric.Config, 0, len(points)*len(scales))
	for _, p := range points {
		for _, scale := range scales {
			specs = append(specs, pointConfig(opts, p, scale))
		}
	}
	plan, err := batch.NewPlan(specs, batch.Options{Workers: opts.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	out, err := plan.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	for pi, p := range points {
		found := false
		for si, scale := range scales {
			res := out[pi*len(scales)+si].Res
			if !found || res.Stats.DeliveredGbps > rows[pi].PeakBandwidthGbps {
				found = true
				rows[pi] = rowAtPeak(p, scale, res)
			}
		}
	}
	return rows, nil
}
