// Package leakcheck fails a test that leaks goroutines. Check
// snapshots the live goroutines when called and registers a cleanup
// that re-snapshots after the test body: any goroutine that appeared
// during the test, is still running, and is not on the allowlist is a
// leak. Shutdown is asynchronous, so the cleanup retries until a
// deadline before declaring the leak — a goroutine mid-exit gets time
// to finish, a stuck one does not.
//
// The allowlist covers goroutines whose lifetime the test does not
// own: the runtime's own workers, testing harness goroutines, signal
// handling, and net/http's pooled connections (their keep-alive timers
// outlive a handler by design). Tests add their own deliberate daemons
// with Allow.
//
// This is the dynamic half of the goroutine-lifetime story: goleak
// proves spawn sites can terminate statically; leakcheck catches the
// paths the static analysis cannot see actually failing to exit under
// -race in the serve, batch, and sweep suites.
package leakcheck

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// defaultAllow matches goroutines owned by the runtime, the test
// harness, or stdlib pools rather than the code under test.
var defaultAllow = []string{
	"created by runtime.",
	"created by testing.",
	"created by os/signal.",
	"testing.tRunner",
	"testing.runFuzzing",
	"testing.runTests",
	"net/http.(*persistConn)",
	"net/http.(*Transport)",
	"created by net/http/httptest.",
	"runtime.goexit",
}

// Option adjusts one Check call.
type Option func(*config)

type config struct {
	allow    []string
	deadline time.Duration
}

// Allow exempts goroutines whose dump contains substr — for a test
// that deliberately starts a process-lifetime daemon.
func Allow(substr string) Option {
	return func(c *config) { c.allow = append(c.allow, substr) }
}

// Within overrides the retry deadline for slow teardowns.
func Within(d time.Duration) Option {
	return func(c *config) { c.deadline = d }
}

// Check arms the leak detector for the current test. Call it first in
// the test body; the verification runs from t.Cleanup, after the body
// and its own cleanups finish.
func Check(t testing.TB, opts ...Option) {
	t.Helper()
	cfg := &config{allow: defaultAllow, deadline: 5 * time.Second}
	for _, opt := range opts {
		opt(cfg)
	}
	before := snapshot()
	t.Cleanup(func() {
		leaked := verify(before, cfg.allow, cfg.deadline)
		for _, stack := range leaked {
			t.Errorf("leaked goroutine:\n%s", stack)
		}
	})
}

// verify retries the snapshot comparison until no new goroutine
// remains or the deadline passes, then returns the surviving stacks.
func verify(before map[int64]string, allow []string, deadline time.Duration) []string {
	var leaked []string
	for end := time.Now().Add(deadline); ; {
		leaked = leaked[:0]
		for id, stack := range snapshot() {
			if _, ok := before[id]; ok {
				continue
			}
			if allowed(stack, allow) {
				continue
			}
			leaked = append(leaked, stack)
		}
		if len(leaked) == 0 || time.Now().After(end) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	sortStacks(leaked)
	return leaked
}

func allowed(stack string, allow []string) bool {
	for _, substr := range allow {
		if strings.Contains(stack, substr) {
			return true
		}
	}
	return false
}

// snapshot dumps every live goroutine keyed by its runtime ID.
func snapshot() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[int64]string)
	for _, chunk := range strings.Split(string(buf), "\n\n") {
		if id, ok := parseID(chunk); ok {
			out[id] = chunk
		}
	}
	return out
}

// parseID extracts N from a "goroutine N [state]:" dump header.
func parseID(chunk string) (int64, bool) {
	const prefix = "goroutine "
	if !strings.HasPrefix(chunk, prefix) {
		return 0, false
	}
	rest := chunk[len(prefix):]
	end := strings.IndexByte(rest, ' ')
	if end < 0 {
		return 0, false
	}
	id, err := strconv.ParseInt(rest[:end], 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// sortStacks orders leaked stacks for deterministic failure output.
func sortStacks(stacks []string) {
	for i := 1; i < len(stacks); i++ {
		for j := i; j > 0 && stacks[j] < stacks[j-1]; j-- {
			stacks[j], stacks[j-1] = stacks[j-1], stacks[j]
		}
	}
}
