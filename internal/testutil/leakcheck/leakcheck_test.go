package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestParseID(t *testing.T) {
	id, ok := parseID("goroutine 42 [chan receive]:\nmain.main()")
	if !ok || id != 42 {
		t.Fatalf("parseID = %d, %v; want 42, true", id, ok)
	}
	if _, ok := parseID("goroutine profile: total 7"); ok {
		t.Error("non-dump header parsed as a goroutine")
	}
	if _, ok := parseID(""); ok {
		t.Error("empty chunk parsed as a goroutine")
	}
}

func TestVerifyFlagsBlockedGoroutine(t *testing.T) {
	before := snapshot()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	leaked := verify(before, defaultAllow, 50*time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("got %d leaked goroutines, want the blocked one:\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	}
	if !strings.Contains(leaked[0], "leakcheck.TestVerifyFlagsBlockedGoroutine") {
		t.Errorf("leak report does not name the spawn site:\n%s", leaked[0])
	}

	close(block)
	if leaked := verify(before, defaultAllow, 5*time.Second); len(leaked) != 0 {
		t.Errorf("goroutine exited but verify still reports %d leaks", len(leaked))
	}
}

func TestVerifyHonorsAllowlist(t *testing.T) {
	before := snapshot()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	allow := append([]string{"leakcheck.TestVerifyHonorsAllowlist"}, defaultAllow...)
	if leaked := verify(before, allow, 50*time.Millisecond); len(leaked) != 0 {
		t.Errorf("allowlisted goroutine reported as a leak:\n%s", strings.Join(leaked, "\n\n"))
	}
}

func TestCheckPassesOnCleanTest(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}
