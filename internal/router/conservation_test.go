package router

import (
	"testing"
	"testing/quick"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// chainFabric wires two routers in series:
//
//	inject -> R1 -> R2 -> sink
//
// and drives randomized packet sequences through them.
type chainFabric struct {
	r1, r2 *Router
	in     *Port
	mid    *Port
	sink   *Port
	occ    int64
}

func newChain(t testing.TB, vcs, depth int) *chainFabric {
	t.Helper()
	ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
	f := &chainFabric{}
	mk := func() *Port {
		p, err := NewPort(vcs, depth, ledger, &f.occ)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	f.in = mk()
	f.mid = mk()
	f.sink = mk()

	route := func(packet.Flit) int { return 0 }
	r1, err := New("r1", []*Port{f.in}, []int{2}, route, ledger)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.AddOutput(f.mid, 2, true); err != nil {
		t.Fatal(err)
	}
	r2, err := New("r2", []*Port{f.mid}, []int{2}, route, ledger)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.AddOutput(f.sink, 2, true); err != nil {
		t.Fatal(err)
	}
	f.r1, f.r2 = r1, r2
	return f
}

// TestChainConservesAndOrdersFlits is the conservation property promised
// in DESIGN.md: for arbitrary randomized packet workloads, every injected
// flit is either still buffered or has arrived, per-packet FIFO order
// survives two hops, and nothing is duplicated.
//
//hetpnoc:detsafe property test samples random workloads on purpose; each trial re-seeds from quick's seed argument, so any failure replays from the printed counterexample
func TestChainConservesAndOrdersFlits(t *testing.T) {
	run := func(seed uint64, nPackets uint8) bool {
		f := newChain(t, 8, 32)
		rng := sim.NewRNG(seed)
		packets := int(nPackets)%12 + 1

		type pending struct {
			pkt  *packet.Packet
			vc   int
			next int
		}
		var queue []*pending
		for i := 0; i < packets; i++ {
			queue = append(queue, &pending{
				pkt: &packet.Packet{ID: packet.ID(i + 1), Flits: rng.Intn(20) + 1, FlitBits: 32},
			})
		}

		injected := 0
		totalFlits := 0
		for _, p := range queue {
			totalFlits += p.pkt.Flits
		}

		arrived := make(map[packet.ID]int)
		drain := func(now sim.Cycle) bool {
			for vc := 0; vc < f.sink.VCCount(); vc++ {
				for {
					fl, enq, ok := f.sink.Head(vc)
					if !ok || now-enq < PipelineDelay {
						break
					}
					if _, err := f.sink.Pop(vc); err != nil {
						return false
					}
					if fl.Seq != arrived[fl.Packet.ID] {
						return false // out of order or duplicated
					}
					arrived[fl.Packet.ID]++
				}
			}
			return true
		}

		active := map[*pending]bool{}
		for now := sim.Cycle(0); now < 1200; now++ {
			// Randomized injection: start packets at random times, feed
			// their flits as space allows.
			if len(queue) > 0 && rng.Bernoulli(0.3) {
				p := queue[0]
				if vc, ok := f.in.AllocVC(p.pkt.ID); ok {
					p.vc = vc
					queue = queue[1:]
					active[p] = true
				}
			}
			//hetpnoc:orderfree flit conservation holds under any enqueue interleaving; the property, not a trace, is asserted
			for p := range active {
				for moved := 0; moved < 2 && p.next < p.pkt.Flits && f.in.Space(p.vc) > 0; moved++ {
					if err := f.in.Enqueue(p.vc, packet.FlitAt(p.pkt, p.next), now); err != nil {
						return false
					}
					p.next++
					injected++
				}
				if p.next == p.pkt.Flits {
					delete(active, p)
				}
			}
			if err := f.r1.Tick(now); err != nil {
				return false
			}
			if err := f.r2.Tick(now); err != nil {
				return false
			}
			if !drain(now) {
				return false
			}
		}

		// Everything injected must have arrived (the run is long enough
		// to drain), and nothing beyond it.
		got := 0
		//hetpnoc:orderfree integer sum is commutative
		for _, n := range arrived {
			got += n
		}
		if injected != totalFlits || got != totalFlits {
			return false
		}
		if f.occ != 0 {
			return false // flits stranded in buffers
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
