package router

import (
	"fmt"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// MaxVCsPerPort bounds the VC count of a single port so a port's VC
// occupancy and free-VC state each fit in one uint64 bitmask word.
const MaxVCsPerPort = 64

// MaxVCDepth bounds the per-VC buffer depth so the flit count fits the
// packed descriptor's int16.
const MaxVCDepth = 1 << 15

// vcHot flag bits.
const (
	vcRouted  = 1 << 0 // header forwarded; outPort/outVC lock the path
	vcHeadHdr = 1 << 1 // the head flit is a header
)

// vcHot is the packed per-VC descriptor read by the arbitration kernel:
// everything eligibility and grant checks need, in 16 bytes, so four
// adjacent VCs share one cache line instead of scattering across six
// arrays. Ring indices, owners and flit storage stay in separate arrays
// that only actual enqueues/dequeues touch.
type vcHot struct {
	headEnq sim.Cycle // enqueue cycle of the head flit (valid when count > 0)
	count   int16     // buffered flits
	outPort int16     // locked output (valid when vcRouted)
	dstOut  int16     // cached route of the occupying packet, -1 unknown
	outVC   int8      // locked downstream VC (valid when vcRouted)
	flags   uint8     // vcRouted | vcHeadHdr
}

// Arena is the struct-of-arrays backing store for every Port in a
// fabric: all per-port and per-VC state lives in flat contiguous slices
// indexed by port id and by global VC index (vcBase[port]+vc). Port and
// VC are thin views over an arena, so the object API survives while the
// per-cycle kernels walk scalar slices and bitmasks instead of chasing
// per-object pointers.
//
// The arena is also the unit of checkpointing: Snapshot/Restore copy the
// mutable slices wholesale (one copy per backing array), which is what
// lets replicated runs skip re-paying the full fabric build.
type Arena struct {
	ledger    *photonic.Ledger
	occupancy *int64 // shared fabric-wide buffered-flit counter

	// Per-port state, indexed by port id. vcBase/vcCnt/depth/routeTab/
	// wake are fixed after build; buffered and the masks are hot.
	vcBase   []int32 //hetpnoc:nosnap topology, fixed once NewPort/Reserve wiring completes
	vcCnt    []int32 //hetpnoc:nosnap topology, fixed once NewPort/Reserve wiring completes
	depth    []int32 //hetpnoc:nosnap topology, fixed once NewPort/Reserve wiring completes
	buffered []int32
	occMask  []uint64  // bit v set: VC v holds at least one flit
	freeMask []uint64  // bit v set: VC v is unowned and empty (allocatable)
	routeTab [][]int16 //hetpnoc:nosnap route tables, installed once by SetRouteTable at build
	wake     []func()  //hetpnoc:nosnap wake callbacks, wired once by SetWake at build
	// consumer/consBase identify the router arbitrating each port (nil
	// for engine-drained ports) and the port's flat candidate base in
	// that router, so ownership transitions can maintain the router's
	// persistent contender masks. watchers lists the routers feeding the
	// port (those with it as an output destination): draining the port
	// can unblock their arbitration, so pops wake them from quiescence.
	consumer []*Router   //hetpnoc:nosnap router wiring, fixed at build; Restore rebuilds their live masks
	consBase []int32     //hetpnoc:nosnap router wiring, fixed at build
	watchers [][]*Router //hetpnoc:nosnap router wiring, fixed at build

	// Per-VC state, indexed by the global VC index g = vcBase[port]+vc.
	hot   []vcHot
	head  []int32     // ring read index
	owner []packet.ID // packet occupying the VC (0 when free)
	fbits []int32     // flit size in bits of the buffered packet
	bufs  [][]entry   // ring buffers, grown lazily toward depth
}

// NewArena returns an empty arena charging buffer energy to ledger and
// tracking total buffered flits in occupancy.
func NewArena(ledger *photonic.Ledger, occupancy *int64) (*Arena, error) {
	if ledger == nil || occupancy == nil {
		return nil, fmt.Errorf("router: arena needs a ledger and occupancy counter")
	}
	return &Arena{ledger: ledger, occupancy: occupancy}, nil
}

// NewPort appends a port with vcCount virtual channels of the given
// per-VC depth and returns its view. vcCount is capped at MaxVCsPerPort
// so the per-port occupancy and free-VC masks stay single words.
func (a *Arena) NewPort(vcCount, depth int) (*Port, error) {
	if vcCount <= 0 || depth <= 0 {
		return nil, fmt.Errorf("router: port needs positive VC count (%d) and depth (%d)", vcCount, depth)
	}
	if vcCount > MaxVCsPerPort {
		return nil, fmt.Errorf("router: port VC count %d exceeds bitmask capacity %d", vcCount, MaxVCsPerPort)
	}
	if depth > MaxVCDepth {
		return nil, fmt.Errorf("router: port VC depth %d exceeds descriptor capacity %d", depth, MaxVCDepth)
	}
	id := int32(len(a.vcBase))
	base := int32(len(a.hot))
	a.vcBase = append(a.vcBase, base)
	a.vcCnt = append(a.vcCnt, int32(vcCount))
	a.depth = append(a.depth, int32(depth))
	a.buffered = append(a.buffered, 0)
	a.occMask = append(a.occMask, 0)
	a.freeMask = append(a.freeMask, ^uint64(0)>>(64-uint(vcCount)))
	a.routeTab = append(a.routeTab, nil)
	a.wake = append(a.wake, nil)
	a.consumer = append(a.consumer, nil)
	a.consBase = append(a.consBase, 0)
	a.watchers = append(a.watchers, nil)
	for v := 0; v < vcCount; v++ {
		a.hot = append(a.hot, vcHot{dstOut: -1})
		a.head = append(a.head, 0)
		a.owner = append(a.owner, 0)
		a.fbits = append(a.fbits, 0)
		a.bufs = append(a.bufs, nil)
	}
	return &Port{a: a, id: id}, nil
}

// Reserve pre-sizes the backing slices for ports ports holding vcs VCs
// in total, so a builder that knows its fabric shape avoids the append
// growth copies. Appending beyond the reservation still works.
func (a *Arena) Reserve(ports, vcs int) {
	if ports > cap(a.vcBase) {
		a.vcBase = append(make([]int32, 0, ports), a.vcBase...)
		a.vcCnt = append(make([]int32, 0, ports), a.vcCnt...)
		a.depth = append(make([]int32, 0, ports), a.depth...)
		a.buffered = append(make([]int32, 0, ports), a.buffered...)
		a.occMask = append(make([]uint64, 0, ports), a.occMask...)
		a.freeMask = append(make([]uint64, 0, ports), a.freeMask...)
		a.routeTab = append(make([][]int16, 0, ports), a.routeTab...)
		a.wake = append(make([]func(), 0, ports), a.wake...)
		a.consumer = append(make([]*Router, 0, ports), a.consumer...)
		a.consBase = append(make([]int32, 0, ports), a.consBase...)
		a.watchers = append(make([][]*Router, 0, ports), a.watchers...)
	}
	if vcs > cap(a.hot) {
		a.hot = append(make([]vcHot, 0, vcs), a.hot...)
		a.head = append(make([]int32, 0, vcs), a.head...)
		a.owner = append(make([]packet.ID, 0, vcs), a.owner...)
		a.fbits = append(make([]int32, 0, vcs), a.fbits...)
		a.bufs = append(make([][]entry, 0, vcs), a.bufs...)
	}
}

// Ports returns the number of ports carved from the arena.
func (a *Arena) Ports() int { return len(a.vcBase) }

// Port returns the view of port id.
func (a *Arena) Port(id int) *Port {
	return &Port{a: a, id: int32(id)}
}

// push appends a flit entry to VC g's ring, growing it toward depth.
//
//hetpnoc:hotpath
func (a *Arena) push(g int32, e entry) {
	buf := a.bufs[g]
	if int(a.hot[g].count) == len(buf) {
		buf = a.growBuf(g)
	}
	slot := int(a.head[g]) + int(a.hot[g].count)
	if slot >= len(buf) {
		slot -= len(buf)
	}
	buf[slot] = e
	a.hot[g].count++
}

// growBuf doubles VC g's ring capacity (bounded by its port's depth),
// linearizing the current contents at the front of the new buffer. It is
// the deliberate cold exit of push: each ring grows O(log depth) times
// per run and then steady-state traffic stops allocating.
//
//hetpnoc:coldcall amortized ring growth, O(log depth) times per run, never steady-state
func (a *Arena) growBuf(g int32) []entry {
	old := a.bufs[g]
	depth := a.depthOfVC(g)
	newCap := 2 * len(old)
	if newCap < 8 {
		newCap = 8
	}
	if newCap > depth {
		newCap = depth
	}
	buf := make([]entry, newCap)
	n := int(a.hot[g].count)
	for i := 0; i < n; i++ {
		slot := int(a.head[g]) + i
		if slot >= len(old) {
			slot -= len(old)
		}
		buf[i] = old[slot]
	}
	a.bufs[g] = buf
	a.head[g] = 0
	return buf
}

// depthOfVC returns the configured depth of the port owning VC g.
func (a *Arena) depthOfVC(g int32) int {
	// Ports are appended in order, so binary-search vcBase for the port
	// whose range contains g. Only cold paths need this.
	lo, hi := 0, len(a.vcBase)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.vcBase[mid] <= g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int(a.depth[lo-1])
}

// ArenaSnapshot is a checkpoint of every mutable arena slice. Reusing
// one snapshot across Snapshot calls avoids reallocating the backing
// arrays.
type ArenaSnapshot struct {
	occupancy int64
	buffered  []int32
	occMask   []uint64
	freeMask  []uint64
	hot       []vcHot
	head      []int32
	owner     []packet.ID
	fbits     []int32
	bufs      [][]entry
}

// Snapshot copies the arena's mutable state into s (allocating a fresh
// snapshot when s is nil) and returns it. The copy is one copy call per
// backing slice plus one per in-use VC ring.
func (a *Arena) Snapshot(s *ArenaSnapshot) *ArenaSnapshot {
	if s == nil {
		s = &ArenaSnapshot{}
	}
	s.occupancy = *a.occupancy
	s.buffered = append(s.buffered[:0], a.buffered...)
	s.occMask = append(s.occMask[:0], a.occMask...)
	s.freeMask = append(s.freeMask[:0], a.freeMask...)
	s.hot = append(s.hot[:0], a.hot...)
	s.head = append(s.head[:0], a.head...)
	s.owner = append(s.owner[:0], a.owner...)
	s.fbits = append(s.fbits[:0], a.fbits...)
	if cap(s.bufs) < len(a.bufs) {
		s.bufs = make([][]entry, len(a.bufs))
	}
	s.bufs = s.bufs[:len(a.bufs)]
	for g, buf := range a.bufs {
		s.bufs[g] = append(s.bufs[g][:0], buf...)
	}
	return s
}

// Restore copies snapshot s back into the arena in place. Ring storage
// already sized at snapshot time is reused; rings that grew since are
// truncated back to the snapshot's length so stale packet references do
// not outlive the restore.
func (a *Arena) Restore(s *ArenaSnapshot) error {
	if len(s.hot) != len(a.hot) || len(s.buffered) != len(a.buffered) {
		return fmt.Errorf("router: snapshot shape (%d ports, %d VCs) does not match arena (%d ports, %d VCs)",
			len(s.buffered), len(s.hot), len(a.buffered), len(a.hot))
	}
	*a.occupancy = s.occupancy
	copy(a.buffered, s.buffered)
	copy(a.occMask, s.occMask)
	copy(a.freeMask, s.freeMask)
	copy(a.hot, s.hot)
	copy(a.head, s.head)
	copy(a.owner, s.owner)
	copy(a.fbits, s.fbits)
	for g := range a.bufs {
		want := s.bufs[g]
		have := a.bufs[g]
		if cap(have) < len(want) {
			have = make([]entry, len(want))
		}
		n := copy(have[:cap(have)], want)
		for i := n; i < len(have); i++ {
			have[i] = entry{} // drop references the snapshot did not hold
		}
		a.bufs[g] = have[:len(want)]
	}
	// Ownership state just changed wholesale; the persistent contender
	// masks of every consuming router must be rebuilt to match.
	var done []*Router
outer:
	for _, r := range a.consumer {
		if r == nil {
			continue
		}
		for _, d := range done {
			if d == r {
				continue outer
			}
		}
		done = append(done, r)
		r.rebuildLive()
	}
	return nil
}

// Packets appends to dst every distinct packet referenced by buffered
// flits, in deterministic (port, VC, ring) order. The fabric snapshot
// uses it to enumerate in-flight packets whose contents must be saved.
func (a *Arena) Packets(dst []*packet.Packet) []*packet.Packet {
	for g := range a.bufs {
		if a.hot[g].count == 0 {
			continue
		}
		// All flits in a VC belong to the owning packet, so the head
		// entry is enough.
		if p := a.bufs[g][a.head[g]].pkt; p != nil {
			dst = append(dst, p)
		}
	}
	return dst
}
