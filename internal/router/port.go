// Package router implements the electrical switches of the NoC: 3-stage
// wormhole routers (input arbitration, routing/crossbar traversal, output
// arbitration — the micro-architecture of [24] adopted in §3.3.2) with
// virtual channels, credit-based flow control and round-robin arbitration.
// Table 3-3 configures them with 16 VCs per port and a 64-flit buffer per
// VC.
package router

import (
	"fmt"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// entry is one buffered flit with its arrival cycle, used both for the
// pipeline-stage delay and for residency energy accounting.
type entry struct {
	flit     packet.Flit
	enqueued sim.Cycle
}

// VC is one virtual channel: a FIFO flit buffer plus the wormhole state
// that binds it to a packet and, once the header has been routed, to a
// downstream (output port, VC) pair.
type VC struct {
	fifo  []entry
	depth int

	// owner is the packet currently occupying the VC (0 when free). Set
	// when the header is enqueued, cleared when the tail is dequeued.
	owner packet.ID

	// routed is true once the header has been forwarded; outPort/outVC
	// then identify the locked downstream path for the body flits.
	routed  bool
	outPort int
	outVC   int
}

// Len returns the number of buffered flits.
func (v *VC) Len() int { return len(v.fifo) }

// Free returns the remaining buffer slots.
func (v *VC) Free() int { return v.depth - len(v.fifo) }

// Port is an input port: a bank of VCs. It is the unit of connection in
// the fabric — router outputs, the photonic transmit engine and the core
// ejection path all receive flits through a Port.
type Port struct {
	vcs       []*VC
	ledger    *photonic.Ledger
	occupancy *int64 // shared fabric-wide buffered-flit counter
	buffered  int    // flits buffered across this port's VCs
}

// NewPort builds a port with the given VC count and per-VC depth. ledger
// and occupancy may be shared across the whole fabric; occupancy must be
// non-nil.
func NewPort(vcCount, depth int, ledger *photonic.Ledger, occupancy *int64) (*Port, error) {
	if vcCount <= 0 || depth <= 0 {
		return nil, fmt.Errorf("router: port needs positive VC count (%d) and depth (%d)", vcCount, depth)
	}
	if ledger == nil || occupancy == nil {
		return nil, fmt.Errorf("router: port needs a ledger and occupancy counter")
	}
	vcs := make([]*VC, vcCount)
	for i := range vcs {
		vcs[i] = &VC{depth: depth}
	}
	return &Port{vcs: vcs, ledger: ledger, occupancy: occupancy}, nil
}

// VCCount returns the number of virtual channels.
func (p *Port) VCCount() int { return len(p.vcs) }

// VC returns channel i.
func (p *Port) VC(i int) *VC { return p.vcs[i] }

// AllocVC claims a free, empty VC for a new packet and returns its index.
// It reports false when every VC is busy — the §1.4 condition under which
// a header flit is dropped.
func (p *Port) AllocVC(owner packet.ID) (int, bool) {
	for i, vc := range p.vcs {
		if vc.owner == 0 && len(vc.fifo) == 0 {
			vc.owner = owner
			return i, true
		}
	}
	return 0, false
}

// FreeVCs returns how many VCs are currently unclaimed.
func (p *Port) FreeVCs() int {
	n := 0
	for _, vc := range p.vcs {
		if vc.owner == 0 && len(vc.fifo) == 0 {
			n++
		}
	}
	return n
}

// Space returns the free buffer slots of VC i.
func (p *Port) Space(i int) int { return p.vcs[i].Free() }

// Enqueue buffers a flit into VC i at cycle now, charging the buffer-write
// energy. It reports an error when the VC is full or not owned by the
// flit's packet — both are fabric bugs, not runtime conditions.
func (p *Port) Enqueue(i int, f packet.Flit, now sim.Cycle) error {
	vc := p.vcs[i]
	if vc.Free() == 0 {
		return fmt.Errorf("router: enqueue into full VC %d (%s)", i, f)
	}
	if vc.owner != f.Packet.ID {
		return fmt.Errorf("router: VC %d owned by packet %d, got flit of packet %d", i, vc.owner, f.Packet.ID)
	}
	vc.fifo = append(vc.fifo, entry{flit: f, enqueued: now})
	*p.occupancy++
	p.buffered++
	p.ledger.AddBufferAccess(float64(f.Bits()))
	return nil
}

// Head returns the head flit of VC i and its enqueue cycle; ok is false
// when the VC is empty.
func (p *Port) Head(i int) (packet.Flit, sim.Cycle, bool) {
	vc := p.vcs[i]
	if len(vc.fifo) == 0 {
		return packet.Flit{}, 0, false
	}
	return vc.fifo[0].flit, vc.fifo[0].enqueued, true
}

// Pop dequeues the head flit of VC i, charging the buffer-read energy and
// releasing the VC when the tail departs.
func (p *Port) Pop(i int) (packet.Flit, error) {
	vc := p.vcs[i]
	if len(vc.fifo) == 0 {
		return packet.Flit{}, fmt.Errorf("router: pop from empty VC %d", i)
	}
	f := vc.fifo[0].flit
	vc.fifo = vc.fifo[1:]
	*p.occupancy--
	p.buffered--
	p.ledger.AddBufferAccess(float64(f.Bits()))
	if f.Type.IsTail() {
		vc.owner = 0
		vc.routed = false
	}
	return f, nil
}

// BufferedFlits returns the total flits buffered across all VCs.
func (p *Port) BufferedFlits() int {
	return p.buffered
}

// ReleaseOwner force-frees VC i. The receive engine uses it when a packet
// is dropped mid-window and its partial contents discarded.
func (p *Port) ReleaseOwner(i int) {
	vc := p.vcs[i]
	*p.occupancy -= int64(len(vc.fifo))
	p.buffered -= len(vc.fifo)
	vc.fifo = nil
	vc.owner = 0
	vc.routed = false
}
