// Package router implements the electrical switches of the NoC: 3-stage
// wormhole routers (input arbitration, routing/crossbar traversal, output
// arbitration — the micro-architecture of [24] adopted in §3.3.2) with
// virtual channels, credit-based flow control and round-robin arbitration.
// Table 3-3 configures them with 16 VCs per port and a 64-flit buffer per
// VC.
//
// All port and VC state lives in a struct-of-arrays Arena; Port and VC
// are index views over it. The per-cycle kernels (Router.Tick, the
// fabric's inject/eject pumps, the photonic engines) therefore touch
// flat scalar slices and per-port bitmasks instead of per-object heaps.
package router

import (
	"fmt"
	"math/bits"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// entry is one buffered flit with its arrival cycle, packed into 16
// bytes so ring traffic moves half the memory of the naive layout: the
// packet pointer plus a word holding the enqueue cycle (low 48 bits, 281T
// cycles), the flit sequence number (13 bits) and the flit type (3 bits).
type entry struct {
	pkt  *packet.Packet
	meta uint64
}

const (
	entryEnqBits = 48
	entryEnqMask = 1<<entryEnqBits - 1
	entrySeqBits = 13
	maxFlitSeq   = 1 << entrySeqBits
)

func mkEntry(f packet.Flit, now sim.Cycle) entry {
	return entry{pkt: f.Packet, meta: uint64(now)&entryEnqMask |
		uint64(f.Seq)<<entryEnqBits | uint64(f.Type)<<(entryEnqBits+entrySeqBits)}
}

func (e entry) flit() packet.Flit {
	return packet.Flit{
		Packet: e.pkt,
		Type:   packet.FlitType(e.meta >> (entryEnqBits + entrySeqBits)),
		Seq:    int(e.meta >> entryEnqBits & (maxFlitSeq - 1)),
	}
}

func (e entry) enqueued() sim.Cycle { return sim.Cycle(e.meta & entryEnqMask) }

// Port is an input port: a bank of VCs carved out of an Arena. It is the
// unit of connection in the fabric — router outputs, the photonic
// transmit engine and the core ejection path all receive flits through a
// Port.
type Port struct {
	a  *Arena
	id int32
}

// NewPort builds a standalone port backed by its own single-port arena.
// The fabric carves all its ports from one shared arena instead; this
// constructor serves tests and other small rigs. ledger and occupancy
// may be shared; occupancy must be non-nil.
func NewPort(vcCount, depth int, ledger *photonic.Ledger, occupancy *int64) (*Port, error) {
	a, err := NewArena(ledger, occupancy)
	if err != nil {
		return nil, err
	}
	return a.NewPort(vcCount, depth)
}

// Arena returns the backing arena of the port.
func (p *Port) Arena() *Arena { return p.a }

// SetWake installs fn to run on every empty-to-non-empty transition of the
// port. The fabric wires it to its activity tracking so components with
// freshly arrived work re-enter the per-cycle schedule.
func (p *Port) SetWake(fn func()) { p.a.wake[p.id] = fn }

// SetRouteTable installs the per-destination-core route table of the
// router consuming this port. With a table in place, the port caches the
// head packet's output at header-enqueue time, so arbitration never
// re-runs the routing function on the hot path.
func (p *Port) SetRouteTable(tab []int16) { p.a.routeTab[p.id] = tab }

// VCCount returns the number of virtual channels.
func (p *Port) VCCount() int {
	vcCnt := p.a.vcCnt
	id := int(p.id)
	if uint(id) >= uint(len(vcCnt)) {
		return 0 // unreachable: ids are assigned by Reserve; the guard anchors BCE
	}
	return int(vcCnt[id])
}

// VC returns the view of channel i.
func (p *Port) VC(i int) VC {
	return VC{a: p.a, g: p.a.vcBase[p.id] + int32(i)}
}

// VC is the view of one virtual channel: a FIFO flit buffer plus the
// wormhole state that binds it to a packet and, once the header has been
// routed, to a downstream (output port, VC) pair.
type VC struct {
	a *Arena
	g int32
}

// Len returns the number of buffered flits.
func (v VC) Len() int { return int(v.a.hot[v.g].count) }

// Free returns the remaining buffer slots.
func (v VC) Free() int { return v.a.depthOfVC(v.g) - int(v.a.hot[v.g].count) }

// AllocVC claims a free, empty VC for a new packet and returns its index.
// It reports false when every VC is busy — the §1.4 condition under which
// a header flit is dropped. The free set is a bitmask, so the scan is a
// single trailing-zeros instruction.
//
//hetpnoc:hotpath
func (p *Port) AllocVC(owner packet.ID) (int, bool) {
	a := p.a
	id := int(p.id)
	if uint(id) >= uint(len(a.freeMask)) || uint(id) >= uint(len(a.vcBase)) {
		return 0, false // unreachable: ids are assigned by Reserve; the guard anchors BCE
	}
	m := a.freeMask[id]
	if m == 0 {
		return 0, false
	}
	i := bits.TrailingZeros64(m)
	g := int(a.vcBase[id]) + i
	if uint(g) >= uint(len(a.owner)) {
		return 0, false // unreachable: vcBase+i stays inside the arena's VC range
	}
	a.freeMask[id] = m & (m - 1)
	a.owner[g] = owner
	return i, true
}

// OccupiedMask returns the port's VC occupancy bitmask: bit i is set
// while VC i holds at least one flit. Engines draining a port use it to
// jump over empty VCs instead of probing each one.
func (p *Port) OccupiedMask() uint64 { return p.a.occMask[p.id] }

// Owner returns the ID of the packet occupying VC i, or zero when the VC
// is free. Every buffered flit of a VC belongs to its owner, so engines
// can identify the head packet without reading the ring.
func (p *Port) Owner(i int) packet.ID {
	return p.a.owner[p.a.vcBase[p.id]+int32(i)]
}

// FreeVCs returns how many VCs are currently unclaimed.
func (p *Port) FreeVCs() int {
	return bits.OnesCount64(p.a.freeMask[p.id])
}

// Space returns the free buffer slots of VC i.
func (p *Port) Space(i int) int {
	a := p.a
	id := int(p.id)
	if uint(id) >= uint(len(a.depth)) || uint(id) >= uint(len(a.vcBase)) {
		return 0 // unreachable: ids are assigned by Reserve; the guard anchors BCE
	}
	g := int(a.vcBase[id]) + i
	if uint(g) >= uint(len(a.hot)) {
		return 0 // unreachable: vcBase+i stays inside the arena's VC range
	}
	return int(a.depth[id]) - int(a.hot[g].count)
}

// Enqueue buffers a flit into VC i at cycle now, charging the buffer-write
// energy. It reports an error when the VC is full or not owned by the
// flit's packet — both are fabric bugs, not runtime conditions.
//
//hetpnoc:hotpath
func (p *Port) Enqueue(i int, f packet.Flit, now sim.Cycle) error {
	a := p.a
	g := a.vcBase[p.id] + int32(i)
	h := &a.hot[g]
	if int32(h.count) >= a.depth[p.id] {
		return fmt.Errorf("router: enqueue into full VC %d (%s)", i, f)
	}
	if a.owner[g] != f.Packet.ID {
		return fmt.Errorf("router: VC %d owned by packet %d, got flit of packet %d", i, a.owner[g], f.Packet.ID)
	}
	if f.Seq >= maxFlitSeq {
		return fmt.Errorf("router: flit sequence %d exceeds packed-entry capacity %d", f.Seq, maxFlitSeq)
	}
	isHdr := f.Type.IsHeader()
	if h.count == 0 {
		a.occMask[p.id] |= 1 << uint(i)
		a.fbits[g] = int32(f.Packet.FlitBits)
		h.headEnq = now
		if isHdr {
			h.flags |= vcHeadHdr
		} else {
			h.flags &^= vcHeadHdr
		}
	}
	// A fresh flit can flip the consuming router's arbitration outcome,
	// so end its quiescent period (see Router.Tick).
	cons := a.consumer[p.id]
	if cons != nil {
		cons.quiet = false
	}
	if isHdr {
		if tab := a.routeTab[p.id]; tab != nil {
			d := tab[f.Packet.Dst]
			h.dstOut = d
			// The packet's route through the consuming router is now
			// fixed until its tail departs: enter it into the router's
			// persistent contender mask for that output.
			if cons != nil && d >= 0 {
				idx := int(a.consBase[p.id]) + i
				cons.liveMask[int(d)*cons.maskWords+(idx>>6)] |= 1 << (uint(idx) & 63)
				cons.liveAny |= 1 << uint(d)
			}
		}
	}
	a.push(g, mkEntry(f, now))
	*a.occupancy++
	a.buffered[p.id]++
	if a.buffered[p.id] == 1 {
		if wake := a.wake[p.id]; wake != nil {
			wake()
		}
	}
	a.ledger.AddBufferAccess(float64(f.Bits()))
	return nil
}

// Head returns the head flit of VC i and its enqueue cycle; ok is false
// when the VC is empty.
//
//hetpnoc:hotpath
func (p *Port) Head(i int) (packet.Flit, sim.Cycle, bool) {
	a := p.a
	id := int(p.id)
	if uint(id) >= uint(len(a.vcBase)) {
		return packet.Flit{}, 0, false // unreachable: ids are assigned by Reserve; the guard anchors BCE
	}
	g := int(a.vcBase[id]) + i
	if uint(g) >= uint(len(a.hot)) || uint(g) >= uint(len(a.bufs)) || uint(g) >= uint(len(a.head)) {
		return packet.Flit{}, 0, false // unreachable: vcBase+i stays inside the arena's VC range
	}
	if a.hot[g].count == 0 {
		return packet.Flit{}, 0, false
	}
	buf := a.bufs[g]
	hd := int(a.head[g])
	if uint(hd) >= uint(len(buf)) {
		return packet.Flit{}, 0, false // unreachable: head always points inside the ring
	}
	e := buf[hd]
	return e.flit(), e.enqueued(), true
}

// HeadMeta reports the head flit's enqueue cycle and whether it is a
// header, without touching the ring storage: everything comes from the
// packed per-VC descriptor, so eligibility scans stay on one cache line.
// ok is false when the VC is empty.
//
//hetpnoc:hotpath
func (p *Port) HeadMeta(i int) (enq sim.Cycle, isHeader, ok bool) {
	a := p.a
	id := int(p.id)
	if uint(id) >= uint(len(a.vcBase)) {
		return 0, false, false // unreachable: ids are assigned by Reserve; the guard anchors BCE
	}
	g := int(a.vcBase[id]) + i
	if uint(g) >= uint(len(a.hot)) {
		return 0, false, false // unreachable: vcBase+i stays inside the arena's VC range
	}
	h := &a.hot[g]
	if h.count == 0 {
		return 0, false, false
	}
	return h.headEnq, h.flags&vcHeadHdr != 0, true
}

// Pop dequeues the head flit of VC i, charging the buffer-read energy and
// releasing the VC when the tail departs.
//
//hetpnoc:hotpath
func (p *Port) Pop(i int) (packet.Flit, error) {
	a := p.a
	g := a.vcBase[p.id] + int32(i)
	h := &a.hot[g]
	if h.count == 0 {
		return packet.Flit{}, fmt.Errorf("router: pop from empty VC %d", i)
	}
	buf := a.bufs[g]
	hd := a.head[g]
	// The departed slot is left in place rather than cleared: packets are
	// pool-owned, so a stale ring reference only delays recycling by one
	// ring lap and saves a store (plus its write barrier) per pop.
	f := buf[hd].flit()
	hd++
	if int(hd) == len(buf) {
		hd = 0
	}
	a.head[g] = hd
	h.count--
	*a.occupancy--
	a.buffered[p.id]--
	// The cached per-VC flit size avoids dereferencing the packet just to
	// charge the read energy.
	a.ledger.AddBufferAccess(float64(a.fbits[g]))
	if h.count == 0 {
		a.occMask[p.id] &^= 1 << uint(i)
		h.headEnq = 0
		h.flags &^= vcHeadHdr
	} else {
		e := buf[hd]
		h.headEnq = e.enqueued()
		if e.flit().Type.IsHeader() {
			h.flags |= vcHeadHdr
		} else {
			h.flags &^= vcHeadHdr
		}
	}
	if f.Type.IsTail() {
		if d := h.dstOut; d >= 0 {
			if r := a.consumer[p.id]; r != nil {
				idx := int(a.consBase[p.id]) + i
				r.liveMask[int(d)*r.maskWords+(idx>>6)] &^= 1 << (uint(idx) & 63)
			}
		}
		a.owner[g] = 0
		h.flags &^= vcRouted
		h.dstOut = -1
		if h.count == 0 {
			a.freeMask[p.id] |= 1 << uint(i)
		}
	}
	// Draining this port frees buffer space (and, on tails, a VC), which
	// can unblock any router feeding it: end their quiescent periods.
	for _, w := range a.watchers[p.id] {
		w.quiet = false
	}
	return f, nil
}

// BufferedFlits returns the total flits buffered across all VCs.
func (p *Port) BufferedFlits() int {
	buffered := p.a.buffered
	id := int(p.id)
	if uint(id) >= uint(len(buffered)) {
		return 0 // unreachable: ids are assigned by Reserve; the guard anchors BCE
	}
	return int(buffered[id])
}

// ReleaseOwner force-frees VC i. The receive engine uses it when a packet
// is dropped mid-window and its partial contents discarded.
func (p *Port) ReleaseOwner(i int) {
	a := p.a
	g := a.vcBase[p.id] + int32(i)
	h := &a.hot[g]
	n := int32(h.count)
	// Discarded slots stay in place (see Pop); resetting head with
	// count 0 leaves no live entries.
	a.head[g] = 0
	*a.occupancy -= int64(n)
	a.buffered[p.id] -= n
	a.occMask[p.id] &^= 1 << uint(i)
	a.freeMask[p.id] |= 1 << uint(i)
	a.owner[g] = 0
	if d := h.dstOut; d >= 0 {
		if r := a.consumer[p.id]; r != nil {
			idx := int(a.consBase[p.id]) + i
			r.liveMask[int(d)*r.maskWords+(idx>>6)] &^= 1 << (uint(idx) & 63)
		}
	}
	*h = vcHot{dstOut: -1}
	for _, w := range a.watchers[p.id] {
		w.quiet = false
	}
}
