// Package router implements the electrical switches of the NoC: 3-stage
// wormhole routers (input arbitration, routing/crossbar traversal, output
// arbitration — the micro-architecture of [24] adopted in §3.3.2) with
// virtual channels, credit-based flow control and round-robin arbitration.
// Table 3-3 configures them with 16 VCs per port and a 64-flit buffer per
// VC.
package router

import (
	"fmt"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// entry is one buffered flit with its arrival cycle, used both for the
// pipeline-stage delay and for residency energy accounting.
type entry struct {
	flit     packet.Flit
	enqueued sim.Cycle
}

// VC is one virtual channel: a FIFO flit buffer plus the wormhole state
// that binds it to a packet and, once the header has been routed, to a
// downstream (output port, VC) pair.
//
// The FIFO is a ring: buf grows on demand up to depth entries and is then
// reused for the rest of the run, so steady-state traffic enqueues and
// dequeues without allocating.
type VC struct {
	buf   []entry
	head  int
	count int
	depth int

	// owner is the packet currently occupying the VC (0 when free). Set
	// when the header is enqueued, cleared when the tail is dequeued.
	owner packet.ID

	// routed is true once the header has been forwarded; outPort/outVC
	// then identify the locked downstream path for the body flits.
	routed  bool
	outPort int
	outVC   int
}

// Len returns the number of buffered flits.
func (v *VC) Len() int { return v.count }

// Free returns the remaining buffer slots.
func (v *VC) Free() int { return v.depth - v.count }

// headEntry returns the ring slot of the oldest buffered flit.
func (v *VC) headEntry() *entry { return &v.buf[v.head] }

// push appends an entry, growing the ring toward depth when full.
func (v *VC) push(e entry) {
	if v.count == len(v.buf) {
		v.grow()
	}
	slot := v.head + v.count
	if slot >= len(v.buf) {
		slot -= len(v.buf)
	}
	v.buf[slot] = e
	v.count++
}

// pop removes and returns the oldest entry.
func (v *VC) pop() entry {
	e := v.buf[v.head]
	v.buf[v.head] = entry{} // drop the packet reference
	v.head++
	if v.head == len(v.buf) {
		v.head = 0
	}
	v.count--
	return e
}

// grow doubles the ring capacity (bounded by depth), linearizing the
// current contents at the front of the new buffer.
func (v *VC) grow() {
	newCap := 2 * len(v.buf)
	if newCap < 8 {
		newCap = 8
	}
	if newCap > v.depth {
		newCap = v.depth
	}
	buf := make([]entry, newCap)
	for i := 0; i < v.count; i++ {
		slot := v.head + i
		if slot >= len(v.buf) {
			slot -= len(v.buf)
		}
		buf[i] = v.buf[slot]
	}
	v.buf = buf
	v.head = 0
}

// clear discards every buffered entry but keeps the ring storage for
// reuse.
func (v *VC) clear() {
	for i := 0; i < v.count; i++ {
		slot := v.head + i
		if slot >= len(v.buf) {
			slot -= len(v.buf)
		}
		v.buf[slot] = entry{}
	}
	v.head = 0
	v.count = 0
}

// Port is an input port: a bank of VCs. It is the unit of connection in
// the fabric — router outputs, the photonic transmit engine and the core
// ejection path all receive flits through a Port.
type Port struct {
	vcs       []VC
	ledger    *photonic.Ledger
	occupancy *int64 // shared fabric-wide buffered-flit counter
	buffered  int    // flits buffered across this port's VCs

	// wake, when set, is invoked whenever the port transitions from empty
	// to non-empty. The fabric uses it to register the consuming component
	// (router, transmit engine or ejecting core) on its active lists.
	wake func()
}

// NewPort builds a port with the given VC count and per-VC depth. ledger
// and occupancy may be shared across the whole fabric; occupancy must be
// non-nil.
func NewPort(vcCount, depth int, ledger *photonic.Ledger, occupancy *int64) (*Port, error) {
	if vcCount <= 0 || depth <= 0 {
		return nil, fmt.Errorf("router: port needs positive VC count (%d) and depth (%d)", vcCount, depth)
	}
	if ledger == nil || occupancy == nil {
		return nil, fmt.Errorf("router: port needs a ledger and occupancy counter")
	}
	vcs := make([]VC, vcCount)
	for i := range vcs {
		vcs[i].depth = depth
	}
	return &Port{vcs: vcs, ledger: ledger, occupancy: occupancy}, nil
}

// SetWake installs fn to run on every empty-to-non-empty transition of the
// port. The fabric wires it to its activity tracking so components with
// freshly arrived work re-enter the per-cycle schedule.
func (p *Port) SetWake(fn func()) { p.wake = fn }

// VCCount returns the number of virtual channels.
func (p *Port) VCCount() int { return len(p.vcs) }

// VC returns channel i.
func (p *Port) VC(i int) *VC { return &p.vcs[i] }

// AllocVC claims a free, empty VC for a new packet and returns its index.
// It reports false when every VC is busy — the §1.4 condition under which
// a header flit is dropped.
func (p *Port) AllocVC(owner packet.ID) (int, bool) {
	for i := range p.vcs {
		vc := &p.vcs[i]
		if vc.owner == 0 && vc.count == 0 {
			vc.owner = owner
			return i, true
		}
	}
	return 0, false
}

// FreeVCs returns how many VCs are currently unclaimed.
func (p *Port) FreeVCs() int {
	n := 0
	for i := range p.vcs {
		vc := &p.vcs[i]
		if vc.owner == 0 && vc.count == 0 {
			n++
		}
	}
	return n
}

// Space returns the free buffer slots of VC i.
func (p *Port) Space(i int) int { return p.vcs[i].Free() }

// Enqueue buffers a flit into VC i at cycle now, charging the buffer-write
// energy. It reports an error when the VC is full or not owned by the
// flit's packet — both are fabric bugs, not runtime conditions.
func (p *Port) Enqueue(i int, f packet.Flit, now sim.Cycle) error {
	vc := &p.vcs[i]
	if vc.Free() == 0 {
		return fmt.Errorf("router: enqueue into full VC %d (%s)", i, f)
	}
	if vc.owner != f.Packet.ID {
		return fmt.Errorf("router: VC %d owned by packet %d, got flit of packet %d", i, vc.owner, f.Packet.ID)
	}
	vc.push(entry{flit: f, enqueued: now})
	*p.occupancy++
	p.buffered++
	if p.buffered == 1 && p.wake != nil {
		p.wake()
	}
	p.ledger.AddBufferAccess(float64(f.Bits()))
	return nil
}

// Head returns the head flit of VC i and its enqueue cycle; ok is false
// when the VC is empty.
func (p *Port) Head(i int) (packet.Flit, sim.Cycle, bool) {
	vc := &p.vcs[i]
	if vc.count == 0 {
		return packet.Flit{}, 0, false
	}
	e := vc.headEntry()
	return e.flit, e.enqueued, true
}

// Pop dequeues the head flit of VC i, charging the buffer-read energy and
// releasing the VC when the tail departs.
func (p *Port) Pop(i int) (packet.Flit, error) {
	vc := &p.vcs[i]
	if vc.count == 0 {
		return packet.Flit{}, fmt.Errorf("router: pop from empty VC %d", i)
	}
	f := vc.pop().flit
	*p.occupancy--
	p.buffered--
	p.ledger.AddBufferAccess(float64(f.Bits()))
	if f.Type.IsTail() {
		vc.owner = 0
		vc.routed = false
	}
	return f, nil
}

// BufferedFlits returns the total flits buffered across all VCs.
func (p *Port) BufferedFlits() int {
	return p.buffered
}

// ReleaseOwner force-frees VC i. The receive engine uses it when a packet
// is dropped mid-window and its partial contents discarded.
func (p *Port) ReleaseOwner(i int) {
	vc := &p.vcs[i]
	*p.occupancy -= int64(vc.count)
	p.buffered -= vc.count
	vc.clear()
	vc.owner = 0
	vc.routed = false
}
