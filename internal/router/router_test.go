package router

import (
	"testing"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// testFabric is a single router with one input and two outputs, routing by
// destination cluster parity.
type testFabric struct {
	r      *Router
	in     *Port
	out    [2]*Port
	ledger *photonic.Ledger
	occ    int64
}

func newTestFabric(t *testing.T, vcs, depth int) *testFabric {
	return newTestFabricDepths(t, vcs, depth, depth)
}

// newTestFabricDepths builds the fabric with different input and
// downstream buffer depths (backpressure tests need a deep input feeding
// shallow outputs).
func newTestFabricDepths(t *testing.T, vcs, inDepth, outDepth int) *testFabric {
	t.Helper()
	f := &testFabric{ledger: photonic.NewLedger(photonic.DefaultEnergyParams())}
	f.ledger.StartMeasurement()
	mk := func(depth int) *Port {
		p, err := NewPort(vcs, depth, f.ledger, &f.occ)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	f.in = mk(inDepth)
	f.out[0] = mk(outDepth)
	f.out[1] = mk(outDepth)
	route := func(fl packet.Flit) int {
		return int(fl.Packet.DstCluster) % 2
	}
	r, err := New("test", []*Port{f.in}, []int{2}, route, f.ledger)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddOutput(f.out[0], 1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddOutput(f.out[1], 1, false); err != nil {
		t.Fatal(err)
	}
	f.r = r
	return f
}

func (f *testFabric) inject(t *testing.T, pkt *packet.Packet, now sim.Cycle) int {
	t.Helper()
	vc, ok := f.in.AllocVC(pkt.ID)
	if !ok {
		t.Fatal("no free input VC")
	}
	for i := 0; i < pkt.Flits; i++ {
		if err := f.in.Enqueue(vc, packet.FlitAt(pkt, i), now); err != nil {
			t.Fatal(err)
		}
	}
	return vc
}

func (f *testFabric) run(t *testing.T, from, to sim.Cycle) {
	t.Helper()
	for now := from; now < to; now++ {
		if err := f.r.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRouterForwardsWholePacket(t *testing.T) {
	f := newTestFabric(t, 4, 16)
	pkt := &packet.Packet{ID: 1, Flits: 4, FlitBits: 32, DstCluster: 0}
	f.inject(t, pkt, 0)

	f.run(t, 0, 10)
	if got := f.out[0].BufferedFlits(); got != 4 {
		t.Fatalf("output 0 holds %d flits, want 4", got)
	}
	if got := f.out[1].BufferedFlits(); got != 0 {
		t.Fatalf("output 1 holds %d flits, want 0", got)
	}
	// FIFO order preserved through the hop.
	for i := 0; i < 4; i++ {
		fl, err := f.out[0].Pop(0)
		if err != nil {
			t.Fatal(err)
		}
		if fl.Seq != i {
			t.Fatalf("flit %d arrived out of order (seq %d)", i, fl.Seq)
		}
	}
}

// TestRouterPipelineDelay: a flit enqueued at cycle 0 cannot depart before
// it has spent PipelineDelay cycles in the input buffer (the IA and
// routing stages of the 3-stage router).
func TestRouterPipelineDelay(t *testing.T) {
	f := newTestFabric(t, 4, 16)
	pkt := &packet.Packet{ID: 1, Flits: 1, FlitBits: 32, DstCluster: 0}
	f.inject(t, pkt, 0)

	f.run(t, 0, PipelineDelay) // cycles 0 and 1
	if got := f.out[0].BufferedFlits(); got != 0 {
		t.Fatalf("flit departed after %d cycles, pipeline delay is %d", got, PipelineDelay)
	}
	f.run(t, PipelineDelay, PipelineDelay+1)
	if got := f.out[0].BufferedFlits(); got != 1 {
		t.Fatal("flit did not depart once eligible")
	}
}

// TestRouterOutputWidth: an output moves at most `width` flits per cycle.
func TestRouterOutputWidth(t *testing.T) {
	f := newTestFabric(t, 4, 16)
	pkt := &packet.Packet{ID: 1, Flits: 8, FlitBits: 32, DstCluster: 0}
	f.inject(t, pkt, 0)

	f.run(t, 0, 3) // first eligible cycle is 2
	if got := f.out[0].BufferedFlits(); got != 1 {
		t.Fatalf("moved %d flits in one cycle through width-1 output", got)
	}
}

// TestRouterInputWidthLimit: a width-2 input feeding two outputs still
// moves at most 2 flits per cycle in total.
func TestRouterInputWidthLimit(t *testing.T) {
	f := newTestFabric(t, 4, 16)
	even := &packet.Packet{ID: 1, Flits: 4, FlitBits: 32, DstCluster: 0}
	odd := &packet.Packet{ID: 2, Flits: 4, FlitBits: 32, DstCluster: 1}
	f.inject(t, even, 0)
	f.inject(t, odd, 0)

	f.run(t, 0, 3)
	total := f.out[0].BufferedFlits() + f.out[1].BufferedFlits()
	if total != 2 {
		t.Fatalf("moved %d flits in one cycle through a width-2 input", total)
	}
}

// TestWormholeNoInterleaving: two packets to the same output land in
// different downstream VCs, each contiguous.
func TestWormholeNoInterleaving(t *testing.T) {
	f := newTestFabric(t, 4, 16)
	a := &packet.Packet{ID: 1, Flits: 4, FlitBits: 32, DstCluster: 0}
	b := &packet.Packet{ID: 2, Flits: 4, FlitBits: 32, DstCluster: 2} // also output 0
	f.inject(t, a, 0)
	f.inject(t, b, 0)

	f.run(t, 0, 20)
	if got := f.out[0].BufferedFlits(); got != 8 {
		t.Fatalf("output holds %d flits, want 8", got)
	}
	// Each downstream VC must contain exactly one packet's flits in order.
	for vc := 0; vc < f.out[0].VCCount(); vc++ {
		var owner packet.ID
		seq := 0
		for f.out[0].VC(vc).Len() > 0 {
			fl, err := f.out[0].Pop(vc)
			if err != nil {
				t.Fatal(err)
			}
			if owner == 0 {
				owner = fl.Packet.ID
			}
			if fl.Packet.ID != owner {
				t.Fatalf("VC %d interleaves packets %d and %d", vc, owner, fl.Packet.ID)
			}
			if fl.Seq != seq {
				t.Fatalf("VC %d out of order", vc)
			}
			seq++
		}
	}
}

// TestRouterBackpressure: when the downstream VC fills, the router stops
// forwarding and resumes as space frees.
func TestRouterBackpressure(t *testing.T) {
	f := newTestFabricDepths(t, 1, 16, 2) // tiny downstream buffers
	pkt := &packet.Packet{ID: 1, Flits: 6, FlitBits: 32, DstCluster: 0}
	f.inject(t, pkt, 0)

	f.run(t, 0, 10)
	if got := f.out[0].BufferedFlits(); got != 2 {
		t.Fatalf("downstream holds %d flits, want 2 (buffer depth)", got)
	}
	// Drain one: exactly one more moves.
	if _, err := f.out[0].Pop(0); err != nil {
		t.Fatal(err)
	}
	f.run(t, 10, 11)
	if got := f.out[0].BufferedFlits(); got != 2 {
		t.Fatalf("downstream holds %d flits after drain+tick, want 2", got)
	}
}

// TestRouterVCExhaustionBlocksHeader: with every downstream VC owned, a
// new header waits rather than forwarding.
func TestRouterVCExhaustionBlocksHeader(t *testing.T) {
	f := newTestFabric(t, 2, 16)
	// Two long packets claim both downstream VCs.
	a := &packet.Packet{ID: 1, Flits: 2, FlitBits: 32, DstCluster: 0}
	b := &packet.Packet{ID: 2, Flits: 2, FlitBits: 32, DstCluster: 2}
	f.inject(t, a, 0)
	f.inject(t, b, 0)
	f.run(t, 0, 10)

	// Both delivered but NOT drained: their downstream VCs stay owned
	// until the tails are popped, so a third packet cannot allocate.
	c := &packet.Packet{ID: 3, Flits: 2, FlitBits: 32, DstCluster: 4}
	f.inject(t, c, 10)
	f.run(t, 10, 20)
	if got := f.out[0].BufferedFlits(); got != 4 {
		t.Fatalf("downstream holds %d flits, want only the first two packets (4)", got)
	}

	// Drain packet a fully; its VC frees and packet c proceeds.
	for i := 0; i < 2; i++ {
		if _, err := f.out[0].Pop(0); err != nil {
			t.Fatal(err)
		}
	}
	f.run(t, 20, 30)
	if got := f.out[0].BufferedFlits(); got != 4 {
		t.Fatalf("third packet did not proceed after VC freed (%d flits)", got)
	}
}

// TestRouterRoundRobinFairness: two input VCs contending for one output
// share it roughly evenly.
func TestRouterRoundRobinFairness(t *testing.T) {
	f := newTestFabric(t, 4, 64)
	a := &packet.Packet{ID: 1, Flits: 30, FlitBits: 32, DstCluster: 0}
	b := &packet.Packet{ID: 2, Flits: 30, FlitBits: 32, DstCluster: 2}
	f.inject(t, a, 0)
	f.inject(t, b, 0)

	// Run just long enough to move ~20 flits through the width-1 output
	// (input width 2 allows both VCs to progress each cycle).
	f.run(t, 0, 22)
	got := f.out[0].BufferedFlits()
	if got == 0 {
		t.Fatal("nothing forwarded")
	}
	// Count per-packet arrivals.
	counts := make(map[packet.ID]int)
	for vc := 0; vc < f.out[0].VCCount(); vc++ {
		for f.out[0].VC(vc).Len() > 0 {
			fl, err := f.out[0].Pop(vc)
			if err != nil {
				t.Fatal(err)
			}
			counts[fl.Packet.ID]++
		}
	}
	diff := counts[1] - counts[2]
	if diff < -2 || diff > 2 {
		t.Fatalf("unfair arbitration: packet 1 got %d grants, packet 2 got %d", counts[1], counts[2])
	}
}

func TestRouterEnergyAccounting(t *testing.T) {
	f := newTestFabric(t, 4, 16)
	pkt := &packet.Packet{ID: 1, Flits: 1, FlitBits: 32, DstCluster: 0}
	f.inject(t, pkt, 0)
	f.run(t, 0, 5)

	// One traversal of 32 bits at 0.625 pJ/bit.
	if got, want := float64(f.ledger.Total(photonic.EnergyRouter)), 32*0.625; got != want {
		t.Fatalf("router energy = %g, want %g", got, want)
	}
	// Output 0 charges the wire link (chargeLink=true).
	if got, want := float64(f.ledger.Total(photonic.EnergyWireLink)), 32*0.1; got != want {
		t.Fatalf("wire energy = %g, want %g", got, want)
	}
}

func TestNewRouterValidation(t *testing.T) {
	ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
	var occ int64
	p, err := NewPort(1, 1, ledger, &occ)
	if err != nil {
		t.Fatal(err)
	}
	route := func(packet.Flit) int { return 0 }
	if _, err := New("x", nil, nil, route, ledger); err == nil {
		t.Error("router with no inputs accepted")
	}
	if _, err := New("x", []*Port{p}, []int{1, 2}, route, ledger); err == nil {
		t.Error("mismatched widths accepted")
	}
	if _, err := New("x", []*Port{p}, []int{0}, route, ledger); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New("x", []*Port{p}, []int{1}, nil, ledger); err == nil {
		t.Error("nil route accepted")
	}
	r, err := New("x", []*Port{p}, []int{1}, route, ledger)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddOutput(nil, 1, false); err == nil {
		t.Error("nil output accepted")
	}
	if _, err := r.AddOutput(p, 0, false); err == nil {
		t.Error("zero-width output accepted")
	}
}
