package router

import (
	"testing"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
)

func newTestPort(t *testing.T, vcs, depth int) (*Port, *photonic.Ledger, *int64) {
	t.Helper()
	ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
	ledger.StartMeasurement()
	var occupancy int64
	p, err := NewPort(vcs, depth, ledger, &occupancy)
	if err != nil {
		t.Fatal(err)
	}
	return p, ledger, &occupancy
}

func testPacket(id packet.ID, flits int) *packet.Packet {
	return &packet.Packet{ID: id, Flits: flits, FlitBits: 32}
}

func TestPortAllocLifecycle(t *testing.T) {
	p, _, occ := newTestPort(t, 2, 4)
	pkt := testPacket(1, 3)

	vc, ok := p.AllocVC(pkt.ID)
	if !ok {
		t.Fatal("AllocVC failed on empty port")
	}
	if p.FreeVCs() != 1 {
		t.Fatalf("FreeVCs = %d, want 1", p.FreeVCs())
	}

	for i := 0; i < pkt.Flits; i++ {
		if err := p.Enqueue(vc, packet.FlitAt(pkt, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	if *occ != 3 {
		t.Fatalf("occupancy = %d, want 3", *occ)
	}
	if p.BufferedFlits() != 3 {
		t.Fatalf("BufferedFlits = %d, want 3", p.BufferedFlits())
	}

	// Pop everything; the tail releases the VC.
	for i := 0; i < pkt.Flits; i++ {
		fl, err := p.Pop(vc)
		if err != nil {
			t.Fatal(err)
		}
		if fl.Seq != i {
			t.Fatalf("popped flit %d, want %d (FIFO order)", fl.Seq, i)
		}
	}
	if *occ != 0 {
		t.Fatalf("occupancy = %d after drain, want 0", *occ)
	}
	if p.FreeVCs() != 2 {
		t.Fatalf("FreeVCs = %d after tail, want 2", p.FreeVCs())
	}
}

func TestPortAllocExhaustion(t *testing.T) {
	p, _, _ := newTestPort(t, 2, 4)
	if _, ok := p.AllocVC(1); !ok {
		t.Fatal("first alloc failed")
	}
	if _, ok := p.AllocVC(2); !ok {
		t.Fatal("second alloc failed")
	}
	// All VCs busy: the §1.4 drop condition.
	if _, ok := p.AllocVC(3); ok {
		t.Fatal("alloc succeeded with every VC busy")
	}
}

func TestPortEnqueueErrors(t *testing.T) {
	p, _, _ := newTestPort(t, 1, 2)
	pkt := testPacket(7, 4)
	vc, _ := p.AllocVC(pkt.ID)

	// Wrong owner.
	other := testPacket(8, 1)
	if err := p.Enqueue(vc, packet.FlitAt(other, 0), 0); err == nil {
		t.Fatal("enqueue of foreign packet accepted")
	}

	// Overflow.
	if err := p.Enqueue(vc, packet.FlitAt(pkt, 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Enqueue(vc, packet.FlitAt(pkt, 1), 0); err != nil {
		t.Fatal(err)
	}
	if p.Space(vc) != 0 {
		t.Fatalf("Space = %d, want 0", p.Space(vc))
	}
	if err := p.Enqueue(vc, packet.FlitAt(pkt, 2), 0); err == nil {
		t.Fatal("enqueue into full VC accepted")
	}
}

func TestPortPopEmpty(t *testing.T) {
	p, _, _ := newTestPort(t, 1, 2)
	if _, err := p.Pop(0); err == nil {
		t.Fatal("pop from empty VC accepted")
	}
	if _, _, ok := p.Head(0); ok {
		t.Fatal("Head reported a flit on an empty VC")
	}
}

func TestPortReleaseOwner(t *testing.T) {
	p, _, occ := newTestPort(t, 1, 8)
	pkt := testPacket(9, 4)
	vc, _ := p.AllocVC(pkt.ID)
	for i := 0; i < 3; i++ {
		if err := p.Enqueue(vc, packet.FlitAt(pkt, i), 0); err != nil {
			t.Fatal(err)
		}
	}
	p.ReleaseOwner(vc)
	if *occ != 0 {
		t.Fatalf("occupancy = %d after release, want 0", *occ)
	}
	if p.FreeVCs() != 1 {
		t.Fatal("VC not freed by ReleaseOwner")
	}
}

func TestPortBufferEnergyCharged(t *testing.T) {
	p, ledger, _ := newTestPort(t, 1, 8)
	pkt := testPacket(10, 2)
	vc, _ := p.AllocVC(pkt.ID)
	if err := p.Enqueue(vc, packet.FlitAt(pkt, 0), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Pop(vc); err != nil {
		t.Fatal(err)
	}
	// One write + one read of a 32-bit flit at 0.078125 pJ/bit.
	want := 2 * 32 * 0.078125
	if got := float64(ledger.Total(photonic.EnergyBuffer)); got != want {
		t.Fatalf("buffer energy = %g pJ, want %g", got, want)
	}
}

func TestNewPortValidation(t *testing.T) {
	ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
	var occ int64
	if _, err := NewPort(0, 4, ledger, &occ); err == nil {
		t.Error("zero VCs accepted")
	}
	if _, err := NewPort(4, 0, ledger, &occ); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := NewPort(4, 4, nil, &occ); err == nil {
		t.Error("nil ledger accepted")
	}
	if _, err := NewPort(4, 4, ledger, nil); err == nil {
		t.Error("nil occupancy accepted")
	}
}
