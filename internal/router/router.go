package router

import (
	"fmt"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// PipelineDelay is the number of cycles a flit must be buffered before it
// is eligible for output arbitration, modelling the input-arbitration and
// routing/crossbar stages of the 3-stage router (§3.3.2). With the
// single-cycle link transfer this gives the canonical 3-cycle hop.
const PipelineDelay sim.Cycle = 2

// RouteFunc maps a flit to the index of the output it must leave through.
type RouteFunc func(f packet.Flit) int

// Output is one router output: the downstream input port it feeds, the
// number of flits it can transfer per cycle (its datapath width), and its
// round-robin arbitration state.
type Output struct {
	dst   *Port
	width int
	rr    int
}

// Dst returns the downstream port this output feeds.
func (o *Output) Dst() *Port { return o.dst }

// Router is a wormhole virtual-channel router.
type Router struct {
	name    string
	inputs  []*Port
	inWidth []int
	outputs []*Output
	route   RouteFunc
	ledger  *photonic.Ledger

	// chargeLink controls whether forwarding charges wire-link energy;
	// internal hops inside the photonic router (to the transmit engine)
	// cross no chip wire.
	chargeLink []bool

	// candIn/candVC map a flat arbitration-scan index to its (input
	// port, VC) pair, precomputed so the per-cycle scan is table lookups.
	candIn []int
	candVC []int
}

// New creates a router with the given name, input ports and routing
// function. Outputs are attached with AddOutput in index order.
func New(name string, inputs []*Port, inWidths []int, route RouteFunc, ledger *photonic.Ledger) (*Router, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("router %s: needs at least one input", name)
	}
	if len(inWidths) != len(inputs) {
		return nil, fmt.Errorf("router %s: %d input widths for %d inputs", name, len(inWidths), len(inputs))
	}
	for i, w := range inWidths {
		if w <= 0 {
			return nil, fmt.Errorf("router %s: input %d width must be positive", name, i)
		}
	}
	if route == nil || ledger == nil {
		return nil, fmt.Errorf("router %s: needs a route function and ledger", name)
	}
	r := &Router{name: name, inputs: inputs, inWidth: inWidths, route: route, ledger: ledger}
	for i, in := range inputs {
		for vc := 0; vc < in.VCCount(); vc++ {
			r.candIn = append(r.candIn, i)
			r.candVC = append(r.candVC, vc)
		}
	}
	return r, nil
}

// Name returns the router's diagnostic name.
func (r *Router) Name() string { return r.name }

// Input returns input port i.
func (r *Router) Input(i int) *Port { return r.inputs[i] }

// AddOutput attaches the next output, feeding dst with the given per-cycle
// flit width, and returns its index. chargeLink selects whether forwarding
// through this output dissipates wire-link energy.
func (r *Router) AddOutput(dst *Port, width int, chargeLink bool) (int, error) {
	if dst == nil {
		return 0, fmt.Errorf("router %s: output needs a destination port", r.name)
	}
	if width <= 0 {
		return 0, fmt.Errorf("router %s: output width must be positive, got %d", r.name, width)
	}
	r.outputs = append(r.outputs, &Output{dst: dst, width: width})
	r.chargeLink = append(r.chargeLink, chargeLink)
	return len(r.outputs) - 1, nil
}

// Output returns output o.
func (r *Router) Output(o int) *Output { return r.outputs[o] }

// Outputs returns the number of attached outputs.
func (r *Router) Outputs() int { return len(r.outputs) }

// Tick performs one cycle of output arbitration: for every output, up to
// `width` eligible flits are moved from input VCs to the downstream port.
// Headers perform routing and downstream VC allocation; body and tail
// flits follow the path their header locked.
func (r *Router) Tick(now sim.Cycle) error {
	// Fast path: nothing buffered anywhere means nothing to arbitrate.
	idle := true
	for _, in := range r.inputs {
		if in.buffered > 0 {
			idle = false
			break
		}
	}
	if idle {
		return nil
	}

	// Per-cycle dequeue budget per input port (switch constraint).
	var movedArray [16]int
	moved := movedArray[:]
	if len(r.inputs) > len(moved) {
		moved = make([]int, len(r.inputs))
	} else {
		moved = moved[:len(r.inputs)]
		for i := range moved {
			moved[i] = 0
		}
	}

	candidates := len(r.candIn)
	for o, out := range r.outputs {
		granted := 0
		for scan := 0; scan < candidates && granted < out.width; scan++ {
			idx := out.rr + scan
			if idx >= candidates {
				idx -= candidates
			}
			inIdx, vcIdx := r.candIn[idx], r.candVC[idx]
			if moved[inIdx] >= r.inWidth[inIdx] {
				continue
			}
			in := r.inputs[inIdx]
			if in.buffered == 0 {
				continue
			}
			flit, enq, ok := in.Head(vcIdx)
			if !ok || now-enq < PipelineDelay {
				continue
			}
			vc := in.VC(vcIdx)

			if flit.Type.IsHeader() && !vc.routed {
				if r.route(flit) != o {
					continue
				}
				dstVC, ok := out.dst.AllocVC(flit.Packet.ID)
				if !ok {
					continue // no free downstream VC; retry next cycle
				}
				vc.routed = true
				vc.outPort = o
				vc.outVC = dstVC
			} else if !vc.routed || vc.outPort != o {
				continue
			}

			if out.dst.Space(vc.outVC) == 0 {
				continue
			}

			dstVC := vc.outVC
			popped, err := in.Pop(vcIdx) // releases the VC on tail
			if err != nil {
				return fmt.Errorf("router %s: %w", r.name, err)
			}
			if err := out.dst.Enqueue(dstVC, popped, now); err != nil {
				return fmt.Errorf("router %s: %w", r.name, err)
			}
			bits := float64(popped.Bits())
			r.ledger.AddRouterTraversal(bits)
			if r.chargeLink[o] {
				r.ledger.AddWireLink(bits)
			}
			moved[inIdx]++
			granted++
			out.rr = (idx + 1) % candidates
		}
	}
	return nil
}

// BufferedFlits returns the flits buffered across all input ports, for
// tests and diagnostics.
func (r *Router) BufferedFlits() int {
	n := 0
	for _, in := range r.inputs {
		n += in.BufferedFlits()
	}
	return n
}
