package router

import (
	"fmt"
	"math/bits"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// PipelineDelay is the number of cycles a flit must be buffered before it
// is eligible for output arbitration, modelling the input-arbitration and
// routing/crossbar stages of the 3-stage router (§3.3.2). With the
// single-cycle link transfer this gives the canonical 3-cycle hop.
const PipelineDelay sim.Cycle = 2

// RouteFunc maps a flit to the index of the output it must leave through.
type RouteFunc func(f packet.Flit) int

// Output is one router output: the downstream input port it feeds, the
// number of flits it can transfer per cycle (its datapath width), and its
// round-robin arbitration state.
type Output struct {
	dst   *Port
	width int
	rr    int
}

// Dst returns the downstream port this output feeds.
func (o *Output) Dst() *Port { return o.dst }

// MaxOutputs bounds a router's output count so the set of outputs with
// contenders fits one bitmask word.
const MaxOutputs = 64

// cand is the packed per-candidate descriptor of the arbitration scan:
// the global arena VC index plus the (input port, VC) pair it decodes to.
type cand struct {
	g  int32
	in int16
	vc int16
}

// Router is a wormhole virtual-channel router. Its inputs must all be
// views of one Arena: arbitration walks the arena's occupancy bitmasks
// and flat per-VC scalars rather than per-object buffers.
type Router struct {
	name    string
	arena   *Arena
	inputs  []*Port
	inPort  []int32
	inWidth []int
	outputs []*Output
	route   RouteFunc
	ledger  *photonic.Ledger

	// chargeLink controls whether forwarding charges wire-link energy;
	// internal hops inside the photonic router (to the transmit engine)
	// cross no chip wire.
	chargeLink []bool

	// cand maps a flat arbitration-scan index to its packed (global
	// arena VC, input port, VC) triple, precomputed so a scan visit is
	// one 8-byte load. candBase[i] is the flat index of input i's VC 0.
	cand     []cand
	candBase []int

	// Per-Tick scratch, retained across cycles so the hot loop never
	// allocates: per output, the bitmask of eligible candidates
	// targeting it, stored flat with stride maskWords (output o owns
	// words [o*maskWords, (o+1)*maskWords)).
	maskWords int
	outMask   []uint64
	// budget holds each input's remaining per-Tick dequeue allowance,
	// reset from widths32 (the configured widths) at Tick start.
	budget   []int32
	widths32 []int32

	// liveMask is the persistent counterpart of outMask, valid when every
	// input carries a route table (tabled): bit set while an input VC is
	// owned by a packet routed to that output. Because a packet's route is
	// fixed from header enqueue to tail pop, the masks change only on
	// those ownership transitions (maintained by Port.Enqueue/Pop/
	// ReleaseOwner through the arena's consumer registry), and Tick seeds
	// its scratch with one copy instead of re-walking every buffered VC.
	liveMask []uint64
	tabled   bool
	// liveAny is a lazy per-output summary of liveMask: bit o is set
	// whenever output o might have a contender. Ownership transitions set
	// it eagerly; Tick clears it when a copy finds the output's words all
	// zero, so idle outputs cost nothing per cycle.
	liveAny uint64

	// Quiescence: a Tick that grants nothing is a pure function — it
	// changes no round-robin cursor, charges no energy and moves no flit —
	// so its outcome repeats until an external event can flip a rejection.
	// After a grantless tabled Tick the router records quiet=true and the
	// earliest cycle a too-young head becomes eligible (wakeAt); Ticks
	// before then return immediately. Every event that can change the
	// outcome clears the flag: a flit arriving at an input (Port.Enqueue
	// via the consumer registry), a downstream port draining or freeing a
	// VC (Port.Pop/ReleaseOwner via the watcher registry), and aging
	// (wakeAt). Blocked routers in a congested fabric thus cost two loads
	// per cycle instead of a full scan-and-kill pass.
	quiet  bool
	wakeAt sim.Cycle
}

// quietForever marks a quiescent period that only an external wake event
// can end (no young head is waiting to age in).
const quietForever = sim.Cycle(1) << 62

// New creates a router with the given name, input ports and routing
// function. All inputs must share one arena. Outputs are attached with
// AddOutput in index order.
func New(name string, inputs []*Port, inWidths []int, route RouteFunc, ledger *photonic.Ledger) (*Router, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("router %s: needs at least one input", name)
	}
	if len(inWidths) != len(inputs) {
		return nil, fmt.Errorf("router %s: %d input widths for %d inputs", name, len(inWidths), len(inputs))
	}
	for i, w := range inWidths {
		if w <= 0 {
			return nil, fmt.Errorf("router %s: input %d width must be positive", name, i)
		}
	}
	if route == nil || ledger == nil {
		return nil, fmt.Errorf("router %s: needs a route function and ledger", name)
	}
	arena := inputs[0].a
	for i, in := range inputs {
		if in.a != arena {
			return nil, fmt.Errorf("router %s: input %d belongs to a different arena", name, i)
		}
	}
	r := &Router{name: name, arena: arena, inputs: inputs, inWidth: inWidths, route: route, ledger: ledger}
	total := 0
	for _, in := range inputs {
		total += in.VCCount()
	}
	r.cand = make([]cand, 0, total)
	r.candBase = make([]int, len(inputs))
	r.inPort = make([]int32, len(inputs))
	r.widths32 = make([]int32, len(inputs))
	for i, in := range inputs {
		r.inPort[i] = in.id
		r.candBase[i] = len(r.cand)
		r.widths32[i] = int32(inWidths[i])
		arena.consumer[in.id] = r
		arena.consBase[in.id] = int32(r.candBase[i])
		for vc := 0; vc < in.VCCount(); vc++ {
			r.cand = append(r.cand, cand{g: arena.vcBase[in.id] + int32(vc), in: int16(i), vc: int16(vc)})
		}
	}
	r.maskWords = (total + 63) / 64
	r.budget = make([]int32, len(inputs))
	return r, nil
}

// Name returns the router's diagnostic name.
func (r *Router) Name() string { return r.name }

// Input returns input port i.
func (r *Router) Input(i int) *Port { return r.inputs[i] }

// Inputs returns the number of input ports.
func (r *Router) Inputs() int { return len(r.inputs) }

// SetRouteTable installs a per-destination-core route table equivalent to
// the routing function: tab[dst] is the output index a header destined
// for core dst leaves through. The table is propagated to every input
// port so routes are computed once at header-enqueue time; arbitration
// then reads the cached output instead of calling the routing function,
// and the persistent per-output contender masks replace the per-Tick
// eligibility walk. It must be called before any traffic is buffered.
func (r *Router) SetRouteTable(tab []int16) {
	for _, in := range r.inputs {
		in.SetRouteTable(tab)
	}
	r.tabled = tab != nil
}

// AddOutput attaches the next output, feeding dst with the given per-cycle
// flit width, and returns its index. chargeLink selects whether forwarding
// through this output dissipates wire-link energy.
func (r *Router) AddOutput(dst *Port, width int, chargeLink bool) (int, error) {
	if dst == nil {
		return 0, fmt.Errorf("router %s: output needs a destination port", r.name)
	}
	if width <= 0 {
		return 0, fmt.Errorf("router %s: output width must be positive, got %d", r.name, width)
	}
	if len(r.outputs) >= MaxOutputs {
		return 0, fmt.Errorf("router %s: output count exceeds bitmask capacity %d", r.name, MaxOutputs)
	}
	r.outputs = append(r.outputs, &Output{dst: dst, width: width})
	r.chargeLink = append(r.chargeLink, chargeLink)
	r.outMask = append(r.outMask, make([]uint64, r.maskWords)...)
	r.liveMask = append(r.liveMask, make([]uint64, r.maskWords)...)
	dst.a.watchers[dst.id] = append(dst.a.watchers[dst.id], r)
	return len(r.outputs) - 1, nil
}

// Output returns output o.
func (r *Router) Output(o int) *Output { return r.outputs[o] }

// Outputs returns the number of attached outputs.
func (r *Router) Outputs() int { return len(r.outputs) }

// Tick performs one cycle of output arbitration: for every output, up to
// `width` eligible flits are moved from input VCs to the downstream port.
// Headers perform routing and downstream VC allocation; body and tail
// flits follow the path their header locked.
//
// The kernel is bit-identical to the reference object-walking scan: it
// snapshots the eligible candidates once (a VC empty at snapshot time
// cannot produce an eligible flit later this cycle, and an ineligible
// head only gets younger when popped), then replays the reference
// position sequence t = (out.rr + scan) mod candidates per output,
// jumping over ineligible runs with next-set-bit scans. Candidates are
// pre-binned into per-output masks by their cached route (visits of
// candidates targeting another output have no side effects in the
// reference), so each output only walks its own contenders.
//
//hetpnoc:hotpath
func (r *Router) Tick(now sim.Cycle) error {
	if r.quiet {
		if now < r.wakeAt {
			// No input arrival, no downstream drain and no head aging in
			// since the last grantless scan: its zero-grant, zero-effect
			// outcome would repeat verbatim.
			return nil
		}
		r.quiet = false
	}
	// Index-guard note: the scans below decode indices from bitmask bits
	// and packed candidate descriptors, relations the compiler cannot see
	// through, so every decoded index is checked once with an unsigned
	// compare against the slice it drives. The guards are dead by
	// construction (masks, candidates and arena views are sized together
	// at build), but they anchor bounds-check elimination for every access
	// they dominate.
	a := r.arena
	nw := r.maskWords
	outMask := r.outMask
	liveMask := r.liveMask
	var nonEmpty uint64 // bit o set: output o has at least one contender
	if r.tabled {
		// Fast path: the persistent masks already bin every owned VC by
		// its fixed route; one copy seeds the scratch. Extra bits — VCs
		// that are momentarily empty or whose head is still too young —
		// are exactly the candidates the reference scan visits and skips
		// with no side effect, and the scan below kills them on first
		// visit.
		for la := r.liveAny; la != 0; la &= la - 1 {
			o := bits.TrailingZeros64(la)
			base := o * nw
			var any uint64
			for j := 0; j < nw; j++ {
				k := base + j
				if uint(k) >= uint(len(liveMask)) || uint(k) >= uint(len(outMask)) {
					continue
				}
				w := liveMask[k]
				outMask[k] = w
				any |= w
			}
			if any != 0 {
				nonEmpty |= 1 << uint(o)
			} else {
				r.liveAny &^= 1 << uint(o)
			}
		}
	} else {
		nonEmpty = r.buildScratch(now)
	}
	if nonEmpty == 0 {
		if r.tabled {
			r.quiet = true
			r.wakeAt = quietForever
		}
		return nil
	}

	// Per-cycle dequeue budget per input port (switch constraint).
	budget := r.budget
	copy(budget, r.widths32)

	anyGrant := false
	minReady := quietForever
	cand := r.cand
	candidates := len(cand)
	hot := a.hot
	bufs, heads := a.bufs, a.head
	owner, fbits := a.owner, a.fbits
	inputs := r.inputs
	outputs := r.outputs
	chargeLink := r.chargeLink
	for ne := nonEmpty; ne != 0; ne &= ne - 1 {
		o := bits.TrailingZeros64(ne)
		if uint(o) >= uint(len(outputs)) || uint(o) >= uint(len(chargeLink)) {
			continue
		}
		out := outputs[o]
		base := o * nw
		end := base + nw
		if base < 0 || end < base || end > len(outMask) {
			continue
		}
		mask := outMask[base:end]
		granted := 0
		// The reference scan evaluates position (out.rr + scan) mod
		// candidates for scan = 0..candidates-1, reading out.rr live — a
		// grant advances out.rr mid-scan, shifting every later position.
		// Reproduce that sequence exactly, jumping in one step over runs
		// of candidates not contending for this output.
		//
		// Every rejecting visit clears the candidate's mask bit: each
		// rejection cause is monotone for the rest of this output's scan
		// (budgets never replenish, drained VCs cannot refill mid-Tick,
		// heads only get younger, downstream VCs and buffer space are
		// never freed while this router runs), and in the reference a
		// rejected visit has no side effects, so skipping the revisit
		// leaves the position sequence of every other candidate intact.
		for scan := 0; scan < candidates && granted < out.width; scan++ {
			t := out.rr + scan
			if t >= candidates {
				t -= candidates
			}
			// First contending flat index at or circularly after t.
			idx := sim.NextSet(mask, t)
			wrapped := false
			if idx < 0 {
				idx = sim.NextSet(mask, 0)
				if idx < 0 {
					break // every contender proved dead this cycle
				}
				wrapped = true
			}
			d := idx - t
			if d < 0 || wrapped {
				d += candidates
			}
			scan += d
			if scan >= candidates {
				break
			}
			wi := idx >> 6
			if uint(idx) >= uint(len(cand)) || uint(wi) >= uint(len(mask)) {
				continue
			}
			bit := uint64(1) << (uint(idx) & 63)
			c := cand[idx]
			g := int(c.g)
			in := int(c.in)
			if uint(g) >= uint(len(hot)) || uint(g) >= uint(len(bufs)) ||
				uint(g) >= uint(len(heads)) || uint(g) >= uint(len(owner)) ||
				uint(g) >= uint(len(fbits)) ||
				uint(in) >= uint(len(inputs)) || uint(in) >= uint(len(budget)) {
				continue
			}
			h := &hot[g]
			// Re-check liveness: an earlier grant may have drained the
			// VC, exposed a younger head, or spent the input's budget.
			if budget[in] == 0 || h.count == 0 {
				mask[wi] &^= bit
				continue
			}
			if now-h.headEnq < PipelineDelay {
				// A too-young head is the one rejection that flips with
				// time alone; record when it ages in so a grantless Tick
				// knows how long its outcome is guaranteed to repeat.
				if ready := h.headEnq + PipelineDelay; ready < minReady {
					minReady = ready
				}
				mask[wi] &^= bit
				continue
			}

			if h.flags&(vcHeadHdr|vcRouted) == vcHeadHdr {
				if dst := h.dstOut; dst >= 0 {
					if int(dst) != o {
						mask[wi] &^= bit
						continue
					}
				} else {
					buf := bufs[g]
					hd := int(heads[g])
					if uint(hd) >= uint(len(buf)) || r.route(buf[hd].flit()) != o {
						mask[wi] &^= bit
						continue
					}
				}
				dstVC, ok := out.dst.AllocVC(owner[g])
				if !ok {
					// No free downstream VC; the packet retries next cycle.
					mask[wi] &^= bit
					continue
				}
				h.flags |= vcRouted
				h.outPort = int16(o)
				h.outVC = int8(dstVC)
			} else if h.flags&vcRouted == 0 || int(h.outPort) != o {
				mask[wi] &^= bit
				continue
			}

			dstVC := int(h.outVC)
			if out.dst.Space(dstVC) == 0 {
				mask[wi] &^= bit
				continue
			}

			popped, err := inputs[in].Pop(int(c.vc)) // releases the VC on tail
			if err != nil {
				return fmt.Errorf("router %s: %w", r.name, err)
			}
			if err := out.dst.Enqueue(dstVC, popped, now); err != nil {
				return fmt.Errorf("router %s: %w", r.name, err)
			}
			flitBits := float64(fbits[g])
			r.ledger.AddRouterTraversal(flitBits)
			if chargeLink[o] {
				r.ledger.AddWireLink(flitBits)
			}
			budget[in]--
			granted++
			anyGrant = true
			out.rr = (int(idx) + 1) % candidates
		}
	}
	if !anyGrant && r.tabled {
		// Grantless and tabled: every rejection this cycle was either
		// age-bound (covered by wakeAt) or waits on an external event that
		// clears r.quiet — an input arrival or a downstream drain. Until
		// one of those fires, skip the scan outright.
		r.quiet = true
		r.wakeAt = minReady
	}
	return nil
}

// buildScratch seeds the per-output scratch masks by walking every
// buffered VC — the slow path for routers without route tables, where a
// head's target output is unknown until the routing function runs. It
// returns the bitmask of outputs with at least one contender.
func (r *Router) buildScratch(now sim.Cycle) uint64 {
	a := r.arena
	nw := r.maskWords
	outMask := r.outMask
	for i := range outMask {
		outMask[i] = 0
	}
	var nonEmpty uint64
	// As in Tick, each decoded index is guarded once with a dead-by-
	// construction unsigned compare so the accesses it dominates carry no
	// bounds checks.
	hot := a.hot
	buffered, vcBase, occMask := a.buffered, a.vcBase, a.occMask
	candBase := r.candBase
	outs := len(r.outputs)
	for i, p := range r.inPort {
		pi := int(p)
		if uint(pi) >= uint(len(buffered)) || uint(pi) >= uint(len(vcBase)) ||
			uint(pi) >= uint(len(occMask)) || uint(i) >= uint(len(candBase)) {
			continue
		}
		if buffered[pi] == 0 {
			continue
		}
		base := candBase[i]
		gBase := int(vcBase[pi])
		for w := occMask[pi]; w != 0; w &= w - 1 {
			v := bits.TrailingZeros64(w)
			g := gBase + v
			if uint(g) >= uint(len(hot)) {
				continue
			}
			h := &hot[g]
			if now-h.headEnq < PipelineDelay {
				continue
			}
			idx := base + v
			bit := uint64(1) << (uint(idx) & 63)
			word := idx >> 6
			switch {
			case h.flags&vcRouted != 0:
				if k := int(h.outPort)*nw + word; uint(k) < uint(len(outMask)) {
					outMask[k] |= bit
				}
				nonEmpty |= 1 << uint(h.outPort)
			case h.flags&vcHeadHdr != 0:
				if d := h.dstOut; d >= 0 {
					if k := int(d)*nw + word; uint(k) < uint(len(outMask)) {
						outMask[k] |= bit
					}
					nonEmpty |= 1 << uint(d)
				} else {
					// The target is unknown until the routing function
					// runs at visit time, so the candidate contends at
					// every output.
					for o := 0; o < outs; o++ {
						if k := o*nw + word; uint(k) < uint(len(outMask)) {
							outMask[k] |= bit
						}
					}
					nonEmpty |= 1<<uint(outs) - 1
				}
			default:
				// A body-flit head in an unrouted VC can never move this
				// cycle; the reference scan skips it at every output.
			}
		}
	}
	return nonEmpty
}

// rebuildLive recomputes the persistent contender masks from the arena's
// ownership state, after a Restore rewrote it wholesale.
func (r *Router) rebuildLive() {
	for i := range r.liveMask {
		r.liveMask[i] = 0
	}
	r.liveAny = 0
	r.quiet = false
	a := r.arena
	nw := r.maskWords
	for i, p := range r.inPort {
		base := r.candBase[i]
		gBase := a.vcBase[p]
		for v := 0; v < int(a.vcCnt[p]); v++ {
			g := gBase + int32(v)
			if a.owner[g] == 0 {
				continue
			}
			h := &a.hot[g]
			d := int(h.dstOut)
			if d < 0 {
				if h.flags&vcRouted == 0 {
					continue
				}
				d = int(h.outPort)
			}
			idx := base + v
			r.liveMask[d*nw+(idx>>6)] |= 1 << (uint(idx) & 63)
			r.liveAny |= 1 << uint(d)
		}
	}
}

// RRState appends the round-robin cursor of every output to dst, for
// checkpointing; SetRRState restores them.
func (r *Router) RRState(dst []int) []int {
	for _, out := range r.outputs {
		dst = append(dst, out.rr)
	}
	return dst
}

// SetRRState restores cursors previously captured by RRState and returns
// the unconsumed tail of src.
func (r *Router) SetRRState(src []int) []int {
	for _, out := range r.outputs {
		out.rr = src[0]
		src = src[1:]
	}
	return src
}

// BufferedFlits returns the flits buffered across all input ports, for
// tests and diagnostics.
func (r *Router) BufferedFlits() int {
	buffered, n := r.arena.buffered, int32(0)
	for _, p := range r.inPort {
		pi := int(p)
		if uint(pi) >= uint(len(buffered)) {
			continue // unreachable: ids are assigned by Reserve; the guard anchors BCE
		}
		n += buffered[pi]
	}
	return int(n)
}
