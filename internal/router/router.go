package router

import (
	"fmt"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// PipelineDelay is the number of cycles a flit must be buffered before it
// is eligible for output arbitration, modelling the input-arbitration and
// routing/crossbar stages of the 3-stage router (§3.3.2). With the
// single-cycle link transfer this gives the canonical 3-cycle hop.
const PipelineDelay sim.Cycle = 2

// RouteFunc maps a flit to the index of the output it must leave through.
type RouteFunc func(f packet.Flit) int

// Output is one router output: the downstream input port it feeds, the
// number of flits it can transfer per cycle (its datapath width), and its
// round-robin arbitration state.
type Output struct {
	dst   *Port
	width int
	rr    int
}

// Dst returns the downstream port this output feeds.
func (o *Output) Dst() *Port { return o.dst }

// Router is a wormhole virtual-channel router.
type Router struct {
	name    string
	inputs  []*Port
	inWidth []int
	outputs []*Output
	route   RouteFunc
	ledger  *photonic.Ledger

	// chargeLink controls whether forwarding charges wire-link energy;
	// internal hops inside the photonic router (to the transmit engine)
	// cross no chip wire.
	chargeLink []bool

	// candIn/candVC map a flat arbitration-scan index to its (input
	// port, VC) pair, precomputed so the per-cycle scan is table lookups.
	// candBase[i] is the flat index of input i's VC 0.
	candIn   []int
	candVC   []int
	candBase []int

	// elig and moved are per-Tick scratch buffers, retained across cycles
	// so the hot loop never allocates.
	elig  []int32
	moved []int
}

// New creates a router with the given name, input ports and routing
// function. Outputs are attached with AddOutput in index order.
func New(name string, inputs []*Port, inWidths []int, route RouteFunc, ledger *photonic.Ledger) (*Router, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("router %s: needs at least one input", name)
	}
	if len(inWidths) != len(inputs) {
		return nil, fmt.Errorf("router %s: %d input widths for %d inputs", name, len(inWidths), len(inputs))
	}
	for i, w := range inWidths {
		if w <= 0 {
			return nil, fmt.Errorf("router %s: input %d width must be positive", name, i)
		}
	}
	if route == nil || ledger == nil {
		return nil, fmt.Errorf("router %s: needs a route function and ledger", name)
	}
	r := &Router{name: name, inputs: inputs, inWidth: inWidths, route: route, ledger: ledger}
	total := 0
	for _, in := range inputs {
		total += in.VCCount()
	}
	r.candIn = make([]int, 0, total)
	r.candVC = make([]int, 0, total)
	r.candBase = make([]int, len(inputs))
	for i, in := range inputs {
		r.candBase[i] = len(r.candIn)
		for vc := 0; vc < in.VCCount(); vc++ {
			r.candIn = append(r.candIn, i)
			r.candVC = append(r.candVC, vc)
		}
	}
	r.elig = make([]int32, 0, total)
	r.moved = make([]int, len(inputs))
	return r, nil
}

// Name returns the router's diagnostic name.
func (r *Router) Name() string { return r.name }

// Input returns input port i.
func (r *Router) Input(i int) *Port { return r.inputs[i] }

// Inputs returns the number of input ports.
func (r *Router) Inputs() int { return len(r.inputs) }

// AddOutput attaches the next output, feeding dst with the given per-cycle
// flit width, and returns its index. chargeLink selects whether forwarding
// through this output dissipates wire-link energy.
func (r *Router) AddOutput(dst *Port, width int, chargeLink bool) (int, error) {
	if dst == nil {
		return 0, fmt.Errorf("router %s: output needs a destination port", r.name)
	}
	if width <= 0 {
		return 0, fmt.Errorf("router %s: output width must be positive, got %d", r.name, width)
	}
	r.outputs = append(r.outputs, &Output{dst: dst, width: width})
	r.chargeLink = append(r.chargeLink, chargeLink)
	return len(r.outputs) - 1, nil
}

// Output returns output o.
func (r *Router) Output(o int) *Output { return r.outputs[o] }

// Outputs returns the number of attached outputs.
func (r *Router) Outputs() int { return len(r.outputs) }

// Tick performs one cycle of output arbitration: for every output, up to
// `width` eligible flits are moved from input VCs to the downstream port.
// Headers perform routing and downstream VC allocation; body and tail
// flits follow the path their header locked.
//
//hetpnoc:hotpath
func (r *Router) Tick(now sim.Cycle) error {
	// Snapshot the eligible candidates: VCs that hold a flit whose head
	// has cleared the pipeline delay. A VC empty here cannot produce an
	// eligible flit later this cycle (anything enqueued mid-cycle is
	// younger than PipelineDelay), and an ineligible head only gets
	// younger when popped, so the snapshot prunes exactly the candidates
	// the full scan would skip — arbitration order is unchanged.
	elig := r.elig[:0]
	for i, in := range r.inputs {
		if in.buffered == 0 {
			continue
		}
		base := r.candBase[i]
		for vcIdx := range in.vcs {
			vc := &in.vcs[vcIdx]
			if vc.count == 0 || now-vc.headEntry().enqueued < PipelineDelay {
				continue
			}
			elig = append(elig, int32(base+vcIdx))
		}
	}
	r.elig = elig
	if len(elig) == 0 {
		return nil
	}

	// Per-cycle dequeue budget per input port (switch constraint).
	moved := r.moved
	for i := range moved {
		moved[i] = 0
	}

	candidates := len(r.candIn)
	for o, out := range r.outputs {
		granted := 0
		// The reference scan evaluates position (out.rr + scan) mod
		// candidates for scan = 0..candidates-1, reading out.rr live — a
		// grant advances out.rr mid-scan, shifting every later position.
		// Reproduce that sequence exactly, but jump in one step over runs
		// of candidates that are not in the eligible snapshot (they would
		// all `continue` without touching any state).
		for scan := 0; scan < candidates && granted < out.width; scan++ {
			t := out.rr + scan
			if t >= candidates {
				t -= candidates
			}
			// First eligible flat index at or circularly after t.
			pos := lowerBound(elig, int32(t))
			wrapped := pos == len(elig)
			if wrapped {
				pos = 0
			}
			idx := int(elig[pos])
			d := idx - t
			if d < 0 || wrapped {
				d += candidates
			}
			scan += d
			if scan >= candidates {
				break
			}
			inIdx, vcIdx := r.candIn[idx], r.candVC[idx]
			if moved[inIdx] >= r.inWidth[inIdx] {
				continue
			}
			in := r.inputs[inIdx]
			vc := &in.vcs[vcIdx]
			// Re-check liveness: an earlier output may have drained the
			// VC or exposed a younger head this cycle.
			if vc.count == 0 {
				continue
			}
			head := vc.headEntry()
			if now-head.enqueued < PipelineDelay {
				continue
			}
			flit := head.flit

			if flit.Type.IsHeader() && !vc.routed {
				if r.route(flit) != o {
					continue
				}
				dstVC, ok := out.dst.AllocVC(flit.Packet.ID)
				if !ok {
					continue // no free downstream VC; retry next cycle
				}
				vc.routed = true
				vc.outPort = o
				vc.outVC = dstVC
			} else if !vc.routed || vc.outPort != o {
				continue
			}

			if out.dst.Space(vc.outVC) == 0 {
				continue
			}

			dstVC := vc.outVC
			popped, err := in.Pop(vcIdx) // releases the VC on tail
			if err != nil {
				return fmt.Errorf("router %s: %w", r.name, err)
			}
			if err := out.dst.Enqueue(dstVC, popped, now); err != nil {
				return fmt.Errorf("router %s: %w", r.name, err)
			}
			bits := float64(popped.Bits())
			r.ledger.AddRouterTraversal(bits)
			if r.chargeLink[o] {
				r.ledger.AddWireLink(bits)
			}
			moved[inIdx]++
			granted++
			out.rr = (idx + 1) % candidates
		}
	}
	return nil
}

// lowerBound returns the index of the first element of s at or above t,
// or len(s) when every element is below it.
func lowerBound(s []int32, t int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BufferedFlits returns the flits buffered across all input ports, for
// tests and diagnostics.
func (r *Router) BufferedFlits() int {
	n := 0
	for _, in := range r.inputs {
		n += in.BufferedFlits()
	}
	return n
}
