package router

import (
	"testing"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
)

// BenchmarkRouterTickIdle measures the cost of arbitration over an empty
// router — the dominant case in a lightly loaded fabric.
func BenchmarkRouterTickIdle(b *testing.B) {
	ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
	var occ int64
	arena, err := NewArena(ledger, &occ)
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]*Port, 5)
	widths := make([]int, 5)
	for i := range inputs {
		p, err := arena.NewPort(16, 64)
		if err != nil {
			b.Fatal(err)
		}
		inputs[i] = p
		widths[i] = 2
	}
	r, err := New("bench", inputs, widths, func(packet.Flit) int { return 0 }, ledger)
	if err != nil {
		b.Fatal(err)
	}
	out, err := arena.NewPort(16, 64)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.AddOutput(out, 2, true); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Tick(sim.Cycle(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterTickStreaming measures a router continuously forwarding
// a saturated flow.
func BenchmarkRouterTickStreaming(b *testing.B) {
	ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
	var occ int64
	in, err := NewPort(16, 64, ledger, &occ)
	if err != nil {
		b.Fatal(err)
	}
	r, err := New("bench", []*Port{in}, []int{2}, func(packet.Flit) int { return 0 }, ledger)
	if err != nil {
		b.Fatal(err)
	}
	out, err := NewPort(16, 64, ledger, &occ)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.AddOutput(out, 2, true); err != nil {
		b.Fatal(err)
	}

	pkt := &packet.Packet{ID: 1, Flits: 1 << 30, FlitBits: 32}
	vc, ok := in.AllocVC(pkt.ID)
	if !ok {
		b.Fatal("no VC")
	}
	seq := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Keep the input primed and the output drained. The sequence
		// number wraps: real packets are at most MaxFlits long, so the
		// buffer entries pack Seq into a few bits, while this synthetic
		// flow streams one endless packet.
		for in.Space(vc) > 0 && seq < pkt.Flits-1 {
			fl := packet.Flit{Packet: pkt, Type: packet.Body, Seq: seq % 4096}
			if seq == 0 {
				fl.Type = packet.Header
			}
			if err := in.Enqueue(vc, fl, sim.Cycle(i)); err != nil {
				b.Fatal(err)
			}
			seq++
		}
		if err := r.Tick(sim.Cycle(i)); err != nil {
			b.Fatal(err)
		}
		for out.BufferedFlits() > 32 {
			if _, err := out.Pop(0); err != nil {
				b.Fatal(err)
			}
		}
	}
}
