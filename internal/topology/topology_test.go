package topology

import (
	"testing"
	"testing/quick"
)

func TestDefaultTopology(t *testing.T) {
	topo := Default()
	if topo.Cores() != 64 {
		t.Fatalf("Cores() = %d, want 64", topo.Cores())
	}
	if topo.Clusters() != 16 {
		t.Fatalf("Clusters() = %d, want 16", topo.Clusters())
	}
	if topo.ClusterSize() != 4 {
		t.Fatalf("ClusterSize() = %d, want 4", topo.ClusterSize())
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		cores, size int
		wantErr     bool
	}{
		{64, 4, false},
		{4, 4, false},
		{16, 8, false},
		{0, 4, true},
		{64, 0, true},
		{-4, 4, true},
		{63, 4, true}, // not a multiple
	}
	for _, tt := range tests {
		_, err := New(tt.cores, tt.size)
		if (err != nil) != tt.wantErr {
			t.Errorf("New(%d, %d) error = %v, wantErr %v", tt.cores, tt.size, err, tt.wantErr)
		}
	}
}

func TestClusterMapping(t *testing.T) {
	topo := Default()
	tests := []struct {
		core    CoreID
		cluster ClusterID
		local   int
	}{
		{0, 0, 0},
		{3, 0, 3},
		{4, 1, 0},
		{63, 15, 3},
		{30, 7, 2},
	}
	for _, tt := range tests {
		if got := topo.ClusterOf(tt.core); got != tt.cluster {
			t.Errorf("ClusterOf(%d) = %d, want %d", tt.core, got, tt.cluster)
		}
		if got := topo.LocalIndex(tt.core); got != tt.local {
			t.Errorf("LocalIndex(%d) = %d, want %d", tt.core, got, tt.local)
		}
		if got := topo.CoreAt(tt.cluster, tt.local); got != tt.core {
			t.Errorf("CoreAt(%d, %d) = %d, want %d", tt.cluster, tt.local, got, tt.core)
		}
	}
}

func TestCoreAtRoundTrip(t *testing.T) {
	topo := Default()
	// Property: CoreAt(ClusterOf(c), LocalIndex(c)) == c for every core.
	f := func(raw uint8) bool {
		c := CoreID(int(raw) % topo.Cores())
		return topo.CoreAt(topo.ClusterOf(c), topo.LocalIndex(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoresOf(t *testing.T) {
	topo := Default()
	seen := make(map[CoreID]bool)
	for cl := 0; cl < topo.Clusters(); cl++ {
		cores := topo.CoresOf(ClusterID(cl))
		if len(cores) != topo.ClusterSize() {
			t.Fatalf("cluster %d has %d cores", cl, len(cores))
		}
		for _, c := range cores {
			if seen[c] {
				t.Fatalf("core %d appears in two clusters", c)
			}
			seen[c] = true
			if topo.ClusterOf(c) != ClusterID(cl) {
				t.Fatalf("core %d listed in cluster %d but maps to %d", c, cl, topo.ClusterOf(c))
			}
		}
	}
	if len(seen) != topo.Cores() {
		t.Fatalf("clusters cover %d cores, want %d", len(seen), topo.Cores())
	}
}

func TestValidity(t *testing.T) {
	topo := Default()
	if !topo.ValidCore(0) || !topo.ValidCore(63) {
		t.Fatal("boundary cores reported invalid")
	}
	if topo.ValidCore(-1) || topo.ValidCore(64) {
		t.Fatal("out-of-range cores reported valid")
	}
	if !topo.ValidCluster(0) || !topo.ValidCluster(15) {
		t.Fatal("boundary clusters reported invalid")
	}
	if topo.ValidCluster(-1) || topo.ValidCluster(16) {
		t.Fatal("out-of-range clusters reported valid")
	}
}
