// Package topology describes the physical organization of the chip
// multiprocessor: cores grouped into clusters, each cluster served by one
// photonic router on a full photonic crossbar (Chapter 3.1 of the thesis).
//
// The thesis evaluates a 64-core, 16-cluster chip with 4 cores per
// cluster; cores within a cluster are connected all-to-all by electrical
// links and to the cluster's photonic router.
package topology

import "fmt"

// CoreID identifies a processing core, 0 <= CoreID < Cores.
type CoreID int

// ClusterID identifies a cluster (and its photonic router),
// 0 <= ClusterID < Clusters.
type ClusterID int

// Topology is an immutable description of the chip layout.
type Topology struct {
	cores       int
	clusterSize int
}

// New returns a topology with the given total core count and cluster
// size. It returns an error when the core count is not a positive
// multiple of the cluster size.
func New(cores, clusterSize int) (Topology, error) {
	if cores <= 0 || clusterSize <= 0 {
		return Topology{}, fmt.Errorf("topology: cores (%d) and cluster size (%d) must be positive", cores, clusterSize)
	}
	if cores%clusterSize != 0 {
		return Topology{}, fmt.Errorf("topology: cores (%d) must be a multiple of cluster size (%d)", cores, clusterSize)
	}
	return Topology{cores: cores, clusterSize: clusterSize}, nil
}

// Default returns the 64-core, 16-cluster topology of Table 3-3.
func Default() Topology {
	t, err := New(64, 4)
	if err != nil {
		panic(err) // statically correct arguments
	}
	return t
}

// Cores returns the total number of cores.
func (t Topology) Cores() int { return t.cores }

// Clusters returns the number of clusters (= photonic routers).
func (t Topology) Clusters() int { return t.cores / t.clusterSize }

// ClusterSize returns the number of cores per cluster.
func (t Topology) ClusterSize() int { return t.clusterSize }

// ClusterOf returns the cluster that core c belongs to.
func (t Topology) ClusterOf(c CoreID) ClusterID {
	return ClusterID(int(c) / t.clusterSize)
}

// LocalIndex returns the index of core c within its cluster,
// 0 <= index < ClusterSize.
func (t Topology) LocalIndex(c CoreID) int {
	return int(c) % t.clusterSize
}

// CoreAt returns the core at local index i of cluster cl.
func (t Topology) CoreAt(cl ClusterID, i int) CoreID {
	return CoreID(int(cl)*t.clusterSize + i)
}

// CoresOf returns the cores of cluster cl in local-index order.
func (t Topology) CoresOf(cl ClusterID) []CoreID {
	cores := make([]CoreID, t.clusterSize)
	for i := range cores {
		cores[i] = t.CoreAt(cl, i)
	}
	return cores
}

// ValidCore reports whether c is a core of this topology.
func (t Topology) ValidCore(c CoreID) bool {
	return c >= 0 && int(c) < t.cores
}

// ValidCluster reports whether cl is a cluster of this topology.
func (t Topology) ValidCluster(cl ClusterID) bool {
	return cl >= 0 && int(cl) < t.Clusters()
}
