package report

import (
	"math"
	"strings"
	"testing"

	"hetpnoc/internal/area"
	"hetpnoc/internal/experiments"
	"hetpnoc/internal/gpgpu"
)

func TestBarChartValidation(t *testing.T) {
	bad := []BarChart{
		{Title: "no groups", Series: []Series{{Name: "a", Values: nil}}},
		{Title: "no series", Groups: []string{"x"}},
		{Title: "mismatch", Groups: []string{"x", "y"}, Series: []Series{{Name: "a", Values: []float64{1}}}},
		{Title: "negative", Groups: []string{"x"}, Series: []Series{{Name: "a", Values: []float64{-1}}}},
		{Title: "nan", Groups: []string{"x"}, Series: []Series{{Name: "a", Values: []float64{math.NaN()}}}},
	}
	for _, c := range bad {
		if _, err := c.SVG(); err == nil {
			t.Errorf("chart %q rendered despite invalid data", c.Title)
		}
	}
}

func TestBarChartSVGStructure(t *testing.T) {
	c := BarChart{
		Title:  "Peak <bandwidth>", // must be escaped
		YLabel: "Gb/s",
		Groups: []string{"uniform", "skewed2"},
		Series: []Series{
			{Name: "firefly", Values: []float64{795, 559}},
			{Name: "d-hetpnoc", Values: []float64{795, 790}},
		},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "</svg>", "Peak &lt;bandwidth&gt;", "uniform", "skewed2", "firefly", "d-hetpnoc"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series x two groups = four bars.
	if got := strings.Count(svg, "<rect"); got < 4 {
		t.Fatalf("only %d rects, want >= 4 bars", got)
	}
	if strings.Contains(svg, "<script") {
		t.Fatal("SVG contains script")
	}
}

func TestBarChartBarHeightsProportional(t *testing.T) {
	c := BarChart{
		Title:  "t",
		Groups: []string{"a"},
		Series: []Series{{Name: "s", Values: []float64{100}}, {Name: "r", Values: []float64{50}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// The 100 bar must reach the plot top (height == plot height); the
	// 50 bar half of it. Extract heights crudely.
	if !strings.Contains(svg, `height="220.0"`) || !strings.Contains(svg, `height="110.0"`) {
		t.Fatalf("bar heights not proportional:\n%s", svg)
	}
}

func TestFullReportRenders(t *testing.T) {
	r := New("Title", "Subtitle")

	rows := []experiments.Row{
		{Set: "BW1", Pattern: "uniform", Arch: "firefly", PeakBandwidthGbps: 795, EnergyPerMessagePJ: 9255, AvgLatencyCycles: 270},
		{Set: "BW1", Pattern: "uniform", Arch: "d-hetpnoc", PeakBandwidthGbps: 795, EnergyPerMessagePJ: 9332, AvgLatencyCycles: 270},
		{Set: "BW1", Pattern: "skewed2", Arch: "firefly", PeakBandwidthGbps: 559, EnergyPerMessagePJ: 21010, AvgLatencyCycles: 2215},
		{Set: "BW1", Pattern: "skewed2", Arch: "d-hetpnoc", PeakBandwidthGbps: 790, EnergyPerMessagePJ: 12201, AvgLatencyCycles: 892},
	}
	if err := r.AddPeakBandwidth("BW1", rows); err != nil {
		t.Fatal(err)
	}
	if err := r.AddAreaModel(area.Sweep([]int{64, 256, 512})); err != nil {
		t.Fatal(err)
	}
	gpu, err := gpgpu.Figure1_1()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddGPUSpeedups(gpu); err != nil {
		t.Fatal(err)
	}
	r.AddAblations([]experiments.AblationRow{
		{Study: "s", Variant: "v", PeakBandwidthGbps: 1, EnergyPerMessagePJ: 2, AreaMM2: 3},
	})

	doc, err := r.RenderString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>", "Title", "Subtitle",
		"Figure 3-3", "Figure 3-6", "Figure 1-1",
		"Ablation studies", "skewed2", "BFS",
	} {
		if !strings.Contains(doc, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestAddPeakBandwidthRejectsUnknownSet(t *testing.T) {
	r := New("t", "s")
	if err := r.AddPeakBandwidth("BW9", nil); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestFormatTick(t *testing.T) {
	tests := map[float64]string{
		25000: "25k", 1500: "1.5k", 120: "120", 7.25: "7.25",
	}
	for v, want := range tests {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", v, got, want)
		}
	}
}
