// Package report renders experiment results as a self-contained HTML
// page with inline SVG charts — no external dependencies, suitable for
// archiving next to EXPERIMENTS.md or attaching to a CI run.
package report

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// Series is one bar color-group of a grouped bar chart (e.g. one
// architecture).
type Series struct {
	Name   string
	Values []float64
}

// BarChart describes one grouped bar chart.
type BarChart struct {
	Title  string
	YLabel string
	// Groups are the x-axis categories (e.g. traffic patterns).
	Groups []string
	// Series are the color groups; every series must have one value per
	// group.
	Series []Series
}

// Validate reports structural problems.
func (c BarChart) Validate() error {
	if len(c.Groups) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("report: chart %q needs groups and series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Groups) {
			return fmt.Errorf("report: chart %q series %q has %d values for %d groups",
				c.Title, s.Name, len(s.Values), len(c.Groups))
		}
		for _, v := range s.Values {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("report: chart %q series %q has non-finite or negative value", c.Title, s.Name)
			}
		}
	}
	return nil
}

// palette cycles series colors.
var palette = []string{"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4"}

// chart geometry constants.
const (
	chartWidth   = 760
	chartHeight  = 320
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 60
)

// SVG renders the chart as an SVG fragment.
func (c BarChart) SVG() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}

	maxV := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}

	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	groupW := plotW / float64(len(c.Groups))
	barW := groupW * 0.8 / float64(len(c.Series))

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" width="%d" height="%d" role="img">`,
		chartWidth, chartHeight, chartWidth, chartHeight)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="15" font-weight="bold">%s</text>`,
		marginLeft, html.EscapeString(c.Title))

	// Y axis with four gridlines.
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		y := marginTop + plotH*(1-frac)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			marginLeft, y, chartWidth-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`,
			marginLeft-6, y+4, formatTick(maxV*frac))
	}
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-size="12" transform="rotate(-90 14 %.1f)" text-anchor="middle">%s</text>`,
		marginTop+plotH/2, marginTop+plotH/2, html.EscapeString(c.YLabel))

	// Bars.
	for gi, group := range c.Groups {
		gx := float64(marginLeft) + groupW*float64(gi) + groupW*0.1
		for si, s := range c.Series {
			v := s.Values[gi]
			h := plotH * v / maxV
			x := gx + barW*float64(si)
			y := marginTop + plotH - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %s</title></rect>`,
				x, y, barW*0.92, h, palette[si%len(palette)],
				html.EscapeString(group), html.EscapeString(s.Name), formatTick(v))
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
			gx+groupW*0.4, chartHeight-marginBottom+16, html.EscapeString(group))
	}

	// Legend.
	lx := float64(marginLeft)
	ly := chartHeight - 18
	for si, s := range c.Series {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="12" height="12" fill="%s"/>`,
			lx, ly-10, palette[si%len(palette)])
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12">%s</text>`,
			lx+16, ly, html.EscapeString(s.Name))
		lx += 22 + 8*float64(len(s.Name))
	}

	b.WriteString(`</svg>`)
	return b.String(), nil
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	switch {
	case v >= 10000:
		return fmt.Sprintf("%.0fk", v/1000)
	case v >= 1000:
		return fmt.Sprintf("%.1fk", v/1000)
	case v >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
