// Package stats collects the metrics the thesis reports: delivered
// bandwidth (peak bandwidth is its maximum over an offered-load sweep),
// packet counts including drops — "the progress of the data flits ...
// accounting for those flits that reach the destination as well as those
// that are dropped" (§3.4.1) — latency, and the inputs to the
// energy-per-message calculation.
package stats

import (
	"math"
	"sort"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/units"
)

// Collector accumulates run metrics. Events before StartMeasurement (the
// thesis's 1,000 reset cycles) are counted separately and excluded from
// reported rates.
type Collector struct {
	clock     sim.Clock
	measuring bool
	startAt   sim.Cycle
	endAt     sim.Cycle

	packetsInjected  int64
	packetsDelivered int64
	packetsDroppedRX int64
	packetsRejected  int64
	packetsLost      int64
	retransmissions  int64

	bitsDelivered  int64
	flitsDelivered int64

	latencySum   float64
	latencyCount int64
	latencyMax   sim.Cycle
	latencies    []sim.Cycle

	bitsPerCluster []int64

	warmupDelivered int64
}

// NewCollector returns a collector for the given clock.
func NewCollector(clock sim.Clock) *Collector {
	return &Collector{clock: clock}
}

// SetClusterCount sizes the per-cluster delivery accounting.
func (c *Collector) SetClusterCount(n int) {
	c.bitsPerCluster = make([]int64, n)
}

// StartMeasurement begins the measured window at cycle now.
func (c *Collector) StartMeasurement(now sim.Cycle) {
	c.measuring = true
	c.startAt = now
}

// Finish closes the measured window at cycle end (exclusive).
func (c *Collector) Finish(end sim.Cycle) {
	c.endAt = end
}

// OnInject records a packet entering its source queue.
func (c *Collector) OnInject() {
	if c.measuring {
		c.packetsInjected++
	}
}

// OnReject records a packet refused at a full source queue.
func (c *Collector) OnReject() {
	if c.measuring {
		c.packetsRejected++
	}
}

// OnDeliverFlit records bits of one flit ejected at its destination, on
// behalf of the given source cluster (service fairness is about who got
// to send, not who happened to receive).
func (c *Collector) OnDeliverFlit(bits int, srcCluster int) {
	if !c.measuring {
		return
	}
	c.flitsDelivered++
	c.bitsDelivered += int64(bits)
	if srcCluster >= 0 && srcCluster < len(c.bitsPerCluster) {
		c.bitsPerCluster[srcCluster] += int64(bits)
	}
}

// OnDeliverPacket records a complete packet arriving; born is the cycle
// its logical message was first generated.
func (c *Collector) OnDeliverPacket(born, now sim.Cycle) {
	if !c.measuring {
		c.warmupDelivered++
		return
	}
	c.packetsDelivered++
	lat := now - born
	c.latencySum += float64(lat)
	c.latencyCount++
	c.latencies = append(c.latencies, lat)
	if lat > c.latencyMax {
		c.latencyMax = lat
	}
}

// OnDropRX records a packet refused at the photonic receive side.
func (c *Collector) OnDropRX() {
	if c.measuring {
		c.packetsDroppedRX++
	}
}

// OnLost records a packet abandoned after exhausting its retries.
func (c *Collector) OnLost() {
	if c.measuring {
		c.packetsLost++
	}
}

// OnRetransmit records a retransmission attempt being scheduled.
func (c *Collector) OnRetransmit() {
	if c.measuring {
		c.retransmissions++
	}
}

// Delivered returns the packets delivered so far in the measured window.
func (c *Collector) Delivered() int64 { return c.packetsDelivered }

// CollectorSnapshot is a checkpoint of the collector's accumulated
// metrics.
type CollectorSnapshot struct {
	state Collector
}

// Snapshot deep-copies the collector's state.
func (c *Collector) Snapshot() *CollectorSnapshot {
	s := &CollectorSnapshot{state: *c}
	s.state.latencies = append([]sim.Cycle(nil), c.latencies...)
	s.state.bitsPerCluster = append([]int64(nil), c.bitsPerCluster...)
	return s
}

// Restore rewinds the collector to a snapshot, leaving the snapshot
// intact for repeated restores.
func (c *Collector) Restore(s *CollectorSnapshot) {
	latencies := append(c.latencies[:0], s.state.latencies...)
	perCluster := append(c.bitsPerCluster[:0], s.state.bitsPerCluster...)
	*c = s.state
	c.latencies = latencies
	c.bitsPerCluster = perCluster
}

// Summary is the collector's read-out.
type Summary struct {
	MeasuredCycles  sim.Cycle
	MeasuredSeconds float64

	PacketsInjected  int64
	PacketsDelivered int64
	PacketsDroppedRX int64
	PacketsRejected  int64
	PacketsLost      int64
	Retransmissions  int64

	BitsDelivered  int64
	FlitsDelivered int64

	// DeliveredGbps is the aggregate rate of bits successfully arriving
	// at all cores (the thesis's bandwidth metric, §3.4.1.1).
	DeliveredGbps units.Gbps

	AvgLatencyCycles float64
	MaxLatencyCycles sim.Cycle
	P50LatencyCycles sim.Cycle
	P99LatencyCycles sim.Cycle

	// FairnessJain is Jain's fairness index over the source clusters'
	// delivered bits: 1.0 means every cluster's traffic was served
	// evenly, 1/n means one cluster's traffic took everything.
	// Quantifies the starvation behaviour the DBA policies differ on.
	FairnessJain float64

	WarmupDelivered int64
}

// Summary computes the read-out; Finish must have been called.
func (c *Collector) Summary() Summary {
	cycles := c.endAt - c.startAt
	seconds := units.CyclesToSeconds(cycles, units.ClockGHz(c.clock))
	s := Summary{
		MeasuredCycles:   cycles,
		MeasuredSeconds:  seconds,
		PacketsInjected:  c.packetsInjected,
		PacketsDelivered: c.packetsDelivered,
		PacketsDroppedRX: c.packetsDroppedRX,
		PacketsRejected:  c.packetsRejected,
		PacketsLost:      c.packetsLost,
		Retransmissions:  c.retransmissions,
		BitsDelivered:    c.bitsDelivered,
		FlitsDelivered:   c.flitsDelivered,
		MaxLatencyCycles: c.latencyMax,
		WarmupDelivered:  c.warmupDelivered,
	}
	if seconds > 0 {
		s.DeliveredGbps = units.RateGbps(float64(c.bitsDelivered), seconds)
	}
	if c.latencyCount > 0 {
		s.AvgLatencyCycles = c.latencySum / float64(c.latencyCount)
		sorted := make([]sim.Cycle, len(c.latencies))
		copy(sorted, c.latencies)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.P50LatencyCycles = percentile(sorted, 0.50)
		s.P99LatencyCycles = percentile(sorted, 0.99)
	}
	s.FairnessJain = JainIndex(c.bitsPerCluster)
	return s
}

// JainIndex returns Jain's fairness index (sum x)^2 / (n * sum x^2) over
// the sample, or 0 for an empty or all-zero sample.
func JainIndex(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		v := float64(x)
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// percentile returns the p-quantile of a sorted latency sample using the
// nearest-rank method.
func percentile(sorted []sim.Cycle, p float64) sim.Cycle {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
