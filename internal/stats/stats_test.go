package stats

import (
	"math"
	"testing"

	"hetpnoc/internal/sim"
)

func TestWarmupEventsExcluded(t *testing.T) {
	c := NewCollector(sim.DefaultClock())
	// Events before StartMeasurement must not count.
	c.OnInject()
	c.OnDeliverFlit(32, 0)
	c.OnDeliverPacket(0, 10)
	c.OnDropRX()
	c.OnReject()
	c.OnRetransmit()
	c.OnLost()

	c.StartMeasurement(1000)
	c.Finish(2000)
	s := c.Summary()
	if s.PacketsInjected != 0 || s.PacketsDelivered != 0 || s.BitsDelivered != 0 ||
		s.PacketsDroppedRX != 0 || s.PacketsRejected != 0 || s.Retransmissions != 0 || s.PacketsLost != 0 {
		t.Fatalf("warm-up events leaked into the summary: %+v", s)
	}
	if s.WarmupDelivered != 1 {
		t.Fatalf("warm-up deliveries = %d, want 1", s.WarmupDelivered)
	}
}

func TestDeliveredBandwidth(t *testing.T) {
	c := NewCollector(sim.DefaultClock())
	c.StartMeasurement(1000)
	// 2048-bit packets, 100 of them over 9000 cycles at 2.5 GHz.
	for i := 0; i < 100; i++ {
		for f := 0; f < 64; f++ {
			c.OnDeliverFlit(32, 0)
		}
		c.OnDeliverPacket(1000, 5000)
	}
	c.Finish(10000)
	s := c.Summary()

	if s.MeasuredCycles != 9000 {
		t.Fatalf("measured %d cycles, want 9000", s.MeasuredCycles)
	}
	wantSeconds := 9000 * 400e-12
	if math.Abs(s.MeasuredSeconds-wantSeconds) > 1e-15 {
		t.Fatalf("measured %g s, want %g", s.MeasuredSeconds, wantSeconds)
	}
	wantGbps := float64(100*2048) / wantSeconds / 1e9
	if math.Abs(float64(s.DeliveredGbps)-wantGbps) > 1e-6 {
		t.Fatalf("delivered %g Gb/s, want %g", s.DeliveredGbps, wantGbps)
	}
	if s.FlitsDelivered != 6400 {
		t.Fatalf("flits = %d, want 6400", s.FlitsDelivered)
	}
}

func TestLatencyStats(t *testing.T) {
	c := NewCollector(sim.DefaultClock())
	c.StartMeasurement(0)
	c.OnDeliverPacket(0, 100)
	c.OnDeliverPacket(0, 300)
	c.Finish(1000)
	s := c.Summary()
	if s.AvgLatencyCycles != 200 {
		t.Fatalf("avg latency = %g, want 200", s.AvgLatencyCycles)
	}
	if s.MaxLatencyCycles != 300 {
		t.Fatalf("max latency = %d, want 300", s.MaxLatencyCycles)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	c := NewCollector(sim.DefaultClock())
	c.StartMeasurement(0)
	// Deliver 100 packets with latencies 1..100 (in shuffled-ish order).
	for i := 100; i >= 1; i-- {
		c.OnDeliverPacket(0, sim.Cycle(i))
	}
	c.Finish(1000)
	s := c.Summary()
	if s.P50LatencyCycles != 50 {
		t.Fatalf("p50 = %d, want 50", s.P50LatencyCycles)
	}
	if s.P99LatencyCycles != 99 {
		t.Fatalf("p99 = %d, want 99", s.P99LatencyCycles)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %d", got)
	}
	if got := percentile([]sim.Cycle{7}, 0.99); got != 7 {
		t.Fatalf("single-sample percentile = %d, want 7", got)
	}
}

func TestDeliveredCounter(t *testing.T) {
	c := NewCollector(sim.DefaultClock())
	c.StartMeasurement(0)
	if c.Delivered() != 0 {
		t.Fatal("fresh collector has deliveries")
	}
	c.OnDeliverPacket(0, 1)
	c.OnDeliverPacket(0, 2)
	if c.Delivered() != 2 {
		t.Fatalf("Delivered() = %d, want 2", c.Delivered())
	}
}

func TestDropAccounting(t *testing.T) {
	c := NewCollector(sim.DefaultClock())
	c.StartMeasurement(0)
	c.OnDropRX()
	c.OnDropRX()
	c.OnRetransmit()
	c.OnLost()
	c.OnReject()
	c.Finish(100)
	s := c.Summary()
	if s.PacketsDroppedRX != 2 || s.Retransmissions != 1 || s.PacketsLost != 1 || s.PacketsRejected != 1 {
		t.Fatalf("drop accounting wrong: %+v", s)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		xs   []int64
		want float64
	}{
		{"even", []int64{10, 10, 10, 10}, 1.0},
		{"one-taker", []int64{40, 0, 0, 0}, 0.25},
		{"empty", nil, 0},
		{"all-zero", []int64{0, 0}, 0},
		{"half", []int64{20, 20, 0, 0}, 0.5},
	}
	for _, tt := range tests {
		if got := JainIndex(tt.xs); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: JainIndex = %g, want %g", tt.name, got, tt.want)
		}
	}
}

func TestPerClusterFairnessInSummary(t *testing.T) {
	c := NewCollector(sim.DefaultClock())
	c.SetClusterCount(4)
	c.StartMeasurement(0)
	// Clusters 0 and 1 each receive one flit; 2 and 3 nothing.
	c.OnDeliverFlit(32, 0)
	c.OnDeliverFlit(32, 1)
	c.Finish(100)
	if got := c.Summary().FairnessJain; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("fairness = %g, want 0.5", got)
	}
}
