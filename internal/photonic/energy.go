package photonic

import "hetpnoc/internal/units"

// EnergyParams holds the per-bit energy figures of Tables 3-4 and 3-5 of
// the thesis plus the derived constants the simulator needs. All values
// are in picojoules per bit unless noted.
type EnergyParams struct {
	// ModulationPJPerBit is the electro-optic modulation/demodulation
	// energy (40 fJ/bit, [28]). Charged once at the modulator and once
	// at each powered demodulator.
	ModulationPJPerBit units.Picojoule

	// TuningPJPerBit is the thermal MRR tuning energy (derived from
	// 2.4 mW/nm, [28]; 0.24 pJ/bit in Table 3-5).
	TuningPJPerBit units.Picojoule

	// LaunchPJPerBit is the laser launch energy (derived from
	// 1.5 mW/wavelength, [30]; 0.15 pJ/bit in Table 3-5).
	LaunchPJPerBit units.Picojoule

	// BufferPJPerBit is the energy of one buffer access (write or read)
	// per bit (0.078125 pJ/bit in Table 3-5, from the 65 nm synthesis).
	BufferPJPerBit units.Picojoule

	// RouterPJPerBit is the energy of one router traversal per bit
	// (0.625 pJ/bit in Table 3-5).
	RouterPJPerBit units.Picojoule

	// WireLinkPJPerBit is the intra-cluster electrical link energy per
	// bit per hop. The thesis folds link energy into the Cadence-derived
	// electrical figures; we use a conservative fraction of the router
	// energy for the short (<5 mm) all-to-all cluster wires.
	WireLinkPJPerBit units.Picojoule

	// BufferResidencyPJPerBitCycle is the retention (leakage + clocking)
	// energy of holding one bit in an SRAM buffer for one cycle. This is
	// the congestion-sensitive term: the thesis attributes d-HetPNoC's
	// lower energy-per-message under skew to flits "occupy[ing] the
	// buffers in routers for a shorter duration" (§3.4.1.2, Fig. 3-10
	// discussion).
	BufferResidencyPJPerBitCycle units.Picojoule

	// IdleDetectorPJPerWavelengthCycle is the energy of keeping one
	// demodulator row powered for one cycle while a packet is being
	// received. Firefly powers every wavelength of the channel for every
	// transmission; d-HetPNoC gates only the wavelengths named in the
	// reservation flit (§3.3.1).
	IdleDetectorPJPerWavelengthCycle units.Picojoule
}

// DefaultEnergyParams returns the thesis's Table 3-4/3-5 figures.
func DefaultEnergyParams() EnergyParams {
	return EnergyParams{
		ModulationPJPerBit:               0.04,
		TuningPJPerBit:                   0.24,
		LaunchPJPerBit:                   0.15,
		BufferPJPerBit:                   0.078125,
		RouterPJPerBit:                   0.625,
		WireLinkPJPerBit:                 0.1,
		BufferResidencyPJPerBitCycle:     0.0015625,
		IdleDetectorPJPerWavelengthCycle: 0.03,
	}
}

// EnergyComponent names one term of the packet-energy decomposition,
// Eq. (3)-(4): E_packet = E_electrical + E_photonic, with E_photonic =
// E_launch + E_modulation + E_tuning + E_buffer.
type EnergyComponent int

// Energy components tracked by the ledger.
const (
	EnergyLaunch EnergyComponent = iota + 1
	EnergyModulation
	EnergyTuning
	EnergyBuffer
	EnergyBufferResidency
	EnergyRouter
	EnergyWireLink
	EnergyIdleDetector
	numEnergyComponents
)

// String returns the component name.
func (c EnergyComponent) String() string {
	switch c {
	case EnergyLaunch:
		return "launch"
	case EnergyModulation:
		return "modulation"
	case EnergyTuning:
		return "tuning"
	case EnergyBuffer:
		return "buffer"
	case EnergyBufferResidency:
		return "buffer-residency"
	case EnergyRouter:
		return "router"
	case EnergyWireLink:
		return "wire-link"
	case EnergyIdleDetector:
		return "idle-detector"
	default:
		return "unknown"
	}
}

// Components lists every tracked component in declaration order.
func Components() []EnergyComponent {
	comps := make([]EnergyComponent, 0, int(numEnergyComponents)-1)
	for c := EnergyLaunch; c < numEnergyComponents; c++ {
		comps = append(comps, c)
	}
	return comps
}

// Ledger accumulates dissipated energy by component. It distinguishes a
// warm-up phase (not counted toward reported totals) from the measurement
// window, mirroring the thesis's 1,000 reset cycles.
type Ledger struct {
	params    EnergyParams
	measuring bool
	totals    [numEnergyComponents]units.Picojoule
}

// NewLedger returns a ledger using params; it starts in the warm-up
// (non-measuring) phase.
func NewLedger(params EnergyParams) *Ledger {
	return &Ledger{params: params}
}

// Params returns the energy parameters in force.
func (l *Ledger) Params() EnergyParams { return l.params }

// StartMeasurement begins counting energy toward the reported totals.
func (l *Ledger) StartMeasurement() { l.measuring = true }

// Measuring reports whether the ledger is past warm-up.
func (l *Ledger) Measuring() bool { return l.measuring }

// Add charges pj picojoules to component c.
func (l *Ledger) Add(c EnergyComponent, pj units.Picojoule) {
	if !l.measuring {
		return
	}
	l.totals[c] += pj
}

// LedgerSnapshot is a checkpoint of the ledger's accumulated totals. It
// is a plain value: copying it copies everything.
type LedgerSnapshot struct {
	measuring bool
	totals    [numEnergyComponents]units.Picojoule
}

// Snapshot captures the ledger's mutable state.
func (l *Ledger) Snapshot() LedgerSnapshot {
	return LedgerSnapshot{measuring: l.measuring, totals: l.totals}
}

// Restore rewinds the ledger to a snapshot.
func (l *Ledger) Restore(s LedgerSnapshot) {
	l.measuring = s.measuring
	l.totals = s.totals
}

// AddPhotonicTransmit charges the transmit-side photonic energy for bits
// modulated onto the channel: laser launch, modulation and MRR tuning.
func (l *Ledger) AddPhotonicTransmit(bits float64) {
	l.Add(EnergyLaunch, l.params.LaunchPJPerBit.Times(bits))
	l.Add(EnergyModulation, l.params.ModulationPJPerBit.Times(bits))
	l.Add(EnergyTuning, l.params.TuningPJPerBit.Times(bits))
}

// AddDemodulation charges receive-side demodulation for bits detected.
func (l *Ledger) AddDemodulation(bits float64) {
	l.Add(EnergyModulation, l.params.ModulationPJPerBit.Times(bits))
}

// AddControlTransmit charges control-plane bits (reservation flits, the
// DBA token) modulated onto an always-tuned control or reservation
// waveguide: laser launch and modulation, but no per-bit thermal tuning —
// the control rings hold a fixed resonance.
func (l *Ledger) AddControlTransmit(bits float64) {
	l.Add(EnergyLaunch, l.params.LaunchPJPerBit.Times(bits))
	l.Add(EnergyModulation, l.params.ModulationPJPerBit.Times(bits))
}

// AddBufferAccess charges one buffer write or read of bits.
func (l *Ledger) AddBufferAccess(bits float64) {
	l.Add(EnergyBuffer, l.params.BufferPJPerBit.Times(bits))
}

// AddBufferResidency charges bitCycles bit-cycles of buffer retention.
func (l *Ledger) AddBufferResidency(bitCycles float64) {
	l.Add(EnergyBufferResidency, l.params.BufferResidencyPJPerBitCycle.Times(bitCycles))
}

// AddRouterTraversal charges one router crossbar traversal of bits.
func (l *Ledger) AddRouterTraversal(bits float64) {
	l.Add(EnergyRouter, l.params.RouterPJPerBit.Times(bits))
}

// AddWireLink charges one electrical link hop of bits.
func (l *Ledger) AddWireLink(bits float64) {
	l.Add(EnergyWireLink, l.params.WireLinkPJPerBit.Times(bits))
}

// AddIdleDetector charges wavelengthCycles of powered-but-gated detector
// rows (the Firefly inefficiency).
func (l *Ledger) AddIdleDetector(wavelengthCycles float64) {
	l.Add(EnergyIdleDetector, l.params.IdleDetectorPJPerWavelengthCycle.Times(wavelengthCycles))
}

// Total returns the accumulated energy of component c in picojoules.
func (l *Ledger) Total(c EnergyComponent) units.Picojoule { return l.totals[c] }

// TotalPJ returns the total accumulated energy in picojoules.
func (l *Ledger) TotalPJ() units.Picojoule {
	var sum units.Picojoule
	for _, v := range l.totals {
		sum += v
	}
	return sum
}

// PhotonicPJ returns the photonic share, Eq. (4): launch + modulation +
// tuning + photonic buffer terms.
func (l *Ledger) PhotonicPJ() units.Picojoule {
	return l.totals[EnergyLaunch] + l.totals[EnergyModulation] +
		l.totals[EnergyTuning] + l.totals[EnergyIdleDetector]
}

// ElectricalPJ returns the electrical share: routers, links, buffers.
func (l *Ledger) ElectricalPJ() units.Picojoule {
	return l.totals[EnergyRouter] + l.totals[EnergyWireLink] +
		l.totals[EnergyBuffer] + l.totals[EnergyBufferResidency]
}

// Breakdown returns a copy of the per-component totals.
func (l *Ledger) Breakdown() map[EnergyComponent]units.Picojoule {
	out := make(map[EnergyComponent]units.Picojoule, int(numEnergyComponents)-1)
	for c := EnergyLaunch; c < numEnergyComponents; c++ {
		out[c] = l.totals[c]
	}
	return out
}
