package photonic

import (
	"testing"
	"testing/quick"

	"hetpnoc/internal/units"
)

func TestNewBundleSizing(t *testing.T) {
	tests := []struct {
		total      int
		waveguides int
	}{
		{1, 1}, {64, 1}, {65, 2}, {128, 2}, {256, 4}, {512, 8},
	}
	for _, tt := range tests {
		b, err := NewBundle(tt.total)
		if err != nil {
			t.Fatalf("NewBundle(%d): %v", tt.total, err)
		}
		if b.Waveguides != tt.waveguides {
			t.Errorf("NewBundle(%d).Waveguides = %d, want %d", tt.total, b.Waveguides, tt.waveguides)
		}
		if b.Capacity() < tt.total {
			t.Errorf("NewBundle(%d).Capacity() = %d < total", tt.total, b.Capacity())
		}
	}
}

func TestNewBundleRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewBundle(n); err == nil {
			t.Errorf("NewBundle(%d) succeeded", n)
		}
	}
}

func TestSlotMappingRoundTrip(t *testing.T) {
	b, err := NewBundle(512)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		slot := int(raw) % b.Capacity()
		return b.SlotForID(b.IDForSlot(slot)) == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsPerCycle(t *testing.T) {
	if got := BitsPerCycle(2.5e9); got != 5 {
		t.Fatalf("BitsPerCycle(2.5 GHz) = %g, want 5", got)
	}
}

func TestWavelengthIDOrdering(t *testing.T) {
	ids := []WavelengthID{
		{Waveguide: 1, Wavelength: 0},
		{Waveguide: 0, Wavelength: 5},
		{Waveguide: 0, Wavelength: 2},
		{Waveguide: 1, Wavelength: 0}, // duplicate keeps order stable
	}
	SortWavelengths(ids)
	want := []WavelengthID{{0, 2}, {0, 5}, {1, 0}, {1, 0}}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted %v, want %v", ids, want)
		}
	}
	if s := ids[0].String(); s != "w0:l2" {
		t.Fatalf("String() = %q", s)
	}
}

func TestDetectorBankGating(t *testing.T) {
	b, err := NewBundle(64)
	if err != nil {
		t.Fatal(err)
	}
	bank := NewDetectorBank(b)
	ids := []WavelengthID{{0, 1}, {0, 2}, {0, 3}}

	bank.Power(ids, true)
	if got := bank.PoweredCount(); got != 3 {
		t.Fatalf("PoweredCount = %d, want 3", got)
	}
	// Powering an already-powered row is idempotent: overlapping windows
	// must not double-count.
	bank.Power(ids[:2], true)
	if got := bank.PoweredCount(); got != 3 {
		t.Fatalf("PoweredCount after re-power = %d, want 3", got)
	}
	if !bank.IsPowered(WavelengthID{0, 2}) {
		t.Fatal("row 2 should be powered")
	}
	bank.Power(ids, false)
	if got := bank.PoweredCount(); got != 0 {
		t.Fatalf("PoweredCount after gating off = %d, want 0", got)
	}
	// Gating off an already-off row is a no-op.
	bank.Power(ids, false)
	if got := bank.PoweredCount(); got != 0 {
		t.Fatalf("PoweredCount = %d, want 0", got)
	}
}

func TestLaser(t *testing.T) {
	l, err := NewLaser(64)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.TotalPowerMW(); got != 96 {
		t.Fatalf("64-wavelength laser power = %g mW, want 96", got)
	}
	if _, err := NewLaser(0); err == nil {
		t.Fatal("NewLaser(0) succeeded")
	}
}

func TestLedgerWarmupGating(t *testing.T) {
	l := NewLedger(DefaultEnergyParams())
	l.AddPhotonicTransmit(1000)
	l.AddRouterTraversal(1000)
	if got := l.TotalPJ(); got != 0 {
		t.Fatalf("ledger counted %g pJ before measurement", got)
	}
	l.StartMeasurement()
	l.AddPhotonicTransmit(1000)
	if got := l.TotalPJ(); got == 0 {
		t.Fatal("ledger ignored post-measurement energy")
	}
}

func TestLedgerComponents(t *testing.T) {
	p := DefaultEnergyParams()
	l := NewLedger(p)
	l.StartMeasurement()

	l.AddPhotonicTransmit(100)
	wantLaunch := p.LaunchPJPerBit.Times(100)
	wantMod := p.ModulationPJPerBit.Times(100)
	wantTune := p.TuningPJPerBit.Times(100)
	if got := l.Total(EnergyLaunch); got != wantLaunch {
		t.Errorf("launch = %g, want %g", got, wantLaunch)
	}
	if got := l.Total(EnergyModulation); got != wantMod {
		t.Errorf("modulation = %g, want %g", got, wantMod)
	}
	if got := l.Total(EnergyTuning); got != wantTune {
		t.Errorf("tuning = %g, want %g", got, wantTune)
	}

	l.AddControlTransmit(100)
	// Control transmit adds launch + modulation but no tuning.
	if got := l.Total(EnergyTuning); got != wantTune {
		t.Errorf("control transmit charged tuning: %g, want %g", got, wantTune)
	}
	if got := l.Total(EnergyLaunch); got != 2*wantLaunch {
		t.Errorf("launch after control = %g, want %g", got, 2*wantLaunch)
	}

	l.AddDemodulation(50)
	l.AddBufferAccess(200)
	l.AddBufferResidency(400)
	l.AddRouterTraversal(300)
	l.AddWireLink(100)
	l.AddIdleDetector(10)

	// The grand total must equal the sum of the breakdown.
	var sum units.Picojoule
	for _, v := range l.Breakdown() {
		sum += v
	}
	if got := l.TotalPJ(); got != sum {
		t.Fatalf("TotalPJ = %g, breakdown sums to %g", got, sum)
	}
	if l.PhotonicPJ()+l.ElectricalPJ() != l.TotalPJ() {
		t.Fatalf("photonic (%g) + electrical (%g) != total (%g)",
			l.PhotonicPJ(), l.ElectricalPJ(), l.TotalPJ())
	}
}

func TestDefaultEnergyParamsMatchTable3_5(t *testing.T) {
	p := DefaultEnergyParams()
	if p.ModulationPJPerBit != 0.04 {
		t.Errorf("modulation = %g, Table 3-5 says 0.04", p.ModulationPJPerBit)
	}
	if p.TuningPJPerBit != 0.24 {
		t.Errorf("tuning = %g, Table 3-5 says 0.24", p.TuningPJPerBit)
	}
	if p.LaunchPJPerBit != 0.15 {
		t.Errorf("launch = %g, Table 3-5 says 0.15", p.LaunchPJPerBit)
	}
	if p.BufferPJPerBit != 0.078125 {
		t.Errorf("buffer = %g, Table 3-5 says 0.078125", p.BufferPJPerBit)
	}
	if p.RouterPJPerBit != 0.625 {
		t.Errorf("router = %g, Table 3-5 says 0.625", p.RouterPJPerBit)
	}
}

func TestComponentNames(t *testing.T) {
	comps := Components()
	if len(comps) != 8 {
		t.Fatalf("Components() returned %d entries, want 8", len(comps))
	}
	seen := make(map[string]bool)
	for _, c := range comps {
		name := c.String()
		if name == "unknown" {
			t.Fatalf("component %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate component name %q", name)
		}
		seen[name] = true
	}
}
