package photonic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCrossbarWorstCaseComposition(t *testing.T) {
	p := DefaultLossParams()
	// 16 clusters, 4 cm serpentine, 4 rings per foreign cluster:
	// 1.0 + 1.5*4 + 15*4*0.01 + 0.5 = 8.1 dB.
	got, err := p.CrossbarWorstCase(16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got.TotalDB)-8.1) > 1e-9 {
		t.Fatalf("crossbar loss = %g dB, want 8.1", got.TotalDB)
	}
	// Crosstalk: 15 foreign clusters x 4 rings x 0.01 dB = 0.6 dB.
	if math.Abs(float64(got.CrosstalkDB)-0.6) > 1e-9 {
		t.Fatalf("crossbar crosstalk = %g dB, want 0.6", got.CrosstalkDB)
	}
	// Launch power: -20 dBm + 8.1 dB loss + 0.6 dB crosstalk margin =
	// -11.3 dBm.
	want := math.Pow(10, -11.3/10)
	if math.Abs(float64(got.LaserPowerMW)-want) > 1e-9 {
		t.Fatalf("laser power = %g mW, want %g", got.LaserPowerMW, want)
	}
}

// TestCrosstalkDominatesForTorus is the [23] argument in one assertion:
// for equal-era device parameters, the multi-hop PSE fabric accumulates an
// order of magnitude more crosstalk than the crossbar and therefore needs
// substantially more laser power despite comparable insertion loss.
func TestCrosstalkDominatesForTorus(t *testing.T) {
	p := DefaultLossParams()
	xbar, err := p.CrossbarWorstCase(16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := p.TorusWorstCase(4, 1, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if torus.CrosstalkDB < 5*xbar.CrosstalkDB {
		t.Fatalf("torus crosstalk %g dB not well above crossbar %g dB",
			torus.CrosstalkDB, xbar.CrosstalkDB)
	}
	if torus.LaserPowerMW <= xbar.LaserPowerMW {
		t.Fatalf("torus laser power %g mW not above crossbar %g mW",
			torus.LaserPowerMW, xbar.LaserPowerMW)
	}
}

func TestTorusWorstCaseComposition(t *testing.T) {
	p := DefaultLossParams()
	// 4 hops of 0.5 cm, 1 turn, 8 crossings per hop:
	// 1.0 + 1.5*0.5*4 + 32*0.05 + 1*0.5 + 0.5 = 6.6 dB.
	got, err := p.TorusWorstCase(4, 1, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got.TotalDB)-6.6) > 1e-9 {
		t.Fatalf("torus loss = %g dB, want 6.6", got.TotalDB)
	}
}

// TestMoreHopsCostMore: the §2.1.3 observation that each PSE hop adds loss.
func TestMoreHopsCostMore(t *testing.T) {
	p := DefaultLossParams()
	f := func(rawHops uint8) bool {
		hops := int(rawHops)%8 + 1
		a, err := p.TorusWorstCase(hops, 1, 8, 0.5)
		if err != nil {
			return false
		}
		b, err := p.TorusWorstCase(hops+1, 1, 8, 0.5)
		if err != nil {
			return false
		}
		return b.TotalDB > a.TotalDB && b.LaserPowerMW > a.LaserPowerMW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkBudgetValidation(t *testing.T) {
	p := DefaultLossParams()
	if _, err := p.CrossbarWorstCase(1, 4, 4); err == nil {
		t.Error("single-cluster crossbar accepted")
	}
	if _, err := p.CrossbarWorstCase(16, 0, 4); err == nil {
		t.Error("zero-length waveguide accepted")
	}
	if _, err := p.TorusWorstCase(0, 0, 0, 1); err == nil {
		t.Error("zero-hop torus accepted")
	}
	bad := p
	bad.CrossingDB = -1
	if _, err := bad.TorusWorstCase(2, 1, 8, 0.5); err == nil {
		t.Error("negative loss accepted")
	}
}

// TestLaserPowerConversionRoundTrip: the dBm/mW conversion is coherent.
func TestLaserPowerConversionRoundTrip(t *testing.T) {
	p := DefaultLossParams()
	pl, err := p.CrossbarWorstCase(16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	backToDBm := 10 * math.Log10(float64(pl.LaserPowerMW))
	if math.Abs(backToDBm-float64(p.DetectorSensitivityDBm+pl.TotalDB+pl.CrosstalkDB)) > 1e-9 {
		t.Fatalf("power conversion inconsistent: %g dBm", backToDBm)
	}
}
