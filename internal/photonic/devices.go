package photonic

import (
	"fmt"

	"hetpnoc/internal/units"
)

// DetectorBank models the demodulator rows of one photonic router's read
// side: one MRR filter + Ge p-i-n photodetector per (waveguide,
// wavelength) the router can receive on. The reservation-assisted SWMR
// protocol gates rows on only for the duration of a packet (§3.3.1); the
// bank tracks which rows are powered so the energy ledger can charge
// powered-but-idle rows (the Firefly baseline powers its whole channel).
type DetectorBank struct {
	bundle  WaveguideBundle
	powered []bool
	onCount int
}

// NewDetectorBank returns a bank covering every wavelength slot of the
// bundle, all rows gated off.
func NewDetectorBank(bundle WaveguideBundle) *DetectorBank {
	return &DetectorBank{
		bundle:  bundle,
		powered: make([]bool, bundle.Capacity()),
	}
}

// Power gates the rows for ids on or off. Powering an already-powered row
// is a no-op, so overlapping receive windows compose safely.
func (b *DetectorBank) Power(ids []WavelengthID, on bool) {
	for _, id := range ids {
		slot := b.bundle.SlotForID(id)
		if b.powered[slot] == on {
			continue
		}
		b.powered[slot] = on
		if on {
			b.onCount++
		} else {
			b.onCount--
		}
	}
}

// PoweredCount returns the number of rows currently powered.
func (b *DetectorBank) PoweredCount() int { return b.onCount }

// IsPowered reports whether the row for id is powered.
func (b *DetectorBank) IsPowered(id WavelengthID) bool {
	return b.powered[b.bundle.SlotForID(id)]
}

// DetectorBankSnapshot is a checkpoint of the bank's gating state.
type DetectorBankSnapshot struct {
	powered []bool
	onCount int
}

// Snapshot copies the bank's gating state.
func (b *DetectorBank) Snapshot() *DetectorBankSnapshot {
	return &DetectorBankSnapshot{
		powered: append([]bool(nil), b.powered...),
		onCount: b.onCount,
	}
}

// Restore rewinds the bank to a snapshot.
func (b *DetectorBank) Restore(s *DetectorBankSnapshot) {
	copy(b.powered, s.powered)
	b.onCount = s.onCount
}

// Laser models the multi-wavelength source feeding the crossbar. The
// thesis assumes heterogeneously-integrated on-chip sources [16] with
// 1.5 mW per wavelength [30]; the simulator needs only the per-bit launch
// energy (already in EnergyParams) and the wavelength inventory.
type Laser struct {
	// Wavelengths is the number of carrier wavelengths generated.
	Wavelengths int
	// PowerPerWavelengthMW is the optical output per carrier.
	PowerPerWavelengthMW units.MilliWatt
}

// NewLaser returns a laser driving n carriers at the thesis's 1.5 mW.
func NewLaser(n int) (Laser, error) {
	if n <= 0 {
		return Laser{}, fmt.Errorf("photonic: laser must drive at least one wavelength, got %d", n)
	}
	return Laser{Wavelengths: n, PowerPerWavelengthMW: 1.5}, nil
}

// TotalPowerMW returns the aggregate optical power.
func (l Laser) TotalPowerMW() units.MilliWatt {
	return l.PowerPerWavelengthMW.Times(float64(l.Wavelengths))
}
