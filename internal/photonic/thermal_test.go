package photonic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHeaterPowerMatchesTable3_4(t *testing.T) {
	p := DefaultThermalParams()
	// Table 3-4: 2.4 mW/nm. One nanometre of trim costs 2.4 mW.
	got, err := p.HeaterPowerMW(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.4 {
		t.Fatalf("1 nm trim = %g mW, Table 3-4 says 2.4", got)
	}
	// Magnitude only: blue-shift errors cost the same.
	neg, err := p.HeaterPowerMW(-1.0)
	if err != nil {
		t.Fatal(err)
	}
	if neg != 2.4 {
		t.Fatalf("-1 nm trim = %g mW, want 2.4", neg)
	}
}

func TestExpectedTrimPower(t *testing.T) {
	p := DefaultThermalParams()
	// At deltaK = 0: E|N(0, 0.5nm)| = 0.5*sqrt(2/pi) nm = 0.3989 nm ->
	// 0.9575 mW.
	got, err := p.ExpectedTrimPowerMW(0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * math.Sqrt(2/math.Pi) * 2.4
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Fatalf("expected trim power = %g mW, want %g", got, want)
	}
	// A 10 K gradient adds 0.8 nm -> 1.92 mW on top.
	hot, err := p.ExpectedTrimPowerMW(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(hot)-(want+1.92)) > 1e-12 {
		t.Fatalf("10 K trim power = %g mW, want %g", hot, want+1.92)
	}
}

// TestTuningPowerMonotoneInTemperature: hotter chips pay more.
func TestTuningPowerMonotoneInTemperature(t *testing.T) {
	p := DefaultThermalParams()
	f := func(rawK uint8) bool {
		k := float64(rawK) / 4
		a, err := p.ExpectedTrimPowerMW(k)
		if err != nil {
			return false
		}
		b, err := p.ExpectedTrimPowerMW(k + 1)
		if err != nil {
			return false
		}
		return b > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestChipTuningPowerScalesWithDeviceCount quantifies the static cost of
// the Figure 3-6 area overhead: d-HetPNoC's extra rings need extra trim
// power in exact proportion.
func TestChipTuningPowerScalesWithDeviceCount(t *testing.T) {
	p := DefaultThermalParams()
	// Device counts at 64 wavelengths (the area-model test's numbers).
	dhet, err := p.ChipTuningPowerMW(3072+17408, 5)
	if err != nil {
		t.Fatal(err)
	}
	firefly, err := p.ChipTuningPowerMW(1088+16320, 5)
	if err != nil {
		t.Fatal(err)
	}
	if dhet <= firefly {
		t.Fatalf("d-HetPNoC tuning power %g mW not above Firefly %g mW", dhet, firefly)
	}
	ratio := float64(dhet / firefly)
	wantRatio := float64(3072+17408) / float64(1088+16320)
	if math.Abs(ratio-wantRatio) > 1e-12 {
		t.Fatalf("tuning power ratio %g, want device ratio %g", ratio, wantRatio)
	}
}

func TestThermalValidation(t *testing.T) {
	bad := DefaultThermalParams()
	bad.HeaterMWPerNm = 0
	if _, err := bad.HeaterPowerMW(1); err == nil {
		t.Error("zero heater efficiency accepted")
	}
	p := DefaultThermalParams()
	if _, err := p.ExpectedTrimPowerMW(-1); err == nil {
		t.Error("negative temperature delta accepted")
	}
	if _, err := p.ChipTuningPowerMW(0, 1); err == nil {
		t.Error("zero ring count accepted")
	}
}
