package photonic

import (
	"fmt"
	"math"

	"hetpnoc/internal/units"
)

// ThermalParams model the micro-ring thermal tuning of §2.1.1: "The
// resonant frequency of each MRR can be changed by applying heat ... with
// the help of local heaters. We assume a single heater element per MRR."
// The 2.4 mW/nm figure of Table 3-4 [28] is the heater efficiency; how
// much tuning each ring needs depends on fabrication variation and the
// on-die temperature field.
type ThermalParams struct {
	// HeaterMWPerNm is the heater power per nanometre of resonance shift
	// (2.4 mW/nm, Table 3-4).
	HeaterMWPerNm float64

	// ResonanceDriftNmPerK is the silicon ring's resonance drift per
	// kelvin (~0.08 nm/K for SOI rings).
	ResonanceDriftNmPerK float64

	// FabricationSigmaNm is the standard deviation of the as-fabricated
	// resonance error a ring must trim out (~0.5 nm for deep-UV
	// lithography).
	FabricationSigmaNm float64
}

// DefaultThermalParams returns the Table 3-4 heater efficiency with
// representative silicon-photonic variation figures.
func DefaultThermalParams() ThermalParams {
	return ThermalParams{
		HeaterMWPerNm:        2.4,
		ResonanceDriftNmPerK: 0.08,
		FabricationSigmaNm:   0.5,
	}
}

// Validate reports the first non-physical parameter.
func (p ThermalParams) Validate() error {
	if p.HeaterMWPerNm <= 0 || p.ResonanceDriftNmPerK < 0 || p.FabricationSigmaNm < 0 {
		return fmt.Errorf("photonic: thermal parameters must be physical: %+v", p)
	}
	return nil
}

// HeaterPowerMW returns the heater power one ring dissipates to trim a
// total resonance error of shiftNm. Heaters only shift one way (heating
// red-shifts), so the magnitude is what matters.
func (p ThermalParams) HeaterPowerMW(shiftNm float64) (units.MilliWatt, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return units.MilliWatt(math.Abs(shiftNm) * p.HeaterMWPerNm), nil
}

// ExpectedTrimPowerMW returns the expected per-ring heater power when
// trimming a Gaussian fabrication error with the configured sigma plus a
// deterministic thermal gradient of deltaK kelvin: E|X| of a folded
// normal, sigma*sqrt(2/pi), plus the drift term.
func (p ThermalParams) ExpectedTrimPowerMW(deltaK float64) (units.MilliWatt, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if deltaK < 0 {
		return 0, fmt.Errorf("photonic: temperature delta must be non-negative, got %g", deltaK)
	}
	expectedShift := p.FabricationSigmaNm*math.Sqrt(2/math.Pi) + deltaK*p.ResonanceDriftNmPerK
	return units.MilliWatt(expectedShift * p.HeaterMWPerNm), nil
}

// ChipTuningPowerMW returns the expected aggregate heater power of a chip
// with rings micro-ring devices under a deltaK on-die temperature spread.
// Combined with the area model's device counts this quantifies the
// *static* cost of the d-HetPNoC's extra modulators — the flip side of the
// Figure 3-6 area overhead.
func (p ThermalParams) ChipTuningPowerMW(rings int, deltaK float64) (units.MilliWatt, error) {
	if rings <= 0 {
		return 0, fmt.Errorf("photonic: ring count must be positive, got %d", rings)
	}
	perRing, err := p.ExpectedTrimPowerMW(deltaK)
	if err != nil {
		return 0, err
	}
	return perRing.Times(float64(rings)), nil
}
