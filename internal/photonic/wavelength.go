// Package photonic models the photonic substrate of the NoC: DWDM
// wavelengths and waveguides, micro-ring resonator (MRR) modulator and
// demodulator banks, photodetectors, the laser source, and the energy
// accounting of Tables 3-4 and 3-5 of the thesis.
//
// The behavioural abstraction matches the thesis's simulator: a
// wavelength carries a fixed line rate (12.5 Gb/s, one wavelength per
// single-carrier electro-optic modulator [28]); a waveguide multiplexes up
// to 64 wavelengths (as in Firefly [20]); devices contribute per-bit
// energies and per-device area, not optical physics.
package photonic

import (
	"fmt"
	"sort"
)

// Constants of the photonic technology assumed throughout the thesis.
const (
	// WavelengthGbps is the line rate of one DWDM wavelength channel
	// (12.5 Gb/s electro-optic modulators, [28]).
	WavelengthGbps = 12.5

	// MaxWavelengthsPerWaveguide is the densest DWDM considered (64, as
	// in Firefly [20]).
	MaxWavelengthsPerWaveguide = 64

	// MRRRadiusMicron is the micro-ring resonator radius used by the
	// area model (5 um, [28]).
	MRRRadiusMicron = 5.0
)

// WavelengthID identifies one DWDM wavelength within the data-waveguide
// bundle: the waveguide number and the wavelength index inside it. The
// reservation flit carries these identifiers to the destination so it can
// gate the right demodulators (§3.3.1).
type WavelengthID struct {
	Waveguide  int
	Wavelength int
}

// String returns a compact "w<waveguide>:l<wavelength>" form.
func (w WavelengthID) String() string {
	return fmt.Sprintf("w%d:l%d", w.Waveguide, w.Wavelength)
}

// Less orders identifiers by (waveguide, wavelength).
func (w WavelengthID) Less(o WavelengthID) bool {
	if w.Waveguide != o.Waveguide {
		return w.Waveguide < o.Waveguide
	}
	return w.Wavelength < o.Wavelength
}

// SortWavelengths sorts ids in place by (waveguide, wavelength).
func SortWavelengths(ids []WavelengthID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
}

// WaveguideBundle describes the data-waveguide bundle shared by all
// photonic routers: how many waveguides exist and how many DWDM
// wavelengths each carries.
type WaveguideBundle struct {
	Waveguides              int
	WavelengthsPerWaveguide int
}

// NewBundle sizes a bundle for total data wavelengths, packing
// MaxWavelengthsPerWaveguide wavelengths per waveguide (Eq. "N_WD =
// ceil(N_lambda / lambda_W)" in §3.4.3).
func NewBundle(totalWavelengths int) (WaveguideBundle, error) {
	if totalWavelengths <= 0 {
		return WaveguideBundle{}, fmt.Errorf("photonic: total wavelengths must be positive, got %d", totalWavelengths)
	}
	perWG := MaxWavelengthsPerWaveguide
	waveguides := (totalWavelengths + perWG - 1) / perWG
	return WaveguideBundle{Waveguides: waveguides, WavelengthsPerWaveguide: perWG}, nil
}

// Capacity returns the number of wavelength slots in the bundle. This can
// exceed the requested total when the total is not a multiple of the DWDM
// density; the allocator only hands out the requested number.
func (b WaveguideBundle) Capacity() int {
	return b.Waveguides * b.WavelengthsPerWaveguide
}

// IDForSlot maps a flat slot index in [0, Capacity()) to a WavelengthID.
func (b WaveguideBundle) IDForSlot(slot int) WavelengthID {
	return WavelengthID{
		Waveguide:  slot / b.WavelengthsPerWaveguide,
		Wavelength: slot % b.WavelengthsPerWaveguide,
	}
}

// SlotForID is the inverse of IDForSlot.
func (b WaveguideBundle) SlotForID(id WavelengthID) int {
	return id.Waveguide*b.WavelengthsPerWaveguide + id.Wavelength
}

// BitsPerCycle returns the payload bits one wavelength carries per clock
// cycle at the given NoC clock frequency. At the thesis's 2.5 GHz clock a
// 12.5 Gb/s wavelength carries exactly 5 bits per cycle.
func BitsPerCycle(clockHz float64) float64 {
	return WavelengthGbps * 1e9 / clockHz
}
