package photonic

import (
	"fmt"

	"hetpnoc/internal/units"
)

// LossParams are the per-element insertion losses of the photonic path, in
// dB. The defaults are representative published figures for silicon
// photonics of the thesis's era (its references [13]-[19]); the crosstalk
// discussion of [23], which motivates the crossbar choice in §3 of the
// thesis, turns on exactly these terms.
type LossParams struct {
	// CouplerDB is the laser-to-chip (or fiber-to-chip) coupling loss.
	CouplerDB units.DB
	// PropagationDBPerCm is the waveguide propagation loss.
	PropagationDBPerCm units.DBPerCm
	// CrossingDB is the loss of one waveguide crossing.
	CrossingDB units.DB
	// RingThroughDB is the loss of passing one off-resonance ring.
	RingThroughDB units.DB
	// RingDropDB is the loss of being dropped (turned) by one resonant
	// ring — a PSE turn or a demodulator filter.
	RingDropDB units.DB
	// CrosstalkPerCrossingDB is the signal-to-crosstalk penalty each
	// waveguide crossing contributes — the quantity [23] analyzes to
	// argue that multi-hop switched photonic fabrics accumulate
	// crosstalk while "crossbar-based photonic NoC architectures can
	// scale better in terms of reliability" (§3 of the thesis).
	CrosstalkPerCrossingDB units.DB
	// CrosstalkPerPSEDB is the crosstalk penalty of one PSE traversal.
	CrosstalkPerPSEDB units.DB
	// DetectorSensitivityDBm is the minimum optical power the receiver
	// needs for the target bit-error rate (dBm-referenced).
	DetectorSensitivityDBm units.DB
}

// DefaultLossParams returns representative silicon-photonic losses.
func DefaultLossParams() LossParams {
	return LossParams{
		CouplerDB:              1.0,
		PropagationDBPerCm:     1.5,
		CrossingDB:             0.05,
		RingThroughDB:          0.01,
		RingDropDB:             0.5,
		CrosstalkPerCrossingDB: 0.15,
		CrosstalkPerPSEDB:      0.4,
		DetectorSensitivityDBm: -20,
	}
}

// Validate reports the first non-physical parameter.
func (p LossParams) Validate() error {
	if p.CouplerDB < 0 || p.PropagationDBPerCm < 0 || p.CrossingDB < 0 ||
		p.RingThroughDB < 0 || p.RingDropDB < 0 {
		return fmt.Errorf("photonic: losses must be non-negative: %+v", p)
	}
	return nil
}

// PathLoss describes one optical path's budget.
type PathLoss struct {
	// TotalDB is the end-to-end insertion loss.
	TotalDB units.DB
	// CrosstalkDB is the accumulated signal-to-crosstalk penalty.
	CrosstalkDB units.DB
	// LaserPowerMW is the per-wavelength laser power needed to arrive at
	// the detector sensitivity after the loss, with the crosstalk
	// penalty compensated by extra launch power.
	LaserPowerMW units.MilliWatt
}

// budget assembles a PathLoss from a total loss and crosstalk in dB.
func (p LossParams) budget(lossDB, crosstalkDB units.DB) PathLoss {
	// Required launch power: sensitivity + loss + crosstalk margin,
	// converted from dBm by the blessed units helper.
	launchDBm := p.DetectorSensitivityDBm + lossDB + crosstalkDB
	return PathLoss{
		TotalDB:      lossDB,
		CrosstalkDB:  crosstalkDB,
		LaserPowerMW: units.DBmToMilliWatt(launchDBm),
	}
}

// CrossbarWorstCase returns the worst-case budget of the crossbar
// architectures (Firefly and d-HetPNoC): the light traverses the
// serpentine data waveguide past every cluster, through each foreign
// cluster's off-resonance demodulator rings, and is dropped once at the
// destination.
//
// dieCm is the waveguide length in cm (the thesis's 20 mm die gives a
// serpentine of roughly 2x the die edge per waveguide row);
// ringsPerCluster is the demodulator rows the light passes per foreign
// cluster (the per-channel wavelength count).
func (p LossParams) CrossbarWorstCase(clusters int, dieCm units.Centimeter, ringsPerCluster int) (PathLoss, error) {
	if err := p.Validate(); err != nil {
		return PathLoss{}, err
	}
	if clusters < 2 || dieCm <= 0 || ringsPerCluster < 1 {
		return PathLoss{}, fmt.Errorf("photonic: crossbar budget needs >=2 clusters, positive length and rings")
	}
	loss := p.CouplerDB +
		p.PropagationDBPerCm.Over(dieCm) +
		p.RingThroughDB.Times(float64(clusters-1)*float64(ringsPerCluster)) +
		p.RingDropDB
	// The crossbar's only crosstalk sources are the off-resonance rings,
	// an order of magnitude below crossings and PSEs; [23] treats it as
	// the clean topology.
	crosstalk := p.RingThroughDB.Times(float64(clusters-1) * float64(ringsPerCluster))
	return p.budget(loss, crosstalk), nil
}

// TorusWorstCase returns the worst-case budget of the circuit-switched
// torus (§2.1.3): the light crosses `hops` inter-node waveguide segments,
// passes `crossingsPerHop` waveguide crossings inside each blocking
// router, and makes `turns` PSE drops. Each PSE hop "introduces additional
// loss and crosstalk" — the §2.1.3 argument for compact blocking switches
// and, in [23], for crossbars.
func (p LossParams) TorusWorstCase(hops, turns, crossingsPerHop int, hopCm units.Centimeter) (PathLoss, error) {
	if err := p.Validate(); err != nil {
		return PathLoss{}, err
	}
	if hops < 1 || turns < 0 || crossingsPerHop < 0 || hopCm <= 0 {
		return PathLoss{}, fmt.Errorf("photonic: torus budget needs >=1 hop and positive geometry")
	}
	loss := p.CouplerDB +
		p.PropagationDBPerCm.Over(hopCm).Times(float64(hops)) +
		p.CrossingDB.Times(float64(hops*crossingsPerHop)) +
		p.RingDropDB.Times(float64(turns)) +
		p.RingDropDB // final drop into the receiver
	crosstalk := p.CrosstalkPerCrossingDB.Times(float64(hops*crossingsPerHop)) +
		p.CrosstalkPerPSEDB.Times(float64(hops+turns))
	return p.budget(loss, crosstalk), nil
}
