// Package sim provides the deterministic building blocks of the
// cycle-accurate simulator: a seeded pseudo-random number generator, a
// cycle clock, and a timer wheel for scheduling future work (retransmit
// back-off, task remaps).
//
// Determinism is a hard requirement for a NoC simulator: two runs with the
// same seed and configuration must produce bit-identical statistics, so
// experiments are reproducible and regressions are diffable. All
// randomness therefore flows through RNG instances owned by the run, never
// through global state.
package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64). It is not safe for concurrent use; each simulation run
// owns its own instance.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical sequences.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Split derives an independent generator from this one. Use it to give
// each component its own stream so that adding random draws to one
// component does not perturb another.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// State returns the generator's internal state for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds the generator to a state captured by State; the
// subsequent draw sequence replays exactly.
func (r *RNG) SetState(state uint64) { r.state = state }
