package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(123)
	b := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 17, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4242)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d uniform draws = %g, want ~0.5", n, mean)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(5)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		freq := float64(hits) / n
		if math.Abs(freq-p) > 0.01 {
			t.Fatalf("Bernoulli(%g) frequency = %g", p, freq)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(11)
	childA := parent.Split()
	childB := parent.Split()
	// The two children must produce different streams.
	same := 0
	for i := 0; i < 100; i++ {
		if childA.Uint64() == childB.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split children shared %d draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := NewRNG(11).Split()
	b := NewRNG(11).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}
