package sim

import (
	"testing"
)

func TestTimerFiresInCycleOrder(t *testing.T) {
	w := NewTimerWheel()
	var fired []int
	w.Schedule(30, func(Cycle) { fired = append(fired, 30) })
	w.Schedule(10, func(Cycle) { fired = append(fired, 10) })
	w.Schedule(20, func(Cycle) { fired = append(fired, 20) })

	for now := Cycle(0); now <= 40; now++ {
		w.Fire(now)
	}
	want := []int{10, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestTimerSameCycleFIFO(t *testing.T) {
	w := NewTimerWheel()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		w.Schedule(5, func(Cycle) { fired = append(fired, i) })
	}
	w.Fire(5)
	for i, v := range fired {
		if v != i {
			t.Fatalf("same-cycle callbacks fired out of registration order: %v", fired)
		}
	}
}

func TestTimerPastSchedulingFiresNext(t *testing.T) {
	w := NewTimerWheel()
	fired := false
	w.Fire(100)
	w.Schedule(50, func(Cycle) { fired = true })
	w.Fire(101)
	if !fired {
		t.Fatal("past-scheduled callback never fired")
	}
}

func TestTimerDoesNotFireEarly(t *testing.T) {
	w := NewTimerWheel()
	fired := false
	w.Schedule(10, func(Cycle) { fired = true })
	w.Fire(9)
	if fired {
		t.Fatal("callback fired a cycle early")
	}
	if w.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", w.Pending())
	}
	w.Fire(10)
	if !fired {
		t.Fatal("callback did not fire at its cycle")
	}
	if w.Pending() != 0 {
		t.Fatalf("Pending() = %d after firing, want 0", w.Pending())
	}
}

func TestTimerReentrantScheduling(t *testing.T) {
	w := NewTimerWheel()
	var fired []Cycle
	w.Schedule(1, func(now Cycle) {
		fired = append(fired, now)
		w.Schedule(now+2, func(now Cycle) { fired = append(fired, now) })
	})
	for now := Cycle(0); now < 5; now++ {
		w.Fire(now)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("reentrant scheduling fired %v, want [1 3]", fired)
	}
}

func TestClockConversions(t *testing.T) {
	c := DefaultClock()
	if got := c.PeriodSeconds(); got != 400e-12 {
		t.Fatalf("period = %g s, want 400 ps", got)
	}
	// One 12.5 Gb/s wavelength carries exactly 5 bits per 2.5 GHz cycle.
	if got := c.GbpsToBitsPerCycle(12.5); got != 5 {
		t.Fatalf("12.5 Gb/s = %g bits/cycle, want 5", got)
	}
	if got := c.BitsPerCycleToGbps(5); got != 12.5 {
		t.Fatalf("5 bits/cycle = %g Gb/s, want 12.5", got)
	}
	if got := c.Seconds(2500); got != 1e-6 {
		t.Fatalf("2500 cycles = %g s, want 1 us", got)
	}
}
