package sim

import "math/bits"

// Bitset is a fixed-size set of small integers, used by the fabric to
// track which components (routers, cores, transmit engines) currently
// have work. Words are exposed so the per-cycle scheduler can iterate
// set bits without allocating.
type Bitset struct {
	words []uint64
}

// NewBitset returns an empty set able to hold values in [0, n).
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64)}
}

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether i is in the set.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Words returns the live backing words, least-significant bit first.
// Callers iterate set bits with math/bits.TrailingZeros64; mutating the
// set invalidates nothing, but bits set after a word was read are only
// observed on the next pass.
func (b *Bitset) Words() []uint64 { return b.words }

// Count returns the number of set bits (diagnostics).
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// CopyFrom overwrites b's contents with src's. Both sets must have been
// sized for the same universe; checkpoint restore relies on this being a
// single word copy.
func (b *Bitset) CopyFrom(src Bitset) {
	copy(b.words, src.words)
}

// Clone returns an independent copy of the set.
func (b *Bitset) Clone() Bitset {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return Bitset{words: words}
}

// NextSet returns the position of the first set bit at or after from in
// words, or -1 when none remains. It is the shared building block of the
// arbitration and scheduling kernels: circular round-robin scans call it
// twice (once from the cursor, once from zero) instead of walking
// per-object state.
//
//hetpnoc:hotpath
func NextSet(words []uint64, from int) int {
	// The unsigned compare also rejects a negative from, so the first-word
	// access below needs no bounds check even when inlined into a caller's
	// scan loop.
	w := from >> 6
	if uint(w) >= uint(len(words)) {
		return -1
	}
	if word := words[w] &^ (1<<(uint(from)&63) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	for w++; w < len(words); w++ {
		if words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(words[w])
		}
	}
	return -1
}
