package sim

// Bitset is a fixed-size set of small integers, used by the fabric to
// track which components (routers, cores, transmit engines) currently
// have work. Words are exposed so the per-cycle scheduler can iterate
// set bits without allocating.
type Bitset struct {
	words []uint64
}

// NewBitset returns an empty set able to hold values in [0, n).
func NewBitset(n int) Bitset {
	return Bitset{words: make([]uint64, (n+63)/64)}
}

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether i is in the set.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Words returns the live backing words, least-significant bit first.
// Callers iterate set bits with math/bits.TrailingZeros64; mutating the
// set invalidates nothing, but bits set after a word was read are only
// observed on the next pass.
func (b *Bitset) Words() []uint64 { return b.words }

// Count returns the number of set bits (diagnostics).
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
