package sim

import (
	"math/bits"
	"testing"
)

func TestBitsetSetClearGet(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in empty bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if !b.Get(63) || !b.Get(65) {
		// neighbours must be untouched
		t.Fatal("Clear disturbed neighbouring bits")
	}
	if got := b.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
}

func TestBitsetIterationOrder(t *testing.T) {
	b := NewBitset(200)
	want := []int{3, 64, 70, 130, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	for w, word := range b.Words() {
		for ; word != 0; word &= word - 1 {
			got = append(got, w<<6+bits.TrailingZeros64(word))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
}
