package sim

import "time"

// Cycle is a simulation clock tick. Cycle 0 is the first cycle of a run.
type Cycle int64

// Clock converts between cycles and wall-clock quantities for a fixed
// operating frequency. The thesis fixes the NoC clock at 2.5 GHz
// (Table 3-3), i.e. a 400 ps cycle.
type Clock struct {
	// FrequencyHz is the clock frequency in Hertz.
	FrequencyHz float64
}

// DefaultClock is the 2.5 GHz clock used throughout the thesis.
func DefaultClock() Clock {
	return Clock{FrequencyHz: 2.5e9}
}

// PeriodSeconds returns the duration of one cycle in seconds.
func (c Clock) PeriodSeconds() float64 {
	return 1.0 / c.FrequencyHz
}

// Period returns the duration of one cycle.
func (c Clock) Period() time.Duration {
	return time.Duration(float64(time.Second) / c.FrequencyHz)
}

// Seconds returns the wall-clock time spanned by n cycles.
func (c Clock) Seconds(n Cycle) float64 {
	return float64(n) / c.FrequencyHz
}

// GbpsToBitsPerCycle converts a bandwidth in Gb/s to bits per cycle at
// this clock. At 2.5 GHz one 12.5 Gb/s wavelength carries exactly 5 bits
// per cycle.
func (c Clock) GbpsToBitsPerCycle(gbps float64) float64 {
	return gbps * 1e9 / c.FrequencyHz
}

// BitsPerCycleToGbps converts a per-cycle bit rate back to Gb/s.
func (c Clock) BitsPerCycleToGbps(bitsPerCycle float64) float64 {
	return bitsPerCycle * c.FrequencyHz / 1e9
}
