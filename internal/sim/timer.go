package sim

import "container/heap"

// TimerWheel schedules callbacks to run at future cycles. The fabric uses
// it for retransmission back-off and mid-run task remaps. Callbacks fire
// in cycle order; callbacks scheduled for the same cycle fire in the
// order they were registered, which keeps runs deterministic.
type TimerWheel struct {
	queue timerQueue
	seq   uint64
}

// NewTimerWheel returns an empty wheel.
func NewTimerWheel() *TimerWheel {
	return &TimerWheel{}
}

type timerEntry struct {
	at  Cycle
	seq uint64
	fn  func(Cycle)
}

type timerQueue []timerEntry

func (q timerQueue) Len() int { return len(q) }

func (q timerQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q timerQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *timerQueue) Push(x any) {
	entry, ok := x.(timerEntry)
	if !ok {
		panic("sim: timerQueue.Push called with non-timerEntry")
	}
	*q = append(*q, entry)
}

func (q *timerQueue) Pop() any {
	old := *q
	n := len(old)
	entry := old[n-1]
	*q = old[:n-1]
	return entry
}

// Schedule registers fn to run when the clock reaches cycle at. Scheduling
// in the past (at <= the cycle passed to the next Fire) fires on that next
// Fire call.
func (w *TimerWheel) Schedule(at Cycle, fn func(Cycle)) {
	heap.Push(&w.queue, timerEntry{at: at, seq: w.seq, fn: fn})
	w.seq++
}

// Fire runs every callback scheduled at or before now, in order.
func (w *TimerWheel) Fire(now Cycle) {
	for w.queue.Len() > 0 && w.queue[0].at <= now {
		entry, ok := heap.Pop(&w.queue).(timerEntry)
		if !ok {
			panic("sim: timerQueue.Pop returned non-timerEntry")
		}
		entry.fn(now)
	}
}

// Pending returns the number of callbacks not yet fired.
func (w *TimerWheel) Pending() int {
	return w.queue.Len()
}

// TimerWheelSnapshot is a checkpoint of the wheel's pending callbacks.
// The closures themselves are shared with the live wheel — a checkpoint
// cannot introspect them — so restored callbacks only replay
// deterministically when every piece of state they capture is restored
// alongside the wheel (the fabric checkpoint guarantees this).
type TimerWheelSnapshot struct {
	queue timerQueue
	seq   uint64
}

// Snapshot copies the pending queue. The copy preserves the heap order,
// so Restore needs no re-heapify.
func (w *TimerWheel) Snapshot() *TimerWheelSnapshot {
	return &TimerWheelSnapshot{
		queue: append(timerQueue(nil), w.queue...),
		seq:   w.seq,
	}
}

// Restore rewinds the wheel to a snapshot. The snapshot stays intact, so
// the same checkpoint can be restored repeatedly.
func (w *TimerWheel) Restore(s *TimerWheelSnapshot) {
	w.queue = append(w.queue[:0], s.queue...)
	w.seq = s.seq
}
