package fabric

import (
	"testing"

	"hetpnoc/internal/traffic"
)

// TestSmokeUniformDelivery runs a short uniform-traffic simulation for
// both architectures and checks that traffic actually flows.
func TestSmokeUniformDelivery(t *testing.T) {
	for _, arch := range []Arch{Firefly, DHetPNoC} {
		t.Run(arch.String(), func(t *testing.T) {
			f, err := New(Config{
				Arch:         arch,
				Set:          traffic.BWSet1,
				Pattern:      traffic.Uniform{},
				Cycles:       3000,
				WarmupCycles: 500,
				Seed:         42,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res, err := f.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			t.Logf("%s: delivered %d pkts, %.1f Gb/s (offered %.1f), EPM %.1f pJ, drops %d, lat %.1f cyc, alloc %v",
				arch, res.Stats.PacketsDelivered, res.Stats.DeliveredGbps, res.OfferedGbps,
				res.EnergyPerMessagePJ, res.Stats.PacketsDroppedRX, res.Stats.AvgLatencyCycles,
				res.AllocatedWavelengths)
			if res.Stats.PacketsDelivered == 0 {
				t.Fatalf("no packets delivered")
			}
			if res.Stats.DeliveredGbps <= 0 {
				t.Fatalf("no bandwidth delivered")
			}
		})
	}
}
