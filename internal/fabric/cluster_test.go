package fabric

import (
	"testing"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/traffic"
)

// buildTestFabric constructs (but does not run) a fabric.
func buildTestFabric(t *testing.T, intra IntraCluster) *Fabric {
	t.Helper()
	f, err := New(Config{
		Arch:         DHetPNoC,
		Pattern:      traffic.Uniform{},
		IntraCluster: intra,
		Cycles:       100, WarmupCycles: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAllToAllClusterShape(t *testing.T) {
	f := buildTestFabric(t, AllToAll)
	if len(f.clusters) != 16 {
		t.Fatalf("%d clusters, want 16", len(f.clusters))
	}
	for cl, c := range f.clusters {
		// One switch per core plus the photonic router.
		if len(c.switches) != 4 {
			t.Fatalf("cluster %d has %d switches, want 4", cl, len(c.switches))
		}
		// Each core switch: eject + 3 peers + photonic router = 5 outputs.
		for i, sw := range c.switches {
			if got := sw.Outputs(); got != 5 {
				t.Fatalf("cluster %d switch %d has %d outputs, want 5", cl, i, got)
			}
		}
		// Photonic router: 4 local + transmit = 5 outputs.
		if got := c.photonic.Outputs(); got != 5 {
			t.Fatalf("cluster %d photonic router has %d outputs, want 5", cl, got)
		}
		if c.txPort == nil {
			t.Fatalf("cluster %d has no transmit port", cl)
		}
	}
	// 64 core switches + 16 photonic routers tick each cycle.
	if got := len(f.routers); got != 80 {
		t.Fatalf("%d routers, want 80", got)
	}
}

func TestConcentratedClusterShape(t *testing.T) {
	f := buildTestFabric(t, Concentrated)
	for cl, c := range f.clusters {
		if len(c.switches) != 1 {
			t.Fatalf("cluster %d has %d switches, want 1 concentrated", cl, len(c.switches))
		}
		// 4 ejects + photonic router = 5 outputs.
		if got := c.switches[0].Outputs(); got != 5 {
			t.Fatalf("cluster %d switch has %d outputs, want 5", cl, got)
		}
		// Photonic router: to switch + transmit = 2 outputs.
		if got := c.photonic.Outputs(); got != 2 {
			t.Fatalf("cluster %d photonic router has %d outputs, want 2", cl, got)
		}
	}
	if got := len(f.routers); got != 32 {
		t.Fatalf("%d routers, want 32 (16 switches + 16 photonic)", got)
	}
}

func TestEveryCoreHasPorts(t *testing.T) {
	for _, intra := range []IntraCluster{AllToAll, Concentrated} {
		f := buildTestFabric(t, intra)
		for c, cs := range f.cores {
			if cs.injectPort == nil || cs.ejectPort == nil {
				t.Fatalf("%v: core %d missing ports", intra, c)
			}
			if cs.source == nil {
				t.Fatalf("%v: core %d has no traffic source", intra, c)
			}
		}
	}
}

// TestPeerLinksCarryTraffic drives one packet core 0 -> core 3 (same
// cluster) through the all-to-all peer wiring and watches it arrive
// without touching the photonic channels.
func TestPeerLinksCarryTraffic(t *testing.T) {
	topo := Config{}.WithDefaults().Topology
	silent := traffic.Assignment{Name: "silent", Cores: make([]traffic.CoreProfile, topo.Cores())}
	f, err := New(Config{
		Arch:    DHetPNoC,
		Pattern: traffic.Fixed{Assignment: silent},
		Cycles:  300, WarmupCycles: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Craft a same-cluster packet and place it in core 0's queue.
	f.pktIDs++
	f.msgIDs++
	pkt := &packet.Packet{
		ID: f.pktIDs, Message: f.msgIDs,
		Src: 0, Dst: 3, SrcCluster: 0, DstCluster: 0,
		Flits: 8, FlitBits: 32, Attempt: 1,
	}
	f.enqueueAtSource(0, pkt)

	for i := 0; i < 200; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.DeliveredPackets(); got != 1 {
		t.Fatalf("delivered %d packets, want the peer packet", got)
	}
	// Nothing photonic was involved.
	for cl, tx := range f.txs {
		if tx.BusyCycles() != 0 {
			t.Fatalf("cluster %d photonic channel busy for an intra-cluster packet", cl)
		}
	}
}
