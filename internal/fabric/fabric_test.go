package fabric

import (
	"math"
	"testing"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/traffic"
	"hetpnoc/internal/units"
)

func runConfig(t *testing.T, cfg Config) Result {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.Cycles != 10000 || cfg.WarmupCycles != 1000 {
		t.Errorf("default run length %d/%d, Table 3-3 says 10000/1000", cfg.Cycles, cfg.WarmupCycles)
	}
	if cfg.VCsPerPort != 16 || cfg.BufferDepthFlits != 64 {
		t.Errorf("default router memory %d VCs x %d flits, Table 3-3 says 16x64", cfg.VCsPerPort, cfg.BufferDepthFlits)
	}
	if cfg.Topology.Cores() != 64 {
		t.Errorf("default topology has %d cores", cfg.Topology.Cores())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	base := Config{}.WithDefaults()

	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad arch", func(c *Config) { c.Arch = 99 }},
		{"nil pattern", func(c *Config) { c.Pattern = nil }},
		{"negative load", func(c *Config) { c.LoadScale = -1 }},
		{"warmup >= cycles", func(c *Config) { c.WarmupCycles = c.Cycles }},
		{"buffer below packet", func(c *Config) { c.BufferDepthFlits = 8 }}, // BW1 packets are 64 flits
		{"zero eject", func(c *Config) { c.EjectWidth = -1 }},
		{"bad intra", func(c *Config) { c.IntraCluster = 99 }},
		{"remap without pattern", func(c *Config) { c.Remaps = []Remap{{At: 100}} }},
	}
	for _, tt := range tests {
		cfg := base
		tt.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s passed validation", tt.name)
		}
	}
}

// TestDeterminism: identical seeds give bit-identical results; different
// seeds differ.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Arch:    DHetPNoC,
		Pattern: traffic.Skewed{Level: 2},
		Cycles:  3000, WarmupCycles: 500, Seed: 77,
	}
	a := runConfig(t, cfg)
	b := runConfig(t, cfg)
	if a.Stats.BitsDelivered != b.Stats.BitsDelivered ||
		a.Stats.PacketsDelivered != b.Stats.PacketsDelivered ||
		a.EnergyTotalPJ != b.EnergyTotalPJ ||
		a.Stats.AvgLatencyCycles != b.Stats.AvgLatencyCycles {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a.Stats, b.Stats)
	}

	cfg.Seed = 78
	c := runConfig(t, cfg)
	if a.Stats.BitsDelivered == c.Stats.BitsDelivered && a.EnergyTotalPJ == c.EnergyTotalPJ {
		t.Fatal("different seeds produced identical results")
	}
}

// TestUniformEquivalence: under uniform-random traffic the two
// architectures configure identically and deliver identical bandwidth —
// the thesis's §3.4.1.1 equality.
func TestUniformEquivalence(t *testing.T) {
	mk := func(arch Arch) Result {
		return runConfig(t, Config{
			Arch: arch, Pattern: traffic.Uniform{},
			Cycles: 3000, WarmupCycles: 500, Seed: 5,
		})
	}
	ff := mk(Firefly)
	dh := mk(DHetPNoC)
	if ff.Stats.BitsDelivered != dh.Stats.BitsDelivered {
		t.Fatalf("uniform traffic: Firefly delivered %d bits, d-HetPNoC %d",
			ff.Stats.BitsDelivered, dh.Stats.BitsDelivered)
	}
	// Both allocate 4 wavelengths per cluster (Table 3-3, BW set 1).
	for cl, n := range dh.AllocatedWavelengths {
		if n != 4 {
			t.Fatalf("d-HetPNoC cluster %d holds %d wavelengths under uniform traffic, want 4", cl, n)
		}
		if ff.AllocatedWavelengths[cl] != 4 {
			t.Fatalf("Firefly cluster %d holds %d wavelengths, want 4", cl, ff.AllocatedWavelengths[cl])
		}
	}
}

// TestSkewedAdvantage is the headline result (Figures 3-3/3-4): under
// skewed traffic d-HetPNoC delivers more bandwidth at lower energy per
// message than Firefly, and its allocation is demand-shaped.
func TestSkewedAdvantage(t *testing.T) {
	for _, level := range []int{1, 2, 3} {
		mk := func(arch Arch) Result {
			return runConfig(t, Config{
				Arch: arch, Pattern: traffic.Skewed{Level: level},
				Cycles: 4000, WarmupCycles: 800, Seed: 5,
			})
		}
		ff := mk(Firefly)
		dh := mk(DHetPNoC)
		if dh.Stats.DeliveredGbps <= ff.Stats.DeliveredGbps {
			t.Errorf("skewed%d: d-HetPNoC %.1f Gb/s not above Firefly %.1f",
				level, dh.Stats.DeliveredGbps, ff.Stats.DeliveredGbps)
		}
		if dh.EnergyPerMessagePJ >= ff.EnergyPerMessagePJ {
			t.Errorf("skewed%d: d-HetPNoC EPM %.1f not below Firefly %.1f",
				level, dh.EnergyPerMessagePJ, ff.EnergyPerMessagePJ)
		}
		// The allocation must be heterogeneous: some cluster above the
		// uniform share, some at the reserved minimum.
		minA, maxA := 64, 0
		for _, n := range dh.AllocatedWavelengths {
			if n < minA {
				minA = n
			}
			if n > maxA {
				maxA = n
			}
		}
		if maxA <= 4 || minA >= 4 {
			t.Errorf("skewed%d: allocation %v not demand-shaped", level, dh.AllocatedWavelengths)
		}
	}
}

// TestLowLoadDeliversEverything: with light offered load nothing is
// rejected or dropped, and almost everything in flight drains.
func TestLowLoadDeliversEverything(t *testing.T) {
	res := runConfig(t, Config{
		Arch: DHetPNoC, Pattern: traffic.Uniform{}, LoadScale: 0.3,
		Cycles: 12000, WarmupCycles: 1000, Seed: 3,
	})
	if res.Stats.PacketsRejected != 0 {
		t.Fatalf("%d rejections at 30%% load", res.Stats.PacketsRejected)
	}
	if res.Stats.PacketsDroppedRX != 0 {
		t.Fatalf("%d drops at 30%% load", res.Stats.PacketsDroppedRX)
	}
	if res.Stats.PacketsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	ratio := float64(res.Stats.PacketsDelivered) / float64(res.Stats.PacketsInjected)
	if ratio < 0.95 {
		t.Fatalf("delivered/injected = %.3f at light load", ratio)
	}
	// Delivered rate tracks offered rate (a few packets remain in flight
	// at the cut-off, so allow per-packet granularity slack).
	if math.Abs(float64(res.Stats.DeliveredGbps-res.OfferedGbps))/float64(res.OfferedGbps) > 0.07 {
		t.Fatalf("delivered %.1f vs offered %.1f at light load",
			res.Stats.DeliveredGbps, res.OfferedGbps)
	}
}

// TestIntraClusterTraffic: destinations inside the source cluster travel
// the electrical network only — the photonic channels stay idle.
func TestIntraClusterTraffic(t *testing.T) {
	topo := topology.Default()
	cores := make([]traffic.CoreProfile, topo.Cores())
	for c := range cores {
		c := c
		src := topology.CoreID(c)
		cores[c] = traffic.CoreProfile{
			RateGbps:   10,
			DemandGbps: 40,
			PickDest: func(rng *sim.RNG) topology.CoreID {
				cl := topo.ClusterOf(src)
				for {
					dst := topo.CoreAt(cl, rng.Intn(topo.ClusterSize()))
					if dst != src {
						return dst
					}
				}
			},
		}
	}
	res := runConfig(t, Config{
		Arch:    DHetPNoC,
		Pattern: traffic.Fixed{Assignment: traffic.Assignment{Name: "intra", Cores: cores}},
		Cycles:  3000, WarmupCycles: 500, Seed: 9,
	})
	if res.Stats.PacketsDelivered == 0 {
		t.Fatal("no intra-cluster packets delivered")
	}
	for cl, busy := range res.ChannelBusyFraction {
		if busy != 0 {
			t.Fatalf("photonic channel %d busy %.3f under intra-cluster-only traffic", cl, busy)
		}
	}
}

// TestDropAndRetransmitUnderReceiverPressure: with very few receive VCs
// and a strong hotspot, receiver-side drops occur and retransmissions
// recover messages (§1.4).
func TestDropAndRetransmitUnderReceiverPressure(t *testing.T) {
	res := runConfig(t, Config{
		Arch:       DHetPNoC,
		Pattern:    traffic.SkewedHotspot{Index: 4, HotFraction: 0.5, BaseLevel: 3},
		VCsPerPort: 2, // 2 VCs: at most 2 concurrent inbound packets per cluster
		LoadScale:  1.5,
		Cycles:     6000, WarmupCycles: 1000, Seed: 11,
	})
	if res.Stats.PacketsDroppedRX == 0 {
		t.Fatal("no receiver drops under extreme hotspot pressure with 2 VCs")
	}
	if res.Stats.Retransmissions == 0 {
		t.Fatal("drops occurred but nothing was retransmitted")
	}
	if res.Stats.PacketsDelivered == 0 {
		t.Fatal("network collapsed entirely")
	}
}

// TestRemapReshapesAllocation: a mid-run task change makes the DBA move
// wavelengths (§3.2: "whenever there is a change in the task mapping").
func TestRemapReshapesAllocation(t *testing.T) {
	res := runConfig(t, Config{
		Arch:    DHetPNoC,
		Pattern: traffic.Uniform{},
		Remaps:  []Remap{{At: 2000, Pattern: traffic.Skewed{Level: 3}}},
		Cycles:  6000, WarmupCycles: 500, Seed: 13,
	})
	uniform := true
	for _, n := range res.AllocatedWavelengths {
		if n != res.AllocatedWavelengths[0] {
			uniform = false
		}
	}
	if uniform {
		t.Fatalf("allocation %v still uniform after remap to skewed 3", res.AllocatedWavelengths)
	}
}

// TestTorusArchitecture: the related-work circuit-switched torus delivers
// traffic end to end, experiences setup blocking under load, and releases
// every circuit.
func TestTorusArchitecture(t *testing.T) {
	res := runConfig(t, Config{
		Arch: TorusPNoC, Pattern: traffic.Skewed{Level: 2},
		Cycles: 5000, WarmupCycles: 1000, Seed: 23,
	})
	if res.Stats.PacketsDelivered == 0 {
		t.Fatal("torus delivered nothing")
	}
	if res.TorusPathsSetUp == 0 {
		t.Fatal("no circuits established")
	}
	if res.TorusSetupsBlocked == 0 {
		t.Fatal("no setup blocking under saturated skewed traffic — the blocking routers should contend")
	}
	if res.Arch != "torus-pnoc" {
		t.Fatalf("result says arch %q", res.Arch)
	}
	// Crossbar channel stats do not apply.
	for _, busy := range res.ChannelBusyFraction {
		if busy != 0 {
			t.Fatal("crossbar busy stats populated for the torus")
		}
	}
}

// TestTorusNeighborHasNoBlocking: the neighbor permutation gives every
// source a disjoint single-hop circuit, so the blocking torus sets up
// every path without contention — spatial reuse the crossbars lack.
func TestTorusNeighborHasNoBlocking(t *testing.T) {
	res := runConfig(t, Config{
		Arch:    TorusPNoC,
		Pattern: traffic.Permutation{Kind: traffic.Neighbor},
		Cycles:  4000, WarmupCycles: 800, Seed: 37,
	})
	if res.Stats.PacketsDelivered == 0 {
		t.Fatal("neighbor traffic delivered nothing on the torus")
	}
	if res.TorusSetupsBlocked != 0 {
		t.Fatalf("%d setups blocked under disjoint neighbor circuits", res.TorusSetupsBlocked)
	}
}

// TestConcentratedIntraCluster: the Firefly-style concentrated switch
// works end to end.
func TestConcentratedIntraCluster(t *testing.T) {
	res := runConfig(t, Config{
		Arch: Firefly, Pattern: traffic.Uniform{}, IntraCluster: Concentrated,
		Cycles: 3000, WarmupCycles: 500, Seed: 15,
	})
	if res.Stats.PacketsDelivered == 0 {
		t.Fatal("concentrated topology delivered nothing")
	}
	if res.IntraCluster != "concentrated" {
		t.Fatalf("result says intra-cluster %q", res.IntraCluster)
	}
}

// TestAlternativeTopologies: the fabric is parameterized by topology, not
// hardwired to the thesis's 64-core chip.
func TestAlternativeTopologies(t *testing.T) {
	tests := []struct {
		cores, clusterSize int
	}{
		{16, 4},  // 4 clusters
		{32, 4},  // 8 clusters
		{128, 4}, // 32 clusters (2 wavelengths per Firefly channel)
		{64, 8},  // 8 clusters of 8 cores
	}
	for _, tt := range tests {
		topo, err := topology.New(tt.cores, tt.clusterSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, arch := range []Arch{Firefly, DHetPNoC} {
			res := runConfig(t, Config{
				Topology: topo,
				Arch:     arch,
				Pattern:  traffic.Uniform{},
				Cycles:   2500, WarmupCycles: 500, Seed: 41,
			})
			if res.Stats.PacketsDelivered == 0 {
				t.Fatalf("%d cores / %d per cluster / %s: nothing delivered",
					tt.cores, tt.clusterSize, arch)
			}
		}
	}
}

func TestMeasurementWindow(t *testing.T) {
	res := runConfig(t, Config{
		Arch: Firefly, Pattern: traffic.Uniform{},
		Cycles: 3000, WarmupCycles: 700, Seed: 1,
	})
	if got := res.Stats.MeasuredCycles; int(got) != 2300 {
		t.Fatalf("measured %d cycles, want 2300", got)
	}
}

// TestLatencyIsPhysical: end-to-end latency can never be below the
// minimum pipeline path (inject + 2 electrical hops + reservation +
// serialization).
func TestLatencyIsPhysical(t *testing.T) {
	res := runConfig(t, Config{
		Arch: DHetPNoC, Pattern: traffic.Uniform{}, LoadScale: 0.3,
		Cycles: 9000, WarmupCycles: 1000, Seed: 17,
	})
	if res.Stats.PacketsDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	// BW1 at uniform: 4 wavelengths = 20 bits/cycle; 2048-bit packets
	// need ~103 cycles of serialization alone.
	if res.Stats.AvgLatencyCycles < 103 {
		t.Fatalf("avg latency %.1f cycles below the serialization bound", res.Stats.AvgLatencyCycles)
	}
}

func TestEnergyBreakdownConsistent(t *testing.T) {
	res := runConfig(t, Config{
		Arch: DHetPNoC, Pattern: traffic.Skewed{Level: 2},
		Cycles: 3000, WarmupCycles: 500, Seed: 19,
	})
	var sum units.Picojoule
	//hetpnoc:orderfree floating-point sum of a few components, compared with a relative tolerance
	for _, v := range res.EnergyBreakdownPJ {
		sum += v
	}
	if math.Abs(float64(sum-res.EnergyTotalPJ))/float64(res.EnergyTotalPJ) > 1e-9 {
		t.Fatalf("breakdown sums to %.1f, total is %.1f", sum, res.EnergyTotalPJ)
	}
	if math.Abs(float64(res.EnergyPhotonicPJ+res.EnergyElectricalPJ-res.EnergyTotalPJ))/float64(res.EnergyTotalPJ) > 1e-9 {
		t.Fatal("photonic + electrical != total")
	}
	if res.EnergyPerMessagePJ <= 0 {
		t.Fatal("EPM not positive")
	}
}

// TestTokenRotatesContinuously: the token keeps circulating for the whole
// run (one rotation per 16 transit hops).
func TestTokenRotatesContinuously(t *testing.T) {
	res := runConfig(t, Config{
		Arch: DHetPNoC, Pattern: traffic.Uniform{},
		Cycles: 3200, WarmupCycles: 500, Seed: 21,
	})
	if res.TokenRotations < 190 || res.TokenRotations > 200 {
		t.Fatalf("token rotated %d times in 3200 cycles, want ~200", res.TokenRotations)
	}
}
