package fabric

import (
	"testing"

	"hetpnoc/internal/event"
	"hetpnoc/internal/traffic"
)

// TestEventLogCapturesFullProtocol runs with the event log enabled and
// checks every event class the crossbar protocol can produce appears.
func TestEventLogCapturesFullProtocol(t *testing.T) {
	f, err := New(Config{
		Arch:          DHetPNoC,
		Pattern:       traffic.Skewed{Level: 3},
		Remaps:        []Remap{{At: 1500, Pattern: traffic.Uniform{}}},
		EventCapacity: 1 << 16,
		Cycles:        3000, WarmupCycles: 500, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	log := f.Events()
	if log == nil {
		t.Fatal("event log not enabled")
	}
	for _, kind := range []event.Kind{
		event.ReservationSent, event.StreamStarted, event.PacketArrived,
		event.PacketDelivered, event.AllocationChanged, event.TaskRemap,
	} {
		if len(log.OfKind(kind)) == 0 {
			t.Errorf("no %v events captured", kind)
		}
	}
	// Causality: the first stream start cannot precede the first
	// reservation.
	res := log.OfKind(event.ReservationSent)
	streams := log.OfKind(event.StreamStarted)
	if streams[0].Cycle < res[0].Cycle {
		t.Fatalf("stream at cycle %d before first reservation at %d",
			streams[0].Cycle, res[0].Cycle)
	}
}

// TestTorusEventLog: the torus transport emits its own protocol events.
func TestTorusEventLog(t *testing.T) {
	f, err := New(Config{
		Arch:          TorusPNoC,
		Pattern:       traffic.Skewed{Level: 2},
		EventCapacity: 1 << 14,
		Cycles:        2500, WarmupCycles: 500, Seed: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	log := f.Events()
	setups := log.OfKind(event.ReservationSent)
	if len(setups) == 0 {
		t.Fatal("no torus setup events")
	}
	if len(log.OfKind(event.StreamStarted)) == 0 {
		t.Fatal("no torus stream events")
	}
}

// TestEventLogDisabledByDefault: without EventCapacity the log is nil and
// everything still runs (the nil-log fast path).
func TestEventLogDisabledByDefault(t *testing.T) {
	f, err := New(Config{
		Arch: DHetPNoC, Pattern: traffic.Uniform{},
		Cycles: 1200, WarmupCycles: 200, Seed: 47,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Events() != nil {
		t.Fatal("event log enabled without capacity")
	}
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestEventLogDoesNotPerturbResults: enabling the log must not change the
// simulation's physics.
func TestEventLogDoesNotPerturbResults(t *testing.T) {
	base := runConfig(t, Config{
		Arch: DHetPNoC, Pattern: traffic.Skewed{Level: 2},
		Cycles: 2000, WarmupCycles: 400, Seed: 49,
	})
	logged := runConfig(t, Config{
		Arch: DHetPNoC, Pattern: traffic.Skewed{Level: 2},
		EventCapacity: 1 << 14,
		Cycles:        2000, WarmupCycles: 400, Seed: 49,
	})
	if base.Stats.BitsDelivered != logged.Stats.BitsDelivered ||
		base.EnergyTotalPJ != logged.EnergyTotalPJ {
		t.Fatal("event logging changed the simulation results")
	}
}
