// Package fabric assembles the complete chip: traffic sources, the
// intra-cluster electrical network, the photonic routers, the R-SWMR
// crossbar engines and the wavelength allocation policy, and runs the
// cycle-accurate simulation loop. One fabric type realizes both evaluated
// architectures — the crossbar-based Firefly baseline and d-HetPNoC — via
// the allocation policy and demodulator gating mode, matching the thesis's
// observation that under uniform traffic "they are practically the same
// architecture" (§3.4.1.2).
package fabric

import (
	"fmt"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/traffic"
)

// Arch selects the evaluated architecture.
type Arch int

// Architectures.
const (
	// Firefly is the baseline: uniform static wavelength allocation,
	// full-channel demodulator gating (§2.2.1).
	Firefly Arch = iota + 1
	// DHetPNoC is the proposed architecture: token-passing dynamic
	// bandwidth allocation with selective demodulator gating (Ch. 3).
	DHetPNoC
	// TorusPNoC is the related-work baseline of §2.1.3 [15]: a
	// circuit-switched photonic 2D folded torus with PSE-based blocking
	// routers and an electronic path-setup network.
	TorusPNoC
)

// String returns the architecture name.
func (a Arch) String() string {
	switch a {
	case Firefly:
		return "firefly"
	case DHetPNoC:
		return "d-hetpnoc"
	case TorusPNoC:
		return "torus-pnoc"
	default:
		return "unknown"
	}
}

// IntraCluster selects the electrical network inside each cluster.
type IntraCluster int

// Intra-cluster topologies.
const (
	// AllToAll wires the cluster's cores pairwise and each to the
	// photonic router — the d-HetPNoC configuration of §3.1.
	AllToAll IntraCluster = iota + 1
	// Concentrated shares a single electrical switch among the
	// cluster's cores, as in Firefly's concentrated nodes [20].
	Concentrated
)

// String returns the topology name.
func (t IntraCluster) String() string {
	switch t {
	case AllToAll:
		return "all-to-all"
	case Concentrated:
		return "concentrated"
	default:
		return "unknown"
	}
}

// Remap schedules a mid-run change of the task mapping: at cycle At the
// workload is re-assigned from Pattern and every core re-reports its
// demand table, exercising the DBA reconfiguration path (§3.2).
type Remap struct {
	At      sim.Cycle
	Pattern traffic.Pattern
}

// Config parameterizes one simulation run. Zero fields are filled with the
// Table 3-3 defaults by WithDefaults.
type Config struct {
	Topology topology.Topology
	Set      traffic.BandwidthSet
	Arch     Arch
	Pattern  traffic.Pattern

	// LoadScale multiplies every source's offered rate; the peak
	// bandwidth experiments sweep it to find network saturation.
	LoadScale float64

	// Cycles is the total simulated length; WarmupCycles at the start
	// are excluded from measurements (Table 3-3: 10,000 and 1,000).
	Cycles       int
	WarmupCycles int

	Seed uint64

	// Router provisioning (Table 3-3: 16 VCs/port, 64-flit buffers).
	VCsPerPort       int
	BufferDepthFlits int

	// SourceQueueLimit bounds each core's injection queue; packets
	// offered beyond it are rejected (standard saturation-measurement
	// practice).
	SourceQueueLimit int

	// MaxRetries and RetryBackoffCycles govern retransmission of packets
	// dropped at a receiver with no free VC (§1.4).
	MaxRetries         int
	RetryBackoffCycles int

	// EjectWidth is the flits per cycle a core consumes.
	EjectWidth int

	IntraCluster IntraCluster

	Energy photonic.EnergyParams

	// ReservedPerCluster is the DBA minimum guarantee (d-HetPNoC only).
	ReservedPerCluster int

	// MaxAcquirePerVisit bounds the DBA's per-token-visit acquisition
	// (d-HetPNoC only; 0 = the allocator default).
	MaxAcquirePerVisit int

	// ProportionalDBA selects the demand-proportional allocation policy
	// instead of the thesis's greedy §3.2.1 rule (d-HetPNoC only) — the
	// repository's take on the thesis's stated future work.
	ProportionalDBA bool

	// WaveguidesPerCluster enables the thesis's Chapter 4 area
	// mitigation: restrict each photonic router's modulators to this
	// many waveguides starting at its home waveguide (d-HetPNoC only;
	// 0 = unrestricted).
	WaveguidesPerCluster int

	// DisableReservationPipelining serializes reservations behind data
	// transfers, for the ablation study.
	DisableReservationPipelining bool

	// EventCapacity, when positive, enables the protocol event log with
	// that retention bound (most recent events kept).
	EventCapacity int

	Remaps []Remap
}

// WithDefaults returns the config with unset fields filled from Table 3-3
// and the implementation defaults documented in DESIGN.md.
func (c Config) WithDefaults() Config {
	if c.Topology.Cores() == 0 {
		c.Topology = topology.Default()
	}
	if c.Set.Name == "" {
		c.Set = traffic.BWSet1
	}
	if c.Arch == 0 {
		c.Arch = DHetPNoC
	}
	if c.Pattern == nil {
		c.Pattern = traffic.Uniform{}
	}
	if c.LoadScale == 0 {
		c.LoadScale = 1.0
	}
	if c.Cycles == 0 {
		c.Cycles = 10000
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.VCsPerPort == 0 {
		c.VCsPerPort = 16
	}
	if c.BufferDepthFlits == 0 {
		c.BufferDepthFlits = 64
	}
	if c.SourceQueueLimit == 0 {
		c.SourceQueueLimit = 16
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.RetryBackoffCycles == 0 {
		c.RetryBackoffCycles = 64
	}
	if c.EjectWidth == 0 {
		c.EjectWidth = 2
	}
	if c.IntraCluster == 0 {
		c.IntraCluster = AllToAll
	}
	if c.Energy == (photonic.EnergyParams{}) {
		c.Energy = photonic.DefaultEnergyParams()
	}
	if c.ReservedPerCluster == 0 {
		c.ReservedPerCluster = 1
	}
	return c
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if err := c.Set.Validate(); err != nil {
		return err
	}
	if c.Arch != Firefly && c.Arch != DHetPNoC && c.Arch != TorusPNoC {
		return fmt.Errorf("fabric: unknown architecture %d", c.Arch)
	}
	if c.Pattern == nil {
		return fmt.Errorf("fabric: no traffic pattern")
	}
	if c.LoadScale < 0 {
		return fmt.Errorf("fabric: negative load scale %g", c.LoadScale)
	}
	if c.Cycles <= 0 || c.WarmupCycles < 0 || c.WarmupCycles >= c.Cycles {
		return fmt.Errorf("fabric: cycles %d / warm-up %d invalid", c.Cycles, c.WarmupCycles)
	}
	if c.VCsPerPort <= 0 || c.BufferDepthFlits <= 0 {
		return fmt.Errorf("fabric: VC count and buffer depth must be positive")
	}
	if c.BufferDepthFlits < c.Set.Format.Flits {
		return fmt.Errorf("fabric: buffer depth %d flits cannot hold one %d-flit packet",
			c.BufferDepthFlits, c.Set.Format.Flits)
	}
	if c.SourceQueueLimit <= 0 || c.MaxRetries < 0 || c.RetryBackoffCycles <= 0 || c.EjectWidth <= 0 {
		return fmt.Errorf("fabric: queue/retry/eject parameters must be positive")
	}
	if c.IntraCluster != AllToAll && c.IntraCluster != Concentrated {
		return fmt.Errorf("fabric: unknown intra-cluster topology %d", c.IntraCluster)
	}
	if c.Set.TotalWavelengths%c.Topology.Clusters() != 0 && c.Arch == Firefly {
		return fmt.Errorf("fabric: %d wavelengths do not divide over %d Firefly channels",
			c.Set.TotalWavelengths, c.Topology.Clusters())
	}
	for _, r := range c.Remaps {
		if r.Pattern == nil {
			return fmt.Errorf("fabric: remap at cycle %d has no pattern", r.At)
		}
	}
	return nil
}
