// Command goldengen regenerates the golden values pinned by
// internal/fabric/golden_test.go: the headline Result fields of six short
// reference runs (three architectures x two traffic patterns at bandwidth
// set 1, seed 1). Run it only when an intentional behaviour change makes
// the recorded values obsolete, and paste its output over the goldenCases
// table:
//
//	go run ./internal/fabric/goldengen
package main

import (
	"fmt"
	"strconv"

	"hetpnoc/internal/fabric"
	"hetpnoc/internal/traffic"
)

func main() {
	for _, arch := range []fabric.Arch{fabric.Firefly, fabric.DHetPNoC, fabric.TorusPNoC} {
		for _, pat := range []traffic.Pattern{traffic.Uniform{}, traffic.Skewed{Level: 2}} {
			f, err := fabric.New(fabric.Config{
				Arch:         arch,
				Set:          traffic.BWSet1,
				Pattern:      pat,
				Cycles:       3000,
				WarmupCycles: 500,
				Seed:         1,
			})
			if err != nil {
				panic(err)
			}
			res, err := f.Run()
			if err != nil {
				panic(err)
			}
			fmt.Printf("{%q, %q, %d, %s, %s, %s},\n",
				res.Arch, res.Pattern,
				res.Stats.PacketsDelivered,
				strconv.FormatFloat(float64(res.Stats.DeliveredGbps), 'g', -1, 64),
				strconv.FormatFloat(res.Stats.AvgLatencyCycles, 'g', -1, 64),
				strconv.FormatFloat(float64(res.EnergyPerMessagePJ), 'g', -1, 64))
		}
	}
}
