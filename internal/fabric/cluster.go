package fabric

import (
	"fmt"
	"math/bits"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/traffic"
)

// Datapath widths (flits per cycle). The switch-to-photonic-router paths
// are double width so a single packet can stream fast enough to feed the
// widest dynamic channel allocation (DESIGN.md §4); peer links between
// core switches are single width.
const (
	injectWidth = 2
	peerWidth   = 1
	toPRWidth   = 2
	rxDrainMult = 4
)

// coreState is the per-core runtime: the traffic source, the bounded
// injection queue, the packet currently being fed into the switch, and the
// ejection port the core consumes from.
type coreState struct {
	id      topology.CoreID
	source  *traffic.Source
	queue   packet.Queue
	rejects int64

	injectPort *router.Port //hetpnoc:nosnap topology: port view wired at build; port state lives in the arena
	inFlight   *packet.Packet
	inVC       int
	inNext     int

	ejectPort *router.Port //hetpnoc:nosnap topology: port view wired at build; port state lives in the arena
	ejectRR   int
}

// cluster groups the hardware of one cluster: the electrical switches, the
// photonic router and the crossbar engines.
type cluster struct {
	id       topology.ClusterID
	switches []*router.Router
	photonic *router.Router
	txPort   *router.Port
}

// buildAllToAll wires a cluster in the §3.1 configuration: each core has
// its own switch, switches are connected pairwise and to the photonic
// router.
//
// Switch S_i port map (K = cluster size):
//
//	inputs:  0 = inject, 1..K-1 = peers (ascending, skipping self), K = from P
//	outputs: 0 = eject, 1..K-1 = peers, K = to P
//
// Photonic router P port map:
//
//	inputs:  0..K-1 = from switches, K = photonic receive
//	outputs: 0..K-1 = to switches, K = transmit port
func (f *Fabric) buildAllToAll(cl topology.ClusterID) (*cluster, error) {
	topo := f.cfg.Topology
	k := topo.ClusterSize()
	c := &cluster{id: cl}

	newPort := func() (*router.Port, error) {
		return f.arena.NewPort(f.cfg.VCsPerPort, f.cfg.BufferDepthFlits)
	}

	// Pre-create every input port so routers can cross-reference them.
	switchInputs := make([][]*router.Port, k) // [core][port]
	for i := 0; i < k; i++ {
		switchInputs[i] = make([]*router.Port, k+1)
		for p := 0; p <= k; p++ {
			port, err := newPort()
			if err != nil {
				return nil, err
			}
			switchInputs[i][p] = port
		}
	}
	prInputs := make([]*router.Port, k+1)
	for p := 0; p <= k; p++ {
		port, err := newPort()
		if err != nil {
			return nil, err
		}
		prInputs[p] = port
	}
	txPort, err := newPort()
	if err != nil {
		return nil, err
	}
	c.txPort = txPort

	// peerSlot(i, j) is the port index on switch i used for peer j.
	peerSlot := func(i, j int) int {
		slot := 1
		for p := 0; p < k; p++ {
			if p == i {
				continue
			}
			if p == j {
				return slot
			}
			slot++
		}
		panic("fabric: peerSlot called with i == j")
	}

	for i := 0; i < k; i++ {
		core := topo.CoreAt(cl, i)
		localIdx := i
		route := func(fl packet.Flit) int {
			if fl.Packet.Dst == core {
				return 0
			}
			if fl.Packet.DstCluster == cl {
				return peerSlot(localIdx, topo.LocalIndex(fl.Packet.Dst))
			}
			return k
		}
		widths := make([]int, k+1)
		widths[0] = injectWidth
		for p := 1; p < k; p++ {
			widths[p] = peerWidth
		}
		widths[k] = toPRWidth

		sw, err := router.New(fmt.Sprintf("c%d.s%d", cl, i), switchInputs[i], widths, route, f.ledger)
		if err != nil {
			return nil, err
		}
		// Precomputed route table, identical to the routing closure above:
		// headers cache their output at enqueue time so arbitration never
		// re-runs the route on the hot path.
		tab := make([]int16, topo.Cores())
		for dst := range tab {
			d := topology.CoreID(dst)
			switch {
			case d == core:
				tab[dst] = 0
			case topo.ClusterOf(d) == cl:
				tab[dst] = int16(peerSlot(localIdx, topo.LocalIndex(d)))
			default:
				tab[dst] = int16(k)
			}
		}
		sw.SetRouteTable(tab)

		ejectPort, err := newPort()
		if err != nil {
			return nil, err
		}
		if _, err := sw.AddOutput(ejectPort, f.cfg.EjectWidth, false); err != nil {
			return nil, err
		}
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			if _, err := sw.AddOutput(switchInputs[j][peerSlot(j, i)], peerWidth, true); err != nil {
				return nil, err
			}
		}
		if _, err := sw.AddOutput(prInputs[i], toPRWidth, true); err != nil {
			return nil, err
		}

		c.switches = append(c.switches, sw)
		cs := &f.cores[core]
		cs.injectPort = switchInputs[i][0]
		cs.ejectPort = ejectPort
	}

	prRoute := func(fl packet.Flit) int {
		if fl.Packet.DstCluster != cl {
			return k
		}
		return topo.LocalIndex(fl.Packet.Dst)
	}
	prWidths := make([]int, k+1)
	for p := 0; p < k; p++ {
		prWidths[p] = toPRWidth
	}
	prWidths[k] = rxDrainMult
	pr, err := router.New(fmt.Sprintf("c%d.pr", cl), prInputs, prWidths, prRoute, f.ledger)
	if err != nil {
		return nil, err
	}
	prTab := make([]int16, topo.Cores())
	for dst := range prTab {
		d := topology.CoreID(dst)
		if topo.ClusterOf(d) == cl {
			prTab[dst] = int16(topo.LocalIndex(d))
		} else {
			prTab[dst] = int16(k)
		}
	}
	pr.SetRouteTable(prTab)
	for i := 0; i < k; i++ {
		if _, err := pr.AddOutput(switchInputs[i][k], toPRWidth, true); err != nil {
			return nil, err
		}
	}
	if _, err := pr.AddOutput(txPort, 2*k, false); err != nil {
		return nil, err
	}
	c.photonic = pr
	return c, nil
}

// buildConcentrated wires a cluster in the Firefly style [20]: the
// cluster's cores share one electrical switch connected to the photonic
// router.
//
// Switch port map: inputs 0..K-1 = inject per core, K = from P;
// outputs 0..K-1 = eject per core, K = to P.
// Photonic router: input 0 = from switch, 1 = receive;
// outputs 0 = to switch, 1 = transmit port.
func (f *Fabric) buildConcentrated(cl topology.ClusterID) (*cluster, error) {
	topo := f.cfg.Topology
	k := topo.ClusterSize()
	c := &cluster{id: cl}

	newPort := func() (*router.Port, error) {
		return f.arena.NewPort(f.cfg.VCsPerPort, f.cfg.BufferDepthFlits)
	}

	swInputs := make([]*router.Port, k+1)
	for p := 0; p <= k; p++ {
		port, err := newPort()
		if err != nil {
			return nil, err
		}
		swInputs[p] = port
	}
	prFromSwitch, err := newPort()
	if err != nil {
		return nil, err
	}
	prRX, err := newPort()
	if err != nil {
		return nil, err
	}
	txPort, err := newPort()
	if err != nil {
		return nil, err
	}
	c.txPort = txPort

	route := func(fl packet.Flit) int {
		if fl.Packet.DstCluster == cl {
			return topo.LocalIndex(fl.Packet.Dst)
		}
		return k
	}
	widths := make([]int, k+1)
	for p := 0; p < k; p++ {
		widths[p] = injectWidth
	}
	widths[k] = 2 * toPRWidth
	sw, err := router.New(fmt.Sprintf("c%d.s", cl), swInputs, widths, route, f.ledger)
	if err != nil {
		return nil, err
	}
	swTab := make([]int16, topo.Cores())
	for dst := range swTab {
		d := topology.CoreID(dst)
		if topo.ClusterOf(d) == cl {
			swTab[dst] = int16(topo.LocalIndex(d))
		} else {
			swTab[dst] = int16(k)
		}
	}
	sw.SetRouteTable(swTab)
	for i := 0; i < k; i++ {
		ejectPort, err := newPort()
		if err != nil {
			return nil, err
		}
		if _, err := sw.AddOutput(ejectPort, f.cfg.EjectWidth, false); err != nil {
			return nil, err
		}
		core := topo.CoreAt(cl, i)
		cs := &f.cores[core]
		cs.injectPort = swInputs[i]
		cs.ejectPort = ejectPort
	}
	if _, err := sw.AddOutput(prFromSwitch, 2*toPRWidth, true); err != nil {
		return nil, err
	}
	c.switches = []*router.Router{sw}

	prRoute := func(fl packet.Flit) int {
		if fl.Packet.DstCluster != cl {
			return 1
		}
		return 0
	}
	pr, err := router.New(fmt.Sprintf("c%d.pr", cl),
		[]*router.Port{prFromSwitch, prRX}, []int{2 * toPRWidth, rxDrainMult}, prRoute, f.ledger)
	if err != nil {
		return nil, err
	}
	prTab := make([]int16, topo.Cores())
	for dst := range prTab {
		if topo.ClusterOf(topology.CoreID(dst)) == cl {
			prTab[dst] = 0
		} else {
			prTab[dst] = 1
		}
	}
	pr.SetRouteTable(prTab)
	if _, err := pr.AddOutput(swInputs[k], 2*toPRWidth, true); err != nil {
		return nil, err
	}
	if _, err := pr.AddOutput(txPort, 2*k, false); err != nil {
		return nil, err
	}
	c.photonic = pr
	return c, nil
}

// rxInputPort returns the photonic router input the receive engine
// delivers into.
func (c *cluster) rxInputPort(clusterSize int, mode IntraCluster) *router.Port {
	if mode == Concentrated {
		return c.photonic.Input(1)
	}
	return c.photonic.Input(clusterSize)
}

// pumpInject feeds the core's pending packets into its switch, allocating
// a VC per packet and moving up to injectWidth flits per cycle.
func (cs *coreState) pumpInject(now sim.Cycle) error {
	for moved := 0; moved < injectWidth; moved++ {
		if cs.inFlight == nil {
			head := cs.queue.Head()
			if head == nil {
				return nil
			}
			vc, ok := cs.injectPort.AllocVC(head.ID)
			if !ok {
				return nil // every VC busy; the packet waits at the source
			}
			cs.inFlight = cs.queue.Pop()
			cs.inVC = vc
			cs.inNext = 0
		}
		if cs.injectPort.Space(cs.inVC) == 0 {
			return nil
		}
		fl := packet.FlitAt(cs.inFlight, cs.inNext)
		if err := cs.injectPort.Enqueue(cs.inVC, fl, now); err != nil {
			return err
		}
		cs.inNext++
		if cs.inNext == cs.inFlight.Flits {
			cs.inFlight = nil
		}
	}
	return nil
}

// drainEject consumes up to ejectWidth ready flits from the core's eject
// port, completing packets as tails arrive.
//
// It replays the reference round-robin position walk (vcIdx =
// (ejectRR+scan) mod n, ejectRR advancing live on tails) but jumps over
// empty VCs with the port's occupancy bitmask. A VC found empty or too
// young is dropped from the local mask: no enqueue can happen during the
// drain, so neither condition can clear within this call, and reference
// visits of such VCs have no side effects.
func (cs *coreState) drainEject(now sim.Cycle, ejectWidth int, onFlit func(packet.Flit), onPacket func(*packet.Packet)) error {
	p := cs.ejectPort
	m := p.OccupiedMask()
	if m == 0 {
		return nil
	}
	n := p.VCCount()
	drained := 0
	for scan := 0; scan < n && drained < ejectWidth; {
		if m == 0 {
			break
		}
		t := cs.ejectRR + scan
		if t >= n {
			t -= n
		}
		// First occupied VC at or circularly after position t.
		idx := 0
		wrapped := false
		if x := m >> uint(t) << uint(t); x != 0 {
			idx = bits.TrailingZeros64(x)
		} else {
			idx = bits.TrailingZeros64(m)
			wrapped = true
		}
		d := idx - t
		if d < 0 || wrapped {
			d += n
		}
		scan += d
		if scan >= n {
			break
		}
		enq, _, ok := p.HeadMeta(idx)
		if !ok || now-enq < router.PipelineDelay {
			m &^= 1 << uint(idx)
			scan++
			continue
		}
		popped, err := p.Pop(idx)
		if err != nil {
			return err
		}
		drained++
		onFlit(popped)
		if popped.Type.IsTail() {
			onPacket(popped.Packet)
			cs.ejectRR = idx + 1
			if cs.ejectRR == n {
				cs.ejectRR = 0
			}
			m &^= 1 << uint(idx) // a popped tail always empties the VC
			scan++
			continue
		}
		// keep draining the same VC to preserve round-robin fairness at
		// packet granularity
	}
	return nil
}
