package fabric

import (
	"testing"

	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/traffic"
)

// TestTokenOutageDuringRun injects a token loss into a running d-HetPNoC
// fabric: traffic keeps flowing on the frozen allocation (the reserved
// minimum guarantees progress), the token regenerates, and a later task
// remap still reshapes the allocation.
func TestTokenOutageDuringRun(t *testing.T) {
	f, err := New(Config{
		Arch:    DHetPNoC,
		Set:     traffic.BWSet1,
		Pattern: traffic.Skewed{Level: 2},
		Cycles:  6000, WarmupCycles: 500, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 1500; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	deliveredBefore := f.DeliveredPackets()
	f.DBA().DropToken()

	// Inside the outage window (the default regeneration timeout is two
	// rotation times, 32 cycles at bandwidth set 1) the token is still
	// missing but traffic keeps flowing.
	for i := 0; i < 20; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !f.DBA().TokenLost() {
		t.Fatal("token recovered before the regeneration timeout")
	}
	for i := 0; i < 200; i++ {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f.DeliveredPackets() <= deliveredBefore {
		t.Fatal("traffic stopped during the token outage")
	}

	// Run to completion: the outage must have healed.
	for int(f.Now()) < 6000 {
		if err := f.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if f.DBA().TokenLost() {
		t.Fatal("token never regenerated")
	}
	if f.DBA().TokenRegenerations() != 1 {
		t.Fatalf("regenerations = %d, want 1", f.DBA().TokenRegenerations())
	}
	res, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PacketsDelivered == 0 {
		t.Fatal("nothing delivered across the outage")
	}
	if err := f.DBA().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestIntraClusterLatencyIsOneHop: a same-cluster packet crosses exactly
// one electrical switch hop, so at light load its latency is far below the
// photonic serialization bound.
func TestIntraClusterLatencyIsOneHop(t *testing.T) {
	topo := Config{}.WithDefaults().Topology
	cores := make([]traffic.CoreProfile, topo.Cores())
	// Only core 0 sends, to its cluster peer core 1.
	cores[0] = traffic.CoreProfile{
		RateGbps:   10,
		DemandGbps: 40,
		PickDest:   func(*sim.RNG) topology.CoreID { return 1 },
	}
	res := runConfig(t, Config{
		Arch:    DHetPNoC,
		Pattern: traffic.Fixed{Assignment: traffic.Assignment{Name: "peer", Cores: cores}},
		Cycles:  4000, WarmupCycles: 500, Seed: 31,
	})
	if res.Stats.PacketsDelivered == 0 {
		t.Fatal("no peer packets delivered")
	}
	// 64 flits entering at 2/cycle (32 cycles) plus two router
	// traversals and the 2-flit/cycle ejection: ~70 cycles end to end.
	// The photonic path would additionally pay >102 cycles of 20 b/cycle
	// serialization, so anything below that proves the electrical
	// shortcut was taken.
	if res.Stats.AvgLatencyCycles > 100 {
		t.Fatalf("intra-cluster latency %.1f cycles, want a single electrical hop", res.Stats.AvgLatencyCycles)
	}
}
