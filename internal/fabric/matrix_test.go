package fabric

import (
	"fmt"
	"testing"

	"hetpnoc/internal/traffic"
)

// TestEveryArchPatternCombination is the broad integration net: every
// architecture runs every evaluation workload (plus the synthetic
// permutations) and delivers traffic with sane metrics.
func TestEveryArchPatternCombination(t *testing.T) {
	patterns := []traffic.Pattern{
		traffic.Uniform{},
		traffic.Skewed{Level: 1},
		traffic.Skewed{Level: 3},
		traffic.SkewedHotspot{Index: 2, HotFraction: 0.10, BaseLevel: 3},
		traffic.RealApp{},
		traffic.Permutation{Kind: traffic.Transpose},
		traffic.Permutation{Kind: traffic.BitComplement},
		traffic.Permutation{Kind: traffic.Neighbor},
		traffic.Bursty{Base: traffic.Skewed{Level: 2}, Factor: 4},
	}
	for _, arch := range []Arch{Firefly, DHetPNoC, TorusPNoC} {
		for _, p := range patterns {
			t.Run(fmt.Sprintf("%s/%s", arch, p.Name()), func(t *testing.T) {
				t.Parallel()
				res := runConfig(t, Config{
					Arch: arch, Pattern: p,
					Cycles: 2500, WarmupCycles: 500, Seed: 61,
				})
				if res.Stats.PacketsDelivered == 0 {
					t.Fatal("nothing delivered")
				}
				if res.Stats.DeliveredGbps <= 0 || res.Stats.DeliveredGbps > 16*64*12.5 {
					t.Fatalf("implausible bandwidth %.1f Gb/s", res.Stats.DeliveredGbps)
				}
				if res.EnergyPerMessagePJ <= 0 {
					t.Fatal("non-positive energy per message")
				}
				if res.Stats.FairnessJain <= 0 || res.Stats.FairnessJain > 1 {
					t.Fatalf("fairness %g outside (0,1]", res.Stats.FairnessJain)
				}
				if res.Stats.AvgLatencyCycles <= 0 {
					t.Fatal("non-positive latency")
				}
			})
		}
	}
}
