package fabric

import (
	"hetpnoc/internal/stats"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/units"
)

// Result is the outcome of one simulation run.
type Result struct {
	Arch         string
	Pattern      string
	Set          string
	IntraCluster string
	LoadScale    float64
	Seed         uint64

	Stats stats.Summary

	// OfferedGbps is the aggregate scaled injection rate.
	OfferedGbps units.Gbps

	// PerCoreGbps is the delivered bandwidth averaged over cores (the
	// "peak core bandwidth" axis of Figures 3-5, 3-7 and 3-10 once
	// maximized over the load sweep).
	PerCoreGbps units.Gbps

	// EnergyPerMessagePJ is the total dissipated energy divided by
	// delivered packets — "the energy dissipated in transferring one
	// packet completely from source to destination at network
	// saturation" (§3.4.1.2).
	EnergyPerMessagePJ units.Picojoule

	EnergyTotalPJ      units.Picojoule
	EnergyPhotonicPJ   units.Picojoule
	EnergyElectricalPJ units.Picojoule
	EnergyBreakdownPJ  map[string]units.Picojoule

	// AllocatedWavelengths is the final per-cluster allocation.
	AllocatedWavelengths []int

	// TokenRotations counts completed DBA token rotations (0 for
	// Firefly).
	TokenRotations int64

	// ChannelBusyFraction is each write channel's busy share of the full
	// run (crossbar architectures only).
	ChannelBusyFraction []float64

	// TorusPathsSetUp and TorusSetupsBlocked count circuit
	// establishments and blocked setups (torus baseline only).
	TorusPathsSetUp    int64
	TorusSetupsBlocked int64
}

// result assembles the Result after Run completes.
func (f *Fabric) result() Result {
	summary := f.collector.Summary()

	var offered float64
	for _, cs := range f.cores {
		offered += f.clock.BitsPerCycleToGbps(cs.source.OfferedBitsPerCycle())
	}

	res := Result{
		Arch:               f.cfg.Arch.String(),
		Pattern:            f.cfg.Pattern.Name(),
		Set:                f.cfg.Set.Name,
		IntraCluster:       f.cfg.IntraCluster.String(),
		LoadScale:          f.cfg.LoadScale,
		Seed:               f.seed,
		Stats:              summary,
		OfferedGbps:        units.Gbps(offered),
		EnergyTotalPJ:      f.ledger.TotalPJ(),
		EnergyPhotonicPJ:   f.ledger.PhotonicPJ(),
		EnergyElectricalPJ: f.ledger.ElectricalPJ(),
		EnergyBreakdownPJ:  make(map[string]units.Picojoule),
	}
	//hetpnoc:orderfree fills a map from a map; insertion order is invisible in the result
	for comp, pj := range f.ledger.Breakdown() {
		res.EnergyBreakdownPJ[comp.String()] = pj
	}
	if summary.PacketsDelivered > 0 {
		res.EnergyPerMessagePJ = res.EnergyTotalPJ.Div(float64(summary.PacketsDelivered))
	}
	res.PerCoreGbps = summary.DeliveredGbps.Div(float64(f.cfg.Topology.Cores()))

	res.AllocatedWavelengths = make([]int, f.cfg.Topology.Clusters())
	for cl := range res.AllocatedWavelengths {
		res.AllocatedWavelengths[cl] = len(f.alloc.Allocated(topology.ClusterID(cl)))
	}
	if f.dba != nil {
		res.TokenRotations = f.dba.Rotations()
	}
	res.ChannelBusyFraction = make([]float64, len(f.txs))
	for i, tx := range f.txs {
		res.ChannelBusyFraction[i] = float64(tx.BusyCycles()) / float64(f.cfg.Cycles)
	}
	if f.torus != nil {
		res.TorusPathsSetUp = f.torus.PathsSetUp()
		res.TorusSetupsBlocked = f.torus.SetupsBlocked()
	}
	return res
}
