package fabric

import (
	"strconv"
	"testing"

	"hetpnoc/internal/traffic"
)

// goldenCase pins the headline Result fields of one short reference run.
// The values were recorded from the pre-optimization simulator (PR 1) and
// must never drift: performance work on the cycle loop is only acceptable
// when the simulation stays bit-identical. Regenerate deliberately with
//
//	go run ./internal/fabric/goldengen
//
// and only commit new values alongside an intentional behaviour change.
type goldenCase struct {
	Arch    string
	Pattern string

	PacketsDelivered int64
	DeliveredGbps    float64
	AvgLatencyCycles float64
	EPMpj            float64
}

// goldenCases covers all three architectures at bandwidth set 1, seed 1,
// under both uniform and skewed traffic (3,000 cycles, 500 warm-up).
var goldenCases = []goldenCase{
	{"firefly", "uniform", 400, 795.072, 270.9575, 8819.472224999765},
	{"firefly", "skewed2", 269, 537.408, 692.5353159851301, 13624.46479553866},
	{"d-hetpnoc", "uniform", 400, 795.072, 270.9575, 8893.992224999693},
	{"d-hetpnoc", "skewed2", 372, 759.008, 402.73655913978496, 10406.69037634387},
	{"torus-pnoc", "uniform", 391, 799.104, 205.40153452685422, 8913.15686700745},
	{"torus-pnoc", "skewed2", 397, 822.528, 284.1007556675063, 9743.069231737909},
}

func goldenArch(t *testing.T, name string) Arch {
	t.Helper()
	for _, a := range []Arch{Firefly, DHetPNoC, TorusPNoC} {
		if a.String() == name {
			return a
		}
	}
	t.Fatalf("unknown architecture %q", name)
	return 0
}

func goldenPattern(t *testing.T, name string) traffic.Pattern {
	t.Helper()
	switch name {
	case "uniform":
		return traffic.Uniform{}
	case "skewed2":
		return traffic.Skewed{Level: 2}
	}
	t.Fatalf("unknown pattern %q", name)
	return nil
}

// TestGoldenResults asserts that every reference run still produces exactly
// the recorded headline numbers. Floating-point fields are compared
// bit-exactly (via shortest round-trip formatting), so even a reordering of
// energy or latency accumulation fails the test.
func TestGoldenResults(t *testing.T) {
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.Arch+"/"+gc.Pattern, func(t *testing.T) {
			t.Parallel()
			f, err := New(Config{
				Arch:         goldenArch(t, gc.Arch),
				Set:          traffic.BWSet1,
				Pattern:      goldenPattern(t, gc.Pattern),
				Cycles:       3000,
				WarmupCycles: 500,
				Seed:         1,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.PacketsDelivered != gc.PacketsDelivered {
				t.Errorf("PacketsDelivered = %d, golden %d",
					res.Stats.PacketsDelivered, gc.PacketsDelivered)
			}
			assertGoldenFloat(t, "DeliveredGbps", float64(res.Stats.DeliveredGbps), gc.DeliveredGbps)
			assertGoldenFloat(t, "AvgLatencyCycles", res.Stats.AvgLatencyCycles, gc.AvgLatencyCycles)
			assertGoldenFloat(t, "EnergyPerMessagePJ", float64(res.EnergyPerMessagePJ), gc.EPMpj)
		})
	}
}

func assertGoldenFloat(t *testing.T, field string, got, want float64) {
	t.Helper()
	if strconv.FormatFloat(got, 'g', -1, 64) != strconv.FormatFloat(want, 'g', -1, 64) {
		t.Errorf("%s = %s, golden %s", field,
			strconv.FormatFloat(got, 'g', -1, 64),
			strconv.FormatFloat(want, 'g', -1, 64))
	}
}
