package fabric

import (
	"testing"

	"hetpnoc/internal/topology"
	"hetpnoc/internal/traffic"
)

// BenchmarkFabricStep measures one cycle of the full 64-core chip under
// saturated skewed traffic — the simulator's end-to-end hot path — once
// per photonic provisioning point, so the perf trajectory covers all
// three bandwidth sets (wider channels move more flits per cycle).
func BenchmarkFabricStep(b *testing.B) {
	sets := []struct {
		name string
		set  traffic.BandwidthSet
	}{
		{"BW1", traffic.BWSet1},
		{"BW2", traffic.BWSet2},
		{"BW3", traffic.BWSet3},
	}
	for _, tc := range sets {
		b.Run(tc.name, func(b *testing.B) {
			f, err := New(Config{
				Arch:    DHetPNoC,
				Set:     tc.set,
				Pattern: traffic.Skewed{Level: 2},
				Cycles:  1 << 30, // stepped manually
				Seed:    1,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm the pipelines so the benchmark measures steady state.
			for i := 0; i < 2000; i++ {
				if err := f.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFabricStepIdle measures one cycle of the chip with zero
// offered load — the case the active-list scheduling targets. With no
// traffic, every router, TX engine and core stays off the active lists
// and a cycle costs only the torus/allocator housekeeping.
func BenchmarkFabricStepIdle(b *testing.B) {
	topo := topology.Default()
	silent := traffic.Assignment{Name: "silent", Cores: make([]traffic.CoreProfile, topo.Cores())}
	f, err := New(Config{
		Arch:    DHetPNoC,
		Set:     traffic.BWSet1,
		Pattern: traffic.Fixed{Assignment: silent},
		Cycles:  1 << 30, // stepped manually
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// A short run drains any construction-time transients.
	for i := 0; i < 100; i++ {
		if err := f.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricBuild measures constructing the whole chip (80 routers,
// 16 crossbar engine pairs, 64 sources).
func BenchmarkFabricBuild(b *testing.B) {
	cfg := Config{
		Arch:    DHetPNoC,
		Set:     traffic.BWSet1,
		Pattern: traffic.Uniform{},
		Seed:    1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
