package fabric

import (
	"testing"

	"hetpnoc/internal/traffic"
)

// BenchmarkFabricStep measures one cycle of the full 64-core chip under
// saturated skewed traffic — the simulator's end-to-end hot path.
func BenchmarkFabricStep(b *testing.B) {
	f, err := New(Config{
		Arch:    DHetPNoC,
		Set:     traffic.BWSet1,
		Pattern: traffic.Skewed{Level: 2},
		Cycles:  1 << 30, // stepped manually
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the pipelines so the benchmark measures steady state.
	for i := 0; i < 2000; i++ {
		if err := f.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFabricBuild measures constructing the whole chip (80 routers,
// 16 crossbar engine pairs, 64 sources).
func BenchmarkFabricBuild(b *testing.B) {
	cfg := Config{
		Arch:    DHetPNoC,
		Set:     traffic.BWSet1,
		Pattern: traffic.Uniform{},
		Seed:    1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
