package fabric

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hetpnoc/internal/traffic"
)

// TestRunContextMatchesRun: threading a background context through the
// chunked cycle loop must not perturb the simulation — RunContext and
// Run produce identical results, including at cycle counts that are not
// multiples of CancelCheckInterval.
func TestRunContextMatchesRun(t *testing.T) {
	for _, cycles := range []int{1500, CancelCheckInterval, CancelCheckInterval*2 + 7} {
		mk := func() *Fabric {
			f, err := New(Config{Pattern: traffic.Uniform{}, Cycles: cycles, WarmupCycles: 500, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
		a, err := mk().Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk().RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("cycles=%d: RunContext diverges from Run", cycles)
		}
	}
}

// TestRunContextCancel: a canceled context aborts the run with its error
// before the full cycle budget is spent, and the fabric survives at a
// cycle boundary.
func TestRunContextCancel(t *testing.T) {
	f, err := New(Config{Pattern: traffic.Uniform{}, Cycles: 1 << 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if f.Now() != 0 {
		t.Fatalf("pre-canceled run advanced to cycle %d", f.Now())
	}
}

// TestStepContextCancelBound: cancellation mid-run stops within one
// check interval of the cancel point.
func TestStepContextCancelBound(t *testing.T) {
	f, err := New(Config{Pattern: traffic.Uniform{}, Cycles: 1 << 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Run one chunk, then cancel: the very next context poll must stop
	// the loop, i.e. no more than one further interval is simulated.
	if err := f.StepContext(ctx, CancelCheckInterval); err != nil {
		t.Fatal(err)
	}
	cancel()
	err = f.StepContext(ctx, 100*CancelCheckInterval)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := int(f.Now()); got > 2*CancelCheckInterval {
		t.Fatalf("canceled run overran the check interval: at cycle %d", got)
	}
}
