package fabric

import (
	"testing"
	"testing/quick"

	"hetpnoc/internal/photonic"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/traffic"
)

// TestFlitConservationUnderRandomConfigs is the end-to-end conservation
// property: for random seeds, patterns, architectures, bandwidth sets
// and load scales, every packet that entered a source queue is — at any
// cycle boundary — in exactly one of three states: delivered, lost
// after exhausting retries, or still in flight (source queues, router
// buffers, photonic channels, retry timers). The un-gated Totals
// counters balance against the pool's live count:
//
//	Injected == Delivered + Lost + LivePackets
//
// A leaked packet, a double-recycle, or a terminal path that skips its
// counter all unbalance the equation. The same sweep also checks the
// Table 3-3 photonic caps via checkWavelengthCaps.
//
//hetpnoc:detsafe property test samples random configs on purpose; each trial seeds its own sim from quick's arguments, so the run stays replayable from the printed counterexample
func TestFlitConservationUnderRandomConfigs(t *testing.T) {
	maxCount := 10
	if testing.Short() {
		maxCount = 4
	}
	patterns := []traffic.Pattern{
		traffic.Uniform{},
		traffic.Skewed{Level: 1},
		traffic.Skewed{Level: 3},
		traffic.SkewedHotspot{HotFraction: 0.2, BaseLevel: 2},
		traffic.RealApp{},
		traffic.Permutation{Kind: traffic.Transpose},
		traffic.Bursty{Base: traffic.Uniform{}, Factor: 3},
	}
	sets := []traffic.BandwidthSet{traffic.BWSet1, traffic.BWSet2, traffic.BWSet3}
	archs := []Arch{Firefly, DHetPNoC, TorusPNoC}
	loads := []float64{0.5, 1.0, 2.0, 4.0}

	run := func(seed uint64, patSel, setSel, archSel, loadSel uint8) bool {
		cfg := Config{
			Pattern:      patterns[int(patSel)%len(patterns)],
			Set:          sets[int(setSel)%len(sets)],
			Arch:         archs[int(archSel)%len(archs)],
			LoadScale:    loads[int(loadSel)%len(loads)],
			Cycles:       4096,
			WarmupCycles: 512,
			Seed:         seed,
		}
		f, err := New(cfg)
		if err != nil {
			t.Logf("New: %v", err)
			return false
		}
		// Check the balance at several mid-run boundaries, not just at
		// the end: a transient imbalance (e.g. a drop path recycling a
		// packet twice) can cancel out by quiescence.
		for burst := 0; burst < 4; burst++ {
			for i := 0; i < 1024; i++ {
				if err := f.Step(); err != nil {
					t.Logf("Step: %v", err)
					return false
				}
			}
			tot := f.Totals()
			live := f.LivePackets()
			if live < 0 {
				t.Logf("negative live packet count %d", live)
				return false
			}
			if tot.Injected != tot.Delivered+tot.Lost+live {
				t.Logf("conservation violated: injected %d != delivered %d + lost %d + live %d (%+v)",
					tot.Injected, tot.Delivered, tot.Lost, live, tot)
				return false
			}
			if tot.DroppedRX != tot.Retransmitted+tot.Lost {
				t.Logf("drop accounting violated: dropped %d != retransmitted %d + lost %d",
					tot.DroppedRX, tot.Retransmitted, tot.Lost)
				return false
			}
			if !checkWavelengthCaps(t, f, cfg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}

// checkWavelengthCaps asserts the photonic provisioning invariants of
// Table 3-3 on the fabric's current allocation: no wavelength owned by
// two write channels, no channel above the per-channel ceiling or below
// the reserved minimum (d-HetPNoC), and no waveguide carrying more than
// the 64-wavelength DWDM cap.
func checkWavelengthCaps(t *testing.T, f *Fabric, cfg Config) bool {
	t.Helper()
	clusters := f.cfg.Topology.Clusters()
	bundle := f.bundle
	owned := make([]bool, bundle.Capacity())
	perWaveguide := make([]int, bundle.Waveguides)
	for cl := 0; cl < clusters; cl++ {
		ids := f.AllocatedOf(topology.ClusterID(cl))
		if f.cfg.Arch == DHetPNoC {
			if max := f.cfg.Set.MaxChannelWavelengths(); len(ids) > max {
				t.Logf("cluster %d owns %d wavelengths, channel ceiling is %d", cl, len(ids), max)
				return false
			}
			if len(ids) < f.cfg.ReservedPerCluster {
				t.Logf("cluster %d owns %d wavelengths, reserved minimum is %d", cl, len(ids), f.cfg.ReservedPerCluster)
				return false
			}
		}
		for _, id := range ids {
			if id.Wavelength >= photonic.MaxWavelengthsPerWaveguide {
				t.Logf("wavelength %v beyond the %d-lambda DWDM cap", id, photonic.MaxWavelengthsPerWaveguide)
				return false
			}
			slot := bundle.SlotForID(id)
			if slot < 0 || slot >= len(owned) {
				t.Logf("wavelength %v outside the bundle", id)
				return false
			}
			if owned[slot] {
				t.Logf("wavelength %v owned by two clusters", id)
				return false
			}
			owned[slot] = true
			perWaveguide[id.Waveguide]++
		}
	}
	for wg, n := range perWaveguide {
		if n > photonic.MaxWavelengthsPerWaveguide {
			t.Logf("waveguide %d carries %d wavelengths, DWDM cap is %d", wg, n, photonic.MaxWavelengthsPerWaveguide)
			return false
		}
	}
	return true
}
