package fabric

import (
	"hetpnoc/internal/packet"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
)

// fabricState is the flat per-cycle mutable simulation state, grouped so
// checkpointing and the batched-replica engine can treat it as one unit.
// Every port and VC of the fabric lives in the shared struct-of-arrays
// arena; the activity bitsets drive the per-phase scheduling scans; the
// core states are stored by value in one contiguous slice.
type fabricState struct {
	// arena backs every Port in the fabric (switch inputs, photonic
	// router inputs, transmit, receive and eject ports) with flat
	// (port, vc)-indexed slices and per-port occupancy bitmasks.
	arena *router.Arena

	// cores is the per-core runtime, indexed by CoreID. Pointers into
	// the slice stay valid for the fabric's lifetime: it is sized once
	// at build and never reallocated.
	cores []coreState

	// Activity tracking: a component is on its active set exactly while
	// it may have work, so idle cycles cost O(active) instead of
	// O(everything). Ports wake their consumer on every
	// empty-to-non-empty transition; the scheduler deregisters a
	// component when it drains.
	routerActive sim.Bitset
	txActive     sim.Bitset
	injActive    sim.Bitset
	ejectActive  sim.Bitset

	// retxPending tracks packets whose retransmission back-off timer is
	// armed. The timer wheel stores closures, which a checkpoint cannot
	// introspect, so the drop handler records the captured packet here
	// and the timer removes it on fire; snapshots then know exactly
	// which packets are alive inside timers.
	retxPending []*packet.Packet
}

// addRetxPending records p as captured by an armed retransmission timer.
func (s *fabricState) addRetxPending(p *packet.Packet) {
	s.retxPending = append(s.retxPending, p)
}

// removeRetxPending drops p from the pending-retransmission list,
// preserving order so snapshots of the list stay deterministic.
func (s *fabricState) removeRetxPending(p *packet.Packet) {
	for i, q := range s.retxPending {
		if q == p {
			copy(s.retxPending[i:], s.retxPending[i+1:])
			s.retxPending[len(s.retxPending)-1] = nil
			s.retxPending = s.retxPending[:len(s.retxPending)-1]
			return
		}
	}
}
