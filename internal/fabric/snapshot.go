package fabric

import (
	"fmt"

	"hetpnoc/internal/core"
	"hetpnoc/internal/event"
	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/stats"
	"hetpnoc/internal/torus"
	"hetpnoc/internal/traffic"
	"hetpnoc/internal/xbar"
)

// Checkpoint is a full checkpoint of a running fabric, taken at a cycle
// boundary with Fabric.Checkpoint and rewound with Fabric.Restore. A
// restored fabric re-steps bit-identically to the original run — the
// same packets, drops, retransmissions, allocation changes and energy
// totals — which is what lets replicated or branching experiments skip
// re-paying the warm-up (and the FabricBuild) of a shared prefix.
//
// The immutable build products (topology, wiring, route tables, wake
// closures, energy parameters) are not saved: a checkpoint only
// restores onto the fabric it was taken from.
type Checkpoint struct {
	now        sim.Cycle
	msgIDs     packet.MessageID
	pktIDs     packet.ID
	totals     Totals
	assignment traffic.Assignment
	rng        uint64
	seed       uint64

	// cfg is saved whole because SetLoadScale mutates it between a
	// checkpoint and a restore (the batch engine's fork sequence);
	// restoring copies it back so a restored fabric re-steps under the
	// exact configuration it was checkpointed with. The shallow copy is
	// sound: nothing mutates the Remaps slice contents after build.
	cfg Config

	arena     *router.ArenaSnapshot
	routerRRs []int

	routerActive sim.Bitset
	txActive     sim.Bitset
	injActive    sim.Bitset
	ejectActive  sim.Bitset

	cores       []coreCheckpoint
	retxPending []*packet.Packet

	timers    *sim.TimerWheelSnapshot
	pool      *packet.PoolSnapshot
	collector *stats.CollectorSnapshot
	ledger    photonic.LedgerSnapshot
	events    *event.LogSnapshot
	dba       *core.AllocatorSnapshot
	txs       []*xbar.TXSnapshot
	rxs       []*xbar.RXSnapshot
	torus     *torus.NetworkSnapshot

	// packets captures the contents of every packet live at checkpoint
	// time. Packet structs are pooled and rewritten in place after the
	// snapshot, but the pool never frees them, so restoring writes each
	// saved value back through its original pointer — every reference
	// held by rings, queues, engines, circuits and timer closures then
	// reads the checkpointed contents again.
	packets []packetCapture
}

// coreCheckpoint is the per-core slice of a fabric checkpoint. The
// source pointer is saved alongside its mutable state because a task
// remap replaces sources wholesale; restoring re-installs the exact
// generator (everything but SourceState is immutable post-construction).
type coreCheckpoint struct {
	source      *traffic.Source
	sourceState traffic.SourceState
	queue       []*packet.Packet
	rejects     int64
	inFlight    *packet.Packet
	inVC        int
	inNext      int
	ejectRR     int
}

type packetCapture struct {
	ptr *packet.Packet
	val packet.Packet
}

// Cycle returns the cycle boundary the checkpoint was taken at — the
// explicit fork point. Forking engines must derive the remaining cycle
// count from it (cfg.Cycles - int(cp.Cycle())) instead of re-deriving it
// from the warm-up configuration: the two disagree whenever the caller's
// options and the fabric's applied defaults were filled independently,
// which is exactly the latent double-warm-up the batch engine fixes.
func (cp *Checkpoint) Cycle() sim.Cycle { return cp.now }

// Checkpoint captures the fabric's complete mutable state at the current
// cycle boundary. The fabric is untouched: taking a checkpoint never
// perturbs the run.
func (f *Fabric) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		now:        f.now,
		msgIDs:     f.msgIDs,
		pktIDs:     f.pktIDs,
		totals:     f.totals,
		assignment: f.assignment,
		rng:        f.rng.State(),
		seed:       f.seed,
		cfg:        f.cfg,

		arena: f.arena.Snapshot(nil),

		routerActive: f.routerActive.Clone(),
		txActive:     f.txActive.Clone(),
		injActive:    f.injActive.Clone(),
		ejectActive:  f.ejectActive.Clone(),

		retxPending: append([]*packet.Packet(nil), f.retxPending...),

		timers:    f.timers.Snapshot(),
		pool:      f.pool.Snapshot(),
		collector: f.collector.Snapshot(),
		ledger:    f.ledger.Snapshot(),
		events:    f.events.Snapshot(),
	}
	for _, r := range f.routers {
		cp.routerRRs = r.RRState(cp.routerRRs)
	}
	cp.cores = make([]coreCheckpoint, len(f.cores))
	for c := range f.cores {
		cs := &f.cores[c]
		cp.cores[c] = coreCheckpoint{
			source:      cs.source,
			sourceState: cs.source.State(),
			queue:       cs.queue.Snapshot(nil),
			rejects:     cs.rejects,
			inFlight:    cs.inFlight,
			inVC:        cs.inVC,
			inNext:      cs.inNext,
			ejectRR:     cs.ejectRR,
		}
	}
	if f.dba != nil {
		cp.dba = f.dba.Snapshot()
	}
	cp.txs = make([]*xbar.TXSnapshot, len(f.txs))
	for i, tx := range f.txs {
		cp.txs[i] = tx.Snapshot()
	}
	cp.rxs = make([]*xbar.RXSnapshot, len(f.rxs))
	for i, rx := range f.rxs {
		cp.rxs[i] = rx.Snapshot()
	}
	if f.torus != nil {
		cp.torus = f.torus.Snapshot()
	}

	// Capture the contents of every live packet. Duplicates (a streaming
	// packet appears in both its VC ring and its engine) are harmless:
	// the same value is saved, and written back, twice.
	var live []*packet.Packet
	live = f.arena.Packets(live)
	for c := range f.cores {
		live = f.cores[c].queue.Snapshot(live)
		if p := f.cores[c].inFlight; p != nil {
			live = append(live, p)
		}
	}
	for _, tx := range f.txs {
		live = tx.Packets(live)
	}
	if f.torus != nil {
		live = f.torus.Packets(live)
	}
	live = append(live, f.retxPending...)
	cp.packets = make([]packetCapture, len(live))
	for i, p := range live {
		cp.packets[i] = packetCapture{ptr: p, val: *p}
	}
	return cp
}

// Restore rewinds the fabric to a checkpoint taken from it earlier. The
// checkpoint stays intact, so one checkpoint can seed any number of
// re-runs. Re-stepping after a restore is bit-identical to the original
// continuation: TestCheckpointRoundTrip compares canonical results.
func (f *Fabric) Restore(cp *Checkpoint) error {
	// Packet contents first: everything below holds pointers whose
	// referents must already read their checkpointed state.
	for i := range cp.packets {
		*cp.packets[i].ptr = cp.packets[i].val
	}
	if err := f.arena.Restore(cp.arena); err != nil {
		return err
	}
	rrs := cp.routerRRs
	for _, r := range f.routers {
		rrs = r.SetRRState(rrs)
	}
	f.routerActive.CopyFrom(cp.routerActive)
	f.txActive.CopyFrom(cp.txActive)
	f.injActive.CopyFrom(cp.injActive)
	f.ejectActive.CopyFrom(cp.ejectActive)

	if len(cp.cores) != len(f.cores) {
		return fmt.Errorf("fabric: checkpoint has %d cores, fabric has %d", len(cp.cores), len(f.cores))
	}
	for c := range f.cores {
		cs, saved := &f.cores[c], &cp.cores[c]
		cs.source = saved.source
		cs.source.SetState(saved.sourceState)
		cs.queue.Restore(saved.queue)
		cs.rejects = saved.rejects
		cs.inFlight = saved.inFlight
		cs.inVC = saved.inVC
		cs.inNext = saved.inNext
		cs.ejectRR = saved.ejectRR
	}
	for i := len(cp.retxPending); i < len(f.retxPending); i++ {
		f.retxPending[i] = nil
	}
	f.retxPending = append(f.retxPending[:0], cp.retxPending...)

	f.timers.Restore(cp.timers)
	f.pool.Restore(cp.pool)
	f.collector.Restore(cp.collector)
	f.ledger.Restore(cp.ledger)
	f.events.Restore(cp.events)
	if f.dba != nil {
		if err := f.dba.Restore(cp.dba); err != nil {
			return err
		}
	}
	for i, tx := range f.txs {
		tx.Restore(cp.txs[i])
	}
	for i, rx := range f.rxs {
		rx.Restore(cp.rxs[i])
	}
	if f.torus != nil {
		if err := f.torus.Restore(cp.torus); err != nil {
			return err
		}
	}

	f.now = cp.now
	f.msgIDs = cp.msgIDs
	f.pktIDs = cp.pktIDs
	f.totals = cp.totals
	f.assignment = cp.assignment
	f.rng.SetState(cp.rng)
	f.seed = cp.seed
	f.cfg = cp.cfg

	// genList is derived state: rebuild it from the restored sources the
	// same way applyAssignment does.
	f.genList = f.genList[:0]
	for c := range f.cores {
		if !f.cores[c].source.Idle() {
			f.genList = append(f.genList, &f.cores[c])
		}
	}
	return nil
}
