package fabric

import (
	"context"
	"fmt"
	"math/bits"

	"hetpnoc/internal/core"
	"hetpnoc/internal/event"
	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/stats"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/torus"
	"hetpnoc/internal/traffic"
	"hetpnoc/internal/xbar"
)

// Fabric is one fully-assembled chip ready to simulate.
type Fabric struct {
	cfg    Config
	clock  sim.Clock
	bundle photonic.WaveguideBundle

	ledger    *photonic.Ledger
	occupancy int64
	timers    *sim.TimerWheel
	rng       *sim.RNG
	collector *stats.Collector
	events    *event.Log

	alloc xbar.Allocator
	dba   *core.Allocator // nil for the Firefly baseline

	clusters []*cluster
	routers  []*router.Router
	txs      []*xbar.TX
	torus    *torus.Network
	rxs      []*xbar.RX

	// fabricState holds the flat mutable simulation state: the shared
	// port arena, the per-core runtimes and the activity bitsets.
	fabricState

	assignment traffic.Assignment
	msgIDs     packet.MessageID
	pktIDs     packet.ID
	now        sim.Cycle

	// seed is the seed the result reports. It starts as cfg.Seed and is
	// replaced by Reseed when a restored checkpoint forks a replica.
	seed uint64

	// genList holds the cores whose traffic source can emit packets
	// (rebuilt on every workload assignment); idle sources tick as pure
	// no-ops and are skipped.
	//
	//hetpnoc:nosnap derived from the restored sources; Restore rebuilds it
	genList []*coreState

	// Ejection callbacks, hoisted out of Step so the per-core drain loop
	// does not allocate two closures per core per cycle.
	onEjectFlit   func(packet.Flit)    //hetpnoc:nosnap wiring closure, bound once at build
	onEjectPacket func(*packet.Packet) //hetpnoc:nosnap wiring closure, bound once at build

	// pool recycles packet structs once their tail is consumed or the
	// packet is lost; sources draw from it when generating.
	pool packet.Pool

	// totals are whole-run packet counters, never gated by the warm-up
	// measurement window; the conservation property tests balance them
	// against the pool's live count.
	totals Totals
}

// Totals are un-gated whole-run packet counters (the warm-up window
// included, unlike stats.Summary). At any instant the conservation
// invariant Injected == Delivered + Lost + live packets holds, where the
// live term is LivePackets: a packet that entered a source queue is in
// exactly one of the delivered, lost or still-in-flight states.
// Retransmission copies retire their predecessor atomically and so never
// unbalance the equation.
type Totals struct {
	Injected      int64
	Rejected      int64
	Delivered     int64
	DroppedRX     int64
	Lost          int64
	Retransmitted int64
}

// New builds a fabric from cfg (after applying defaults and validation).
func New(cfg Config) (*Fabric, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	bundle, err := photonic.NewBundle(cfg.Set.TotalWavelengths)
	if err != nil {
		return nil, err
	}
	clock := sim.DefaultClock()

	f := &Fabric{
		cfg:       cfg,
		clock:     clock,
		bundle:    bundle,
		ledger:    photonic.NewLedger(cfg.Energy),
		timers:    sim.NewTimerWheel(),
		rng:       sim.NewRNG(cfg.Seed),
		collector: stats.NewCollector(clock),
		seed:      cfg.Seed,
	}
	f.collector.SetClusterCount(cfg.Topology.Clusters())
	arena, err := router.NewArena(f.ledger, &f.occupancy)
	if err != nil {
		return nil, err
	}
	// Pre-size the arena for the exact port census of the cluster
	// builders: all-to-all uses k*(k+1) switch inputs, k+1 photonic
	// router inputs, 1 transmit and k eject ports per cluster;
	// concentrated uses k+1 switch inputs, 2 photonic router inputs,
	// 1 transmit and k eject ports.
	k := cfg.Topology.ClusterSize()
	portsPerCluster := (k + 1) * (k + 2)
	if cfg.IntraCluster == Concentrated {
		portsPerCluster = 2*k + 4
	}
	totalPorts := cfg.Topology.Clusters() * portsPerCluster
	arena.Reserve(totalPorts, totalPorts*cfg.VCsPerPort)
	f.arena = arena
	if cfg.EventCapacity > 0 {
		log, err := event.NewLog(cfg.EventCapacity)
		if err != nil {
			return nil, err
		}
		f.events = log
	}

	switch cfg.Arch {
	case Firefly, TorusPNoC:
		alloc, err := xbar.NewStatic(cfg.Topology, bundle, cfg.Set.TotalWavelengths)
		if err != nil {
			return nil, err
		}
		f.alloc = alloc
	case DHetPNoC:
		policy := core.PolicyGreedy
		if cfg.ProportionalDBA {
			policy = core.PolicyProportional
		}
		dba, err := core.NewAllocator(core.Config{
			Policy:                policy,
			Topology:              cfg.Topology,
			Bundle:                bundle,
			TotalWavelengths:      cfg.Set.TotalWavelengths,
			ReservedPerCluster:    cfg.ReservedPerCluster,
			MaxChannelWavelengths: cfg.Set.MaxChannelWavelengths(),
			MaxAcquirePerVisit:    cfg.MaxAcquirePerVisit,
			WaveguidesPerCluster:  cfg.WaveguidesPerCluster,
			ClockHz:               clock.FrequencyHz,
			Ledger:                f.ledger,
			Events:                f.events,
		})
		if err != nil {
			return nil, err
		}
		f.alloc = dba
		f.dba = dba
	}

	// Core states first so cluster builders can fill their ports.
	f.cores = make([]coreState, cfg.Topology.Cores())
	for c := range f.cores {
		f.cores[c].id = topology.CoreID(c)
	}

	// Clusters, electrical routers and crossbar engines.
	f.rxs = make([]*xbar.RX, cfg.Topology.Clusters())
	for cl := 0; cl < cfg.Topology.Clusters(); cl++ {
		var (
			built *cluster
			err   error
		)
		if cfg.IntraCluster == Concentrated {
			built, err = f.buildConcentrated(topology.ClusterID(cl))
		} else {
			built, err = f.buildAllToAll(topology.ClusterID(cl))
		}
		if err != nil {
			return nil, err
		}
		f.clusters = append(f.clusters, built)
		rxPort := built.rxInputPort(cfg.Topology.ClusterSize(), cfg.IntraCluster)
		f.rxs[cl] = xbar.NewRX(topology.ClusterID(cl), rxPort, bundle, f.ledger)
	}
	for _, c := range f.clusters {
		f.routers = append(f.routers, c.switches...)
	}
	for _, c := range f.clusters {
		f.routers = append(f.routers, c.photonic)
	}

	if cfg.Arch == TorusPNoC {
		txPorts := make([]*router.Port, len(f.clusters))
		for cl, c := range f.clusters {
			txPorts[cl] = c.txPort
		}
		net, err := torus.New(torus.Config{
			Nodes:              cfg.Topology.Clusters(),
			Bundle:             bundle,
			ClockHz:            clock.FrequencyHz,
			SetupHopCycles:     int(router.PipelineDelay) + 2,
			RetryBackoffCycles: cfg.RetryBackoffCycles,
			MaxFlits:           cfg.Set.Format.Flits,
			Events:             f.events,
		}, txPorts, f.rxs, f.ledger, f.handleDrop)
		if err != nil {
			return nil, err
		}
		f.torus = net
	} else {
		gating := xbar.GateChannel
		if cfg.Arch == DHetPNoC {
			gating = xbar.GateSelected
		}
		for cl, c := range f.clusters {
			tx, err := xbar.NewTX(xbar.TXConfig{
				Cluster:           topology.ClusterID(cl),
				Clusters:          cfg.Topology.Clusters(),
				MaxFlits:          cfg.Set.Format.Flits,
				Bundle:            bundle,
				Gating:            gating,
				ClockHz:           clock.FrequencyHz,
				PropagationCycles: 1,
				DisablePipelining: cfg.DisableReservationPipelining,
				Events:            f.events,
			}, c.txPort, f.alloc, f.rxs, f.ledger, f.handleDrop)
			if err != nil {
				return nil, err
			}
			f.txs = append(f.txs, tx)
		}
	}

	// Activity tracking: wire every input port to wake its consumer.
	f.routerActive = sim.NewBitset(len(f.routers))
	f.txActive = sim.NewBitset(len(f.txs))
	f.injActive = sim.NewBitset(len(f.cores))
	f.ejectActive = sim.NewBitset(len(f.cores))
	for ri := range f.routers {
		ri := ri
		r := f.routers[ri]
		wake := func() { f.routerActive.Set(ri) }
		for i := 0; i < r.Inputs(); i++ {
			r.Input(i).SetWake(wake)
		}
	}
	for c := range f.cores {
		c := c
		f.cores[c].ejectPort.SetWake(func() { f.ejectActive.Set(c) })
	}
	for i := range f.txs {
		i := i
		f.clusters[i].txPort.SetWake(func() { f.txActive.Set(i) })
	}
	f.onEjectFlit = func(fl packet.Flit) {
		f.collector.OnDeliverFlit(fl.Bits(), int(fl.Packet.SrcCluster))
	}
	f.onEjectPacket = func(p *packet.Packet) {
		f.totals.Delivered++
		f.collector.OnDeliverPacket(p.Born, f.now)
		f.events.AppendInts(f.now, event.PacketDelivered, int(p.DstCluster), int64(p.ID),
			"core %d, latency %d cycles", int64(p.Dst), int64(f.now-p.Born))
		// The tail was the last live reference: recycle the struct.
		f.pool.Put(p)
	}

	// Initial workload mapping.
	assignment, err := cfg.Pattern.Assign(cfg.Topology, cfg.Set, f.rng.Split())
	if err != nil {
		return nil, err
	}
	if err := f.applyAssignment(assignment); err != nil {
		return nil, err
	}

	// Scheduled task remaps.
	for _, remap := range cfg.Remaps {
		pattern := remap.Pattern
		f.timers.Schedule(remap.At, func(at sim.Cycle) {
			a, err := pattern.Assign(cfg.Topology, cfg.Set, f.rng.Split())
			if err != nil {
				return // validated in Config.Validate; patterns are static
			}
			_ = f.applyAssignment(a)
			f.events.Appendf(at, event.TaskRemap, -1, 0, "workload -> %s", pattern.Name())
		})
	}
	return f, nil
}

// Events returns the protocol event log, or nil when not enabled.
func (f *Fabric) Events() *event.Log { return f.events }

// applyAssignment installs a workload mapping: new sources and fresh
// demand tables for every core.
func (f *Fabric) applyAssignment(a traffic.Assignment) error {
	f.assignment = a
	for c := range f.cores {
		coreID := topology.CoreID(c)
		profile := a.Cores[c]
		src, err := traffic.NewSource(coreID, profile, f.cfg.Set.Format, f.clock,
			f.cfg.LoadScale, f.rng.Split(), &f.msgIDs, &f.pktIDs)
		if err != nil {
			return err
		}
		f.cores[c].source = src
		src.SetPool(&f.pool)
		f.alloc.SetDemand(coreID, profile.DemandTable(f.cfg.Topology, f.cfg.Topology.ClusterOf(coreID)))
	}
	f.genList = f.genList[:0]
	for c := range f.cores {
		if !f.cores[c].source.Idle() {
			f.genList = append(f.genList, &f.cores[c])
		}
	}
	return nil
}

// Reseed restarts the fabric's randomness from seed at the current cycle
// boundary: the run RNG is reset and the active workload pattern is
// re-assigned so every source draws from the new stream. Combined with
// Checkpoint/Restore this forks divergent replicas off one warmed-up
// prefix — buffers, allocations and in-flight packets carry over while
// all future random draws follow the new seed, and the result reports
// it. Reseeding the same state with the same seed is deterministic:
// re-running a fork reproduces it bit-identically.
func (f *Fabric) Reseed(seed uint64) error {
	f.seed = seed
	f.rng.SetState(seed)
	a, err := f.cfg.Pattern.Assign(f.cfg.Topology, f.cfg.Set, f.rng.Split())
	if err != nil {
		return err
	}
	return f.applyAssignment(a)
}

// SetLoadScale replaces the offered-load multiplier. It only takes
// effect on the next Reseed (or task remap), which rebuilds every
// traffic source from the current configuration — so the canonical fork
// sequence Restore → SetLoadScale → Reseed reproduces, bit for bit, a
// fabric freshly built at the new load: nothing else in the build
// consumes the scale. Checkpoints capture the scale and Restore rewinds
// it, so forking across load scales never leaks one member's load into
// the next.
func (f *Fabric) SetLoadScale(scale float64) error {
	if scale < 0 || scale != scale || scale > maxFiniteLoadScale {
		return fmt.Errorf("fabric: load scale %g out of range", scale)
	}
	f.cfg.LoadScale = scale
	return nil
}

// maxFiniteLoadScale rejects +Inf and absurd scales that would overflow
// the per-cycle injection probabilities.
const maxFiniteLoadScale = 1 << 40

// handleDrop is the TX engines' drop callback: the receiver had no free
// VC, the packet's flits were discarded, and the source must retransmit
// after a back-off (§1.4), up to the retry budget.
func (f *Fabric) handleDrop(p *packet.Packet, now sim.Cycle) {
	f.totals.DroppedRX++
	f.collector.OnDropRX()
	if p.Attempt > f.cfg.MaxRetries {
		f.totals.Lost++
		f.collector.OnLost()
		f.pool.Put(p)
		return
	}
	f.totals.Retransmitted++
	f.collector.OnRetransmit()
	f.events.AppendInts(now, event.Retransmit, int(p.SrcCluster), int64(p.ID),
		"attempt %d, back-off %d cycles", int64(p.Attempt), int64(f.cfg.RetryBackoffCycles))
	f.addRetxPending(p)
	f.timers.Schedule(now+sim.Cycle(f.cfg.RetryBackoffCycles), func(at sim.Cycle) {
		f.removeRetxPending(p)
		retry := traffic.RetransmitFrom(&f.pool, p, at, &f.pktIDs)
		// Retransmissions bypass the source-queue limit: the message is
		// already committed and must not be silently shed.
		f.enqueueAtSource(retry.Src, retry)
		f.pool.Put(p) // the old attempt is fully copied out
	})
}

// enqueueAtSource appends p to core c's source queue and registers the
// core on the injection active set. Every out-of-band insertion (retry
// timers, tests) must go through it so the core is not skipped.
func (f *Fabric) enqueueAtSource(c topology.CoreID, p *packet.Packet) {
	f.cores[c].queue.Push(p)
	f.injActive.Set(int(c))
}

// Now returns the current cycle.
func (f *Fabric) Now() sim.Cycle { return f.now }

// DBA returns the dynamic allocator, or nil for the Firefly baseline.
func (f *Fabric) DBA() *core.Allocator { return f.dba }

// Assignment returns the workload mapping currently in force.
func (f *Fabric) Assignment() traffic.Assignment { return f.assignment }

// Step simulates one cycle. Each phase visits only the components on its
// active set; a skipped component's tick is provably a no-op (empty
// ports, idle engines, zero-rate sources), so the result is bit-identical
// to ticking everything — TestGoldenResults enforces this.
//
//hetpnoc:hotpath
func (f *Fabric) Step() error {
	now := f.now
	if int(now) == f.cfg.WarmupCycles {
		f.ledger.StartMeasurement()
		f.collector.StartMeasurement(now)
	}

	f.timers.Fire(now)
	f.alloc.Tick(now)

	// Traffic generation into the bounded source queues.
	for _, cs := range f.genList {
		p := cs.source.Tick(now, f.cfg.Topology)
		if p == nil {
			continue
		}
		if cs.queue.Len() >= f.cfg.SourceQueueLimit {
			cs.rejects++
			f.totals.Rejected++
			f.collector.OnReject()
			f.pool.Put(p) // never escaped: safe to recycle immediately
			continue
		}
		cs.queue.Push(p)
		f.injActive.Set(int(cs.id))
		f.totals.Injected++
		f.collector.OnInject()
	}

	// Injection into the electrical network. The scan loops below range
	// over the occupancy words and guard the decoded index with one
	// unsigned compare, which the bitset invariant makes dead but the
	// bounds-check-elimination pass can reason with: the implicit
	// per-access checks inside the loop bodies all fold away.
	// Retiring a component clears its bit through the ranged word slice
	// (the live backing of the bitset): the word index is the range
	// variable, so the store needs no bounds check either.
	cores := f.cores
	injWords := f.injActive.Words()
	for w, word := range injWords {
		for ; word != 0; word &= word - 1 {
			i := w<<6 + bits.TrailingZeros64(word)
			if uint(i) >= uint(len(cores)) {
				continue
			}
			cs := &cores[i]
			if err := cs.pumpInject(now); err != nil {
				return fmt.Errorf("cycle %d: %w", now, err)
			}
			if cs.inFlight == nil && cs.queue.Len() == 0 {
				injWords[w] &^= 1 << (uint(i) & 63)
			}
		}
	}

	// Inter-cluster photonic transport (crossbar engines or the torus).
	txs := f.txs
	txWords := f.txActive.Words()
	for w, word := range txWords {
		for ; word != 0; word &= word - 1 {
			i := w<<6 + bits.TrailingZeros64(word)
			if uint(i) >= uint(len(txs)) {
				continue
			}
			tx := txs[i]
			if err := tx.Tick(now); err != nil {
				return fmt.Errorf("cycle %d: %w", now, err)
			}
			if !tx.Busy() {
				txWords[w] &^= 1 << (uint(i) & 63)
			}
		}
	}
	if f.torus != nil {
		if err := f.torus.Tick(now); err != nil {
			return fmt.Errorf("cycle %d: %w", now, err)
		}
	}

	// Electrical routers (core switches, then photonic routers). A router
	// woken mid-phase by an upstream enqueue stays registered for the next
	// cycle; ticking it now would be a no-op anyway, because flits that
	// arrived this cycle are still inside the router pipeline delay.
	routers := f.routers
	routerWords := f.routerActive.Words()
	for w, word := range routerWords {
		for ; word != 0; word &= word - 1 {
			i := w<<6 + bits.TrailingZeros64(word)
			if uint(i) >= uint(len(routers)) {
				continue
			}
			r := routers[i]
			if err := r.Tick(now); err != nil {
				return fmt.Errorf("cycle %d: %w", now, err)
			}
			if r.BufferedFlits() == 0 {
				routerWords[w] &^= 1 << (uint(i) & 63)
			}
		}
	}

	// Core ejection.
	ejWords := f.ejectActive.Words()
	for w, word := range ejWords {
		for ; word != 0; word &= word - 1 {
			i := w<<6 + bits.TrailingZeros64(word)
			if uint(i) >= uint(len(cores)) {
				continue
			}
			cs := &cores[i]
			if err := cs.drainEject(now, f.cfg.EjectWidth, f.onEjectFlit, f.onEjectPacket); err != nil {
				return fmt.Errorf("cycle %d: %w", now, err)
			}
			if cs.ejectPort.BufferedFlits() == 0 {
				ejWords[w] &^= 1 << (uint(i) & 63)
			}
		}
	}

	// Congestion-sensitive buffer retention energy, proportional to the
	// bits held in SRAM this cycle. An empty fabric holds zero bits and
	// would add exactly +0.0, so the call is skipped.
	if f.occupancy != 0 {
		f.ledger.AddBufferResidency(float64(f.occupancy) * float64(f.cfg.Set.Format.FlitBits))
	}

	f.now++
	return nil
}

// CancelCheckInterval is the number of cycles simulated between context
// checks in StepContext/RunContext. The check lives outside Step, so the
// zero-alloc hot path is untouched: cancellation latency is bounded by
// one interval's wall time (tens of microseconds on current hardware)
// while the per-cycle cost of supporting it is zero.
const CancelCheckInterval = 1024

// StepContext simulates up to cycles cycles, polling ctx between
// CancelCheckInterval-sized chunks. It returns ctx.Err() when canceled
// mid-run; the fabric is left at a cycle boundary and remains usable
// (Finish still produces a partial-window result). A background context
// makes it equivalent to calling Step cycles times.
func (f *Fabric) StepContext(ctx context.Context, cycles int) error {
	for done := 0; done < cycles; {
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := cycles - done
		if chunk > CancelCheckInterval {
			chunk = CancelCheckInterval
		}
		for i := 0; i < chunk; i++ {
			if err := f.Step(); err != nil {
				return err
			}
		}
		done += chunk
	}
	return nil
}

// RunContext simulates the configured number of cycles, honoring ctx
// cancellation between cycle chunks, and returns the result.
func (f *Fabric) RunContext(ctx context.Context) (Result, error) {
	if err := f.StepContext(ctx, f.cfg.Cycles); err != nil {
		return Result{}, err
	}
	return f.Finish()
}

// Run simulates the configured number of cycles and returns the result.
//
//hetpnoc:ctxroot synchronous wrapper over RunContext for tests and CLI sweeps
func (f *Fabric) Run() (Result, error) {
	return f.RunContext(context.Background())
}

// Finish closes the measurement window and assembles the result. Use it
// after driving the simulation manually with Step.
func (f *Fabric) Finish() (Result, error) {
	f.collector.Finish(f.now)
	return f.result(), nil
}

// DeliveredPackets returns the packets delivered since warm-up ended.
func (f *Fabric) DeliveredPackets() int64 {
	return f.collector.Delivered()
}

// Totals returns the un-gated whole-run packet counters.
func (f *Fabric) Totals() Totals { return f.totals }

// LivePackets returns the packets currently in flight anywhere in the
// fabric: source queues, router buffers, photonic channels and pending
// retransmission timers.
func (f *Fabric) LivePackets() int64 { return f.pool.Live() }

// AllocatedOf returns the wavelengths currently owned by cluster c.
func (f *Fabric) AllocatedOf(c topology.ClusterID) []photonic.WavelengthID {
	return f.alloc.Allocated(c)
}
