package fabric

import (
	"fmt"

	"hetpnoc/internal/core"
	"hetpnoc/internal/event"
	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/stats"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/torus"
	"hetpnoc/internal/traffic"
	"hetpnoc/internal/xbar"
)

// Fabric is one fully-assembled chip ready to simulate.
type Fabric struct {
	cfg    Config
	clock  sim.Clock
	bundle photonic.WaveguideBundle

	ledger    *photonic.Ledger
	occupancy int64
	timers    *sim.TimerWheel
	rng       *sim.RNG
	collector *stats.Collector
	events    *event.Log

	alloc xbar.Allocator
	dba   *core.Allocator // nil for the Firefly baseline

	clusters []*cluster
	cores    []*coreState
	routers  []*router.Router
	txs      []*xbar.TX
	torus    *torus.Network
	rxs      []*xbar.RX

	assignment traffic.Assignment
	msgIDs     packet.MessageID
	pktIDs     packet.ID
	now        sim.Cycle
}

// New builds a fabric from cfg (after applying defaults and validation).
func New(cfg Config) (*Fabric, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	bundle, err := photonic.NewBundle(cfg.Set.TotalWavelengths)
	if err != nil {
		return nil, err
	}
	clock := sim.DefaultClock()

	f := &Fabric{
		cfg:       cfg,
		clock:     clock,
		bundle:    bundle,
		ledger:    photonic.NewLedger(cfg.Energy),
		timers:    sim.NewTimerWheel(),
		rng:       sim.NewRNG(cfg.Seed),
		collector: stats.NewCollector(clock),
	}
	f.collector.SetClusterCount(cfg.Topology.Clusters())
	if cfg.EventCapacity > 0 {
		log, err := event.NewLog(cfg.EventCapacity)
		if err != nil {
			return nil, err
		}
		f.events = log
	}

	switch cfg.Arch {
	case Firefly, TorusPNoC:
		alloc, err := xbar.NewStatic(cfg.Topology, bundle, cfg.Set.TotalWavelengths)
		if err != nil {
			return nil, err
		}
		f.alloc = alloc
	case DHetPNoC:
		policy := core.PolicyGreedy
		if cfg.ProportionalDBA {
			policy = core.PolicyProportional
		}
		dba, err := core.NewAllocator(core.Config{
			Policy:                policy,
			Topology:              cfg.Topology,
			Bundle:                bundle,
			TotalWavelengths:      cfg.Set.TotalWavelengths,
			ReservedPerCluster:    cfg.ReservedPerCluster,
			MaxChannelWavelengths: cfg.Set.MaxChannelWavelengths(),
			MaxAcquirePerVisit:    cfg.MaxAcquirePerVisit,
			WaveguidesPerCluster:  cfg.WaveguidesPerCluster,
			ClockHz:               clock.FrequencyHz,
			Ledger:                f.ledger,
			Events:                f.events,
		})
		if err != nil {
			return nil, err
		}
		f.alloc = dba
		f.dba = dba
	}

	// Core states first so cluster builders can fill their ports.
	f.cores = make([]*coreState, cfg.Topology.Cores())
	for c := range f.cores {
		f.cores[c] = &coreState{id: topology.CoreID(c)}
	}

	// Clusters, electrical routers and crossbar engines.
	f.rxs = make([]*xbar.RX, cfg.Topology.Clusters())
	for cl := 0; cl < cfg.Topology.Clusters(); cl++ {
		var (
			built *cluster
			err   error
		)
		if cfg.IntraCluster == Concentrated {
			built, err = f.buildConcentrated(topology.ClusterID(cl))
		} else {
			built, err = f.buildAllToAll(topology.ClusterID(cl))
		}
		if err != nil {
			return nil, err
		}
		f.clusters = append(f.clusters, built)
		rxPort := built.rxInputPort(cfg.Topology.ClusterSize(), cfg.IntraCluster)
		f.rxs[cl] = xbar.NewRX(topology.ClusterID(cl), rxPort, bundle, f.ledger)
	}
	for _, c := range f.clusters {
		f.routers = append(f.routers, c.switches...)
	}
	for _, c := range f.clusters {
		f.routers = append(f.routers, c.photonic)
	}

	if cfg.Arch == TorusPNoC {
		txPorts := make([]*router.Port, len(f.clusters))
		for cl, c := range f.clusters {
			txPorts[cl] = c.txPort
		}
		net, err := torus.New(torus.Config{
			Nodes:              cfg.Topology.Clusters(),
			Bundle:             bundle,
			ClockHz:            clock.FrequencyHz,
			SetupHopCycles:     int(router.PipelineDelay) + 2,
			RetryBackoffCycles: cfg.RetryBackoffCycles,
			MaxFlits:           cfg.Set.Format.Flits,
			Events:             f.events,
		}, txPorts, f.rxs, f.ledger, f.handleDrop)
		if err != nil {
			return nil, err
		}
		f.torus = net
	} else {
		gating := xbar.GateChannel
		if cfg.Arch == DHetPNoC {
			gating = xbar.GateSelected
		}
		for cl, c := range f.clusters {
			tx, err := xbar.NewTX(xbar.TXConfig{
				Cluster:           topology.ClusterID(cl),
				Clusters:          cfg.Topology.Clusters(),
				MaxFlits:          cfg.Set.Format.Flits,
				Bundle:            bundle,
				Gating:            gating,
				ClockHz:           clock.FrequencyHz,
				PropagationCycles: 1,
				DisablePipelining: cfg.DisableReservationPipelining,
				Events:            f.events,
			}, c.txPort, f.alloc, f.rxs, f.ledger, f.handleDrop)
			if err != nil {
				return nil, err
			}
			f.txs = append(f.txs, tx)
		}
	}

	// Initial workload mapping.
	assignment, err := cfg.Pattern.Assign(cfg.Topology, cfg.Set, f.rng.Split())
	if err != nil {
		return nil, err
	}
	if err := f.applyAssignment(assignment); err != nil {
		return nil, err
	}

	// Scheduled task remaps.
	for _, remap := range cfg.Remaps {
		pattern := remap.Pattern
		f.timers.Schedule(remap.At, func(at sim.Cycle) {
			a, err := pattern.Assign(cfg.Topology, cfg.Set, f.rng.Split())
			if err != nil {
				return // validated in Config.Validate; patterns are static
			}
			_ = f.applyAssignment(a)
			f.events.Appendf(at, event.TaskRemap, -1, 0, "workload -> %s", pattern.Name())
		})
	}
	return f, nil
}

// Events returns the protocol event log, or nil when not enabled.
func (f *Fabric) Events() *event.Log { return f.events }

// applyAssignment installs a workload mapping: new sources and fresh
// demand tables for every core.
func (f *Fabric) applyAssignment(a traffic.Assignment) error {
	f.assignment = a
	for c, cs := range f.cores {
		coreID := topology.CoreID(c)
		profile := a.Cores[c]
		src, err := traffic.NewSource(coreID, profile, f.cfg.Set.Format, f.clock,
			f.cfg.LoadScale, f.rng.Split(), &f.msgIDs, &f.pktIDs)
		if err != nil {
			return err
		}
		cs.source = src
		f.alloc.SetDemand(coreID, profile.DemandTable(f.cfg.Topology, f.cfg.Topology.ClusterOf(coreID)))
	}
	return nil
}

// handleDrop is the TX engines' drop callback: the receiver had no free
// VC, the packet's flits were discarded, and the source must retransmit
// after a back-off (§1.4), up to the retry budget.
func (f *Fabric) handleDrop(p *packet.Packet, now sim.Cycle) {
	f.collector.OnDropRX()
	if p.Attempt > f.cfg.MaxRetries {
		f.collector.OnLost()
		return
	}
	f.collector.OnRetransmit()
	f.events.Appendf(now, event.Retransmit, int(p.SrcCluster), int64(p.ID),
		"attempt %d, back-off %d cycles", p.Attempt, f.cfg.RetryBackoffCycles)
	f.timers.Schedule(now+sim.Cycle(f.cfg.RetryBackoffCycles), func(at sim.Cycle) {
		retry := traffic.Retransmit(p, at, &f.pktIDs)
		// Retransmissions bypass the source-queue limit: the message is
		// already committed and must not be silently shed.
		f.cores[p.Src].queue = append(f.cores[p.Src].queue, retry)
	})
}

// Now returns the current cycle.
func (f *Fabric) Now() sim.Cycle { return f.now }

// DBA returns the dynamic allocator, or nil for the Firefly baseline.
func (f *Fabric) DBA() *core.Allocator { return f.dba }

// Assignment returns the workload mapping currently in force.
func (f *Fabric) Assignment() traffic.Assignment { return f.assignment }

// Step simulates one cycle.
func (f *Fabric) Step() error {
	now := f.now
	if int(now) == f.cfg.WarmupCycles {
		f.ledger.StartMeasurement()
		f.collector.StartMeasurement(now)
	}

	f.timers.Fire(now)
	f.alloc.Tick(now)

	// Traffic generation into the bounded source queues.
	for _, cs := range f.cores {
		p := cs.source.Tick(now, f.cfg.Topology)
		if p == nil {
			continue
		}
		if len(cs.queue) >= f.cfg.SourceQueueLimit {
			cs.rejects++
			f.collector.OnReject()
			continue
		}
		cs.queue = append(cs.queue, p)
		f.collector.OnInject()
	}

	// Injection into the electrical network.
	for _, cs := range f.cores {
		if err := cs.pumpInject(now); err != nil {
			return fmt.Errorf("cycle %d: %w", now, err)
		}
	}

	// Inter-cluster photonic transport (crossbar engines or the torus).
	for _, tx := range f.txs {
		if err := tx.Tick(now); err != nil {
			return fmt.Errorf("cycle %d: %w", now, err)
		}
	}
	if f.torus != nil {
		if err := f.torus.Tick(now); err != nil {
			return fmt.Errorf("cycle %d: %w", now, err)
		}
	}

	// Electrical routers (core switches, then photonic routers).
	for _, r := range f.routers {
		if err := r.Tick(now); err != nil {
			return fmt.Errorf("cycle %d: %w", now, err)
		}
	}

	// Core ejection.
	for _, cs := range f.cores {
		err := cs.drainEject(now, f.cfg.EjectWidth,
			func(fl packet.Flit) { f.collector.OnDeliverFlit(fl.Bits(), int(fl.Packet.SrcCluster)) },
			func(p *packet.Packet) {
				f.collector.OnDeliverPacket(p.Born, now)
				f.events.Appendf(now, event.PacketDelivered, int(p.DstCluster), int64(p.ID),
					"core %d, latency %d cycles", p.Dst, now-p.Born)
			})
		if err != nil {
			return fmt.Errorf("cycle %d: %w", now, err)
		}
	}

	// Congestion-sensitive buffer retention energy, proportional to the
	// bits held in SRAM this cycle.
	f.ledger.AddBufferResidency(float64(f.occupancy) * float64(f.cfg.Set.Format.FlitBits))

	f.now++
	return nil
}

// Run simulates the configured number of cycles and returns the result.
func (f *Fabric) Run() (Result, error) {
	for i := 0; i < f.cfg.Cycles; i++ {
		if err := f.Step(); err != nil {
			return Result{}, err
		}
	}
	return f.Finish()
}

// Finish closes the measurement window and assembles the result. Use it
// after driving the simulation manually with Step.
func (f *Fabric) Finish() (Result, error) {
	f.collector.Finish(f.now)
	return f.result(), nil
}

// DeliveredPackets returns the packets delivered since warm-up ended.
func (f *Fabric) DeliveredPackets() int64 {
	return f.collector.Delivered()
}

// AllocatedOf returns the wavelengths currently owned by cluster c.
func (f *Fabric) AllocatedOf(c topology.ClusterID) []photonic.WavelengthID {
	return f.alloc.Allocated(c)
}
