package torus

import (
	"testing"
	"testing/quick"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
)

// checkInvariants verifies the torus's structural invariants after any
// protocol activity: every held link belongs to exactly one active path,
// every active path's links are all held by it, and a node has at most
// one outstanding circuit as source.
func (n *Network) checkInvariants() error {
	activePaths := make(map[*path]bool)
	for src, p := range n.active {
		if p == nil {
			continue
		}
		if p.src != src {
			return errf("path at slot %d claims source %d", src, p.src)
		}
		activePaths[p] = true
		for _, l := range p.links {
			if n.linkOwner[l] != p {
				return errf("path %d->%d link %v not held by it", p.src, p.dst, l)
			}
		}
	}
	//hetpnoc:orderfree every link is checked against the same invariant; no entry depends on another
	for l, p := range n.linkOwner {
		if p == nil {
			return errf("nil owner recorded for link %v", l)
		}
		if !activePaths[p] {
			return errf("link %v held by a dead path %d->%d", l, p.src, p.dst)
		}
	}
	return nil
}

func errf(format string, args ...any) error {
	return &invariantError{msg: format, args: args}
}

type invariantError struct {
	msg  string
	args []any
}

func (e *invariantError) Error() string { return e.msg }

// TestTorusInvariantsUnderRandomTraffic drives randomized packet
// workloads and checks the circuit bookkeeping every cycle.
//
//hetpnoc:detsafe property test samples random workloads on purpose; each trial re-seeds from quick's seed argument, so any failure replays from the printed counterexample
func TestTorusInvariantsUnderRandomTraffic(t *testing.T) {
	run := func(seed uint64) bool {
		r := newRig(t)
		rng := sim.NewRNG(seed)
		nextID := packet.ID(1)

		for now := sim.Cycle(0); now < 800; now++ {
			// Random injections.
			if rng.Bernoulli(0.2) {
				src := rng.Intn(16)
				dst := rng.Intn(16)
				if dst == src {
					dst = (dst + 1) % 16
				}
				pkt := &packet.Packet{
					ID: nextID, Flits: rng.Intn(16) + 1, FlitBits: 32,
					SrcCluster: topology.ClusterID(src), DstCluster: topology.ClusterID(dst),
				}
				if vc, ok := r.tx[src].AllocVC(pkt.ID); ok {
					nextID++
					for i := 0; i < pkt.Flits; i++ {
						if err := r.tx[src].Enqueue(vc, packet.FlitAt(pkt, i), now); err != nil {
							return false
						}
					}
				}
			}
			if err := r.net.Tick(now); err != nil {
				return false
			}
			if err := r.net.checkInvariants(); err != nil {
				t.Logf("seed %d cycle %d: %v", seed, now, err)
				return false
			}
			// Drain destinations so receive VCs recycle.
			for node := 0; node < 16; node++ {
				for vc := 0; vc < r.rxPort[node].VCCount(); vc++ {
					for r.rxPort[node].VC(vc).Len() > 0 {
						if _, err := r.rxPort[node].Pop(vc); err != nil {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
