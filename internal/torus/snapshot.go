package torus

import (
	"fmt"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/xbar"
)

// pathSnapshot is a checkpoint of one circuit in flight. The link list
// is shared with the live path — Route builds it once and never mutates
// it afterwards.
type pathSnapshot struct {
	src, dst int
	pkt      *packet.Packet
	vc       int
	links    []linkID
	turns    int
	state    phase
	readyAt  sim.Cycle
	window   *xbar.WindowSnapshot
	credit   float64
}

// NetworkSnapshot is a checkpoint of the torus transport: the active
// circuits (from which the link ownership map is rebuilt), the per-node
// retry and arbitration state, and the counters.
type NetworkSnapshot struct {
	active  []*pathSnapshot
	retryAt []sim.Cycle
	rr      []int

	pathsSetUp    int64
	setupsBlocked int64
	packetsSent   int64
}

// Snapshot copies the network's mutable state.
func (n *Network) Snapshot() *NetworkSnapshot {
	s := &NetworkSnapshot{
		active:        make([]*pathSnapshot, len(n.active)),
		retryAt:       append([]sim.Cycle(nil), n.retryAt...),
		rr:            append([]int(nil), n.rr...),
		pathsSetUp:    n.pathsSetUp,
		setupsBlocked: n.setupsBlocked,
		packetsSent:   n.packetsSent,
	}
	for src, p := range n.active {
		if p == nil {
			continue
		}
		s.active[src] = &pathSnapshot{
			src:     p.src,
			dst:     p.dst,
			pkt:     p.pkt,
			vc:      p.vc,
			links:   p.links,
			turns:   p.turns,
			state:   p.state,
			readyAt: p.readyAt,
			window:  p.window.Snapshot(),
			credit:  p.credit,
		}
	}
	return s
}

// Restore rewinds the network to a snapshot, rebuilding the link
// ownership map from the restored circuits.
func (n *Network) Restore(s *NetworkSnapshot) error {
	if len(s.active) != len(n.active) {
		return fmt.Errorf("torus: snapshot has %d nodes, network has %d", len(s.active), len(n.active))
	}
	copy(n.retryAt, s.retryAt)
	copy(n.rr, s.rr)
	n.pathsSetUp = s.pathsSetUp
	n.setupsBlocked = s.setupsBlocked
	n.packetsSent = s.packetsSent
	//hetpnoc:orderfree deletes every key; the visit order is invisible
	for l := range n.linkOwner {
		delete(n.linkOwner, l)
	}
	for src, ps := range s.active {
		if ps == nil {
			n.active[src] = nil
			continue
		}
		p := &path{
			src:     ps.src,
			dst:     ps.dst,
			pkt:     ps.pkt,
			vc:      ps.vc,
			links:   ps.links,
			turns:   ps.turns,
			state:   ps.state,
			readyAt: ps.readyAt,
			window:  xbar.RestoreWindow(ps.window, n.rxs),
			credit:  ps.credit,
		}
		n.active[src] = p
		for _, l := range p.links {
			n.linkOwner[l] = p
		}
	}
	return nil
}

// Packets appends the packets held by active circuits to dst, for the
// fabric checkpoint's packet capture.
func (n *Network) Packets(dst []*packet.Packet) []*packet.Packet {
	for _, p := range n.active {
		if p != nil {
			dst = append(dst, p.pkt)
		}
	}
	return dst
}
