// Package torus implements the photonic 2D folded-torus NoC of Shacham et
// al. ([15], described in §2.1.3 of the thesis) as an additional
// related-work baseline: a circuit-switched photonic network in which an
// electronic control network sets up a path hop by hop with
// dimension-order routing, photonic switching elements (PSEs) turn the
// light at intermediate routers, and the payload then streams at the full
// DWDM rate of the reserved path.
//
// Behavioural model (documented simplifications):
//
//   - Path setup is reserved atomically when initiated and held for the
//     setup + acknowledgement round trip (hops x SetupHopCycles each way)
//     before streaming begins. A real setup walks hop by hop; atomic
//     reservation with the same latency preserves throughput and blocking
//     behaviour while keeping the model deterministic.
//   - The torus routers are blocking (§2.1.3: "the design choice would be
//     to blocking switch because of its compactness"): a link carries one
//     path at a time. A blocked setup is abandoned — the thesis's
//     path-blocked packet — and the source retries after a back-off.
//   - The payload streams on every DWDM wavelength of the path
//     (64 x 12.5 Gb/s) with the same credit serialization as the crossbar
//     engines, and lands in the destination's receive engine (shared with
//     the crossbar architectures), so drops and retransmissions behave
//     identically.
package torus

import (
	"fmt"

	"hetpnoc/internal/event"
	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/xbar"
)

// Direction indexes a torus node's four links.
type Direction int

// Torus link directions.
const (
	East Direction = iota
	West
	North
	South
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case East:
		return "east"
	case West:
		return "west"
	case North:
		return "north"
	case South:
		return "south"
	default:
		return "unknown"
	}
}

// linkID identifies one directed photonic link.
type linkID struct {
	node int
	dir  Direction
}

// Config parameterizes the torus network.
type Config struct {
	// Nodes is the cluster count; it must be a perfect square (16 -> 4x4).
	Nodes int

	// Bundle describes the per-link DWDM capacity (64 wavelengths).
	Bundle photonic.WaveguideBundle

	ClockHz float64

	// SetupHopCycles is the electronic control network's per-hop latency
	// for path-setup and acknowledgement packets.
	SetupHopCycles int

	// RetryBackoffCycles delays a source's retry after a blocked setup.
	RetryBackoffCycles int

	// MaxFlits is the largest packet length, for diagnostics.
	MaxFlits int

	// Events, when non-nil, receives protocol events.
	Events *event.Log
}

// phase is a path's protocol state.
type phase int

const (
	phaseSetup phase = iota + 1
	phaseStreaming
)

// path is one circuit in flight.
type path struct {
	src, dst int
	pkt      *packet.Packet
	vc       int
	links    []linkID
	turns    int
	state    phase
	// readyAt is when streaming may begin (setup + ack round trip).
	readyAt sim.Cycle
	window  *xbar.Window
	credit  float64
}

// Network is the torus transport: it drains each cluster's transmit port
// and delivers into each cluster's receive engine, replacing the crossbar
// TX engines.
type Network struct {
	cfg    Config
	side   int
	tx     []*router.Port
	rxs    []*xbar.RX
	ledger *photonic.Ledger
	onDrop xbar.DropHandler

	linkOwner map[linkID]*path //hetpnoc:nosnap derived: RestoreNetwork rebuilds it from the restored circuits
	active    []*path          // per source node, nil when idle
	retryAt   []sim.Cycle
	rr        []int

	// band is the full DWDM band of one link's waveguide, the gating set
	// of every torus receive window. It never varies per path, so it is
	// computed once here instead of allocating per established circuit.
	band []photonic.WavelengthID //hetpnoc:nosnap immutable full-band table, computed once at build

	pathsSetUp    int64
	setupsBlocked int64
	packetsSent   int64
}

// New builds the torus over the given per-cluster transmit ports and
// receive engines.
func New(cfg Config, tx []*router.Port, rxs []*xbar.RX, ledger *photonic.Ledger, onDrop xbar.DropHandler) (*Network, error) {
	side := intSqrt(cfg.Nodes)
	if side*side != cfg.Nodes || side < 2 {
		return nil, fmt.Errorf("torus: %d nodes is not a usable square grid", cfg.Nodes)
	}
	if len(tx) != cfg.Nodes || len(rxs) != cfg.Nodes {
		return nil, fmt.Errorf("torus: %d tx ports and %d receivers for %d nodes", len(tx), len(rxs), cfg.Nodes)
	}
	if cfg.ClockHz <= 0 || cfg.SetupHopCycles <= 0 || cfg.RetryBackoffCycles <= 0 {
		return nil, fmt.Errorf("torus: timing parameters must be positive")
	}
	band := make([]photonic.WavelengthID, cfg.Bundle.WavelengthsPerWaveguide)
	for i := range band {
		band[i] = photonic.WavelengthID{Waveguide: 0, Wavelength: i}
	}
	return &Network{
		cfg:       cfg,
		side:      side,
		tx:        tx,
		rxs:       rxs,
		ledger:    ledger,
		onDrop:    onDrop,
		linkOwner: make(map[linkID]*path),
		active:    make([]*path, cfg.Nodes),
		retryAt:   make([]sim.Cycle, cfg.Nodes),
		rr:        make([]int, cfg.Nodes),
		band:      band,
	}, nil
}

func intSqrt(n int) int {
	for s := 0; s*s <= n; s++ {
		if s*s == n {
			return s
		}
	}
	return 0
}

// PathsSetUp returns completed circuit establishments.
func (n *Network) PathsSetUp() int64 { return n.pathsSetUp }

// SetupsBlocked returns setups abandoned because a link was held.
func (n *Network) SetupsBlocked() int64 { return n.setupsBlocked }

// PacketsSent returns packets fully streamed.
func (n *Network) PacketsSent() int64 { return n.packetsSent }

// Route computes the dimension-order (X then Y) folded-torus route from
// src to dst: the directed links traversed and the number of 90-degree
// turns the light makes through PSEs.
func (n *Network) Route(src, dst int) (links []linkID, turns int) {
	sx, sy := src%n.side, src/n.side
	dx, dy := dst%n.side, dst/n.side

	stepX, distX := torusStep(sx, dx, n.side)
	stepY, distY := torusStep(sy, dy, n.side)

	x, y := sx, sy
	for i := 0; i < distX; i++ {
		dir := East
		if stepX < 0 {
			dir = West
		}
		links = append(links, linkID{node: y*n.side + x, dir: dir})
		x = mod(x+stepX, n.side)
	}
	for i := 0; i < distY; i++ {
		dir := South
		if stepY < 0 {
			dir = North
		}
		links = append(links, linkID{node: y*n.side + x, dir: dir})
		y = mod(y+stepY, n.side)
	}
	if distX > 0 && distY > 0 {
		turns = 1 // one X->Y turn through a PSE
	}
	return links, turns
}

// torusStep returns the direction (+1/-1) and distance of the shortest
// wrap-around walk from a to b on a ring of the given size.
func torusStep(a, b, size int) (step, dist int) {
	if a == b {
		return 0, 0
	}
	forward := mod(b-a, size)
	backward := mod(a-b, size)
	if forward <= backward {
		return 1, forward
	}
	return -1, backward
}

func mod(a, m int) int {
	return ((a % m) + m) % m
}

// Tick advances the torus one cycle: sources with ready headers attempt
// path setup; established circuits stream flits.
func (n *Network) Tick(now sim.Cycle) error {
	for src := range n.active {
		p := n.active[src]
		if p == nil {
			n.trySetup(src, now)
			continue
		}
		switch p.state {
		case phaseSetup:
			if now >= p.readyAt {
				// Acknowledgement arrived: gate the destination's
				// detectors on the full link DWDM and stream.
				p.window = n.rxs[p.dst].Begin(p.pkt, n.band)
				p.state = phaseStreaming
				p.credit = 0
				n.cfg.Events.AppendInts(now, event.StreamStarted, src, int64(p.pkt.ID),
					"torus path to %d, %d hops", int64(p.dst), int64(len(p.links)))
			}
		case phaseStreaming:
			if err := n.stream(p, now); err != nil {
				return err
			}
		}
	}
	return nil
}

// trySetup scans the source's transmit VCs for a ready header and attempts
// to reserve its route.
func (n *Network) trySetup(src int, now sim.Cycle) {
	if now < n.retryAt[src] {
		return
	}
	port := n.tx[src]
	if port.BufferedFlits() == 0 {
		return
	}
	vcs := port.VCCount()
	for scan := 0; scan < vcs; scan++ {
		vc := (n.rr[src] + scan) % vcs
		flit, enq, ok := port.Head(vc)
		if !ok || !flit.Type.IsHeader() || now-enq < router.PipelineDelay {
			continue
		}
		n.rr[src] = (vc + 1) % vcs

		dst := int(flit.Packet.DstCluster)
		links, turns := n.Route(src, dst)

		// The electronic setup packet costs one control-router
		// traversal per hop regardless of outcome.
		setupBits := float64(packet.ReservationBits(n.cfg.Nodes, n.cfg.MaxFlits, n.cfg.Bundle, 0))
		n.ledger.AddRouterTraversal(setupBits * float64(len(links)))

		for _, l := range links {
			if n.linkOwner[l] != nil {
				// Blocked: a path-blocked packet returns to the source
				// (already-checked links were provisionally held and
				// release immediately in this atomic model).
				n.setupsBlocked++
				n.retryAt[src] = now + sim.Cycle(n.cfg.RetryBackoffCycles)
				n.cfg.Events.AppendInts(now, event.ReservationSent, src, int64(flit.Packet.ID),
					"torus setup to %d BLOCKED at node %d dir %d", int64(dst), int64(l.node), int64(l.dir))
				return
			}
		}
		//hetpnoc:coldcall circuit establishment, amortized over the whole packet the circuit streams
		p := &path{
			src:   src,
			dst:   dst,
			pkt:   flit.Packet,
			vc:    vc,
			links: links,
			turns: turns,
			state: phaseSetup,
			// Setup walks to the destination and the ACK returns.
			readyAt: now + sim.Cycle(2*len(links)*n.cfg.SetupHopCycles),
		}
		for _, l := range links {
			n.linkOwner[l] = p
		}
		n.active[src] = p
		n.pathsSetUp++
		n.cfg.Events.AppendInts(now, event.ReservationSent, src, int64(flit.Packet.ID),
			"torus setup to %d, %d hops, %d turns", int64(dst), int64(len(links)), int64(turns))
		return
	}
}

// stream moves flits along the established circuit at the full link rate.
func (n *Network) stream(p *path, now sim.Cycle) error {
	perCycle := photonic.BitsPerCycle(n.cfg.ClockHz) * float64(n.cfg.Bundle.WavelengthsPerWaveguide)
	flitBits := float64(p.pkt.FlitBits)
	p.credit += perCycle
	if maxCredit := flitBits + perCycle; p.credit > maxCredit {
		p.credit = maxCredit
	}
	p.window.HoldCost()

	port := n.tx[p.src]
	for p.credit >= flitBits {
		flit, enq, ok := port.Head(p.vc)
		if !ok || now-enq < router.PipelineDelay {
			return nil
		}
		if flit.Packet.ID != p.pkt.ID {
			return fmt.Errorf("torus: node %d VC %d interleaved packets %d and %d",
				p.src, p.vc, flit.Packet.ID, p.pkt.ID)
		}
		popped, err := port.Pop(p.vc)
		if err != nil {
			return err
		}
		p.credit -= flitBits
		// Launch + modulation + tuning at the source; the PSE turns add
		// no per-bit energy in this model, only path loss (see the link
		// budget module).
		n.ledger.AddPhotonicTransmit(flitBits)
		if err := p.window.Deliver(popped, now); err != nil {
			return err
		}
		if popped.Type.IsTail() {
			n.teardown(p, now)
			return nil
		}
	}
	return nil
}

// teardown releases the circuit after the tail flit.
func (n *Network) teardown(p *path, now sim.Cycle) {
	p.window.End()
	n.packetsSent++
	if p.window.Dropped() {
		n.cfg.Events.AppendInts(now, event.PacketDropped, p.dst, int64(p.pkt.ID),
			"torus, from node %d", int64(p.src))
		if n.onDrop != nil {
			n.onDrop(p.pkt, now)
		}
	} else {
		n.cfg.Events.AppendInts(now, event.PacketArrived, p.dst, int64(p.pkt.ID),
			"torus, from node %d", int64(p.src))
	}
	for _, l := range p.links {
		delete(n.linkOwner, l)
	}
	p.window.Release()
	n.active[p.src] = nil
}
