package torus

import (
	"testing"
	"testing/quick"

	"hetpnoc/internal/packet"
	"hetpnoc/internal/photonic"
	"hetpnoc/internal/router"
	"hetpnoc/internal/sim"
	"hetpnoc/internal/topology"
	"hetpnoc/internal/xbar"
)

// rig builds a 16-node torus with direct access to the transmit ports and
// receive engines.
type rig struct {
	net    *Network
	tx     []*router.Port
	rxPort []*router.Port
	ledger *photonic.Ledger
	occ    int64
	drops  []*packet.Packet
}

func newRig(t *testing.T) *rig {
	t.Helper()
	bundle, err := photonic.NewBundle(64)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{ledger: photonic.NewLedger(photonic.DefaultEnergyParams())}
	rxs := make([]*xbar.RX, 16)
	for i := 0; i < 16; i++ {
		txp, err := router.NewPort(16, 64, r.ledger, &r.occ)
		if err != nil {
			t.Fatal(err)
		}
		rxp, err := router.NewPort(16, 64, r.ledger, &r.occ)
		if err != nil {
			t.Fatal(err)
		}
		r.tx = append(r.tx, txp)
		r.rxPort = append(r.rxPort, rxp)
		rxs[i] = xbar.NewRX(topology.ClusterID(i), rxp, bundle, r.ledger)
	}
	net, err := New(Config{
		Nodes:              16,
		Bundle:             bundle,
		ClockHz:            2.5e9,
		SetupHopCycles:     4,
		RetryBackoffCycles: 16,
		MaxFlits:           64,
	}, r.tx, rxs, r.ledger, func(p *packet.Packet, _ sim.Cycle) {
		r.drops = append(r.drops, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	r.net = net
	return r
}

func (r *rig) send(t *testing.T, id packet.ID, src, dst, flits int, now sim.Cycle) {
	t.Helper()
	pkt := &packet.Packet{
		ID: id, Flits: flits, FlitBits: 32,
		SrcCluster: topology.ClusterID(src), DstCluster: topology.ClusterID(dst),
	}
	vc, ok := r.tx[src].AllocVC(pkt.ID)
	if !ok {
		t.Fatal("no TX VC")
	}
	for i := 0; i < flits; i++ {
		if err := r.tx[src].Enqueue(vc, packet.FlitAt(pkt, i), now); err != nil {
			t.Fatal(err)
		}
	}
}

func (r *rig) run(t *testing.T, from, to sim.Cycle) {
	t.Helper()
	for now := from; now < to; now++ {
		if err := r.net.Tick(now); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRouteDimensionOrder checks XY routing with wrap-around shortest
// paths on the 4x4 folded torus.
func TestRouteDimensionOrder(t *testing.T) {
	r := newRig(t)
	tests := []struct {
		src, dst  int
		wantHops  int
		wantTurns int
	}{
		{0, 1, 1, 0},  // one step east
		{0, 3, 1, 0},  // wrap west is shorter than 3 east
		{0, 4, 1, 0},  // one step south
		{0, 12, 1, 0}, // wrap north
		{0, 5, 2, 1},  // one east + one south: a PSE turn
		{0, 15, 2, 1}, // wrap both dimensions
		{5, 5, 0, 0},  // self (degenerate)
		{0, 10, 4, 1}, // 2 + 2
	}
	for _, tt := range tests {
		links, turns := r.net.Route(tt.src, tt.dst)
		if len(links) != tt.wantHops {
			t.Errorf("Route(%d,%d) = %d hops, want %d", tt.src, tt.dst, len(links), tt.wantHops)
		}
		if turns != tt.wantTurns {
			t.Errorf("Route(%d,%d) = %d turns, want %d", tt.src, tt.dst, turns, tt.wantTurns)
		}
	}
}

// TestRouteNeverExceedsDiameter: any route on a 4x4 torus is at most 4
// hops (2 per dimension).
//
//hetpnoc:detsafe property test samples random node pairs on purpose; routing is pure and quick prints any counterexample
func TestRouteNeverExceedsDiameter(t *testing.T) {
	r := newRig(t)
	f := func(rawSrc, rawDst uint8) bool {
		src, dst := int(rawSrc)%16, int(rawDst)%16
		links, turns := r.net.Route(src, dst)
		if src == dst {
			return len(links) == 0
		}
		return len(links) >= 1 && len(links) <= 4 && turns <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTorusDeliversPacket(t *testing.T) {
	r := newRig(t)
	r.send(t, 1, 0, 5, 8, 0)
	r.run(t, 0, 120)
	if got := r.rxPort[5].BufferedFlits(); got != 8 {
		t.Fatalf("destination holds %d flits, want 8", got)
	}
	if r.net.PacketsSent() != 1 || r.net.PathsSetUp() != 1 {
		t.Fatalf("sent %d packets over %d paths", r.net.PacketsSent(), r.net.PathsSetUp())
	}
	// Circuit released after the tail.
	//hetpnoc:orderfree asserts all owners are nil; order cannot matter
	for _, owner := range r.net.linkOwner {
		if owner != nil {
			t.Fatal("links still held after teardown")
		}
	}
}

// TestTorusSetupLatency: streaming cannot begin before the setup + ACK
// round trip (hops x hopCycles x 2).
func TestTorusSetupLatency(t *testing.T) {
	r := newRig(t)
	r.send(t, 1, 0, 5, 1, 0) // 2 hops: round trip = 2*2*4 = 16 cycles
	r.run(t, 0, router.PipelineDelay+16)
	if got := r.rxPort[5].BufferedFlits(); got != 0 {
		t.Fatal("flit arrived before the setup round trip completed")
	}
	r.run(t, router.PipelineDelay+16, 40)
	if got := r.rxPort[5].BufferedFlits(); got != 1 {
		t.Fatalf("flit did not arrive after setup (%d buffered)", got)
	}
}

// TestTorusBlocking: two paths contending for the same link cannot both
// hold it; the blocked source retries after the back-off and succeeds once
// the first circuit tears down.
func TestTorusBlocking(t *testing.T) {
	r := newRig(t)
	// 0 -> 2 uses links east(0), east(1); 1 -> 2 uses east(1): conflict.
	r.send(t, 1, 0, 2, 64, 0)
	r.run(t, 0, 3) // node 0 sets up first (scan order)
	r.send(t, 2, 1, 2, 8, 3)
	r.run(t, 3, 40)
	if r.net.SetupsBlocked() == 0 {
		t.Fatal("no setups blocked despite link conflict")
	}
	// Run long enough for the first packet (64 flits at 320 b/cycle =
	// ~7 cycles of streaming after a 16-cycle setup) to finish and the
	// second to retry.
	r.run(t, 40, 400)
	if r.net.PacketsSent() != 2 {
		t.Fatalf("sent %d packets, want both after retry", r.net.PacketsSent())
	}
	if got := r.rxPort[2].BufferedFlits(); got != 72 {
		t.Fatalf("destination holds %d flits, want 72", got)
	}
}

// TestTorusParallelCircuits: disjoint paths stream concurrently — the
// spatial reuse a crossbar write channel does not have.
func TestTorusParallelCircuits(t *testing.T) {
	r := newRig(t)
	r.send(t, 1, 0, 1, 64, 0)
	r.send(t, 2, 4, 5, 64, 0)
	r.send(t, 3, 8, 9, 64, 0)
	r.run(t, 0, 120)
	if r.net.PacketsSent() != 3 {
		t.Fatalf("sent %d packets, want 3 concurrent", r.net.PacketsSent())
	}
	if r.net.SetupsBlocked() != 0 {
		t.Fatalf("%d setups blocked on disjoint paths", r.net.SetupsBlocked())
	}
}

func TestTorusConfigValidation(t *testing.T) {
	bundle, err := photonic.NewBundle(64)
	if err != nil {
		t.Fatal(err)
	}
	ledger := photonic.NewLedger(photonic.DefaultEnergyParams())
	var occ int64
	port, err := router.NewPort(1, 1, ledger, &occ)
	if err != nil {
		t.Fatal(err)
	}
	ports := make([]*router.Port, 16)
	rxs := make([]*xbar.RX, 16)
	for i := range ports {
		ports[i] = port
		rxs[i] = xbar.NewRX(topology.ClusterID(i), port, bundle, ledger)
	}
	good := Config{Nodes: 16, Bundle: bundle, ClockHz: 2.5e9, SetupHopCycles: 4, RetryBackoffCycles: 16, MaxFlits: 64}

	cfg := good
	cfg.Nodes = 12 // not square
	if _, err := New(cfg, ports[:12], rxs[:12], ledger, nil); err == nil {
		t.Error("non-square node count accepted")
	}
	cfg = good
	if _, err := New(cfg, ports[:3], rxs, ledger, nil); err == nil {
		t.Error("short port slice accepted")
	}
	cfg = good
	cfg.SetupHopCycles = 0
	if _, err := New(cfg, ports, rxs, ledger, nil); err == nil {
		t.Error("zero hop latency accepted")
	}
}

func TestDirectionNames(t *testing.T) {
	//hetpnoc:orderfree each direction name is asserted independently
	for d, want := range map[Direction]string{East: "east", West: "west", North: "north", South: "south"} {
		if d.String() != want {
			t.Fatalf("direction %d = %q", d, d.String())
		}
	}
	if Direction(9).String() != "unknown" {
		t.Fatal("bad direction should be unknown")
	}
}
