// Package fix applies SuggestedFix edits to source bytes with
// conflict detection. It is the engine behind `hetpnoclint -fix`:
// analyzers emit token.Pos-addressed TextEdits, the driver resolves
// them to byte offsets per file, and Apply splices them in — whole
// fixes atomically, duplicates collapsed, overlapping fixes dropped
// deterministically rather than producing garbled output.
package fix

import (
	"fmt"
	"sort"
)

// Edit replaces src[Start:End] with New. Start == End inserts.
type Edit struct {
	Start, End int
	New        string
}

// Fix is one coherent rewrite: all edits apply together or not at all.
type Fix struct {
	Message string
	Edits   []Edit
}

// Result reports what Apply did.
type Result struct {
	// Src is the rewritten source (equal to the input when nothing
	// applied).
	Src []byte

	// Applied counts fixes spliced in; Dropped counts fixes skipped
	// because they were invalid (out of bounds, internally overlapping)
	// or conflicted with an already-accepted fix. Duplicates of an
	// accepted fix are neither.
	Applied, Dropped int
}

// Apply splices fixes into src. Fixes are considered in deterministic
// order (first edit offset, then message); a fix whose edits overlap an
// already-accepted fix's edits is dropped whole. Two edits conflict when
// their ranges intersect or start at the same offset — the latter makes
// double-insertions at one point (after deduplication, necessarily with
// different text) a conflict instead of an ordering gamble.
func Apply(src []byte, fixes []Fix) Result {
	res := Result{Src: src}

	// Normalize: sort each fix's edits, drop invalid fixes outright.
	var valid []Fix
	for _, f := range fixes {
		if len(f.Edits) == 0 {
			continue
		}
		edits := append([]Edit(nil), f.Edits...)
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start < edits[j].Start })
		if !wellFormed(edits, len(src)) {
			res.Dropped++
			continue
		}
		valid = append(valid, Fix{Message: f.Message, Edits: edits})
	}

	sort.SliceStable(valid, func(i, j int) bool {
		if valid[i].Edits[0].Start != valid[j].Edits[0].Start {
			return valid[i].Edits[0].Start < valid[j].Edits[0].Start
		}
		return valid[i].Message < valid[j].Message
	})

	var accepted []Edit
	seen := map[string]bool{}
	for _, f := range valid {
		key := fingerprint(f.Edits)
		if seen[key] {
			continue // duplicate of an accepted fix: already covered
		}
		if conflicts(f.Edits, accepted) {
			res.Dropped++
			continue
		}
		seen[key] = true
		accepted = append(accepted, f.Edits...)
		res.Applied++
	}
	if len(accepted) == 0 {
		return res
	}

	// Splice back-to-front so earlier offsets stay valid.
	sort.Slice(accepted, func(i, j int) bool { return accepted[i].Start > accepted[j].Start })
	out := append([]byte(nil), src...)
	for _, e := range accepted {
		out = append(out[:e.Start], append([]byte(e.New), out[e.End:]...)...)
	}
	res.Src = out
	return res
}

// wellFormed reports whether sorted edits stay in bounds and do not
// overlap each other. Adjacent edits ([0,5) then [5,8)) are fine; two
// edits starting at the same offset are not — their splice order would
// be ambiguous.
func wellFormed(edits []Edit, n int) bool {
	prevEnd := 0
	for i, e := range edits {
		if e.Start < 0 || e.End < e.Start || e.End > n {
			return false
		}
		if i > 0 && (e.Start < prevEnd || e.Start == edits[i-1].Start) {
			return false
		}
		prevEnd = e.End
	}
	return true
}

// conflicts reports whether any candidate edit collides with an
// accepted edit.
func conflicts(cand, accepted []Edit) bool {
	for _, c := range cand {
		for _, a := range accepted {
			if c.Start == a.Start {
				return true
			}
			if c.Start < a.End && a.Start < c.End {
				return true
			}
		}
	}
	return false
}

func fingerprint(edits []Edit) string {
	s := ""
	for _, e := range edits {
		s += fmt.Sprintf("%d:%d:%q;", e.Start, e.End, e.New)
	}
	return s
}
