package fix

import "testing"

func apply(t *testing.T, src string, fixes ...Fix) Result {
	t.Helper()
	return Apply([]byte(src), fixes)
}

func TestSingleReplacement(t *testing.T) {
	r := apply(t, "abcdef", Fix{Edits: []Edit{{Start: 2, End: 4, New: "XY"}}})
	if string(r.Src) != "abXYef" || r.Applied != 1 || r.Dropped != 0 {
		t.Errorf("got %q applied=%d dropped=%d", r.Src, r.Applied, r.Dropped)
	}
}

func TestInsertion(t *testing.T) {
	r := apply(t, "f(x)", Fix{Edits: []Edit{{Start: 2, End: 2, New: "ctx, "}}})
	if string(r.Src) != "f(ctx, x)" {
		t.Errorf("got %q", r.Src)
	}
}

func TestDisjointFixes(t *testing.T) {
	r := apply(t, "aaa bbb ccc",
		Fix{Edits: []Edit{{Start: 0, End: 3, New: "AAA"}}},
		Fix{Edits: []Edit{{Start: 8, End: 11, New: "CCC"}}})
	if string(r.Src) != "AAA bbb CCC" || r.Applied != 2 {
		t.Errorf("got %q applied=%d", r.Src, r.Applied)
	}
}

func TestDuplicateFixCollapsed(t *testing.T) {
	f := Fix{Edits: []Edit{{Start: 0, End: 1, New: "Z"}}}
	r := apply(t, "abc", f, f, f)
	if string(r.Src) != "Zbc" || r.Applied != 1 || r.Dropped != 0 {
		t.Errorf("got %q applied=%d dropped=%d", r.Src, r.Applied, r.Dropped)
	}
}

func TestOverlapDropsLaterFix(t *testing.T) {
	r := apply(t, "abcdef",
		Fix{Message: "a", Edits: []Edit{{Start: 1, End: 4, New: "X"}}},
		Fix{Message: "b", Edits: []Edit{{Start: 3, End: 5, New: "Y"}}})
	if string(r.Src) != "aXef" || r.Applied != 1 || r.Dropped != 1 {
		t.Errorf("got %q applied=%d dropped=%d", r.Src, r.Applied, r.Dropped)
	}
}

func TestSameStartInsertConflicts(t *testing.T) {
	r := apply(t, "f(x)",
		Fix{Message: "a", Edits: []Edit{{Start: 2, End: 2, New: "ctx, "}}},
		Fix{Message: "b", Edits: []Edit{{Start: 2, End: 2, New: "id, "}}})
	if string(r.Src) != "f(ctx, x)" || r.Applied != 1 || r.Dropped != 1 {
		t.Errorf("got %q applied=%d dropped=%d", r.Src, r.Applied, r.Dropped)
	}
}

func TestMultiEditFixIsAtomic(t *testing.T) {
	// Fix "b" loses the conflict on its first edit; its second edit
	// [6,8) is unopposed but must not land either — fixes are atomic.
	r := apply(t, "0123456789",
		Fix{Message: "a", Edits: []Edit{{Start: 0, End: 2, New: "XX"}}},
		Fix{Message: "b", Edits: []Edit{{Start: 1, End: 3, New: "Y"}, {Start: 6, End: 8, New: "Z"}}})
	if string(r.Src) != "XX23456789" || r.Applied != 1 || r.Dropped != 1 {
		t.Errorf("got %q applied=%d dropped=%d", r.Src, r.Applied, r.Dropped)
	}
}

func TestMultiEditWithinFix(t *testing.T) {
	// ctxflow's rule-2 rewrite: rename callee + insert first arg.
	r := apply(t, "f.Step(1)", Fix{Edits: []Edit{
		{Start: 2, End: 6, New: "StepContext"},
		{Start: 7, End: 7, New: "ctx, "},
	}})
	if string(r.Src) != "f.StepContext(ctx, 1)" || r.Applied != 1 {
		t.Errorf("got %q applied=%d", r.Src, r.Applied)
	}
}

func TestInvalidFixDropped(t *testing.T) {
	r := apply(t, "abc",
		Fix{Message: "oob", Edits: []Edit{{Start: 1, End: 9, New: "X"}}},
		Fix{Message: "inverted", Edits: []Edit{{Start: 2, End: 1, New: "X"}}},
		Fix{Message: "self-overlap", Edits: []Edit{{Start: 0, End: 2, New: "X"}, {Start: 1, End: 3, New: "Y"}}})
	if string(r.Src) != "abc" || r.Applied != 0 || r.Dropped != 3 {
		t.Errorf("got %q applied=%d dropped=%d", r.Src, r.Applied, r.Dropped)
	}
}

func TestAdjacentEditsWithinFix(t *testing.T) {
	r := apply(t, "abcdef", Fix{Edits: []Edit{
		{Start: 0, End: 3, New: "X"},
		{Start: 3, End: 6, New: "Y"},
	}})
	if string(r.Src) != "XY" || r.Applied != 1 {
		t.Errorf("got %q applied=%d", r.Src, r.Applied)
	}
}

func TestEmptyAndNoFixes(t *testing.T) {
	r := apply(t, "abc")
	if string(r.Src) != "abc" || r.Applied != 0 || r.Dropped != 0 {
		t.Errorf("got %q applied=%d dropped=%d", r.Src, r.Applied, r.Dropped)
	}
	r = apply(t, "abc", Fix{Message: "no edits"})
	if string(r.Src) != "abc" || r.Applied != 0 || r.Dropped != 0 {
		t.Errorf("empty fix: got %q applied=%d dropped=%d", r.Src, r.Applied, r.Dropped)
	}
}
