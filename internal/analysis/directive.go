package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The simulator's lint directives. A directive is a //hetpnoc:<name>
// comment; most additionally require an argument after the name — a
// justification or a mutex name — so every suppression records why it is
// safe (or what it is tied to).
const (
	// DirectiveOrderfree marks a range-over-map statement whose body is
	// insensitive to iteration order.
	DirectiveOrderfree = "orderfree"

	// DirectiveHotpath marks a function that must not allocate in steady
	// state; hotpathalloc checks its body.
	DirectiveHotpath = "hotpath"

	// DirectiveImmutable marks a package-level var that is a write-once
	// constant table (Go has no const for composite values).
	DirectiveImmutable = "immutable"

	// DirectiveGuardedBy marks a struct field as protected by a mutex:
	// //hetpnoc:guardedby mu names a sibling field, Server.mu names a
	// field of another struct. lockguard checks every access.
	DirectiveGuardedBy = "guardedby"

	// DirectiveCtxRoot marks a function that legitimately mints a fresh
	// context (process entry points, compatibility wrappers); ctxflow
	// flags context.Background/TODO everywhere else.
	DirectiveCtxRoot = "ctxroot"

	// DirectiveLocked marks a function whose contract is "caller holds
	// <mu>"; lockguard seeds the named locks as held at entry.
	DirectiveLocked = "locked"

	// DirectiveColdcall marks a call site inside hot-path-reachable
	// code as a deliberate slow-path exit (error formatting, one-shot
	// setup); hotpathreach does not traverse the edge and does not
	// check the callee through it. Requires a justification.
	DirectiveColdcall = "coldcall"

	// DirectiveDetsafe marks a function whose nondeterminism never
	// reaches simulator state (e.g. a property test that deliberately
	// samples random inputs and prints any counterexample); dettaint
	// treats it as clean. Requires a justification.
	DirectiveDetsafe = "detsafe"

	// DirectiveNosnap marks a struct field as deliberately excluded from
	// its type's Snapshot/Restore pair: immutable-after-build
	// configuration, derived caches rebuilt on restore, or state owned
	// (and checkpointed) by another component. snapcover skips the field
	// on both the capture and restore side. Requires a justification.
	DirectiveNosnap = "nosnap"

	// DirectiveUnitcast marks a deliberate cross-domain unit conversion
	// or unit-mixing expression that unitsafe would otherwise flag — a
	// value leaving the typed-quantity system on purpose (a calibration
	// table stored in different units, a dimensionless ratio built by
	// hand). Requires a justification.
	DirectiveUnitcast = "unitcast"

	// DirectiveSharedseed marks a fabric run that deliberately keeps a
	// restored checkpoint's RNG state (exact-replay tests, determinism
	// oracles); seedflow otherwise requires Reseed between Restore and
	// Run/RunContext/StepContext on every path. Requires a
	// justification.
	DirectiveSharedseed = "sharedseed"

	// DirectiveDaemon marks a go statement that deliberately spawns a
	// process-lifetime goroutine — one with no exit signal, no join and
	// no bounded loop (a metrics pump, a signal listener). goleak skips
	// the spawn and wgsync skips its Add-dominates check. Requires a
	// justification.
	DirectiveDaemon = "daemon"

	// DirectiveChanxfer marks a close (or send) site where channel
	// ownership was deliberately handed off — closing a channel received
	// as a parameter, or closing from a type that is not the sending
	// owner. chanown otherwise requires every send and close of a
	// channel to act for one owner. Requires a justification.
	DirectiveChanxfer = "chanxfer"

	// DirectiveLockorder declares the acquisition order of two mutexes:
	// //hetpnoc:lockorder <outer> <inner> <why> states that <outer> may
	// be held while <inner> is acquired, never the reverse. lockorder
	// feeds declared edges into its deadlock graph and requires a
	// declaration for every lock pair that shares a call tree.
	DirectiveLockorder = "lockorder"
)

const directivePrefix = "//hetpnoc:"

// Directive is one parsed //hetpnoc: comment.
type Directive struct {
	Pos  token.Pos
	Name string // e.g. "orderfree", "hotpath", "guardedby"
	// Arg is the text after the name, trimmed: a justification
	// (orderfree, immutable, ctxroot) or a mutex name (guardedby,
	// locked).
	Arg string

	// Trailing reports that the comment follows code on its own line
	// (`x int //hetpnoc:guardedby mu`). A trailing directive covers only
	// that line — it never leaks onto the declaration below it the way
	// an own-line comment covers the line underneath.
	Trailing bool
}

// parseDirective parses one comment's text as a directive. It tolerates
// CRLF sources: the parser keeps the carriage return in //-comment text,
// which would otherwise leak into the name or argument.
func parseDirective(pos token.Pos, text string) (Directive, bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return Directive{}, false
	}
	rest = strings.TrimRight(rest, "\r")
	name, arg, _ := strings.Cut(rest, " ")
	return Directive{Pos: pos, Name: name, Arg: strings.TrimSpace(arg)}, true
}

// Directives indexes a file's //hetpnoc: comments by line so analyzers
// can ask "is statement S covered?" in O(1). A line can carry several
// directives (one per comment).
type Directives struct {
	fset   *token.FileSet
	byLine map[int][]Directive
}

// ParseDirectives collects every //hetpnoc: comment of file.
func ParseDirectives(fset *token.FileSet, file *ast.File) *Directives {
	// First pass: the leftmost column of real code per line, so a
	// directive can tell whether it trails a declaration or owns its
	// line.
	codeCol := make(map[int]int)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return true
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		p := fset.Position(n.Pos())
		if c, ok := codeCol[p.Line]; !ok || p.Column < c {
			codeCol[p.Line] = p.Column
		}
		return true
	})

	d := &Directives{fset: fset, byLine: make(map[int][]Directive)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			dir, ok := parseDirective(c.Pos(), c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			if col, ok := codeCol[pos.Line]; ok && col < pos.Column {
				dir.Trailing = true
			}
			d.byLine[pos.Line] = append(d.byLine[pos.Line], dir)
		}
	}
	return d
}

// Covering returns the directive named name that covers node n: either a
// comment on n's first line or an own-line comment on the line directly
// above it (a directive trailing the *previous* declaration does not
// leak down). The bool reports whether one was found.
func (d *Directives) Covering(n ast.Node, name string) (Directive, bool) {
	if all := d.CoveringAll(n, name); len(all) > 0 {
		return all[0], true
	}
	return Directive{}, false
}

// CoveringAll returns every directive named name covering node n, same
// placement rules as Covering. Fields and functions may stack several
// directives of one kind (e.g. two //hetpnoc:locked lines for a function
// whose caller holds two mutexes).
func (d *Directives) CoveringAll(n ast.Node, name string) []Directive {
	line := d.fset.Position(n.Pos()).Line
	var out []Directive
	for _, dir := range d.byLine[line] {
		if dir.Name == name {
			out = append(out, dir)
		}
	}
	for _, dir := range d.byLine[line-1] {
		if dir.Name == name && !dir.Trailing {
			out = append(out, dir)
		}
	}
	return out
}

// CoveringLine is Covering keyed by source line instead of node: a
// directive on the line itself, or an own-line directive on the line
// directly above. allocproof anchors compiler facts, which arrive as
// file/line/column rather than AST nodes, through it.
func (d *Directives) CoveringLine(line int, name string) (Directive, bool) {
	for _, dir := range d.byLine[line] {
		if dir.Name == name {
			return dir, true
		}
	}
	for _, dir := range d.byLine[line-1] {
		if dir.Name == name && !dir.Trailing {
			return dir, true
		}
	}
	return Directive{}, false
}

// DirectiveCache lazily parses per-file directive indexes for the
// module-level analyzers, which look directives up by arbitrary
// positions across many packages and must not re-parse a file's
// comments once per query.
type DirectiveCache struct {
	fset  *token.FileSet
	files map[*ast.File]*Directives
}

// NewDirectiveCache returns an empty cache over fset.
func NewDirectiveCache(fset *token.FileSet) *DirectiveCache {
	return &DirectiveCache{fset: fset, files: make(map[*ast.File]*Directives)}
}

// For returns the directive index of the file of unit containing pos,
// or nil when pos falls outside the unit's files.
func (dc *DirectiveCache) For(unit *PackageUnit, pos token.Pos) *Directives {
	for _, f := range unit.Files {
		if f.Pos() <= pos && pos <= f.End() {
			d, ok := dc.files[f]
			if !ok {
				d = ParseDirectives(dc.fset, f)
				dc.files[f] = d
			}
			return d
		}
	}
	return nil
}

// FileDirectives returns every //hetpnoc: directive in file, in source
// order, regardless of placement. lockorder collects its module-wide
// //hetpnoc:lockorder declarations this way.
func FileDirectives(file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if dir, ok := parseDirective(c.Pos(), c.Text); ok {
				out = append(out, dir)
			}
		}
	}
	return out
}

// FuncDirectives returns every //hetpnoc: directive in fn's doc comment,
// in source order. A declaration can stack multiple directives — e.g.
// //hetpnoc:hotpath above //hetpnoc:locked mu.
func FuncDirectives(fn *ast.FuncDecl) []Directive {
	if fn.Doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range fn.Doc.List {
		if dir, ok := parseDirective(c.Pos(), c.Text); ok {
			out = append(out, dir)
		}
	}
	return out
}

// FuncDirective returns the first directive named name in fn's doc
// comment. The bool reports whether one was found.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	for _, dir := range FuncDirectives(fn) {
		if dir.Name == name {
			return dir, true
		}
	}
	return Directive{}, false
}

// HasHotpath reports whether fn's doc comment carries //hetpnoc:hotpath.
func HasHotpath(fn *ast.FuncDecl) bool {
	_, ok := FuncDirective(fn, DirectiveHotpath)
	return ok
}
