package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The simulator's lint directives. A directive is a //hetpnoc:<name>
// comment; orderfree and immutable additionally require a justification
// after the name, so every suppression records why it is safe.
const (
	// DirectiveOrderfree marks a range-over-map statement whose body is
	// insensitive to iteration order.
	DirectiveOrderfree = "orderfree"

	// DirectiveHotpath marks a function that must not allocate in steady
	// state; hotpathalloc checks its body.
	DirectiveHotpath = "hotpath"

	// DirectiveImmutable marks a package-level var that is a write-once
	// constant table (Go has no const for composite values).
	DirectiveImmutable = "immutable"
)

const directivePrefix = "//hetpnoc:"

// Directive is one parsed //hetpnoc: comment.
type Directive struct {
	Pos  token.Pos
	Name string // "orderfree", "hotpath", "immutable"
	// Arg is the justification text after the name, trimmed.
	Arg string
}

// Directives indexes a file's //hetpnoc: comments by line so analyzers
// can ask "is statement S covered?" in O(1).
type Directives struct {
	fset   *token.FileSet
	byLine map[int]Directive
}

// ParseDirectives collects every //hetpnoc: comment of file.
func ParseDirectives(fset *token.FileSet, file *ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[int]Directive)}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			name, arg, _ := strings.Cut(rest, " ")
			d.byLine[fset.Position(c.Pos()).Line] = Directive{
				Pos:  c.Pos(),
				Name: name,
				Arg:  strings.TrimSpace(arg),
			}
		}
	}
	return d
}

// Covering returns the directive named name that covers node n: either a
// trailing comment on n's first line or a comment on the line directly
// above it. The bool reports whether one was found.
func (d *Directives) Covering(n ast.Node, name string) (Directive, bool) {
	line := d.fset.Position(n.Pos()).Line
	if dir, ok := d.byLine[line]; ok && dir.Name == name {
		return dir, true
	}
	if dir, ok := d.byLine[line-1]; ok && dir.Name == name {
		return dir, true
	}
	return Directive{}, false
}

// HasHotpath reports whether fn's doc comment carries //hetpnoc:hotpath.
func HasHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(rest, " ")
		if name == DirectiveHotpath {
			return true
		}
	}
	return false
}
