package hotpathalloc_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hotpathalloc.Analyzer,
		"hfix/hot",
	)
}
