// Fixture: allocation-causing constructs inside //hetpnoc:hotpath
// functions are flagged; amortized reuse, cold error paths and
// unannotated functions are not.
package hot

import "fmt"

type Engine struct {
	buf []int
	cb  func(int)
}

//hetpnoc:hotpath
func (e *Engine) Step(xs []int) error {
	e.buf = append(e.buf[:0], xs...) // amortized reuse: allowed
	e.buf = append(e.buf, len(xs))   // still the same backing slice
	if len(xs) > 1<<20 {
		return fmt.Errorf("overflow: %d flits", len(xs)) // cold error path: allowed
	}
	return nil
}

//hetpnoc:hotpath
func (e *Engine) Leaky(n int, xs []int) string {
	tmp := append(xs, n) // want `append result is not reassigned to the slice it extends`
	_ = tmp
	msg := fmt.Sprintf("n=%d", n) // want `fmt.Sprintf formats \(and boxes its operands\) on a hot path`
	msg += "!"                    // want `string concatenation allocates in a hot-path function`
	f := func() int { return n * 2 } // want `closure literal captures n and allocates`
	_ = f()
	return msg + itoa(n) // want `string concatenation allocates in a hot-path function`
}

//hetpnoc:hotpath
func (e *Engine) Boxing(n int) any {
	var v any = n // want `conversion of int to interface any allocates \(boxing\)`
	_ = v
	sink(n)  // want `conversion of int to interface interface\{\} allocates \(boxing\)`
	sink(&n) // pointers fit the interface word: allowed
	var w any
	w = n // want `conversion of int to interface any allocates \(boxing\)`
	_ = w
	return n // want `conversion of int to interface any allocates \(boxing\)`
}

//hetpnoc:hotpath
func (e *Engine) StaticClosure() {
	g := func(a int) int { return a + 1 } // captures nothing: allowed
	_ = g(1)
	if e.cb != nil {
		e.cb(2) // calling a hoisted closure field: allowed
	}
}

// Unannotated functions may allocate freely.
func Unchecked(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "x"
	}
	return fmt.Sprintf("%s!", s)
}

func sink(v interface{}) { _ = v }

func itoa(n int) string { return fmt.Sprint(n) }
