// Package hotpathalloc guards the simulator's zero-allocation cycle
// loop. Functions marked //hetpnoc:hotpath in their doc comment
// (Fabric.Step, router arbitration, packet pool operations) are the
// steady-state inner loop; BENCH_*.json records 0 allocs/op for them,
// and this analyzer keeps that true by flagging the constructs that
// would quietly reintroduce per-cycle garbage:
//
//   - append whose result is not reassigned to the slice it extends
//     (the amortized-reuse idiom `x = append(x[:0], ...)` is exempt);
//   - fmt.* formatting calls, except fmt.Errorf — error construction
//     only runs on cold invariant-violation paths;
//   - closure literals that capture variables (each evaluation
//     allocates; hoist the closure to a struct field as the ejection
//     callbacks do);
//   - string concatenation;
//   - conversions of non-pointer values to interface types (boxing),
//     checked at call arguments, assignments, var declarations,
//     explicit conversions and returns.
//
// The analyzer is opt-in per function and therefore runs in every
// package, simulator or not.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hetpnoc/internal/analysis"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "flag allocation-causing constructs in //hetpnoc:hotpath functions\n\n" +
		"Hot-path functions must stay at 0 allocs/op in steady state; this\n" +
		"check flags appends without amortized reuse, fmt formatting,\n" +
		"capturing closures, string concatenation and interface boxing.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasHotpath(fd) {
				continue
			}
			Check(pass, fd)
		}
	}
	return nil
}

// Check applies the hot-path allocation rules to one function body,
// reporting through pass. hotpathreach reuses it for functions that are
// hot by reachability rather than by annotation, wrapping pass.Report
// to append the root→callee call chain.
func Check(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Appends already in the amortized-reuse form `x = append(x, ...)`
	// (or `x = append(x[:0], ...)`): the backing array survives across
	// calls, so growth is a one-time warm-up cost, not steady-state
	// garbage.
	reused := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call := appendCall(pass, rhs)
			if call == nil || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(sliceBase(call.Args[0])) {
				reused[call] = true
			}
		}
		return true
	})

	// The signature whose results a `return` feeds: the innermost
	// enclosing FuncLit's, or the declaration's. ast.Inspect reports
	// post-order as f(nil), so a node stack tracks the nesting.
	sigOf := func(stack []ast.Node) *types.Signature {
		for i := len(stack) - 1; i >= 0; i-- {
			if fl, ok := stack[i].(*ast.FuncLit); ok {
				if sig, ok := pass.TypeOf(fl).(*types.Signature); ok {
					return sig
				}
			}
		}
		sig, _ := pass.TypeOf(fd.Name).(*types.Signature)
		return sig
	}

	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			if name, ok := captures(pass, fd, n); ok {
				pass.Reportf(n.Pos(),
					fmt.Sprintf("closure literal captures %s and allocates on every evaluation in a hot-path function", name),
					"hoist the closure into a struct field built at construction time")
			}
		case *ast.CallExpr:
			checkCall(pass, n, reused)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypeOf(n)) && !isConstant(pass, n) {
				pass.Reportf(n.Pos(),
					"string concatenation allocates in a hot-path function",
					"precompute the string at construction time or log lazily with int args")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(),
					"string concatenation allocates in a hot-path function",
					"precompute the string at construction time or log lazily with int args")
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					checkConvert(pass, rhs, pass.TypeOf(n.Lhs[i]))
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				for _, v := range n.Values {
					checkConvert(pass, v, pass.TypeOf(n.Type))
				}
			}
		case *ast.ReturnStmt:
			sig := sigOf(stack)
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					checkConvert(pass, r, sig.Results().At(i).Type())
				}
			}
		}
		return true
	})
}

// checkCall handles the call-shaped violations: raw appends, fmt
// formatting, interface boxing of arguments and explicit conversions.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, reused map[*ast.CallExpr]bool) {
	// Explicit conversion T(v)?
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		checkConvert(pass, call.Args[0], tv.Type)
		return
	}

	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			if b.Name() == "append" && !reused[call] {
				pass.Reportf(call.Pos(),
					"append result is not reassigned to the slice it extends; growth allocates a fresh backing array every call",
					"reuse a preallocated buffer: x = append(x[:0], ...)")
			}
			return
		}
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn := pass.PkgNameOf(id); pn != nil && pn.Imported().Path() == "fmt" {
				// fmt.Errorf is exempt in full (including its boxed
				// operands): error construction only runs on cold
				// invariant-violation paths, never in steady state.
				if sel.Sel.Name != "Errorf" {
					pass.Reportf(call.Pos(),
						fmt.Sprintf("fmt.%s formats (and boxes its operands) on a hot path", sel.Sel.Name),
						"log lazily with int args (event.Log.AppendInts) or move formatting off the hot path")
				}
				return
			}
		}
	}

	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var target types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			target = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			target = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case sig.Variadic():
			target = params.At(params.Len() - 1).Type()
		}
		checkConvert(pass, arg, target)
	}
}

// checkConvert reports when assigning expr to target boxes a non-pointer
// value into an interface.
func checkConvert(pass *analysis.Pass, expr ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	et := pass.TypeOf(expr)
	if et == nil {
		return
	}
	if b, ok := et.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if types.IsInterface(et) {
		return
	}
	switch et.Underlying().(type) {
	// Word-sized reference types fit the interface data word directly.
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	pass.Reportf(expr.Pos(),
		fmt.Sprintf("conversion of %s to interface %s allocates (boxing) on a hot path",
			types.TypeString(et, types.RelativeTo(pass.Pkg)),
			types.TypeString(target, types.RelativeTo(pass.Pkg))),
		"pass a pointer, or keep the concrete type on the hot path")
}

// captures reports whether fl references a variable declared in outer
// but outside fl — the condition under which evaluating the literal
// allocates a closure. Package-level references compile to direct
// loads and do not count.
func captures(pass *analysis.Pass, outer *ast.FuncDecl, fl *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= outer.Pos() && v.Pos() < outer.End() && (v.Pos() < fl.Pos() || v.Pos() >= fl.End()) {
			name = v.Name()
			return false
		}
		return true
	})
	return name, name != ""
}

// appendCall returns rhs as an append CallExpr, or nil.
func appendCall(pass *analysis.Pass, rhs ast.Expr) *ast.CallExpr {
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return call
}

// sliceBase strips slice expressions: x[:0] -> x.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		se, ok := e.(*ast.SliceExpr)
		if !ok {
			return e
		}
		e = se.X
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstant(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
