// Package unitsafe checks dimensional consistency over the typed
// physical quantities of internal/units. The quantity types (units.DB,
// units.MilliWatt, units.Picojoule, units.Gbps, ... plus sim.Cycle) make
// most cross-domain arithmetic a compile error, but two escape hatches
// remain open at the type level, and unitsafe closes both:
//
//   - Laundering casts. float64(mw) erases the milliwatt domain, and
//     units.DB(float64(mw)) then re-enters a different one — the exact
//     dB-vs-linear confusion the typed quantities exist to prevent.
//     unitsafe tracks value provenance through bare numeric casts and
//     local def-use chains (internal/analysis/vflow), and flags any
//     conversion whose source provenance names one unit domain and whose
//     target names another. The same tracking flags sim.Cycle values
//     built from wall-clock quantities (time.Duration and friends).
//
//   - Laundered arithmetic. float64(db) + float64(mw) never re-enters a
//     unit type, but still adds a logarithmic quantity to a linear one.
//     unitsafe flags + and - whose two operands carry provenance from
//     different unit domains. (Multiplication and division legitimately
//     change dimension — a rate times a length is a loss — so only the
//     domain-preserving operators are checked.)
//
// Deliberate cross-domain conversions go through the blessed helpers of
// the units package itself (units.DBToLinear, units.DBmToMilliWatt,
// units.CyclesToSeconds), which encode the paper's actual formulas;
// those are ordinary calls, not casts, and pass untouched. The units
// package (any package whose import path ends in /units) is exempt
// wholesale — it is the one place conversions are defined. Anywhere
// else, a justified //hetpnoc:unitcast <why> exempts a single
// expression.
//
// Unit domains are recognized structurally, so fixture packages work
// the same way as the real module: a defined numeric type declared in a
// package whose last path segment is "units", the type Cycle in a
// package whose last segment is "sim", and any named numeric type of
// the standard time package (the wall-clock domain).
package unitsafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/vflow"
)

// Analyzer flags unit-laundering casts and cross-domain arithmetic.
var Analyzer = &analysis.Analyzer{
	Name:      "unitsafe",
	Doc:       "flag arithmetic and bare casts that mix physical unit domains (dB, mW, pJ, Gb/s, cycles, wall-clock)",
	RunModule: run,
}

const suggestion = "convert through a units helper (units.DBToLinear, units.DBmToMilliWatt, units.CyclesToSeconds, ...) " +
	"or annotate //hetpnoc:unitcast <why> if the cross-domain operation is deliberate"

func run(mp *analysis.ModulePass) error {
	vf := vflow.FromPass(mp)
	dc := analysis.NewDirectiveCache(mp.Fset)
	for _, u := range mp.Pkgs {
		if vflow.PkgLastSegment(u.Path) == "units" {
			continue // the conversion definitions themselves
		}
		c := &checker{mp: mp, unit: u, vf: vf, dc: dc}
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				c.fi = vf.FuncInfo(fd.Body, u.TypesInfo)
				c.checkBody(fd.Body)
			}
		}
	}
	return nil
}

type checker struct {
	mp   *analysis.ModulePass
	unit *analysis.PackageUnit
	vf   *vflow.Module
	dc   *analysis.DirectiveCache
	fi   *vflow.FuncInfo
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkConversion(n)
		case *ast.BinaryExpr:
			c.checkArith(n)
		}
		return true
	})
}

// checkConversion flags T2(e) where e's provenance names unit domain D1
// and T2 names a different domain D2 — a value laundered from one unit
// system into another, possibly through intermediate float64 casts and
// local variables.
func (c *checker) checkConversion(call *ast.CallExpr) {
	if tv, ok := c.unit.TypesInfo.Types[call.Fun]; !ok || !tv.IsType() {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	dst := domainOf(c.unit.TypesInfo.TypeOf(call))
	if dst == "" {
		return
	}
	src := c.prov(call.Args[0], make(map[*types.Var]bool))
	if src == "" || src == dst {
		return
	}
	c.report(call, fmt.Sprintf(
		"unit-laundering conversion: a %s value reaches %s through a bare numeric cast", src, dst))
}

// checkArith flags x + y / x - y where the operands carry provenance
// from two different unit domains. Multiplication and division change
// dimension by design and are not checked.
func (c *checker) checkArith(bin *ast.BinaryExpr) {
	if bin.Op != token.ADD && bin.Op != token.SUB {
		return
	}
	d1 := c.prov(bin.X, make(map[*types.Var]bool))
	if d1 == "" {
		return
	}
	d2 := c.prov(bin.Y, make(map[*types.Var]bool))
	if d2 == "" || d1 == d2 {
		return
	}
	c.report(bin, fmt.Sprintf("unit-mixing arithmetic: %s %s %s", d1, bin.Op, d2))
}

// report delivers the diagnostic unless a justified //hetpnoc:unitcast
// covers the expression's line.
func (c *checker) report(n ast.Node, msg string) {
	if dirs := c.dc.For(c.unit, n.Pos()); dirs != nil {
		if dir, ok := dirs.Covering(n, analysis.DirectiveUnitcast); ok {
			if dir.Arg == "" {
				c.mp.Reportf(n.Pos(),
					"//hetpnoc:unitcast needs a justification explaining why mixing unit domains is correct here",
					"//hetpnoc:unitcast <why the cross-domain value is correct>")
			}
			return
		}
	}
	c.mp.Reportf(n.Pos(), msg, suggestion)
}

// prov resolves the unit-domain provenance of e: the domain name when
// every path producing e's value traces to a single unit domain, ""
// when the value is untracked or ambiguous. It sees through bare
// numeric casts to untracked types (the laundering case), local
// variables with fully explained definitions (vflow), unary sign, and
// domain-preserving + and -.
func (c *checker) prov(e ast.Expr, seen map[*types.Var]bool) string {
	e = unparen(e)
	if d := domainOf(c.unit.TypesInfo.TypeOf(e)); d != "" {
		return d
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		// A conversion to an untracked numeric type passes provenance
		// through: float64(mw) is still a milliwatt quantity.
		if tv, ok := c.unit.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return c.prov(e.Args[0], seen)
		}
	case *ast.Ident:
		v, ok := c.unit.TypesInfo.Uses[e].(*types.Var)
		if !ok || seen[v] {
			return ""
		}
		seen[v] = true
		defs := c.fi.DefsOf(e)
		if len(defs) == 0 {
			return "" // parameter, closure capture, or unreachable
		}
		joined := ""
		for _, def := range defs {
			if def.RHS == nil {
				return "" // opaque definition
			}
			d := c.prov(def.RHS, seen)
			if d == "" {
				return ""
			}
			if joined == "" {
				joined = d
			} else if joined != d {
				return ""
			}
		}
		return joined
	case *ast.BinaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			d1 := c.prov(e.X, seen)
			d2 := c.prov(e.Y, seen)
			switch {
			case d1 == d2:
				return d1
			case d1 == "":
				return d2
			case d2 == "":
				return d1
			}
			return "" // mixed: checkArith reports it at its own node
		}
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return c.prov(e.X, seen)
		}
	}
	return ""
}

// domainOf names the unit domain of a type: "units.<T>" for defined
// numeric types in a units package, "sim.Cycle" for the simulator's
// cycle counter, "time.<T>" for the standard library's wall-clock
// quantities. Untracked types yield "".
func domainOf(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsNumeric == 0 {
		return ""
	}
	switch seg := vflow.PkgLastSegment(pkg.Path()); {
	case seg == "units":
		return "units." + obj.Name()
	case seg == "sim" && obj.Name() == "Cycle":
		return "sim.Cycle"
	case pkg.Path() == "time":
		return "time." + obj.Name()
	}
	return ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
