// Package sim is a fixture mirror of the simulator core: unitsafe
// treats Cycle in any package whose path ends in /sim as the simulated
// clock-tick domain.
package sim

type Cycle int64
