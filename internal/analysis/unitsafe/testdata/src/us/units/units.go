// Package units is a fixture mirror of the real quantity package:
// unitsafe recognizes any package whose import path ends in /units as
// the home of unit domains, and exempts its files wholesale (it is the
// one place cross-domain conversions are defined).
package units

import "math"

type DB float64

type MilliWatt float64

type Picojoule float64

type Gbps float64

// DBToLinear is a blessed conversion helper: an ordinary call, not a
// cast, so callers pass unitsafe untouched.
func DBToLinear(db DB) float64 { return math.Pow(10, float64(db)/10) }

// DBmToMilliWatt crosses dB into mW deliberately — legal here because
// the units package is exempt.
func DBmToMilliWatt(dbm DB) MilliWatt { return MilliWatt(math.Pow(10, float64(dbm)/10)) }
