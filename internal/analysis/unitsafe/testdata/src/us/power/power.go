// Package power exercises unitsafe: cross-domain arithmetic through
// laundering casts, laundering conversions (direct and through local
// variables), wall-clock values entering the cycle domain, blessed
// helpers, and the unitcast exemption.
package power

import (
	"time"

	"us/sim"
	"us/units"
)

// Mix adds a logarithmic quantity to a linear one; the float64 casts
// erase the types but not the provenance.
func Mix(db units.DB, mw units.MilliWatt) float64 {
	return float64(db) + float64(mw) // want `unit-mixing arithmetic: units\.DB \+ units\.MilliWatt`
}

// Launder re-enters a different unit domain through a bare cast chain.
func Launder(mw units.MilliWatt) units.DB {
	return units.DB(float64(mw)) // want `unit-laundering conversion: a units\.MilliWatt value reaches units\.DB`
}

// LaunderViaVar launders through a local variable: provenance follows
// the def-use chain.
func LaunderViaVar(mw units.MilliWatt) units.DB {
	x := float64(mw)
	return units.DB(x) // want `unit-laundering conversion: a units\.MilliWatt value reaches units\.DB`
}

// CycleFromWallClock builds a simulated cycle count from a wall-clock
// duration — the Cycle-vs-wall-clock confusion.
func CycleFromWallClock(d time.Duration) sim.Cycle {
	return sim.Cycle(d) // want `unit-laundering conversion: a time\.Duration value reaches sim\.Cycle`
}

// Blessed conversions go through the units helpers: ordinary calls,
// no finding.
func Blessed(db units.DB) units.MilliWatt {
	linear := units.DBToLinear(db)
	_ = linear
	return units.DBmToMilliWatt(db)
}

// SameDomain arithmetic and same-domain round trips are fine.
func SameDomain(a, b units.DB) units.DB {
	total := a + b
	return units.DB(float64(total))
}

// Exempt launders deliberately, with a written justification.
func Exempt(mw units.MilliWatt) units.DB {
	//hetpnoc:unitcast fixture: the calibration table stores dB-valued entries keyed by their mW readings
	return units.DB(float64(mw))
}

// ExemptNoWhy carries the directive but no justification.
func ExemptNoWhy(mw units.MilliWatt) units.DB {
	//hetpnoc:unitcast
	return units.DB(float64(mw)) // want `//hetpnoc:unitcast needs a justification`
}

// BranchMixed assigns two different domains into one variable: the
// provenance join is ambiguous, so unitsafe conservatively stays
// silent.
func BranchMixed(c bool, db units.DB, mw units.MilliWatt) units.Gbps {
	x := float64(db)
	if c {
		x = float64(mw)
	}
	return units.Gbps(x)
}

// Dimensionless products legitimately change dimension: scaling by a
// count or dividing two quantities is not mixing.
func Scaled(pj units.Picojoule, bits int) float64 {
	return float64(pj) * float64(bits)
}
