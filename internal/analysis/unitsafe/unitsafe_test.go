package unitsafe_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/unitsafe"
)

func TestUnitsafeFixtures(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), unitsafe.Analyzer, "us/power")
}
