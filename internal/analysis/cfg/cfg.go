// Package cfg builds intraprocedural control-flow graphs over Go
// function bodies and runs forward dataflow over them. It is the layer
// that lifts the hetpnoclint suite from AST pattern-matching to
// path-sensitive facts: lockguard asks "is this mutex held on *every*
// path reaching this field access?", which no syntactic check can
// answer across branches, loops and early returns.
//
// Like the rest of internal/analysis, the package is a deliberately
// small stdlib-only mirror of its x/tools counterpart
// (golang.org/x/tools/go/cfg): blocks hold statements plus the control
// expressions that guard them, edges follow Go's structured control
// flow (if/for/range/switch/select, break/continue/goto/fallthrough,
// labels), and a path that returns or panics simply ends. Function
// literals are *not* inlined — a closure runs at an unknown time (go,
// defer, callback), so each literal gets its own graph with its own
// entry facts.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// Graph is the control-flow graph of one function body. Blocks[0] is
// the entry block.
type Graph struct {
	Blocks []*Block
}

// Block is a straight-line run of AST nodes: no jump lands in its
// middle and control leaves only after its last node, along Succs.
// Nodes holds statements in execution order; for control statements the
// governing expression (if/switch condition, range operand) appears as
// its own node so dataflow sees it evaluated before the branch.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// New builds the graph of body. The zero-statement body yields a single
// empty entry block.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	entry := b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	b.g.wire()
	return b.g
}

// wire fills Preds from Succs and freezes block indices.
func (g *Graph) wire() {
	for i, b := range g.Blocks {
		b.Index = i
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// String renders the graph for tests and debugging: one line per block,
// "b<i> [node kinds] -> succs".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.Index)
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, " %T", n)
		}
		sb.WriteString(" ->")
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// builder carries the construction state. cur == nil means the current
// point is unreachable (after return/panic/branch); statements there
// still get blocks when they are labeled jump targets.
type builder struct {
	g   *Graph
	cur *Block

	// loops is the stack of enclosing breakable/continuable constructs.
	loops []loopFrame

	// labels maps a label name to its pre-created target block (for
	// goto) and, once known, its loop frame (for labeled
	// break/continue).
	labels map[string]*labelInfo

	// pendingLabel is the label of the labeled statement currently
	// being built, consumed by the next loop/switch/select frame so
	// `break L` / `continue L` resolve to it.
	pendingLabel string

	// fallthroughTo is the next case clause's body block while building
	// a switch clause.
	fallthroughTo *Block
}

type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil when the construct only supports break
}

type labelInfo struct {
	target *Block // the block the labeled statement starts
}

func (b *builder) newBlock() *Block {
	blk := &Block{}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// jump adds an edge cur -> to and ends the current path.
func (b *builder) jump(to *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
	b.cur = nil
}

// startBlock begins blk, linking it from cur when reachable.
func (b *builder) startBlock(blk *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, blk)
	}
	b.cur = blk
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil || n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		after := b.newBlock()
		thenBlk := b.newBlock()
		head := b.cur
		b.startBlock(thenBlk) // head -> then
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			if head != nil {
				head.Succs = append(head.Succs, elseBlk)
			}
			b.cur = elseBlk
			b.stmt(s.Else)
			b.jump(after)
		} else if head != nil {
			head.Succs = append(head.Succs, after)
		}
		b.cur = after

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.startBlock(head)
		b.add(s.Cond)
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Succs = append(head.Succs, after)
		}
		b.pushLoop(after, post)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		if s.Post != nil {
			b.jump(post)
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.startBlock(head)
		b.add(s.X) // the ranged operand, not the statement: the body
		// belongs to its own blocks, so analyzers never walk it twice
		head.Succs = append(head.Succs, body, after)
		b.pushLoop(after, head)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		b.jump(head)
		b.cur = after

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.caseClauses(s, s.Body.List)

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.caseClauses(s, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			if head != nil {
				head.Succs = append(head.Succs, blk)
			}
			b.cur = blk
			b.add(cc.Comm)
			b.pushBreakOnly(label, after)
			b.stmtList(cc.Body)
			b.popLoop()
			b.jump(after)
		}
		// Control leaves a select only through a clause (`select {}`
		// blocks forever), so `after` is reachable solely via clause
		// exits — with zero clauses it simply has no predecessors.
		b.cur = after

	case *ast.LabeledStmt:
		li := b.labelInfo(s.Label.Name)
		b.startBlock(li.target)
		// Let the labeled construct register itself under this label so
		// `break L` / `continue L` resolve.
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.cur = nil
		}

	case *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.IncDecStmt,
		*ast.AssignStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(s)

	default:
		// Unknown statement kinds flow straight through.
		b.add(s)
	}
}

// caseClauses builds switch / type-switch clause flow, including
// fallthrough edges between adjacent clause bodies.
func (b *builder) caseClauses(sw ast.Stmt, clauses []ast.Stmt) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock()
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
	}
	hasDefault := false
	prevFT := b.fallthroughTo // nested switches must not clobber the outer clause's target
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if head != nil {
			head.Succs = append(head.Succs, blocks[i])
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		var next *Block
		if i+1 < len(clauses) {
			next = blocks[i+1]
		}
		b.pushBreakOnly(label, after)
		b.fallthroughTo = next
		b.stmtList(cc.Body)
		b.fallthroughTo = prevFT
		b.popLoop()
		b.jump(after)
	}
	if head != nil && !hasDefault {
		head.Succs = append(head.Succs, after)
	}
	b.cur = after
}

// branch resolves break / continue / goto / fallthrough.
func (b *builder) branch(s *ast.BranchStmt) {
	if b.cur == nil {
		return
	}
	switch s.Tok.String() {
	case "break":
		if f := b.findFrame(s.Label, true); f != nil {
			b.jump(f.breakTo)
			return
		}
	case "continue":
		if f := b.findFrame(s.Label, false); f != nil {
			b.jump(f.continueTo)
			return
		}
	case "goto":
		if s.Label != nil {
			b.jump(b.labelInfo(s.Label.Name).target)
			return
		}
	case "fallthrough":
		if b.fallthroughTo != nil {
			b.jump(b.fallthroughTo)
			return
		}
	}
	// Unresolvable branch (malformed source): end the path
	// conservatively.
	b.cur = nil
}

func (b *builder) findFrame(label *ast.Ident, forBreak bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := &b.loops[i]
		if label != nil && f.label != label.Name {
			continue
		}
		if !forBreak && f.continueTo == nil {
			continue // break-only frame (switch/select) can't continue
		}
		return f
	}
	return nil
}

func (b *builder) labelInfo(name string) *labelInfo {
	if b.labels == nil {
		b.labels = make(map[string]*labelInfo)
	}
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{target: b.newBlock()}
		b.labels[name] = li
	}
	return li
}

func (b *builder) pushLoop(breakTo, continueTo *Block) {
	b.loops = append(b.loops, loopFrame{label: b.pendingLabel, breakTo: breakTo, continueTo: continueTo})
	b.pendingLabel = ""
}

// pushBreakOnly takes the frame label explicitly: switch and select
// push one frame per clause, and every clause must resolve `break L`,
// not just the first — so the caller captures the construct's label
// once with takeLabel and replays it per clause.
func (b *builder) pushBreakOnly(label string, breakTo *Block) {
	b.loops = append(b.loops, loopFrame{label: label, breakTo: breakTo})
}

// takeLabel consumes the pending label of the construct being entered,
// so nested constructs cannot capture it.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) popLoop() {
	b.loops = b.loops[:len(b.loops)-1]
}

// isTerminalCall reports whether expr is a call that never returns:
// panic(...) or os.Exit / log.Fatal* by name. The check is syntactic —
// the cfg package has no type information — which is fine for a
// must-analysis: missing a terminator only makes facts more
// conservative.
func isTerminalCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		name := fun.Sel.Name
		return (pkg.Name == "os" && name == "Exit") ||
			(pkg.Name == "log" && strings.HasPrefix(name, "Fatal")) ||
			(pkg.Name == "runtime" && name == "Goexit")
	}
	return false
}
