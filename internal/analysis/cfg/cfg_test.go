package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"testing"
)

// factsAt interprets src (a package with one function F), running a toy
// must-analysis over F's body: lock() adds fact L, unlock() removes it,
// and probe("name") records the facts holding when control reaches it.
// The result maps probe names to sorted fact lists — nil when the probe
// is unreachable.
func factsAt(t *testing.T, src string) map[string][]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var body *ast.BlockStmt
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "F" {
			body = fd.Body
		}
	}
	if body == nil {
		t.Fatal("no function F in source")
	}

	call := func(n ast.Node) (string, string) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return "", ""
		}
		c, ok := es.X.(*ast.CallExpr)
		if !ok {
			return "", ""
		}
		id, ok := c.Fun.(*ast.Ident)
		if !ok {
			return "", ""
		}
		arg := ""
		if len(c.Args) == 1 {
			if lit, ok := c.Args[0].(*ast.BasicLit); ok {
				arg, _ = strconv.Unquote(lit.Value)
			}
		}
		return id.Name, arg
	}
	transfer := func(n ast.Node, facts FactSet) {
		switch name, _ := call(n); name {
		case "lock":
			facts.Add("L")
		case "unlock":
			facts.Remove("L")
		}
	}

	g := New(body)
	in := g.ForwardMust(NewFactSet(), transfer)
	probes := make(map[string][]string)
	for _, b := range g.Blocks {
		entry, reachable := in[b]
		if !reachable {
			continue
		}
		facts := entry.Clone()
		for _, n := range b.Nodes {
			if name, arg := call(n); name == "probe" {
				probes[arg] = append([]string{}, facts.Sorted()...)
			}
			transfer(n, facts)
		}
	}
	return probes
}

func expect(t *testing.T, probes map[string][]string, name, want string) {
	t.Helper()
	got, ok := probes[name]
	if !ok {
		t.Errorf("probe %q never reached", name)
		return
	}
	if s := strings.Join(got, ","); s != want {
		t.Errorf("probe %q: facts = %q, want %q", name, s, want)
	}
}

func TestStraightLineAndBranchJoin(t *testing.T) {
	probes := factsAt(t, `package p
func F(c bool) {
	lock()
	probe("held")
	if c {
		unlock()
		probe("branch")
	}
	probe("join")
}`)
	expect(t, probes, "held", "L")
	expect(t, probes, "branch", "")
	expect(t, probes, "join", "") // unlocked on one path: must-facts drop L
}

func TestEarlyReturnKeepsFact(t *testing.T) {
	probes := factsAt(t, `package p
func F(c bool) {
	lock()
	if c {
		unlock()
		return
	}
	probe("held")
}`)
	// The unlocking path returned; every path reaching the probe holds L.
	expect(t, probes, "held", "L")
}

func TestPanicEndsPath(t *testing.T) {
	probes := factsAt(t, `package p
func F(c bool) {
	lock()
	if c {
		unlock()
		panic("bad")
	}
	probe("held")
}`)
	expect(t, probes, "held", "L")
}

func TestLoopBackEdge(t *testing.T) {
	probes := factsAt(t, `package p
func F() {
	lock()
	for i := 0; i < 9; i++ {
		probe("top")
		unlock()
	}
}`)
	// Iteration 2 reaches the loop top without the lock; must-facts are
	// the intersection over the back edge.
	expect(t, probes, "top", "")
}

func TestLoopRelock(t *testing.T) {
	probes := factsAt(t, `package p
func F(c bool) {
	for c {
		lock()
		probe("in")
		unlock()
	}
	probe("after")
}`)
	expect(t, probes, "in", "L")
	expect(t, probes, "after", "")
}

func TestRangeBody(t *testing.T) {
	probes := factsAt(t, `package p
func F(m []int) {
	lock()
	for range m {
		probe("body")
	}
	probe("after")
	for range m {
		unlock()
	}
	probe("end")
}`)
	expect(t, probes, "body", "L")
	expect(t, probes, "after", "L")
	expect(t, probes, "end", "") // the range may have iterated and unlocked
}

func TestSwitchFallthrough(t *testing.T) {
	probes := factsAt(t, `package p
func F(x int) {
	lock()
	switch x {
	case 1:
		unlock()
		fallthrough
	case 2:
		probe("ft")
	case 3:
		probe("l")
	}
	probe("after")
}`)
	expect(t, probes, "ft", "") // reachable locked (case 2) and unlocked (fallthrough)
	expect(t, probes, "l", "L")
	expect(t, probes, "after", "")
}

func TestSwitchWithDefaultAllUnlock(t *testing.T) {
	probes := factsAt(t, `package p
func F(x int) {
	lock()
	switch x {
	case 1:
		unlock()
	default:
		unlock()
	}
	probe("after")
}`)
	// With a default clause there is no locked fall-past path.
	expect(t, probes, "after", "")
}

func TestSelectClauses(t *testing.T) {
	probes := factsAt(t, `package p
func F(a, b chan int) {
	lock()
	select {
	case <-a:
		unlock()
	case <-b:
		probe("clause")
	}
	probe("after")
}`)
	expect(t, probes, "clause", "L")
	expect(t, probes, "after", "")
}

func TestLabeledBreak(t *testing.T) {
	probes := factsAt(t, `package p
func F(c bool) {
	lock()
loop:
	for {
		for {
			break loop
		}
	}
	probe("after")
}`)
	// The only exit is `break loop` with the lock held.
	expect(t, probes, "after", "L")
}

func TestLabeledContinueSkipsUnlock(t *testing.T) {
	probes := factsAt(t, `package p
func F(c bool) {
outer:
	for {
		lock()
		if c {
			continue outer
		}
		unlock()
		probe("bottom")
	}
}`)
	// continue outer re-enters the loop head with L held, the normal
	// path with L released — head facts intersect to nothing, but the
	// bottom probe always follows its own unlock.
	expect(t, probes, "bottom", "")
}

func TestGotoSkipsUnreachableUnlock(t *testing.T) {
	probes := factsAt(t, `package p
func F() {
	lock()
	goto done
	unlock()
done:
	probe("g")
}`)
	expect(t, probes, "g", "L")
}

func TestGotoIntoLoopBody(t *testing.T) {
	// The spec forbids jumping into a block, but the builder must stay
	// structurally sound on such input (it only sees a parse tree, never
	// a type-checked one). The goto enters the loop mid-body with L
	// held; the loop-around path re-reaches the label after unlocking,
	// so the must-facts at the label intersect to nothing.
	probes := factsAt(t, `package p
func F(c bool) {
	lock()
	goto mid
	for {
		unlock()
	mid:
		probe("mid")
		if c {
			return
		}
	}
}`)
	expect(t, probes, "mid", "")
}

func TestSelectNoDefaultHasNoFallPast(t *testing.T) {
	// A select with no default blocks until a clause fires: unlike a
	// switch, there is no edge that skips every clause. If the builder
	// wrongly added a fall-past edge, the un-locked path would drop L
	// from the join.
	probes := factsAt(t, `package p
func F(a chan int) {
	select {
	case <-a:
		lock()
	}
	probe("after")
}`)
	expect(t, probes, "after", "L")
}

func TestLabeledSwitchFallthroughAdjacency(t *testing.T) {
	// A labeled switch whose fallthrough-adjacent clause exits via
	// `break sw`: case 2 is reachable both locked (direct dispatch) and
	// unlocked (fallthrough from case 1), while case 3 stays locked and
	// the join sees the intersection of all three exits.
	probes := factsAt(t, `package p
func F(x int) {
	lock()
sw:
	switch x {
	case 1:
		unlock()
		fallthrough
	case 2:
		probe("ft")
		break sw
	case 3:
		probe("three")
	}
	probe("after")
}`)
	expect(t, probes, "ft", "")
	expect(t, probes, "three", "L")
	expect(t, probes, "after", "")
}

func TestSinglePanicBody(t *testing.T) {
	// A body that is nothing but a panic has no normal exit: the graph
	// still builds, and nothing downstream of the panic is reachable.
	probes := factsAt(t, `package p
func F() {
	panic("always")
}`)
	if len(probes) != 0 {
		t.Errorf("probes = %v, want none", probes)
	}

	probes = factsAt(t, `package p
func F() {
	lock()
	panic("always")
	probe("dead")
}`)
	if _, ok := probes["dead"]; ok {
		t.Error("probe after an unconditional panic should be unreachable")
	}
}

func TestDeferredNodeIsNotExecutedInline(t *testing.T) {
	probes := factsAt(t, `package p
func F() {
	lock()
	defer unlock()
	probe("d")
}`)
	// The transfer only interprets plain call statements; the deferred
	// unlock stays wrapped in its DeferStmt and does not kill the fact —
	// exactly the Lock/defer-Unlock idiom lockguard must accept.
	expect(t, probes, "d", "L")
}

func TestUnreachableProbeNotRecorded(t *testing.T) {
	probes := factsAt(t, `package p
func F() {
	return
	probe("dead")
}`)
	if _, ok := probes["dead"]; ok {
		t.Error("probe after return should be unreachable")
	}
}

// mayFactsAt is factsAt under the may-lattice: the same toy
// lock/unlock/probe vocabulary run through ForwardMay, so a probe
// reports L whenever ANY path reaches it locked.
func mayFactsAt(t *testing.T, src string) map[string][]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var body *ast.BlockStmt
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "F" {
			body = fd.Body
		}
	}
	if body == nil {
		t.Fatal("no function F in source")
	}

	call := func(n ast.Node) (string, string) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return "", ""
		}
		c, ok := es.X.(*ast.CallExpr)
		if !ok {
			return "", ""
		}
		id, ok := c.Fun.(*ast.Ident)
		if !ok {
			return "", ""
		}
		arg := ""
		if len(c.Args) == 1 {
			if lit, ok := c.Args[0].(*ast.BasicLit); ok {
				arg, _ = strconv.Unquote(lit.Value)
			}
		}
		return id.Name, arg
	}
	transfer := func(n ast.Node, facts FactSet) {
		switch name, _ := call(n); name {
		case "lock":
			facts.Add("L")
		case "unlock":
			facts.Remove("L")
		}
	}

	g := New(body)
	in := g.ForwardMay(NewFactSet(), transfer)
	probes := make(map[string][]string)
	for _, b := range g.Blocks {
		entry, reachable := in[b]
		if !reachable {
			continue
		}
		facts := entry.Clone()
		for _, n := range b.Nodes {
			if name, arg := call(n); name == "probe" {
				probes[arg] = append([]string{}, facts.Sorted()...)
			}
			transfer(n, facts)
		}
	}
	return probes
}

func TestMayBranchJoinKeepsFact(t *testing.T) {
	probes := mayFactsAt(t, `package p
func F(c bool) {
	if c {
		lock()
	}
	probe("join")
}`)
	// One path reaches the join locked: the may-union keeps L where the
	// must-intersection (TestStraightLineAndBranchJoin) drops it.
	expect(t, probes, "join", "L")
}

func TestMayKillOnEveryPathClearsFact(t *testing.T) {
	probes := mayFactsAt(t, `package p
func F(c bool) {
	lock()
	if c {
		unlock()
	} else {
		unlock()
	}
	probe("join")
}`)
	expect(t, probes, "join", "")
}

func TestMayLoopBackEdgePropagates(t *testing.T) {
	probes := mayFactsAt(t, `package p
func F(n int) {
	for i := 0; i < n; i++ {
		probe("top")
		lock()
	}
	probe("after")
}`)
	// Iteration 2 reaches the loop top locked via the back edge, and the
	// loop exit may fire after an iteration that locked.
	expect(t, probes, "top", "L")
	expect(t, probes, "after", "L")
}

func TestMayEarlyReturnPathDoesNotLeak(t *testing.T) {
	probes := mayFactsAt(t, `package p
func F(c bool) {
	if c {
		lock()
		return
	}
	probe("tail")
}`)
	// The locking path returned; no surviving path carries L.
	expect(t, probes, "tail", "")
}

func TestGraphStringSmoke(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", `package p
func F(c bool) { if c { x() } }`, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	g := New(f.Decls[0].(*ast.FuncDecl).Body)
	s := g.String()
	if !strings.Contains(s, "b0:") || !strings.Contains(s, "->") {
		t.Errorf("unexpected String() output:\n%s", s)
	}
}

func TestSelectSendAndRecvClauses(t *testing.T) {
	probes := factsAt(t, `package p
func F(a, b chan int) {
	lock()
	select {
	case a <- 1:
		probe("send")
	case v := <-b:
		_ = v
		unlock()
		probe("recv")
	}
	probe("after")
}`)
	expect(t, probes, "send", "L")
	expect(t, probes, "recv", "")
	// Must-analysis: only the send path still holds the lock, so the
	// join keeps nothing.
	expect(t, probes, "after", "")
}

func TestGoLiteralBodyIsNotInline(t *testing.T) {
	probes := factsAt(t, `package p
func F() {
	lock()
	go func() {
		unlock()
		probe("inside")
	}()
	probe("after")
}`)
	// The spawned literal runs at an unknown time: its unlock must not
	// kill the spawner's fact, and its probe is not part of this graph.
	expect(t, probes, "after", "L")
	if _, ok := probes["inside"]; ok {
		t.Errorf("probe inside a go literal must not be reached by the enclosing graph")
	}
}

func TestDeferredKillInSpawnLoop(t *testing.T) {
	// The wgsync shape: a deferred kill (defer wg.Done / defer unlock)
	// must not consume the fact on the loop path or at the join point.
	probes := factsAt(t, `package p
func F(n int) {
	lock()
	defer unlock()
	for i := 0; i < n; i++ {
		probe("spawn")
	}
	probe("wait")
}`)
	expect(t, probes, "spawn", "L")
	expect(t, probes, "wait", "L")
}
