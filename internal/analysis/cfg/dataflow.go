package cfg

import (
	"go/ast"
	"sort"
)

// FactSet is a set of string facts under the "must" lattice: the meet of
// two sets is their intersection, so a fact survives a join point only
// when it holds on every incoming path. lockguard's facts are held locks
// ("w:Server.mu", "r:Server.mu"); other analyzers can reuse the engine
// with their own vocabulary.
type FactSet map[string]struct{}

// NewFactSet builds a set from facts.
func NewFactSet(facts ...string) FactSet {
	s := make(FactSet, len(facts))
	for _, f := range facts {
		s[f] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s FactSet) Has(f string) bool { _, ok := s[f]; return ok }

// Add inserts f.
func (s FactSet) Add(f string) { s[f] = struct{}{} }

// Remove deletes f.
func (s FactSet) Remove(f string) { delete(s, f) }

// Clone returns an independent copy.
func (s FactSet) Clone() FactSet {
	c := make(FactSet, len(s))
	for f := range s { //hetpnoc:orderfree copies into another set
		c[f] = struct{}{}
	}
	return c
}

// Sorted returns the facts in lexical order, for diagnostics and tests.
func (s FactSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for f := range s { //hetpnoc:orderfree collected then sorted
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// union returns a ∪ b as a fresh set.
func union(a, b FactSet) FactSet {
	out := make(FactSet, len(a)+len(b))
	for f := range a { //hetpnoc:orderfree copies into another set
		out[f] = struct{}{}
	}
	for f := range b { //hetpnoc:orderfree copies into another set
		out[f] = struct{}{}
	}
	return out
}

// intersect returns a ∩ b as a fresh set.
func intersect(a, b FactSet) FactSet {
	out := make(FactSet)
	for f := range a { //hetpnoc:orderfree intersection is order-insensitive
		if _, ok := b[f]; ok {
			out[f] = struct{}{}
		}
	}
	return out
}

// equal reports set equality.
func equal(a, b FactSet) bool {
	if len(a) != len(b) {
		return false
	}
	for f := range a { //hetpnoc:orderfree pure membership test
		if _, ok := b[f]; !ok {
			return false
		}
	}
	return true
}

// ForwardMust runs a forward must-dataflow to fixpoint and returns the
// facts holding at each block's entry on every path from the function
// entry. transfer applies one node's effect to facts in place, in the
// block's execution order. Blocks the worklist never reaches are
// unreachable; they have no entry in the result and callers skip them.
//
// Termination: per block, the entry set only ever shrinks (meet is
// intersection against an initial snapshot), so the worklist drains for
// any transfer whose generated facts depend only on the node.
func (g *Graph) ForwardMust(entry FactSet, transfer func(n ast.Node, facts FactSet)) map[*Block]FactSet {
	if len(g.Blocks) == 0 {
		return nil
	}
	in := map[*Block]FactSet{g.Blocks[0]: entry.Clone()}
	work := []*Block{g.Blocks[0]}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := in[b].Clone()
		for _, n := range b.Nodes {
			transfer(n, out)
		}
		for _, s := range b.Succs {
			cur, seen := in[s]
			if !seen {
				in[s] = out.Clone()
				work = append(work, s)
				continue
			}
			next := intersect(cur, out)
			if !equal(cur, next) {
				in[s] = next
				work = append(work, s)
			}
		}
	}
	return in
}

// ForwardMay runs a forward may-dataflow to fixpoint and returns the
// facts holding at each block's entry on at least one path from the
// function entry: the meet is union, so a fact survives a join point
// when any incoming path carries it. It is the dual of ForwardMust —
// seedflow asks "can a stale RNG state reach this Run call on *some*
// path?", where a must-analysis would only see the paths all agreeing.
//
// Termination: per block, the entry set only ever grows, and the fact
// universe is bounded by what transfer generates from the function's
// finitely many nodes.
func (g *Graph) ForwardMay(entry FactSet, transfer func(n ast.Node, facts FactSet)) map[*Block]FactSet {
	if len(g.Blocks) == 0 {
		return nil
	}
	in := map[*Block]FactSet{g.Blocks[0]: entry.Clone()}
	work := []*Block{g.Blocks[0]}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := in[b].Clone()
		for _, n := range b.Nodes {
			transfer(n, out)
		}
		for _, s := range b.Succs {
			cur, seen := in[s]
			if !seen {
				in[s] = out.Clone()
				work = append(work, s)
				continue
			}
			next := union(cur, out)
			if !equal(cur, next) {
				in[s] = next
				work = append(work, s)
			}
		}
	}
	return in
}
