package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

//hetpnoc:hotpath
func Hot() {}

func Cold() {}

func Body(m map[int]int) {
	//hetpnoc:orderfree sums commute
	for range m {
	}
	for range m { //hetpnoc:orderfree trailing form
	}
	for range m {
	}
}
`

func TestDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if !HasHotpath(f.Decls[0].(*ast.FuncDecl)) {
		t.Error("Hot should carry the hotpath directive")
	}
	if HasHotpath(f.Decls[1].(*ast.FuncDecl)) {
		t.Error("Cold should not carry the hotpath directive")
	}

	dirs := ParseDirectives(fset, f)
	body := f.Decls[2].(*ast.FuncDecl).Body
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			ranges = append(ranges, rs)
		}
		return true
	})
	if len(ranges) != 3 {
		t.Fatalf("got %d range statements, want 3", len(ranges))
	}
	if d, ok := dirs.Covering(ranges[0], DirectiveOrderfree); !ok || d.Arg != "sums commute" {
		t.Errorf("leading directive: ok=%v arg=%q", ok, d.Arg)
	}
	if d, ok := dirs.Covering(ranges[1], DirectiveOrderfree); !ok || d.Arg != "trailing form" {
		t.Errorf("trailing directive: ok=%v arg=%q", ok, d.Arg)
	}
	if _, ok := dirs.Covering(ranges[2], DirectiveOrderfree); ok {
		t.Error("bare range should not be covered by a directive")
	}
}

func TestIsSimPackage(t *testing.T) {
	for path, want := range map[string]bool{
		"hetpnoc/internal/sim":    true,
		"hetpnoc/internal/fabric": true,
		"internal/torus":          true,
		"simfix/internal/packet":  true,
		"hetpnoc/cmd/benchjson":   false,
		"hetpnoc/internal/report": false,
		"hetpnoc/internal/simx":   false,
		"hetpnoc":                 false,
	} {
		if got := IsSimPackage(path); got != want {
			t.Errorf("IsSimPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
