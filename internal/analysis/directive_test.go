package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const directiveSrc = `package p

//hetpnoc:hotpath
func Hot() {}

func Cold() {}

func Body(m map[int]int) {
	//hetpnoc:orderfree sums commute
	for range m {
	}
	for range m { //hetpnoc:orderfree trailing form
	}
	for range m {
	}
}
`

func TestDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if !HasHotpath(f.Decls[0].(*ast.FuncDecl)) {
		t.Error("Hot should carry the hotpath directive")
	}
	if HasHotpath(f.Decls[1].(*ast.FuncDecl)) {
		t.Error("Cold should not carry the hotpath directive")
	}

	dirs := ParseDirectives(fset, f)
	body := f.Decls[2].(*ast.FuncDecl).Body
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			ranges = append(ranges, rs)
		}
		return true
	})
	if len(ranges) != 3 {
		t.Fatalf("got %d range statements, want 3", len(ranges))
	}
	if d, ok := dirs.Covering(ranges[0], DirectiveOrderfree); !ok || d.Arg != "sums commute" {
		t.Errorf("leading directive: ok=%v arg=%q", ok, d.Arg)
	}
	if d, ok := dirs.Covering(ranges[1], DirectiveOrderfree); !ok || d.Arg != "trailing form" {
		t.Errorf("trailing directive: ok=%v arg=%q", ok, d.Arg)
	}
	if _, ok := dirs.Covering(ranges[2], DirectiveOrderfree); ok {
		t.Error("bare range should not be covered by a directive")
	}
}

// parse is a test helper compiling src with comments attached.
func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestFuncDirectivesStacked(t *testing.T) {
	// One declaration carrying several directives: all must surface, in
	// source order, and each must be findable by name.
	_, f := parse(t, `package p

//hetpnoc:hotpath
//hetpnoc:locked mu
//hetpnoc:locked Server.mu
func F() {}
`)
	fn := f.Decls[0].(*ast.FuncDecl)
	all := FuncDirectives(fn)
	if len(all) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(all), all)
	}
	if !HasHotpath(fn) {
		t.Error("stacked decl should still report hotpath")
	}
	var locked []string
	for _, d := range all {
		if d.Name == DirectiveLocked {
			locked = append(locked, d.Arg)
		}
	}
	if len(locked) != 2 || locked[0] != "mu" || locked[1] != "Server.mu" {
		t.Errorf("locked args = %v, want [mu Server.mu]", locked)
	}
	if d, ok := FuncDirective(fn, DirectiveLocked); !ok || d.Arg != "mu" {
		t.Errorf("FuncDirective(locked) = %+v, %v; want first (mu)", d, ok)
	}
	if _, ok := FuncDirective(fn, DirectiveCtxRoot); ok {
		t.Error("ctxroot should not be found on F")
	}
}

func TestDirectiveMissingReason(t *testing.T) {
	// A directive without its required argument parses with Arg == "" —
	// the analyzers turn that into a "needs a justification" diagnostic.
	fset, f := parse(t, `package p

func Body(m map[int]int) {
	//hetpnoc:orderfree
	for range m {
	}
}
`)
	dirs := ParseDirectives(fset, f)
	var rs *ast.RangeStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			rs = r
		}
		return true
	})
	d, ok := dirs.Covering(rs, DirectiveOrderfree)
	if !ok {
		t.Fatal("bare orderfree directive should still cover the range")
	}
	if d.Arg != "" {
		t.Errorf("Arg = %q, want empty (missing reason)", d.Arg)
	}
}

func TestDirectiveTrailingSameLine(t *testing.T) {
	// A trailing same-line comment covers the statement it trails, and a
	// second directive on the same line is not lost.
	fset, f := parse(t, `package p

type S struct {
	n int //hetpnoc:guardedby mu
	mu int
}
`)
	dirs := ParseDirectives(fset, f)
	st := f.Decls[0].(*ast.GenDecl).Specs[0].(*ast.TypeSpec).Type.(*ast.StructType)
	field := st.Fields.List[0]
	d, ok := dirs.Covering(field, DirectiveGuardedBy)
	if !ok || d.Arg != "mu" {
		t.Errorf("guardedby on trailing comment: ok=%v arg=%q, want mu", ok, d.Arg)
	}
	// The directive trails field n; it must not leak down onto mu via
	// the line-above rule.
	if _, ok := dirs.Covering(st.Fields.List[1], DirectiveGuardedBy); ok {
		t.Error("trailing directive on field n leaked onto the next field")
	}
}

func TestDirectiveSameLineMultiple(t *testing.T) {
	// Two directive comments on one line (block-comment form cannot
	// occur for //, but a trailing directive after a leading one on the
	// same source line can, via CoveringAll).
	fset, f := parse(t, `package p

func Body(m map[int]int) {
	//hetpnoc:orderfree fills a set
	//hetpnoc:orderfree duplicate
	for range m {
	}
}
`)
	dirs := ParseDirectives(fset, f)
	var rs *ast.RangeStmt
	ast.Inspect(f, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			rs = r
		}
		return true
	})
	// Only the directive directly above (line-1) covers; the one two
	// lines up does not.
	all := dirs.CoveringAll(rs, DirectiveOrderfree)
	if len(all) != 1 || all[0].Arg != "duplicate" {
		t.Errorf("CoveringAll = %+v, want the adjacent directive only", all)
	}
}

func TestDirectiveCRLF(t *testing.T) {
	// In a CRLF source the parser keeps the \r in //-comment text; the
	// directive name and argument must come out clean anyway.
	src := "package p\r\n\r\n//hetpnoc:ctxroot process entry point\r\nfunc Root() {}\r\n\r\n//hetpnoc:hotpath\r\nfunc Hot() {}\r\n"
	_, f := parse(t, src)
	root := f.Decls[0].(*ast.FuncDecl)
	d, ok := FuncDirective(root, DirectiveCtxRoot)
	if !ok {
		t.Fatal("ctxroot directive lost in CRLF source")
	}
	if d.Arg != "process entry point" {
		t.Errorf("Arg = %q, want %q", d.Arg, "process entry point")
	}
	// The argless form is the sharper edge: without trimming, the name
	// itself would be "hotpath\r".
	if !HasHotpath(f.Decls[1].(*ast.FuncDecl)) {
		t.Error("argless hotpath directive lost in CRLF source")
	}
}

func TestIsSimPackage(t *testing.T) {
	for path, want := range map[string]bool{
		"hetpnoc/internal/sim":    true,
		"hetpnoc/internal/fabric": true,
		"internal/torus":          true,
		"simfix/internal/packet":  true,
		"hetpnoc/cmd/benchjson":   false,
		"hetpnoc/internal/report": false,
		"hetpnoc/internal/simx":   false,
		"hetpnoc":                 false,
	} {
		if got := IsSimPackage(path); got != want {
			t.Errorf("IsSimPackage(%q) = %v, want %v", path, got, want)
		}
	}
}
