package chanown_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/chanown"
)

func TestChanownFixtures(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), chanown.Analyzer, "co/chans")
}
