// Package chanown enforces channel ownership: a channel is closed by
// its provably-unique sending owner, never closed twice, and never
// sent on after a close. The rules mirror the runtime's: a send on a
// closed channel and a double close both panic, and the only safe
// closer is the side that knows no more sends are coming — the owner.
//
// The check has two halves over the conc layer's canonical channel
// keys (vflow-resolved locals, declaring-type-keyed fields):
//
// Module-wide ownership, by index lookup:
//
//   - one close site per channel: a channel closed from two different
//     functions has two owners racing to end it;
//   - the closer acts for the sending owner: every send and every
//     close must carry the same owner (the method's receiver type, or
//     the function itself) — `Server.admit` sending and `Server.Close`
//     closing agree on the owner `Server`;
//   - closing a channel received as a parameter is an ownership
//     transfer from the caller and must be declared.
//
// Deliberate handoffs carry //hetpnoc:chanxfer <why> on the close.
//
// Path-sensitive, per function body (declared bodies and each function
// literal on its own facts, like seedflow): a may-analysis with the
// fact "closed|<key>" — reaching a second close or a send while the
// fact holds on any path is a finding. Rebinding the channel variable
// (ch = make(...)) kills the fact: the variable names a fresh channel.
package chanown

import (
	"fmt"
	"go/ast"
	"go/types"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/cfg"
	"hetpnoc/internal/analysis/conc"
)

// Analyzer flags non-owner closes, double closes and sends reachable
// after a close.
var Analyzer = &analysis.Analyzer{
	Name:      "chanown",
	Doc:       "a channel is closed once, by its unique sending owner, and never sent on after close",
	RunModule: run,
}

const xferSuggestion = "move the close to the sending owner (the type or function that performs the sends), " +
	"or annotate the close //hetpnoc:chanxfer <why> if the ownership handoff is deliberate"

func run(mp *analysis.ModulePass) error {
	m := conc.FromPass(mp)
	dc := analysis.NewDirectiveCache(mp.Fset)
	c := &checker{mp: mp, m: m, dc: dc}
	c.ownership()
	for _, fi := range m.Sorted {
		c.paths(fi)
	}
	return nil
}

type checker struct {
	mp *analysis.ModulePass
	m  *conc.Module
	dc *analysis.DirectiveCache
}

// ownership runs the module-wide owner checks. At most one finding per
// close site, strongest first: parameter handoff, then multiple close
// sites, then owner mismatch.
func (c *checker) ownership() {
	for _, key := range c.m.ChanKeys() {
		ci := c.m.Chan(key)
		if len(ci.Closes) == 0 {
			continue
		}
		closeFns := make(map[*conc.FuncInfo]bool)
		for _, cl := range ci.Closes {
			closeFns[cl.Fn] = true
		}
		sendOwners := make(map[string]bool)
		for _, s := range ci.Sends {
			sendOwners[s.Fn.Owner()] = true
		}
		for i, cl := range ci.Closes {
			switch {
			case cl.Op.Var != nil && cl.Fn.IsParam(cl.Op.Var):
				c.report(cl.Fn, cl.Op.Node, fmt.Sprintf(
					"close of %s, a channel received as a parameter: ownership is transferred from the caller",
					cl.Op.Expr))
			case i > 0 && len(closeFns) > 1:
				c.report(cl.Fn, cl.Op.Node, fmt.Sprintf(
					"channel %s is closed from %d sites; a channel has a single closing owner (first close in %s)",
					cl.Op.Expr, len(ci.Closes), ci.Closes[0].Fn.Name()))
			case len(sendOwners) > 0 && !sendOwners[cl.Fn.Owner()]:
				c.report(cl.Fn, cl.Op.Node, fmt.Sprintf(
					"close of %s by %s, but its sends are owned by %s",
					cl.Op.Expr, cl.Fn.Owner(), ownersList(ci.Sends)))
			}
		}
	}
}

func ownersList(sends []conc.ChanSite) string {
	var out []string
	seen := make(map[string]bool)
	for _, s := range sends {
		o := s.Fn.Owner()
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	s := ""
	for i, o := range out {
		if i > 0 {
			s += ", "
		}
		s += o
	}
	return s
}

// paths runs the close-fact may-analysis over the declared body and,
// separately, over every function literal in it — a literal runs at an
// unknown time, so it gets its own entry facts, the seedflow
// convention.
func (c *checker) paths(fi *conc.FuncInfo) {
	if !mentionsClose(fi.Decl.Body) {
		return
	}
	c.pathsBody(fi, fi.Decl.Body)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.pathsBody(fi, lit.Body)
		}
		return true
	})
}

// mentionsClose cheaply gates the dataflow: without a close call no
// fact is ever generated.
func mentionsClose(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "close" {
			found = true
		}
		return !found
	})
	return found
}

func (c *checker) pathsBody(fi *conc.FuncInfo, body *ast.BlockStmt) {
	k := c.m.NewKeyer(body, fi.Unit)
	g := c.m.Graph(body, fi.Unit)
	in := g.ForwardMay(cfg.NewFactSet(), func(n ast.Node, facts cfg.FactSet) {
		c.apply(fi, k, n, facts, false)
	})
	for _, blk := range g.Blocks {
		entry, reachable := in[blk]
		if !reachable {
			continue
		}
		facts := entry.Clone()
		for _, n := range blk.Nodes {
			c.apply(fi, k, n, facts, true)
		}
	}
}

// apply interprets one cfg node's channel effects against facts in
// lexical order, skipping nested literals (each is analyzed on its own
// facts). With report set it also delivers findings.
func (c *checker) apply(fi *conc.FuncInfo, k *conc.Keyer, n ast.Node, facts cfg.FactSet, report bool) {
	ast.Inspect(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			// Rebinding a channel variable names a fresh channel; the
			// closed fact dies with the old binding.
			for _, lhs := range nd.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					facts.Remove("closed|" + k.Key(id))
				}
			}
		case *ast.SendStmt:
			key := k.Key(nd.Chan)
			if report && facts.Has("closed|"+key) {
				c.report(fi, nd, fmt.Sprintf(
					"send on %s after it was closed on this path (send on a closed channel panics)",
					exprString(nd.Chan)))
			}
		case *ast.CallExpr:
			if !isClose(fi, nd) || len(nd.Args) != 1 {
				return true
			}
			key := k.Key(nd.Args[0])
			if report && facts.Has("closed|"+key) {
				c.report(fi, nd, fmt.Sprintf(
					"close of %s, already closed on this path (double close panics)",
					exprString(nd.Args[0])))
			}
			facts.Add("closed|" + key)
		}
		return true
	})
}

func isClose(fi *conc.FuncInfo, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := fi.Unit.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// report delivers the diagnostic unless a justified
// //hetpnoc:chanxfer covers the site.
func (c *checker) report(fi *conc.FuncInfo, n ast.Node, msg string) {
	if dirs := c.dc.For(fi.Unit, n.Pos()); dirs != nil {
		if dir, ok := dirs.Covering(n, analysis.DirectiveChanxfer); ok {
			if dir.Arg == "" {
				c.mp.Reportf(n.Pos(),
					"//hetpnoc:chanxfer needs a justification explaining why the ownership handoff is safe",
					"//hetpnoc:chanxfer <why the handoff is deliberate>")
			}
			return
		}
	}
	c.mp.Reportf(n.Pos(), msg, xferSuggestion)
}

func exprString(e ast.Expr) string { return types.ExprString(e) }
