// Fixtures for the chanown analyzer: owner-mismatch closes, parameter
// handoffs, double closes, sends after close, alias resolution,
// rebinding, and the chanxfer directive with and without a reason.
package chans

// Pool is the clean shape: the type that sends is the type that
// closes, and there is exactly one close site.
type Pool struct {
	jobs chan int
}

func NewPool() *Pool {
	return &Pool{jobs: make(chan int, 8)}
}

func (p *Pool) Send(v int) {
	p.jobs <- v
}

func (p *Pool) Close() {
	close(p.jobs)
}

// Feed sends on its own channel, but a free function closes it: the
// closer is not the sending owner.
type Feed struct {
	out chan int
}

func NewFeed() *Feed { return &Feed{out: make(chan int)} }

func (f *Feed) Push(v int) { f.out <- v }

func Drain(f *Feed) {
	close(f.out) // want "sends are owned by type chans.Feed"
}

// Relay has the same shape, declared as a deliberate handoff.
type Relay struct {
	out chan int
}

func NewRelay() *Relay { return &Relay{out: make(chan int)} }

func (r *Relay) Emit(v int) { r.out <- v }

func Handoff(r *Relay) {
	//hetpnoc:chanxfer the relay hands its stream to the consumer on shutdown
	close(r.out)
}

// Pipe declares the handoff but forgets to say why.
type Pipe struct {
	out chan int
}

func NewPipe() *Pipe { return &Pipe{out: make(chan int)} }

func (p *Pipe) Put(v int) { p.out <- v }

func Cut(p *Pipe) {
	//hetpnoc:chanxfer
	close(p.out) // want "needs a justification"
}

// Finish closes a channel it received: ownership transferred from the
// caller without a declaration.
func Finish(results chan int) {
	close(results) // want "received as a parameter"
}

// DoubleClose closes the same channel twice on a straight-line path.
func DoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "already closed on this path"
}

// BranchClose may close on the branch and then closes again: the
// may-analysis catches the panicking path.
func BranchClose(flag bool) {
	ch := make(chan int)
	if flag {
		close(ch)
	}
	close(ch) // want "already closed on this path"
}

// AliasClose closes through an alias first: vflow canonicalization
// resolves both names to the same channel.
func AliasClose() {
	ch := make(chan int)
	dup := ch
	close(dup)
	close(ch) // want "already closed on this path"
}

// SendAfterClose sends on a channel it already closed.
func SendAfterClose() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	ch <- 2 // want "send on ch after it was closed"
}

// Rebind is clean: assigning a fresh channel to the variable kills the
// closed fact.
func Rebind() {
	ch := make(chan int, 1)
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	close(ch)
}
