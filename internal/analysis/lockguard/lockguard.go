// Package lockguard checks mutex discipline for annotated struct
// fields. A field carrying //hetpnoc:guardedby <mu> may only be read
// while <mu> is held (Lock or RLock) and only written under the
// exclusive Lock — and "held" means held on *every* control-flow path
// reaching the access, which the analyzer decides with a must-dataflow
// over the internal/analysis/cfg graph rather than by pattern-matching.
//
// The annotation grammar:
//
//	mu    sync.Mutex
//	state int //hetpnoc:guardedby mu            (sibling field)
//	subs  int //hetpnoc:guardedby Server.mu     (another struct's mutex)
//
// A function whose contract is "caller holds the lock" declares it:
//
//	//hetpnoc:locked Server.mu
//	func (s *Server) finishLocked() { ... }
//
// and the named locks are seeded as held at entry. Function literals
// are analyzed separately with *no* held locks: a closure runs at an
// unknown time (go statement, defer, stored callback), so accesses
// inside one must take the lock themselves.
//
// The analysis guards the field word itself. A method call through a
// guarded field (c.ll.MoveToFront(...)) counts as a read of the field;
// writes are assignments, ++/--, and &-address-taking, each requiring
// the exclusive lock.
package lockguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/cfg"
)

// Analyzer is the lockguard check.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "check //hetpnoc:guardedby mutex discipline with must-dataflow\n\n" +
		"Every access to a guarded field must be dominated by Lock (writes)\n" +
		"or Lock/RLock (reads) of the named mutex on all paths; annotate\n" +
		"caller-holds-the-lock helpers //hetpnoc:locked <mu>.",
	Run: run,
}

// guard describes one annotated field.
type guard struct {
	key   string // normalized lock name, e.g. "Server.mu"
	field string // qualified field name for diagnostics, e.g. "Server.pending"
}

func run(pass *analysis.Pass) error {
	g := &checker{
		pass:   pass,
		guards: make(map[*types.Var]guard),
	}
	for _, file := range pass.Files {
		g.dirs = analysis.ParseDirectives(pass.Fset, file)
		g.collectGuards(file)
	}
	if len(g.guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g.checkFunc(fd.Body, g.entryFacts(fd))
		}
	}
	return nil
}

type checker struct {
	pass   *analysis.Pass
	dirs   *analysis.Directives
	guards map[*types.Var]guard
}

// collectGuards records every //hetpnoc:guardedby-annotated struct
// field of file.
func (c *checker) collectGuards(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			dir, ok := c.dirs.Covering(field, analysis.DirectiveGuardedBy)
			if !ok {
				continue
			}
			if dir.Arg == "" {
				c.pass.Reportf(field.Pos(),
					"//hetpnoc:guardedby needs the mutex name (a sibling field, or Type.field for another struct's mutex)",
					"//hetpnoc:guardedby <mu>")
				continue
			}
			key, err := c.resolveGuardKey(ts, st, dir.Arg)
			if err != "" {
				c.pass.Reportf(field.Pos(), err, "//hetpnoc:guardedby <sibling mutex field, or Type.field>")
				continue
			}
			for _, name := range field.Names {
				v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
				if !ok {
					continue
				}
				c.guards[v] = guard{key: key, field: ts.Name.Name + "." + name.Name}
			}
		}
		return true
	})
}

// resolveGuardKey normalizes a guardedby argument: "mu" names a sibling
// field (or a package-level mutex) and becomes "Type.mu"; "Server.mu"
// is already qualified and taken verbatim. The string return is a
// diagnostic message when resolution fails.
func (c *checker) resolveGuardKey(ts *ast.TypeSpec, st *ast.StructType, arg string) (string, string) {
	if strings.Contains(arg, ".") {
		return arg, ""
	}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if name.Name == arg {
				return ts.Name.Name + "." + arg, ""
			}
		}
		// Embedded mutex: the field name is the type name.
		if len(f.Names) == 0 && embeddedName(f.Type) == arg {
			return ts.Name.Name + "." + arg, ""
		}
	}
	if obj := c.pass.Pkg.Scope().Lookup(arg); obj != nil {
		if _, ok := obj.(*types.Var); ok {
			return arg, ""
		}
	}
	return "", fmt.Sprintf("//hetpnoc:guardedby %s: no sibling field or package-level mutex of that name in %s", arg, ts.Name.Name)
}

func embeddedName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

// entryFacts seeds held locks from fd's //hetpnoc:locked directives.
func (c *checker) entryFacts(fd *ast.FuncDecl) cfg.FactSet {
	entry := cfg.NewFactSet()
	for _, dir := range analysis.FuncDirectives(fd) {
		if dir.Name != analysis.DirectiveLocked {
			continue
		}
		if dir.Arg == "" {
			c.pass.Reportf(fd.Name.Pos(),
				"//hetpnoc:locked needs the mutex the caller holds",
				"//hetpnoc:locked <mu>")
			continue
		}
		key := dir.Arg
		if !strings.Contains(key, ".") {
			if recv := receiverTypeName(c.pass, fd); recv != "" {
				key = recv + "." + key
			}
		}
		entry.Add("w:" + key)
		entry.Add("r:" + key)
	}
	return entry
}

func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkFunc runs the must-dataflow over one body and reports unguarded
// accesses; nested function literals are queued and checked with empty
// entry facts.
func (c *checker) checkFunc(body *ast.BlockStmt, entry cfg.FactSet) {
	var lits []*ast.FuncLit
	g := cfg.New(body)
	in := g.ForwardMust(entry, c.transfer)
	for _, b := range g.Blocks {
		facts, reachable := in[b]
		if !reachable {
			continue
		}
		facts = facts.Clone()
		for _, n := range b.Nodes {
			c.transfer(n, facts)
			lits = c.checkAccesses(n, facts, lits)
		}
	}
	for _, lit := range lits {
		c.checkFunc(lit.Body, cfg.NewFactSet())
	}
}

// transfer applies one node's Lock/Unlock effects to facts. Deferred
// calls are skipped (they run at return) and function literal bodies
// belong to their own analysis.
func (c *checker) transfer(n ast.Node, facts cfg.FactSet) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			c.applyLockCall(n, facts)
		}
		return true
	})
}

// applyLockCall mutates facts when call is sync.Mutex/RWMutex
// Lock/RLock/Unlock/RUnlock, directly or through an embedded mutex.
func (c *checker) applyLockCall(call *ast.CallExpr, facts cfg.FactSet) {
	key, op, ok := LockOp(c.pass, call)
	if !ok {
		return
	}
	switch op {
	case "Lock":
		facts.Add("w:" + key)
		facts.Add("r:" + key)
	case "RLock":
		facts.Add("r:" + key)
	case "Unlock":
		facts.Remove("w:" + key)
		facts.Remove("r:" + key)
	case "RUnlock":
		facts.Remove("r:" + key)
	}
}

// LockOp classifies call as a sync.Mutex/RWMutex operation. op is one
// of Lock, RLock, Unlock, RUnlock; key names the mutex in the same
// vocabulary //hetpnoc:guardedby annotations resolve to ("Owner.mu"
// for a struct field, the bare name for a local or package-level
// mutex). lockorder reuses it to trace acquisition order.
func LockOp(pass *analysis.Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	obj, objOK := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !objOK || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	key = lockKey(pass, sel.X, obj)
	if key == "" {
		return "", "", false
	}
	return key, op, true
}

// lockKey names the mutex behind recv in the same vocabulary guardedby
// annotations resolve to: "Owner.mu" for a struct field, the bare name
// for a local or package-level mutex.
func lockKey(pass *analysis.Pass, recv ast.Expr, method *types.Func) string {
	t := pass.TypeOf(recv)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" {
		// recv *is* the mutex: x.mu.Lock() or mu.Lock().
		switch e := recv.(type) {
		case *ast.SelectorExpr:
			ot := pass.TypeOf(e.X)
			if ot != nil {
				if p, ok := ot.(*types.Pointer); ok {
					ot = p.Elem()
				}
				if on, ok := ot.(*types.Named); ok {
					return on.Obj().Name() + "." + e.Sel.Name
				}
			}
			return types.ExprString(e)
		case *ast.Ident:
			return e.Name
		default:
			return types.ExprString(recv)
		}
	}
	// Promoted call through an embedded mutex: s.Lock() where S embeds
	// sync.Mutex. The guard key is "S.<MutexTypeName>".
	if n, ok := t.(*types.Named); ok {
		if recvType := method.Type().(*types.Signature).Recv().Type(); recvType != nil {
			rt := recvType
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if rn, ok := rt.(*types.Named); ok {
				return n.Obj().Name() + "." + rn.Obj().Name()
			}
		}
	}
	return ""
}

// checkAccesses walks one node's expressions (in write/read context) and
// reports guarded-field accesses the current facts do not license.
// Encountered function literals are appended to lits for separate
// analysis.
func (c *checker) checkAccesses(n ast.Node, facts cfg.FactSet, lits []*ast.FuncLit) []*ast.FuncLit {
	var walk func(n ast.Node, write bool)
	walkAll := func(write bool, nodes ...ast.Node) {
		for _, n := range nodes {
			if n != nil {
				walk(n, write)
			}
		}
	}
	walk = func(n ast.Node, write bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			lits = append(lits, n)
			return
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				walk(l, true)
			}
			walkAll(false, exprNodes(n.Rhs)...)
		case *ast.IncDecStmt:
			walk(n.X, true)
		case *ast.UnaryExpr:
			walk(n.X, write || n.Op == token.AND)
		case *ast.SelectorExpr:
			c.checkSelector(n, write, facts)
			walk(n.X, write)
		case *ast.IndexExpr:
			walk(n.X, write)
			walk(n.Index, false)
		case *ast.SliceExpr:
			walk(n.X, write)
			walkAll(false, n.Low, n.High, n.Max)
		case *ast.StarExpr:
			walk(n.X, write)
		case *ast.ParenExpr:
			walk(n.X, write)
		case *ast.CallExpr:
			// delete(s.pending, k) mutates its map argument.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) == 2 {
				if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "delete" {
					walk(n.Args[0], true)
					walk(n.Args[1], false)
					return
				}
			}
			walk(n.Fun, false)
			walkAll(false, exprNodes(n.Args)...)
		default:
			// Generic traversal in read context for everything else.
			ast.Inspect(n, func(ch ast.Node) bool {
				if ch == n {
					return true
				}
				switch ch := ch.(type) {
				case *ast.FuncLit:
					lits = append(lits, ch)
					return false
				case *ast.AssignStmt, *ast.IncDecStmt, *ast.UnaryExpr,
					*ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr,
					*ast.StarExpr, *ast.ParenExpr, *ast.CallExpr:
					walk(ch, false)
					return false
				}
				return true
			})
		}
	}
	walk(n, false)
	return lits
}

func exprNodes(exprs []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(exprs))
	for i, e := range exprs {
		out[i] = e
	}
	return out
}

// checkSelector reports sel when it names a guarded field the facts do
// not cover.
func (c *checker) checkSelector(sel *ast.SelectorExpr, write bool, facts cfg.FactSet) {
	v, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	gd, ok := c.guards[v]
	if !ok {
		return
	}
	mode, need := "read", "r:"
	if write {
		mode, need = "write", "w:"
	}
	if facts.Has(need + gd.key) {
		return
	}
	held := "none"
	if hs := heldLocks(facts); len(hs) > 0 {
		held = strings.Join(hs, ", ")
	}
	verb := "Lock"
	if !write {
		verb = "Lock or RLock"
	}
	c.pass.Reportf(sel.Sel.Pos(),
		fmt.Sprintf("%s of %s is not guarded by %s on every path (held: %s)", mode, gd.field, gd.key, held),
		fmt.Sprintf("hold %s.%s() across this access, or annotate the function //hetpnoc:locked %s if its contract is that the caller holds it", gd.key, verb, gd.key))
}

// heldLocks renders facts for diagnostics: "Server.mu" when exclusively
// held, "Server.mu (read)" under RLock only.
func heldLocks(facts cfg.FactSet) []string {
	var out []string
	for _, f := range facts.Sorted() {
		if strings.HasPrefix(f, "w:") {
			out = append(out, strings.TrimPrefix(f, "w:"))
		} else if k := strings.TrimPrefix(f, "r:"); k != f && !facts.Has("w:"+k) {
			out = append(out, k+" (read)")
		}
	}
	return out
}
