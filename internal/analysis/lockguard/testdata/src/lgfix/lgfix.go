// Package lgfix exercises lockguard: guarded-field accesses on every
// shape of control flow the CFG layer distinguishes.
package lgfix

import "sync"

// Server mirrors the serving layer's shape: a mutex guarding a map and
// a flag, plus atomically-managed fields lockguard ignores.
type Server struct {
	mu sync.Mutex

	pending  map[string]int //hetpnoc:guardedby mu
	draining bool           //hetpnoc:guardedby mu

	queue chan int // unguarded on purpose
}

// flight mirrors the refcounted coalescing flight: its counter is
// guarded by another struct's mutex.
type flight struct {
	subs int //hetpnoc:guardedby Server.mu
}

func (s *Server) goodLockUnlock(k string) int {
	s.mu.Lock()
	v := s.pending[k]
	s.mu.Unlock()
	return v
}

func (s *Server) goodDeferUnlock(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending[k]
}

func (s *Server) badUnlocked(k string) int {
	return s.pending[k] // want "read of Server.pending is not guarded by Server.mu"
}

func (s *Server) badAfterUnlock(k string) {
	s.mu.Lock()
	s.mu.Unlock()
	s.pending[k] = 1 // want "write of Server.pending is not guarded by Server.mu"
}

func (s *Server) badOnOnePath(c bool, k string) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
	}
	s.pending[k] = 1 // want "write of Server.pending is not guarded by Server.mu"
	if !c {
		s.mu.Unlock()
	}
}

func (s *Server) goodEarlyReturn(c bool, k string) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return
	}
	s.pending[k] = 1 // fine: the unlocking path returned
	s.mu.Unlock()
}

func (s *Server) goodDelete(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pending, k)
}

func (s *Server) badDelete(k string) {
	delete(s.pending, k) // want "write of Server.pending is not guarded by Server.mu"
}

func (s *Server) badLoopUnlockInside(ks []string) {
	s.mu.Lock()
	for _, k := range ks {
		s.pending[k] = 1 // want "write of Server.pending is not guarded by Server.mu"
		s.mu.Unlock()
	}
}

// finishLocked documents that its caller holds the lock.
//
//hetpnoc:locked mu
func (s *Server) finishLocked(k string) {
	delete(s.pending, k)
	s.draining = true
}

// crossLocked holds another struct's mutex by contract.
//
//hetpnoc:locked Server.mu
func (f *flight) crossLocked() {
	f.subs++
}

func (s *Server) goodCrossStruct(f *flight) {
	s.mu.Lock()
	f.subs-- // Server.mu guards flight.subs
	s.mu.Unlock()
}

func (f *flight) badCrossStruct() {
	f.subs++ // want "write of flight.subs is not guarded by Server.mu"
}

func (s *Server) badClosureEscapesLock() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() {
		s.draining = false // want "write of Server.draining is not guarded by Server.mu"
	}
}

func (s *Server) badAddressTaken() *bool {
	s.mu.Lock()
	s.mu.Unlock()
	return &s.draining // want "write of Server.draining is not guarded by Server.mu"
}

// RWGuarded exercises the shared/exclusive split.
type RWGuarded struct {
	rw    sync.RWMutex
	stats int //hetpnoc:guardedby rw
}

func (g *RWGuarded) goodReadUnderRLock() int {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.stats
}

func (g *RWGuarded) badWriteUnderRLock() {
	g.rw.RLock()
	g.stats++ // want "write of RWGuarded.stats is not guarded by RWGuarded.rw"
	g.rw.RUnlock()
}

func (g *RWGuarded) goodWriteUnderLock() {
	g.rw.Lock()
	g.stats++
	g.rw.Unlock()
}

// Embedded exercises the promoted-method form.
type Embedded struct {
	sync.Mutex
	n int //hetpnoc:guardedby Mutex
}

func (e *Embedded) goodPromoted() {
	e.Lock()
	e.n++
	e.Unlock()
}

func (e *Embedded) badPromoted() {
	e.n++ // want "write of Embedded.n is not guarded by Embedded.Mutex"
}

// Malformed annotations are themselves diagnosed.
type Malformed struct {
	mu sync.Mutex

	//hetpnoc:guardedby
	a int // want "needs the mutex name"

	//hetpnoc:guardedby nosuch
	b int // want "no sibling field or package-level mutex"
}

//hetpnoc:locked
func (m *Malformed) missingLockName() { // want "needs the mutex the caller holds"
	m.a = 1
}
