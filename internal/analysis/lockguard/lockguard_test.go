package lockguard_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockguard.Analyzer, "lgfix")
}
