// Package detrand forbids nondeterministic randomness and wall-clock
// time in the simulator core. Two runs with the same seed must be
// bit-identical (internal/sim package doc), so all randomness must flow
// through sim.RNG and all time through sim.Clock / sim.Cycle. Tooling
// packages (cmd/*, internal/report, examples) are exempt.
package detrand

import (
	"fmt"
	"go/ast"

	"hetpnoc/internal/analysis"
)

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand, crypto/rand and wall-clock time in simulator packages\n\n" +
		"Simulator state may only advance from seeded sim.RNG draws and the\n" +
		"sim.Cycle clock; any other entropy source makes runs irreproducible.",
	Run: run,
}

// forbiddenImports are packages whose mere presence in a simulator
// package is a violation: every API they export is a nondeterminism
// source (or, for crypto/rand, an entropy source the simulator must
// never need).
var forbiddenImports = map[string]string{
	"math/rand":    "use the run-owned *sim.RNG instead",
	"math/rand/v2": "use the run-owned *sim.RNG instead",
	"crypto/rand":  "the simulator must not consume OS entropy",
}

// forbiddenTime are the wall-clock members of package time. Types and
// constants (time.Duration, time.Second) remain usable for reporting
// physical quantities; anything that reads or waits on the host clock
// does not.
var forbiddenTime = map[string]string{
	"Now":       "derive timestamps from the sim.Cycle counter",
	"Since":     "subtract sim.Cycle values instead",
	"Until":     "subtract sim.Cycle values instead",
	"Sleep":     "schedule future work on the sim.TimerWheel",
	"After":     "schedule future work on the sim.TimerWheel",
	"AfterFunc": "schedule future work on the sim.TimerWheel",
	"Tick":      "schedule recurring work on the sim.TimerWheel",
	"NewTimer":  "schedule future work on the sim.TimerWheel",
	"NewTicker": "schedule recurring work on the sim.TimerWheel",
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path := importPath(imp)
			if hint, ok := forbiddenImports[path]; ok {
				pass.Reportf(imp.Pos(),
					fmt.Sprintf("import of %s is forbidden in simulator packages: %s", path, hint),
					"thread a *sim.RNG (seeded from the run config) through the component")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := pass.PkgNameOf(ident)
			if pn == nil || pn.Imported().Path() != "time" {
				return true
			}
			if hint, ok := forbiddenTime[sel.Sel.Name]; ok {
				pass.Reportf(sel.Pos(),
					fmt.Sprintf("time.%s reads the wall clock, which breaks run reproducibility: %s", sel.Sel.Name, hint),
					"express the quantity in sim.Cycle ticks")
			}
			return true
		})
	}
	return nil
}

func importPath(imp *ast.ImportSpec) string {
	// The path literal is always a valid quoted string once the file
	// type-checks.
	return imp.Path.Value[1 : len(imp.Path.Value)-1]
}
