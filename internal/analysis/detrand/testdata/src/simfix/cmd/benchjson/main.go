// Fixture: tooling packages are outside the simulator core and may use
// wall-clock time and math/rand freely — nothing here is flagged.
package main

import (
	"math/rand"
	"time"
)

func main() {
	start := time.Now()
	_ = rand.Int()
	_ = time.Since(start)
}
