// Fixture: a simulator package reaching for every forbidden entropy and
// wall-clock source, plus the allowed time.Duration quantities.
package sim

import (
	crand "crypto/rand" // want `import of crypto/rand is forbidden in simulator packages`
	mrand "math/rand"   // want `import of math/rand is forbidden in simulator packages`
	"time"

	clk "time"
)

func Draw() int {
	return mrand.Int()
}

func Entropy(b []byte) {
	_, _ = crand.Read(b)
}

func Stamp() int64 {
	t := time.Now() // want `time.Now reads the wall clock`
	d := time.Since(t) // want `time.Since reads the wall clock`
	time.Sleep(d) // want `time.Sleep reads the wall clock`
	return t.UnixNano()
}

func Renamed() int64 {
	return clk.Now().UnixNano() // want `time.Now reads the wall clock`
}

// Period is fine: time.Duration and its constants are physical
// quantities, not clock reads.
func Period(hz float64) time.Duration {
	return time.Duration(float64(time.Second) / hz)
}
