package detrand_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrand.Analyzer,
		"simfix/internal/sim",
		"simfix/cmd/benchjson",
	)
}
