// Package ctxflow enforces context threading: cancellation must flow
// from the request edge into every long-running callee, because the
// serving layer's whole backpressure story (docs/SERVING.md) rests on
// Fabric.RunContext noticing a dead context within one check interval.
//
// Two rules:
//
//  1. context.Background() / context.TODO() may only be minted inside a
//     function annotated //hetpnoc:ctxroot <why> — process entry points
//     and deliberate synchronous wrappers (hetpnoc.Run, fabric.Run,
//     experiments.RunMatrix). Everywhere else the caller's context must
//     be used. Test files are exempt: a test *is* a root.
//
//  2. A function with a context.Context in scope (own parameter or a
//     captured one) must not call the context-less variant of a callee
//     that has a XContext sibling — f.Step(n) with ctx in scope is a
//     dropped cancellation edge; call f.StepContext(ctx, n).
//
// Both rules carry mechanical fixes, applied repo-wide by
// `hetpnoclint -fix`: rule 1 rewrites the mint to the in-scope context
// (when there is one), rule 2 rewrites the call to the Context variant
// with ctx prepended.
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"hetpnoc/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "enforce context threading and //hetpnoc:ctxroot discipline\n\n" +
		"context.Background/TODO only in annotated root functions; with a\n" +
		"context in scope, call the XContext variant of a callee that has\n" +
		"one.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			root, isRoot := analysis.FuncDirective(fd, analysis.DirectiveCtxRoot)
			if isRoot && root.Arg == "" {
				pass.Reportf(fd.Name.Pos(),
					"//hetpnoc:ctxroot needs a justification explaining why this function legitimately mints a fresh context",
					"//hetpnoc:ctxroot <why this is a root: process entry point, synchronous wrapper, ...>")
			}
			c := &checker{pass: pass, isTest: isTest, isRoot: isRoot, declName: fd.Name.Name}
			c.funcs = append(c.funcs, fd.Type)
			c.walk(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass     *analysis.Pass
	isTest   bool
	isRoot   bool
	declName string          // name of the enclosing FuncDecl
	funcs    []*ast.FuncType // enclosing function signatures, innermost last
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.funcs = append(c.funcs, n.Type)
			c.walk(n.Body)
			c.funcs = c.funcs[:len(c.funcs)-1]
			return false
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

// ctxName returns the name of the nearest context.Context parameter in
// the enclosing function stack, or "" when no context is in scope.
func (c *checker) ctxName() string {
	for i := len(c.funcs) - 1; i >= 0; i-- {
		for _, field := range c.funcs[i].Params.List {
			t := c.pass.TypeOf(field.Type)
			if t == nil || !isContext(t) {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					return name.Name
				}
			}
		}
	}
	return ""
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func (c *checker) checkCall(call *ast.CallExpr) {
	fn := c.calleeFunc(call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		c.checkMint(call, fn)
		return
	}
	c.checkVariant(call, fn)
}

// calleeFunc resolves the called function or method, or nil for
// builtins, conversions and indirect calls.
func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkMint flags context.Background()/TODO() outside ctxroot functions
// (rule 1).
func (c *checker) checkMint(call *ast.CallExpr, fn *types.Func) {
	if c.isTest || c.isRoot {
		return
	}
	name := "context." + fn.Name() + "()"
	var fixes []analysis.SuggestedFix
	if ctx := c.ctxName(); ctx != "" {
		fixes = append(fixes, analysis.SuggestedFix{
			Message: fmt.Sprintf("use the in-scope context %s instead of %s", ctx, name),
			TextEdits: []analysis.TextEdit{
				{Pos: call.Pos(), End: call.End(), NewText: ctx},
			},
		})
	}
	c.pass.Report(analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: fmt.Sprintf("%s severs cancellation from the caller; thread the caller's context instead", name),
		Suggestion: "pass the context from the caller, or annotate the function " +
			"//hetpnoc:ctxroot <why> if it is a legitimate root (process entry point, synchronous wrapper)",
		Fixes: fixes,
	})
}

// checkVariant flags context-less calls that have a XContext sibling
// while a context is in scope (rule 2).
func (c *checker) checkVariant(call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || hasContextParam(sig) {
		return
	}
	// The wrapper pattern is the one place the raw variant is the point:
	// StepContext implements itself by calling Step in ctx-polled
	// chunks. Only the definitional site is exempt, not other callers.
	if c.declName == fn.Name()+"Context" {
		return
	}
	ctx := c.ctxName()
	if ctx == "" {
		return
	}
	variant := contextVariant(fn)
	if variant == nil {
		return
	}
	// The rewrite: rename the callee and prepend ctx.
	var nameIdent *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		nameIdent = fun
	case *ast.SelectorExpr:
		nameIdent = fun.Sel
	}
	insert := ctx
	if len(call.Args) > 0 {
		insert = ctx + ", "
	}
	c.pass.Report(analysis.Diagnostic{
		Pos: call.Pos(),
		Message: fmt.Sprintf("call to %s drops the in-scope context %s; call %s to keep cancellation threaded",
			fn.Name(), ctx, variant.Name()),
		Suggestion: fmt.Sprintf("replace with %s(%s, ...)", variant.Name(), ctx),
		Fixes: []analysis.SuggestedFix{{
			Message: fmt.Sprintf("call %s(%s, ...)", variant.Name(), insert),
			TextEdits: []analysis.TextEdit{
				{Pos: nameIdent.Pos(), End: nameIdent.End(), NewText: variant.Name()},
				{Pos: call.Lparen + 1, End: call.Lparen + 1, NewText: insert},
			},
		}},
	})
}

func hasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// contextVariant returns the function or method named fn.Name()+
// "Context" on the same receiver or in the same package scope, when its
// first parameter is a context.Context.
func contextVariant(fn *types.Func) *types.Func {
	name := fn.Name() + "Context"
	sig := fn.Type().(*types.Signature)
	var candidate *types.Func
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == name {
				candidate = m
				break
			}
		}
	} else if fn.Pkg() != nil {
		candidate, _ = fn.Pkg().Scope().Lookup(name).(*types.Func)
	}
	if candidate == nil {
		return nil
	}
	csig, ok := candidate.Type().(*types.Signature)
	if !ok || csig.Params().Len() == 0 || !isContext(csig.Params().At(0).Type()) {
		return nil
	}
	return candidate
}
