// Package cxfix exercises ctxflow: minting roots, context threading and
// XContext sibling detection.
package cxfix

import "context"

// RunContext is the canonical cancellable entry point.
func RunContext(ctx context.Context, n int) error { return ctx.Err() }

// Run is a deliberate synchronous wrapper, annotated as a root.
//
//hetpnoc:ctxroot synchronous public wrapper over RunContext
func Run(n int) error { return RunContext(context.Background(), n) }

func badRoot(n int) error {
	return RunContext(context.Background(), n) // want "context.Background\\(\\) severs cancellation"
}

func badTODO(n int) error {
	return RunContext(context.TODO(), n) // want "context.TODO\\(\\) severs cancellation"
}

func badMintWithCtxInScope(ctx context.Context, n int) error {
	return RunContext(context.Background(), n) // want "context.Background\\(\\) severs cancellation"
}

func goodThread(ctx context.Context, n int) error {
	return RunContext(ctx, n)
}

// Fab mirrors the fabric's Run/RunContext method pair.
type Fab struct{}

func (f *Fab) Step(n int) {}

// StepContext is the wrapper pattern: the Context variant implements
// itself by calling the raw variant between ctx polls. The definitional
// site is exempt from the variant rule.
func (f *Fab) StepContext(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		f.Step(1)
	}
}

func badVariant(ctx context.Context, f *Fab) {
	f.Step(1) // want "call to Step drops the in-scope context ctx; call StepContext"
}

func goodVariant(ctx context.Context, f *Fab) {
	f.StepContext(ctx, 1)
}

func goodNoCtxInScope(f *Fab) {
	f.Step(1) // no context in scope: nothing to thread
}

func badVariantPackageFunc(ctx context.Context, n int) error {
	return run(n) // want "call to run drops the in-scope context ctx; call runContext"
}

func run(n int) error { return nil }

func runContext(ctx context.Context, n int) error { return ctx.Err() }

func badClosureCapture(ctx context.Context, f *Fab) {
	go func() {
		f.Step(2) // want "call to Step drops the in-scope context ctx; call StepContext"
	}()
}

func goodBlankCtx(_ context.Context, f *Fab) {
	f.Step(3) // blank context param: nothing usable to thread
}

// nearest wins: the literal's own context parameter shadows the outer one.
func goodInnerCtx(outer context.Context, f *Fab) {
	fn := func(ctx context.Context) {
		f.StepContext(ctx, 4)
	}
	fn(outer)
}

//hetpnoc:ctxroot
func missingWhy(n int) error { // want "needs a justification"
	return RunContext(context.Background(), n)
}

// argless sibling: the fix inserts just "ctx".
type Pinger struct{}

func (p *Pinger) Ping() {}

func (p *Pinger) PingContext(ctx context.Context) { _ = ctx }

func badArgless(ctx context.Context, p *Pinger) {
	p.Ping() // want "call to Ping drops the in-scope context ctx; call PingContext"
}

// A callee that already takes a context elsewhere in its signature is
// not a dropped edge.
func tail(n int, ctx context.Context) error { return ctx.Err() }

func tailContext(ctx context.Context, n int) error { return ctx.Err() }

func goodAlreadyThreaded(ctx context.Context, n int) error {
	return tail(n, ctx)
}
