package ctxflow_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "cxfix")
}
