// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the repo's
// dependency-free framework.
//
// Fixtures live under <testdata>/src/<importpath>/ and may import the
// standard library (type-checked from source) or sibling fixture
// packages. A fixture line that should trigger a diagnostic carries a
// trailing comment of the form
//
//	code() // want "regexp"
//
// where the quoted pattern must match the diagnostic message reported
// on that line. Multiple patterns ("a" "b") expect multiple
// diagnostics. Every diagnostic must be wanted and every want must be
// matched, otherwise the test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hetpnoc/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Shared across Run calls: srcimporter re-type-checks the standard
// library per instance, so all fixture packages in a test binary share
// one instance (and therefore one FileSet).
var (
	stdMu   sync.Mutex
	stdFset = token.NewFileSet()
	stdImp  = importer.ForCompiler(stdFset, "source", nil).(types.ImporterFrom)
)

// Run applies a to each fixture package and reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	stdMu.Lock()
	defer stdMu.Unlock()
	fx := &fixtures{root: filepath.Join(testdata, "src"), checked: make(map[string]*fixturePkg)}
	for _, path := range pkgPaths {
		p, err := fx.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		runOne(t, a, p)
	}
}

// RunModule loads every fixture package in pkgPaths into one shared
// type universe, applies module analyzer a once over all of them
// (packages pulled in through fixture imports included), and matches
// diagnostics against the want comments of every loaded file. This is
// the fixture entry point for the whole-program analyzers, whose
// findings span package boundaries.
func RunModule(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunModuleCache(t, testdata, a, nil, pkgPaths...)
}

// RunModuleCache is RunModule with a driver-style shared cache: analyzers
// that read configuration or precomputed facts from ModulePass.Cache
// (allocproof's gcobs report) get cache handed through verbatim. A nil
// cache behaves like RunModule.
func RunModuleCache(t *testing.T, testdata string, a *analysis.Analyzer, cache map[string]any, pkgPaths ...string) {
	t.Helper()
	stdMu.Lock()
	defer stdMu.Unlock()
	fx := &fixtures{root: filepath.Join(testdata, "src"), checked: make(map[string]*fixturePkg)}
	for _, path := range pkgPaths {
		if _, err := fx.load(path); err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			return
		}
	}

	// Deterministic unit order: the explicit paths first, then any
	// packages reached only through imports, sorted.
	inUnits := make(map[string]bool)
	var units []*analysis.PackageUnit
	var files []*ast.File
	add := func(path string) {
		if inUnits[path] {
			return
		}
		inUnits[path] = true
		p := fx.checked[path]
		units = append(units, &analysis.PackageUnit{Path: p.path, Files: p.files, Pkg: p.pkg, TypesInfo: p.info})
		files = append(files, p.files...)
	}
	for _, path := range pkgPaths {
		add(path)
	}
	var rest []string
	for path := range fx.checked {
		if !inUnits[path] {
			rest = append(rest, path)
		}
	}
	sort.Strings(rest)
	for _, path := range rest {
		add(path)
	}

	var diags []analysis.Diagnostic
	mp := &analysis.ModulePass{
		Analyzer: a,
		Fset:     stdFset,
		Pkgs:     units,
		Report:   func(d analysis.Diagnostic) { diags = append(diags, d) },
		Cache:    cache,
	}
	if err := a.RunModule(mp); err != nil {
		t.Errorf("%s: module analyzer failed: %v", a.Name, err)
		return
	}
	matchWants(t, diags, files)
}

type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type fixtures struct {
	root    string
	checked map[string]*fixturePkg
	loading map[string]bool
}

func (fx *fixtures) load(path string) (*fixturePkg, error) {
	if p, ok := fx.checked[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fx.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(stdFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture sources in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: (*fixtureImporter)(fx)}
	tp, err := conf.Check(path, stdFset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	p := &fixturePkg{path: path, files: files, pkg: tp, info: info}
	fx.checked[path] = p
	return p, nil
}

// fixtureImporter resolves fixture-internal imports from testdata/src
// and everything else from the standard library.
type fixtureImporter fixtures

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, "", 0)
}

func (fi *fixtureImporter) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	fx := (*fixtures)(fi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(fx.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := fx.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return stdImp.ImportFrom(path, dir, 0)
}

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

func parseWants(t *testing.T, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := stdFset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses the payload of a want comment: one or more
// Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			t.Errorf("%s: malformed want payload %q", pos, s)
			return pats
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			t.Errorf("%s: unterminated want pattern %q", pos, s)
			return pats
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Errorf("%s: bad want pattern %s: %v", pos, raw, err)
			return pats
		}
		pats = append(pats, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return pats
}

func runOne(t *testing.T, a *analysis.Analyzer, p *fixturePkg) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      stdFset,
		Files:     p.files,
		Pkg:       p.pkg,
		TypesInfo: p.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer failed on %s: %v", a.Name, p.path, err)
		return
	}
	matchWants(t, diags, p.files)
}

// matchWants checks diags against the want comments of files: every
// diagnostic must be wanted and every want matched.
func matchWants(t *testing.T, diags []analysis.Diagnostic, files []*ast.File) {
	t.Helper()
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	wants := parseWants(t, files)
	for _, d := range diags {
		pos := stdFset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}
