// Package sim exercises snapcover: every capture/restore pair must
// cover each mutable field of its subject, transitively through
// slice-of-struct state, with justified //hetpnoc:nosnap exemptions.
package sim

// Counter snapshots but can never be rewound.
type Counter struct{ n int }

// Bump makes n mutable.
func (c *Counter) Bump() { c.n++ }

// Snapshot has no restore counterpart.
func (c *Counter) Snapshot() int { return c.n } // want `Counter\.Snapshot has no restore counterpart: the snapshot can never be applied \(missing-restore\)`

// Engine misses one field on each side, carries one immutable config
// field, and exempts two fields (one justified, one not).
type Engine struct {
	count      int
	missed     int
	unrestored int
	cfg        int

	//hetpnoc:nosnap derived scratch, rebuilt lazily on first use
	skip int

	//hetpnoc:nosnap
	bad int // want `//hetpnoc:nosnap needs a justification for excluding the field from checkpoints`
}

// NewEngine's writes are build-time: cfg stays immutable.
func NewEngine(cfg int) *Engine { return &Engine{cfg: cfg} }

// Step makes the remaining fields mutable.
func (e *Engine) Step() {
	e.count++
	e.missed++
	e.unrestored++
	e.skip++
	e.bad++
}

// EngineSnap is the externally-materialized snapshot.
type EngineSnap struct {
	count      int
	unrestored int
}

// Snapshot forgets missed entirely.
func (e *Engine) Snapshot() *EngineSnap { // want `Engine\.Snapshot does not capture mutable field Engine\.missed: a restored run silently diverges`
	return &EngineSnap{count: e.count, unrestored: e.unrestored}
}

// Restore re-applies count but never writes unrestored (or missed) back.
func (e *Engine) Restore(s *EngineSnap) { // want `Engine\.Restore does not restore mutable field Engine\.missed` `Engine\.Restore does not restore mutable field Engine\.unrestored`
	e.count = s.count
}

// Pair is element state reached transitively through Grid.cells.
type Pair struct{ a, b int }

// Grid's pair touches element field a without a wholesale element
// transfer, so snapcover descends into Pair and finds b uncovered.
type Grid struct {
	cells []Pair
}

// Step makes both element fields mutable.
func (g *Grid) Step(i int) {
	g.cells[i].a++
	g.cells[i].b++
}

// GridSnap captures only the a column.
type GridSnap struct{ a []int }

// Snapshot walks elements but copies just a.
func (g *Grid) Snapshot() *GridSnap { // want `Grid\.Snapshot does not capture mutable field Grid\.cells\.b`
	s := &GridSnap{}
	for i := range g.cells {
		s.a = append(s.a, g.cells[i].a)
	}
	return s
}

// Restore writes the a column back.
func (g *Grid) Restore(s *GridSnap) { // want `Grid\.Restore does not restore mutable field Grid\.cells\.b`
	for i := range s.a {
		g.cells[i].a = s.a[i]
	}
}

// Slot is element state transferred wholesale below.
type Slot struct{ v int }

// Ring is clean: copy() and an append spread move whole elements, so
// element-wise completeness is implied and no descent happens even
// though Step mutates element fields.
type Ring struct {
	slots []Slot
	head  int
}

// Step makes slot contents and the cursor mutable.
func (r *Ring) Step() {
	r.slots[r.head].v++
	r.head++
}

// RingSnap mirrors the ring.
type RingSnap struct {
	slots []Slot
	head  int
}

// Snapshot clones the elements wholesale.
func (r *Ring) Snapshot() *RingSnap {
	return &RingSnap{slots: append([]Slot(nil), r.slots...), head: r.head}
}

// Restore copies them back wholesale.
func (r *Ring) Restore(s *RingSnap) {
	copy(r.slots, s.slots)
	r.head = s.head
}
