// Package snapcover proves checkpoint completeness: every hand-written
// Snapshot/Restore pair in the module must capture and re-apply every
// mutable field of its subject type. PR 6's Fabric.Checkpoint promises
// bit-identical replay, and that promise is only as strong as the ~13
// snapshot pairs staying complete as new mutable state lands — one
// forgotten field silently corrupts every forked replica. This analyzer
// makes the completeness mechanical.
//
// A subject is a named struct type with a capture method (Snapshot,
// Checkpoint, or State) and a matching restore (a Restore/SetState
// method, or a package function Restore<Type> for snapshot types
// materialized externally, like xbar.RestoreWindow). For each subject
// the analyzer classifies every field — transitively through embedded
// structs and same-package slice-of-struct state like the torus path
// list — as:
//
//   - build-time: written only inside New*/new* constructors (or never
//     written at all). Construction-fixed state needs no checkpoint.
//   - exempt: carries //hetpnoc:nosnap <why> on its declaration —
//     derived caches rebuilt on restore, allocation free-lists, state
//     owned and checkpointed by another component. The justification is
//     required.
//   - mutable: everything else. A mutable field must be referenced by
//     the capture implementation and by the restore implementation
//     (directly or in a same-package helper they call), or be covered
//     wholesale by a *receiver copy (stats.Collector's `*c`).
//
// Each diagnostic names the full missing-field path (e.g.
// `Fabric.cores.rejects`); -fix scaffolds a reminder stanza into the
// capture body so the missing field is impossible to overlook.
//
// Known limitation, by design: a field that is never reassigned but
// whose pointee is mutated through methods (rx.detectors) is build-time
// at this type's level — the pointee's own Snapshot/Restore pair is
// responsible for its state, and gets its own coverage check.
package snapcover

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/callgraph"
)

// Analyzer is the snapcover check.
var Analyzer = &analysis.Analyzer{
	Name: "snapcover",
	Doc: "prove Snapshot/Restore pairs capture and restore every mutable field of their subject\n\n" +
		"Pairs each Snapshot/Checkpoint/State implementation with its\n" +
		"restore counterpart and its subject struct, classifies every\n" +
		"field (transitively through embedded and slice-of-struct state)\n" +
		"as build-time, exempt (//hetpnoc:nosnap <why>) or mutable, and\n" +
		"reports mutable fields missing from either side with their full\n" +
		"field path.",
	RunModule: run,
}

// captureNames and restoreNames are the method-name families that form
// a snapshot pair.
var captureNames = map[string]bool{"Snapshot": true, "Checkpoint": true, "State": true}
var restoreNames = map[string]bool{"Restore": true, "SetState": true}

// subject is one named struct type with snapshot methods.
type subject struct {
	typ      *types.Named
	captures []*callgraph.Node
	restores []*callgraph.Node
}

// fieldSite locates one struct field's declaration for directive
// lookups and diagnostics.
type fieldSite struct {
	field *ast.Field
	unit  *analysis.PackageUnit
}

type checker struct {
	mp     *analysis.ModulePass
	g      *callgraph.Graph
	dirs   *analysis.DirectiveCache
	fields map[token.Pos]fieldSite
	// written maps field objects to "written outside build-time code".
	written map[*types.Var]bool
	// subjects indexes every named type that has any capture or restore
	// candidate; used to stop nested descent at types with their own pair.
	subjects map[*types.Named]*subject
	// badNosnap dedupes unjustified-nosnap reports per field.
	badNosnap map[*types.Var]bool
}

func run(mp *analysis.ModulePass) error {
	c := &checker{
		mp:        mp,
		g:         callgraph.FromPass(mp),
		dirs:      analysis.NewDirectiveCache(mp.Fset),
		fields:    make(map[token.Pos]fieldSite),
		written:   make(map[*types.Var]bool),
		subjects:  make(map[*types.Named]*subject),
		badNosnap: make(map[*types.Var]bool),
	}
	c.indexFields()
	c.indexWrites()
	c.discover()

	// Deterministic order: subjects sorted by the position of their
	// first capture method.
	var ordered []*subject
	for _, s := range c.subjects {
		if len(s.captures) > 0 || len(s.restores) > 0 {
			ordered = append(ordered, s)
		}
	}
	sort.Slice(ordered, func(i, j int) bool { return subjectPos(ordered[i]) < subjectPos(ordered[j]) })

	for _, s := range ordered {
		c.check(s)
	}
	return nil
}

func subjectPos(s *subject) token.Pos {
	if len(s.captures) > 0 {
		return s.captures[0].Decl.Pos()
	}
	return s.restores[0].Decl.Pos()
}

// indexFields maps every struct field declaration position (names and
// embedded type expressions) to its AST for nosnap lookups.
func (c *checker) indexFields() {
	for _, u := range c.mp.Pkgs {
		for _, file := range u.Files {
			if c.testFile(file.Pos()) {
				continue
			}
			unit := u
			ast.Inspect(file, func(nd ast.Node) bool {
				st, ok := nd.(*ast.StructType)
				if !ok {
					return true
				}
				for _, f := range st.Fields.List {
					site := fieldSite{field: f, unit: unit}
					for _, name := range f.Names {
						c.fields[name.Pos()] = site
					}
					if len(f.Names) == 0 {
						c.fields[f.Type.Pos()] = site
						// An embedded *T field's object sits on T, one
						// token past the star.
						if star, ok := f.Type.(*ast.StarExpr); ok {
							c.fields[star.X.Pos()] = site
						}
					}
				}
				return true
			})
		}
	}
}

// indexWrites records every field object assigned outside build-time
// code. Build-time means: directly inside a function or method whose
// name starts with New/new (not inside a closure — a closure built in a
// constructor runs later). Test files are ignored; a test poking a
// field does not make it run-time mutable.
func (c *checker) indexWrites() {
	for _, n := range c.g.Sorted {
		if c.testFile(n.Decl.Pos()) {
			continue
		}
		buildTime := strings.HasPrefix(n.Func.Name(), "New") || strings.HasPrefix(n.Func.Name(), "new")
		info := n.Unit.TypesInfo
		depth := 0 // FuncLit nesting
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case nil:
				return true
			case *ast.FuncLit:
				// Inspect pre/post calls: count via a nested walk instead.
				depth++
				ast.Inspect(nd.Body, func(inner ast.Node) bool {
					c.writeTargets(info, inner, false)
					return true
				})
				return false // handled; avoid double visits
			default:
				c.writeTargets(info, nd, buildTime && depth == 0)
			}
			return true
		})
	}
}

// writeTargets records the field objects written by one statement.
// buildTime writes are skipped — they are construction, not mutation.
func (c *checker) writeTargets(info *types.Info, nd ast.Node, buildTime bool) {
	record := func(e ast.Expr) {
		if !buildTime {
			c.markWritten(info, e)
		}
	}
	switch nd := nd.(type) {
	case *ast.AssignStmt:
		if nd.Tok == token.DEFINE {
			return
		}
		for _, lhs := range nd.Lhs {
			record(lhs)
		}
	case *ast.IncDecStmt:
		record(nd.X)
	case *ast.RangeStmt:
		if nd.Tok == token.ASSIGN {
			record(nd.Key)
			record(nd.Value)
		}
	case *ast.CallExpr:
		// copy(x.f, ...) mutates x.f's contents in place.
		if id, ok := nd.Fun.(*ast.Ident); ok && len(nd.Args) > 0 {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "copy" {
				record(nd.Args[0])
			}
		}
	}
}

// markWritten walks a write target down to the field objects it
// mutates: every selector on the access path counts (`a.hot[g].count++`
// mutates both hot's contents and count).
func (c *checker) markWritten(info *types.Info, e ast.Expr) {
	for e != nil {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.SelectorExpr:
			if v, ok := info.Uses[t.Sel].(*types.Var); ok && v.IsField() {
				c.written[v] = true
			}
			e = t.X
		default:
			return
		}
	}
}

// discover indexes every snapshot method pair by subject type.
func (c *checker) discover() {
	for _, n := range c.g.Sorted {
		if c.testFile(n.Decl.Pos()) {
			continue
		}
		name := n.Func.Name()
		if recv := n.Func.Type().(*types.Signature).Recv(); recv != nil {
			named := namedOf(recv.Type())
			if named == nil || !isStruct(named) {
				continue
			}
			switch {
			case captureNames[name]:
				c.subjectFor(named).captures = append(c.subjectFor(named).captures, n)
			case restoreNames[name]:
				c.subjectFor(named).restores = append(c.subjectFor(named).restores, n)
			}
			continue
		}
		// Package function Restore<Type> restores externally-materialized
		// snapshots (xbar.RestoreWindow).
		if rest, ok := strings.CutPrefix(name, "Restore"); ok && rest != "" {
			obj, ok2 := n.Unit.Pkg.Scope().Lookup(rest).(*types.TypeName)
			if !ok2 {
				continue
			}
			if named, ok3 := obj.Type().(*types.Named); ok3 && isStruct(named) {
				c.subjectFor(named).restores = append(c.subjectFor(named).restores, n)
			}
		}
	}
}

func (c *checker) subjectFor(named *types.Named) *subject {
	s, ok := c.subjects[named]
	if !ok {
		s = &subject{typ: named}
		c.subjects[named] = s
	}
	return s
}

// check verifies one subject's pair coverage.
func (c *checker) check(s *subject) {
	// A State getter without SetState is just a getter; only the strong
	// names demand a counterpart.
	if len(s.restores) == 0 {
		for _, cap := range s.captures {
			name := cap.Func.Name()
			if name == "Snapshot" || name == "Checkpoint" {
				c.mp.Reportf(cap.Decl.Name.Pos(),
					fmt.Sprintf("%s.%s has no restore counterpart: the snapshot can never be applied (missing-restore)",
						s.typ.Obj().Name(), name),
					"add a Restore method (or a Restore"+s.typ.Obj().Name()+" function) that re-applies every captured field")
			}
		}
		return
	}
	if len(s.captures) == 0 {
		return
	}

	capCov := c.coverage(s.captures)
	resCov := c.coverage(s.restores)

	var missingCap, missingRes []string
	c.walkFields(s.typ, s.typ.Obj().Name(), capCov, resCov, nil, &missingCap, &missingRes)

	capPos := s.captures[0].Decl.Name.Pos()
	resPos := s.restores[0].Decl.Name.Pos()
	capName := s.typ.Obj().Name() + "." + s.captures[0].Func.Name()
	resName := s.restores[0].Func.Name()
	if sig := s.restores[0].Func.Type().(*types.Signature); sig.Recv() != nil {
		resName = s.typ.Obj().Name() + "." + resName
	}

	for _, path := range missingCap {
		c.mp.Report(analysis.Diagnostic{
			Pos: capPos,
			Message: fmt.Sprintf("%s does not capture mutable field %s: a restored run silently diverges",
				capName, path),
			Suggestion: fmt.Sprintf("capture %s (and restore it in %s), or exempt it with //hetpnoc:nosnap <why> on the field", path, resName),
			Fixes: []analysis.SuggestedFix{{
				Message: "scaffold a capture stanza for " + path,
				TextEdits: []analysis.TextEdit{{
					Pos: s.captures[0].Decl.Body.Lbrace + 1,
					End: s.captures[0].Decl.Body.Lbrace + 1,
					NewText: fmt.Sprintf("\n\t// TODO(snapcover): capture %s here and re-apply it in %s,\n"+
						"\t// or exempt the field with //hetpnoc:nosnap <why>.", path, resName),
				}},
			}},
		})
	}
	for _, path := range missingRes {
		c.mp.Reportf(resPos,
			fmt.Sprintf("%s does not restore mutable field %s: the captured value is never re-applied", resName, path),
			fmt.Sprintf("write %s back in %s, or exempt it with //hetpnoc:nosnap <why> on the field", path, resName))
	}
}

// cover is one side's field coverage: the fields referenced, whether a
// *receiver wholesale copy covers everything, and which slice/array
// fields had their elements transferred whole (copy() or an
// append(dst[:0], src...) spread) — element-wise completeness is
// implied for those, so nested descent would only produce noise.
type cover struct {
	set       map[*types.Var]bool
	whole     bool
	wholeElem map[*types.Var]bool
}

// coverage unions the field objects referenced by fns and the
// same-package helpers they call.
func (c *checker) coverage(fns []*callgraph.Node) *cover {
	cov := &cover{set: make(map[*types.Var]bool), wholeElem: make(map[*types.Var]bool)}
	visited := make(map[*callgraph.Node]bool)
	var visit func(n *callgraph.Node, root bool)
	visit = func(n *callgraph.Node, root bool) {
		if visited[n] {
			return
		}
		visited[n] = true
		info := n.Unit.TypesInfo

		var recvObj types.Object
		if root && n.Decl.Recv != nil && len(n.Decl.Recv.List) == 1 && len(n.Decl.Recv.List[0].Names) == 1 {
			recvObj = info.Defs[n.Decl.Recv.List[0].Names[0]]
		}

		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.Ident:
				if v, ok := info.Uses[nd].(*types.Var); ok && v.IsField() {
					cov.set[v] = true
				}
			case *ast.StarExpr:
				if id, ok := nd.X.(*ast.Ident); ok && recvObj != nil && info.Uses[id] == recvObj {
					cov.whole = true
				}
			case *ast.CallExpr:
				c.wholesaleElems(info, nd, cov)
			case *ast.CompositeLit:
				// Struct literal keys resolve through Uses as well, but
				// be defensive: match unresolved keys by name.
				c.litKeys(info, nd, cov.set)
			}
			return true
		})

		for _, e := range n.Out {
			if e.Kind == callgraph.KindRef {
				continue
			}
			if e.Callee.Unit.Pkg == n.Unit.Pkg {
				visit(e.Callee, false)
			}
		}
	}
	for _, fn := range fns {
		visit(fn, true)
	}
	return cov
}

// wholesaleElems records fields whose elements call transfers whole:
// copy(dst, src) and append(dst[:0], src...) move complete element
// values, so a struct element's every field rides along.
func (c *checker) wholesaleElems(info *types.Info, call *ast.CallExpr, cov *cover) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok {
		return
	}
	mark := func(e ast.Expr) {
		if v := rootField(info, e); v != nil {
			cov.wholeElem[v] = true
		}
	}
	switch {
	case b.Name() == "copy" && len(call.Args) == 2:
		mark(call.Args[0])
		mark(call.Args[1])
	case b.Name() == "append" && call.Ellipsis.IsValid() && len(call.Args) == 2:
		mark(call.Args[0])
		mark(call.Args[1])
	}
}

// rootField resolves an expression like a.hot, s.bufs[g] or x.f[:0] to
// the field object it denotes, or nil.
func rootField(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			if v, ok := info.Uses[t.Sel].(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// litKeys marks the struct fields named by a composite literal's keys.
func (c *checker) litKeys(info *types.Info, lit *ast.CompositeLit, covered map[*types.Var]bool) {
	tv, ok := info.Types[lit]
	if !ok {
		return
	}
	st, ok := deref(tv.Type).Underlying().(*types.Struct)
	if !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := info.Uses[key].(*types.Var); ok && v.IsField() {
			covered[v] = true
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == key.Name {
				covered[st.Field(i)] = true
				break
			}
		}
	}
}

// walkFields checks every field of named (embedded structs flattened,
// same-package element structs descended into) against the coverage
// sets, appending missing-field paths.
func (c *checker) walkFields(named *types.Named, path string, capCov, resCov *cover,
	seen []*types.Named, missingCap, missingRes *[]string) {
	for _, prev := range seen {
		if prev == named {
			return
		}
	}
	seen = append(seen, named)
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fpath := path + "." + f.Name()

		// Embedded same-package struct: its fields are the subject's
		// fields (the fabric's fabricState block).
		if f.Embedded() {
			if en := namedOf(f.Type()); en != nil && en.Obj().Pkg() == named.Obj().Pkg() && isStruct(en) {
				c.walkFields(en, path, capCov, resCov, seen, missingCap, missingRes)
				continue
			}
		}

		if c.exempt(f) {
			continue
		}
		if !c.written[f] {
			continue // build-time: never mutated after construction
		}
		if !capCov.whole && !capCov.set[f] {
			*missingCap = append(*missingCap, fpath)
		}
		if !resCov.whole && !resCov.set[f] {
			*missingRes = append(*missingRes, fpath)
		}

		// Descend into same-package struct elements without their own
		// snapshot pair (the torus path list) — but only when the pair
		// handles them field-by-field; a wholesale value transfer
		// (copy(), an append spread, a *receiver copy, or zero element
		// accesses at all) implies element completeness.
		en := elemStruct(f.Type())
		if en == nil || en.Obj().Pkg() != named.Obj().Pkg() || c.hasOwnPair(en) {
			continue
		}
		est := en.Underlying().(*types.Struct)
		capElems := !capCov.whole && !capCov.wholeElem[f] && touchesAny(capCov.set, est)
		resElems := !resCov.whole && !resCov.wholeElem[f] && touchesAny(resCov.set, est)
		if capElems || resElems {
			ecap, eres := capCov, resCov
			if !capElems {
				ecap = &cover{set: capCov.set, whole: true, wholeElem: capCov.wholeElem}
			}
			if !resElems {
				eres = &cover{set: resCov.set, whole: true, wholeElem: resCov.wholeElem}
			}
			c.walkFields(en, fpath, ecap, eres, seen, missingCap, missingRes)
		}
	}
}

// exempt reports whether f carries //hetpnoc:nosnap, reporting a
// missing justification once.
func (c *checker) exempt(f *types.Var) bool {
	site, ok := c.fields[f.Pos()]
	if !ok {
		return false
	}
	d := c.dirs.For(site.unit, f.Pos())
	if d == nil {
		return false
	}
	dir, ok := d.Covering(site.field, analysis.DirectiveNosnap)
	if !ok {
		return false
	}
	if dir.Arg == "" && !c.badNosnap[f] {
		c.badNosnap[f] = true
		c.mp.Reportf(f.Pos(),
			"//hetpnoc:nosnap needs a justification for excluding the field from checkpoints",
			"//hetpnoc:nosnap <why this field needs no capture: build-time, derived, or owned elsewhere>")
	}
	return true
}

// hasOwnPair reports whether named has its own capture+restore methods
// (its coverage is its own subject's check).
func (c *checker) hasOwnPair(named *types.Named) bool {
	s, ok := c.subjects[named]
	return ok && len(s.captures) > 0 && len(s.restores) > 0
}

// touchesAny reports whether set covers any field of st.
func touchesAny(set map[*types.Var]bool, st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if set[st.Field(i)] {
			return true
		}
	}
	return false
}

// elemStruct strips pointers, slices, arrays and map values down to a
// named struct type, or nil.
func elemStruct(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Array:
			t = tt.Elem()
		case *types.Map:
			t = tt.Elem()
		case *types.Named:
			if isStruct(tt) {
				return tt
			}
			return nil
		default:
			return nil
		}
	}
}

// namedOf strips one pointer and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func isStruct(n *types.Named) bool {
	_, ok := n.Underlying().(*types.Struct)
	return ok
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// testFile reports whether pos falls in a _test.go file.
func (c *checker) testFile(pos token.Pos) bool {
	f := c.mp.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}
