package snapcover_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/snapcover"
)

func TestSnapcover(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), snapcover.Analyzer,
		"snap/sim",
	)
}
