// Package goleak proves goroutine lifetime: every go statement must
// spawn a goroutine that can terminate, join, or be a declared daemon.
// ROADMAP item 3 turns the simulator into a long-running job service,
// where a leaked goroutine is a slow-motion outage — the same
// resource-stranding failure the fair-admission crossbar guards
// against in hardware.
//
// The check is built on the conc layer's can-return analysis: a spawn
// is clean when the spawned function (a literal, or a statically
// resolved declared callee) has at least one control-flow path to an
// exit, calls to module functions that never return included. A
// goroutine with no such path must show one of:
//
//   - a quit signal: a receive from a channel of empty structs
//     (ctx.Done(), a quit/stop channel) anywhere along the
//     non-returning chain — the goroutine observes shutdown even if
//     the analysis cannot prove the loop exits;
//   - a WaitGroup join: the goroutine calls Done on a group some
//     module function Waits on;
//   - an explicit //hetpnoc:daemon <why> directive on the go
//     statement, declaring a process-lifetime goroutine.
//
// Diagnostics carry the spawn→blocking-function chain, resolved
// through the CHA call graph's static edges, so the report names the
// function that actually loops forever, not just the go statement.
// Spawns through function-typed values are skipped — the callee set is
// open, the same stance callgraph takes for unknown call sites.
package goleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/callgraph"
	"hetpnoc/internal/analysis/conc"
)

// Analyzer flags go statements whose goroutine provably never
// terminates and is neither joined, quit-signaled, nor a declared
// daemon.
var Analyzer = &analysis.Analyzer{
	Name:      "goleak",
	Doc:       "every go statement must terminate, join a WaitGroup, watch a quit channel, or be a declared //hetpnoc:daemon",
	RunModule: run,
}

const suggestion = "select on ctx.Done() or a quit channel inside the loop, bound the loop, " +
	"join the goroutine with a WaitGroup Done+Wait, or annotate the go statement " +
	"//hetpnoc:daemon <why> if it deliberately lives for the whole process"

func run(mp *analysis.ModulePass) error {
	m := conc.FromPass(mp)
	cg := callgraph.FromPass(mp)
	dc := analysis.NewDirectiveCache(mp.Fset)
	c := &checker{mp: mp, m: m, cg: cg, dc: dc}
	for _, fi := range m.Sorted {
		for _, sp := range fi.Spawns {
			c.spawn(fi, sp)
		}
	}
	return nil
}

type checker struct {
	mp *analysis.ModulePass
	m  *conc.Module
	cg *callgraph.Graph
	dc *analysis.DirectiveCache
}

func (c *checker) spawn(fi *conc.FuncInfo, sp *conc.Spawn) {
	var (
		rootBody *ast.BlockStmt
		rootName string
		rootFn   *conc.FuncInfo
	)
	switch {
	case sp.Lit != nil:
		rootBody = sp.Lit.Body
		rootName = "func literal"
	case sp.Callee != nil:
		rootFn = c.m.FuncOf(sp.Callee)
		if rootFn == nil {
			return // out-of-module callee: lifetime owned elsewhere
		}
		rootBody = rootFn.Decl.Body
		rootName = c.name(rootFn)
	default:
		return // function-typed value: open callee set, like callgraph
	}

	canReturn := false
	if rootFn != nil {
		canReturn = rootFn.CanReturn()
	} else {
		canReturn = c.m.LitCanReturn(sp.Lit, fi.Unit)
	}
	if canReturn {
		return
	}

	// The non-returning chain, for the diagnostic and the quit scan.
	steps := c.chain(rootName, rootBody, rootFn, fi)

	names := make([]string, len(steps))
	for i, st := range steps {
		names[i] = st.name
		if hasQuitSignal(st.body, st.unit) {
			return
		}
	}
	if c.joined(fi, sp, rootFn) {
		return
	}
	c.report(fi, sp, names)
}

// chainStep is one link of the spawn→blocker chain.
type chainStep struct {
	name string
	body *ast.BlockStmt
	unit *analysis.PackageUnit
}

// chain follows the spawn into the function that never returns: while
// the current body could exit on its own (intrinsically), the blocker
// is a static callee whose CanReturn is false — step into it. Static
// resolution matches the CHA call graph's static edges; names render
// through the graph's nodes.
func (c *checker) chain(rootName string, rootBody *ast.BlockStmt, rootFn, encl *conc.FuncInfo) []chainStep {
	unit := encl.Unit
	if rootFn != nil {
		unit = rootFn.Unit
	}
	steps := []chainStep{{name: rootName, body: rootBody, unit: unit}}
	body, fn := rootBody, rootFn
	for depth := 0; depth < 10; depth++ {
		if fn != nil && !fn.IntrinsicReturn() {
			break // this body's own control flow is the blocker
		}
		var next *conc.FuncInfo
		for _, callee := range c.m.StaticCalleesIn(body, unit.TypesInfo) {
			if !callee.CanReturn() {
				next = callee
				break
			}
		}
		if next == nil {
			break
		}
		steps = append(steps, chainStep{name: c.name(next), body: next.Decl.Body, unit: next.Unit})
		body, fn, unit = next.Decl.Body, next, next.Unit
	}
	return steps
}

// name renders fn through its call-graph node when it has one.
func (c *checker) name(fn *conc.FuncInfo) string {
	if n := c.cg.NodeOf(fn.Obj); n != nil {
		return n.Name()
	}
	return fn.Name()
}

// joined reports whether the goroutine Dones a WaitGroup that some
// module function Waits on. For literal spawns the Done must sit
// inside the spawned literal; for callee spawns, in the callee's body
// on the goroutine side, keyed by a field or package-level group (a
// local key cannot be matched across the call).
func (c *checker) joined(fi *conc.FuncInfo, sp *conc.Spawn, rootFn *conc.FuncInfo) bool {
	check := func(key string) bool {
		return len(c.m.WG(key).Waits) > 0
	}
	if sp.Lit != nil {
		for _, op := range fi.WGOps {
			if op.Kind == conc.WGDone && op.InSpawn == sp.Stmt && check(op.Key) {
				return true
			}
		}
		return false
	}
	for _, op := range rootFn.WGOps {
		if op.Kind != conc.WGDone || op.InSpawn != nil {
			continue
		}
		if !strings.HasPrefix(op.Key, "f|") && !strings.HasPrefix(op.Key, "g|") {
			continue
		}
		if check(op.Key) {
			return true
		}
	}
	return false
}

// hasQuitSignal reports whether body receives from a quit channel — a
// channel of empty structs, the ctx.Done()/stop-channel convention.
func hasQuitSignal(body *ast.BlockStmt, unit *analysis.PackageUnit) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			if conc.IsQuitChan(unit.TypesInfo.TypeOf(ue.X)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// report delivers the finding unless a justified //hetpnoc:daemon
// covers the go statement.
func (c *checker) report(fi *conc.FuncInfo, sp *conc.Spawn, chain []string) {
	if dirs := c.dc.For(fi.Unit, sp.Stmt.Pos()); dirs != nil {
		if dir, ok := dirs.Covering(sp.Stmt, analysis.DirectiveDaemon); ok {
			if dir.Arg == "" {
				c.mp.Reportf(sp.Stmt.Pos(),
					"//hetpnoc:daemon needs a justification explaining why this goroutine may run for the whole process",
					"//hetpnoc:daemon <why the goroutine is a deliberate daemon>")
			}
			return
		}
	}
	c.mp.Reportf(sp.Stmt.Pos(), fmt.Sprintf(
		"goroutine never terminates: %s has no path to an exit and no quit signal, join, or daemon declaration",
		strings.Join(chain, " → ")), suggestion)
}
