// Fixtures for the goleak analyzer: leaks through literals and callee
// chains, bounded/joined/quit-signaled clean cases, and the daemon
// directive with and without a justification.
package spawn

import (
	"context"
	"sync"
)

var sink int

func process(v int) { sink += v }

// LeakLiteral spawns a literal that loops forever: no exit path, no
// quit signal, no join.
func LeakLiteral(jobs chan int) {
	go func() { // want "goroutine never terminates"
		for {
			process(<-jobs)
		}
	}()
}

// spin never returns: the loop has no break and no return.
func spin(jobs chan int) {
	for {
		process(<-jobs)
	}
}

// pump can fall off its own end, but the spin call never returns — the
// chain walks to the blocker.
func pump(jobs chan int) {
	process(0)
	spin(jobs)
}

// LeakCallee leaks through a declared function.
func LeakCallee(jobs chan int) {
	go spin(jobs) // want "spawn.spin has no path to an exit"
}

// LeakChain leaks two static calls down; the diagnostic names the
// chain.
func LeakChain(jobs chan int) {
	go pump(jobs) // want "spawn.pump → spawn.spin"
}

// Bounded terminates: the body runs straight through.
func Bounded(done chan struct{}) {
	go func() {
		process(1)
		done <- struct{}{}
	}()
}

// RangeWorker terminates when the channel closes: a range over a
// channel always has the close-terminated exit edge.
func RangeWorker(jobs chan int) {
	go func() {
		for v := range jobs {
			process(v)
		}
	}()
}

// QuitSelect never returns, but it watches ctx.Done() — the goroutine
// observes shutdown, which goleak accepts as the exit signal.
func QuitSelect(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				process(0)
			case v := <-jobs:
				process(v)
			}
		}
	}()
}

// QuitChannel is the same signal through a plain quit channel.
func QuitChannel(quit chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case <-quit:
				process(0)
			case v := <-jobs:
				process(v)
			}
		}
	}()
}

// Joined terminates and is joined; the WaitGroup pattern stays clean.
func Joined(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range jobs {
			process(v)
		}
	}()
	wg.Wait()
}

// ReadySignal loops forever but reports through a group the spawner
// waits on — the Done+Wait join is accepted as the lifetime signal.
func ReadySignal(tick chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Done()
		for {
			process(<-tick)
		}
	}()
	wg.Wait()
}

// Daemon declares the process-lifetime pump.
func Daemon(tick chan int) {
	//hetpnoc:daemon metrics pump runs for the whole process
	go func() {
		for {
			process(<-tick)
		}
	}()
}

// DaemonNoWhy declares it without saying why.
func DaemonNoWhy(tick chan int) {
	//hetpnoc:daemon
	go func() { // want "needs a justification"
		for {
			process(<-tick)
		}
	}()
}
