package goleak_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/goleak"
)

func TestGoleakFixtures(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), goleak.Analyzer, "gl/spawn")
}
