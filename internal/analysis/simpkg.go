package analysis

import "strings"

// SimPackages are the package-path suffixes that form the deterministic
// simulator core. detrand, maprange and globalstate apply only inside
// these packages; tooling (cmd/*, internal/report, examples) is free to
// use wall-clock time, global flags and unordered iteration.
var simPackages = []string{
	"internal/sim",
	"internal/fabric",
	"internal/router",
	"internal/xbar",
	"internal/core",
	"internal/traffic",
	"internal/packet",
	"internal/event",
	"internal/torus",
}

// IsSimPackage reports whether the package at path is part of the
// deterministic simulator core. A path matches when one of the
// SimPackages suffixes is a whole-segment suffix of it (so
// "hetpnoc/internal/sim" matches "internal/sim" but
// "hetpnoc/internal/simtools" does not). Fixture packages under
// analysistest testdata re-use the same suffixes.
func IsSimPackage(path string) bool {
	for _, s := range simPackages {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
