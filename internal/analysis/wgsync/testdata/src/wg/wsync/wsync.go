// Fixtures for the wgsync analyzer: Add inside the spawned goroutine,
// Adds that do not dominate the spawn, Waits that can never return,
// balanced clean shapes, and the daemon exemption.
package wsync

import "sync"

var sink int

func work(v int) { sink += v }

func pump() { sink++ }

// Balanced is the canonical clean shape: Add dominates the spawn in
// the loop body, Done is deferred inside, Wait follows the loop.
func Balanced(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			work(v)
		}(i)
	}
	wg.Wait()
}

// AddInside accounts for the goroutine from inside it: the spawner can
// reach Wait before the goroutine is scheduled.
func AddInside() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Add(1) // want "Add inside the spawned goroutine"
		defer wg.Done()
		defer wg.Done()
		work(1)
	}()
	wg.Wait()
}

// BranchAdd only Adds on one branch, but spawns unconditionally: the
// must-analysis sees the add-free path into the go statement.
func BranchAdd(fast bool) {
	var wg sync.WaitGroup
	if fast {
		wg.Add(1)
	}
	go func() { // want "does not reach the spawn on every path"
		defer wg.Done()
		work(2)
	}()
	wg.Wait()
}

// WaitForever waits on a group that is Added but never Doned anywhere
// in the module.
func WaitForever() {
	var wg sync.WaitGroup
	wg.Add(1)
	go pump()
	wg.Wait() // want "can never return"
}

// Pool spawns a declared method; the field-keyed group links the
// constructor's Add to the worker's deferred Done across functions.
type Pool struct {
	wg sync.WaitGroup
}

func (p *Pool) worker() {
	defer p.wg.Done()
	work(4)
}

func Start(p *Pool, n int) {
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
}

func (p *Pool) Stop() {
	p.wg.Wait()
}

// DaemonSpawn uses Done as a readiness signal from a declared daemon;
// the directive exempts the spawn from the domination check.
func DaemonSpawn(fast bool) {
	var wg sync.WaitGroup
	if fast {
		wg.Add(1)
	}
	//hetpnoc:daemon readiness ping from a process-lifetime pump
	go func() {
		wg.Done()
		for {
			work(3)
		}
	}()
	wg.Wait()
}
