package wgsync_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/wgsync"
)

func TestWgsyncFixtures(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), wgsync.Analyzer, "wg/wsync")
}
