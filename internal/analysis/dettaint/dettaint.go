// Package dettaint propagates nondeterminism through the call graph.
// detrand polices direct use of wall-clock time and unseeded randomness
// inside simulator packages, but says nothing about a sim package
// calling a helper (internal/stats, internal/topology, ...) that reads
// time.Now three frames down — the entropy still reaches simulator
// state, just laundered through module code detrand never inspects.
//
// This analyzer computes, for every module function, whether its
// execution can observe a nondeterminism source:
//
//   - calls into the standard library's entropy and wall-clock APIs
//     (detrand's time/rand tables, plus testing/quick's unseeded
//     driver, which detrand does not cover);
//   - range statements over maps in non-sim module packages without an
//     //hetpnoc:orderfree justification (maprange already covers sim
//     packages).
//
// Taint propagates caller-ward over all call-graph edges until
// fixpoint. A call from a simulator-package function to a tainted
// helper is an error; the diagnostic carries the taint chain from the
// call site down to the intrinsic source. Direct calls from sim
// functions to sources outside detrand's tables (testing/quick.Check)
// are reported too, so the two analyzers cover the source set exactly
// once between them.
//
// //hetpnoc:detsafe <why> on a function's doc comment declares that
// its nondeterminism never reaches simulator state — the canonical case
// is a property test that deliberately samples random inputs and prints
// any counterexample. A detsafe function is treated as clean and its
// body's reports are suppressed.
package dettaint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hetpnoc/internal/analysis"
	"hetpnoc/internal/analysis/callgraph"
	"hetpnoc/internal/analysis/maprange"
)

// Analyzer is the dettaint check.
var Analyzer = &analysis.Analyzer{
	Name: "dettaint",
	Doc: "forbid calls from simulator packages to transitively nondeterministic module functions\n\n" +
		"Interprocedural companion to detrand: taint from wall-clock time,\n" +
		"unseeded randomness, testing/quick and order-sensitive map ranges\n" +
		"propagates up the call graph; a sim-package call to a tainted\n" +
		"helper is reported with the full taint chain. Declare deliberate\n" +
		"sampling with //hetpnoc:detsafe <why>.",
	RunModule: run,
}

// sourceHint matches one external *types.Func against the
// nondeterminism-source tables, returning a display name and whether it
// is already covered by detrand inside sim packages (and therefore not
// re-reported there).
func sourceHint(f *types.Func) (name string, detrandCovered, ok bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return "", false, false
	}
	switch pkg.Path() {
	case "time":
		if _, bad := forbiddenTime[f.Name()]; bad {
			return "time." + f.Name(), true, true
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		return pkg.Path() + "." + f.Name(), true, true
	case "testing/quick":
		// quick.Check / quick.CheckEqual draw from an unseeded
		// rand.Source unless a Config supplies one.
		if strings.HasPrefix(f.Name(), "Check") {
			return "testing/quick." + f.Name(), false, true
		}
	}
	return "", false, false
}

// forbiddenTime mirrors detrand's wall-clock member table.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// taint records how a function first became tainted: either an
// intrinsic source inside its own body (next == nil) or a call to an
// already-tainted module function.
type taint struct {
	source string          // intrinsic: display name of the source
	pos    token.Pos       // source position / call-site position
	next   *callgraph.Node // propagated: the tainted callee
}

func run(mp *analysis.ModulePass) error {
	g := callgraph.FromPass(mp)
	dirs := analysis.NewDirectiveCache(mp.Fset)

	detsafe := make(map[*callgraph.Node]bool)
	for _, n := range g.Sorted {
		dir, ok := analysis.FuncDirective(n.Decl, analysis.DirectiveDetsafe)
		if !ok {
			continue
		}
		if dir.Arg == "" {
			mp.Reportf(n.Decl.Name.Pos(),
				"//hetpnoc:detsafe needs a justification for why the nondeterminism never reaches simulator state",
				"//hetpnoc:detsafe <why sampling here is deliberate and contained>")
		}
		detsafe[n] = true
	}

	// Seed: intrinsic taint, in deterministic node order.
	taints := make(map[*callgraph.Node]*taint)
	var queue []*callgraph.Node
	for _, n := range g.Sorted {
		if detsafe[n] {
			continue
		}
		if t := intrinsic(mp, dirs, n); t != nil {
			taints[n] = t
			queue = append(queue, n)
		}
	}

	// Propagate caller-ward, BFS so recorded chains are shortest.
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.In {
			c := e.Caller
			if detsafe[c] {
				continue
			}
			if _, done := taints[c]; done {
				continue
			}
			taints[c] = &taint{pos: e.Pos(), next: n}
			queue = append(queue, c)
		}
	}

	// Report sim-package violations.
	for _, n := range g.Sorted {
		if !analysis.IsSimPackage(strings.TrimSuffix(n.Unit.Path, "_test")) || detsafe[n] {
			continue
		}
		// Direct calls to sources detrand does not cover.
		for _, ext := range n.External {
			if name, covered, ok := sourceHint(ext.Func); ok && !covered {
				mp.Reportf(ext.Pos,
					fmt.Sprintf("%s draws unseeded randomness in a simulator package, which breaks run reproducibility", name),
					"seed the source explicitly, or annotate the function //hetpnoc:detsafe <why>")
			}
		}
		// Calls to tainted helpers outside the sim core. Tainted
		// sim-package callees hold their own detrand/dettaint report at
		// the source, so re-reporting every caller would be noise.
		for _, e := range n.Out {
			callee := e.Callee
			t, bad := taints[callee]
			if !bad || analysis.IsSimPackage(strings.TrimSuffix(callee.Unit.Path, "_test")) {
				continue
			}
			mp.Reportf(e.Pos(),
				fmt.Sprintf("call to %s is nondeterministic in a simulator package (taint: %s)",
					callee.Name(), chainOf(callee, t, taints)),
				"make the helper deterministic, thread a seeded source through it, or annotate //hetpnoc:detsafe <why>")
		}
	}
	return nil
}

// intrinsic returns n's own-body taint, or nil: an external call into
// the source tables, or an unjustified range over a map in a non-sim
// package.
func intrinsic(mp *analysis.ModulePass, dirs *analysis.DirectiveCache, n *callgraph.Node) *taint {
	for _, ext := range n.External {
		if name, _, ok := sourceHint(ext.Func); ok {
			return &taint{source: name, pos: ext.Pos}
		}
	}
	if !analysis.IsSimPackage(strings.TrimSuffix(n.Unit.Path, "_test")) {
		if pos, ok := unorderedMapRange(mp, dirs, n); ok {
			return &taint{source: "range over map", pos: pos}
		}
	}
	return nil
}

// unorderedMapRange returns the position of the first range statement
// over a map in n's body that carries no //hetpnoc:orderfree directive
// and is not the sorted-iteration prologue maprange recognizes.
func unorderedMapRange(mp *analysis.ModulePass, dirs *analysis.DirectiveCache, n *callgraph.Node) (token.Pos, bool) {
	pass := mp.PassFor(n.Unit)
	var pos token.Pos
	found := false
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if found {
			return false
		}
		rs, ok := nd.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if d := dirs.For(n.Unit, rs.Pos()); d != nil {
			if _, covered := d.Covering(rs, analysis.DirectiveOrderfree); covered {
				return true
			}
		}
		if maprange.IsSortedCollect(pass, n.Decl.Body, rs) {
			return true
		}
		pos, found = rs.Pos(), true
		return false
	})
	return pos, found
}

// chainOf renders the taint chain from n down to its intrinsic source,
// e.g. "stats.Summary -> stats.merge -> time.Now".
func chainOf(n *callgraph.Node, t *taint, taints map[*callgraph.Node]*taint) string {
	var parts []string
	for {
		parts = append(parts, n.Name())
		if t.next == nil {
			parts = append(parts, t.source)
			break
		}
		n = t.next
		t = taints[n]
	}
	return strings.Join(parts, " -> ")
}
