// Package helper is tooling-side code: detrand and maprange ignore it,
// so nondeterminism here only matters when a simulator package calls
// in — which dettaint decides.
package helper

import (
	"sort"
	"time"
)

// Jitter is tainted transitively through entropy.
func Jitter() { _ = entropy() }

func entropy() int64 { return time.Now().UnixNano() }

// Shuffle is intrinsically tainted: map iteration order is random.
func Shuffle() {
	m := map[int]int{1: 1}
	for k := range m {
		_ = k
	}
}

// Clean is deterministic and must not be flagged.
func Clean() int { return 42 }

// SortedWalk uses the sorted-iteration prologue; the sort erases the
// collection order, so no taint.
func SortedWalk() {
	m := map[int]int{1: 1}
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
}

// OrderFree's range is justified order-insensitive.
func OrderFree() int {
	m := map[int]int{1: 1}
	n := 0
	//hetpnoc:orderfree commutative sum
	for _, v := range m {
		n += v
	}
	return n
}
