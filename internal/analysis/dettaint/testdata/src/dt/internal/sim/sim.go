// Package sim exercises dettaint from the simulator side: calls into
// transitively nondeterministic helpers are errors, sources detrand
// already polices are not re-reported, and //hetpnoc:detsafe contains
// deliberate sampling.
package sim

import (
	"testing/quick"
	"time"

	"dt/helper"
)

func Tick() {
	helper.Jitter() // want `call to helper\.Jitter is nondeterministic in a simulator package \(taint: helper\.Jitter -> helper\.entropy -> time\.Now\)`
	helper.Shuffle() // want `call to helper\.Shuffle is nondeterministic in a simulator package \(taint: helper\.Shuffle -> range over map\)`
	helper.Clean()
	helper.SortedWalk()
}

func Prop() {
	_ = quick.Check(func() bool { return true }, nil) // want `testing/quick\.Check draws unseeded randomness in a simulator package`
}

// SafeProp samples deliberately; the annotation suppresses its reports.
//
//hetpnoc:detsafe property test prints the counterexample, state untouched
func SafeProp() {
	_ = quick.Check(func() bool { return true }, nil)
	helper.Jitter()
}

// BadDetsafe's directive is missing its justification.
//
//hetpnoc:detsafe
func BadDetsafe() {} // want `//hetpnoc:detsafe needs a justification`

// wall is detrand's finding, not dettaint's: no report here.
func wall() time.Duration { return time.Since(time.Time{}) }

// Outer calls a tainted sim-package function; the taint source already
// carries detrand's report, so dettaint stays silent on this edge.
func Outer() { _ = wall() }
