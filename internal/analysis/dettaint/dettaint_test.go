package dettaint_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/dettaint"
)

func TestDettaint(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), dettaint.Analyzer,
		"dt/internal/sim",
	)
}
