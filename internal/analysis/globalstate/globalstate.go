// Package globalstate forbids mutable package-level variables in the
// simulator core. A package-level var is shared by every run in the
// process: state written by one simulation leaks into the next, which
// breaks both reproducibility and the concurrent figure sweeps.
//
// Exemptions:
//   - blank vars (`var _ Iface = (*T)(nil)` compile-time asserts);
//   - vars annotated //hetpnoc:immutable <why> — write-once constant
//     tables that Go cannot express as const (structs, arrays);
//   - _test.go files, which run outside the simulator process model.
package globalstate

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"hetpnoc/internal/analysis"
)

// Analyzer is the globalstate check.
var Analyzer = &analysis.Analyzer{
	Name: "globalstate",
	Doc: "forbid mutable package-level vars in simulator packages\n\n" +
		"Package-level state outlives a run and leaks between runs; own the\n" +
		"state in a component struct, or annotate a write-once table\n" +
		"//hetpnoc:immutable <why>.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.IsSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		dirs := analysis.ParseDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			declDir, declOK := dirs.Covering(gd, analysis.DirectiveImmutable)
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				if allBlank(vs.Names) {
					continue
				}
				dir, ok := declDir, declOK
				if !ok {
					dir, ok = dirs.Covering(vs, analysis.DirectiveImmutable)
				}
				if ok {
					if dir.Arg == "" {
						pass.Reportf(vs.Pos(),
							"//hetpnoc:immutable needs a justification explaining why this var is never written after init",
							"//hetpnoc:immutable <why the table is write-once>")
					}
					continue
				}
				pass.Reportf(vs.Pos(),
					fmt.Sprintf("package-level var %s in a simulator package leaks state across runs; move it into the owning component", names(vs.Names)),
					"//hetpnoc:immutable <why>, if this is a write-once constant table")
			}
		}
	}
	return nil
}

func allBlank(idents []*ast.Ident) bool {
	for _, id := range idents {
		if id.Name != "_" {
			return false
		}
	}
	return true
}

func names(idents []*ast.Ident) string {
	parts := make([]string, len(idents))
	for i, id := range idents {
		parts[i] = id.Name
	}
	return strings.Join(parts, ", ")
}
