package globalstate_test

import (
	"testing"

	"hetpnoc/internal/analysis/analysistest"
	"hetpnoc/internal/analysis/globalstate"
)

func TestGlobalstate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), globalstate.Analyzer,
		"gfix/internal/router",
	)
}
