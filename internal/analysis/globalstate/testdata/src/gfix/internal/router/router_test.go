// Fixture: _test.go files live outside the simulator process model, so
// their package-level tables (golden cases and the like) are allowed.
package router

var goldenCases = []Table{{Size: 1}, {Size: 2}}

var _ = goldenCases
